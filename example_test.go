package ode_test

import (
	"errors"
	"fmt"

	"ode"
)

// Wallet is the documented example's persistent class.
type Wallet struct {
	Balance float64
	Limit   float64
}

// Example reproduces the paper's trigger pattern in miniature: a
// perpetual mask-guarded trigger taborts overdrafts.
func Example() {
	db, err := ode.OpenMemory()
	if err != nil {
		panic(err)
	}
	defer db.Close()

	wallet := ode.MustClass("Wallet",
		ode.Factory(func() any { return new(Wallet) }),
		ode.Method("Spend", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			w := self.(*Wallet)
			w.Balance -= args[0].(float64)
			return w.Balance, nil
		}),
		ode.Events("after Spend"),
		ode.Mask("Overdrawn", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return self.(*Wallet).Balance < 0, nil
		}),
		// trigger Deny() : perpetual after Spend & (balance < 0) ==> tabort
		ode.Trigger("Deny", "after Spend & Overdrawn",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				ctx.TAbort()
				return nil
			},
			ode.Perpetual()),
	)
	if err := db.Register(wallet); err != nil {
		panic(err)
	}

	tx := db.Begin()
	ref, _ := db.Create(tx, "Wallet", &Wallet{Balance: 100})
	db.Activate(tx, ref, "Deny")
	tx.Commit()

	tx = db.Begin()
	db.Invoke(tx, ref, "Spend", 40.0)
	fmt.Println("spend 40:", tx.Commit() == nil)

	tx = db.Begin()
	db.Invoke(tx, ref, "Spend", 500.0)
	fmt.Println("spend 500 aborted:", errors.Is(tx.Commit(), ode.ErrAborted))

	tx = db.Begin()
	w, _ := ode.Get[*Wallet](db, tx, ref)
	fmt.Println("balance:", w.Balance)
	tx.Abort()

	// Output:
	// spend 40: true
	// spend 500 aborted: true
	// balance: 60
}
