package ode_test

import (
	"errors"
	"path/filepath"
	"testing"

	"ode"
)

// Account is a minimal persistent class for facade tests.
type Account struct {
	Owner   string
	Balance float64
	Alerts  []string
}

func accountClass() *ode.Class {
	return ode.MustClass("Account",
		ode.Factory(func() any { return new(Account) }),
		ode.Method("Deposit", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			a := self.(*Account)
			a.Balance += args[0].(float64)
			return a.Balance, nil
		}),
		ode.Method("Withdraw", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			a := self.(*Account)
			a.Balance -= args[0].(float64)
			return a.Balance, nil
		}),
		ode.ReadOnlyMethod("GetBalance", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			return self.(*Account).Balance, nil
		}),
		ode.Events("after Deposit", "after Withdraw"),
		ode.Mask("Overdrawn", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return self.(*Account).Balance < 0, nil
		}),
		ode.Trigger("BlockOverdraft", "after Withdraw & Overdrawn",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				ctx.TAbort()
				return nil
			},
			ode.Perpetual()),
		ode.Trigger("AlertBigSwing", "relative((after Deposit & Overdrawn), after Deposit)",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				a := self.(*Account)
				a.Alerts = append(a.Alerts, act.ArgString(0))
				return nil
			}),
	)
}

func openAccountDB(t *testing.T) (*ode.Database, ode.Ref) {
	t.Helper()
	db, err := ode.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.Register(accountClass()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	ref, err := db.Create(tx, "Account", &Account{Owner: "dan"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "BlockOverdraft"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, ref
}

func TestFacadeEndToEnd(t *testing.T) {
	db, ref := openAccountDB(t)

	tx := db.Begin()
	ret, err := db.Invoke(tx, ref, "Deposit", 100.0)
	if err != nil {
		t.Fatal(err)
	}
	if ret.(float64) != 100 {
		t.Fatalf("Deposit returned %v", ret)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Overdraft blocked by the perpetual trigger.
	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Withdraw", 500.0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ode.ErrAborted) {
		t.Fatalf("overdraft commit = %v, want ErrAborted", err)
	}

	tx3 := db.Begin()
	defer tx3.Abort()
	acct, err := ode.Get[*Account](db, tx3, ref)
	if err != nil {
		t.Fatal(err)
	}
	if acct.Balance != 100 {
		t.Fatalf("balance = %v, want 100 (overdraft rolled back)", acct.Balance)
	}
}

func TestGetTypeMismatch(t *testing.T) {
	db, ref := openAccountDB(t)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := ode.Get[*struct{ X int }](db, tx, ref); err == nil {
		t.Fatal("wrong-type Get succeeded")
	}
}

func TestOpenDiskPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facade.eos")
	db, err := ode.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(accountClass()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	ref, err := db.Create(tx, "Account", &Account{Owner: "robert", Balance: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := ode.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Register(accountClass()); err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin()
	defer tx2.Abort()
	ref2 := ode.RefFromOID(uint64(ref.OID()))
	acct, err := ode.Get[*Account](db2, tx2, ref2)
	if err != nil {
		t.Fatal(err)
	}
	if acct.Owner != "robert" || acct.Balance != 7 {
		t.Fatalf("persisted account = %+v", acct)
	}
}

func TestOpenMemoryFileSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facade.dali")
	db, err := ode.OpenMemoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(accountClass()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Account", &Account{Owner: "mm-ode"})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Store().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := ode.OpenMemoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Register(accountClass()); err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin()
	defer tx2.Abort()
	acct, err := ode.Get[*Account](db2, tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	if acct.Owner != "mm-ode" {
		t.Fatalf("snapshot account = %+v", acct)
	}
}

func TestRelativeTriggerViaFacade(t *testing.T) {
	db, ref := openAccountDB(t)
	tx := db.Begin()
	if _, err := db.Activate(tx, ref, "AlertBigSwing", "swing!"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// Drive the account negative (bypassing BlockOverdraft via deposit
	// of negative value would be cheating — use Deposit with negative
	// amount to simulate a fee posting).
	step := func(amount float64) {
		t.Helper()
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Deposit", amount); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	step(-50) // balance negative: arms (Deposit & Overdrawn)
	step(10)  // any further Deposit completes relative(...)
	tx2 := db.Begin()
	defer tx2.Abort()
	acct, _ := ode.Get[*Account](db, tx2, ref)
	if len(acct.Alerts) != 1 || acct.Alerts[0] != "swing!" {
		t.Fatalf("alerts = %v", acct.Alerts)
	}
}

func TestStatsExposed(t *testing.T) {
	db, ref := openAccountDB(t)
	db.ResetStats()
	tx := db.Begin()
	db.Invoke(tx, ref, "Deposit", 1.0)
	tx.Commit()
	if db.Stats().EventsPosted == 0 {
		t.Fatal("stats not counting")
	}
}
