// Command quickstart reproduces the paper's §4 credit-card monitoring
// example end to end: the CredCard class with its event declaration, the
// perpetual DenyCredit trigger (mask + tabort) and the once-only
// AutoRaiseLimit trigger (relative composite event), driven through the
// exact scenario the paper narrates.
package main

import (
	"errors"
	"fmt"
	"log"

	"ode"
)

// CredCard mirrors the paper's class:
//
//	persistent class CredCard {
//	    float credLim, currBal;
//	    ...
//	    event after Buy, after PayBill, BigBuy;
//	    trigger DenyCredit() : perpetual after Buy & (currBal>credLim)
//	        ==> {BlackMark("Over Limit", today()); tabort;}
//	    trigger AutoRaiseLimit(float amount) :
//	        relative((after Buy & MoreCred()), after PayBill)
//	        ==> RaiseLimit(amount);
//	};
type CredCard struct {
	Holder     string
	CredLim    float64
	CurrBal    float64
	GoodHist   bool
	BlackMarks []string
}

func (c *CredCard) moreCred() bool { return c.CurrBal > 0.8*c.CredLim && c.GoodHist }

func credCardClass() *ode.Class {
	return ode.MustClass("CredCard",
		ode.Factory(func() any { return new(CredCard) }),
		ode.Method("Buy", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		ode.Method("PayBill", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal -= args[0].(float64)
			return nil, nil
		}),
		ode.Method("RaiseLimit", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CredLim += args[0].(float64)
			return nil, nil
		}),
		ode.Method("BlackMark", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.BlackMarks = append(c.BlackMarks, args[0].(string))
			return nil, nil
		}),
		ode.ReadOnlyMethod("GoodCredHist", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			return self.(*CredCard).GoodHist, nil
		}),
		// event after Buy, after PayBill, BigBuy;
		ode.Events("after Buy", "after PayBill", "BigBuy"),
		ode.Mask("OverLimit", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > c.CredLim, nil
		}),
		ode.Mask("MoreCred", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return self.(*CredCard).moreCred(), nil
		}),
		ode.Trigger("DenyCredit", "after Buy & OverLimit",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				if _, err := ctx.Invoke(ctx.Self(), "BlackMark", "Over Limit"); err != nil {
					return err
				}
				ctx.TAbort() // the paper's tabort statement
				return nil
			},
			ode.Perpetual()),
		ode.Trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "RaiseLimit", act.ArgFloat(0))
				return err
			}),
	)
}

func main() {
	db, err := ode.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Register(credCardClass()); err != nil {
		log.Fatal(err)
	}

	// pnew CredCard + explicit trigger activations (§4.1):
	//   credcard->DenyCredit();
	//   TriggerId AutoRaise = credcard->AutoRaiseLimit(1000.0);
	tx := db.Begin()
	card, err := db.Create(tx, "CredCard", &CredCard{
		Holder: "Narain", CredLim: 1000, GoodHist: true,
	})
	must(err)
	_, err = db.Activate(tx, card, "DenyCredit")
	must(err)
	autoRaise, err := db.Activate(tx, card, "AutoRaiseLimit", 1000.0)
	must(err)
	must(tx.Commit())
	fmt.Printf("created card for Narain: limit $1000, triggers active (AutoRaise=%v)\n", autoRaise)

	show := func() {
		tx := db.Begin()
		defer tx.Abort()
		c, err := ode.Get[*CredCard](db, tx, card)
		must(err)
		fmt.Printf("  state: balance $%.0f, limit $%.0f, marks %v\n",
			c.CurrBal, c.CredLim, c.BlackMarks)
	}

	// 1. An ordinary purchase.
	fmt.Println("\nBuy($400):")
	must(invoke(db, card, "Buy", 400.0))
	show()

	// 2. A purchase that would exceed the limit: DenyCredit black-marks
	// and taborts — the whole transaction (purchase included) rolls back.
	fmt.Println("\nBuy($900) — would exceed the limit:")
	err = invoke(db, card, "Buy", 900.0)
	if errors.Is(err, ode.ErrAborted) {
		fmt.Println("  transaction aborted by DenyCredit (purchase prevented)")
	} else {
		log.Fatalf("expected abort, got %v", err)
	}
	show()

	// 3. Arm AutoRaiseLimit: a purchase that leaves the balance over 80%
	// of the limit with a good history satisfies (after Buy & MoreCred()).
	fmt.Println("\nBuy($500) — balance now over 80% of the limit:")
	must(invoke(db, card, "Buy", 500.0))
	show()

	// 4. Noise events do not disturb the armed relative(...) pattern.
	fmt.Println("\npost BigBuy (user-defined event, ignored by the armed pattern):")
	tx2 := db.Begin()
	must(db.PostUserEvent(tx2, card, "BigBuy"))
	must(tx2.Commit())

	// 5. Any future PayBill completes the composite event: the limit is
	// raised by the activation argument ($1000) and the once-only
	// trigger deactivates.
	fmt.Println("\nPayBill($300) — completes relative(...), raises the limit:")
	must(invoke(db, card, "PayBill", 300.0))
	show()

	tx3 := db.Begin()
	active, err := db.ActiveTriggers(tx3, card)
	must(err)
	tx3.Commit()
	fmt.Printf("\nactive triggers after firing: %d (AutoRaiseLimit was once-only, DenyCredit is perpetual)\n", len(active))
	for _, a := range active {
		fmt.Printf("  %s (state %d)\n", a.Trigger, a.StateNum)
	}
}

func invoke(db *ode.Database, ref ode.Ref, method string, args ...any) error {
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, method, args...); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
