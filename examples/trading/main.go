// Command trading is the program-trading scenario that motivates
// composite-event triggers in the paper's introduction ("applications
// such as program trading whose actions are triggered based on patterns
// of event occurrences as opposed to single basic events") and §8's
// future-work example:
//
//	"if AT&T goes below 60 and the price of gold stabilizes,
//	 buy 1000 shares of AT&T"
//
// The paper notes Ode's triggers are intra-object (one anchor object);
// the standard workaround — used here — anchors the rule at a Portfolio
// object through which all ticks flow, so the multi-feed pattern becomes
// an intra-object composite event:
//
//	relative((after Tick & TBelow60), after Tick & GoldStable)
package main

import (
	"fmt"
	"log"

	"ode"
	"ode/internal/workload"
)

// Portfolio receives market ticks and holds positions.
type Portfolio struct {
	Prices     map[string][]float64 // recent price history per symbol
	Cash       float64
	Shares     map[string]float64
	TradeLog   []string
	WindowSize int
}

func (p *Portfolio) last(sym string) float64 {
	h := p.Prices[sym]
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1]
}

// stable reports whether sym's recent window moved less than 1%.
func (p *Portfolio) stable(sym string) bool {
	h := p.Prices[sym]
	if len(h) < p.WindowSize {
		return false
	}
	w := h[len(h)-p.WindowSize:]
	lo, hi := w[0], w[0]
	for _, v := range w {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi/lo < 1.01
}

func portfolioClass() *ode.Class {
	return ode.MustClass("Portfolio",
		ode.Factory(func() any {
			return &Portfolio{
				Prices: map[string][]float64{}, Shares: map[string]float64{}, WindowSize: 5,
			}
		}),
		ode.Method("Tick", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			p := self.(*Portfolio)
			sym := args[0].(string)
			price := args[1].(float64)
			h := append(p.Prices[sym], price)
			if len(h) > 32 {
				h = h[len(h)-32:]
			}
			p.Prices[sym] = h
			return nil, nil
		}),
		ode.Method("BuyShares", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			p := self.(*Portfolio)
			sym := args[0].(string)
			qty := args[1].(float64)
			cost := qty * p.last(sym)
			p.Cash -= cost
			p.Shares[sym] += qty
			p.TradeLog = append(p.TradeLog,
				fmt.Sprintf("BUY %.0f %s @ %.2f", qty, sym, p.last(sym)))
			return nil, nil
		}),
		ode.Events("after Tick", "after BuyShares"),
		ode.Mask("TBelow60", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			p := self.(*Portfolio)
			px := p.last("T")
			return px > 0 && px < 60, nil
		}),
		ode.Mask("GoldStable", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return self.(*Portfolio).stable("GOLD"), nil
		}),
		// §8's rule: once AT&T dips below 60, wait for gold to stabilize,
		// then buy 1000 shares.
		ode.Trigger("BuyTheDip",
			"relative((after Tick & TBelow60), after Tick & GoldStable)",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "BuyShares", "T", act.ArgFloat(0))
				return err
			}),
	)
}

func main() {
	db, err := ode.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Register(portfolioClass()); err != nil {
		log.Fatal(err)
	}

	tx := db.Begin()
	pf, err := db.Create(tx, "Portfolio", &Portfolio{
		Prices: map[string][]float64{}, Shares: map[string]float64{},
		Cash: 100_000, WindowSize: 5,
	})
	must(err)
	_, err = db.Activate(tx, pf, "BuyTheDip", 1000.0)
	must(err)
	must(tx.Commit())
	fmt.Println("portfolio created; rule armed: T < 60, then GOLD stable → buy 1000 T")

	// Drive a synthetic feed: AT&T drifts down through 60 while gold is
	// choppy, then gold settles.
	ticks := workload.TickStream(7, 3000, []string{"T", "GOLD"}, 62, 0.01)
	fired := -1
	for i, tk := range ticks {
		tx := db.Begin()
		if _, err := db.Invoke(tx, pf, "Tick", tk.Symbol, tk.Price); err != nil {
			tx.Abort()
			log.Fatal(err)
		}
		must(tx.Commit())

		if fired < 0 {
			rtx := db.Begin()
			p, err := ode.Get[*Portfolio](db, rtx, pf)
			must(err)
			done := len(p.TradeLog) > 0
			rtx.Abort()
			if done {
				fired = i
			}
		}
	}

	rtx := db.Begin()
	defer rtx.Abort()
	p, err := ode.Get[*Portfolio](db, rtx, pf)
	must(err)
	if len(p.TradeLog) == 0 {
		fmt.Println("rule never fired on this feed (no dip + stabilization); try another seed")
		return
	}
	fmt.Printf("rule fired at tick %d: %s\n", fired, p.TradeLog[0])
	fmt.Printf("position: %.0f shares of T, cash $%.2f\n", p.Shares["T"], p.Cash)
	fmt.Printf("last prices: T=%.2f GOLD=%.2f\n", p.last("T"), p.last("GOLD"))
	if len(p.TradeLog) != 1 {
		log.Fatalf("once-only trigger fired %d times", len(p.TradeLog))
	}
	fmt.Println("trigger was once-only: exactly one trade despite later stability")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
