// Command frauddetect shows composite-event fraud monitoring: the
// card-testing pattern (a run of small purchases immediately followed by
// a large one) is expressed as a single event expression with masks,
//
//	after Buy & Small, *(after Buy & Small), after Buy & Large
//
// and the alert trigger uses the !dependent (Independent) coupling mode —
// so the alert is recorded in its own transaction and survives even when
// the suspicious purchase itself is aborted (§4.2, §5.5). This is the
// use case detached coupling exists for: evidence must outlive the
// transaction that produced it.
package main

import (
	"errors"
	"fmt"
	"log"

	"ode"
)

// Card is a monitored payment card.
type Card struct {
	PAN     string
	Balance float64
	Limit   float64
}

// FraudDesk collects alerts; it is a separate persistent object so the
// detached action writes land somewhere visible after aborts.
type FraudDesk struct {
	Alerts []string
}

func classes() []*ode.Class {
	desk := ode.MustClass("FraudDesk",
		ode.Factory(func() any { return new(FraudDesk) }),
		ode.Method("Report", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			d := self.(*FraudDesk)
			d.Alerts = append(d.Alerts, args[0].(string))
			return nil, nil
		}),
	)
	card := ode.MustClass("Card",
		ode.Factory(func() any { return new(Card) }),
		ode.Method("Buy", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*Card)
			amt := args[0].(float64)
			c.Balance += amt
			if c.Balance > c.Limit {
				ctx.TAbort() // issuer declines, transaction rolls back
			}
			return nil, nil
		}),
		ode.Events("after Buy"),
		// Masks read the purchase amount straight from the posting
		// event's member-function arguments — the paper's §8 "attributes
		// of events" extension, implemented here.
		ode.Mask("Small", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return act.EventArgFloat(0) < 5, nil
		}),
		ode.Mask("Large", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return act.EventArgFloat(0) >= 500, nil
		}),
		ode.Trigger("CardTesting",
			"after Buy & Small, *(after Buy & Small), after Buy & Large",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				c := self.(*Card)
				deskRef := ode.RefFromOID(uint64(act.ArgFloat(0)))
				_, err := ctx.Invoke(deskRef, "Report",
					fmt.Sprintf("card %s: small-buy run then $%.0f purchase", c.PAN, act.EventArgFloat(0)))
				return err
			},
			ode.WithCoupling(ode.Independent), ode.Perpetual()),
	)
	return []*ode.Class{desk, card}
}

func main() {
	db, err := ode.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Register(classes()...); err != nil {
		log.Fatal(err)
	}

	tx := db.Begin()
	desk, err := db.Create(tx, "FraudDesk", &FraudDesk{})
	must(err)
	card, err := db.Create(tx, "Card", &Card{PAN: "4000-0000-1234", Limit: 600})
	must(err)
	_, err = db.Activate(tx, card, "CardTesting", float64(desk.OID()))
	must(err)
	must(tx.Commit())
	fmt.Println("card monitored for the card-testing pattern (small*, large)")

	buy := func(amount float64) error {
		tx := db.Begin()
		if _, err := db.Invoke(tx, card, "Buy", amount); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}

	// The fraudster probes with small purchases...
	for _, amt := range []float64{1, 2, 1} {
		must(buy(amt))
		fmt.Printf("  buy $%.0f ok\n", amt)
	}
	// ...then attempts the real hit, which the issuer declines (the
	// balance would exceed the limit, so Buy taborts).
	err = buy(650)
	if !errors.Is(err, ode.ErrAborted) {
		log.Fatalf("expected the big purchase to be declined, got %v", err)
	}
	fmt.Println("  buy $650 DECLINED (transaction aborted)")

	// The purchase rolled back — but the !dependent alert survived.
	rtx := db.Begin()
	defer rtx.Abort()
	d, err := ode.Get[*FraudDesk](db, rtx, desk)
	must(err)
	c, err := ode.Get[*Card](db, rtx, card)
	must(err)
	fmt.Printf("card balance after decline: $%.0f (attempt rolled back)\n", c.Balance)
	if len(d.Alerts) == 0 {
		log.Fatal("alert lost with the aborted transaction — coupling broken")
	}
	fmt.Printf("fraud desk has %d alert(s) despite the abort:\n", len(d.Alerts))
	for _, a := range d.Alerts {
		fmt.Println("  ALERT:", a)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
