// Command inventory demonstrates the remaining trigger machinery on a
// warehouse scenario backed by the disk store (EOS analog):
//
//   - end (Deferred) coupling as a deferred constraint: many withdrawals
//     in one transaction are checked once, just before commit — and a
//     transaction that would drive stock negative is aborted wholesale;
//   - an end trigger as a materialized side effect: dropping below the
//     reorder point files a purchase order in the same transaction;
//   - transaction events: an object interested in "before tcomplete"
//     audits every transaction that touched it (§5.5);
//   - clusters: the stock report iterates the "items" cluster (§2).
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ode"
)

// Item is a stocked product.
type Item struct {
	SKU      string
	OnHand   float64
	Reorder  float64 // reorder point
	Orders   []string
	TxAudits int // transactions that touched this item
}

func itemClass() *ode.Class {
	return ode.MustClass("Item",
		ode.Factory(func() any { return new(Item) }),
		ode.Method("Withdraw", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			it := self.(*Item)
			it.OnHand -= args[0].(float64)
			return it.OnHand, nil
		}),
		ode.Method("Restock", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			it := self.(*Item)
			it.OnHand += args[0].(float64)
			return it.OnHand, nil
		}),
		ode.Method("FileOrder", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			it := self.(*Item)
			it.Orders = append(it.Orders, args[0].(string))
			return nil, nil
		}),
		ode.Events("after Withdraw", "after Restock", "before tcomplete"),
		ode.Mask("Negative", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return self.(*Item).OnHand < 0, nil
		}),
		ode.Mask("BelowReorder", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			it := self.(*Item)
			return it.OnHand >= 0 && it.OnHand < it.Reorder, nil
		}),
		// Deferred constraint: evaluated once at commit, after all the
		// transaction's withdrawals.
		ode.Trigger("NoNegativeStock", "after Withdraw & Negative",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				ctx.TAbort()
				return nil
			},
			ode.WithCoupling(ode.Deferred), ode.Perpetual()),
		// Deferred side effect: reorder once per transaction that left
		// the item low, inside the same (committing) transaction.
		ode.Trigger("AutoReorder", "after Withdraw & BelowReorder",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				it := self.(*Item)
				_, err := ctx.Invoke(ctx.Self(), "FileOrder",
					fmt.Sprintf("PO: %s x %.0f", it.SKU, it.Reorder*2-it.OnHand))
				return err
			},
			ode.WithCoupling(ode.Deferred), ode.Perpetual()),
		// Transaction event: count committing transactions that touched
		// this item.
		ode.Trigger("AuditTouch", "before tcomplete",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				self.(*Item).TxAudits++
				return nil
			},
			ode.Perpetual()),
	)
}

func main() {
	dir, err := os.MkdirTemp("", "ode-inventory-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ode.OpenDisk(filepath.Join(dir, "warehouse.eos"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	must(db.Register(itemClass()))

	// Stock the warehouse; every item joins the "items" cluster.
	skus := []struct {
		sku             string
		onHand, reorder float64
	}{
		{"WIDGET", 100, 20},
		{"GADGET", 30, 25},
		{"SPROCKET", 500, 50},
	}
	refs := map[string]ode.Ref{}
	tx := db.Begin()
	for _, s := range skus {
		ref, err := db.Create(tx, "Item", &Item{SKU: s.sku, OnHand: s.onHand, Reorder: s.reorder})
		must(err)
		must(db.ClusterAdd(tx, "items", ref))
		for _, trig := range []string{"NoNegativeStock", "AutoReorder", "AuditTouch"} {
			_, err = db.Activate(tx, ref, trig)
			must(err)
		}
		refs[s.sku] = ref
	}
	must(tx.Commit())
	fmt.Println("warehouse stocked; constraints and reorder triggers armed")

	// A multi-line order in one transaction: checked once at commit.
	fmt.Println("\norder #1: 90 WIDGET + 10 GADGET (allowed; leaves both low)")
	tx = db.Begin()
	_, err = db.Invoke(tx, refs["WIDGET"], "Withdraw", 90.0)
	must(err)
	_, err = db.Invoke(tx, refs["GADGET"], "Withdraw", 10.0)
	must(err)
	must(tx.Commit())

	// An order that would oversell aborts entirely — including its valid
	// lines (all-or-nothing).
	fmt.Println("order #2: 400 SPROCKET + 900 WIDGET (oversells WIDGET; whole order rejected)")
	tx = db.Begin()
	_, err = db.Invoke(tx, refs["SPROCKET"], "Withdraw", 400.0)
	must(err)
	_, err = db.Invoke(tx, refs["WIDGET"], "Withdraw", 900.0)
	must(err)
	if err := tx.Commit(); !errors.Is(err, ode.ErrAborted) {
		log.Fatalf("oversell committed: %v", err)
	}

	// Report via cluster scan.
	fmt.Println("\nstock report (cluster scan):")
	rtx := db.Begin()
	defer rtx.Abort()
	must(db.ClusterScan(rtx, "items", func(ref ode.Ref) error {
		it, err := ode.Get[*Item](db, rtx, ref)
		if err != nil {
			return err
		}
		fmt.Printf("  %-9s on hand %5.0f  (reorder at %3.0f)  orders=%d  audited txns=%d\n",
			it.SKU, it.OnHand, it.Reorder, len(it.Orders), it.TxAudits)
		for _, o := range it.Orders {
			fmt.Printf("            %s\n", o)
		}
		return nil
	}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
