// Command subscriptions exercises the three §8 future-work extensions
// this reproduction implements on top of the paper's core model:
//
//   - timed triggers: a virtual-clock Timers scheduler posts the declared
//     user event "RenewalDue" every 30 days, driving renewal billing;
//   - event attributes: the LargeCharge mask inspects the amount passed
//     to the Charge member function (Activation.EventArgs) rather than
//     ambient state;
//   - local rules: a batch-import transaction activates a transaction-
//     local budget constraint that costs no storage and no write locks,
//     and vanishes when the transaction ends.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"ode"
)

// Subscription is a customer's recurring plan.
type Subscription struct {
	Customer string
	Plan     string
	Fee      float64
	Paid     float64
	Renewals int
	Flags    []string
}

func subClass() *ode.Class {
	return ode.MustClass("Subscription",
		ode.Factory(func() any { return new(Subscription) }),
		ode.Method("Charge", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			s := self.(*Subscription)
			s.Paid += args[0].(float64)
			return nil, nil
		}),
		ode.Method("Renew", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			s := self.(*Subscription)
			s.Renewals++
			return nil, nil
		}),
		ode.Events("after Charge", "after Renew", "RenewalDue"),
		// §8 "attributes of events": the mask sees Charge's amount.
		ode.Mask("LargeCharge", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return act.EventArgFloat(0) >= 100, nil
		}),
		ode.Mask("OverBudget", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			s := self.(*Subscription)
			return s.Paid > act.ArgFloat(0), nil
		}),
		// Timed renewal: the timer's RenewalDue event charges the fee and
		// bumps the renewal count.
		ode.Trigger("OnRenewalDue", "RenewalDue",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				s := self.(*Subscription)
				if _, err := ctx.Invoke(ctx.Self(), "Charge", s.Fee); err != nil {
					return err
				}
				_, err := ctx.Invoke(ctx.Self(), "Renew")
				return err
			},
			ode.Perpetual()),
		// Large one-off charges get flagged for review.
		ode.Trigger("FlagLargeCharge", "after Charge & LargeCharge",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				s := self.(*Subscription)
				s.Flags = append(s.Flags, fmt.Sprintf("large charge $%.0f", act.EventArgFloat(0)))
				return nil
			},
			ode.Perpetual()),
		// Budget guard, used as a LOCAL rule inside batch imports only.
		ode.Trigger("BudgetGuard", "after Charge & OverBudget",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				ctx.TAbort()
				return nil
			},
			ode.Perpetual(), ode.WithCoupling(ode.Deferred)),
	)
}

func main() {
	db, err := ode.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	must(db.Register(subClass()))

	tx := db.Begin()
	sub, err := db.Create(tx, "Subscription", &Subscription{
		Customer: "daniel", Plan: "pro", Fee: 29,
	})
	must(err)
	_, err = db.Activate(tx, sub, "OnRenewalDue")
	must(err)
	_, err = db.Activate(tx, sub, "FlagLargeCharge")
	must(err)
	must(tx.Commit())

	// --- timed triggers -----------------------------------------------------
	timers := ode.NewTimers(db)
	const month = 30 * 24 * time.Hour
	if _, err := timers.Every(sub, "RenewalDue", month, month); err != nil {
		log.Fatal(err)
	}
	fmt.Println("subscription created: $29/month, renewal timer armed")

	timers.AdvanceTo(3 * month) // a quarter passes
	show := func() *Subscription {
		tx := db.Begin()
		defer tx.Abort()
		s, err := ode.Get[*Subscription](db, tx, sub)
		must(err)
		fmt.Printf("  after %s: %d renewals, $%.0f paid, flags %v\n",
			timers.Now(), s.Renewals, s.Paid, s.Flags)
		return s
	}
	s := show()
	if s.Renewals != 3 || s.Paid != 87 {
		log.Fatalf("expected 3 renewals / $87, got %+v", s)
	}

	// --- event attributes ------------------------------------------------------
	fmt.Println("\none-off upgrade charge of $199 (mask reads the Charge amount):")
	tx = db.Begin()
	_, err = db.Invoke(tx, sub, "Charge", 199.0)
	must(err)
	must(tx.Commit())
	show()

	// --- local rules -------------------------------------------------------------
	fmt.Println("\nbatch import with a transaction-local $400 budget guard:")
	tx = db.Begin()
	if _, err := db.ActivateLocal(tx, sub, "BudgetGuard", 400.0); err != nil {
		log.Fatal(err)
	}
	for _, amt := range []float64{50, 60, 80} { // would reach 286+190=476 > 400
		_, err = db.Invoke(tx, sub, "Charge", amt)
		must(err)
	}
	err = tx.Commit()
	if errors.Is(err, ode.ErrAborted) {
		fmt.Println("  batch rejected at commit: budget exceeded (deferred local constraint)")
	} else {
		log.Fatalf("budget guard did not fire: %v", err)
	}
	// The guard died with its transaction: normal charges work again.
	tx = db.Begin()
	_, err = db.Invoke(tx, sub, "Charge", 10.0)
	must(err)
	must(tx.Commit())
	fmt.Println("  follow-up $10 charge commits fine (local rule gone with its txn)")
	show()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
