package ode_test

import (
	"errors"
	"testing"
	"time"

	"ode"
)

// Meter is a utility meter whose readings drive timed billing — the
// facade-level test of the §8 extensions.
type Meter struct {
	Readings []float64
	Billed   float64
}

func meterClass() *ode.Class {
	return ode.MustClass("Meter",
		ode.Factory(func() any { return new(Meter) }),
		ode.Method("Record", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			m := self.(*Meter)
			m.Readings = append(m.Readings, args[0].(float64))
			return nil, nil
		}),
		ode.Method("Bill", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			m := self.(*Meter)
			total := 0.0
			for _, r := range m.Readings {
				total += r
			}
			m.Billed += total
			m.Readings = nil
			return total, nil
		}),
		ode.Events("after Record", "after Bill", "BillingDue"),
		// Event attributes: the spike mask reads the recorded value.
		ode.Mask("Spike", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return act.EventArgFloat(0) > 1000, nil
		}),
		ode.Trigger("BillOnDue", "BillingDue",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "Bill")
				return err
			},
			ode.Perpetual()),
		ode.Trigger("RejectSpike", "after Record & Spike",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				ctx.TAbort()
				return nil
			},
			ode.Perpetual()),
	)
}

func TestTimersThroughFacade(t *testing.T) {
	db, err := ode.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Register(meterClass()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Meter", &Meter{})
	if _, err := db.Activate(tx, ref, "BillOnDue"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Record", 42.0); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	timers := ode.NewTimers(db)
	if _, err := timers.Every(ref, "BillingDue", time.Hour, time.Hour); err != nil {
		t.Fatal(err)
	}
	timers.AdvanceTo(2 * time.Hour)

	tx3 := db.Begin()
	defer tx3.Abort()
	m, err := ode.Get[*Meter](db, tx3, ref)
	if err != nil {
		t.Fatal(err)
	}
	if m.Billed != 42 || len(m.Readings) != 0 {
		t.Fatalf("billing state: %+v", m)
	}
	if timers.Fired != 2 {
		t.Fatalf("timer fired %d times, want 2", timers.Fired)
	}
}

func TestEventArgsThroughFacade(t *testing.T) {
	db, err := ode.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Register(meterClass()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Meter", &Meter{})
	if _, err := db.Activate(tx, ref, "RejectSpike"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// A normal reading commits; a spike is rejected by the mask reading
	// the Record argument.
	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Record", 10.0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := db.Begin()
	if _, err := db.Invoke(tx3, ref, "Record", 5000.0); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); !errors.Is(err, ode.ErrAborted) {
		t.Fatalf("spike commit = %v, want ErrAborted", err)
	}

	tx4 := db.Begin()
	defer tx4.Abort()
	m, _ := ode.Get[*Meter](db, tx4, ref)
	if len(m.Readings) != 1 || m.Readings[0] != 10 {
		t.Fatalf("readings = %v", m.Readings)
	}
}

func TestLocalRulesThroughFacade(t *testing.T) {
	db, err := ode.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Register(meterClass()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Meter", &Meter{})
	tx.Commit()

	// Activate the spike guard locally for one import only.
	tx2 := db.Begin()
	id, err := db.ActivateLocal(tx2, ref, "RejectSpike")
	if err != nil {
		t.Fatal(err)
	}
	if id.IsNil() {
		t.Fatal("nil local id")
	}
	if _, err := db.Invoke(tx2, ref, "Record", 5000.0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ode.ErrAborted) {
		t.Fatalf("local guard did not fire: %v", err)
	}

	// The next transaction has no guard: the spike goes through.
	tx3 := db.Begin()
	if _, err := db.Invoke(tx3, ref, "Record", 5000.0); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatalf("guard leaked across transactions: %v", err)
	}
}
