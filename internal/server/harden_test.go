package server

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/storage/dali"
)

func startServerOpts(t *testing.T, opts Options) (addr string, srv *Server) {
	t.Helper()
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(credCardClass()); err != nil {
		t.Fatal(err)
	}
	srv = NewWithOptions(db, opts)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr, srv
}

// TestOversizedRequestRejected: a request over the cap gets an error
// response and the connection is closed — the server never buffers an
// unbounded line.
func TestOversizedRequestRejected(t *testing.T) {
	addr, _ := startServerOpts(t, Options{MaxRequestBytes: 1024})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 2 KiB: over the 1 KiB cap but under Scanner's 4 KiB default initial
	// buffer, so this fails if the cap is not applied to the buffer too.
	if _, err := conn.Write([]byte(`{"op":"begin","class":"` + strings.Repeat("x", 2048) + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatalf("no error response before close: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "exceeds 1024 bytes") {
		t.Fatalf("response = %+v, want size-cap error", resp)
	}
	// The connection must now be closed.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after oversized request")
	}
}

// TestIdleConnectionDisconnected: a client silent past the idle read
// deadline is dropped and its open transaction aborted (its locks
// released, so other sessions are not blocked forever).
func TestIdleConnectionDisconnected(t *testing.T) {
	addr, _ := startServerOpts(t, Options{IdleTimeout: 100 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	// Go silent. The server must hang up on us.
	time.Sleep(400 * time.Millisecond)
	if err := c.Commit(); err == nil {
		t.Fatal("commit succeeded on a connection that should be idle-closed")
	}
}

// TestHandlerPanicIsolated: an application method that panics (bad
// argument type from the wire) must cost only that request's
// transaction, not the server process or other sessions.
func TestHandlerPanicIsolated(t *testing.T) {
	addr, _ := startServerOpts(t, Options{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Create("CredCard", &CredCard{CredLim: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// Buy asserts args[0].(float64); a string panics inside the method.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Invoke(ref, "Buy", "not-a-number")
	if err == nil || !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("Invoke with bad arg type = %v, want internal error", err)
	}

	// Same connection is still usable, and the panicked transaction was
	// aborted, so a fresh one can run to completion.
	if err := c.Begin(); err != nil {
		t.Fatalf("begin after panic: %v", err)
	}
	if _, err := c.Invoke(ref, "Buy", 100.0); err != nil {
		t.Fatalf("invoke after panic: %v", err)
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("commit after panic: %v", err)
	}
	var got CredCard
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Get(ref, &got); err != nil {
		t.Fatal(err)
	}
	c.Abort()
	if got.CurrBal != 100 {
		t.Fatalf("CurrBal = %v, want 100 (panicked txn must have no effect)", got.CurrBal)
	}
}

// TestCloseDrainsIdleConnections: with a drain timeout, Close completes
// well before the timeout when sessions are merely idle — the deadline
// nudge wakes them and they exit cleanly.
func TestCloseDrainsIdleConnections(t *testing.T) {
	addr, srv := startServerOpts(t, Options{DrainTimeout: 5 * time.Second})
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v; idle sessions should drain immediately", d)
	}
	for i, c := range clients {
		if err := c.Commit(); err == nil {
			t.Fatalf("client %d: commit succeeded after server Close", i)
		}
	}
}
