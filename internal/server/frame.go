package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary wire framing (docs/PROTOCOL.md is the canonical spec).
//
// A connection upgrades from the newline-delimited JSON protocol to
// binary framing when the client's first four bytes are the magic
// "ODE2"; the server consumes them and echoes the same four bytes back.
// Anything else falls through to the JSON protocol untouched.
//
// After the handshake, both directions carry frames:
//
//	0        4       5        9               17
//	+--------+-------+--------+---------------+----------------+
//	| length | type  |  sid   |  request id   |    payload     |
//	| u32 BE | u8    | u32 BE |    u64 BE     | length-13 bytes|
//	+--------+-------+--------+---------------+----------------+
//
// length counts everything after the length field itself (the 13-byte
// fixed header plus the payload). The payload is a JSON-encoded Request
// (client→server) or Response (server→client): framing is binary, op
// semantics are byte-for-byte the JSON protocol's, which is what makes
// the two transports provably equivalent.
//
// sid names a session (one open transaction) within the connection;
// the single-session Client uses sid 0, a Mux allocates one per
// MuxSession. Requests within one sid complete in order; requests on
// different sids complete out of order.

const (
	// protoMagic upgrades a fresh connection to binary framing. The
	// bytes never collide with the JSON protocol: every JSON request
	// line starts with '{'.
	protoMagic = "ODE2"

	// frameHeaderLen is the fixed header after the length prefix:
	// type (1) + sid (4) + request id (8).
	frameHeaderLen = 13

	frameReq   byte = 0x01 // client→server: payload is a JSON Request
	frameResp  byte = 0x02 // server→client: payload is a JSON Response
	frameClose byte = 0x03 // client→server: end session sid (abort its txn); empty payload
)

// frameHeader is the decoded fixed part of one frame; the payload (n
// bytes) follows on the wire and is read — or skipped — by the caller.
type frameHeader struct {
	typ byte
	sid uint32
	id  uint64
	n   int // payload length
}

// errFraming marks a malformed frame header: the stream can no longer
// be trusted and the connection must close. Contrast ErrRequestTooLarge
// over binary framing, where the header is sound and the connection
// survives.
var errFraming = errors.New("server: malformed binary frame")

// readFrameHeader decodes the length prefix and fixed header. It does
// NOT read the payload, so the caller can enforce its own size cap and
// skip an oversized payload without allocating it.
func readFrameHeader(br *bufio.Reader) (frameHeader, error) {
	var hdr [4 + frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frameHeader{}, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length < frameHeaderLen {
		return frameHeader{}, fmt.Errorf("%w: length %d < header %d", errFraming, length, frameHeaderLen)
	}
	return frameHeader{
		typ: hdr[4],
		sid: binary.BigEndian.Uint32(hdr[5:9]),
		id:  binary.BigEndian.Uint64(hdr[9:17]),
		n:   int(length - frameHeaderLen),
	}, nil
}

// writeFrame encodes one frame. The header is assembled into a single
// buffer so a frame is at most two Write calls (header+payload); the
// caller supplies a bufio.Writer for coalescing.
func writeFrame(w io.Writer, typ byte, sid uint32, id uint64, payload []byte) error {
	var hdr [4 + frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameHeaderLen+len(payload)))
	hdr[4] = typ
	binary.BigEndian.PutUint32(hdr[5:9], sid)
	binary.BigEndian.PutUint64(hdr[9:17], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}
