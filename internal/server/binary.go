package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/txn"
)

// Server side of the ODE2 binary protocol (frame.go has the layout,
// docs/PROTOCOL.md the spec). One connection fans out to three kinds of
// goroutine:
//
//	reader (this goroutine) ──► per-sid workers ──► writer
//
// The reader decodes frames and routes each request to its session's
// worker; a worker is one sid's session — it owns that sid's open
// transaction and processes its requests strictly in order (per-session
// FIFO, matching the JSON protocol's semantics). Different sids proceed
// concurrently, so responses complete out of order across sessions and
// the single writer goroutine serializes them back onto the wire,
// flushing only when its queue runs dry (small-write coalescing: a
// pipelined burst of responses becomes one TCP segment).
//
// Backpressure is channel depth end to end: a slow client stops the
// writer, which fills the out queue, which blocks workers, which fills
// their queues, which blocks the reader — exactly the TCP-level
// backpressure the JSON protocol gets for free.

// binQueueDepth bounds each worker's request queue and the shared
// response queue. Deep enough that a pipelining client never stalls on
// an empty-queue handoff; shallow enough that one connection cannot
// buffer unbounded work.
const binQueueDepth = 256

// binReq is one routed request; a nil req is the close-session
// sentinel (frameClose).
type binReq struct {
	id  uint64
	req *Request
}

// binOut is one response headed for the writer.
type binOut struct {
	sid  uint32
	id   uint64
	resp *Response
}

// binWorker is one sid's session goroutine.
type binWorker struct {
	sid uint32
	ch  chan binReq
}

// serveBinary runs the frame loop for one upgraded connection. br has
// consumed the magic; cw counts bytes out.
func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader, cw *countingWriter) {
	out := make(chan binOut, binQueueDepth)
	var (
		writerWG sync.WaitGroup
		workerWG sync.WaitGroup
		inflight atomic.Int64
	)

	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.binaryWriter(conn, cw, out)
	}()

	workers := make(map[uint32]*binWorker) // reader-goroutine-owned
	defer func() {
		for _, w := range workers {
			close(w.ch)
		}
		workerWG.Wait()
		close(out)
		writerWG.Wait()
	}()

	worker := func(sid uint32) *binWorker {
		if w, ok := workers[sid]; ok {
			return w
		}
		w := &binWorker{sid: sid, ch: make(chan binReq, binQueueDepth)}
		workers[sid] = w
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			s.binaryWorker(conn, w, out, &inflight)
		}()
		return w
	}

	for {
		if s.opts.IdleTimeout > 0 {
			if inflight.Load() == 0 {
				// Arm the idle deadline only when the connection is
				// quiescent: a pipelined batch blocked on locks must not
				// get its connection cut from under it.
				conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
			} else {
				conn.SetReadDeadline(time.Time{})
			}
		}
		h, err := readFrameHeader(br)
		if err != nil {
			return // disconnect, idle deadline, or unrecoverable framing
		}
		s.m.framesIn.Inc()
		if h.n > s.opts.MaxRequestBytes {
			// The header still delimits the request exactly: skip the
			// payload without materializing it and keep the connection —
			// unlike the JSON path, framing survives an oversized request.
			if _, err := io.CopyN(io.Discard, br, int64(h.n)); err != nil {
				return
			}
			s.m.oversized.Inc()
			out <- binOut{sid: h.sid, id: h.id, resp: &Response{
				Error: fmt.Sprintf("%v: exceeds %d bytes", ErrRequestTooLarge, s.opts.MaxRequestBytes),
			}}
			continue
		}
		payload := make([]byte, h.n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		switch h.typ {
		case frameClose:
			// Routed through the worker so it lands after every request
			// already queued on the sid (per-session FIFO). The worker
			// exits after answering; dropping it from the map means a
			// later frame on the same sid starts a fresh session.
			if w, ok := workers[h.sid]; ok {
				w.ch <- binReq{id: h.id}
				delete(workers, h.sid)
			} else {
				// Closing an unknown sid is a no-op, kept idempotent so a
				// client can always send close on teardown.
				out <- binOut{sid: h.sid, id: h.id, resp: &Response{OK: true}}
			}
		case frameReq:
			var req Request
			if err := json.Unmarshal(payload, &req); err != nil {
				// Framing is intact, so unlike the JSON protocol a bad
				// payload costs only this request, not the connection.
				out <- binOut{sid: h.sid, id: h.id, resp: &Response{Error: "malformed request: " + err.Error()}}
				continue
			}
			if _, ok := s.opts.StreamOps[req.Op]; ok {
				out <- binOut{sid: h.sid, id: h.id, resp: &Response{Error: ErrStreamOverBinary.Error()}}
				continue
			}
			depth := inflight.Add(1)
			s.m.pipelineDepth.Observe(depth)
			worker(h.sid).ch <- binReq{id: h.id, req: &req}
		default:
			// An unknown frame type means the peer speaks a different
			// dialect; answer and hang up rather than guess at framing.
			out <- binOut{sid: h.sid, id: h.id, resp: &Response{Error: fmt.Sprintf("unknown frame type 0x%02x", h.typ)}}
			return
		}
	}
}

// binaryWorker is one session's request loop: strictly in-order within
// the sid, concurrent across sids.
func (s *Server) binaryWorker(conn net.Conn, w *binWorker, out chan<- binOut, inflight *atomic.Int64) {
	sess := &session{srv: s, db: s.db, primary: s.opts.PrimaryAddr, proto: "binary"}
	defer func() {
		if sess.tx != nil && sess.tx.State() == txn.Active {
			sess.tx.Abort()
		}
	}()
	for r := range w.ch {
		if r.req == nil {
			// frameClose: abort the open transaction (the same contract a
			// JSON disconnect has), acknowledge, and retire the worker.
			if sess.tx != nil && sess.tx.State() == txn.Active {
				sess.tx.Abort()
				sess.tx = nil
			}
			out <- binOut{sid: w.sid, id: r.id, resp: &Response{OK: true}}
			return
		}
		var resp *Response
		if fn, ok := s.opts.ExtraOps[r.req.Op]; ok {
			resp = safeExtra(fn, r.req)
		} else {
			resp = sess.safeHandle(r.req)
		}
		out <- binOut{sid: w.sid, id: r.id, resp: resp}
		if inflight.Add(-1) == 0 && s.opts.IdleTimeout > 0 {
			// The reader cleared the deadline while work was in flight
			// and is already blocked; re-arm it here or an idle pipelined
			// connection would never time out.
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
	}
}

// binaryWriter is the connection's single writer loop. Responses are
// buffered and the buffer flushed only when the queue runs dry, so a
// burst of pipelined completions coalesces into few syscalls. After a
// write error it keeps draining the queue (discarding) so workers never
// block on a dead connection.
func (s *Server) binaryWriter(conn net.Conn, cw *countingWriter, out <-chan binOut) {
	bw := bufio.NewWriter(cw)
	var werr error
	fail := func(err error) {
		werr = err
		conn.Close() // unblock the reader; serveBinary tears down
	}
	for o := range out {
		if werr != nil {
			continue
		}
		payload, err := json.Marshal(o.resp)
		if err != nil {
			// A handler returned an unmarshalable Result; the JSON
			// protocol would kill the connection here, but framing lets
			// us downgrade it to a per-request error.
			payload, _ = json.Marshal(&Response{Error: "marshal response: " + err.Error()})
		}
		if err := writeFrame(bw, frameResp, o.sid, o.id, payload); err != nil {
			fail(err)
			continue
		}
		s.m.framesOut.Inc()
		if len(out) == 0 {
			if err := bw.Flush(); err != nil {
				fail(err)
			}
		}
	}
	if werr == nil {
		bw.Flush()
	}
}
