package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/storage/dali"
)

// startWireServer is startServer with explicit options and the database
// handed back for metric assertions.
func startWireServer(t *testing.T, opts Options) (addr string, db *core.Database) {
	t.Helper()
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(credCardClass()); err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(db, opts)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr, db
}

// TestPipelinedInvokes is the tentpole behavior end to end: a burst of
// requests written without waiting, matched back by request ID, all on
// one session — and the session's FIFO order preserved (the running
// balance each Buy returns is strictly increasing).
func TestPipelinedInvokes(t *testing.T) {
	addr, _ := startWireServer(t, Options{})
	c, err := DialOptions(addr, ClientOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Create("CredCard", &CredCard{CredLim: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	calls := make([]*Call, n)
	for i := range calls {
		calls[i] = c.Go(&Request{Op: "invoke", Ref: ref, Method: "Buy", Args: []any{1.0}})
	}
	for i, call := range calls {
		resp, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := resp.Result.(float64); got != float64(i+1) {
			t.Fatalf("call %d returned balance %v, want %d (per-session FIFO broken)", i, got, i+1)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestOutOfOrderAcrossSessions proves out-of-order completion: with sid
// B's request stuck behind a write lock, sid C's later request on the
// same connection completes first.
func TestOutOfOrderAcrossSessions(t *testing.T) {
	addr, _ := startWireServer(t, Options{})
	m, err := DialMux(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	a, b, c := m.Session(), m.Session(), m.Session()

	a.Begin()
	ref1, err := a.Create("CredCard", &CredCard{CredLim: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := a.Create("CredCard", &CredCard{CredLim: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	// a holds ref1's write lock in an open transaction.
	a.Begin()
	if _, err := a.Invoke(ref1, "Buy", 1); err != nil {
		t.Fatal(err)
	}

	// b's invoke on ref1 blocks behind a; it was sent first.
	b.Begin()
	blocked := b.Go(&Request{Op: "invoke", Ref: ref1, Method: "Buy", Args: []any{1.0}})

	// c's invoke on ref2, sent later on the same connection, completes
	// while b is still stuck.
	c.Begin()
	if _, err := c.Invoke(ref2, "Buy", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked.Done():
		t.Fatal("b's lock-blocked request completed while the lock was held")
	default:
	}

	// Releasing the lock lets b finish.
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := blocked.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestProtoOp checks each transport reports its negotiated protocol.
func TestProtoOp(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr *transport) {
		c := tr.dial(t)
		resp, err := c.Call(&Request{Op: "proto"})
		if err != nil {
			t.Fatal(err)
		}
		st := resp.Result.(map[string]any)
		want := "binary"
		if tr.name == "json" {
			want = "json"
		}
		if st["protocol"] != want {
			t.Fatalf("proto over %s = %v, want %q", tr.name, st["protocol"], want)
		}
		if st["binary_enabled"] != true {
			t.Fatalf("binary_enabled = %v", st["binary_enabled"])
		}
	})
}

// TestOversizedRequestBinaryKeepsConn: over binary framing an oversized
// request costs one typed error, not the connection — the frame header
// still delimits it exactly. (Contrast the JSON protocol, where the
// same condition closes the connection; harden_test covers that.)
func TestOversizedRequestBinaryKeepsConn(t *testing.T) {
	addr, _ := startWireServer(t, Options{MaxRequestBytes: 1024})
	c, err := DialOptions(addr, ClientOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Create("CredCard", &CredCard{Holder: strings.Repeat("x", 2048)})
	if err == nil {
		t.Fatal("oversized create succeeded")
	}
	if !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("err = %v, want ErrRequestTooLarge", err)
	}
	// Same connection still works.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if c.Reconnects() != 0 {
		t.Fatalf("client redialed %d times; binary oversized must keep the conn", c.Reconnects())
	}
}

// TestOversizedRequestJSONTypedError: the JSON path's regression — the
// client sees the typed error (not a silent disconnect) before the
// server hangs up.
func TestOversizedRequestJSONTypedError(t *testing.T) {
	addr, _ := startWireServer(t, Options{MaxRequestBytes: 1024})
	c, err := DialOptions(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Create("CredCard", &CredCard{Holder: strings.Repeat("x", 2048)})
	if !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("err = %v, want ErrRequestTooLarge", err)
	}
}

// TestMalformedPayloadBinaryKeepsConn drives raw frames: a frame whose
// payload is not JSON earns a per-request error, and the connection
// keeps serving.
func TestMalformedPayloadBinaryKeepsConn(t *testing.T) {
	addr, _ := startWireServer(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(protoMagic)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	echo := make([]byte, len(protoMagic))
	if _, err := io.ReadFull(br, echo); err != nil || string(echo) != protoMagic {
		t.Fatalf("handshake echo = %q, %v", echo, err)
	}

	readResp := func() (frameHeader, Response) {
		t.Helper()
		h, err := readFrameHeader(br)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, h.n)
		if _, err := io.ReadFull(br, payload); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			t.Fatal(err)
		}
		return h, resp
	}

	if err := writeFrame(conn, frameReq, 1, 7, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	h, resp := readResp()
	if h.id != 7 || resp.OK || !strings.Contains(resp.Error, "malformed request") {
		t.Fatalf("frame id=%d resp=%+v", h.id, resp)
	}

	// The connection survived: a well-formed request on it succeeds.
	if err := writeFrame(conn, frameReq, 1, 8, []byte(`{"op":"proto"}`)); err != nil {
		t.Fatal(err)
	}
	h, resp = readResp()
	if h.id != 8 || !resp.OK {
		t.Fatalf("follow-up frame id=%d resp=%+v", h.id, resp)
	}

	// Closing an unknown sid is acknowledged, idempotently.
	if err := writeFrame(conn, frameClose, 99, 9, nil); err != nil {
		t.Fatal(err)
	}
	if h, resp = readResp(); h.id != 9 || !resp.OK {
		t.Fatalf("close unknown sid: id=%d resp=%+v", h.id, resp)
	}
}

// TestBinaryDisabled: -protocol json servers refuse the handshake with
// a typed error instead of hanging the client; JSON clients are
// untouched.
func TestBinaryDisabled(t *testing.T) {
	addr, _ := startWireServer(t, Options{DisableBinary: true})
	if _, err := DialOptions(addr, ClientOptions{Binary: true}); !errors.Is(err, ErrBinaryDisabled) {
		t.Fatalf("binary dial = %v, want ErrBinaryDisabled", err)
	}
	c, err := DialOptions(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamOpOverBinaryRejected: stream ops own the raw connection and
// cannot nest inside frames; the server says so with a typed error and
// the connection survives.
func TestStreamOpOverBinaryRejected(t *testing.T) {
	addr, _ := startWireServer(t, Options{
		StreamOps: map[string]StreamHandler{
			"x.stream": func(conn net.Conn, req *Request) error { return nil },
		},
	})
	c, err := DialOptions(addr, ClientOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(&Request{Op: "x.stream"})
	if err == nil || !strings.Contains(err.Error(), ErrStreamOverBinary.Error()) {
		t.Fatalf("stream over binary = %v, want %v", err, ErrStreamOverBinary)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryIdleDisconnectAndRedial: the idle deadline applies to a
// quiescent binary connection, and the client transparently redials.
func TestBinaryIdleDisconnectAndRedial(t *testing.T) {
	addr, _ := startWireServer(t, Options{IdleTimeout: 100 * time.Millisecond})
	c, err := DialOptions(addr, ClientOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // server cuts the idle conn
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects())
	}
}

// TestWireMetrics: the server.* wire counters move and the pipeline
// depth histogram sees the pipelined burst.
func TestWireMetrics(t *testing.T) {
	addr, db := startWireServer(t, Options{})
	c, err := DialOptions(addr, ClientOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Begin()
	ref, err := c.Create("CredCard", &CredCard{CredLim: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	calls := make([]*Call, 64)
	for i := range calls {
		calls[i] = c.Go(&Request{Op: "invoke", Ref: ref, Method: "Buy", Args: []any{1.0}})
	}
	for _, call := range calls {
		if _, err := call.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	vals := map[string]uint64{}
	hists := map[string]uint64{}
	for _, mv := range db.Observability().Snapshot() {
		vals[mv.Name] = mv.Value
		hists[mv.Name] = mv.Count
	}
	for _, name := range []string{"server.bytes_in", "server.bytes_out", "server.frames_in", "server.frames_out", "server.conns_binary"} {
		if vals[name] == 0 {
			t.Fatalf("%s = 0, want > 0", name)
		}
	}
	if hists["server.pipeline_depth"] == 0 {
		t.Fatal("server.pipeline_depth histogram saw no observations")
	}
	if vals["server.frames_in"] != vals["server.frames_out"] {
		t.Fatalf("frames_in %d != frames_out %d (every request frame gets exactly one response)",
			vals["server.frames_in"], vals["server.frames_out"])
	}
}

// TestMuxConcurrentSessions hammers one connection from many goroutines
// with pipelined writes (race-detector food for the in-flight table,
// the writer loop, and the per-sid workers).
func TestMuxConcurrentSessions(t *testing.T) {
	addr, _ := startWireServer(t, Options{})
	m, err := DialMux(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	setup := m.Session()
	setup.Begin()
	refs := make([]uint64, 8)
	for i := range refs {
		if refs[i], err = setup.Create("CredCard", &CredCard{CredLim: 1e12}); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	const perSession = 50
	var wg sync.WaitGroup
	errs := make(chan error, len(refs))
	for _, ref := range refs {
		wg.Add(1)
		go func(ref uint64) {
			defer wg.Done()
			s := m.Session()
			defer s.Close()
			if err := s.Begin(); err != nil {
				errs <- err
				return
			}
			calls := make([]*Call, perSession)
			for j := range calls {
				calls[j] = s.Go(&Request{Op: "invoke", Ref: ref, Method: "Buy", Args: []any{1.0}})
			}
			for _, call := range calls {
				if _, err := call.Wait(); err != nil {
					errs <- err
					return
				}
			}
			errs <- s.Commit()
		}(ref)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	check := m.Session()
	check.Begin()
	for _, ref := range refs {
		var card CredCard
		if err := check.Get(ref, &card); err != nil {
			t.Fatal(err)
		}
		if card.CurrBal != perSession {
			t.Fatalf("balance = %v, want %d", card.CurrBal, perSession)
		}
	}
	check.Abort()
}

// TestBuiltinOpsComplete pins BuiltinOps to the dispatcher: every
// listed op must be accepted (not "unknown op"), and the known
// dispatch-table size must match, so adding a case to handle() without
// updating BuiltinOps fails here.
func TestBuiltinOpsComplete(t *testing.T) {
	addr, _ := startWireServer(t, Options{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, op := range BuiltinOps() {
		_, err := c.Call(&Request{Op: op})
		if err != nil && strings.Contains(err.Error(), "unknown op") {
			t.Fatalf("BuiltinOps lists %q but the dispatcher rejects it", op)
		}
	}
	if _, err := c.Call(&Request{Op: "definitely-not-an-op"}); err == nil ||
		!strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("sentinel unknown op = %v", err)
	}
}

// FuzzFrameDecode feeds arbitrary bytes through the frame decoder the
// way serveBinary consumes them: truncated, oversized, and garbage
// length prefixes must surface as typed errors, never panics or hangs.
func FuzzFrameDecode(f *testing.F) {
	var seed bytes.Buffer
	writeFrame(&seed, frameReq, 1, 1, []byte(`{"op":"proto"}`))
	f.Add(seed.Bytes())
	f.Add([]byte(protoMagic))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 13, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPayload = 1 << 16
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			h, err := readFrameHeader(br)
			if err != nil {
				if errors.Is(err, errFraming) || err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("untyped decode error: %v", err)
			}
			if h.n > maxPayload {
				if _, err := io.CopyN(io.Discard, br, int64(h.n)); err != nil {
					return
				}
				continue
			}
			payload := make([]byte, h.n)
			if _, err := io.ReadFull(br, payload); err != nil {
				return
			}
		}
	})
}
