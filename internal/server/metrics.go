package server

import (
	"io"

	"ode/internal/obs"
)

// serverMetrics is the server's wire-level observability surface,
// registered into the database's obs.Registry so it shows up in
// /metrics, ode-inspect, and the doc-coverage test alongside the
// engine's own counters. Registration uses Ensure* because several
// Servers can be constructed over one database (tests do this when
// bouncing listeners); they then share one set of counters, which is
// the right reading anyway — the metrics describe the process's server
// surface, not one listener.
type serverMetrics struct {
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	framesIn      *obs.Counter
	framesOut     *obs.Counter
	connsJSON     *obs.Counter
	connsBinary   *obs.Counter
	oversized     *obs.Counter
	pipelineDepth *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		bytesIn:       reg.EnsureCounter("server.bytes_in", "bytes", "bytes read from client connections (both protocols)"),
		bytesOut:      reg.EnsureCounter("server.bytes_out", "bytes", "bytes written to client connections (both protocols)"),
		framesIn:      reg.EnsureCounter("server.frames_in", "count", "binary frames received (requests, close frames)"),
		framesOut:     reg.EnsureCounter("server.frames_out", "count", "binary frames sent (responses)"),
		connsJSON:     reg.EnsureCounter("server.conns_json", "count", "connections served over the newline-delimited JSON protocol"),
		connsBinary:   reg.EnsureCounter("server.conns_binary", "count", "connections upgraded to ODE2 binary framing"),
		oversized:     reg.EnsureCounter("server.oversized_requests", "count", "requests rejected for exceeding MaxRequestBytes"),
		pipelineDepth: reg.EnsureHistogram("server.pipeline_depth", "count", "histogram: requests in flight on a binary connection, observed as each frame arrives"),
	}
}

// countingReader/countingWriter wrap a connection so every byte moved
// on the wire lands in server.bytes_in / server.bytes_out regardless of
// protocol.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}

type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(uint64(n))
	}
	return n, err
}
