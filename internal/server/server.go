// Package server exposes an Ode database to multiple concurrent client
// applications over TCP, completing the §7 "global composite events"
// story in live form: the paper's composite events "may span more than
// one application" because TriggerStates live in the database — here,
// several network clients interleave transactions against one Database
// and jointly advance each other's trigger patterns.
//
// Two protocols share the listen port (docs/PROTOCOL.md is the
// canonical spec for both). The default is newline-delimited JSON: each
// connection is one session holding at most one open transaction (the
// O++ execution model: a client is a single-threaded application), one
// request in flight at a time. A client whose first four bytes are
// "ODE2" upgrades the connection to length-prefixed binary framing
// (frame.go) with request IDs, pipelining, and multiplexed sessions —
// same ops, same JSON payloads, framed instead of line-delimited.
// Class definitions — Go functions — cannot travel over the wire; the
// server binary links the application's classes, exactly as an Ode
// application links the object manager (§2).
//
// Request:  {"op":"invoke","ref":18,"method":"Buy","args":[100]}
// Response: {"ok":true,"result":...}  or  {"ok":false,"error":"..."}
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ode/internal/core"
	"ode/internal/obs"
	"ode/internal/storage"
	"ode/internal/txn"
)

// MaxTraceRate bounds the trace op's sampling rate: one trace per 2³²
// postings is already indistinguishable from off, and anything larger
// is a client bug (or an overflowed computation) worth rejecting.
const MaxTraceRate = 1 << 32

// ErrInvalidTraceRate reports a trace op whose rate is neither -1
// (disable), 0 (leave unchanged), nor 1..MaxTraceRate.
var ErrInvalidTraceRate = errors.New("server: invalid trace rate (want -1 to disable, 0 to leave unchanged, or 1..2^32)")

// ErrInvalidChainCause reports a trace.chain op whose cause is not a
// parseable cause ID (and raw was not set).
var ErrInvalidChainCause = errors.New(`server: invalid trace.chain cause (want "%016x-%d" form, or raw:true for flat events)`)

// ErrSnapshotWrite reports a mutating op sent on a session whose open
// transaction is a snapshot ({"op":"begin","snapshot":true}): snapshot
// transactions are read-only by construction. Commit (or abort) and
// begin a regular transaction. It mirrors core.ErrReadOnly, but unlike
// the replica gate there is no redirect — the same server accepts the
// write on a regular transaction.
var ErrSnapshotWrite = errors.New("server: transaction is a snapshot (read-only); begin a regular transaction for writes")

// ErrRequestTooLarge reports a request bigger than MaxRequestBytes. On
// the JSON protocol the server sends it as an error response and then
// closes (the line framing can no longer be trusted); on the binary
// protocol the frame header still delimits the request exactly, so the
// payload is skipped, the error response carries the request's id, and
// the connection stays up.
var ErrRequestTooLarge = errors.New("server: request too large")

// ErrBinaryDisabled reports an ODE2 handshake against a server running
// with Options.DisableBinary (ode-server -protocol json). The server
// answers with this error as a JSON response line and closes, so a
// binary client fails fast instead of hanging on the handshake echo.
var ErrBinaryDisabled = errors.New("server: binary protocol disabled (server is JSON-only)")

// ErrStreamOverBinary reports a StreamOps op (repl.subscribe,
// repl.recon) sent over binary framing. Stream ops take over the raw
// connection with their own frame grammar (docs/REPLICATION.md), which
// cannot nest inside ODE2 frames; dial a plain JSON connection instead.
var ErrStreamOverBinary = errors.New("server: stream ops require the JSON protocol")

// Request is one client command.
type Request struct {
	Op      string          `json:"op"`
	Class   string          `json:"class,omitempty"`
	Ref     uint64          `json:"ref,omitempty"`
	Method  string          `json:"method,omitempty"`
	Trigger string          `json:"trigger,omitempty"`
	Event   string          `json:"event,omitempty"`
	Cluster string          `json:"cluster,omitempty"`
	ID      uint64          `json:"id,omitempty"` // trigger id for deactivate; scoping catalog class ID on repl.recon (0 = whole store)
	Args    []any           `json:"args,omitempty"`
	Value   json.RawMessage `json:"value,omitempty"` // object payload for create
	Rate    int64           `json:"rate,omitempty"`  // trace op: >0 sets 1-in-n sampling, <0 disables, 0 leaves unchanged
	LSN     uint64          `json:"lsn,omitempty"`   // stream ops: resume position (repl.subscribe)
	// Recon, on repl.subscribe, offers anti-entropy reconciliation for
	// an out-of-range resume instead of a full snapshot bootstrap.
	Recon bool `json:"recon,omitempty"`
	// Repair, on repl.verify, authorizes in-place repair of whatever
	// divergence the audit confirms.
	Repair bool `json:"repair,omitempty"`
	// Snapshot, on begin, opens a lock-free read-only snapshot
	// transaction instead of a regular one; mutating ops on the session
	// then fail with ErrSnapshotWrite until commit/abort.
	Snapshot bool `json:"snapshot,omitempty"`
	// Origin and Events, on shard.ingest, carry a batch of remote event
	// notifications from the named origin shard (docs/SHARDING.md).
	Origin uint64             `json:"origin,omitempty"`
	Events []core.RemoteEvent `json:"events,omitempty"`
	// Cause, on trace.chain, is the root cause ID whose cascade to
	// assemble (the "%016x-%d" form cause IDs are rendered in).
	Cause string `json:"cause,omitempty"`
	// Raw, on trace.chain, skips assembly and returns this node's flat
	// chain events; the router uses it to collect from every shard
	// before assembling fleet-wide.
	Raw bool `json:"raw,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK       bool            `json:"ok"`
	Error    string          `json:"error,omitempty"`
	Aborted  bool            `json:"aborted,omitempty"`  // txn rolled back (tabort/deadlock)
	Redirect string          `json:"redirect,omitempty"` // write hit a read replica: retry against this primary address
	Ref      uint64          `json:"ref,omitempty"`
	ID       uint64          `json:"id,omitempty"`
	Refs     []uint64        `json:"refs,omitempty"`
	Result   any             `json:"result,omitempty"`
	Value    json.RawMessage `json:"value,omitempty"`
	// Watermark, on shard.ingest, acknowledges every event with
	// seq <= Watermark from the requesting origin (docs/SHARDING.md).
	Watermark uint64 `json:"watermark,omitempty"`
}

// StreamHandler takes over a connection after its request line: the
// handler owns reads and writes until it returns, and the connection is
// closed afterwards. Idle timeouts are cleared first — a streaming
// subscriber is expected to sit quiet for long stretches.
type StreamHandler func(conn net.Conn, req *Request) error

// DefaultMaxRequestBytes caps a single request line when Options leaves
// MaxRequestBytes zero.
const DefaultMaxRequestBytes = 1 << 20

// Options hardens a server against misbehaving clients.
type Options struct {
	// MaxRequestBytes caps one request line; an oversized request gets
	// an error response and the connection is closed. Default
	// DefaultMaxRequestBytes.
	MaxRequestBytes int
	// IdleTimeout, when positive, is the per-connection read deadline
	// between requests: a client silent for longer is disconnected (its
	// open transaction aborted) instead of pinning a handler goroutine
	// and its locks forever.
	IdleTimeout time.Duration
	// DrainTimeout, when positive, makes Close graceful: idle readers
	// are nudged with an expired read deadline, in-flight handlers get
	// up to this long to write their response and exit, and only the
	// stragglers are hard-closed.
	DrainTimeout time.Duration
	// PrimaryAddr, set on a read replica, is attached as Response.
	// Redirect whenever a request fails with core.ErrReadOnly, so
	// clients learn where writes go without out-of-band configuration.
	PrimaryAddr string
	// ExtraOps adds sessionless ops (admin/introspection; the repl
	// status and promote ops) dispatched before the built-ins. The
	// handler runs with no transaction attached and must not retain req.
	ExtraOps map[string]func(req *Request) *Response
	// StreamOps adds connection-consuming ops (the repl subscribe op):
	// after the request line the handler owns the connection and the
	// normal request loop never resumes.
	StreamOps map[string]StreamHandler
	// DisableBinary refuses the ODE2 handshake (ode-server
	// -protocol json): a client attempting the upgrade gets
	// ErrBinaryDisabled as a JSON response line and the connection is
	// closed. The JSON protocol is unaffected.
	DisableBinary bool
}

// Server serves one database to many connections.
type Server struct {
	db   *core.Database
	opts Options
	m    *serverMetrics

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New wraps db in a server with default options.
func New(db *core.Database) *Server { return NewWithOptions(db, Options{}) }

// NewWithOptions wraps db in a server with explicit hardening limits.
func NewWithOptions(db *core.Database, opts Options) *Server {
	if opts.MaxRequestBytes <= 0 {
		opts.MaxRequestBytes = DefaultMaxRequestBytes
	}
	return &Server{
		db:    db,
		opts:  opts,
		m:     newServerMetrics(db.Observability()),
		conns: make(map[net.Conn]struct{}),
	}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving happens on background goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and shuts connections down. With a
// DrainTimeout it first gives sessions that long to finish their
// in-flight response (idle readers are woken by an expired read
// deadline and exit cleanly); connections still alive after the grace
// period — and all of them when DrainTimeout is zero — are hard-closed,
// aborting their open transactions. Close waits for every handler.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	if s.opts.DrainTimeout > 0 {
		now := time.Now()
		for _, c := range conns {
			c.SetReadDeadline(now)
		}
		done := make(chan struct{})
		go func() { s.wg.Wait(); close(done) }()
		select {
		case <-done:
			return err
		case <-time.After(s.opts.DrainTimeout):
		}
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// session is one connection's (or, over binary framing, one sid's)
// state.
type session struct {
	srv     *Server
	db      *core.Database
	tx      *txn.Txn
	primary string // Options.PrimaryAddr: redirect target for writes on a replica
	proto   string // negotiated transport, "json" or "binary" (the proto op reports it)
}

// serve sniffs the protocol for one connection — the first four bytes
// upgrade to binary framing if they are the ODE2 magic (every JSON
// request line starts with '{', so the magic cannot collide) — and runs
// the matching request loop.
func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	if s.opts.IdleTimeout > 0 {
		// Cover the handshake sniff itself; the per-protocol loops
		// re-arm the deadline per request.
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	}
	br := bufio.NewReader(&countingReader{r: conn, c: s.m.bytesIn})
	enc := json.NewEncoder(&countingWriter{w: conn, c: s.m.bytesOut})
	if magic, err := br.Peek(len(protoMagic)); err == nil && string(magic) == protoMagic {
		if s.opts.DisableBinary {
			enc.Encode(&Response{Error: ErrBinaryDisabled.Error()})
			return
		}
		br.Discard(len(protoMagic))
		cw := &countingWriter{w: conn, c: s.m.bytesOut}
		if _, err := cw.Write([]byte(protoMagic)); err != nil {
			return
		}
		s.m.connsBinary.Inc()
		s.serveBinary(conn, br, cw)
		return
	}
	s.m.connsJSON.Inc()
	s.serveJSON(conn, br, enc)
}

// serveJSON runs the newline-delimited JSON request loop. Requests are
// read a line at a time so the size cap applies before any JSON is
// parsed.
func (s *Server) serveJSON(conn net.Conn, br *bufio.Reader, enc *json.Encoder) {
	sess := &session{srv: s, db: s.db, primary: s.opts.PrimaryAddr, proto: "json"}
	defer func() {
		if sess.tx != nil && sess.tx.State() == txn.Active {
			sess.tx.Abort()
		}
	}()
	sc := bufio.NewScanner(br)
	// Scanner's effective token limit is max(cap(buf), max), so the
	// initial buffer must not exceed the configured cap.
	initial := 4096
	if initial > s.opts.MaxRequestBytes {
		initial = s.opts.MaxRequestBytes
	}
	sc.Buffer(make([]byte, initial), s.opts.MaxRequestBytes)
	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				// Typed so clients can match it; then hang up — with the
				// oversized line half-consumed, line framing is gone.
				s.m.oversized.Inc()
				enc.Encode(&Response{Error: fmt.Sprintf("%v: exceeds %d bytes", ErrRequestTooLarge, s.opts.MaxRequestBytes)})
			}
			return // disconnect, idle deadline, or oversized request
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// Can't trust the framing anymore: report and hang up.
			enc.Encode(&Response{Error: "malformed request: " + err.Error()})
			return
		}
		if h, ok := s.opts.StreamOps[req.Op]; ok {
			// The handler owns the connection from here. Clear the idle
			// deadline: a subscriber may legitimately send nothing for
			// the rest of the connection's life.
			conn.SetReadDeadline(time.Time{})
			if err := h(conn, &req); err != nil {
				enc.Encode(&Response{Error: err.Error()})
			}
			return
		}
		if fn, ok := s.opts.ExtraOps[req.Op]; ok {
			if err := enc.Encode(safeExtra(fn, &req)); err != nil {
				return
			}
			continue
		}
		if err := enc.Encode(sess.safeHandle(&req)); err != nil {
			return
		}
	}
}

func (sess *session) fail(err error) *Response {
	r := &Response{Error: err.Error()}
	if errors.Is(err, core.ErrSnapshotWrite) {
		// One wire message for every snapshot-write rejection, whether
		// the session gate caught it (needWriteTx) or the engine did
		// (invoke of a mutating method).
		r.Error = ErrSnapshotWrite.Error()
	}
	if errors.Is(err, txn.ErrAborted) {
		r.Aborted = true
	}
	if sess.primary != "" && errors.Is(err, core.ErrReadOnly) {
		r.Redirect = sess.primary
	}
	return r
}

// safeExtra isolates an ExtraOps handler panic to the request that
// caused it, mirroring safeHandle.
func safeExtra(fn func(*Request) *Response, req *Request) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Error: fmt.Sprintf("internal error in %q handler: %v", req.Op, r)}
		}
	}()
	return fn(req)
}

// safeHandle isolates a handler panic (a bad type assertion in an
// application method, say) to the request that caused it: the open
// transaction is aborted, the client gets an error response, and the
// server — and every other session — keeps running.
func (sess *session) safeHandle(req *Request) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			aborted := false
			if sess.tx != nil && sess.tx.State() == txn.Active {
				sess.tx.Abort()
				aborted = true
			}
			sess.tx = nil
			resp = &Response{Error: fmt.Sprintf("internal error in %q handler: %v", req.Op, r), Aborted: aborted}
		}
	}()
	return sess.handle(req)
}

// handle dispatches one request.
func (sess *session) handle(req *Request) *Response {
	switch req.Op {
	case "begin":
		if sess.tx != nil && sess.tx.State() == txn.Active {
			return sess.fail(errors.New("transaction already open"))
		}
		if req.Snapshot {
			tx, err := sess.db.BeginSnapshot()
			if err != nil {
				return sess.fail(err)
			}
			sess.tx = tx
			return &Response{OK: true}
		}
		sess.tx = sess.db.Begin()
		return &Response{OK: true}
	case "commit":
		if err := sess.needTx(); err != nil {
			return sess.fail(err)
		}
		err := sess.tx.Commit()
		sess.tx = nil
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true}
	case "abort":
		if err := sess.needTx(); err != nil {
			return sess.fail(err)
		}
		err := sess.tx.Abort()
		sess.tx = nil
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true}
	case "create":
		if err := sess.needWriteTx(); err != nil {
			return sess.fail(err)
		}
		bc, ok := sess.db.ClassOf(req.Class)
		if !ok {
			return sess.fail(fmt.Errorf("unknown class %q", req.Class))
		}
		val := bc.Def.NewInstance()
		if len(req.Value) > 0 {
			if err := json.Unmarshal(req.Value, val); err != nil {
				return sess.fail(fmt.Errorf("decode value: %w", err))
			}
		}
		ref, err := sess.db.Create(sess.tx, req.Class, val)
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true, Ref: uint64(ref.OID())}
	case "get":
		if err := sess.needTx(); err != nil {
			return sess.fail(err)
		}
		v, err := sess.db.Get(sess.tx, core.RefFromOID(storage.OID(req.Ref)))
		if err != nil {
			return sess.fail(err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true, Value: raw}
	case "invoke":
		if err := sess.needTx(); err != nil {
			return sess.fail(err)
		}
		ret, err := sess.db.Invoke(sess.tx, core.RefFromOID(storage.OID(req.Ref)), req.Method, req.Args...)
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true, Result: ret}
	case "post":
		if err := sess.needWriteTx(); err != nil {
			return sess.fail(err)
		}
		if err := sess.db.PostUserEvent(sess.tx, core.RefFromOID(storage.OID(req.Ref)), req.Event); err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true}
	case "activate":
		if err := sess.needWriteTx(); err != nil {
			return sess.fail(err)
		}
		id, err := sess.db.Activate(sess.tx, core.RefFromOID(storage.OID(req.Ref)), req.Trigger, req.Args...)
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true, ID: uint64(id.OID())}
	case "deactivate":
		if err := sess.needWriteTx(); err != nil {
			return sess.fail(err)
		}
		id := core.TriggerIDFromOID(storage.OID(req.ID))
		if err := sess.db.Deactivate(sess.tx, id); err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true}
	case "triggers":
		if err := sess.needTx(); err != nil {
			return sess.fail(err)
		}
		infos, err := sess.db.ActiveTriggers(sess.tx, core.RefFromOID(storage.OID(req.Ref)))
		if err != nil {
			return sess.fail(err)
		}
		raw, err := json.Marshal(infos)
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true, Value: raw}
	case "clusteradd":
		if err := sess.needWriteTx(); err != nil {
			return sess.fail(err)
		}
		if err := sess.db.ClusterAdd(sess.tx, req.Cluster, core.RefFromOID(storage.OID(req.Ref))); err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true}
	case "scan":
		if err := sess.needTx(); err != nil {
			return sess.fail(err)
		}
		var refs []uint64
		err := sess.db.ClusterScan(sess.tx, req.Cluster, func(r core.Ref) error {
			refs = append(refs, uint64(r.OID()))
			return nil
		})
		if err != nil {
			return sess.fail(err)
		}
		return &Response{OK: true, Refs: refs}
	case "metrics":
		// The full observability snapshot: every registered counter and
		// histogram (docs/OBSERVABILITY.md documents each name), tagged
		// with this node's provenance label so merged fleet views stay
		// attributable. No transaction needed.
		return &Response{OK: true, Result: obs.TagMetrics(sess.nodeLabel(), sess.db.Observability().Snapshot())}
	case "trace":
		// Export the firing-trace ring, oldest first, node-tagged.
		// rate > 0 first sets 1-in-rate sampling (1 = every posting),
		// rate -1 disables tracing, rate 0 leaves the current rate
		// untouched. Anything else — other negatives, rates past
		// MaxTraceRate — used to silently misconfigure the sampler; now
		// it is a typed error.
		if resp := sess.applyTraceRate(req.Rate); resp != nil {
			return resp
		}
		return &Response{OK: true, Result: obs.TagTraces(sess.nodeLabel(), sess.db.Tracer().Snapshot())}
	case "trace.rate":
		// Set (or just read, rate 0) the sampling rate without paying for
		// a ring snapshot, and ack with this node's resulting rate. The
		// router broadcasts it to every shard and reports per-shard acks.
		if resp := sess.applyTraceRate(req.Rate); resp != nil {
			return resp
		}
		return &Response{OK: true, Result: TraceRateAck{Node: sess.nodeLabel(), Rate: sess.db.Tracer().Rate()}}
	case "trace.chain":
		// Serve the cause-chain view: raw → this node's flat chain
		// events (traces, cause-carrying incidents, outbox hops);
		// otherwise the tree assembled for req.Cause. The router fans the
		// raw form out to every shard and assembles fleet-wide.
		evs := chainEvents(sess.db)
		if req.Raw {
			return &Response{OK: true, Result: ChainEvents{Events: evs}}
		}
		if _, ok := obs.ParseCause(req.Cause); !ok {
			return sess.fail(fmt.Errorf("%w: got %q", ErrInvalidChainCause, req.Cause))
		}
		return &Response{OK: true, Result: obs.AssembleChain(req.Cause, evs)}
	case "flight":
		// Export the process-wide flight recorder's ring, oldest first,
		// tagged with the serving node's label. No transaction needed;
		// the recorder is always on.
		return &Response{OK: true, Result: obs.TagIncidents(sess.nodeLabel(), obs.Flight().Snapshot())}
	case "proto":
		// Report the transport this very connection negotiated plus the
		// server's wire counters (ode-inspect -wire). No transaction
		// needed.
		st := ProtoStatus{Protocol: sess.proto}
		if s := sess.srv; s != nil {
			st.BinaryEnabled = !s.opts.DisableBinary
			st.MaxRequestBytes = s.opts.MaxRequestBytes
			st.ConnsJSON = s.m.connsJSON.Value()
			st.ConnsBinary = s.m.connsBinary.Value()
			st.FramesIn = s.m.framesIn.Value()
			st.FramesOut = s.m.framesOut.Value()
			st.BytesIn = s.m.bytesIn.Value()
			st.BytesOut = s.m.bytesOut.Value()
		}
		return &Response{OK: true, Result: st}
	default:
		return sess.fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// nodeLabel is the serving database's provenance node rendered in the
// fixed 16-hex form cause IDs use, stamped into metrics/trace/flight
// results so fleet merges stay attributable.
func (sess *session) nodeLabel() string {
	return obs.NodeLabel(sess.db.Causes().Node())
}

// applyTraceRate applies the shared trace/trace.rate rate grammar,
// returning a failure response for invalid rates and nil on success.
func (sess *session) applyTraceRate(rate int64) *Response {
	switch {
	case rate == 0:
	case rate == -1:
		sess.db.Tracer().SetRate(0)
	case rate > 0 && rate <= MaxTraceRate:
		sess.db.Tracer().SetRate(uint64(rate))
	default:
		return sess.fail(fmt.Errorf("%w: got %d", ErrInvalidTraceRate, rate))
	}
	return nil
}

// chainEvents collects one node's flat cause-chain material: sampled
// firing traces, cause-carrying flight incidents, and committed outbox
// entries (the sending half of cross-shard hops, empty on an unsharded
// database).
func chainEvents(db *core.Database) []obs.ChainEvent {
	label := obs.NodeLabel(db.Causes().Node())
	evs := obs.TraceChainEvents(label, db.Tracer().Snapshot())
	evs = append(evs, obs.IncidentChainEvents(label, obs.Flight().Snapshot())...)
	for _, e := range db.OutboxSnapshot() {
		evs = append(evs, obs.ChainEvent{
			Node:        label,
			Kind:        obs.ChainHop,
			Cause:       e.Cause().String(),
			ParentCause: e.Parent,
			Detail:      fmt.Sprintf("outbox %s for oid %d (awaiting forward)", e.Event, e.Target),
		})
	}
	return evs
}

// TraceRateAck is the trace.rate op's result: the answering node and
// the sampling rate now in effect there. Documented in
// docs/PROTOCOL.md.
type TraceRateAck struct {
	Node string `json:"node"`
	Rate uint64 `json:"rate"`
}

// ChainEvents wraps the flat chain-event list a raw trace.chain
// returns, so the result is a JSON object (extensible) rather than a
// bare array.
type ChainEvents struct {
	Events []obs.ChainEvent `json:"events"`
}

// ProtoStatus is the proto op's result: which transport the asking
// connection negotiated, and the server-wide wire counters. Every JSON
// field here is documented in docs/PROTOCOL.md (enforced by the
// protocol doc-coverage test).
type ProtoStatus struct {
	Protocol        string `json:"protocol"` // "json" or "binary"
	BinaryEnabled   bool   `json:"binary_enabled"`
	MaxRequestBytes int    `json:"max_request_bytes"`
	ConnsJSON       uint64 `json:"conns_json"`
	ConnsBinary     uint64 `json:"conns_binary"`
	FramesIn        uint64 `json:"frames_in"`
	FramesOut       uint64 `json:"frames_out"`
	BytesIn         uint64 `json:"bytes_in"`
	BytesOut        uint64 `json:"bytes_out"`
}

// BuiltinOps returns the name of every op the session dispatcher
// handles, sorted. It exists so the protocol doc-coverage test (and any
// future introspection surface) enumerates the real dispatch table
// instead of a hand-maintained copy; adding a case to handle() without
// extending this list fails TestBuiltinOpsComplete.
func BuiltinOps() []string {
	return []string{
		"abort", "activate", "begin", "clusteradd", "commit", "create",
		"deactivate", "flight", "get", "invoke", "metrics", "post",
		"proto", "scan", "trace", "trace.chain", "trace.rate", "triggers",
	}
}

func (sess *session) needTx() error {
	if sess.tx == nil || sess.tx.State() != txn.Active {
		return errors.New("no open transaction (send begin first)")
	}
	return nil
}

// needWriteTx is needTx plus the snapshot gate: mutating ops are
// rejected up front on a snapshot session with the typed error, rather
// than leaking the txn-layer refusal from deeper in the call. (invoke is
// not gated here — read-only methods are legal on a snapshot, and the
// engine rejects mutators itself.)
func (sess *session) needWriteTx() error {
	if err := sess.needTx(); err != nil {
		return err
	}
	if sess.tx.IsSnapshot() {
		return ErrSnapshotWrite
	}
	return nil
}
