package server

import (
	"bufio"
	"fmt"
	"io"
)

// Exported frame I/O for out-of-process fronts. The shard router
// (internal/shard) terminates the binary protocol itself — it is not a
// Server, but it must speak byte-identical framing — so the primitive
// read/write operations and the wire constants are exported here.
// frame.go remains the canonical description of the layout.

// Frame is one decoded binary-protocol frame.
type Frame struct {
	Type    byte
	SID     uint32
	ID      uint64
	Payload []byte
}

const (
	// ProtoMagic upgrades a fresh connection to binary framing.
	ProtoMagic = protoMagic

	// FrameRequest/FrameResponse/FrameClose are the frame types.
	FrameRequest  = frameReq
	FrameResponse = frameResp
	FrameClose    = frameClose
)

// ErrFraming marks a malformed frame header: the stream can no longer
// be trusted and the connection must close.
var ErrFraming = errFraming

// ReadFrame reads one complete frame, payload included. maxPayload <= 0
// means unbounded; an oversized payload returns an ErrFraming-wrapped
// error (the caller should close the connection — unlike a Server,
// which skips the payload and keeps the session alive, a relay has no
// session to preserve).
func ReadFrame(br *bufio.Reader, maxPayload int) (Frame, error) {
	h, err := readFrameHeader(br)
	if err != nil {
		return Frame{}, err
	}
	if maxPayload > 0 && h.n > maxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d exceeds cap %d", errFraming, h.n, maxPayload)
	}
	f := Frame{Type: h.typ, SID: h.sid, ID: h.id}
	if h.n > 0 {
		f.Payload = make([]byte, h.n)
		if _, err := io.ReadFull(br, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// WriteFrame encodes one frame. The caller supplies a bufio.Writer for
// coalescing and flushes at its own batch boundaries.
func WriteFrame(w io.Writer, f Frame) error {
	return writeFrame(w, f.Type, f.SID, f.ID, f.Payload)
}
