package server

import (
	"strings"
	"testing"
)

// TestSnapshotSessionOverWire: a snapshot begin serves reads as of its
// pinned LSN, and every mutating op on the session fails with the typed
// snapshot-write error until the transaction ends.
func TestSnapshotSessionOverWire(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)

	// Seed a card.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Create("CredCard", &CredCard{Holder: "snap", CredLim: 1000, GoodHist: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := c.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Reads pass.
	var card CredCard
	if err := c.Get(ref, &card); err != nil {
		t.Fatalf("Get on snapshot session: %v", err)
	}
	if card.Holder != "snap" {
		t.Fatalf("card = %+v", card)
	}
	// Mutators fail with the typed error's message over the wire.
	wantMsg := ErrSnapshotWrite.Error()
	if _, err := c.Create("CredCard", &CredCard{}); err == nil || !strings.Contains(err.Error(), wantMsg) {
		t.Errorf("Create on snapshot = %v, want %q", err, wantMsg)
	}
	if _, err := c.Invoke(ref, "Buy", 10); err == nil || !strings.Contains(err.Error(), wantMsg) {
		t.Errorf("Invoke(mutator) on snapshot = %v, want %q", err, wantMsg)
	}
	if _, err := c.Activate(ref, "DenyCredit"); err == nil || !strings.Contains(err.Error(), wantMsg) {
		t.Errorf("Activate on snapshot = %v, want %q", err, wantMsg)
	}
	if err := c.ClusterAdd("cards", ref); err == nil || !strings.Contains(err.Error(), wantMsg) {
		t.Errorf("ClusterAdd on snapshot = %v, want %q", err, wantMsg)
	}
	// The rejections left the snapshot usable; commit ends it cleanly.
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// A regular transaction on the same session can write again.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(ref, "Buy", 10); err != nil {
		t.Fatalf("Buy after snapshot ended: %v", err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSessionIsolation: a snapshot session keeps reading its
// pinned state while another connection commits new writes.
func TestSnapshotSessionIsolation(t *testing.T) {
	addr := startServer(t)
	reader := dial(t, addr)
	writer := dial(t, addr)

	writer.Begin()
	ref, err := writer.Create("CredCard", &CredCard{CredLim: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := reader.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	writer.Begin()
	if _, err := writer.Invoke(ref, "Buy", 250); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	var card CredCard
	if err := reader.Get(ref, &card); err != nil {
		t.Fatal(err)
	}
	if card.CurrBal != 0 {
		t.Fatalf("snapshot read CurrBal = %v, want 0 (pinned before the Buy)", card.CurrBal)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}

	reader.Begin()
	if err := reader.Get(ref, &card); err != nil {
		t.Fatal(err)
	}
	reader.Abort()
	if card.CurrBal != 250 {
		t.Fatalf("post-snapshot read CurrBal = %v, want 250", card.CurrBal)
	}
}
