package server

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"ode/internal/core"
	"ode/internal/storage/dali"
)

// startServerDB is startServer but also returns the database, so tests
// can observe server-op side effects (the tracer's rate).
func startServerDB(t *testing.T) (addr string, db *core.Database) {
	t.Helper()
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(credCardClass()); err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr, db
}

// rawOp sends one raw JSON request on a fresh connection and returns
// the decoded response.
func rawOp(t *testing.T, addr string, req map[string]any) (ok bool, errMsg string, result json.RawMessage) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		OK     bool            `json:"ok"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.OK, resp.Error, resp.Result
}

func TestTraceOpRateValidation(t *testing.T) {
	addr, db := startServerDB(t)
	db.Tracer().SetRate(7)

	// rate 0 leaves the current rate untouched.
	if ok, errMsg, _ := rawOp(t, addr, map[string]any{"op": "trace"}); !ok {
		t.Fatalf("trace with no rate failed: %s", errMsg)
	}
	if got := db.Tracer().Rate(); got != 7 {
		t.Fatalf("rate 0 changed the sampling rate to %d", got)
	}

	// A valid positive rate is applied.
	if ok, errMsg, _ := rawOp(t, addr, map[string]any{"op": "trace", "rate": 16}); !ok {
		t.Fatalf("trace rate 16 failed: %s", errMsg)
	}
	if got := db.Tracer().Rate(); got != 16 {
		t.Fatalf("rate = %d, want 16", got)
	}

	// -1 disables sampling.
	if ok, errMsg, _ := rawOp(t, addr, map[string]any{"op": "trace", "rate": -1}); !ok {
		t.Fatalf("trace rate -1 failed: %s", errMsg)
	}
	if got := db.Tracer().Rate(); got != 0 {
		t.Fatalf("rate -1 left sampling at %d, want 0 (disabled)", got)
	}

	// Invalid rates are typed errors and leave the rate untouched.
	db.Tracer().SetRate(5)
	for _, bad := range []any{-2, int64(MaxTraceRate) + 1} {
		ok, errMsg, _ := rawOp(t, addr, map[string]any{"op": "trace", "rate": bad})
		if ok {
			t.Fatalf("trace rate %v accepted, want rejection", bad)
		}
		if !strings.Contains(errMsg, "invalid trace rate") {
			t.Fatalf("rate %v error = %q, want ErrInvalidTraceRate text", bad, errMsg)
		}
		if got := db.Tracer().Rate(); got != 5 {
			t.Fatalf("rejected rate %v still changed sampling to %d", bad, got)
		}
	}
}

func TestFlightOp(t *testing.T) {
	addr, _ := startServerDB(t)
	ok, errMsg, result := rawOp(t, addr, map[string]any{"op": "flight"})
	if !ok {
		t.Fatalf("flight op failed: %s", errMsg)
	}
	// The result is the incident ring: a JSON array (possibly empty, or
	// carrying incidents from other tests in this process).
	var incidents []map[string]any
	if err := json.Unmarshal(result, &incidents); err != nil {
		t.Fatalf("flight result not an incident array: %v\n%s", err, result)
	}
}
