package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrRemoteAborted reports that the server rolled the transaction back
// (tabort from a trigger, or deadlock victimization).
var ErrRemoteAborted = errors.New("server: transaction aborted")

// ErrClosed reports a call on a Client after Close.
var ErrClosed = errors.New("server: client closed")

// RedirectError reports a write rejected by a read replica, carrying
// the primary's address so callers can re-issue the request there.
type RedirectError struct {
	Primary string
	Msg     string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("server: read-only replica (primary at %s): %s", e.Primary, e.Msg)
}

// Backoff produces capped exponential waits: Base, 2*Base, 4*Base, ...
// up to Max. The zero value is usable (defaults 10ms..1s). It is shared
// by the client redial loop and the replication reconnect loop.
type Backoff struct {
	Base time.Duration // first wait (default 10ms)
	Max  time.Duration // cap (default 1s)
	next time.Duration
}

// Next returns the wait before the upcoming retry and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if b.next <= 0 {
		b.next = base
	}
	d := b.next
	if d > max {
		d = max
	}
	b.next = d * 2
	return d
}

// Reset restarts the schedule from Base (call after a success).
func (b *Backoff) Reset() { b.next = 0 }

// ClientOptions hardens a client against a flaky server/network.
type ClientOptions struct {
	// RequestTimeout, when positive, bounds each call's send+receive; an
	// expired deadline drops the connection (the next call redials).
	RequestTimeout time.Duration
	// DialAttempts is how many times a call may try to (re)establish the
	// connection before giving up, with capped exponential backoff
	// between tries. Default 1: fail fast, exactly like the pre-options
	// client.
	DialAttempts int
	// RedialBase/RedialMax shape the backoff between dial attempts
	// (defaults 10ms / 1s).
	RedialBase time.Duration
	RedialMax  time.Duration
}

// Client is a single-session client: one connection, at most one open
// transaction — an "application" in the paper's sense. A transport
// failure (send/receive error, request timeout) drops the connection;
// the next call transparently redials with capped backoff. Redialing
// never re-sends the failed request — the server may or may not have
// executed it, and any transaction open on the old connection has been
// aborted server-side — so callers retry at the transaction level.
// Not safe for concurrent use.
type Client struct {
	addr string
	opts ClientOptions

	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	closed     bool
	reconnects int
}

// Dial connects to an Ode server with default options (fail-fast, no
// timeouts).
func Dial(addr string) (*Client, error) { return DialOptions(addr, ClientOptions{}) }

// DialOptions connects to an Ode server, retrying the initial dial per
// opts.DialAttempts.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	if opts.DialAttempts <= 0 {
		opts.DialAttempts = 1
	}
	c := &Client{addr: addr, opts: opts}
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close drops the connection (the server aborts any open transaction).
func (c *Client) Close() error {
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Reconnects counts how many times the client re-established its
// connection after the initial dial.
func (c *Client) Reconnects() int { return c.reconnects }

// dropConn discards a connection known (or suspected) broken; the next
// call redials.
func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// ensureConn (re)establishes the connection, waiting with capped
// exponential backoff between attempts.
func (c *Client) ensureConn() error {
	if c.closed {
		return ErrClosed
	}
	if c.conn != nil {
		return nil
	}
	bo := Backoff{Base: c.opts.RedialBase, Max: c.opts.RedialMax}
	var err error
	for i := 0; i < c.opts.DialAttempts; i++ {
		if i > 0 {
			time.Sleep(bo.Next())
		}
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", c.addr, c.opts.RequestTimeout)
		if err == nil {
			if c.enc != nil {
				c.reconnects++ // not the first connection
			}
			c.conn = conn
			c.enc = json.NewEncoder(conn)
			c.dec = json.NewDecoder(bufio.NewReader(conn))
			return nil
		}
	}
	return fmt.Errorf("server: dial %s: %w", c.addr, err)
}

func (c *Client) call(req *Request) (*Response, error) {
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	if c.opts.RequestTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	}
	if err := c.enc.Encode(req); err != nil {
		c.dropConn()
		return nil, fmt.Errorf("server: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.dropConn()
		return nil, fmt.Errorf("server: recv: %w", err)
	}
	if c.opts.RequestTimeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	if !resp.OK {
		if resp.Redirect != "" {
			return &resp, &RedirectError{Primary: resp.Redirect, Msg: resp.Error}
		}
		if resp.Aborted {
			return &resp, fmt.Errorf("%w: %s", ErrRemoteAborted, resp.Error)
		}
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// Begin opens a transaction.
func (c *Client) Begin() error {
	_, err := c.call(&Request{Op: "begin"})
	return err
}

// BeginSnapshot opens a lock-free read-only snapshot transaction:
// reads see the store as of the pinned commit LSN, and every mutating
// op fails with the server's snapshot-write error until Commit/Abort.
func (c *Client) BeginSnapshot() error {
	_, err := c.call(&Request{Op: "begin", Snapshot: true})
	return err
}

// Commit commits the open transaction.
func (c *Client) Commit() error {
	_, err := c.call(&Request{Op: "commit"})
	return err
}

// Abort rolls the open transaction back.
func (c *Client) Abort() error {
	_, err := c.call(&Request{Op: "abort"})
	return err
}

// Create makes a persistent object from a JSON-encodable value.
func (c *Client) Create(class string, value any) (uint64, error) {
	raw, err := json.Marshal(value)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(&Request{Op: "create", Class: class, Value: raw})
	if err != nil {
		return 0, err
	}
	return resp.Ref, nil
}

// Get loads an object's state into out (a JSON-decodable pointer).
func (c *Client) Get(ref uint64, out any) error {
	resp, err := c.call(&Request{Op: "get", Ref: ref})
	if err != nil {
		return err
	}
	return json.Unmarshal(resp.Value, out)
}

// Invoke calls a member function through the persistent reference.
func (c *Client) Invoke(ref uint64, method string, args ...any) (any, error) {
	resp, err := c.call(&Request{Op: "invoke", Ref: ref, Method: method, Args: args})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// PostUserEvent posts a declared user event.
func (c *Client) PostUserEvent(ref uint64, event string) error {
	_, err := c.call(&Request{Op: "post", Ref: ref, Event: event})
	return err
}

// Activate activates a trigger and returns its id.
func (c *Client) Activate(ref uint64, trigger string, args ...any) (uint64, error) {
	resp, err := c.call(&Request{Op: "activate", Ref: ref, Trigger: trigger, Args: args})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Deactivate removes a trigger activation.
func (c *Client) Deactivate(id uint64) error {
	_, err := c.call(&Request{Op: "deactivate", ID: id})
	return err
}

// ActiveTriggers lists activations on ref as raw JSON.
func (c *Client) ActiveTriggers(ref uint64) (json.RawMessage, error) {
	resp, err := c.call(&Request{Op: "triggers", Ref: ref})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// ClusterAdd adds ref to a cluster.
func (c *Client) ClusterAdd(cluster string, ref uint64) error {
	_, err := c.call(&Request{Op: "clusteradd", Cluster: cluster, Ref: ref})
	return err
}

// ClusterScan lists a cluster's members.
func (c *Client) ClusterScan(cluster string) ([]uint64, error) {
	resp, err := c.call(&Request{Op: "scan", Cluster: cluster})
	if err != nil {
		return nil, err
	}
	return resp.Refs, nil
}

// Call sends an arbitrary request — the escape hatch for extension ops
// (repl.status, repl.promote) registered through Options.ExtraOps.
func (c *Client) Call(req *Request) (*Response, error) { return c.call(req) }
