package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
)

// ErrRemoteAborted reports that the server rolled the transaction back
// (tabort from a trigger, or deadlock victimization).
var ErrRemoteAborted = errors.New("server: transaction aborted")

// Client is a single-session client: one connection, at most one open
// transaction — an "application" in the paper's sense.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to an Ode server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial: %w", err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Close drops the connection (the server aborts any open transaction).
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req *Request) (*Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("server: recv: %w", err)
	}
	if !resp.OK {
		if resp.Aborted {
			return &resp, fmt.Errorf("%w: %s", ErrRemoteAborted, resp.Error)
		}
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// Begin opens a transaction.
func (c *Client) Begin() error {
	_, err := c.call(&Request{Op: "begin"})
	return err
}

// Commit commits the open transaction.
func (c *Client) Commit() error {
	_, err := c.call(&Request{Op: "commit"})
	return err
}

// Abort rolls the open transaction back.
func (c *Client) Abort() error {
	_, err := c.call(&Request{Op: "abort"})
	return err
}

// Create makes a persistent object from a JSON-encodable value.
func (c *Client) Create(class string, value any) (uint64, error) {
	raw, err := json.Marshal(value)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(&Request{Op: "create", Class: class, Value: raw})
	if err != nil {
		return 0, err
	}
	return resp.Ref, nil
}

// Get loads an object's state into out (a JSON-decodable pointer).
func (c *Client) Get(ref uint64, out any) error {
	resp, err := c.call(&Request{Op: "get", Ref: ref})
	if err != nil {
		return err
	}
	return json.Unmarshal(resp.Value, out)
}

// Invoke calls a member function through the persistent reference.
func (c *Client) Invoke(ref uint64, method string, args ...any) (any, error) {
	resp, err := c.call(&Request{Op: "invoke", Ref: ref, Method: method, Args: args})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// PostUserEvent posts a declared user event.
func (c *Client) PostUserEvent(ref uint64, event string) error {
	_, err := c.call(&Request{Op: "post", Ref: ref, Event: event})
	return err
}

// Activate activates a trigger and returns its id.
func (c *Client) Activate(ref uint64, trigger string, args ...any) (uint64, error) {
	resp, err := c.call(&Request{Op: "activate", Ref: ref, Trigger: trigger, Args: args})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Deactivate removes a trigger activation.
func (c *Client) Deactivate(id uint64) error {
	_, err := c.call(&Request{Op: "deactivate", ID: id})
	return err
}

// ActiveTriggers lists activations on ref as raw JSON.
func (c *Client) ActiveTriggers(ref uint64) (json.RawMessage, error) {
	resp, err := c.call(&Request{Op: "triggers", Ref: ref})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// ClusterAdd adds ref to a cluster.
func (c *Client) ClusterAdd(cluster string, ref uint64) error {
	_, err := c.call(&Request{Op: "clusteradd", Cluster: cluster, Ref: ref})
	return err
}

// ClusterScan lists a cluster's members.
func (c *Client) ClusterScan(cluster string) ([]uint64, error) {
	resp, err := c.call(&Request{Op: "scan", Cluster: cluster})
	if err != nil {
		return nil, err
	}
	return resp.Refs, nil
}
