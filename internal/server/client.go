package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"
)

// ErrRemoteAborted reports that the server rolled the transaction back
// (tabort from a trigger, or deadlock victimization).
var ErrRemoteAborted = errors.New("server: transaction aborted")

// ErrClosed reports a call on a Client after Close.
var ErrClosed = errors.New("server: client closed")

// RedirectError reports a write rejected by a read replica, carrying
// the primary's address so callers can re-issue the request there.
type RedirectError struct {
	Primary string
	Msg     string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("server: read-only replica (primary at %s): %s", e.Primary, e.Msg)
}

// respError maps a non-OK response onto the client's typed errors. It
// is shared by both transports so a caller cannot tell from the error
// which protocol carried the request.
func respError(resp *Response) error {
	if resp.OK {
		return nil
	}
	if resp.Redirect != "" {
		return &RedirectError{Primary: resp.Redirect, Msg: resp.Error}
	}
	if resp.Aborted {
		return fmt.Errorf("%w: %s", ErrRemoteAborted, resp.Error)
	}
	if strings.HasPrefix(resp.Error, ErrRequestTooLarge.Error()) {
		return fmt.Errorf("%w: %s", ErrRequestTooLarge, strings.TrimPrefix(resp.Error, ErrRequestTooLarge.Error()+": "))
	}
	return errors.New(resp.Error)
}

// Backoff produces capped exponential waits: Base, 2*Base, 4*Base, ...
// up to Max. The zero value is usable (defaults 10ms..1s). It is shared
// by the client redial loop and the replication reconnect loop.
type Backoff struct {
	Base time.Duration // first wait (default 10ms)
	Max  time.Duration // cap (default 1s)
	next time.Duration
}

// Next returns the wait before the upcoming retry and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if b.next <= 0 {
		b.next = base
	}
	d := b.next
	if d > max {
		d = max
	}
	b.next = d * 2
	return d
}

// Reset restarts the schedule from Base (call after a success).
func (b *Backoff) Reset() { b.next = 0 }

// ClientOptions hardens a client against a flaky server/network.
type ClientOptions struct {
	// RequestTimeout, when positive, bounds each call's send+receive; an
	// expired deadline drops the connection (the next call redials).
	RequestTimeout time.Duration
	// DialAttempts is how many times a call may try to (re)establish the
	// connection before giving up, with capped exponential backoff
	// between tries. Default 1: fail fast, exactly like the pre-options
	// client.
	DialAttempts int
	// RedialBase/RedialMax shape the backoff between dial attempts
	// (defaults 10ms / 1s).
	RedialBase time.Duration
	RedialMax  time.Duration
	// Binary upgrades the connection to the ODE2 binary framing
	// (docs/PROTOCOL.md): length-prefixed frames with request IDs,
	// which is what makes Go (send-without-waiting pipelining) overlap
	// requests instead of degenerating to one in flight. Zero value
	// keeps the newline-delimited JSON protocol.
	Binary bool
}

// Client is a single-session client: one connection, at most one open
// transaction — an "application" in the paper's sense. A transport
// failure (send/receive error, request timeout) drops the connection;
// the next call transparently redials with capped backoff. Redialing
// never re-sends the failed request — the server may or may not have
// executed it, and any transaction open on the old connection has been
// aborted server-side — so callers retry at the transaction level.
//
// With ClientOptions.Binary the same API runs over ODE2 framing, and
// Go additionally pipelines: requests are written without waiting and
// responses matched by request ID. Synchronous methods remain not safe
// for concurrent use (one session is one single-threaded application);
// overlapping work wants either Go or a Mux.
type Client struct {
	ops // Begin/Commit/Invoke/... op wrappers, shared with MuxSession

	addr string
	opts ClientOptions

	// JSON transport.
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	// Binary transport.
	w *wire

	dialed     bool // a connection has existed at some point
	closed     bool
	reconnects int
}

// Dial connects to an Ode server with default options (fail-fast, no
// timeouts, JSON protocol).
func Dial(addr string) (*Client, error) { return DialOptions(addr, ClientOptions{}) }

// DialOptions connects to an Ode server, retrying the initial dial per
// opts.DialAttempts.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	if opts.DialAttempts <= 0 {
		opts.DialAttempts = 1
	}
	c := &Client{addr: addr, opts: opts}
	c.ops = ops{c: c}
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close drops the connection (the server aborts any open transaction).
func (c *Client) Close() error {
	c.closed = true
	if c.w != nil {
		c.w.fail(ErrClosed)
		c.w = nil
		return nil
	}
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Reconnects counts how many times the client re-established its
// connection after the initial dial.
func (c *Client) Reconnects() int { return c.reconnects }

// dropConn discards a connection known (or suspected) broken; the next
// call redials.
func (c *Client) dropConn() {
	if c.w != nil {
		c.w.fail(errors.New("server: connection dropped"))
		c.w = nil
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// ensureConn (re)establishes the connection, waiting with capped
// exponential backoff between attempts.
func (c *Client) ensureConn() error {
	if c.closed {
		return ErrClosed
	}
	if c.w != nil && c.w.broken() {
		c.w = nil // background transport failure: redial below
	}
	if c.conn != nil || c.w != nil {
		return nil
	}
	bo := Backoff{Base: c.opts.RedialBase, Max: c.opts.RedialMax}
	var err error
	for i := 0; i < c.opts.DialAttempts; i++ {
		if i > 0 {
			time.Sleep(bo.Next())
		}
		if c.opts.Binary {
			var w *wire
			w, err = dialWire(c.addr, c.opts.RequestTimeout)
			if err == nil {
				if c.dialed {
					c.reconnects++
				}
				c.dialed = true
				c.w = w
				return nil
			}
			if errors.Is(err, ErrBinaryDisabled) {
				break // the server will refuse every retry the same way
			}
			continue
		}
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", c.addr, c.opts.RequestTimeout)
		if err == nil {
			if c.dialed {
				c.reconnects++
			}
			c.dialed = true
			c.conn = conn
			c.enc = json.NewEncoder(conn)
			c.dec = json.NewDecoder(bufio.NewReader(conn))
			return nil
		}
	}
	return fmt.Errorf("server: dial %s: %w", c.addr, err)
}

func (c *Client) call(req *Request) (*Response, error) {
	if c.opts.Binary {
		call := c.Go(req)
		return c.await(call)
	}
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	if c.opts.RequestTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	}
	if err := c.enc.Encode(req); err != nil {
		c.dropConn()
		return nil, fmt.Errorf("server: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.dropConn()
		return nil, fmt.Errorf("server: recv: %w", err)
	}
	if c.opts.RequestTimeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	return &resp, respError(&resp)
}

// await applies RequestTimeout to a pipelined call. A timeout is a
// transport failure — the response may yet arrive, but at-most-once
// means we must not leave it matchable — so the whole connection drops,
// failing the call (and everything else in flight).
func (c *Client) await(call *Call) (*Response, error) {
	if c.opts.RequestTimeout <= 0 {
		return call.Wait()
	}
	select {
	case <-call.Done():
	case <-time.After(c.opts.RequestTimeout):
		c.dropConn()
	}
	return call.Wait()
}

// Go sends req without waiting for the response: the returned Call
// completes when the response frame arrives (binary protocol), letting
// a caller keep many requests in flight on one session — per-session
// responses still arrive in order. On the JSON protocol there is no
// request ID to match a response by, so Go degrades to a synchronous
// round trip whose Call is already complete.
func (c *Client) Go(req *Request) *Call {
	if !c.opts.Binary {
		resp, err := c.call(req)
		call := newCall(req)
		call.complete(resp, err)
		return call
	}
	if err := c.ensureConn(); err != nil {
		call := newCall(req)
		call.complete(nil, err)
		return call
	}
	return c.w.send(0, req)
}

// caller is the transport hook behind the shared op wrappers: Client
// and MuxSession each route call through their own session/connection.
type caller interface {
	call(req *Request) (*Response, error)
}

// ops implements the op-level API — one wrapper per wire op — shared by
// Client and MuxSession so the two session kinds cannot drift apart.
type ops struct {
	c caller
}

// Begin opens a transaction.
func (o ops) Begin() error {
	_, err := o.c.call(&Request{Op: "begin"})
	return err
}

// BeginSnapshot opens a lock-free read-only snapshot transaction:
// reads see the store as of the pinned commit LSN, and every mutating
// op fails with the server's snapshot-write error until Commit/Abort.
func (o ops) BeginSnapshot() error {
	_, err := o.c.call(&Request{Op: "begin", Snapshot: true})
	return err
}

// Commit commits the open transaction.
func (o ops) Commit() error {
	_, err := o.c.call(&Request{Op: "commit"})
	return err
}

// Abort rolls the open transaction back.
func (o ops) Abort() error {
	_, err := o.c.call(&Request{Op: "abort"})
	return err
}

// Create makes a persistent object from a JSON-encodable value.
func (o ops) Create(class string, value any) (uint64, error) {
	raw, err := json.Marshal(value)
	if err != nil {
		return 0, err
	}
	resp, err := o.c.call(&Request{Op: "create", Class: class, Value: raw})
	if err != nil {
		return 0, err
	}
	return resp.Ref, nil
}

// Get loads an object's state into out (a JSON-decodable pointer).
func (o ops) Get(ref uint64, out any) error {
	resp, err := o.c.call(&Request{Op: "get", Ref: ref})
	if err != nil {
		return err
	}
	return json.Unmarshal(resp.Value, out)
}

// Invoke calls a member function through the persistent reference.
func (o ops) Invoke(ref uint64, method string, args ...any) (any, error) {
	resp, err := o.c.call(&Request{Op: "invoke", Ref: ref, Method: method, Args: args})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// PostUserEvent posts a declared user event.
func (o ops) PostUserEvent(ref uint64, event string) error {
	_, err := o.c.call(&Request{Op: "post", Ref: ref, Event: event})
	return err
}

// Activate activates a trigger and returns its id.
func (o ops) Activate(ref uint64, trigger string, args ...any) (uint64, error) {
	resp, err := o.c.call(&Request{Op: "activate", Ref: ref, Trigger: trigger, Args: args})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Deactivate removes a trigger activation.
func (o ops) Deactivate(id uint64) error {
	_, err := o.c.call(&Request{Op: "deactivate", ID: id})
	return err
}

// ActiveTriggers lists activations on ref as raw JSON.
func (o ops) ActiveTriggers(ref uint64) (json.RawMessage, error) {
	resp, err := o.c.call(&Request{Op: "triggers", Ref: ref})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// ClusterAdd adds ref to a cluster.
func (o ops) ClusterAdd(cluster string, ref uint64) error {
	_, err := o.c.call(&Request{Op: "clusteradd", Cluster: cluster, Ref: ref})
	return err
}

// ClusterScan lists a cluster's members.
func (o ops) ClusterScan(cluster string) ([]uint64, error) {
	resp, err := o.c.call(&Request{Op: "scan", Cluster: cluster})
	if err != nil {
		return nil, err
	}
	return resp.Refs, nil
}

// Call sends an arbitrary request — the escape hatch for extension ops
// (repl.status, repl.promote) registered through Options.ExtraOps.
func (o ops) Call(req *Request) (*Response, error) { return o.c.call(req) }

// Session is the op-level API every client session implements: a
// single-connection Client or one MuxSession of a shared-connection
// Mux. The cross-protocol equivalence tests run the whole server suite
// against each implementation.
type Session interface {
	Begin() error
	BeginSnapshot() error
	Commit() error
	Abort() error
	Create(class string, value any) (uint64, error)
	Get(ref uint64, out any) error
	Invoke(ref uint64, method string, args ...any) (any, error)
	PostUserEvent(ref uint64, event string) error
	Activate(ref uint64, trigger string, args ...any) (uint64, error)
	Deactivate(id uint64) error
	ActiveTriggers(ref uint64) (json.RawMessage, error)
	ClusterAdd(cluster string, ref uint64) error
	ClusterScan(cluster string) ([]uint64, error)
	Call(req *Request) (*Response, error)
	Go(req *Request) *Call
	Close() error
}

var (
	_ Session = (*Client)(nil)
	_ Session = (*MuxSession)(nil)
)
