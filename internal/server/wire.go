package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Client side of the ODE2 binary protocol: a wire is one upgraded
// connection shared by any number of in-flight requests. One writer
// goroutine drains a queue of pre-encoded frames and flushes only when
// the queue runs dry (small-write coalescing); one reader goroutine
// decodes response frames and completes the matching Call from an
// in-flight table keyed by request ID. Both the single-session Client
// (sid 0) and the multiplexing Mux (one sid per MuxSession) run on
// this core.

// clientMaxFrame caps a response frame's payload. Responses can be
// large (a metrics snapshot, a big cluster scan) but a length prefix
// beyond this is a corrupt or hostile stream, not a real response.
const clientMaxFrame = 1 << 30

// Call is one in-flight request: a future completed by the reader loop
// when the response frame with the matching ID arrives, or failed by a
// transport error (which fails every in-flight call — the connection is
// gone and at-most-once delivery forbids replay).
type Call struct {
	Req *Request

	resp *Response
	err  error
	once sync.Once
	done chan struct{}
}

func newCall(req *Request) *Call {
	return &Call{Req: req, done: make(chan struct{})}
}

// complete settles the call exactly once; later completions (a response
// racing a transport failure) are no-ops.
func (c *Call) complete(resp *Response, err error) {
	c.once.Do(func() {
		c.resp, c.err = resp, err
		close(c.done)
	})
}

// Done returns a channel closed when the call has completed, for
// select-based waiting.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks until the response (or transport failure) and returns it,
// with the same typed-error mapping as a synchronous call:
// RedirectError, ErrRemoteAborted, ErrRequestTooLarge.
func (c *Call) Wait() (*Response, error) {
	<-c.done
	return c.resp, c.err
}

// wire is one binary-protocol connection.
type wire struct {
	conn net.Conn
	out  chan []byte   // encoded frames awaiting the writer
	done chan struct{} // closed on transport failure / Close
	once sync.Once

	mu       sync.Mutex
	inflight map[uint64]*Call
	nextID   uint64
	err      error // sticky first transport error
}

// dialWire connects and performs the ODE2 handshake. A server running
// JSON-only answers the magic with a JSON error line; that surfaces
// here as ErrBinaryDisabled rather than a hang.
func dialWire(addr string, timeout time.Duration) (*wire, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if _, err := conn.Write([]byte(protoMagic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake send: %w", err)
	}
	br := bufio.NewReader(conn)
	var echo [len(protoMagic)]byte
	if _, err := io.ReadFull(br, echo[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake recv: %w", err)
	}
	if string(echo[:]) != protoMagic {
		// Not an upgrade. A DisableBinary server sends a JSON error
		// line; read the rest of it for the typed refusal.
		rest, _ := br.ReadString('\n')
		conn.Close()
		var resp Response
		line := strings.TrimSpace(string(echo[:]) + rest)
		if json.Unmarshal([]byte(line), &resp) == nil && strings.HasPrefix(resp.Error, ErrBinaryDisabled.Error()) {
			return nil, ErrBinaryDisabled
		}
		return nil, fmt.Errorf("server: binary handshake rejected: %q", line)
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	w := &wire{
		conn:     conn,
		out:      make(chan []byte, binQueueDepth),
		done:     make(chan struct{}),
		inflight: make(map[uint64]*Call),
	}
	go w.readLoop(br)
	go w.writeLoop()
	return w, nil
}

// broken reports whether the wire has seen a transport failure.
func (w *wire) broken() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

// fail records the first transport error, closes the connection, and
// completes every in-flight call with it. Safe to call multiple times
// and from any goroutine.
func (w *wire) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	err = w.err
	calls := w.inflight
	w.inflight = make(map[uint64]*Call)
	w.mu.Unlock()
	w.once.Do(func() { close(w.done) })
	w.conn.Close()
	for _, c := range calls {
		c.complete(nil, err)
	}
}

// send enqueues one request frame and returns its Call. Never blocks
// forever: if the transport dies, the enqueue aborts via done.
func (w *wire) send(sid uint32, req *Request) *Call {
	call := newCall(req)
	payload, err := json.Marshal(req)
	if err != nil {
		call.complete(nil, err)
		return call
	}
	w.enqueue(frameReq, sid, payload, call)
	return call
}

// sendClose enqueues a close-session frame for sid (Mux teardown).
func (w *wire) sendClose(sid uint32) *Call {
	call := newCall(nil)
	w.enqueue(frameClose, sid, nil, call)
	return call
}

func (w *wire) enqueue(typ byte, sid uint32, payload []byte, call *Call) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		call.complete(nil, err)
		return
	}
	w.nextID++
	id := w.nextID
	w.inflight[id] = call
	w.mu.Unlock()

	var buf bytes.Buffer
	buf.Grow(4 + frameHeaderLen + len(payload))
	writeFrame(&buf, typ, sid, id, payload) // cannot fail on a bytes.Buffer
	select {
	case w.out <- buf.Bytes():
	case <-w.done:
		// fail() has run (or is running); it completes this call via the
		// inflight table, or complete() here is a no-op if it already did.
		call.complete(nil, w.lastErr())
	}
}

func (w *wire) lastErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return errors.New("server: connection closed")
}

// writeLoop is the connection's single writer: it batches queued frames
// into the buffered writer and flushes only when the queue is empty.
func (w *wire) writeLoop() {
	bw := bufio.NewWriter(w.conn)
	for {
		var buf []byte
		select {
		case buf = <-w.out:
		case <-w.done:
			return
		}
		if _, err := bw.Write(buf); err != nil {
			w.fail(fmt.Errorf("server: send: %w", err))
			return
		}
		if len(w.out) == 0 {
			if err := bw.Flush(); err != nil {
				w.fail(fmt.Errorf("server: send: %w", err))
				return
			}
		}
	}
}

// readLoop decodes response frames and completes calls by request ID.
func (w *wire) readLoop(br *bufio.Reader) {
	for {
		h, err := readFrameHeader(br)
		if err != nil {
			w.fail(fmt.Errorf("server: recv: %w", err))
			return
		}
		if h.typ != frameResp || h.n > clientMaxFrame {
			w.fail(fmt.Errorf("server: recv: %w: type 0x%02x, %d bytes", errFraming, h.typ, h.n))
			return
		}
		payload := make([]byte, h.n)
		if _, err := io.ReadFull(br, payload); err != nil {
			w.fail(fmt.Errorf("server: recv: %w", err))
			return
		}
		var resp Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			w.fail(fmt.Errorf("server: recv: malformed response: %w", err))
			return
		}
		w.mu.Lock()
		call := w.inflight[h.id]
		delete(w.inflight, h.id)
		w.mu.Unlock()
		if call != nil {
			call.complete(&resp, respError(&resp))
		}
	}
}
