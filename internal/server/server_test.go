package server

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"ode/internal/core"
	"ode/internal/storage/dali"
)

// CredCard is the §4 fixture, served over the network.
type CredCard struct {
	Holder   string
	CredLim  float64
	CurrBal  float64
	GoodHist bool
}

func credCardClass() *core.Class {
	return core.MustClass("CredCard",
		core.Factory(func() any { return new(CredCard) }),
		core.Method("Buy", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return c.CurrBal, nil
		}),
		core.Method("PayBill", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal -= args[0].(float64)
			return c.CurrBal, nil
		}),
		core.Method("RaiseLimit", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CredLim += args[0].(float64)
			return nil, nil
		}),
		core.Events("after Buy", "after PayBill", "BigBuy"),
		core.Mask("OverLimit", func(ctx *core.Ctx, self any, act *core.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > c.CredLim, nil
		}),
		core.Mask("MoreCred", func(ctx *core.Ctx, self any, act *core.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > 0.8*c.CredLim && c.GoodHist, nil
		}),
		core.Trigger("DenyCredit", "after Buy & OverLimit",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				ctx.TAbort()
				return nil
			},
			core.Perpetual()),
		core.Trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "RaiseLimit", act.ArgFloat(0))
				return err
			}),
	)
}

func startServer(t *testing.T) (addr string) {
	t.Helper()
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(credCardClass()); err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// transport abstracts how a test obtains a Session, so the whole op
// suite below runs unchanged over every protocol the server speaks:
//
//	json   — one JSON connection per session (the original client)
//	binary — one ODE2 connection per session
//	mux    — every session is a sid on ONE shared ODE2 connection
//
// Identical observable behavior across all three is the cross-protocol
// equivalence proof the binary transport ships under.
type transport struct {
	name string
	addr string
	mux  *Mux // set in mux mode: sessions share it
}

// newSession opens a session without a testing.T (for use inside test
// goroutines); the caller closes it.
func (tr *transport) newSession() (Session, error) {
	if tr.mux != nil {
		return tr.mux.Session(), nil
	}
	return DialOptions(tr.addr, ClientOptions{Binary: tr.name == "binary"})
}

// dial opens a session tied to the test's lifetime.
func (tr *transport) dial(t *testing.T) Session {
	t.Helper()
	s, err := tr.newSession()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// forEachTransport runs fn as a subtest per transport, each against a
// fresh server.
func forEachTransport(t *testing.T, fn func(t *testing.T, tr *transport)) {
	for _, name := range []string{"json", "binary", "mux"} {
		t.Run(name, func(t *testing.T) {
			tr := &transport{name: name, addr: startServer(t)}
			if name == "mux" {
				m, err := DialMux(tr.addr, ClientOptions{})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { m.Close() })
				tr.mux = m
			}
			fn(t, tr)
		})
	}
}

func TestClientLifecycle(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr *transport) {
		c := tr.dial(t)

		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		ref, err := c.Create("CredCard", &CredCard{Holder: "net", CredLim: 1000, GoodHist: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ClusterAdd("cards", ref); err != nil {
			t.Fatal(err)
		}
		ret, err := c.Invoke(ref, "Buy", 100)
		if err != nil {
			t.Fatal(err)
		}
		if ret.(float64) != 100 {
			t.Fatalf("Buy returned %v", ret)
		}
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}

		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		var card CredCard
		if err := c.Get(ref, &card); err != nil {
			t.Fatal(err)
		}
		if card.CurrBal != 100 || card.Holder != "net" {
			t.Fatalf("card = %+v", card)
		}
		refs, err := c.ClusterScan("cards")
		if err != nil || len(refs) != 1 || refs[0] != ref {
			t.Fatalf("scan = %v, %v", refs, err)
		}
		if err := c.Abort(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTriggerAbortOverWire(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr *transport) {
		c := tr.dial(t)

		c.Begin()
		ref, _ := c.Create("CredCard", &CredCard{CredLim: 100, GoodHist: true})
		if _, err := c.Activate(ref, "DenyCredit"); err != nil {
			t.Fatal(err)
		}
		c.Commit()

		c.Begin()
		if _, err := c.Invoke(ref, "Buy", 500); err != nil {
			t.Fatal(err) // invoke succeeds; the doom lands at commit
		}
		err := c.Commit()
		if !errors.Is(err, ErrRemoteAborted) {
			t.Fatalf("commit over wire = %v, want ErrRemoteAborted", err)
		}

		c.Begin()
		var card CredCard
		c.Get(ref, &card)
		c.Abort()
		if card.CurrBal != 0 {
			t.Fatalf("denied purchase persisted: %v", card.CurrBal)
		}
	})
}

func TestGlobalCompositeAcrossClients(t *testing.T) {
	// The §7 scenario live: application A arms AutoRaiseLimit's pattern,
	// application B completes it. In mux mode A and B are two sids on
	// one connection — the same global composite, one TCP stream.
	forEachTransport(t, func(t *testing.T, tr *transport) {
		a := tr.dial(t)
		b := tr.dial(t)

		a.Begin()
		ref, _ := a.Create("CredCard", &CredCard{CredLim: 1000, GoodHist: true})
		if _, err := a.Activate(ref, "AutoRaiseLimit", 500); err != nil {
			t.Fatal(err)
		}
		a.Commit()

		a.Begin()
		if _, err := a.Invoke(ref, "Buy", 900); err != nil { // arms
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}

		b.Begin()
		if _, err := b.Invoke(ref, "PayBill", 100); err != nil { // fires
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}

		b.Begin()
		var card CredCard
		b.Get(ref, &card)
		b.Abort()
		if card.CredLim != 1500 {
			t.Fatalf("cross-client composite did not fire: limit %v", card.CredLim)
		}
	})
}

func TestSessionErrors(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr *transport) {
		c := tr.dial(t)

		// Ops without a transaction.
		if _, err := c.Invoke(1, "Buy", 1); err == nil {
			t.Fatal("invoke without begin succeeded")
		}
		if err := c.Commit(); err == nil {
			t.Fatal("commit without begin succeeded")
		}
		// Double begin.
		c.Begin()
		if err := c.Begin(); err == nil {
			t.Fatal("double begin succeeded")
		}
		// Unknown class / op-level errors surface as errors, not disconnects.
		if _, err := c.Create("NoSuch", nil); err == nil {
			t.Fatal("unknown class accepted")
		}
		if _, err := c.Invoke(99999, "Buy", 1); err == nil {
			t.Fatal("unknown ref accepted")
		}
		// The connection is still usable.
		ref, err := c.Create("CredCard", &CredCard{CredLim: 10})
		if err != nil {
			t.Fatal(err)
		}
		if ref == 0 {
			t.Fatal("zero ref")
		}
		c.Commit()
	})
}

func TestDisconnectAbortsOpenTxn(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr *transport) {
		a := tr.dial(t)

		a.Begin()
		ref, _ := a.Create("CredCard", &CredCard{CredLim: 10})
		a.Commit()

		// Client b opens a txn, writes, and vanishes. (In mux mode
		// "vanishing" is a close-session frame: the shared connection
		// lives on, b's transaction must not.)
		b, err := tr.newSession()
		if err != nil {
			t.Fatal(err)
		}
		b.Begin()
		if _, err := b.Invoke(ref, "Buy", 5); err != nil {
			t.Fatal(err)
		}
		b.Close()

		// Client a can still lock and read the object (b's locks released),
		// and b's write is gone.
		a.Begin()
		var card CredCard
		if err := a.Get(ref, &card); err != nil {
			t.Fatal(err)
		}
		a.Abort()
		if card.CurrBal != 0 {
			t.Fatalf("disconnected client's write persisted: %v", card.CurrBal)
		}
	})
}

func TestConcurrentClients(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr *transport) {
		setup := tr.dial(t)
		setup.Begin()
		ref, err := setup.Create("CredCard", &CredCard{CredLim: 1e12, GoodHist: true})
		if err != nil {
			t.Fatal(err)
		}
		setup.Commit()

		const clients = 6
		const perClient = 20
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := tr.newSession()
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				for j := 0; j < perClient; j++ {
					for {
						if err := c.Begin(); err != nil {
							errs <- err
							return
						}
						if _, err := c.Invoke(ref, "Buy", 1); err != nil {
							c.Abort()
							if errors.Is(err, ErrRemoteAborted) {
								continue
							}
							errs <- err
							return
						}
						if err := c.Commit(); err != nil {
							if errors.Is(err, ErrRemoteAborted) {
								continue
							}
							errs <- err
							return
						}
						break
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		check := tr.dial(t)
		check.Begin()
		var card CredCard
		check.Get(ref, &card)
		check.Abort()
		if card.CurrBal != clients*perClient {
			t.Fatalf("balance = %v, want %d", card.CurrBal, clients*perClient)
		}
	})
}

func TestActiveTriggersOverWire(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr *transport) {
		c := tr.dial(t)
		c.Begin()
		ref, _ := c.Create("CredCard", &CredCard{CredLim: 100})
		id, err := c.Activate(ref, "DenyCredit")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := c.ActiveTriggers(ref)
		if err != nil {
			t.Fatal(err)
		}
		var infos []map[string]any
		if err := json.Unmarshal(raw, &infos); err != nil {
			t.Fatal(err)
		}
		if len(infos) != 1 || infos[0]["Trigger"] != "DenyCredit" {
			t.Fatalf("triggers = %s", raw)
		}
		if err := c.Deactivate(id); err != nil {
			t.Fatal(err)
		}
		raw, _ = c.ActiveTriggers(ref)
		infos = nil
		json.Unmarshal(raw, &infos)
		if len(infos) != 0 {
			t.Fatalf("after deactivate: %s", raw)
		}
		c.Commit()
	})
}
