package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/storage/dali"
)

func newTestDB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(credCardClass()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestBackoffSchedule: waits double from Base, cap at Max, Reset
// restarts.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("Next #%d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("Next after Reset = %v, want 10ms", got)
	}
	var zero Backoff
	if got := zero.Next(); got != 10*time.Millisecond {
		t.Fatalf("zero-value Next = %v, want default 10ms", got)
	}
}

// TestClientReconnectFlappingListener: the satellite scenario — the
// server goes away mid-session and comes back on the same address; the
// client's next calls redial with capped backoff and succeed. The call
// that straddled the outage fails (at-most-once: it is never resent).
func TestClientReconnectFlappingListener(t *testing.T) {
	db := newTestDB(t)
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := DialOptions(addr, ClientOptions{
		RequestTimeout: 2 * time.Second,
		DialAttempts:   50,
		RedialBase:     2 * time.Millisecond,
		RedialMax:      20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&Request{Op: "metrics"}); err != nil {
		t.Fatalf("call before flap: %v", err)
	}

	// Take the server down, then bring a fresh one up on the same
	// address after a delay shorter than the redial budget.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := New(db)
	t.Cleanup(func() { srv2.Close() })
	go func() {
		time.Sleep(30 * time.Millisecond)
		// The old socket can take a moment to release; retry the bind.
		for i := 0; i < 100; i++ {
			if _, err := srv2.Listen(addr); err == nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The in-flight-style call right after the outage may fail — its
	// request is not resent. Subsequent calls must recover.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = c.Call(&Request{Op: "metrics"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: %v", err)
		}
	}
	if c.Reconnects() < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", c.Reconnects())
	}
}

// TestClientFailFastDefault: the default client keeps its original
// behavior — one dial attempt, immediate error.
func TestClientFailFastDefault(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

// TestReplicaRedirect: a write on a read-only database behind a server
// with PrimaryAddr yields a RedirectError carrying the primary address.
func TestReplicaRedirect(t *testing.T) {
	db := newTestDB(t)
	db.SetReadOnly(true)
	srv := NewWithOptions(db, Options{PrimaryAddr: "primary.example:7000"})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Create("CredCard", &CredCard{})
	var re *RedirectError
	if !errors.As(err, &re) {
		t.Fatalf("Create on replica = %v, want RedirectError", err)
	}
	if re.Primary != "primary.example:7000" {
		t.Fatalf("Redirect = %q, want primary.example:7000", re.Primary)
	}
	// Reads still work.
	if _, err := c.ClusterScan("anything"); err != nil {
		t.Fatalf("read on replica: %v", err)
	}
}

// TestExtraAndStreamOps: extension ops dispatch before the built-ins;
// a stream op takes the connection over.
func TestExtraAndStreamOps(t *testing.T) {
	db := newTestDB(t)
	srv := NewWithOptions(db, Options{
		ExtraOps: map[string]func(*Request) *Response{
			"x.echo": func(req *Request) *Response {
				return &Response{OK: true, Result: req.Event}
			},
			"x.boom": func(req *Request) *Response { panic("kaboom") },
		},
		StreamOps: map[string]StreamHandler{
			"x.stream": func(conn net.Conn, req *Request) error {
				enc := json.NewEncoder(conn)
				for i := uint64(0); i < 3; i++ {
					if err := enc.Encode(&Response{OK: true, ID: req.LSN + i}); err != nil {
						return err
					}
				}
				return nil
			},
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call(&Request{Op: "x.echo", Event: "hello"})
	if err != nil || resp.Result != "hello" {
		t.Fatalf("x.echo = %+v, %v", resp, err)
	}
	// A panicking extra op answers with an error and keeps the session.
	if _, err := c.Call(&Request{Op: "x.boom"}); err == nil {
		t.Fatal("x.boom did not error")
	}
	if _, err := c.Call(&Request{Op: "x.echo", Event: "still here"}); err != nil {
		t.Fatalf("session dead after extra-op panic: %v", err)
	}
	c.Close()

	// Stream op: raw connection, three frames, then EOF.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	if err := enc.Encode(&Request{Op: "x.stream", LSN: 7}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		var r Response
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if r.ID != 7+i {
			t.Fatalf("frame %d ID = %d, want %d", i, r.ID, 7+i)
		}
	}
	var r Response
	if err := dec.Decode(&r); err == nil {
		t.Fatalf("expected EOF after stream, got %+v", r)
	}
}
