package server

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mux is a shared-connection multiplexing client: N goroutines each own
// a MuxSession (one sid, one open transaction — the same session model
// as a Client) but all sessions ride one TCP connection and one ODE2
// wire. One writer loop coalesces their small request frames, one
// reader loop fans responses back out by request ID, and the server
// processes different sids concurrently — so sessions complete out of
// order without costing a connection each.
//
// A transport failure (or one session's request timeout) fails the
// shared wire and with it every session's in-flight calls; the next
// call on any session transparently redials. As with Client, nothing is
// ever re-sent: each session's open transaction died with the old
// connection, so callers retry at the transaction level.
type Mux struct {
	addr string
	opts ClientOptions

	mu         sync.Mutex
	w          *wire
	nextSid    uint32
	dialed     bool
	reconnects int
	closed     bool
}

// DialMux connects a multiplexing client. The binary protocol is
// implied — multiplexing is meaningless over newline-delimited JSON —
// so opts.Binary is forced on.
func DialMux(addr string, opts ClientOptions) (*Mux, error) {
	if opts.DialAttempts <= 0 {
		opts.DialAttempts = 1
	}
	opts.Binary = true
	m := &Mux{addr: addr, opts: opts}
	if _, err := m.ensureWire(); err != nil {
		return nil, err
	}
	return m, nil
}

// Session allocates a new session (sid) on the shared connection. The
// returned MuxSession is itself single-threaded like a Client, but any
// number of sessions can run concurrently. Sessions are cheap: no
// handshake, no server state until the first request arrives.
func (m *Mux) Session() *MuxSession {
	m.mu.Lock()
	m.nextSid++
	sid := m.nextSid
	m.mu.Unlock()
	s := &MuxSession{m: m, sid: sid}
	s.ops = ops{c: s}
	return s
}

// Reconnects counts how many times the mux re-established its
// connection after the initial dial.
func (m *Mux) Reconnects() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reconnects
}

// Close drops the shared connection; every session's in-flight calls
// fail with ErrClosed and the server aborts their open transactions.
func (m *Mux) Close() error {
	m.mu.Lock()
	m.closed = true
	w := m.w
	m.w = nil
	m.mu.Unlock()
	if w != nil {
		w.fail(ErrClosed)
	}
	return nil
}

// ensureWire (re)establishes the shared connection with the same
// backoff schedule as Client.ensureConn.
func (m *Mux) ensureWire() (*wire, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.w != nil && m.w.broken() {
		m.w = nil
	}
	if m.w != nil {
		return m.w, nil
	}
	bo := Backoff{Base: m.opts.RedialBase, Max: m.opts.RedialMax}
	var err error
	for i := 0; i < m.opts.DialAttempts; i++ {
		if i > 0 {
			time.Sleep(bo.Next())
		}
		var w *wire
		w, err = dialWire(m.addr, m.opts.RequestTimeout)
		if err == nil {
			if m.dialed {
				m.reconnects++
			}
			m.dialed = true
			m.w = w
			return w, nil
		}
		if errors.Is(err, ErrBinaryDisabled) {
			break
		}
	}
	return nil, fmt.Errorf("server: dial %s: %w", m.addr, err)
}

// dropWire discards the shared wire after a request timeout.
func (m *Mux) dropWire(w *wire) {
	w.fail(errors.New("server: connection dropped"))
	m.mu.Lock()
	if m.w == w {
		m.w = nil
	}
	m.mu.Unlock()
}

// MuxSession is one session (sid) on a Mux: at most one open
// transaction, the full Session API, synchronous methods not safe for
// concurrent use — exactly a Client, minus the private connection.
type MuxSession struct {
	ops

	m   *Mux
	sid uint32
}

// SID returns the session's wire id (diagnostics; it appears in frame
// dumps).
func (s *MuxSession) SID() uint32 { return s.sid }

func (s *MuxSession) call(req *Request) (*Response, error) {
	call := s.Go(req)
	return s.await(call)
}

func (s *MuxSession) await(call *Call) (*Response, error) {
	if s.m.opts.RequestTimeout <= 0 {
		return call.Wait()
	}
	select {
	case <-call.Done():
	case <-time.After(s.m.opts.RequestTimeout):
		// Same contract as Client: a timeout is a transport failure, and
		// the transport here is shared — every session redials.
		s.m.mu.Lock()
		w := s.m.w
		s.m.mu.Unlock()
		if w != nil {
			s.m.dropWire(w)
		}
	}
	return call.Wait()
}

// Go sends req on the session without waiting; the returned Call
// completes when the response arrives. Requests on one session complete
// in order, requests on different sessions complete as the server
// finishes them.
func (s *MuxSession) Go(req *Request) *Call {
	w, err := s.m.ensureWire()
	if err != nil {
		call := newCall(req)
		call.complete(nil, err)
		return call
	}
	return w.send(s.sid, req)
}

// Close ends the session: the server aborts its open transaction (the
// same contract as a Client disconnect) and retires its state, while
// the shared connection stays up for every other session. Closing a
// session that never sent a request is a no-op server-side.
func (s *MuxSession) Close() error {
	s.m.mu.Lock()
	w := s.m.w
	closed := s.m.closed
	s.m.mu.Unlock()
	if closed || w == nil || w.broken() {
		return nil // no live connection: no server state to retire
	}
	_, err := s.await(w.sendClose(s.sid))
	return err
}
