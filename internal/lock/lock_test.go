package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var res = Resource{SpaceObject, 1}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(2, res, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second shared lock blocked")
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := m.Lock(2, res, Shared); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("shared granted while exclusive held")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("shared not granted after release")
	}
}

func TestReentrantLock(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		if err := m.Lock(1, res, Shared); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Lock(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}
	// Holding X, requesting S is a no-op (stronger already held).
	if err := m.Lock(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.HeldMode(1, res); !ok || mode != Exclusive {
		t.Fatalf("held mode = %v,%v; want Exclusive", mode, ok)
	}
}

func TestUpgradeSoloHolder(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, res, Exclusive); err != nil {
		t.Fatalf("solo upgrade failed: %v", err)
	}
	if got := m.Stats().Upgrades; got != 1 {
		t.Fatalf("upgrades = %d, want 1", got)
	}
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, res, Shared); err != nil {
		t.Fatal(err)
	}
	upgraded := make(chan error, 1)
	go func() { upgraded <- m.Lock(1, res, Exclusive) }()
	select {
	case <-upgraded:
		t.Fatal("upgrade granted while another reader holds")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(2)
	select {
	case err := <-upgraded:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade never granted")
	}
	if mode, _ := m.HeldMode(1, res); mode != Exclusive {
		t.Fatalf("mode after upgrade = %v", mode)
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// Two shared holders both upgrading is the classic deadlock.
	m := NewManager()
	if err := m.Lock(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, res, Shared); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(1, res, Exclusive) }()
	time.Sleep(20 * time.Millisecond) // let txn 1 queue first
	go func() { errs <- m.Lock(2, res, Exclusive) }()

	var deadlocked bool
	select {
	case err := <-errs:
		if errors.Is(err, ErrDeadlock) {
			deadlocked = true
			// victim aborts: release its locks so the other proceeds
			if err := func() error {
				m.ReleaseAll(2)
				return nil
			}(); err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("no deadlock detected")
	}
	if !deadlocked {
		// First completer was the survivor; the second must deadlock.
		select {
		case err := <-errs:
			if !errors.Is(err, ErrDeadlock) {
				t.Fatalf("expected deadlock, got %v", err)
			}
			m.ReleaseAll(2)
		case <-time.After(time.Second):
			t.Fatal("no deadlock detected")
		}
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("deadlock counter not incremented")
	}
}

func TestTwoResourceDeadlock(t *testing.T) {
	// T1: X(a) then X(b); T2: X(b) then X(a).
	a := Resource{SpaceObject, 10}
	b := Resource{SpaceObject, 11}
	m := NewManager()
	if err := m.Lock(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(1, b, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- m.Lock(2, a, Exclusive) }()

	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("first completion = %v, want deadlock (T2 is the victim)", err)
		}
		m.ReleaseAll(2)
	case <-time.After(time.Second):
		t.Fatal("no deadlock detected")
	}
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("survivor got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never granted")
	}
}

func TestWriterNotStarved(t *testing.T) {
	// A queued exclusive waiter must block later shared requests.
	m := NewManager()
	if err := m.Lock(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	wGranted := make(chan error, 1)
	go func() { wGranted <- m.Lock(2, res, Exclusive) }()
	time.Sleep(20 * time.Millisecond)

	rGranted := make(chan error, 1)
	go func() { rGranted <- m.Lock(3, res, Shared) }()
	select {
	case <-rGranted:
		t.Fatal("late reader overtook queued writer")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-wGranted; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-rGranted; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllWakesQueue(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}
	const readers = 5
	var wg sync.WaitGroup
	var granted atomic.Int32
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			if err := m.Lock(id, res, Shared); err == nil {
				granted.Add(1)
			}
		}(TxnID(10 + i))
	}
	time.Sleep(50 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if granted.Load() != readers {
		t.Fatalf("%d readers granted, want %d", granted.Load(), readers)
	}
}

func TestUnlockSingle(t *testing.T) {
	m := NewManager()
	a := Resource{SpaceObject, 1}
	b := Resource{SpaceTrigger, 1}
	if err := m.Lock(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	m.Unlock(1, a)
	if _, ok := m.HeldMode(1, a); ok {
		t.Fatal("a still held after Unlock")
	}
	if _, ok := m.HeldMode(1, b); !ok {
		t.Fatal("b dropped by Unlock(a)")
	}
}

func TestSpacesAreIndependent(t *testing.T) {
	m := NewManager()
	objRes := Resource{SpaceObject, 7}
	trgRes := Resource{SpaceTrigger, 7}
	if err := m.Lock(1, objRes, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, trgRes, Exclusive); err != nil {
		t.Fatal(err) // same ID, different space: no conflict
	}
}

func TestStatsCounting(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(2, res, Exclusive) }()
	time.Sleep(30 * time.Millisecond)
	st := m.Stats()
	if st.Waits != 1 {
		t.Fatalf("waits = %d, want 1", st.Waits)
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.Acquisitions < 2 {
		t.Fatalf("acquisitions = %d, want >= 2", st.Acquisitions)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestModeAndResourceString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("mode strings wrong")
	}
	if got := (Resource{SpaceTrigger, 9}).String(); got != "1/9" {
		t.Fatalf("resource string = %q", got)
	}
}

// Property: any random schedule of lock/unlock over a handful of
// transactions and resources never grants conflicting modes concurrently
// and always terminates (deadlock victims get errors, not hangs).
func TestNoConflictingGrantsProperty(t *testing.T) {
	f := func(script []uint8) bool {
		m := NewManager()
		held := make(map[Resource]map[TxnID]Mode)
		var mu sync.Mutex
		ok := true

		var wg sync.WaitGroup
		sem := make(chan struct{}, 4)
		for i, b := range script {
			txn := TxnID(b%3 + 1)
			r := Resource{SpaceObject, uint64(b / 3 % 3)}
			mode := Shared
			if b%2 == 0 {
				mode = Exclusive
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := m.Lock(txn, r, mode); err != nil {
					m.ReleaseAll(txn)
					return
				}
				mu.Lock()
				if held[r] == nil {
					held[r] = make(map[TxnID]Mode)
				}
				for h, hm := range held[r] {
					if h != txn && (mode == Exclusive || hm == Exclusive) {
						ok = false
					}
				}
				held[r][txn] = mode
				mu.Unlock()

				mu.Lock()
				delete(held[r], txn)
				mu.Unlock()
				m.ReleaseAll(txn)
			}(i)
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDistinctResources(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			txn := TxnID(i + 1)
			for j := 0; j < 100; j++ {
				r := Resource{SpaceObject, uint64(i*1000 + j)}
				if err := m.Lock(txn, r, Exclusive); err != nil {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
			m.ReleaseAll(txn)
		}(i)
	}
	wg.Wait()
	st := m.Stats()
	if st.Deadlocks != 0 || st.Waits != 0 {
		t.Fatalf("disjoint workload saw waits=%d deadlocks=%d", st.Waits, st.Deadlocks)
	}
}

func ExampleManager() {
	m := NewManager()
	_ = m.Lock(1, Resource{SpaceObject, 42}, Shared)
	// Advancing a trigger FSM needs the trigger descriptor in X mode
	// (§6: triggers turn reads into writes).
	_ = m.Lock(1, Resource{SpaceTrigger, 7}, Exclusive)
	mode, _ := m.HeldMode(1, Resource{SpaceTrigger, 7})
	fmt.Println(mode)
	m.ReleaseAll(1)
	// Output: X
}
