// Package lock implements the lock manager underlying Ode's storage layer:
// strict two-phase locking with shared/exclusive modes, lock upgrade, and
// immediate deadlock detection over a waits-for graph.
//
// The paper's §6 observes that "triggers turn read access into write
// access, increasing both the amount of time the transactions spend
// waiting for locks and the likelihood of deadlock" — advancing a
// trigger's FSM writes the trigger descriptor even when the triggering
// member function only read the object. Experiment E8 reproduces that
// effect on this lock manager, so the manager keeps counters for waits,
// upgrades, and deadlocks.
package lock

import (
	"errors"
	"fmt"
	"sync"
)

// TxnID identifies a lock-holding transaction.
type TxnID uint64

// Mode is a lock mode.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Space namespaces lockable resources: Ode locks objects, trigger
// descriptors (the §5.1.3 "trigger descriptor" write), index entries, and
// catalog records independently.
type Space uint8

const (
	// SpaceObject covers persistent objects.
	SpaceObject Space = iota
	// SpaceTrigger covers TriggerState descriptors.
	SpaceTrigger
	// SpaceIndex covers the object → active-trigger index buckets.
	SpaceIndex
	// SpaceCluster covers cluster (extent) membership lists.
	SpaceCluster
	// SpaceMeta covers catalog/metatype records.
	SpaceMeta
)

// Resource names one lockable unit.
type Resource struct {
	Space Space
	ID    uint64
}

func (r Resource) String() string { return fmt.Sprintf("%d/%d", r.Space, r.ID) }

// ErrDeadlock is returned to the victim of a detected deadlock. The
// caller must abort its transaction and release its locks.
var ErrDeadlock = errors.New("lock: deadlock detected; transaction chosen as victim")

// Stats counts lock-manager activity; experiment E8 reads these.
type Stats struct {
	Acquisitions uint64 // granted requests (including re-entrant)
	Waits        uint64 // requests that had to block
	Upgrades     uint64 // shared → exclusive upgrades
	Deadlocks    uint64 // victims aborted
}

// waiter is one blocked request.
type waiter struct {
	txn     TxnID
	mode    Mode
	upgrade bool
	granted chan error // closed with nil on grant; receives ErrDeadlock on victimization
}

// entry is the lock table record for one resource.
type entry struct {
	holders map[TxnID]Mode
	queue   []*waiter
}

// Manager is the lock manager. All methods are safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	table    map[Resource]*entry
	held     map[TxnID]map[Resource]Mode // reverse index for ReleaseAll
	waitsFor map[TxnID]map[TxnID]int     // edge multiset for deadlock detection
	stats    Stats
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		table:    make(map[Resource]*entry),
		held:     make(map[TxnID]map[Resource]Mode),
		waitsFor: make(map[TxnID]map[TxnID]int),
	}
}

// Lock acquires r in the given mode on behalf of txn, blocking until the
// lock is granted. It returns ErrDeadlock if granting would deadlock and
// txn was chosen as the victim; the caller must then abort txn. Requests
// for locks already held (at the same or stronger mode) succeed
// immediately; a Shared holder requesting Exclusive performs an upgrade.
func (m *Manager) Lock(txn TxnID, r Resource, mode Mode) error {
	m.mu.Lock()
	e := m.table[r]
	if e == nil {
		e = &entry{holders: make(map[TxnID]Mode)}
		m.table[r] = e
	}

	if cur, ok := e.holders[txn]; ok {
		if cur >= mode {
			m.stats.Acquisitions++
			m.mu.Unlock()
			return nil // re-entrant, same or stronger
		}
		// Upgrade S → X.
		m.stats.Upgrades++
		if len(e.holders) == 1 {
			e.holders[txn] = Exclusive
			m.recordHeld(txn, r, Exclusive)
			m.stats.Acquisitions++
			m.mu.Unlock()
			return nil
		}
		return m.wait(txn, r, e, mode, true)
	}

	if m.compatible(e, txn, mode) {
		e.holders[txn] = mode
		m.recordHeld(txn, r, mode)
		m.stats.Acquisitions++
		m.mu.Unlock()
		return nil
	}
	return m.wait(txn, r, e, mode, false)
}

// compatible reports whether txn may be granted mode on e right now:
// the request must not conflict with current holders, and — to prevent
// writer starvation — a new shared request must not overtake a queued
// upgrade or exclusive waiter.
func (m *Manager) compatible(e *entry, txn TxnID, mode Mode) bool {
	for h, hm := range e.holders {
		if h == txn {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	if mode == Shared {
		for _, w := range e.queue {
			if w.mode == Exclusive {
				return false
			}
		}
	}
	return true
}

// wait enqueues txn and blocks; m.mu must be held and is released.
func (m *Manager) wait(txn TxnID, r Resource, e *entry, mode Mode, upgrade bool) error {
	// Build waits-for edges: txn waits for every conflicting holder and
	// every queued waiter it must fall behind.
	blockers := m.blockersOf(e, txn, mode)
	for _, b := range blockers {
		m.addEdge(txn, b)
	}
	if m.cyclic(txn) {
		// txn is the victim: undo the edges and fail the request.
		for _, b := range blockers {
			m.removeEdge(txn, b)
		}
		m.stats.Deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	m.stats.Waits++
	w := &waiter{txn: txn, mode: mode, upgrade: upgrade, granted: make(chan error, 1)}
	if upgrade {
		// Upgraders go to the front: they already hold Shared, so
		// granting anyone else Exclusive first is impossible anyway.
		e.queue = append([]*waiter{w}, e.queue...)
	} else {
		e.queue = append(e.queue, w)
	}
	m.mu.Unlock()

	err := <-w.granted
	return err
}

// blockersOf lists the transactions txn would wait for.
func (m *Manager) blockersOf(e *entry, txn TxnID, mode Mode) []TxnID {
	var out []TxnID
	for h, hm := range e.holders {
		if h == txn {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			out = append(out, h)
		}
	}
	for _, w := range e.queue {
		if w.txn != txn && (mode == Exclusive || w.mode == Exclusive) {
			out = append(out, w.txn)
		}
	}
	return out
}

func (m *Manager) addEdge(from, to TxnID) {
	edges := m.waitsFor[from]
	if edges == nil {
		edges = make(map[TxnID]int)
		m.waitsFor[from] = edges
	}
	edges[to]++
}

func (m *Manager) removeEdge(from, to TxnID) {
	edges := m.waitsFor[from]
	if edges == nil {
		return
	}
	if edges[to] <= 1 {
		delete(edges, to)
		if len(edges) == 0 {
			delete(m.waitsFor, from)
		}
	} else {
		edges[to]--
	}
}

// cyclic reports whether start can reach itself in the waits-for graph.
func (m *Manager) cyclic(start TxnID) bool {
	seen := make(map[TxnID]bool)
	var dfs func(TxnID) bool
	dfs = func(t TxnID) bool {
		for next := range m.waitsFor[t] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

func (m *Manager) recordHeld(txn TxnID, r Resource, mode Mode) {
	hs := m.held[txn]
	if hs == nil {
		hs = make(map[Resource]Mode)
		m.held[txn] = hs
	}
	hs[r] = mode
}

// Unlock releases txn's lock on r (early release; strict 2PL normally
// releases everything via ReleaseAll at commit/abort).
func (m *Manager) Unlock(txn TxnID, r Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.release(txn, r)
}

// release drops txn's hold on r and wakes grantable waiters. Callers hold m.mu.
func (m *Manager) release(txn TxnID, r Resource) {
	e := m.table[r]
	if e == nil {
		return
	}
	if _, ok := e.holders[txn]; !ok {
		return
	}
	delete(e.holders, txn)
	if hs := m.held[txn]; hs != nil {
		delete(hs, r)
		if len(hs) == 0 {
			delete(m.held, txn)
		}
	}
	m.grant(r, e)
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.table, r)
	}
}

// grant wakes queued waiters that are now compatible, front to back.
// Callers hold m.mu.
func (m *Manager) grant(r Resource, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !m.grantable(e, w) {
			return
		}
		e.queue = e.queue[1:]
		// Tear down w's waits-for edges (w waits on one resource at a
		// time, so every outgoing edge belongs to this request).
		delete(m.waitsFor, w.txn)
		e.holders[w.txn] = w.mode
		m.recordHeld(w.txn, r, w.mode)
		w.granted <- nil
		m.stats.Acquisitions++
	}
}

// grantable reports whether the head waiter can run.
func (m *Manager) grantable(e *entry, w *waiter) bool {
	for h, hm := range e.holders {
		if h == w.txn {
			continue
		}
		if w.mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// ReleaseAll releases every lock txn holds and clears its wait state;
// called by the transaction manager at commit or abort.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hs := m.held[txn]
	for r := range hs {
		m.release(txn, r)
	}
	delete(m.held, txn)
	delete(m.waitsFor, txn)
}

// HeldMode reports the mode txn holds on r (ok=false if none).
func (m *Manager) HeldMode(txn TxnID, r Resource) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.table[r]
	if e == nil {
		return 0, false
	}
	mode, ok := e.holders[txn]
	return mode, ok
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (benchmarks use this between phases).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}
