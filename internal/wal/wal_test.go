package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func scanAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	err := l.Scan(func(_ LSN, r *Record) error {
		out = append(out, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendScanRoundTrip(t *testing.T) {
	l, _ := openTemp(t)
	recs := []Record{
		{Type: RecAllocate, Txn: 1, OID: 100, Data: []byte("hello")},
		{Type: RecUpdate, Txn: 1, OID: 100, Data: []byte("world!")},
		{Type: RecFree, Txn: 1, OID: 101},
		{Type: RecCommit, Txn: 1},
	}
	for i := range recs {
		if _, err := l.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := scanAll(t, l)
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Type != recs[i].Type || got[i].Txn != recs[i].Txn ||
			got[i].OID != recs[i].OID || !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	l, path := openTemp(t)
	if err := l.AppendBatch([]Record{
		{Type: RecUpdate, Txn: 7, OID: 1, Data: []byte("x")},
		{Type: RecCommit, Txn: 7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := scanAll(t, l2)
	if len(got) != 2 || got[1].Type != RecCommit || got[1].Txn != 7 {
		t.Fatalf("after reopen: %+v", got)
	}
}

func TestAppendAfterReopenContinues(t *testing.T) {
	l, path := openTemp(t)
	if _, err := l.Append(&Record{Type: RecUpdate, Txn: 1, OID: 1, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Append(&Record{Type: RecUpdate, Txn: 2, OID: 2, Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, l2)
	if len(got) != 2 || got[0].Txn != 1 || got[1].Txn != 2 {
		t.Fatalf("combined log: %+v", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	l, path := openTemp(t)
	if err := l.AppendBatch([]Record{
		{Type: RecUpdate, Txn: 1, OID: 1, Data: []byte("committed")},
		{Type: RecCommit, Txn: 1},
	}); err != nil {
		t.Fatal(err)
	}
	size := l.Size()
	// Simulate a crash mid-batch: a second batch only partially written.
	if _, err := l.Append(&Record{Type: RecUpdate, Txn: 2, OID: 2, Data: []byte("torn")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Chop bytes off the tail, landing mid-record.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != size {
		t.Fatalf("recovered size %d, want %d (torn record dropped)", l2.Size(), size)
	}
	got := scanAll(t, l2)
	if len(got) != 2 || got[1].Type != RecCommit {
		t.Fatalf("recovered records: %+v", got)
	}
}

func TestCorruptMiddleDetectedOnOpen(t *testing.T) {
	l, path := openTemp(t)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(&Record{Type: RecUpdate, Txn: 1, OID: uint64(i), Data: []byte("data")}); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	l.Close()
	// Flip a byte in the first record's payload.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[headerSize+5] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	// A damaged record with valid records after it cannot be a torn
	// tail: Open must refuse with ErrCorrupt, not silently truncate
	// the two committed records behind it.
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestTruncate(t *testing.T) {
	l, _ := openTemp(t)
	if _, err := l.Append(&Record{Type: RecUpdate, Txn: 1, OID: 1, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after truncate = %d", l.Size())
	}
	if got := scanAll(t, l); len(got) != 0 {
		t.Fatalf("records after truncate: %+v", got)
	}
	// Log still usable.
	if _, err := l.Append(&Record{Type: RecCommit, Txn: 2}); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, l); len(got) != 1 {
		t.Fatalf("records after truncate+append: %+v", got)
	}
}

func TestLSNsAreMonotonic(t *testing.T) {
	l, _ := openTemp(t)
	var last LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(&Record{Type: RecUpdate, Txn: 1, OID: uint64(i), Data: make([]byte, i*7)})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && lsn <= last {
			t.Fatalf("LSN %d not after %d", lsn, last)
		}
		last = lsn
	}
}

func TestScanStopsOnCallbackError(t *testing.T) {
	l, _ := openTemp(t)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(&Record{Type: RecUpdate, Txn: 1, OID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("stop")
	count := 0
	err := l.Scan(func(LSN, *Record) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || count != 3 {
		t.Fatalf("err=%v count=%d", err, count)
	}
	// Appends still work after an aborted scan.
	if _, err := l.Append(&Record{Type: RecCommit, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, l); len(got) != 6 {
		t.Fatalf("got %d records, want 6", len(got))
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	l, _ := openTemp(t)
	l.Close()
	if _, err := l.Append(&Record{Type: RecCommit, Txn: 1}); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyDataRecord(t *testing.T) {
	l, _ := openTemp(t)
	if _, err := l.Append(&Record{Type: RecFree, Txn: 3, OID: 9}); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, l)
	if len(got) != 1 || got[0].Data != nil {
		t.Fatalf("empty-data record: %+v", got)
	}
}

// TestGroupCommitConcurrent hammers AppendBatch from many committers.
// Every batch must come back durable, batches must stay contiguous in the
// log (AppendCommit appends a transaction's records in one critical
// section), and the group-commit counters must add up.
func TestGroupCommitConcurrent(t *testing.T) {
	l, _ := openTemp(t)
	const committers, per = 8, 25
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			for i := 0; i < per; i++ {
				txn := uint64(w*per + i + 1)
				err := l.AppendBatch([]Record{
					{Type: RecUpdate, Txn: txn, OID: uint64(w), Data: []byte("v")},
					{Type: RecCommit, Txn: txn},
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	close(gate)
	wg.Wait()
	if t.Failed() {
		return
	}

	recs := scanAll(t, l)
	if len(recs) != committers*per*2 {
		t.Fatalf("scanned %d records, want %d", len(recs), committers*per*2)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < len(recs); i += 2 {
		u, c := recs[i], recs[i+1]
		if u.Type != RecUpdate || c.Type != RecCommit || u.Txn != c.Txn {
			t.Fatalf("batch at record %d not contiguous: %+v then %+v", i, u, c)
		}
		if seen[u.Txn] {
			t.Fatalf("txn %d appears twice", u.Txn)
		}
		seen[u.Txn] = true
	}

	st := l.SyncStats()
	if st.Commits != committers*per {
		t.Fatalf("Commits = %d, want %d", st.Commits, committers*per)
	}
	if st.Fsyncs == 0 || st.Fsyncs > st.Commits {
		t.Fatalf("Fsyncs = %d (Commits = %d)", st.Fsyncs, st.Commits)
	}
	if st.BatchMin == 0 || st.BatchMax < st.BatchMin || st.BatchMax > committers {
		t.Fatalf("batch bounds min=%d max=%d", st.BatchMin, st.BatchMax)
	}
	if st.CommitWaitNs == 0 {
		t.Fatal("CommitWaitNs = 0 after waiting commits")
	}
}

// TestSyncStatsSingleCommitter: with no concurrency there is nothing to
// coalesce — exactly one fsync per commit, batches of one.
func TestSyncStatsSingleCommitter(t *testing.T) {
	l, _ := openTemp(t)
	const n = 10
	for i := 1; i <= n; i++ {
		if err := l.AppendBatch([]Record{{Type: RecCommit, Txn: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.SyncStats()
	if st.Commits != n || st.Fsyncs != n {
		t.Fatalf("Commits=%d Fsyncs=%d, want %d each", st.Commits, st.Fsyncs, n)
	}
	if st.BatchMin != 1 || st.BatchMax != 1 {
		t.Fatalf("batch min/max = %d/%d, want 1/1", st.BatchMin, st.BatchMax)
	}
}

func TestRecTypeString(t *testing.T) {
	for rt, want := range map[RecType]string{
		RecUpdate: "update", RecAllocate: "allocate", RecFree: "free",
		RecCommit: "commit", RecCheckpoint: "checkpoint", RecType(99): "RecType(99)",
	} {
		if got := rt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", rt, got, want)
		}
	}
}

// Property: any batch of records survives a round trip through the log
// byte-identically.
func TestRoundTripProperty(t *testing.T) {
	type flat struct {
		Type uint8
		Txn  uint64
		OID  uint64
		Data []byte
	}
	f := func(in []flat) bool {
		path := filepath.Join(t.TempDir(), "prop.wal")
		l, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for _, r := range in {
			rec := Record{Type: RecType(r.Type%5 + 1), Txn: r.Txn, OID: r.OID, Data: r.Data}
			if _, err := l.Append(&rec); err != nil {
				return false
			}
		}
		var got []Record
		if err := l.Scan(func(_ LSN, r *Record) error { got = append(got, *r); return nil }); err != nil {
			return false
		}
		if len(got) != len(in) {
			return false
		}
		for i, r := range in {
			g := got[i]
			wantData := r.Data
			if len(wantData) == 0 {
				wantData = nil
			}
			if g.Type != RecType(r.Type%5+1) || g.Txn != r.Txn || g.OID != r.OID || !bytes.Equal(g.Data, wantData) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
