// Package wal implements the write-ahead log used by the disk-based
// storage manager (the EOS analog). The paper's storage managers provide
// "locking, logging, transactions" (§2); this log supplies the logging and
// durability half.
//
// The log is redo-only under a no-steal policy: a transaction's updates
// are buffered by the transaction manager and reach the log only at
// commit, as a single batch terminated by a commit record and fsynced
// once. Recovery therefore replays exactly the transactions whose commit
// record survived; a torn tail (partial batch from a crash mid-commit) is
// detected by CRC and truncated. In-transaction rollback — including the
// rollback of trigger FSM states required by §5.5 — never touches the log;
// it is served from in-memory before-images.
//
// Record format (little endian):
//
//	u32 payload length
//	u32 CRC-32 (IEEE) of payload
//	payload: u8 type | u64 txn | u64 oid | u32 len | data
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// LSN is a log sequence number: the byte offset of a record.
type LSN uint64

// RecType tags a log record.
type RecType uint8

const (
	// RecUpdate carries the redo (after) image of one object write.
	RecUpdate RecType = iota + 1
	// RecAllocate records creation of an object with its initial image.
	RecAllocate
	// RecFree records deletion of an object.
	RecFree
	// RecCommit marks txn's batch as durable; recovery replays only
	// transactions whose commit record is present.
	RecCommit
	// RecCheckpoint marks a point at which the store was flushed; records
	// before it are obsolete.
	RecCheckpoint
)

func (t RecType) String() string {
	switch t {
	case RecUpdate:
		return "update"
	case RecAllocate:
		return "allocate"
	case RecFree:
		return "free"
	case RecCommit:
		return "commit"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one log entry.
type Record struct {
	Type RecType
	Txn  uint64
	OID  uint64
	Data []byte
}

const headerSize = 8 // length + crc

// ErrCorrupt reports a CRC mismatch mid-log (not at the tail).
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only, CRC-checked record log.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	size int64
	path string
}

// Open opens (creating if needed) the log at path. It validates the
// existing contents and truncates any torn tail left by a crash.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, path: path}
	valid, err := l.validPrefix()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.size = valid
	l.w = bufio.NewWriterSize(f, 1<<16)
	return l, nil
}

// validPrefix scans the file and returns the length of the longest valid
// record prefix.
func (l *Log) validPrefix() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	var off int64
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, nil // clean EOF or torn header: keep prefix
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<30 {
			return off, nil // implausible length: torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil
		}
		off += int64(headerSize) + int64(length)
	}
}

// Append buffers a record and returns its LSN. The record is not durable
// until Flush returns.
func (l *Log) Append(rec *Record) (LSN, error) {
	payload := encode(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return 0, errors.New("wal: log closed")
	}
	lsn := LSN(l.size)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(headerSize) + int64(len(payload))
	return lsn, nil
}

// AppendBatch appends several records and flushes them durably with a
// single fsync — the commit path.
func (l *Log) AppendBatch(recs []Record) error {
	for i := range recs {
		if _, err := l.Append(&recs[i]); err != nil {
			return err
		}
	}
	return l.Flush()
}

// Flush forces buffered records to stable storage (fsync).
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.w == nil {
		return errors.New("wal: log closed")
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Scan replays every record in LSN order. Buffered records are flushed
// first so the scan sees everything appended so far.
func (l *Log) Scan(fn func(LSN, *Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush before scan: %w", err)
		}
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	var off int64
	hdr := make([]byte, headerSize)
	for off < l.size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return fmt.Errorf("wal: scan header at %d: %w", off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("wal: scan payload at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return fmt.Errorf("%w at LSN %d", ErrCorrupt, off)
		}
		rec, err := decode(payload)
		if err != nil {
			return err
		}
		if err := fn(LSN(off), rec); err != nil {
			return err
		}
		off += int64(headerSize) + int64(length)
	}
	// Restore the write position.
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek to tail: %w", err)
	}
	return nil
}

// Truncate discards the whole log (after a checkpoint has made the store
// durable) and starts over.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = 0
	l.w.Reset(l.f)
	return nil
}

// Size returns the current log length in bytes (buffered included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	flushErr := l.flushLocked()
	closeErr := l.f.Close()
	l.w = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

func encode(rec *Record) []byte {
	buf := make([]byte, 1+8+8+4+len(rec.Data))
	buf[0] = byte(rec.Type)
	binary.LittleEndian.PutUint64(buf[1:9], rec.Txn)
	binary.LittleEndian.PutUint64(buf[9:17], rec.OID)
	binary.LittleEndian.PutUint32(buf[17:21], uint32(len(rec.Data)))
	copy(buf[21:], rec.Data)
	return buf
}

func decode(payload []byte) (*Record, error) {
	if len(payload) < 21 {
		return nil, fmt.Errorf("wal: short payload (%d bytes)", len(payload))
	}
	rec := &Record{
		Type: RecType(payload[0]),
		Txn:  binary.LittleEndian.Uint64(payload[1:9]),
		OID:  binary.LittleEndian.Uint64(payload[9:17]),
	}
	n := binary.LittleEndian.Uint32(payload[17:21])
	if int(n) != len(payload)-21 {
		return nil, fmt.Errorf("wal: length mismatch: header %d, payload %d", n, len(payload)-21)
	}
	if n > 0 {
		rec.Data = append([]byte(nil), payload[21:]...)
	}
	return rec, nil
}
