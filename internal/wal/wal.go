// Package wal implements the write-ahead log used by the disk-based
// storage manager (the EOS analog). The paper's storage managers provide
// "locking, logging, transactions" (§2); this log supplies the logging and
// durability half.
//
// The log is redo-only under a no-steal policy: a transaction's updates
// are buffered by the transaction manager and reach the log only at
// commit, as a single batch terminated by a commit record. Recovery
// therefore replays exactly the transactions whose commit record
// survived; a torn tail (partial batch from a crash mid-commit) is
// detected by CRC and truncated. In-transaction rollback — including the
// rollback of trigger FSM states required by §5.5 — never touches the log;
// it is served from in-memory before-images.
//
// Durability uses group commit: AppendCommit buffers a transaction's
// records (contiguously, under the append lock) and WaitDurable blocks
// until an fsync covers them. Committers that arrive while an fsync is in
// flight do not issue their own — a leader-follower protocol elects one
// waiter to flush and fsync everything buffered so far, then wakes every
// committer whose records the sync covered. Under N concurrent
// committers the steady state is one fsync per *batch* of commits rather
// than one per commit, which is the dominant cost on the commit path.
//
// Record format (little endian):
//
//	u32 payload length
//	u32 CRC-32 (IEEE) of payload
//	payload: u8 type | u64 txn | u64 oid | u32 len | data
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// File is the file access the log needs; *os.File satisfies it. A
// fault-injection wrapper (internal/fault) can be interposed between
// the log and the real file via WithFileWrapper, which is how the
// crash-torture harness and experiment E17 make fsync failures and torn
// writes first-class, testable inputs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Option configures Open.
type Option func(*openOpts)

type openOpts struct {
	wrap func(File) File
}

// WithFileWrapper interposes wrap between the log and the opened file.
// The wrapper sees every write, fsync, read, and truncate the log
// issues.
func WithFileWrapper(wrap func(File) File) Option {
	return func(o *openOpts) { o.wrap = wrap }
}

// LSN is a log sequence number: the global byte offset of a record. LSNs
// are monotonic for the lifetime of a store, even across checkpoints —
// truncating a prefix of the log advances the base (the LSN of the first
// byte physically in the file) rather than resetting positions to zero.
// Replication relies on this: a replica's stream position names one byte
// of primary history forever, so one LSN's worth of lag is exactly one
// byte of unshipped log.
type LSN uint64

// RecType tags a log record.
type RecType uint8

const (
	// RecUpdate carries the redo (after) image of one object write.
	RecUpdate RecType = iota + 1
	// RecAllocate records creation of an object with its initial image.
	RecAllocate
	// RecFree records deletion of an object.
	RecFree
	// RecCommit marks txn's batch as durable; recovery replays only
	// transactions whose commit record is present.
	RecCommit
	// RecCheckpoint marks a point at which the store was flushed; records
	// before it are obsolete.
	RecCheckpoint
)

func (t RecType) String() string {
	switch t {
	case RecUpdate:
		return "update"
	case RecAllocate:
		return "allocate"
	case RecFree:
		return "free"
	case RecCommit:
		return "commit"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one log entry.
type Record struct {
	Type RecType
	Txn  uint64
	OID  uint64
	Data []byte
}

const headerSize = 8 // length + crc

// ErrCorrupt reports a CRC mismatch mid-log (not at the tail): a fully
// written record whose checksum fails while valid data follows it. That
// can only be corruption, never a torn tail, so Open and Scan refuse
// rather than silently truncating committed records.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrTruncatedLSN reports a read below the log's base: the requested
// position was discarded by a checkpoint truncation. A log-shipping
// consumer that hits this must fall back to a snapshot bootstrap.
var ErrTruncatedLSN = errors.New("wal: lsn below log base (truncated by checkpoint)")

var errClosed = errors.New("wal: log closed")

// SyncStats reports group-commit activity; the storage manager surfaces
// these through storage.Stats.
type SyncStats struct {
	// Fsyncs is the number of fsync calls issued on the log file.
	Fsyncs uint64
	// Commits is the number of AppendCommit batches made durable. With
	// group commit Commits/Fsyncs is the average coalescing factor.
	Commits uint64
	// BatchMin and BatchMax bound the number of commits covered by a
	// single fsync (0 until the first commit-carrying sync).
	BatchMin uint64
	BatchMax uint64
	// CommitWaitNs is the total time committers spent waiting for
	// durability (from append-complete to fsync-covered).
	CommitWaitNs uint64
	// Heals counts successful Heal calls: sticky sync errors cleared by
	// truncating the non-durable suffix and re-verifying the file.
	Heals uint64
}

// Log is an append-only, CRC-checked record log with group commit.
type Log struct {
	// mu serializes appends: the buffered writer, the logical size, the
	// base LSN, and the count of commits not yet covered by a sync.
	mu       sync.Mutex
	f        File
	w        *bufio.Writer
	size     int64
	base     int64  // global LSN of file offset 0 (advanced by truncation)
	unsynced uint64 // commits appended since the last sync snapshot
	path     string

	// durObs, when set, is poked (outside all log locks) every time the
	// durable boundary advances — the primary's replication hub uses it
	// to wake record shippers without polling.
	durObs atomic.Pointer[func()]

	// gc is the group-commit state: a condvar protocol where at most one
	// committer (the leader) runs flush+fsync while followers wait. It is
	// never held across I/O or while acquiring mu.
	gc      sync.Mutex
	gcCond  *sync.Cond
	durable int64 // bytes proven on stable storage
	syncing bool  // a leader is mid-fsync
	syncErr error // sticky: a failed fsync wedges the log
	stats   SyncStats
}

// Open opens (creating if needed) the log at path. It validates the
// existing contents and truncates any torn tail left by a crash; a
// corrupt record in the middle of the log (valid records follow it)
// fails with ErrCorrupt instead of silently discarding committed data.
func Open(path string, opts ...Option) (*Log, error) {
	var oo openOpts
	for _, opt := range opts {
		opt(&oo)
	}
	osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	var f File = osf
	if oo.wrap != nil {
		f = oo.wrap(f)
	}
	l := &Log{f: f, path: path}
	l.gcCond = sync.NewCond(&l.gc)
	valid, err := l.validPrefix()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.size = valid
	l.durable = valid
	l.w = bufio.NewWriterSize(f, 1<<16)
	return l, nil
}

// validPrefix scans the file and returns the length of the longest valid
// record prefix. The payload buffer is reused across records so
// recovering a large log does not churn the allocator.
//
// A record that fails its CRC is classified by position: if it extends
// to (or past) end-of-file it is a torn tail — the expected shape of a
// crash mid-append — and the prefix before it is kept; if bytes follow
// its claimed extent, the record was fully written and then damaged, so
// the scan fails with ErrCorrupt rather than silently dropping it and
// every committed record after it.
func (l *Log) validPrefix() (int64, error) {
	fileSize, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	var off int64
	var hdr [headerSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: keep prefix
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<30 {
			return off, nil // implausible length: torn tail
		}
		end := off + int64(headerSize) + int64(length)
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // record extends past EOF: torn tail
		}
		if crc32.ChecksumIEEE(payload) != crc {
			if end < fileSize {
				return 0, fmt.Errorf("%w at LSN %d (mid-log, %d bytes follow)", ErrCorrupt, off, fileSize-end)
			}
			return off, nil // last record damaged: torn tail
		}
		off = end
	}
}

// Append buffers a record and returns its LSN. The record is not durable
// until Flush (or a commit covering it) returns.
func (l *Log) Append(rec *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec)
}

func (l *Log) appendLocked(rec *Record) (LSN, error) {
	if l.w == nil {
		return 0, errClosed
	}
	payload := encode(rec)
	lsn := LSN(l.base + l.size)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(headerSize) + int64(len(payload))
	return lsn, nil
}

// AppendCommit buffers one transaction's records contiguously (a single
// append critical section) and returns the durability target: the log
// size the commit needs covered by fsync. It does not wait — pair with
// WaitDurable. The batch counts as one commit for group-commit stats.
func (l *Log) AppendCommit(recs []Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range recs {
		if _, err := l.appendLocked(&recs[i]); err != nil {
			return 0, err
		}
	}
	l.unsynced++
	return l.size, nil
}

// WaitDurable blocks until every byte up to target is on stable storage,
// issuing (or joining) a group-commit fsync as needed.
func (l *Log) WaitDurable(target int64) error {
	start := time.Now()
	err := l.waitDurable(target)
	l.gc.Lock()
	l.stats.CommitWaitNs += uint64(time.Since(start).Nanoseconds())
	l.gc.Unlock()
	return err
}

// waitDurable is the leader-follower protocol. A caller whose target is
// not yet durable either becomes the leader (no sync in flight: flush the
// buffer, snapshot the covered commit count, fsync, publish, broadcast)
// or waits for the current leader and re-checks — by which time the next
// sync covers its records too, because they were appended before it
// started waiting.
//
// The durable check precedes the error check on purpose: records already
// on stable storage are committed no matter what happened to a later
// sync, and the storage manager relies on this — an error from
// waitDurable means the target is not durable and (the error being
// sticky) never will be.
func (l *Log) waitDurable(target int64) error {
	l.gc.Lock()
	for {
		if l.durable >= target {
			l.gc.Unlock()
			return nil
		}
		if l.syncErr != nil {
			err := l.syncErr
			l.gc.Unlock()
			return err
		}
		if l.syncing {
			l.gcCond.Wait()
			continue
		}
		l.syncing = true
		l.gc.Unlock()

		// Give every runnable committer a chance to append before the
		// flush snapshot: a leader elected right after the previous sync
		// would otherwise race ahead of the committers that sync woke,
		// fsyncing a batch of one while they queue up for the next. One
		// yield costs ~ns when no one else is runnable and collects the
		// whole batch when the commit load is concurrent.
		runtime.Gosched()

		upTo, batch, err := l.doSync()

		l.gc.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = err
		} else {
			if upTo > l.durable {
				l.durable = upTo
			}
			l.stats.Fsyncs++
			l.stats.Commits += batch
			if batch > 0 {
				if l.stats.BatchMin == 0 || batch < l.stats.BatchMin {
					l.stats.BatchMin = batch
				}
				if batch > l.stats.BatchMax {
					l.stats.BatchMax = batch
				}
			}
		}
		l.gcCond.Broadcast()
		if err == nil {
			// Tell the durable observer outside both locks: it may call
			// back into DurableLSN/ReadDurable.
			l.gc.Unlock()
			l.pokeDurableObserver()
			l.gc.Lock()
		}
		// Loop: the top of the loop returns nil or the sticky error.
	}
}

// doSync flushes the buffered writer (under the append lock, so the
// covered size and commit count are a consistent snapshot) and fsyncs
// outside all locks — appends proceed concurrently with the fsync and
// are covered by the next one.
func (l *Log) doSync() (upTo int64, batch uint64, err error) {
	l.mu.Lock()
	if l.w == nil {
		l.mu.Unlock()
		return 0, 0, errClosed
	}
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		return 0, 0, fmt.Errorf("wal: flush: %w", err)
	}
	upTo = l.size
	batch = l.unsynced
	l.unsynced = 0
	l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("wal: sync: %w", err)
	}
	return upTo, batch, nil
}

// AppendBatch appends several records and waits until they are durable —
// the one-call commit path (one transaction per call).
func (l *Log) AppendBatch(recs []Record) error {
	target, err := l.AppendCommit(recs)
	if err != nil {
		return err
	}
	return l.WaitDurable(target)
}

// Flush forces buffered records to stable storage (fsync), joining any
// in-flight group commit.
func (l *Log) Flush() error {
	l.mu.Lock()
	if l.w == nil {
		l.mu.Unlock()
		return errClosed
	}
	target := l.size
	l.mu.Unlock()
	return l.waitDurable(target)
}

// SyncStats returns a snapshot of group-commit counters.
func (l *Log) SyncStats() SyncStats {
	l.gc.Lock()
	defer l.gc.Unlock()
	return l.stats
}

// Scan replays every record in LSN order. Buffered records are flushed
// first so the scan sees everything appended so far. Each record is
// passed with its global starting LSN (base-relative offsets are never
// exposed), so Scan ≡ ScanFrom(Base()).
func (l *Log) Scan(fn func(LSN, *Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scanFromLocked(LSN(l.base), fn)
}

// ScanFrom replays every record at or after the global LSN from, in LSN
// order. from must be a record boundary (the LSN of some record, or the
// end of the log); a position inside a record surfaces as ErrCorrupt.
// Requests below the log's base — positions discarded by a checkpoint —
// fail with ErrTruncatedLSN, which a log-shipping consumer must answer
// with a snapshot bootstrap.
func (l *Log) ScanFrom(from LSN, fn func(LSN, *Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scanFromLocked(from, fn)
}

func (l *Log) scanFromLocked(from LSN, fn func(LSN, *Record) error) error {
	if int64(from) < l.base {
		return fmt.Errorf("%w: requested %d, base %d", ErrTruncatedLSN, from, l.base)
	}
	start := int64(from) - l.base
	if start > l.size {
		return fmt.Errorf("wal: scan from %d beyond end %d", from, l.base+l.size)
	}
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush before scan: %w", err)
		}
	}
	if _, err := l.f.Seek(start, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	off := start
	hdr := make([]byte, headerSize)
	for off < l.size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return fmt.Errorf("wal: scan header at %d: %w", l.base+off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("wal: scan payload at %d: %w", l.base+off, err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return fmt.Errorf("%w at LSN %d", ErrCorrupt, l.base+off)
		}
		rec, err := decode(payload)
		if err != nil {
			return err
		}
		if err := fn(LSN(l.base+off), rec); err != nil {
			return err
		}
		off += int64(headerSize) + int64(length)
	}
	// Restore the write position.
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek to tail: %w", err)
	}
	return nil
}

// Truncate discards the whole log (after a checkpoint has made the store
// durable) and starts over, advancing the base by the discarded size so
// LSNs stay monotonic. The caller must ensure no commit is in flight
// (the storage manager drains committers first).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return errClosed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.base += l.size
	l.size = 0
	l.unsynced = 0
	l.w.Reset(l.f)
	l.gc.Lock()
	l.durable = 0
	l.gcCond.Broadcast()
	l.gc.Unlock()
	return nil
}

// TruncateBelow discards every record below the global LSN keep (which
// must be a record boundary at or below the durable limit) and keeps the
// suffix, so a checkpoint can reclaim log space without cutting off
// replicas that still need recent records. The retained suffix is
// rewritten to offset 0 and the base advances to keep. Like Truncate,
// the caller must ensure no commit is in flight, and must have
// checkpointed the store up to the log's end first: the rewrite is not
// atomic, and a crash mid-rewrite may lose retained records — safe for
// recovery (the checkpoint covers them) but forcing late replicas to
// snapshot-bootstrap.
func (l *Log) TruncateBelow(keep LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return errClosed
	}
	if int64(keep) <= l.base {
		return nil // nothing below keep remains
	}
	if int64(keep) > l.base+l.size {
		return fmt.Errorf("wal: truncate below %d beyond end %d", keep, l.base+l.size)
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	drop := int64(keep) - l.base
	suffix := make([]byte, l.size-drop)
	if _, err := l.f.Seek(drop, io.SeekStart); err != nil {
		return fmt.Errorf("wal: truncate below: seek: %w", err)
	}
	if _, err := io.ReadFull(l.f, suffix); err != nil {
		return fmt.Errorf("wal: truncate below: read suffix: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate below: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := l.f.Write(suffix); err != nil {
		return fmt.Errorf("wal: truncate below: rewrite suffix: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.base = int64(keep)
	l.size = int64(len(suffix))
	l.unsynced = 0
	l.w.Reset(l.f)
	l.gc.Lock()
	// The whole retained suffix was just written and fsynced.
	l.durable = l.size
	l.gcCond.Broadcast()
	l.gc.Unlock()
	return nil
}

// SetBase declares the global LSN of the log's first physical byte —
// the walBase a checkpoint persisted in the store header. The storage
// manager calls it once, right after Open and before any appends or
// scans; a fresh standalone log keeps base 0, where LSN == file offset.
func (l *Log) SetBase(base LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = int64(base)
}

// Base returns the global LSN of the oldest byte still in the log.
// Positions below Base are gone (checkpoint-truncated); a subscriber
// there needs a snapshot.
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(l.base)
}

// End returns the global LSN one past the last appended byte — the LSN
// the next record will receive. Buffered (not yet durable) records are
// included.
func (l *Log) End() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(l.base + l.size)
}

// DurableLSN returns the global LSN one past the last byte proven on
// stable storage. Replication ships only up to here: a record below
// DurableLSN can never be lost to a crash, so a replica can apply it
// without waiting.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	base := l.base
	l.mu.Unlock()
	l.gc.Lock()
	defer l.gc.Unlock()
	return LSN(base + l.durable)
}

// SetDurableObserver installs fn, called (outside all log locks) after
// every successful sync that may have advanced the durable boundary,
// and once more on Close. At most one observer is supported; nil
// removes it. The replication hub uses this to wake record shippers
// instead of polling DurableLSN.
func (l *Log) SetDurableObserver(fn func()) {
	if fn == nil {
		l.durObs.Store(nil)
		return
	}
	l.durObs.Store(&fn)
}

func (l *Log) pokeDurableObserver() {
	if fn := l.durObs.Load(); fn != nil {
		(*fn)()
	}
}

// ReadDurable decodes durable records starting at the global LSN from
// (a record boundary), stopping after roughly maxBytes of log have been
// consumed (always at least one record when one is durable). It returns
// the records, the LSN just past the last one returned (the position to
// resume from), and the durable end of the log at the time of the call
// (next − end is the caller's lag in bytes).
//
// The read uses a fresh private handle on the log's path rather than
// the Log's own file, so shipping never moves the append position and
// never blocks commits; it therefore bypasses any fault-injection
// wrapper installed via WithFileWrapper, which is fine — torture
// harnesses cut the replication link at the frame level instead. A
// checkpoint truncation racing with the read can surface as ErrCorrupt
// or a short read; callers retry from the same position and fall back
// to a snapshot on ErrTruncatedLSN.
func (l *Log) ReadDurable(from LSN, maxBytes int) (recs []Record, next LSN, end LSN, err error) {
	l.mu.Lock()
	base := l.base
	l.mu.Unlock()
	l.gc.Lock()
	durable := l.durable
	l.gc.Unlock()

	end = LSN(base + durable)
	if int64(from) < base {
		return nil, from, end, fmt.Errorf("%w: requested %d, base %d", ErrTruncatedLSN, from, base)
	}
	start := int64(from) - base
	if start >= durable {
		return nil, from, end, nil // caught up (or ahead of a concurrent truncate: harmless)
	}

	h, err := os.Open(l.path)
	if err != nil {
		return nil, from, end, fmt.Errorf("wal: read durable: %w", err)
	}
	defer h.Close()
	if _, err := h.Seek(start, io.SeekStart); err != nil {
		return nil, from, end, fmt.Errorf("wal: read durable: seek: %w", err)
	}
	r := bufio.NewReaderSize(h, 1<<16)
	off := start
	var hdr [headerSize]byte
	for off < durable && int(off-start) < maxBytes {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, from, end, fmt.Errorf("wal: read durable header at %d: %w", base+off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, from, end, fmt.Errorf("wal: read durable payload at %d: %w", base+off, err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, from, end, fmt.Errorf("%w at LSN %d", ErrCorrupt, base+off)
		}
		rec, err := decode(payload)
		if err != nil {
			return nil, from, end, err
		}
		recs = append(recs, *rec)
		off += int64(headerSize) + int64(length)
	}
	return recs, LSN(base + off), end, nil
}

// Heal attempts to clear a sticky sync error. Records past the durable
// boundary may be partially on disk and their committers were already
// told the commit failed, so the non-durable suffix (buffered and
// on-disk) is discarded, the file is truncated back to the durable
// prefix, and an fsync verifies the file is healthy again — only then
// is the sticky error cleared. If the verifying I/O fails too, the log
// stays wedged and Heal returns the failure.
//
// The caller must guarantee no committer is between AppendCommit and
// WaitDurable when Heal runs (the eos manager fences new commits and
// drains in-flight ones first): a waiter whose records are discarded
// here would otherwise wait for a durability target the log can no
// longer reach.
func (l *Log) Heal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return errClosed
	}
	l.gc.Lock()
	wedged := l.syncErr
	durable := l.durable
	syncing := l.syncing
	l.gc.Unlock()
	if wedged == nil {
		return nil // healthy (or already healed by a racing caller)
	}
	if syncing {
		return fmt.Errorf("wal: heal: sync in flight")
	}
	// Drop buffered-but-unflushed bytes (their commits already failed)
	// and the suspect on-disk suffix.
	l.w.Reset(io.Discard)
	if err := l.f.Truncate(durable); err != nil {
		return fmt.Errorf("wal: heal: truncate: %w", err)
	}
	if _, err := l.f.Seek(durable, io.SeekStart); err != nil {
		return fmt.Errorf("wal: heal: seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: heal: verify sync: %w", err)
	}
	l.size = durable
	l.unsynced = 0
	l.w.Reset(l.f)
	l.gc.Lock()
	l.syncErr = nil
	l.stats.Heals++
	l.gcCond.Broadcast()
	l.gc.Unlock()
	return nil
}

// Size returns the current log length in bytes (buffered included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes, fsyncs, and closes the log file. Committers still
// waiting for durability are released: their records are covered by the
// final sync.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.w == nil {
		l.mu.Unlock()
		return nil
	}
	flushErr := l.w.Flush()
	upTo := l.size
	l.w = nil
	l.mu.Unlock()

	var syncErr error
	if flushErr == nil {
		syncErr = l.f.Sync()
	}
	closeErr := l.f.Close()

	l.gc.Lock()
	if flushErr == nil && syncErr == nil {
		if upTo > l.durable {
			l.durable = upTo
		}
	} else if l.syncErr == nil {
		l.syncErr = errClosed
	}
	l.gcCond.Broadcast()
	l.gc.Unlock()
	l.pokeDurableObserver()

	if flushErr != nil {
		return fmt.Errorf("wal: flush: %w", flushErr)
	}
	if syncErr != nil {
		return fmt.Errorf("wal: sync: %w", syncErr)
	}
	return closeErr
}

// EncodedSize is the on-disk footprint of one record: header plus
// payload. The replication hub uses it to compute the LSN just past
// each shipped record, so replicas can resume at record granularity.
func EncodedSize(rec *Record) int { return headerSize + 1 + 8 + 8 + 4 + len(rec.Data) }

func encode(rec *Record) []byte {
	buf := make([]byte, 1+8+8+4+len(rec.Data))
	buf[0] = byte(rec.Type)
	binary.LittleEndian.PutUint64(buf[1:9], rec.Txn)
	binary.LittleEndian.PutUint64(buf[9:17], rec.OID)
	binary.LittleEndian.PutUint32(buf[17:21], uint32(len(rec.Data)))
	copy(buf[21:], rec.Data)
	return buf
}

func decode(payload []byte) (*Record, error) {
	if len(payload) < 21 {
		return nil, fmt.Errorf("wal: short payload (%d bytes)", len(payload))
	}
	rec := &Record{
		Type: RecType(payload[0]),
		Txn:  binary.LittleEndian.Uint64(payload[1:9]),
		OID:  binary.LittleEndian.Uint64(payload[9:17]),
	}
	n := binary.LittleEndian.Uint32(payload[17:21])
	if int(n) != len(payload)-21 {
		return nil, fmt.Errorf("wal: length mismatch: header %d, payload %d", n, len(payload)-21)
	}
	if n > 0 {
		rec.Data = append([]byte(nil), payload[21:]...)
	}
	return rec, nil
}
