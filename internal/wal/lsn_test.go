package wal

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

// fill appends n single-record commits and returns the LSN of each
// record in order.
func fill(t *testing.T, l *Log, n int) []LSN {
	t.Helper()
	var lsns []LSN
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&Record{Type: RecUpdate, Txn: uint64(i), OID: uint64(100 + i), Data: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	return lsns
}

// TestScanFromConformance is the satellite-mandated contract check:
// ScanFrom(Base()) must visit exactly the records Scan visits, with
// identical LSNs — on a fresh log (base 0) and after SetBase.
func TestScanFromConformance(t *testing.T) {
	for _, base := range []LSN{0, 4096} {
		l, _ := openTemp(t)
		l.SetBase(base)
		fill(t, l, 10)

		type seen struct {
			lsn LSN
			rec Record
		}
		var viaScan, viaFrom []seen
		if err := l.Scan(func(lsn LSN, r *Record) error {
			viaScan = append(viaScan, seen{lsn, *r})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := l.ScanFrom(l.Base(), func(lsn LSN, r *Record) error {
			viaFrom = append(viaFrom, seen{lsn, *r})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(viaScan) != 10 || len(viaFrom) != len(viaScan) {
			t.Fatalf("base %d: Scan saw %d records, ScanFrom(Base()) saw %d", base, len(viaScan), len(viaFrom))
		}
		for i := range viaScan {
			a, b := viaScan[i], viaFrom[i]
			if a.lsn != b.lsn || a.rec.Type != b.rec.Type || a.rec.Txn != b.rec.Txn ||
				a.rec.OID != b.rec.OID || !bytes.Equal(a.rec.Data, b.rec.Data) {
				t.Fatalf("base %d record %d: Scan %+v vs ScanFrom %+v", base, i, a, b)
			}
		}
		if viaScan[0].lsn != base {
			t.Errorf("base %d: first record at LSN %d", base, viaScan[0].lsn)
		}
	}
}

func TestScanFromMidLog(t *testing.T) {
	l, _ := openTemp(t)
	lsns := fill(t, l, 8)
	for start := range lsns {
		var got []uint64
		err := l.ScanFrom(lsns[start], func(lsn LSN, r *Record) error {
			if lsn != lsns[len(got)+start] {
				t.Fatalf("start %d: record %d at LSN %d, want %d", start, len(got), lsn, lsns[len(got)+start])
			}
			got = append(got, r.Txn)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(lsns)-start {
			t.Fatalf("ScanFrom(%d) visited %d records, want %d", lsns[start], len(got), len(lsns)-start)
		}
	}
	// Scanning from the exact end visits nothing.
	if err := l.ScanFrom(l.End(), func(LSN, *Record) error {
		t.Fatal("visited a record past the end")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Scanning past the end is an error, below base is ErrTruncatedLSN.
	if err := l.ScanFrom(l.End()+1, func(LSN, *Record) error { return nil }); err == nil {
		t.Error("ScanFrom past end succeeded")
	}
	l.SetBase(1000)
	if err := l.ScanFrom(999, func(LSN, *Record) error { return nil }); !errors.Is(err, ErrTruncatedLSN) {
		t.Errorf("ScanFrom below base = %v, want ErrTruncatedLSN", err)
	}
}

func TestTruncateAdvancesBase(t *testing.T) {
	l, _ := openTemp(t)
	fill(t, l, 5)
	end := l.End()
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Base() != end || l.End() != end {
		t.Fatalf("after truncate: base %d end %d, want both %d", l.Base(), l.End(), end)
	}
	lsn, err := l.Append(&Record{Type: RecUpdate, Txn: 9, OID: 9, Data: []byte("post")})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != end {
		t.Fatalf("first post-truncate record at LSN %d, want %d (LSNs must never restart)", lsn, end)
	}
	var got []LSN
	if err := l.Scan(func(l LSN, _ *Record) error { got = append(got, l); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != end {
		t.Fatalf("post-truncate scan: %v", got)
	}
}

func TestTruncateBelowKeepsSuffix(t *testing.T) {
	l, path := openTemp(t)
	lsns := fill(t, l, 6)
	keep := lsns[4]
	if err := l.TruncateBelow(keep); err != nil {
		t.Fatal(err)
	}
	if l.Base() != keep {
		t.Fatalf("base %d, want %d", l.Base(), keep)
	}
	var got []seenRec
	if err := l.Scan(func(lsn LSN, r *Record) error {
		got = append(got, seenRec{lsn, r.Txn})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].lsn != lsns[4] || got[0].txn != 4 || got[1].lsn != lsns[5] || got[1].txn != 5 {
		t.Fatalf("retained suffix: %+v", got)
	}
	// The suffix keeps its durability: a reader below base must get
	// ErrTruncatedLSN, a reader at base the surviving records.
	if _, _, _, err := l.ReadDurable(lsns[0], 1<<20); !errors.Is(err, ErrTruncatedLSN) {
		t.Errorf("ReadDurable below base = %v, want ErrTruncatedLSN", err)
	}
	recs, next, _, err := l.ReadDurable(keep, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || next != l.End() {
		t.Fatalf("ReadDurable after TruncateBelow: %d recs, next %d (end %d)", len(recs), next, l.End())
	}
	// Appends continue from the old end; reopen + SetBase restores the
	// same global positions.
	preEnd := l.End()
	if _, err := l.Append(&Record{Type: RecCommit, Txn: 42}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	l2.SetBase(keep)
	var last seenRec
	if err := l2.ScanFrom(keep, func(lsn LSN, r *Record) error {
		last = seenRec{lsn, r.Txn}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last.lsn != preEnd || last.txn != 42 {
		t.Fatalf("after reopen: last record %+v, want txn 42 at LSN %d", last, preEnd)
	}
}

type seenRec struct {
	lsn LSN
	txn uint64
}

func TestReadDurableBounds(t *testing.T) {
	l, _ := openTemp(t)
	// Buffered but not durable: nothing to read.
	if _, err := l.Append(&Record{Type: RecUpdate, Txn: 1, OID: 1, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	recs, next, end, err := l.ReadDurable(0, 1<<20)
	if err != nil || len(recs) != 0 || next != 0 || end != 0 {
		t.Fatalf("before flush: recs %d next %d end %d err %v", len(recs), next, end, err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	lsns := fill(t, l, 4)
	recs, next, end, err = l.ReadDurable(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || next != l.End() || end != l.End() {
		t.Fatalf("full read: recs %d next %d end %d (log end %d)", len(recs), next, end, l.End())
	}
	// maxBytes 1 still returns one whole record, and resuming from next
	// walks the rest one at a time.
	var walked []uint64
	pos := LSN(0)
	for pos < l.End() {
		recs, n, _, err := l.ReadDurable(pos, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("maxBytes=1 at %d returned %d records", pos, len(recs))
		}
		walked = append(walked, recs[0].Txn)
		pos = n
	}
	if len(walked) != 5 {
		t.Fatalf("walked %d records, want 5", len(walked))
	}
	// Caught-up reader sees no records and no error.
	recs, next, _, err = l.ReadDurable(l.End(), 1<<20)
	if err != nil || len(recs) != 0 || next != l.End() {
		t.Fatalf("caught up: recs %d next %d err %v", len(recs), next, err)
	}
	_ = lsns
}

func TestDurableObserver(t *testing.T) {
	l, _ := openTemp(t)
	var pokes atomic.Int64
	l.SetDurableObserver(func() { pokes.Add(1) })
	if err := l.AppendBatch([]Record{
		{Type: RecUpdate, Txn: 1, OID: 1, Data: []byte("x")},
		{Type: RecCommit, Txn: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if pokes.Load() == 0 {
		t.Fatal("observer not poked by a commit sync")
	}
	n := pokes.Load()
	l.SetDurableObserver(nil)
	if err := l.AppendBatch([]Record{{Type: RecCommit, Txn: 2}}); err != nil {
		t.Fatal(err)
	}
	if pokes.Load() != n {
		t.Fatal("observer poked after removal")
	}
}
