package wal_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ode/internal/fault"
	"ode/internal/wal"
)

// openFaulty opens a log whose file is wrapped by a fault schedule.
func openFaulty(t *testing.T, s *fault.Schedule) (*wal.Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fault.wal")
	l, err := wal.Open(path, wal.WithFileWrapper(func(f wal.File) wal.File {
		return fault.Wrap(f, s)
	}))
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

// TestStickySyncError checks the wedge contract: after one injected
// fsync failure, every subsequent WaitDurable and Flush returns the
// wedged error, and no committer is ever told its records are durable
// when they are not.
func TestStickySyncError(t *testing.T) {
	s := fault.NewSchedule().FailSyncAt(1)
	l, _ := openFaulty(t, s)
	defer l.Close()

	target, err := l.AppendCommit([]wal.Record{{Type: wal.RecCommit, Txn: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(target); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first WaitDurable = %v, want injected error", err)
	}
	// Sticky: later appends and flushes keep failing with the same
	// error even though the underlying file has healed (FailSyncAt
	// fires once).
	for i := 0; i < 3; i++ {
		target, err := l.AppendCommit([]wal.Record{{Type: wal.RecCommit, Txn: uint64(2 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(target); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("WaitDurable after wedge = %v, want sticky injected error", err)
		}
		if err := l.Flush(); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("Flush after wedge = %v, want sticky injected error", err)
		}
	}
}

// TestStickySyncErrorConcurrent wedges the log under many concurrent
// committers and asserts no committer observes false durability: every
// commit either succeeded (its records durable before the wedge) or got
// an error. Commits acknowledged as durable must survive reopen.
func TestStickySyncErrorConcurrent(t *testing.T) {
	s := fault.NewSchedule().FailSyncAt(3)
	l, path := openFaulty(t, s)

	const committers, per = 8, 25
	type acked struct{ txn uint64 }
	ackedCh := make(chan acked, committers*per)
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := uint64(w*per + i + 1)
				target, err := l.AppendCommit([]wal.Record{
					{Type: wal.RecUpdate, Txn: txn, OID: txn, Data: []byte(fmt.Sprintf("t%d", txn))},
					{Type: wal.RecCommit, Txn: txn},
				})
				if err != nil {
					return
				}
				if err := l.WaitDurable(target); err != nil {
					if !errors.Is(err, fault.ErrInjected) {
						t.Errorf("txn %d: unexpected error %v", txn, err)
					}
					continue
				}
				ackedCh <- acked{txn}
			}
		}(w)
	}
	wg.Wait()
	close(ackedCh)
	l.Close()

	// Reopen (the wrapper is gone: simulates a process restart after the
	// wedge) and collect the commit records that survived.
	l2, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	durable := map[uint64]bool{}
	if err := l2.Scan(func(_ wal.LSN, rec *wal.Record) error {
		if rec.Type == wal.RecCommit {
			durable[rec.Txn] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for a := range ackedCh {
		if !durable[a.txn] {
			t.Errorf("txn %d was acknowledged durable but its commit record is missing", a.txn)
		}
	}
}

// TestHealAfterSyncFailure exercises error-once-then-heal: a wedged log
// healed via Heal accepts new commits, and only the records durable
// before the wedge plus those committed after the heal survive reopen.
func TestHealAfterSyncFailure(t *testing.T) {
	s := fault.NewSchedule().FailSyncAt(2)
	l, path := openFaulty(t, s)

	commit := func(txn uint64) error {
		target, err := l.AppendCommit([]wal.Record{
			{Type: wal.RecUpdate, Txn: txn, OID: txn, Data: []byte("d")},
			{Type: wal.RecCommit, Txn: txn},
		})
		if err != nil {
			return err
		}
		return l.WaitDurable(target)
	}
	if err := commit(1); err != nil {
		t.Fatalf("commit 1: %v", err)
	}
	if err := commit(2); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit 2 = %v, want injected error", err)
	}
	if err := l.Heal(); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if got := l.SyncStats().Heals; got != 1 {
		t.Fatalf("Heals = %d, want 1", got)
	}
	if err := commit(3); err != nil {
		t.Fatalf("commit 3 after heal: %v", err)
	}
	l.Close()

	l2, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	durable := map[uint64]bool{}
	if err := l2.Scan(func(_ wal.LSN, rec *wal.Record) error {
		if rec.Type == wal.RecCommit {
			durable[rec.Txn] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !durable[1] || durable[2] || !durable[3] {
		t.Fatalf("durable txns = %v, want {1,3} (2 discarded by heal)", durable)
	}
}

// TestScanCorruptMiddleRecord corrupts a record in the middle of a log
// that has valid records after it: Scan must fail with ErrCorrupt, not
// treat the damage as a torn tail.
func TestScanCorruptMiddleRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []wal.LSN
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(&wal.Record{Type: wal.RecUpdate, Txn: 1, OID: uint64(i), Data: []byte("payload")})
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, lsn)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of the middle record, on disk, behind the
	// open log's back.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := int64(offsets[2]) + 8 + 3 // header + 3 bytes into the payload
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, mid); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, mid); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := l.Scan(func(wal.LSN, *wal.Record) error { return nil }); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("scan over corrupt middle record = %v, want ErrCorrupt", err)
	}
	l.Close()

	// Reopen sees the same corruption and must also refuse.
	if _, err := wal.Open(path); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over corrupt middle record = %v, want ErrCorrupt", err)
	}
}
