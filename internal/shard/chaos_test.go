package shard

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ode/internal/fault"
)

// These tests are the headline proof of the sharding subsystem: a
// composite `,`-sequence trigger whose first event fires on shard A (a
// Chain trigger action posting to a B-owned object) and whose second
// fires on shard B must complete EXACTLY once, with the forward link
// killed at every frame boundary — before any frame (dial failure),
// after the request frame (apply succeeds, ack lost, redelivery), and
// after the ack frame (corrupted or cut acks force a resend the
// watermark must absorb).

// faultProxy relays front connections to backend, routing the
// request-bound byte stream (what the forwarder sends) through plan —
// so an armed cut kills the link right after the Nth request frame was
// delivered to the shard: the batch applies, the ack is lost.
func faultProxy(t *testing.T, backend string, plan *fault.NetPlan) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			front, err := ln.Accept()
			if err != nil {
				return
			}
			back, err := net.Dial("tcp", backend)
			if err != nil {
				front.Close()
				continue
			}
			wrapped := plan.Wrap(front)
			go func() {
				io.Copy(back, wrapped) // requests, faulted
				back.Close()
				front.Close()
			}()
			go func() {
				io.Copy(front, back) // acks, clean
				front.Close()
				back.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// runCrossShardRounds drives the headline scenario on a 2-shard
// cluster: rounds cross-shard captures (Chain on shard 0 posts First to
// a shard-1 Doc), each waited to full settlement, then the completing
// Second events — and asserts every composite fired exactly once.
func runCrossShardRounds(t *testing.T, c *testCluster, rounds int) {
	t.Helper()
	targets := make([]uint64, rounds)
	sources := make([]uint64, rounds)
	for i := 0; i < rounds; i++ {
		targets[i] = mkDoc(t, c.nodes[1], &Doc{})
		activate(t, c.nodes[1], targets[i], "Pair")
		sources[i] = mkDoc(t, c.nodes[0], &Doc{Next: targets[i]})
		activate(t, c.nodes[0], sources[i], "Chain")
	}
	for i := 0; i < rounds; i++ {
		post(t, c.nodes[0], sources[i], "Kick")
		// Settlement = the capture was forwarded, applied on shard 1,
		// acked, and trimmed — however many cuts it took.
		waitFor(t, 10*time.Second, fmt.Sprintf("round %d outbox drain", i), func() bool {
			return len(c.nodes[0].db.SettledOutbox()) == 0
		})
	}
	for i := 0; i < rounds; i++ {
		post(t, c.nodes[1], targets[i], "Second")
	}
	for i := 0; i < rounds; i++ {
		if got := audits(t, c.nodes[1], targets[i]); got != 1 {
			t.Fatalf("round %d: composite fired %d times, want exactly 1", i, got)
		}
	}
}

// TestCrossShardExactlyOnceRequestCutSweep kills the forward link right
// after the k-th request frame, for every k a clean run (plus its
// forced resends) can produce. The batch lands, the ack dies with the
// link; the resend must be absorbed by the receiver's watermark.
func TestCrossShardExactlyOnceRequestCutSweep(t *testing.T) {
	const rounds = 3
	for k := uint64(1); k <= 5; k++ {
		t.Run(fmt.Sprintf("cut_after_request_%d", k), func(t *testing.T) {
			plan := fault.NewNetPlan(int64(k)).CutAfterFrames(k)
			var once sync.Once
			var proxyAddr string
			c := startCluster(t, 2, clusterConfig{
				noRouter: true,
				fwdAddrs: func(addrs []string) []string {
					once.Do(func() { proxyAddr = faultProxy(t, addrs[1], plan) })
					out := append([]string(nil), addrs...)
					out[1] = proxyAddr
					return out
				},
			})
			runCrossShardRounds(t, c, rounds)
			if k <= rounds {
				if cuts := plan.Counters().Cuts; cuts != 1 {
					t.Fatalf("armed cut at frame %d never fired (cuts=%d)", k, cuts)
				}
				if dups := c.nodes[1].db.Observability().Snapshot(); dups == nil {
					t.Fatal("no metrics")
				}
			}
		})
	}
}

// TestCrossShardExactlyOnceAckCutSweep faults the ack stream instead:
// the k-th ack frame is corrupted (the link then cut one frame later),
// so the forwarder cannot trust the ack and must resend a batch the
// receiver has already applied.
func TestCrossShardExactlyOnceAckCutSweep(t *testing.T) {
	const rounds = 3
	for k := uint64(1); k <= 4; k++ {
		t.Run(fmt.Sprintf("corrupt_ack_%d", k), func(t *testing.T) {
			plan := fault.NewNetPlan(int64(k)).CorruptFrame(k).CutAfterFrames(k + 1)
			c := startCluster(t, 2, clusterConfig{
				noRouter: true,
				dialFor: func(self int) func(string, time.Duration) (net.Conn, error) {
					if self != 0 {
						return nil
					}
					return plan.Dialer()
				},
			})
			runCrossShardRounds(t, c, rounds)
		})
	}
}

// TestCrossShardExactlyOnceDialFailures covers the boundary before any
// frame: the first dials fail outright (the link is down), then heal.
func TestCrossShardExactlyOnceDialFailures(t *testing.T) {
	var failures sync.Mutex
	remaining := 3
	c := startCluster(t, 2, clusterConfig{
		noRouter: true,
		dialFor: func(self int) func(string, time.Duration) (net.Conn, error) {
			if self != 0 {
				return nil
			}
			return func(addr string, timeout time.Duration) (net.Conn, error) {
				failures.Lock()
				fail := remaining > 0
				if fail {
					remaining--
				}
				failures.Unlock()
				if fail {
					return nil, errors.New("injected: link down")
				}
				return net.DialTimeout("tcp", addr, timeout)
			}
		},
	})
	runCrossShardRounds(t, c, 2)
	failures.Lock()
	defer failures.Unlock()
	if remaining != 0 {
		t.Fatalf("%d injected dial failures never consumed", remaining)
	}
}

// TestCrossShardBatchRedeliveryCounters pins the dedup bookkeeping: a
// cut-ack redelivery must show up in shard.ingest_dups on the receiver,
// while shard.ingested counts each event exactly once.
func TestCrossShardBatchRedeliveryCounters(t *testing.T) {
	plan := fault.NewNetPlan(7).CutAfterFrames(1)
	var once sync.Once
	var proxyAddr string
	c := startCluster(t, 2, clusterConfig{
		noRouter: true,
		fwdAddrs: func(addrs []string) []string {
			once.Do(func() { proxyAddr = faultProxy(t, addrs[1], plan) })
			out := append([]string(nil), addrs...)
			out[1] = proxyAddr
			return out
		},
	})
	runCrossShardRounds(t, c, 2)
	var ingested, dups uint64
	for _, mv := range c.nodes[1].db.Observability().Snapshot() {
		switch mv.Name {
		case "shard.ingested":
			ingested = mv.Value
		case "shard.ingest_dups":
			dups = mv.Value
		}
	}
	if ingested != 2 {
		t.Fatalf("shard.ingested = %d, want 2 (one per cross-shard event)", ingested)
	}
	if dups == 0 {
		t.Fatal("shard.ingest_dups = 0: the lost-ack redelivery was never observed")
	}
}
