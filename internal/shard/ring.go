// Package shard partitions one logical Ode database across N
// ode-server processes. The pieces:
//
//   - Ring: a seed-stable consistent-hash ring (virtual nodes) mapping
//     every user OID to its owning shard. Object allocation on each
//     shard is filtered through the same ring (storage.Manager's OID
//     filter), so an OID minted anywhere in the cluster is owned by
//     exactly the shard that minted it — routing never needs a
//     directory, just the ring.
//   - Router: a protocol-transparent front (JSON and ODE2 binary) that
//     routes each request to the owning shard over multiplexed binary
//     connections, fans out scans, and answers `shard.status`.
//   - Forwarder: the cross-shard event channel. A posting addressed to
//     a remote object is captured into the local shard's transactional
//     outbox (internal/core); the forwarder drains it in cause-ID
//     order to the owner's `shard.ingest` op, which applies it
//     idempotently behind a persisted per-origin watermark — the
//     exactly-once delivery that lets one composite trigger's FSM span
//     shards.
//
// docs/SHARDING.md is the narrative spec.
package shard

import (
	"fmt"
	"sort"

	"ode/internal/obj"
)

// DefaultVnodes is the virtual-node count per shard: enough that the
// load split stays within a few percent of uniform and that adding a
// shard moves close to the theoretical 1/(N+1) minimum of the keyspace.
const DefaultVnodes = 128

// Ring is a consistent-hash ring over the OID space. It is pure
// arithmetic — no maps, no per-process hash seeds — so the same
// (shards, vnodes) input yields the byte-identical assignment on every
// run, architecture, and process, which is what lets N shards and a
// router agree on ownership without coordination.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for n shards with v virtual nodes each
// (DefaultVnodes when v <= 0). n must be >= 1.
func NewRing(n, v int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", n)
	}
	if v <= 0 {
		v = DefaultVnodes
	}
	r := &Ring{shards: n, vnodes: v, points: make([]ringPoint, 0, n*v)}
	for s := 0; s < n; s++ {
		for i := 0; i < v; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, i), shard: s})
		}
	}
	// Ties (astronomically unlikely but possible) break by shard then
	// vnode order, deterministically.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// MustRing is NewRing for static configurations known to be valid.
func MustRing(n, v int) *Ring {
	r, err := NewRing(n, v)
	if err != nil {
		panic(err)
	}
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Vnodes returns the per-shard virtual-node count.
func (r *Ring) Vnodes() int { return r.vnodes }

// Owner maps an OID to its owning shard. OIDs below obj.FirstUserOID
// are per-shard system objects (catalog, trigger-index buckets): every
// shard has its own local copy, and they are never routed, so Owner
// reports the conventional answer 0 for them — callers that care use
// IsSystem first.
func (r *Ring) Owner(oid uint64) int {
	key := mix64(oid ^ oidSalt)
	// First ring point at or after the key, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// IsSystem reports whether oid is a reserved per-shard system object,
// outside the ring's jurisdiction.
func IsSystem(oid uint64) bool { return oid < uint64(obj.FirstUserOID) }

// OIDFilter returns the allocation predicate for one shard: true when
// this shard may mint oid. Reserved system OIDs are always mintable
// (each shard bootstraps its own catalog); user OIDs only when the
// ring says so. Install it with the storage manager's SetOIDFilter.
func (r *Ring) OIDFilter(self int) func(uint64) bool {
	return func(oid uint64) bool {
		return IsSystem(oid) || r.Owner(oid) == self
	}
}

// oidSalt decorrelates the OID keyspace from the ring-point keyspace
// (both go through the same finalizer).
const oidSalt = 0x0de0_0de0_0de0_0de0

// pointHash places virtual node i of shard s on the ring. Pure
// function of (s, i): the ring layout is part of the cluster's wire
// contract (docs/SHARDING.md) and must never drift between builds.
func pointHash(s, i int) uint64 {
	return mix64(mix64(uint64(s)+1)*0x9e3779b97f4a7c15 + uint64(i) + 1)
}

// mix64 is the splitmix64 finalizer — the same avalanche the
// anti-entropy sketches use; fast, stateless, and identical on every
// architecture.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
