package shard

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ode/internal/obs"
	"ode/internal/server"
)

// decodeResult JSON round-trips a response's Result into a typed value
// (the JSON client decodes Result as generic interface values).
func decodeResult[T any](t *testing.T, result any) T {
	t.Helper()
	raw, err := json.Marshal(result)
	if err != nil {
		t.Fatal(err)
	}
	var out T
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// routerClient dials the cluster's router with a JSON session.
func routerClient(t *testing.T, c *testCluster) *server.Client {
	t.Helper()
	cl, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// chainViaKick drives the canonical cross-shard cascade: docA on shard
// 0 carries the Chain trigger whose action posts First to docB on shard
// 1, so posting Kick on A makes the event hop through outbox → forward
// → ingest. Returns (docA, docB).
func chainViaKick(t *testing.T, c *testCluster) (uint64, uint64) {
	t.Helper()
	docB := mkDoc(t, c.nodes[1], &Doc{})
	docA := mkDoc(t, c.nodes[0], &Doc{Next: docB})
	activate(t, c.nodes[0], docA, "Chain")
	post(t, c.nodes[0], docA, "Kick")
	return docA, docB
}

// TestRouterMergedMetrics: the metrics op through the router returns a
// node-tagged fleet view — per-shard entries, the router's own
// registry, and a "fleet" aggregate whose values are the exact sum of
// the shard entries.
func TestRouterMergedMetrics(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	for i := range c.nodes {
		mkDoc(t, c.nodes[i], &Doc{}) // some committed work on each shard
	}
	cl := routerClient(t, c)
	resp, err := cl.Call(&server.Request{Op: "metrics"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("metrics via router: %s", resp.Error)
	}
	mvs := decodeResult[[]obs.MetricValue](t, resp.Result)

	labels := map[string]bool{}
	for _, mv := range mvs {
		labels[mv.Node] = true
	}
	for _, want := range []string{obs.NodeLabel(0xA0), obs.NodeLabel(0xA1), "router", "fleet"} {
		if !labels[want] {
			t.Fatalf("merged metrics missing node label %q (got %v)", want, labels)
		}
	}

	// The fleet aggregate must be the bucket-exact sum of the shard
	// entries, for every metric name it carries.
	shardVals := map[string]uint64{}
	shardCounts := map[string]uint64{}
	for _, mv := range mvs {
		if len(mv.Node) == 16 { // a shard's 16-hex provenance label
			shardVals[mv.Name] += mv.Value
			shardCounts[mv.Name] += mv.Count
		}
	}
	checked := 0
	for _, mv := range mvs {
		if mv.Node != "fleet" {
			continue
		}
		checked++
		if mv.Value != shardVals[mv.Name] || mv.Count != shardCounts[mv.Name] {
			t.Fatalf("fleet %s = value %d count %d, want shard sums %d/%d",
				mv.Name, mv.Value, mv.Count, shardVals[mv.Name], shardCounts[mv.Name])
		}
	}
	if checked == 0 {
		t.Fatal("no fleet-tagged aggregate entries in merged metrics")
	}

	// The router's own stage histograms ride along under the "router"
	// tag, and the fan-out we just did must have timed its merge.
	routerNames := map[string]uint64{}
	for _, mv := range mvs {
		if mv.Node == "router" {
			routerNames[mv.Name] = mv.Count
		}
	}
	for _, want := range []string{"router.route_ns", "router.forward_ns", "router.merge_ns"} {
		if _, ok := routerNames[want]; !ok {
			t.Fatalf("router-tagged metrics missing %s (got %v)", want, routerNames)
		}
	}
	if routerNames["router.forward_ns"] == 0 {
		t.Fatal("router.forward_ns count is zero after a fan-out")
	}
}

// TestTraceRateBroadcast: trace.rate through the router reaches every
// shard (the old trace op only ever re-sampled shard 0) and reports a
// per-shard ack; the shards' samplers actually change.
func TestTraceRateBroadcast(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	cl := routerClient(t, c)

	resp, err := cl.Call(&server.Request{Op: "trace.rate", Rate: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("trace.rate via router: %s", resp.Error)
	}
	acks := decodeResult[RateAcks](t, resp.Result)
	if len(acks.Acks) != 2 {
		t.Fatalf("got %d acks, want 2: %+v", len(acks.Acks), acks)
	}
	for i, ack := range acks.Acks {
		if ack.Shard != i || ack.Node != obs.NodeLabel(uint64(0xA0+i)) || ack.Rate != 3 {
			t.Fatalf("ack %d = %+v, want shard %d node %s rate 3", i, ack, i, obs.NodeLabel(uint64(0xA0+i)))
		}
	}
	for i, node := range c.nodes {
		if got := node.db.Tracer().Rate(); got != 3 {
			t.Fatalf("shard %d sampler rate %d after broadcast, want 3", i, got)
		}
	}

	// Rate -1 disables fleet-wide and acks rate 0.
	resp, err = cl.Call(&server.Request{Op: "trace.rate", Rate: -1})
	if err != nil {
		t.Fatal(err)
	}
	acks = decodeResult[RateAcks](t, resp.Result)
	for _, ack := range acks.Acks {
		if ack.Rate != 0 {
			t.Fatalf("after disable, ack = %+v, want rate 0", ack)
		}
	}
	for i, node := range c.nodes {
		if got := node.db.Tracer().Rate(); got != 0 {
			t.Fatalf("shard %d sampler rate %d after disable, want 0", i, got)
		}
	}
}

// TestRouterMergedTraceAndFlight: trace and flight through the router
// concatenate every shard's records, each tagged with its origin node,
// and the flight view includes the ingest_hop incident a cross-shard
// delivery records.
func TestRouterMergedTraceAndFlight(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	cl := routerClient(t, c)
	if resp, err := cl.Call(&server.Request{Op: "trace.rate", Rate: 1}); err != nil || !resp.OK {
		t.Fatalf("trace.rate: %v %+v", err, resp)
	}
	_, docB := chainViaKick(t, c)
	waitFor(t, 5*time.Second, "First to hop to shard 1", func() bool {
		for _, rec := range c.nodes[1].db.Tracer().Snapshot() {
			if rec.Event == "Doc::First" {
				return true
			}
		}
		return false
	})
	post(t, c.nodes[1], docB, "Second")

	resp, err := cl.Call(&server.Request{Op: "trace"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("trace via router: %s", resp.Error)
	}
	recs := decodeResult[[]obs.TraceRecord](t, resp.Result)
	byNode := map[string][]string{}
	for _, rec := range recs {
		byNode[rec.Node] = append(byNode[rec.Node], rec.Event)
	}
	if evs := byNode[obs.NodeLabel(0xA0)]; !contains(evs, "Doc::Kick") {
		t.Fatalf("shard 0 traces missing Kick: %v", evs)
	}
	if evs := byNode[obs.NodeLabel(0xA1)]; !contains(evs, "Doc::First") || !contains(evs, "Doc::Second") {
		t.Fatalf("shard 1 traces missing First/Second: %v", evs)
	}

	resp, err = cl.Call(&server.Request{Op: "flight"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("flight via router: %s", resp.Error)
	}
	incs := decodeResult[[]obs.IncidentRecord](t, resp.Result)
	hop := false
	for _, inc := range incs {
		if inc.Node == "" {
			t.Fatalf("untagged incident in merged flight view: %+v", inc)
		}
		if inc.Kind == obs.IncIngestHop && strings.Contains(inc.Detail, "applied First") {
			hop = true
		}
	}
	if !hop {
		t.Fatal("merged flight view has no ingest_hop incident for the First delivery")
	}
}

// TestShardStatusMerged: shard.status through the router wraps every
// shard's self-report — node label, outbox depth, ingest watermarks —
// in one fleet document.
func TestShardStatusMerged(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	chainViaKick(t, c)
	senderLabel := obs.NodeLabel(0xA0)
	waitFor(t, 5*time.Second, "shard 1 ingest watermark from shard 0", func() bool {
		return c.nodes[1].db.IngestWatermarks()[senderLabel] >= 1
	})

	cl := routerClient(t, c)
	resp, err := cl.Call(&server.Request{Op: "shard.status"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("shard.status via router: %s", resp.Error)
	}
	var st Status
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "router" || st.Self != -1 || st.Shards != 2 {
		t.Fatalf("router status header = %+v", st)
	}
	if len(st.Fleet) != 2 {
		t.Fatalf("fleet has %d entries, want 2", len(st.Fleet))
	}
	for i, fs := range st.Fleet {
		if fs.Self != i || fs.Node != obs.NodeLabel(uint64(0xA0+i)) {
			t.Fatalf("fleet[%d] = self %d node %q", i, fs.Self, fs.Node)
		}
	}
	if wm := st.Fleet[1].IngestWatermarks[senderLabel]; wm < 1 {
		t.Fatalf("fleet[1] ingest watermark for %s = %d, want >= 1", senderLabel, wm)
	}
}

// TestCrossShardChainContinuity: the parent_cause link survives the
// outbox → forward → ingest hop — the capture-minted hop cause carries
// the originating posting as its parent, the receiving shard's
// ingest_hop incident records both, and the remote firing's trace
// record chains onto the hop cause. Run under -race in CI.
func TestCrossShardChainContinuity(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{noRouter: true})
	for _, node := range c.nodes {
		node.db.Tracer().SetRate(1)
	}
	chainViaKick(t, c)
	waitFor(t, 5*time.Second, "First to hop to shard 1", func() bool {
		for _, rec := range c.nodes[1].db.Tracer().Snapshot() {
			if rec.Event == "Doc::First" {
				return true
			}
		}
		return false
	})

	var kickCause string
	for _, rec := range c.nodes[0].db.Tracer().Snapshot() {
		if rec.Event == "Doc::Kick" {
			kickCause = rec.Cause
		}
	}
	if kickCause == "" {
		t.Fatal("no trace for the Kick posting on shard 0")
	}

	// The outbox capture minted the hop cause with the Kick posting as
	// parent; the ingest recorded it.
	var hopCause string
	for _, inc := range obs.Flight().Snapshot() {
		if inc.Kind == obs.IncIngestHop && inc.ParentCause == kickCause {
			hopCause = inc.Cause
		}
	}
	if hopCause == "" {
		t.Fatalf("no ingest_hop incident with parent %s", kickCause)
	}

	// The remote posting's trace chains onto the hop cause.
	found := false
	for _, rec := range c.nodes[1].db.Tracer().Snapshot() {
		if rec.Event == "Doc::First" && rec.ParentCause == hopCause {
			found = true
		}
	}
	if !found {
		t.Fatalf("no First trace on shard 1 with parent_cause %s (hop link broken)", hopCause)
	}
}

// TestTraceChainCrossShardTree is the headline: a composite trigger
// whose pattern half-matches on one shard and completes on another,
// reconstructed as one parent-linked tree by trace.chain through the
// router. Kick on shard 0 fires Chain, whose action posts First to
// docB on shard 1 (hop); First half-matches docB's Pair; Second
// completes it. The chain rooted at the Kick posting must span both
// nodes: Kick → hop → ingested First → completion edge from the Second
// posting.
func TestTraceChainCrossShardTree(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	cl := routerClient(t, c)
	if resp, err := cl.Call(&server.Request{Op: "trace.rate", Rate: 1}); err != nil || !resp.OK {
		t.Fatalf("trace.rate: %v %+v", err, resp)
	}

	docB := mkDoc(t, c.nodes[1], &Doc{})
	activate(t, c.nodes[1], docB, "Pair")
	docA := mkDoc(t, c.nodes[0], &Doc{Next: docB})
	activate(t, c.nodes[0], docA, "Chain")

	// Drive the workload through the router, like a client would.
	sess, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.PostUserEvent(docA, "Kick"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "First to hop to shard 1", func() bool {
		for _, rec := range c.nodes[1].db.Tracer().Snapshot() {
			if rec.Event == "Doc::First" {
				return true
			}
		}
		return false
	})
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.PostUserEvent(docB, "Second"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "Pair to complete on shard 1", func() bool {
		return audits(t, c.nodes[1], docB) == 1
	})

	var kickCause string
	for _, rec := range c.nodes[0].db.Tracer().Snapshot() {
		if rec.Event == "Doc::Kick" {
			kickCause = rec.Cause
		}
	}
	if kickCause == "" {
		t.Fatal("no trace for the Kick posting on shard 0")
	}

	resp, err := cl.Call(&server.Request{Op: "trace.chain", Cause: kickCause})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("trace.chain via router: %s", resp.Error)
	}
	root := decodeResult[obs.ChainNode](t, resp.Result)
	if root.Cause != kickCause {
		t.Fatalf("chain root = %s, want %s", root.Cause, kickCause)
	}

	// Kick → hop: the capture-minted cause, carrying hop and/or
	// ingest_hop evidence.
	hop := childWithEvent(&root, func(ev obs.ChainEvent) bool {
		return ev.Kind == obs.ChainHop || ev.Kind == obs.ChainIncident
	})
	if hop == nil {
		t.Fatalf("chain root has no hop child: %+v", root.Children)
	}
	// hop → the ingested First posting on shard 1.
	first := childWithEvent(hop, func(ev obs.ChainEvent) bool {
		return ev.Kind == obs.ChainTrace && ev.Node == obs.NodeLabel(0xA1) &&
			ev.Trace != nil && ev.Trace.Event == "Doc::First"
	})
	if first == nil {
		t.Fatalf("hop node %s has no ingested First child: %+v", hop.Cause, hop.Children)
	}
	// First → the completing Second posting, linked by the completion
	// edge carried on its fire step.
	second := childWithEvent(first, func(ev obs.ChainEvent) bool {
		return ev.Kind == obs.ChainCompletion && ev.ParentCause == first.Cause
	})
	if second == nil {
		t.Fatalf("First node %s has no completion child: %+v", first.Cause, first.Children)
	}

	// The tree spans both shards.
	nodes := map[string]bool{}
	var walk func(n *obs.ChainNode)
	walk = func(n *obs.ChainNode) {
		for _, ev := range n.Events {
			nodes[ev.Node] = true
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(&root)
	if !nodes[obs.NodeLabel(0xA0)] || !nodes[obs.NodeLabel(0xA1)] {
		t.Fatalf("chain does not span both shards: %v", nodes)
	}
}

// childWithEvent returns the first child of n carrying an event
// matching pred.
func childWithEvent(n *obs.ChainNode, pred func(obs.ChainEvent) bool) *obs.ChainNode {
	for _, ch := range n.Children {
		for _, ev := range ch.Events {
			if pred(ev) {
				return ch
			}
		}
	}
	return nil
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
