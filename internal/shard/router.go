package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/obs"
	"ode/internal/server"
)

// Router terminates both client protocols (newline JSON and ODE2
// binary) in front of a shard fleet and forwards each op to the shard
// that owns it. The client-visible contract is the single-server one —
// same ops, same JSON payloads, same session model — with documented
// deviations (docs/SHARDING.md):
//
//   - A transaction that touches several shards commits per shard, in
//     shard order, not atomically: a crash mid-commit can land a prefix.
//   - metrics, trace, flight, trace.rate, trace.chain, and shard.status
//     fan out to every shard and answer with the merged, node-tagged
//     fleet view (metrics folds in the router's own registry and a
//     "fleet" aggregate; docs/OBSERVABILITY.md §"Fleet observability").
//   - Stream ops splice to StreamShard on the JSON protocol and fail
//     with ErrStreamOverBinary on binary framing, exactly as a single
//     server would.
//
// Backends are one Mux per shard: every front session maps to a lazily
// created MuxSession per shard it touches, so backend connections are
// shared while transaction state stays per-session.
type Router struct {
	ring  *Ring
	opts  RouterOptions
	muxes []*server.Mux
	reg   *obs.Registry
	rr    atomic.Uint64

	requests *obs.Counter
	fanouts  *obs.Counter
	rejects  *obs.Counter
	streams  *obs.Counter

	routeNs   *obs.Histogram
	forwardNs *obs.Histogram
	mergeNs   *obs.Histogram

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Addrs lists every shard's listen address, indexed by ring slot.
	Addrs []string
	// Client configures the backend muxes (timeouts, redial policy).
	Client server.ClientOptions
	// MaxRequestBytes caps one front request. Default
	// server.DefaultMaxRequestBytes.
	MaxRequestBytes int
	// StreamShard receives spliced JSON stream connections
	// (repl.subscribe, repl.recon) and repl.* admin ops. Default 0.
	StreamShard int
	// DialTimeout bounds the stream-splice backend dial. Default 5s.
	DialTimeout time.Duration
}

// ErrIngestViaRouter rejects a shard.ingest sent through the router:
// the op is shard-to-shard (each batch is bound to one origin/owner
// pair) and cannot be meaningfully split by a relay.
var ErrIngestViaRouter = errors.New("shard: shard.ingest must be sent to the owning shard directly, not through the router")

// ErrUnknownOp rejects an op the router has no routing rule for.
var ErrUnknownOp = errors.New("shard: unknown op")

// NewRouter dials the backend muxes and returns a router ready to
// Serve.
func NewRouter(ring *Ring, opts RouterOptions) (*Router, error) {
	if len(opts.Addrs) != ring.Shards() {
		return nil, fmt.Errorf("shard: %d addrs for %d shards", len(opts.Addrs), ring.Shards())
	}
	if opts.MaxRequestBytes <= 0 {
		opts.MaxRequestBytes = server.DefaultMaxRequestBytes
	}
	if opts.StreamShard < 0 || opts.StreamShard >= ring.Shards() {
		return nil, fmt.Errorf("shard: stream shard %d out of range", opts.StreamShard)
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	rt := &Router{
		ring:  ring,
		opts:  opts,
		reg:   obs.NewRegistry(),
		conns: make(map[net.Conn]struct{}),
	}
	rt.requests = rt.reg.Counter("shard.route_requests", "count", "client requests routed to a shard")
	rt.fanouts = rt.reg.Counter("shard.route_fanouts", "count", "requests fanned out to every shard")
	rt.rejects = rt.reg.Counter("shard.route_rejects", "count", "requests rejected at the router (typed error)")
	rt.streams = rt.reg.Counter("shard.route_streams", "count", "stream connections spliced to a shard")
	rt.routeNs = rt.reg.Histogram("router.route_ns", "ns", "time to classify a request and ready its backend (lazy transaction join included)")
	rt.forwardNs = rt.reg.Histogram("router.forward_ns", "ns", "backend round-trip time per synchronously forwarded call (pipelined binary batches are not individually timed)")
	rt.mergeNs = rt.reg.Histogram("router.merge_ns", "ns", "time to merge a fan-out's responses into the fleet view")
	rt.muxes = make([]*server.Mux, ring.Shards())
	for i, addr := range opts.Addrs {
		m, err := server.DialMux(addr, opts.Client)
		if err != nil {
			for _, prev := range rt.muxes[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("shard: dial shard %d at %s: %w", i, addr, err)
		}
		rt.muxes[i] = m
	}
	return rt, nil
}

// Observability exposes the router's metric registry (shard.route_*).
func (rt *Router) Observability() *obs.Registry { return rt.reg }

// Serve accepts front connections on ln until Close. It blocks.
func (rt *Router) Serve(ln net.Listener) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return errors.New("shard: router closed")
	}
	rt.ln = ln
	rt.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			rt.mu.Lock()
			closed := rt.closed
			rt.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		rt.mu.Lock()
		rt.conns[conn] = struct{}{}
		rt.mu.Unlock()
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			defer func() {
				rt.mu.Lock()
				delete(rt.conns, conn)
				rt.mu.Unlock()
				conn.Close()
			}()
			rt.serveConn(conn)
		}()
	}
}

// Close stops accepting, hangs up every front connection, and closes
// the backend muxes (which aborts any open backend transactions).
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	ln := rt.ln
	for c := range rt.conns {
		c.Close()
	}
	rt.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	rt.wg.Wait()
	for _, m := range rt.muxes {
		m.Close()
	}
	return nil
}

// --- routing decisions --------------------------------------------------------

// routeKind classifies where one request goes.
type routeKind int

const (
	routeLocal  routeKind = iota // answered at the router
	routeOne                     // exactly one shard: Route.Dest
	routeCreate                  // one shard, chosen round-robin at dispatch
	routeAll                     // fan-out to every shard, merge
	routeStream                  // stream op: splice (JSON) or typed error (binary)
	routeReject                  // typed error: Route.Err
)

// Route is one routing decision. Exactly one decision exists per
// request — routeOf is a pure function of (ring, request) — which is
// what FuzzRouteRequest leans on: no panic, no double-forward, dest
// always in range.
type Route struct {
	Kind routeKind
	Dest int
	Err  error
}

// routeOf classifies req. Pure: no router state, no side effects.
func routeOf(ring *Ring, req *server.Request) Route {
	switch req.Op {
	case "begin", "commit", "abort", "proto":
		return Route{Kind: routeLocal}
	case "create":
		return Route{Kind: routeCreate}
	case "get", "invoke", "post", "activate", "triggers", "clusteradd":
		return Route{Kind: routeOne, Dest: ring.Owner(req.Ref)}
	case "deactivate":
		// Trigger-state objects are minted by the anchor's shard, so
		// the trigger id's OID routes like any other ref.
		return Route{Kind: routeOne, Dest: ring.Owner(req.ID)}
	case "scan":
		return Route{Kind: routeAll}
	case "metrics", "trace", "flight", "trace.rate", "trace.chain", "shard.status":
		// The fleet observability plane: every shard answers, the router
		// merges (and contributes its own registry / flight ring).
		return Route{Kind: routeAll}
	case "shard.ingest":
		return Route{Kind: routeReject, Err: ErrIngestViaRouter}
	case "repl.subscribe", "repl.recon":
		return Route{Kind: routeStream}
	default:
		if strings.HasPrefix(req.Op, "repl.") {
			return Route{Kind: routeOne, Dest: -1} // resolved to StreamShard at dispatch
		}
		return Route{Kind: routeReject, Err: fmt.Errorf("%w %q", ErrUnknownOp, req.Op)}
	}
}

// --- per-session dispatch -----------------------------------------------------

// rsession is one front session's routing state: which backend
// MuxSessions it holds and which of them have an open transaction. Not
// safe for concurrent use; the binary front serializes per sid.
type rsession struct {
	rt       *Router
	proto    string // "json" | "binary"
	backends map[int]*server.MuxSession
	touched  map[int]struct{} // backends holding an open transaction
	inTx     bool
	snapshot bool
}

func (rt *Router) newSession(proto string) *rsession {
	return &rsession{
		rt:       rt,
		proto:    proto,
		backends: make(map[int]*server.MuxSession),
		touched:  make(map[int]struct{}),
	}
}

// close retires every backend session (aborting their transactions).
func (s *rsession) close() {
	for _, b := range s.backends {
		b.Close()
	}
	s.backends = nil
	s.touched = nil
}

// backend returns (lazily creating) the session's MuxSession on shard d.
func (s *rsession) backend(d int) *server.MuxSession {
	if b, ok := s.backends[d]; ok {
		return b
	}
	b := s.rt.muxes[d].Session()
	s.backends[d] = b
	return b
}

// enter readies shard d for an op: if the front session has an open
// transaction that d has not joined yet, a begin (with the session's
// snapshot flag) is sent first. This lazy join is what keeps a
// single-shard transaction as cheap through the router as against a
// single server.
func (s *rsession) enter(d int) (*server.MuxSession, *server.Response) {
	b := s.backend(d)
	if !s.inTx {
		return b, nil
	}
	if _, ok := s.touched[d]; ok {
		return b, nil
	}
	resp, err := b.Call(&server.Request{Op: "begin", Snapshot: s.snapshot})
	if err != nil {
		return nil, &server.Response{Error: err.Error()}
	}
	if !resp.OK {
		return nil, resp
	}
	s.touched[d] = struct{}{}
	return b, nil
}

// handle dispatches one non-stream request and returns its response.
func (s *rsession) handle(req *server.Request) *server.Response {
	rt := s.rt
	r := routeOf(rt.ring, req)
	switch r.Kind {
	case routeReject:
		rt.rejects.Add(1)
		return &server.Response{Error: r.Err.Error()}
	case routeStream:
		// Reached only on the binary front (the JSON loop splices
		// stream ops before dispatch) — same refusal as a server.
		rt.rejects.Add(1)
		return &server.Response{Error: server.ErrStreamOverBinary.Error()}
	case routeLocal:
		return s.handleLocal(req)
	case routeCreate:
		rt.requests.Add(1)
		d := int(rt.rr.Add(1)) % rt.ring.Shards()
		return s.forward(d, req)
	case routeOne:
		rt.requests.Add(1)
		d := r.Dest
		if d < 0 {
			d = rt.opts.StreamShard // repl.* admin ops
		}
		return s.forward(d, req)
	case routeAll:
		rt.fanouts.Add(1)
		return s.fanout(req)
	}
	rt.rejects.Add(1)
	return &server.Response{Error: fmt.Sprintf("shard: unroutable op %q", req.Op)}
}

// forward sends req to shard d inside the session's transaction.
func (s *rsession) forward(d int, req *server.Request) *server.Response {
	t0 := time.Now()
	b, failed := s.enter(d)
	s.rt.routeNs.Observe(time.Since(t0).Nanoseconds())
	if failed != nil {
		return failed
	}
	t1 := time.Now()
	resp, err := b.Call(req)
	s.rt.forwardNs.Observe(time.Since(t1).Nanoseconds())
	if err != nil {
		return &server.Response{Error: err.Error()}
	}
	if resp.Aborted {
		// The backend rolled the transaction back (tabort, deadlock).
		// Mirror the single-server contract: the whole front
		// transaction is over, so abort the other joined shards too.
		s.abortTouched(d)
	}
	return resp
}

// abortTouched aborts every joined backend except skip (already
// resolved) and closes the front transaction.
func (s *rsession) abortTouched(skip int) {
	for d := range s.touched {
		if d == skip {
			continue
		}
		s.backends[d].Call(&server.Request{Op: "abort"})
	}
	s.touched = make(map[int]struct{})
	s.inTx = false
	s.snapshot = false
}

// fanout sends req to every shard and merges the responses. scan joins
// the session's transaction; the observability ops are sessionless and
// merge node-tagged snapshots instead.
func (s *rsession) fanout(req *server.Request) *server.Response {
	if req.Op == "scan" {
		return s.fanoutScan(req)
	}
	return s.fanoutObs(req)
}

// fanoutScan merges scan responses: the union of Refs, sorted for
// determinism.
func (s *rsession) fanoutScan(req *server.Request) *server.Response {
	var refs []uint64
	for d := 0; d < s.rt.ring.Shards(); d++ {
		b, failed := s.enter(d)
		if failed != nil {
			return failed
		}
		t0 := time.Now()
		resp, err := b.Call(req)
		s.rt.forwardNs.Observe(time.Since(t0).Nanoseconds())
		if err != nil {
			return &server.Response{Error: err.Error()}
		}
		if !resp.OK {
			return resp
		}
		refs = append(refs, resp.Refs...)
	}
	t1 := time.Now()
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	s.rt.mergeNs.Observe(time.Since(t1).Nanoseconds())
	return &server.Response{OK: true, Refs: refs}
}

// fanoutObs broadcasts an observability op to every shard — outside any
// front transaction; the ops are sessionless on the shards too — and
// merges the node-tagged responses into the fleet view. A shard that
// cannot answer fails the whole request by name: a silently partial
// fleet view would read as "nothing happened on shard 3".
func (s *rsession) fanoutObs(req *server.Request) *server.Response {
	rt := s.rt
	breq := *req
	if req.Op == "trace.chain" {
		// Collect flat events from every shard; assembly happens once,
		// here, with the whole fleet's links in hand.
		breq.Raw = true
	}
	calls := make([]*server.Response, rt.ring.Shards())
	for d := 0; d < rt.ring.Shards(); d++ {
		t0 := time.Now()
		resp, err := s.backend(d).Call(&breq)
		rt.forwardNs.Observe(time.Since(t0).Nanoseconds())
		if err != nil {
			return &server.Response{Error: fmt.Sprintf("shard %d: %v", d, err)}
		}
		if !resp.OK {
			return &server.Response{Error: fmt.Sprintf("shard %d: %s", d, resp.Error)}
		}
		calls[d] = resp
	}
	t1 := time.Now()
	resp := s.mergeObs(req, calls)
	rt.mergeNs.Observe(time.Since(t1).Nanoseconds())
	return resp
}

// decodeResults re-marshals each fan-out response's Result into out[i]
// (a pointer to a slice or struct): the mux client decodes Result as
// untyped JSON, and a round trip is the protocol-faithful way back to
// the typed form.
func decodeResults[T any](calls []*server.Response) ([]T, error) {
	out := make([]T, len(calls))
	for i, resp := range calls {
		raw, err := json.Marshal(resp.Result)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %v", i, err)
		}
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("shard %d: %v", i, err)
		}
	}
	return out, nil
}

// mergeObs builds the fleet view for one observability fan-out.
func (s *rsession) mergeObs(req *server.Request, calls []*server.Response) *server.Response {
	rt := s.rt
	fail := func(err error) *server.Response {
		return &server.Response{Error: fmt.Sprintf("shard: merge %s: %v", req.Op, err)}
	}
	switch req.Op {
	case "metrics":
		// Per-shard entries (node-tagged by each shard), the router's own
		// registry tagged "router", and a bucket-exact aggregate tagged
		// "fleet", sorted by (name, node) for determinism.
		snaps, err := decodeResults[[]obs.MetricValue](calls)
		if err != nil {
			return fail(err)
		}
		merged := obs.TagMetrics("fleet", obs.MergeSnapshots(snaps...))
		merged = append(merged, obs.TagMetrics("router", rt.reg.Snapshot())...)
		for _, snap := range snaps {
			merged = append(merged, snap...)
		}
		sort.SliceStable(merged, func(i, j int) bool {
			if merged[i].Name != merged[j].Name {
				return merged[i].Name < merged[j].Name
			}
			return merged[i].Node < merged[j].Node
		})
		return &server.Response{OK: true, Result: merged}
	case "trace":
		recs, err := decodeResults[[]obs.TraceRecord](calls)
		if err != nil {
			return fail(err)
		}
		var merged []obs.TraceRecord
		for _, rs := range recs {
			merged = append(merged, rs...)
		}
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].StartUnixNs < merged[j].StartUnixNs })
		return &server.Response{OK: true, Result: merged}
	case "flight":
		recs, err := decodeResults[[]obs.IncidentRecord](calls)
		if err != nil {
			return fail(err)
		}
		merged := obs.TagIncidents("router", obs.Flight().Snapshot())
		for _, rs := range recs {
			merged = append(merged, rs...)
		}
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].TUnixNs < merged[j].TUnixNs })
		return &server.Response{OK: true, Result: merged}
	case "trace.rate":
		acks, err := decodeResults[server.TraceRateAck](calls)
		if err != nil {
			return fail(err)
		}
		out := make([]RateAck, len(acks))
		for d, ack := range acks {
			out[d] = RateAck{Shard: d, Node: ack.Node, Rate: ack.Rate}
		}
		return &server.Response{OK: true, Result: RateAcks{Acks: out}}
	case "trace.chain":
		raws, err := decodeResults[server.ChainEvents](calls)
		if err != nil {
			return fail(err)
		}
		var evs []obs.ChainEvent
		for _, r := range raws {
			evs = append(evs, r.Events...)
		}
		if req.Raw {
			return &server.Response{OK: true, Result: server.ChainEvents{Events: evs}}
		}
		if _, ok := obs.ParseCause(req.Cause); !ok {
			return &server.Response{Error: fmt.Sprintf("%v: got %q", server.ErrInvalidChainCause, req.Cause)}
		}
		return &server.Response{OK: true, Result: obs.AssembleChain(req.Cause, evs)}
	case "shard.status":
		fleet := make([]Status, len(calls))
		for d, resp := range calls {
			if err := json.Unmarshal(resp.Value, &fleet[d]); err != nil {
				return fail(fmt.Errorf("shard %d: %v", d, err))
			}
		}
		st := Status{
			Shards: rt.ring.Shards(),
			Vnodes: rt.ring.Vnodes(),
			Self:   -1,
			Node:   "router",
			Addrs:  append([]string(nil), rt.opts.Addrs...),
			Fleet:  fleet,
		}
		raw, err := json.Marshal(st)
		if err != nil {
			return fail(err)
		}
		return &server.Response{OK: true, Value: raw}
	}
	return fail(fmt.Errorf("unmergeable op"))
}

// RateAck is one shard's acknowledgment of a broadcast trace.rate.
type RateAck struct {
	Shard int    `json:"shard"`
	Node  string `json:"node"`
	Rate  uint64 `json:"rate"`
}

// RateAcks is the router's trace.rate result: every shard's ack, in
// ring order.
type RateAcks struct {
	Acks []RateAck `json:"acks"`
}

// handleLocal answers the ops the router owns: the transaction
// boundary, topology, and router introspection.
func (s *rsession) handleLocal(req *server.Request) *server.Response {
	switch req.Op {
	case "begin":
		if s.inTx {
			return &server.Response{Error: "transaction already open"}
		}
		s.inTx = true
		s.snapshot = req.Snapshot
		return &server.Response{OK: true}
	case "commit", "abort":
		if !s.inTx {
			return &server.Response{Error: "no open transaction (send begin first)"}
		}
		dests := make([]int, 0, len(s.touched))
		for d := range s.touched {
			dests = append(dests, d)
		}
		sort.Ints(dests) // deterministic commit order (docs/SHARDING.md)
		var errs []string
		aborted := false
		for _, d := range dests {
			resp, err := s.backends[d].Call(&server.Request{Op: req.Op})
			switch {
			case err != nil:
				errs = append(errs, fmt.Sprintf("shard %d: %v", d, err))
			case !resp.OK:
				errs = append(errs, fmt.Sprintf("shard %d: %s", d, resp.Error))
				aborted = aborted || resp.Aborted
			}
		}
		s.touched = make(map[int]struct{})
		s.inTx = false
		s.snapshot = false
		if len(errs) > 0 {
			return &server.Response{Error: strings.Join(errs, "; "), Aborted: aborted}
		}
		return &server.Response{OK: true}
	case "proto":
		st := server.ProtoStatus{
			Protocol:        s.proto,
			BinaryEnabled:   true,
			MaxRequestBytes: s.rt.opts.MaxRequestBytes,
		}
		return &server.Response{OK: true, Result: st}
	}
	return &server.Response{Error: fmt.Sprintf("shard: unroutable local op %q", req.Op)}
}

// --- front protocol loops -----------------------------------------------------

// serveConn sniffs the protocol (the same 4-byte upgrade a server
// does) and runs the matching loop.
func (rt *Router) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	magic, err := br.Peek(len(server.ProtoMagic))
	if err == nil && string(magic) == server.ProtoMagic {
		br.Discard(len(server.ProtoMagic))
		if _, err := conn.Write([]byte(server.ProtoMagic)); err != nil {
			return
		}
		rt.serveBinary(conn, br)
		return
	}
	rt.serveJSON(conn, br)
}

// serveJSON runs the newline-JSON loop: one session, one request at a
// time — the single-server session model.
func (rt *Router) serveJSON(conn net.Conn, br *bufio.Reader) {
	sess := rt.newSession("json")
	defer sess.close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(br)
	initial := 4096
	if initial > rt.opts.MaxRequestBytes {
		initial = rt.opts.MaxRequestBytes
	}
	sc.Buffer(make([]byte, initial), rt.opts.MaxRequestBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req server.Request
		if err := json.Unmarshal(line, &req); err != nil {
			enc.Encode(&server.Response{Error: "malformed request: " + err.Error()})
			return
		}
		if routeOf(rt.ring, &req).Kind == routeStream {
			// The stream handler owns the connection from here on; the
			// router's part is a dumb byte splice to the stream shard.
			rt.splice(conn, br, line)
			return
		}
		if err := enc.Encode(sess.handle(&req)); err != nil {
			return
		}
	}
}

// splice connects the front conn to the stream shard, replays the
// request line, and copies bytes both ways until either side hangs up.
func (rt *Router) splice(conn net.Conn, br *bufio.Reader, line []byte) {
	rt.streams.Add(1)
	back, err := net.DialTimeout("tcp", rt.opts.Addrs[rt.opts.StreamShard], rt.opts.DialTimeout)
	if err != nil {
		json.NewEncoder(conn).Encode(&server.Response{Error: fmt.Sprintf("shard: splice to shard %d: %v", rt.opts.StreamShard, err)})
		return
	}
	defer back.Close()
	if _, err := back.Write(append(line, '\n')); err != nil {
		json.NewEncoder(conn).Encode(&server.Response{Error: err.Error()})
		return
	}
	done := make(chan struct{}, 2)
	go func() { io.Copy(back, br); back.Close(); done <- struct{}{} }()
	go func() { io.Copy(conn, back); conn.Close(); done <- struct{}{} }()
	<-done
	<-done
}

// binForwardWindow caps how many forwarded calls one sid keeps in
// flight before settling them — a memory bound, not a pacing knob (the
// batch normally settles when the sid's queue runs dry).
const binForwardWindow = 64

// serveBinary runs the frame loop: one rsession per sid, requests
// within a sid in order, sids concurrent — the Mux server model.
func (rt *Router) serveBinary(conn net.Conn, br *bufio.Reader) {
	var wmu sync.Mutex
	bw := bufio.NewWriter(conn)
	reply := func(sid uint32, id uint64, resp *server.Response) {
		payload, err := json.Marshal(resp)
		if err != nil {
			payload, _ = json.Marshal(&server.Response{Error: err.Error()})
		}
		wmu.Lock()
		defer wmu.Unlock()
		if err := server.WriteFrame(bw, server.Frame{Type: server.FrameResponse, SID: sid, ID: id, Payload: payload}); err == nil {
			bw.Flush()
		}
	}

	type sidState struct {
		queue chan server.Frame
	}
	sids := make(map[uint32]*sidState)
	var wg sync.WaitGroup
	defer func() {
		for _, st := range sids {
			close(st.queue)
		}
		wg.Wait()
	}()

	// runSid forwards pipelined: consecutive single-shard ops already
	// queued by a pipelining client are issued to their backends via Go
	// and settled when the queue runs dry (or a transaction boundary
	// arrives), so the router adds no round trip of its own per op. The
	// backend's per-session FIFO keeps a batch ordered, and responses
	// are matched by frame ID, so replies settling as a batch are
	// indistinguishable from lockstep to the client.
	runSid := func(st *sidState) {
		defer wg.Done()
		sess := rt.newSession("binary")
		defer sess.close()
		type pend struct {
			sid  uint32
			id   uint64
			dest int
			call *server.Call
		}
		var pending []pend
		flush := func() {
			for _, p := range pending {
				resp, err := p.call.Wait()
				if err != nil {
					resp = &server.Response{Error: err.Error()}
				} else if resp.Aborted {
					// The backend rolled the transaction back; mirror
					// forward()'s contract. Ops already in flight behind
					// this one fail at their backends ("no open
					// transaction"), exactly as a pipelining client of a
					// single server would see.
					sess.abortTouched(p.dest)
				}
				reply(p.sid, p.id, resp)
			}
			pending = pending[:0]
		}
		handle := func(f server.Frame) {
			if f.Type == server.FrameClose {
				flush()
				sess.close()
				sess = rt.newSession("binary") // a reused sid starts fresh
				reply(f.SID, f.ID, &server.Response{OK: true})
				return
			}
			req := new(server.Request)
			if err := json.Unmarshal(f.Payload, req); err != nil {
				reply(f.SID, f.ID, &server.Response{Error: "malformed request: " + err.Error()})
				return
			}
			switch r := routeOf(rt.ring, req); r.Kind {
			case routeOne, routeCreate:
				d := r.Dest
				if r.Kind == routeCreate {
					d = int(rt.rr.Add(1)) % rt.ring.Shards()
				} else if d < 0 {
					d = rt.opts.StreamShard // repl.* admin ops
				}
				rt.requests.Add(1)
				t0 := time.Now()
				b, failed := sess.enter(d)
				rt.routeNs.Observe(time.Since(t0).Nanoseconds())
				if failed != nil {
					reply(f.SID, f.ID, failed)
					return
				}
				pending = append(pending, pend{sid: f.SID, id: f.ID, dest: d, call: b.Go(req)})
				if len(pending) >= binForwardWindow {
					flush()
				}
			default:
				// Transaction boundaries, fan-outs, local ops, and typed
				// refusals observe every forwarded response first.
				flush()
				reply(f.SID, f.ID, sess.handle(req))
			}
		}
		for {
			var f server.Frame
			var ok bool
			if len(pending) > 0 {
				select {
				case f, ok = <-st.queue:
				default:
					flush() // queue ran dry: settle the batch
					f, ok = <-st.queue
				}
			} else {
				f, ok = <-st.queue
			}
			if !ok {
				flush()
				return
			}
			handle(f)
		}
	}

	for {
		f, err := server.ReadFrame(br, rt.opts.MaxRequestBytes)
		if err != nil {
			return // disconnect or framing error: hang up, sids drain via defer
		}
		if f.Type != server.FrameRequest && f.Type != server.FrameClose {
			return // protocol violation
		}
		st, ok := sids[f.SID]
		if !ok {
			st = &sidState{queue: make(chan server.Frame, 256)}
			sids[f.SID] = st
			wg.Add(1)
			go runSid(st)
		}
		st.queue <- f
	}
}
