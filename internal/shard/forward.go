package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ode/internal/core"
	"ode/internal/obs"
	"ode/internal/server"
)

// Forwarder drains a shard's settled outbox to the owning shards.
//
// Delivery is at-least-once push: per destination, the forwarder sends
// the settled records in seq order as one shard.ingest batch, and trims
// only what the receiver's returned watermark covers. A cut link, a
// crashed receiver, or a lost ack all resolve the same way — the
// records stay in the outbox and the next round resends them; the
// receiver's per-origin watermark makes the redelivery a no-op. The
// pairing (at-least-once push, idempotent pull-side dedup) is what
// turns the paper's in-process "exactly once per FSM completion"
// guarantee (§5.1.3) into a cross-shard one.
type Forwarder struct {
	db   *core.Database
	ring *Ring

	self  int
	addrs []string
	dial  func(addr string, timeout time.Duration) (net.Conn, error)

	timeout time.Duration
	poll    time.Duration

	batches *obs.Counter
	events  *obs.Counter
	acked   *obs.Counter
	errs    *obs.Counter

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	done    chan struct{}
}

// ForwarderOptions configures NewForwarder.
type ForwarderOptions struct {
	// Self is this shard's index in the ring; Addrs[Self] is ignored
	// (the engine never captures a locally-owned posting).
	Self int
	// Addrs lists every shard's listen address, indexed by ring slot.
	Addrs []string
	// Dial, when set, replaces net.DialTimeout — the chaos tests insert
	// a fault.NetPlan here.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Timeout bounds each dial and each request/response round trip.
	// Default 5s.
	Timeout time.Duration
	// Poll is the fallback drain interval for records missed between
	// nudges (e.g. after a failed round). Default 50ms.
	Poll time.Duration
}

// NewForwarder wires a forwarder to db's outbox. Sharding must already
// be enabled on db. Call Run (usually in a goroutine) to start it.
func NewForwarder(db *core.Database, ring *Ring, opts ForwarderOptions) (*Forwarder, error) {
	if !db.ShardingEnabled() {
		return nil, fmt.Errorf("shard: forwarder requires EnableSharding first")
	}
	if opts.Self < 0 || opts.Self >= ring.Shards() {
		return nil, fmt.Errorf("shard: self %d out of range for %d shards", opts.Self, ring.Shards())
	}
	if len(opts.Addrs) != ring.Shards() {
		return nil, fmt.Errorf("shard: %d addrs for %d shards", len(opts.Addrs), ring.Shards())
	}
	f := &Forwarder{
		db:      db,
		ring:    ring,
		self:    opts.Self,
		addrs:   append([]string(nil), opts.Addrs...),
		dial:    opts.Dial,
		timeout: opts.Timeout,
		poll:    opts.Poll,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if f.dial == nil {
		f.dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if f.timeout <= 0 {
		f.timeout = 5 * time.Second
	}
	if f.poll <= 0 {
		f.poll = 50 * time.Millisecond
	}
	r := db.Observability()
	f.batches = r.EnsureCounter("shard.forward_batches", "count", "cross-shard ingest batches sent")
	f.events = r.EnsureCounter("shard.forward_events", "count", "remote event notifications sent (including resends)")
	f.acked = r.EnsureCounter("shard.forward_acked", "count", "remote event notifications acknowledged and trimmed")
	f.errs = r.EnsureCounter("shard.forward_errors", "count", "failed cross-shard forward rounds")
	return f, nil
}

// Run drains the outbox until Stop. It blocks; callers start it in a
// goroutine.
func (f *Forwarder) Run() {
	defer close(f.done)
	tick := time.NewTicker(f.poll)
	defer tick.Stop()
	for {
		f.drain()
		select {
		case <-f.stop:
			return
		case <-f.db.OutboxNudge():
		case <-tick.C:
		}
	}
}

// Stop halts the forwarder and waits for the current round to finish.
// Idempotent.
func (f *Forwarder) Stop() {
	f.mu.Lock()
	if !f.stopped {
		f.stopped = true
		close(f.stop)
	}
	f.mu.Unlock()
	<-f.done
}

// drain sends every settled record to its owner, one batch per
// destination shard. A failed destination is skipped this round — its
// records stay queued — without blocking the others.
func (f *Forwarder) drain() {
	out := f.db.SettledOutbox()
	if len(out) == 0 {
		return
	}
	byDest := make(map[int][]core.OutboxEntry)
	dests := make([]int, 0, 4)
	for _, e := range out {
		// d == f.self cannot happen through capture (the engine posts
		// local targets directly), but a ring change could strand such
		// a record; sendBatch then applies it through the same
		// idempotent local ingest path a remote shard would use.
		d := f.ring.Owner(e.Target)
		if _, ok := byDest[d]; !ok {
			dests = append(dests, d)
		}
		byDest[d] = append(byDest[d], e)
	}
	sort.Ints(dests) // deterministic order for tests and traces
	for _, d := range dests {
		if err := f.sendBatch(d, byDest[d]); err != nil {
			f.errs.Add(1)
		}
	}
}

// sendBatch delivers one destination's records and trims the acked
// prefix. Entries arrive seq-sorted from SettledOutbox.
func (f *Forwarder) sendBatch(dest int, entries []core.OutboxEntry) error {
	if dest == f.self {
		return f.ingestLocal(entries)
	}
	evs := make([]core.RemoteEvent, len(entries))
	for i, e := range entries {
		evs[i] = e.RemoteEvent
	}
	req := server.Request{Op: "shard.ingest", Origin: f.db.Causes().Node(), Events: evs}
	line, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	conn, err := f.dial(f.addrs[dest], f.timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(f.timeout))
	if _, err := conn.Write(append(line, '\n')); err != nil {
		return err
	}
	f.batches.Add(1)
	f.events.Add(uint64(len(evs)))
	respLine, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return err
	}
	var resp server.Response
	if err := json.Unmarshal(respLine, &resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("shard: ingest rejected by shard %d: %s", dest, resp.Error)
	}
	return f.trimThrough(entries, resp.Watermark)
}

// ingestLocal applies stranded self-owned records through the same
// idempotent ingest path a remote shard would use.
func (f *Forwarder) ingestLocal(entries []core.OutboxEntry) error {
	evs := make([]core.RemoteEvent, len(entries))
	for i, e := range entries {
		evs[i] = e.RemoteEvent
	}
	wm, err := f.db.IngestRemoteEvents(f.db.Causes().Node(), evs)
	if err != nil {
		return err
	}
	f.batches.Add(1)
	f.events.Add(uint64(len(evs)))
	return f.trimThrough(entries, wm)
}

// trimThrough trims every entry with seq <= wm.
func (f *Forwarder) trimThrough(entries []core.OutboxEntry, wm uint64) error {
	var seqs []uint64
	for _, e := range entries {
		if e.Seq <= wm {
			seqs = append(seqs, e.Seq)
		}
	}
	if len(seqs) == 0 {
		return nil
	}
	if err := f.db.TrimOutbox(seqs); err != nil {
		return err
	}
	f.acked.Add(uint64(len(seqs)))
	return nil
}

// Ops returns the sessionless server ops a shard registers so its peers
// and its router can reach it:
//
//   - shard.ingest: apply a batch of remote event notifications,
//     answering with the per-origin watermark (the ack).
//   - shard.status: report this shard's view of the topology.
//
// Register them in server.Options.ExtraOps.
func Ops(db *core.Database, ring *Ring, self int, addrs []string) map[string]func(*server.Request) *server.Response {
	return map[string]func(*server.Request) *server.Response{
		"shard.ingest": func(req *server.Request) *server.Response {
			if req.Origin == 0 {
				return &server.Response{Error: "shard.ingest: missing origin"}
			}
			wm, err := db.IngestRemoteEvents(req.Origin, req.Events)
			if err != nil {
				return &server.Response{Error: err.Error()}
			}
			return &server.Response{OK: true, Watermark: wm}
		},
		"shard.status": func(req *server.Request) *server.Response {
			st := Status{
				Shards:           ring.Shards(),
				Vnodes:           ring.Vnodes(),
				Self:             self,
				Node:             obs.NodeLabel(db.Causes().Node()),
				Addrs:            addrs,
				OutboxPending:    db.OutboxDepth(),
				IngestWatermarks: db.IngestWatermarks(),
			}
			raw, err := json.Marshal(st)
			if err != nil {
				return &server.Response{Error: err.Error()}
			}
			return &server.Response{OK: true, Value: raw}
		},
	}
}

// Status is the shard.status payload (Response.Value).
type Status struct {
	Shards int      `json:"shards"`
	Vnodes int      `json:"vnodes"`
	Self   int      `json:"self"`           // -1 when answered by the router
	Node   string   `json:"node,omitempty"` // the shard's 16-hex provenance label
	Addrs  []string `json:"addrs,omitempty"`
	// OutboxPending is the shard's not-yet-acked outbox depth
	// (committed queue + open-transaction captures).
	OutboxPending uint64 `json:"outbox_pending,omitempty"`
	// IngestWatermarks maps origin node labels to the highest ingested
	// seq this process has observed from them.
	IngestWatermarks map[string]uint64 `json:"ingest_watermarks,omitempty"`
	// Fleet, on the router's merged status, carries every shard's own
	// status in ring order.
	Fleet []Status `json:"fleet,omitempty"`
}
