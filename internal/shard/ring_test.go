package shard

import (
	"hash/fnv"
	"testing"
)

// ringGolden is the FNV-1a checksum of the 4-shard assignment of the
// fixed corpus below. The ring layout is part of the cluster's wire
// contract: every shard and router must compute the identical
// assignment, across runs, builds, and architectures. If this test
// fails, the ring function changed — that is a breaking cluster
// change, not a test to update casually (see docs/SHARDING.md,
// "Rebalancing").
const ringGolden = 0x5937daba0a1c0da0

// corpus returns the fixed OID corpus the stability and movement tests
// share: the first n user OIDs.
func corpus(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(FirstUserOIDForTest) + uint64(i)
	}
	return out
}

// FirstUserOIDForTest mirrors obj.FirstUserOID without importing it in
// every call site below.
const FirstUserOIDForTest = 18

func TestRingSeedStable(t *testing.T) {
	r := MustRing(4, DefaultVnodes)
	h := fnv.New64a()
	var buf [1]byte
	for _, oid := range corpus(10000) {
		buf[0] = byte(r.Owner(oid))
		h.Write(buf[:])
	}
	if got := h.Sum64(); got != ringGolden {
		t.Fatalf("ring assignment drifted: checksum %#x, want %#x", got, ringGolden)
	}
	// A second, independently built ring agrees point for point.
	r2 := MustRing(4, DefaultVnodes)
	for _, oid := range corpus(10000) {
		if r.Owner(oid) != r2.Owner(oid) {
			t.Fatalf("two rings with identical config disagree on oid %d", oid)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	oids := corpus(20000)
	for n := 1; n <= 7; n++ {
		old := MustRing(n, DefaultVnodes)
		grown := MustRing(n+1, DefaultVnodes)
		moved := 0
		for _, oid := range oids {
			a, b := old.Owner(oid), grown.Owner(oid)
			if a == b {
				continue
			}
			moved++
			// Consistent hashing: growing the ring only adds points, so a
			// key can only move TO the new shard, never between old ones.
			if b != n {
				t.Fatalf("n=%d: oid %d moved %d->%d, not to the new shard %d", n, oid, a, b, n)
			}
		}
		frac := float64(moved) / float64(len(oids))
		ideal := 1.0 / float64(n+1)
		if frac > 1.35*ideal {
			t.Errorf("n=%d->%d: moved %.4f of corpus, ideal %.4f (cap 1.35x)", n, n+1, frac, ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d->%d: nothing moved; the new shard owns no keys", n, n+1)
		}
	}
}

func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		r := MustRing(n, DefaultVnodes)
		counts := make([]int, n)
		oids := corpus(40000)
		for _, oid := range oids {
			counts[r.Owner(oid)]++
		}
		fair := float64(len(oids)) / float64(n)
		for s, c := range counts {
			if ratio := float64(c) / fair; ratio < 0.55 || ratio > 1.55 {
				t.Errorf("n=%d: shard %d holds %.2fx its fair share", n, s, ratio)
			}
		}
	}
}

func TestRingSystemOIDsLocal(t *testing.T) {
	r := MustRing(4, DefaultVnodes)
	for s := 0; s < 4; s++ {
		filter := r.OIDFilter(s)
		for oid := uint64(0); oid < FirstUserOIDForTest; oid++ {
			if !filter(oid) {
				t.Fatalf("shard %d must be allowed to mint system oid %d", s, oid)
			}
		}
	}
	// User OIDs: exactly one shard may mint each.
	for _, oid := range corpus(1000) {
		owners := 0
		for s := 0; s < 4; s++ {
			if r.OIDFilter(s)(oid) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("oid %d is mintable by %d shards, want exactly 1", oid, owners)
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("NewRing(0) must fail")
	}
}
