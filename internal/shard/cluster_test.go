package shard

import (
	"net"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/dali"
)

// storageOID converts a wire ref to a storage OID.
func storageOID(oid uint64) storage.OID { return storage.OID(oid) }

// Doc is the cross-shard test class: "Pair" is a `,`-sequence composite
// whose first half typically arrives from another shard, and "Chain" is
// a trigger whose action posts a user event to an arbitrary (possibly
// remote) object — the shard-A-fires-first half of the headline test.
type Doc struct {
	Audits int
	Next   uint64 // Chain posts First here when it fires
}

func docClass() *core.Class {
	return core.MustClass("Doc",
		core.Factory(func() any { return new(Doc) }),
		core.Method("Bump", func(ctx *core.Ctx, self any, args []any) (any, error) {
			self.(*Doc).Audits++
			return nil, nil
		}),
		core.Method("Poke", func(ctx *core.Ctx, self any, args []any) (any, error) {
			return nil, nil
		}),
		core.Events("First", "Second", "Kick", "after Poke"),
		core.Trigger("Pair", "First , Second",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "Bump")
				return err
			}),
		core.Trigger("Chain", "Kick",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				d := self.(*Doc)
				if d.Next == 0 {
					return nil
				}
				return ctx.PostUserEvent(core.RefFromOID(storageOID(d.Next)), "First")
			}),
	)
}

// testNode is one in-process shard: database, server, forwarder.
type testNode struct {
	db   *core.Database
	srv  *server.Server
	fwd  *Forwarder
	addr string
}

// testCluster is n shards plus (optionally) a router in front.
type testCluster struct {
	t      *testing.T
	ring   *Ring
	nodes  []*testNode
	addrs  []string
	router *Router
	raddr  string
}

// clusterConfig tweaks startCluster for the chaos tests.
type clusterConfig struct {
	// dialFor, when set, supplies each shard's forwarder dial (chaos
	// link interposition). nil entries mean the default dialer.
	dialFor func(self int) func(string, time.Duration) (net.Conn, error)
	// fwdAddrs, when set, overrides the forwarder's view of the shard
	// addresses (pointing a link at a fault proxy).
	fwdAddrs func(addrs []string) []string
	// noRouter skips the router (shard-direct tests).
	noRouter bool
}

// startCluster boots n shard servers (and a router unless told not to),
// all torn down via t.Cleanup.
func startCluster(t *testing.T, n int, cfg clusterConfig) *testCluster {
	t.Helper()
	ring := MustRing(n, 0)
	c := &testCluster{t: t, ring: ring, addrs: make([]string, n)}
	for i := 0; i < n; i++ {
		m := dali.New()
		m.SetOIDFilter(ring.OIDFilter(i))
		db, err := core.NewDatabase(m)
		if err != nil {
			t.Fatal(err)
		}
		db.Causes().SetNode(uint64(0xA0 + i))
		if err := db.Register(docClass()); err != nil {
			t.Fatal(err)
		}
		if err := db.EnableSharding(ring.OIDFilter(i)); err != nil {
			t.Fatal(err)
		}
		srv := server.NewWithOptions(db, server.Options{ExtraOps: Ops(db, ring, i, c.addrs)})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c.addrs[i] = addr
		node := &testNode{db: db, srv: srv, addr: addr}
		c.nodes = append(c.nodes, node)
		t.Cleanup(func() {
			if node.fwd != nil {
				node.fwd.Stop()
			}
			node.srv.Close()
			node.db.Close()
		})
	}
	for i, node := range c.nodes {
		fa := c.addrs
		if cfg.fwdAddrs != nil {
			fa = cfg.fwdAddrs(c.addrs)
		}
		opts := ForwarderOptions{Self: i, Addrs: fa, Poll: 5 * time.Millisecond, Timeout: 2 * time.Second}
		if cfg.dialFor != nil {
			opts.Dial = cfg.dialFor(i)
		}
		fwd, err := NewForwarder(node.db, ring, opts)
		if err != nil {
			t.Fatal(err)
		}
		node.fwd = fwd
		go fwd.Run()
	}
	if !cfg.noRouter {
		c.startRouter()
	}
	return c
}

// startRouter (re)starts a router in front of the cluster; the previous
// one, if any, is closed first (kill/restart tests).
func (c *testCluster) startRouter() {
	c.t.Helper()
	if c.router != nil {
		c.router.Close()
	}
	rt, err := NewRouter(c.ring, RouterOptions{Addrs: c.addrs})
	if err != nil {
		c.t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.t.Fatal(err)
	}
	c.router = rt
	c.raddr = ln.Addr().String()
	go rt.Serve(ln)
	c.t.Cleanup(func() { rt.Close() })
}

// mkDoc creates a Doc directly on one shard (its allocator guarantees
// the OID is shard-owned) and returns the ref.
func mkDoc(t *testing.T, node *testNode, d *Doc) uint64 {
	t.Helper()
	tx := node.db.Begin()
	ref, err := node.db.Create(tx, "Doc", d)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return uint64(ref.OID())
}

// activate turns a trigger on directly on the owning shard.
func activate(t *testing.T, node *testNode, oid uint64, trigger string) {
	t.Helper()
	tx := node.db.Begin()
	if _, err := node.db.Activate(tx, core.RefFromOID(storageOID(oid)), trigger); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// post posts a user event in its own transaction directly on a shard.
func post(t *testing.T, node *testNode, oid uint64, event string) {
	t.Helper()
	tx := node.db.Begin()
	if err := node.db.PostUserEvent(tx, core.RefFromOID(storageOID(oid)), event); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// audits reads Doc.Audits committed state on its owning shard.
func audits(t *testing.T, node *testNode, oid uint64) int {
	t.Helper()
	tx := node.db.Begin()
	defer tx.Abort()
	v, err := node.db.Get(tx, core.RefFromOID(storageOID(oid)))
	if err != nil {
		t.Fatal(err)
	}
	return v.(*Doc).Audits
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ownerNode returns the cluster node owning oid.
func (c *testCluster) ownerNode(oid uint64) *testNode { return c.nodes[c.ring.Owner(oid)] }

// otherThan returns some shard index != d.
func (c *testCluster) otherThan(d int) int { return (d + 1) % len(c.nodes) }
