package shard

import (
	"encoding/json"
	"testing"

	"ode/internal/server"
)

// FuzzRouteRequest mirrors the wire layer's FuzzFrameDecode one level
// up: an arbitrary request — any op string, any field soup a JSON or
// ODE2 payload can decode into — must produce exactly one routing
// decision. No panic, no out-of-range destination, and every
// non-forwardable request carries a typed error; a request is never
// double-forwarded because the decision space is a single Route value.
func FuzzRouteRequest(f *testing.F) {
	seeds := []string{
		`{"op":"begin"}`,
		`{"op":"begin","snapshot":true}`,
		`{"op":"create","class":"Doc","value":{"Audits":1}}`,
		`{"op":"get","ref":18}`,
		`{"op":"invoke","ref":18446744073709551615,"method":"Bump"}`,
		`{"op":"post","ref":0,"event":"First"}`,
		`{"op":"deactivate","id":20}`,
		`{"op":"scan","cluster":"alldocs"}`,
		`{"op":"commit"}`,
		`{"op":"proto"}`,
		`{"op":"metrics"}`,
		`{"op":"trace","rate":-1}`,
		`{"op":"flight"}`,
		`{"op":"shard.status"}`,
		`{"op":"shard.ingest","origin":1,"events":[{"seq":1,"node":1,"target":19,"event":"First"}]}`,
		`{"op":"repl.subscribe","lsn":7}`,
		`{"op":"repl.recon"}`,
		`{"op":"repl.verify","repair":true}`,
		`{"op":"repl.promote"}`,
		`{"op":""}`,
		`{"op":"nonsense","ref":99}`,
		`{"not":"a request"}`,
		`garbage`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), 4)
	}
	f.Fuzz(func(t *testing.T, data []byte, shards int) {
		shards = shards%8 + 1
		if shards < 1 {
			shards += 8
		}
		ring := MustRing(shards, 16)
		var req server.Request
		if err := json.Unmarshal(data, &req); err != nil {
			// Not a decodable request: both fronts reject it before
			// routing, so routeOf never sees it. Still exercise routeOf
			// with the zero request below.
			req = server.Request{}
		}
		r := routeOf(ring, &req)
		switch r.Kind {
		case routeLocal, routeCreate, routeAll, routeStream:
			if r.Err != nil {
				t.Fatalf("op %q: kind %d carries unexpected error %v", req.Op, r.Kind, r.Err)
			}
		case routeOne:
			// -1 is the repl.* placeholder resolved to StreamShard at
			// dispatch; anything else must be a real ring slot.
			if r.Dest != -1 && (r.Dest < 0 || r.Dest >= ring.Shards()) {
				t.Fatalf("op %q: destination %d out of range for %d shards", req.Op, r.Dest, ring.Shards())
			}
		case routeReject:
			if r.Err == nil {
				t.Fatalf("op %q: rejected without a typed error", req.Op)
			}
		default:
			t.Fatalf("op %q: unknown route kind %d", req.Op, r.Kind)
		}
		// Determinism: the same request routes the same way twice (a
		// request is forwarded at most once, to one place).
		r2 := routeOf(ring, &req)
		if r.Kind != r2.Kind || r.Dest != r2.Dest {
			t.Fatalf("op %q: unstable route (%v,%d) vs (%v,%d)", req.Op, r.Kind, r.Dest, r2.Kind, r2.Dest)
		}
	})
}
