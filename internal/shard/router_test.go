package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ode/internal/server"
)

// TestRouterBasicOpsJSON drives the single-server client API through
// the router over the JSON protocol: create round-robins across shards,
// ref ops land on the owner, scan merges the fleet.
func TestRouterBasicOpsJSON(t *testing.T) {
	c := startCluster(t, 3, clusterConfig{})
	cl, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Create a handful of objects through the router; ownership must
	// match the ring for every single one (the shard allocators enforce
	// it no matter which shard the router picked).
	var refs []uint64
	for i := 0; i < 9; i++ {
		if err := cl.Begin(); err != nil {
			t.Fatal(err)
		}
		ref, err := cl.Create("Doc", &Doc{})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.ClusterAdd("alldocs", ref); err != nil {
			t.Fatal(err)
		}
		if err := cl.Commit(); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	owners := map[int]int{}
	for _, ref := range refs {
		owners[c.ring.Owner(ref)]++
	}
	if len(owners) < 2 {
		t.Fatalf("9 creates landed on %d shard(s); round-robin is not spreading", len(owners))
	}

	// Invoke + get route by ref; each object's state lives where the
	// ring says.
	for _, ref := range refs {
		if err := cl.Begin(); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Invoke(ref, "Bump"); err != nil {
			t.Fatal(err)
		}
		if err := cl.Commit(); err != nil {
			t.Fatal(err)
		}
		if got := audits(t, c.ownerNode(ref), ref); got != 1 {
			t.Fatalf("ref %d: audits %d on owner, want 1", ref, got)
		}
	}

	// clusteradd routed each ref to its owner; scan must reassemble the
	// full membership across shards.
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ClusterScan("alldocs")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("scan through router returned %d refs, want %d", len(got), len(refs))
	}
}

// TestRouterCrossShardTransaction: one front transaction touching two
// shards — both sides commit, or an abort rolls both back.
func TestRouterCrossShardTransaction(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	a := mkDoc(t, c.nodes[0], &Doc{})
	b := mkDoc(t, c.nodes[1], &Doc{})
	cl, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invoke(a, "Bump"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invoke(b, "Bump"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatal(err)
	}
	if audits(t, c.nodes[0], a) != 1 || audits(t, c.nodes[1], b) != 1 {
		t.Fatal("cross-shard commit did not land on both shards")
	}

	// Abort: neither side may keep the increment.
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invoke(a, "Bump"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invoke(b, "Bump"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Abort(); err != nil {
		t.Fatal(err)
	}
	if audits(t, c.nodes[0], a) != 1 || audits(t, c.nodes[1], b) != 1 {
		t.Fatal("cross-shard abort leaked effects")
	}
}

// TestRouterBinaryProtocol: the same ops over ODE2 framing through the
// router, with multiplexed sessions completing independently.
func TestRouterBinaryProtocol(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	mux, err := server.DialMux(c.raddr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const sessions = 4
	done := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			s := mux.Session()
			defer s.Close()
			for j := 0; j < 5; j++ {
				if err := s.Begin(); err != nil {
					done <- err
					return
				}
				ref, err := s.Create("Doc", &Doc{})
				if err != nil {
					done <- err
					return
				}
				if _, err := s.Invoke(ref, "Bump"); err != nil {
					done <- err
					return
				}
				if err := s.Commit(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRouterShardStatus: the topology op is answered at the router with
// self -1, and at each shard with its own index.
func TestRouterShardStatus(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	ask := func(addr string) Status {
		cl, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		resp, err := cl.Call(&server.Request{Op: "shard.status"})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("shard.status: %s", resp.Error)
		}
		var st Status
		if err := json.Unmarshal(resp.Value, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := ask(c.raddr)
	if st.Self != -1 || st.Shards != 2 || len(st.Addrs) != 2 {
		t.Fatalf("router shard.status: %+v", st)
	}
	for i, node := range c.nodes {
		st := ask(node.addr)
		if st.Self != i || st.Shards != 2 {
			t.Fatalf("shard %d shard.status: %+v", i, st)
		}
	}
}

// TestRouterRejectsIngest: shard.ingest through the router is a typed
// error on both protocols, not a forward.
func TestRouterRejectsIngest(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	for _, binary := range []bool{false, true} {
		cl, err := server.DialOptions(c.raddr, server.ClientOptions{Binary: binary})
		if err != nil {
			t.Fatal(err)
		}
		_, err = cl.Call(&server.Request{Op: "shard.ingest", Origin: 1})
		if err == nil || !strings.Contains(err.Error(), ErrIngestViaRouter.Error()) {
			t.Fatalf("binary=%v: shard.ingest through router = %v, want ErrIngestViaRouter", binary, err)
		}
		cl.Close()
	}
}

// TestRouterStreamOps (satellite): stream ops through the router fail
// with the server's exact typed error on binary framing and pass
// through to a shard on JSON — on both protocols, the single-server
// contract survives the extra hop.
func TestRouterStreamOps(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})

	// Binary: typed refusal, connection stays usable.
	mux, err := server.DialMux(c.raddr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := mux.Session()
	_, err = s.Call(&server.Request{Op: "repl.subscribe"})
	if err == nil || !strings.Contains(err.Error(), server.ErrStreamOverBinary.Error()) {
		t.Fatalf("stream over binary through router = %v, want ErrStreamOverBinary", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatalf("connection unusable after stream refusal: %v", err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	mux.Close()

	// JSON: the request is spliced through to the stream shard. The
	// test shards run main-memory stores with no hub, so the shard
	// answers "unknown op" — the proof is that the *shard's* answer
	// (not a router rejection) comes back on the front connection.
	conn, err := net.Dial("tcp", c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "{\"op\":\"repl.subscribe\"}\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "unknown op") || strings.Contains(line, "router") {
		t.Fatalf("JSON stream op through router answered %q, want the shard's own response", strings.TrimSpace(line))
	}
}

// TestRouterTriggerOps: activate/deactivate route by ref and trigger
// id; a composite completes via postings through the router.
func TestRouterTriggerOps(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	cl, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	ref, err := cl.Create("Doc", &Doc{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := cl.Activate(ref, "Pair")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatal(err)
	}
	if own, idOwn := c.ring.Owner(ref), c.ring.Owner(id); own != idOwn {
		t.Fatalf("trigger state (oid %d, shard %d) not co-located with anchor (oid %d, shard %d)", id, idOwn, ref, own)
	}

	for _, ev := range []string{"First", "Second"} {
		if err := cl.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := cl.PostUserEvent(ref, ev); err != nil {
			t.Fatal(err)
		}
		if err := cl.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := audits(t, c.ownerNode(ref), ref); got != 1 {
		t.Fatalf("composite through router fired %d times, want 1", got)
	}

	// Deactivate routes by the trigger id's OID: arm a fresh trigger
	// (the fired one was consumed) and take it down through the router.
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	id2, err := cl.Activate(ref, "Chain")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Deactivate(id2); err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRouterProtoAndMetrics: proto reports the front protocol; metrics
// reports the router's own registry.
func TestRouterProtoAndMetrics(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	cl, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Call(&server.Request{Op: "proto"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("proto: %s", resp.Error)
	}
	raw, _ := json.Marshal(resp.Result)
	if !strings.Contains(string(raw), `"protocol":"json"`) {
		t.Fatalf("proto through router: %s", raw)
	}
	resp, err = cl.Call(&server.Request{Op: "metrics"})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = json.Marshal(resp.Result)
	if !strings.Contains(string(raw), "shard.route_requests") {
		t.Fatalf("metrics through router lacks shard.route_requests: %s", raw)
	}
}

// TestRouterKillRestart: the router is stateless above the shards — a
// mid-workload kill aborts open front transactions on the backends (no
// partial effects) and a fresh router serves the same fleet; the
// composite still completes exactly once.
func TestRouterKillRestart(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	target := mkDoc(t, c.nodes[1], &Doc{})
	activate(t, c.nodes[1], target, "Pair")

	cl, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := cl.PostUserEvent(target, "First"); err != nil {
		t.Fatal(err)
	}
	// Kill the router with the transaction open: the backend session
	// dies with it, so the posting must roll back.
	c.router.Close()
	cl.Close()

	c.startRouter()
	cl2, err := server.Dial(c.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for _, ev := range []string{"First", "Second"} {
		if err := cl2.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := cl2.PostUserEvent(target, ev); err != nil {
			t.Fatal(err)
		}
		if err := cl2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := audits(t, c.nodes[1], target); got != 1 {
		t.Fatalf("composite fired %d times across a router kill/restart, want exactly 1", got)
	}
	// The aborted pre-kill posting must not sit in any outbox either.
	for i, node := range c.nodes {
		if out := node.db.SettledOutbox(); len(out) != 0 {
			t.Fatalf("shard %d outbox not empty after router restart: %+v", i, out)
		}
	}
}

// TestRouterConcurrentTransactionsConflict: two front sessions racing
// on one object through the router surface the single-server outcome —
// one wins, one sees the lock conflict/deadlock error, nothing is lost.
func TestRouterConcurrentTransactionsConflict(t *testing.T) {
	c := startCluster(t, 2, clusterConfig{})
	ref := mkDoc(t, c.nodes[0], &Doc{})
	const workers = 4
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			cl, err := server.DialOptions(c.raddr, server.ClientOptions{RequestTimeout: 10 * time.Second})
			if err != nil {
				done <- 0
				return
			}
			defer cl.Close()
			bumps := 0
			for i := 0; i < 5; i++ {
				if err := cl.Begin(); err != nil {
					continue
				}
				if _, err := cl.Invoke(ref, "Bump"); err != nil {
					cl.Abort()
					continue
				}
				if err := cl.Commit(); err == nil {
					bumps++
				}
			}
			done <- bumps
		}()
	}
	want := 0
	for w := 0; w < workers; w++ {
		want += <-done
	}
	if got := audits(t, c.nodes[0], ref); got != want {
		t.Fatalf("audits %d, want %d (one per successful commit)", got, want)
	}
}
