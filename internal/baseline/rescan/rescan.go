// Package rescan is the naive composite-event detector used as the
// baseline for design goal 2 ("detection of composite events should be
// efficient"). Instead of compiling the event expression to a finite
// state machine, it keeps the full event history and re-matches the
// expression against every suffix on each posting — O(history) or worse
// per event, versus the FSM's O(1) transitions. Experiment E5 measures
// the gap as stream length and expression complexity grow.
//
// Semantics note: masks are evaluated at scan time against current state;
// the FSM evaluates them at the moment the guarded sub-event completes.
// The engines agree on mask-free expressions (verified by property test)
// and on mask predicates that are stable over a transaction.
package rescan

import (
	"ode/internal/event"
	"ode/internal/eventexpr"
)

// MaskEval resolves a mask predicate by name during a scan.
type MaskEval func(name string) (bool, error)

// Detector re-matches an expression on every posting.
type Detector struct {
	expr     eventexpr.Expr
	anchored bool
	history  []event.ID
	eval     MaskEval
	resolve  func(*eventexpr.Name) (event.ID, error)
	alphabet map[event.ID]bool
}

// New builds a detector. resolve maps expression event names to IDs (the
// same resolver the FSM compiler uses); alphabet is the declared event
// set — postings outside it are ignored, matching §5.4.3's ignore rule.
func New(p *eventexpr.Parsed, resolve func(*eventexpr.Name) (event.ID, error),
	alphabet []event.ID, eval MaskEval) (*Detector, error) {
	if eval == nil {
		eval = func(string) (bool, error) { return true, nil }
	}
	d := &Detector{
		expr:     eventexpr.Desugar(p.Expr),
		anchored: p.Anchored,
		eval:     eval,
		resolve:  resolve,
		alphabet: make(map[event.ID]bool, len(alphabet)),
	}
	for _, id := range alphabet {
		d.alphabet[id] = true
	}
	// Resolve eagerly so bad references fail at construction.
	for _, n := range eventexpr.Names(p.Expr) {
		id, err := resolve(n)
		if err != nil {
			return nil, err
		}
		d.alphabet[id] = true
	}
	return d, nil
}

// Post appends one event and reports whether any match ends exactly at
// it. Events outside the alphabet are ignored.
func (d *Detector) Post(ev event.ID) (bool, error) {
	if !d.alphabet[ev] {
		return false, nil
	}
	d.history = append(d.history, ev)
	n := len(d.history)
	if d.anchored {
		ends, err := d.matchPrefix(d.expr, d.history)
		if err != nil {
			return false, err
		}
		return contains(ends, n), nil
	}
	// Unanchored: a matching subsequence may start anywhere (§5.1.1's
	// implicit *any prefix); it must end at the newest event.
	for start := 0; start < n; start++ {
		ends, err := d.matchPrefix(d.expr, d.history[start:])
		if err != nil {
			return false, err
		}
		if contains(ends, n-start) {
			return true, nil
		}
	}
	return false, nil
}

// Reset clears the history (a fresh activation).
func (d *Detector) Reset() { d.history = nil }

// HistoryLen reports the retained history length — the memory cost the
// FSM approach avoids entirely.
func (d *Detector) HistoryLen() int { return len(d.history) }

func contains(ks []int, k int) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

// matchPrefix returns every k such that e matches s[:k] exactly.
func (d *Detector) matchPrefix(e eventexpr.Expr, s []event.ID) ([]int, error) {
	switch e := e.(type) {
	case *eventexpr.Name:
		id, err := d.resolve(e)
		if err != nil {
			return nil, err
		}
		if len(s) > 0 && s[0] == id {
			return []int{1}, nil
		}
		return nil, nil
	case *eventexpr.Any:
		if len(s) > 0 {
			return []int{1}, nil
		}
		return nil, nil
	case *eventexpr.Seq:
		lefts, err := d.matchPrefix(e.Left, s)
		if err != nil {
			return nil, err
		}
		var out []int
		for _, k := range lefts {
			rights, err := d.matchPrefix(e.Right, s[k:])
			if err != nil {
				return nil, err
			}
			for _, k2 := range rights {
				out = addUnique(out, k+k2)
			}
		}
		return out, nil
	case *eventexpr.Or:
		a, err := d.matchPrefix(e.Left, s)
		if err != nil {
			return nil, err
		}
		b, err := d.matchPrefix(e.Right, s)
		if err != nil {
			return nil, err
		}
		for _, k := range b {
			a = addUnique(a, k)
		}
		return a, nil
	case *eventexpr.Star:
		out := []int{0}
		frontier := []int{0}
		for len(frontier) > 0 {
			var next []int
			for _, f := range frontier {
				ks, err := d.matchPrefix(e.Sub, s[f:])
				if err != nil {
					return nil, err
				}
				for _, k := range ks {
					if k == 0 {
						continue // ignore empty iterations
					}
					if !contains(out, f+k) {
						out = append(out, f+k)
						next = append(next, f+k)
					}
				}
			}
			frontier = next
		}
		return out, nil
	case *eventexpr.Mask:
		ks, err := d.matchPrefix(e.Sub, s)
		if err != nil {
			return nil, err
		}
		if len(ks) == 0 {
			return nil, nil
		}
		ok, err := d.eval(e.Name)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return ks, nil
	default:
		// Relative was desugared away.
		return nil, nil
	}
}

func addUnique(xs []int, k int) []int {
	if contains(xs, k) {
		return xs
	}
	return append(xs, k)
}
