package rescan

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ode/internal/event"
	"ode/internal/eventexpr"
	"ode/internal/fsm"
)

type env struct {
	reg   *event.Registry
	ids   map[string]event.ID
	alpha []event.ID
}

func newEnv(names ...string) *env {
	e := &env{reg: event.NewRegistry(), ids: map[string]event.ID{}}
	for _, n := range names {
		id := e.reg.Register("T", event.User(n))
		e.ids[n] = id
		e.alpha = append(e.alpha, id)
	}
	return e
}

func (e *env) resolve(n *eventexpr.Name) (event.ID, error) {
	id, ok := e.ids[n.String()]
	if !ok {
		return event.None, fmt.Errorf("event %q not declared", n.String())
	}
	return id, nil
}

func (e *env) detector(t *testing.T, src string) *Detector {
	t.Helper()
	d, err := New(eventexpr.MustParse(src), e.resolve, e.alpha, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func (e *env) run(t *testing.T, d *Detector, events ...string) []int {
	t.Helper()
	var fired []int
	for i, name := range events {
		ok, err := d.Post(e.ids[name])
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			fired = append(fired, i)
		}
	}
	return fired
}

func TestSequenceDetection(t *testing.T) {
	e := newEnv("A", "B", "C")
	d := e.detector(t, "A, B")
	fired := e.run(t, d, "C", "A", "B", "B", "A", "B")
	if fmt.Sprint(fired) != "[2 5]" {
		t.Fatalf("fired %v, want [2 5]", fired)
	}
}

func TestAnchored(t *testing.T) {
	e := newEnv("A", "B")
	d := e.detector(t, "^A, B")
	if fired := e.run(t, d, "A", "B"); fmt.Sprint(fired) != "[1]" {
		t.Fatalf("fired %v", fired)
	}
	d.Reset()
	if fired := e.run(t, d, "B", "A", "B"); len(fired) != 0 {
		t.Fatalf("anchored leading noise fired %v", fired)
	}
}

func TestUnknownEventsIgnored(t *testing.T) {
	e := newEnv("A", "B")
	foreign := e.reg.Register("Other", event.User("X"))
	d := e.detector(t, "A, B")
	if ok, _ := d.Post(e.ids["A"]); ok {
		t.Fatal("premature fire")
	}
	if ok, _ := d.Post(foreign); ok {
		t.Fatal("foreign event fired")
	}
	if ok, _ := d.Post(e.ids["B"]); !ok {
		t.Fatal("adjacency broken by ignored event")
	}
	if d.HistoryLen() != 2 {
		t.Fatalf("history retained ignored event: %d", d.HistoryLen())
	}
}

func TestMaskGate(t *testing.T) {
	e := newEnv("A")
	val := false
	d, err := New(eventexpr.MustParse("A & m"), e.resolve, e.alpha,
		func(string) (bool, error) { return val, nil })
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Post(e.ids["A"]); ok {
		t.Fatal("fired with mask false")
	}
	val = true
	if ok, _ := d.Post(e.ids["A"]); !ok {
		t.Fatal("did not fire with mask true")
	}
}

func TestRelativeDesugared(t *testing.T) {
	e := newEnv("A", "B", "C")
	d := e.detector(t, "relative(A, B)")
	fired := e.run(t, d, "A", "C", "C", "B")
	if fmt.Sprint(fired) != "[3]" {
		t.Fatalf("fired %v", fired)
	}
}

func TestHistoryGrowth(t *testing.T) {
	e := newEnv("A", "B")
	d := e.detector(t, "A, B")
	for i := 0; i < 100; i++ {
		d.Post(e.ids["A"])
	}
	if d.HistoryLen() != 100 {
		t.Fatalf("history = %d", d.HistoryLen())
	}
	d.Reset()
	if d.HistoryLen() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestBadExpressionRejected(t *testing.T) {
	e := newEnv("A")
	if _, err := New(eventexpr.MustParse("Undeclared"), e.resolve, e.alpha, nil); err == nil {
		t.Fatal("undeclared event accepted")
	}
}

// TestEquivalenceWithFSM is the cross-detector property: on mask-free
// expressions, the naive rescan and the compiled FSM agree on every
// posting. This is the correctness anchor for the E5 performance claim.
func TestEquivalenceWithFSM(t *testing.T) {
	sources := []string{
		"A",
		"A, B",
		"A || B",
		"*A, B",
		"A, *B, C",
		"(A || B), C",
		"relative(A, B)",
		"relative(A, B, C)",
		"^A, B",
		"^*A, B",
		"*(A, B), C",
		"(A, B) || (B, C)",
		"A, any, B",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := newEnv("A", "B", "C")
		src := sources[r.Intn(len(sources))]
		parsed := eventexpr.MustParse(src)

		d, err := New(parsed, e.resolve, e.alpha, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := fsm.Compile(parsed, fsm.Options{Resolve: e.resolve, Alphabet: e.alpha})
		if err != nil {
			t.Fatal(err)
		}
		state := m.Start
		names := []string{"A", "B", "C"}
		for i := 0; i < 30; i++ {
			ev := e.ids[names[r.Intn(len(names))]]
			rOK, err := d.Post(ev)
			if err != nil {
				t.Fatal(err)
			}
			next, fOK, err := m.Advance(state, ev, nil)
			if err != nil {
				t.Fatal(err)
			}
			state = next
			if rOK != fOK {
				t.Logf("%q step %d: rescan=%v fsm=%v", src, i, rOK, fOK)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
