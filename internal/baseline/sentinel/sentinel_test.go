package sentinel

import (
	"fmt"
	"testing"

	"ode/internal/event"
	"ode/internal/eventexpr"
	"ode/internal/fsm"
)

func TestTripleRegistryDispatch(t *testing.T) {
	r := NewRegistry()
	var got []EventTriple
	tr := EventTriple{"CredCard", "void Buy(Merchant*, float)", "end"}
	r.Subscribe(tr, func(t EventTriple) { got = append(got, t) })
	if n := r.Post(tr); n != 1 {
		t.Fatalf("Post = %d subscribers", n)
	}
	if len(got) != 1 || got[0] != tr {
		t.Fatalf("delivered %v", got)
	}
	// A different prototype is a different event.
	other := EventTriple{"CredCard", "void Buy(float)", "end"}
	if n := r.Post(other); n != 0 {
		t.Fatalf("overloaded prototype matched: %d", n)
	}
}

func TestIntRegistryDispatch(t *testing.T) {
	r := NewIntRegistry(8)
	hits := 0
	r.Subscribe(5, func(event.ID) { hits++ })
	if n := r.Post(5); n != 1 || hits != 1 {
		t.Fatalf("post: n=%d hits=%d", n, hits)
	}
	if n := r.Post(6); n != 0 {
		t.Fatalf("unsubscribed event dispatched: %d", n)
	}
	// Auto-grow on subscribe past capacity.
	r.Subscribe(100, func(event.ID) {})
	if n := r.Post(100); n != 1 {
		t.Fatal("grown registry lost subscriber")
	}
	// Post of an ID beyond capacity is a no-op, not a panic.
	if n := r.Post(10000); n != 0 {
		t.Fatal("out-of-range post dispatched")
	}
}

func compile(t *testing.T, src string) (*fsm.Machine, map[string]event.ID) {
	t.Helper()
	reg := event.NewRegistry()
	ids := map[string]event.ID{}
	var alpha []event.ID
	for _, n := range []string{"A", "B"} {
		id := reg.Register("T", event.User(n))
		ids[n] = id
		alpha = append(alpha, id)
	}
	m, err := fsm.Compile(eventexpr.MustParse(src), fsm.Options{
		Resolve: func(n *eventexpr.Name) (event.ID, error) {
			id, ok := ids[n.String()]
			if !ok {
				return event.None, fmt.Errorf("unknown %q", n.String())
			}
			return id, nil
		},
		Alphabet: alpha,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, ids
}

func TestDetectorLocalDetection(t *testing.T) {
	m, ids := compile(t, "A, B")
	d := NewDetector(m, nil)
	for _, step := range []struct {
		ev   string
		want bool
	}{
		{"A", false}, {"B", true}, {"B", false}, {"A", false}, {"B", true},
	} {
		got, err := d.Post(ids[step.ev])
		if err != nil {
			t.Fatal(err)
		}
		if got != step.want {
			t.Fatalf("post %s: fired=%v want %v", step.ev, got, step.want)
		}
	}
	if d.Fired() != 2 {
		t.Fatalf("fired = %d", d.Fired())
	}
}

func TestDetectorIsTransient(t *testing.T) {
	// §7: Sentinel's detector state lives in program memory. Arming the
	// pattern, "restarting the application" (a fresh Detector), and
	// completing the pattern must NOT fire — unlike Ode's persistent
	// TriggerStates (see core's TestGlobalCompositeAcrossProcesses).
	m, ids := compile(t, "A, B")
	d1 := NewDetector(m, nil)
	if _, err := d1.Post(ids["A"]); err != nil { // armed
		t.Fatal(err)
	}
	if d1.State() == m.Start {
		t.Fatal("detector did not arm")
	}
	d2 := NewDetector(m, nil) // "application restart"
	fired, err := d2.Post(ids["B"])
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("transient detector fired across restart — that would be a global event")
	}
}

func TestDetectorMask(t *testing.T) {
	m, ids := compile(t, "A & m") // mask name irrelevant; eval decides
	val := false
	d := NewDetector(m, func(string) (bool, error) { return val, nil })
	if fired, _ := d.Post(ids["A"]); fired {
		t.Fatal("fired with mask false")
	}
	val = true
	if fired, _ := d.Post(ids["A"]); !fired {
		t.Fatal("did not fire with mask true")
	}
}
