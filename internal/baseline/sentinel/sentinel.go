// Package sentinel reimplements the event machinery of the Sentinel
// active OODBMS as published (Chakravarthy et al., ICDE 1995) to serve as
// the paper's §7 comparison baseline. Two properties matter:
//
//  1. Event representation: Sentinel identifies a basic event by a
//     *triple of strings* — the class name, the member-function
//     prototype, and "begin"/"end" — where Ode maps each event to a
//     globally unique small integer. The paper argues Ode's integers give
//     "significantly lower event posting overhead"; experiment E2
//     measures exactly this representation gap.
//
//  2. Locality: Sentinel supports only *local* composite events — all
//     constituent events must occur within a single application, because
//     its detector state lives in transient program memory. Ode's
//     TriggerStates are persistent, making composite events *global*.
//     Experiment E14 contrasts the two: a Detector here is deliberately
//     process-transient and cannot survive a restart.
package sentinel

import (
	"sync"

	"ode/internal/event"
	"ode/internal/fsm"
)

// EventTriple is Sentinel's event identity: (class name, member-function
// prototype, "begin" | "end").
type EventTriple struct {
	Class     string
	Prototype string
	Modifier  string // "begin" (before) or "end" (after)
}

// Registry maps string triples to subscriber lists. Lookup cost is the
// point of comparison: hashing three strings versus indexing by one small
// integer.
type Registry struct {
	mu   sync.RWMutex
	subs map[EventTriple][]func(EventTriple)
}

// NewRegistry returns an empty Sentinel-style registry.
func NewRegistry() *Registry {
	return &Registry{subs: make(map[EventTriple][]func(EventTriple))}
}

// Subscribe registers a callback for a triple.
func (r *Registry) Subscribe(t EventTriple, fn func(EventTriple)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs[t] = append(r.subs[t], fn)
}

// Post looks up the triple and invokes its subscribers — the per-event
// work a Sentinel wrapper performs. It returns the subscriber count so
// benchmarks observe the lookup.
func (r *Registry) Post(t EventTriple) int {
	r.mu.RLock()
	subs := r.subs[t]
	r.mu.RUnlock()
	for _, fn := range subs {
		fn(t)
	}
	return len(subs)
}

// IntRegistry is the Ode-style counterpart used by E2: the same
// subscribe/post surface keyed by event.ID, so the measured difference is
// purely the representation.
type IntRegistry struct {
	mu   sync.RWMutex
	subs [][]func(event.ID)
}

// NewIntRegistry returns an integer-keyed registry sized for n events.
func NewIntRegistry(n int) *IntRegistry {
	return &IntRegistry{subs: make([][]func(event.ID), n)}
}

// Subscribe registers a callback for an event ID.
func (r *IntRegistry) Subscribe(id event.ID, fn func(event.ID)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for int(id) >= len(r.subs) {
		r.subs = append(r.subs, nil)
	}
	r.subs[id] = append(r.subs[id], fn)
}

// Post dispatches by integer index.
func (r *IntRegistry) Post(id event.ID) int {
	r.mu.RLock()
	var subs []func(event.ID)
	if int(id) < len(r.subs) {
		subs = r.subs[id]
	}
	r.mu.RUnlock()
	for _, fn := range subs {
		fn(id)
	}
	return len(subs)
}

// Detector is a Sentinel-style local composite-event detector: it drives
// the same compiled FSM the Ode engine uses, but keeps the machine state
// in program memory. Restarting the "application" (creating a new
// Detector) loses all partial matches — the locality limitation §7
// describes.
type Detector struct {
	machine *fsm.Machine
	state   int32
	fired   int
	eval    fsm.MaskEval
}

// NewDetector starts a transient detector for one compiled machine.
func NewDetector(m *fsm.Machine, eval fsm.MaskEval) *Detector {
	if eval == nil {
		eval = func(string) (bool, error) { return true, nil }
	}
	return &Detector{machine: m, state: m.Start, eval: eval}
}

// Post feeds one event; it reports whether the composite event completed.
func (d *Detector) Post(ev event.ID) (bool, error) {
	next, accepted, err := d.machine.Advance(d.state, ev, d.eval)
	if err != nil {
		return false, err
	}
	d.state = next
	if accepted {
		d.fired++
		d.state = d.machine.Start
	}
	return accepted, nil
}

// Fired reports completed detections since construction.
func (d *Detector) Fired() int { return d.fired }

// State exposes the transient FSM state (tests).
func (d *Detector) State() int32 { return d.state }
