package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Step kinds recorded in a firing trace, in the order the trigger engine
// emits them. Every kind and field is documented (with a JSON example)
// in docs/OBSERVABILITY.md.
const (
	// StepTransition is one raw FSM move on the posted basic event:
	// From → To, with Event naming the consumed event.
	StepTransition = "transition"
	// StepMask is one §5.1.2 mask-cascade move: the mask predicate named
	// Mask was evaluated and the machine consumed the True or False
	// pseudo-event (Event is "True" or "False"), moving From → To.
	StepMask = "mask"
	// StepFire marks a trigger accepting during this posting; Coupling
	// records the §4.2 mode the firing was routed to.
	StepFire = "fire"
	// StepCommitWait is emitted for dependent/!dependent firings when the
	// detached system transaction starts: WaitNs is the time spent
	// between detection and the start of detached execution (dominated by
	// the detecting transaction's commit, including the WAL group-commit
	// wait).
	StepCommitWait = "commit_wait"
	// StepRetry records one detached retry backoff sleep (WaitNs).
	StepRetry = "retry"
	// StepActionStart and StepActionEnd bracket the trigger action;
	// StepActionEnd carries Err when the action failed.
	StepActionStart = "action_start"
	// StepActionEnd closes a StepActionStart bracket.
	StepActionEnd = "action_end"
	// StepSnapshot records a posting made inside a snapshot (lock-free
	// read-only) transaction: local rules saw the event, persistent
	// trigger processing was suppressed (a snapshot cannot advance
	// persistent FSM state), and LSN carries the pinned snapshot LSN.
	StepSnapshot = "snapshot"
)

// Step is one recorded event within a firing trace. TNs is the offset in
// nanoseconds from the trace's start. Fields not meaningful for a kind
// are zero ("" / 0 / false); see the kind constants for which apply.
type Step struct {
	TNs      int64  `json:"t_ns"`
	Kind     string `json:"kind"`
	Trigger  string `json:"trigger,omitempty"`
	Event    string `json:"event,omitempty"`
	Mask     string `json:"mask,omitempty"`
	From     int32  `json:"from"`
	To       int32  `json:"to"`
	Coupling string `json:"coupling,omitempty"`
	WaitNs   int64  `json:"wait_ns,omitempty"`
	Err      string `json:"err,omitempty"`
	// Cause, on a fire step, is the cause ID of the posting that began
	// the accepted composite pattern — for a pattern half-matched before
	// a failover, that is the *primary-side* originating event.
	Cause string `json:"cause,omitempty"`
	// LSN, on a snapshot step, is the pinned snapshot LSN the posting
	// transaction reads as-of.
	LSN uint64 `json:"lsn,omitempty"`
}

// Trace is one sampled posting and the trigger firings it produced. A
// Trace is created by Tracer.Start, extended with Add (safe from the
// posting goroutine and from detached system-transaction goroutines),
// published into the tracer's ring by Publish, and recycled through a
// pool once every holder has called Done.
type Trace struct {
	id      uint64
	startNs int64 // wall clock at Start
	start   time.Time
	eventID uint32
	event   string
	oid     uint64
	cause   Cause
	parent  Cause

	mu    sync.Mutex
	steps []Step

	refs   atomic.Int32
	tracer *Tracer
}

// TraceRecord is the immutable, JSON-serializable snapshot of a Trace.
// Node, when set, is the 16-hex provenance label of the node whose
// tracer produced the record (stamped by the serving node, preserved by
// the router's fleet merge).
type TraceRecord struct {
	ID          uint64 `json:"id"`
	Node        string `json:"node,omitempty"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EventID     uint32 `json:"event_id"`
	Event       string `json:"event"`
	OID         uint64 `json:"oid"`
	Cause       string `json:"cause,omitempty"`
	ParentCause string `json:"parent_cause,omitempty"`
	Steps       []Step `json:"steps"`
}

// Event returns the name of the posted event that started the trace
// (set by Tracer.Start). Empty on a nil trace.
func (t *Trace) Event() string {
	if t == nil {
		return ""
	}
	return t.event
}

// SetCause records the posting's provenance: self is the cause ID
// assigned to this posting, parent the cause of the posting whose
// trigger action (if any) posted it. No-op on a nil trace.
func (t *Trace) SetCause(self, parent Cause) {
	if t == nil {
		return
	}
	t.cause = self
	t.parent = parent
}

// Add appends one step, stamping its offset from the trace start. Add on
// a nil trace is a no-op, so unsampled call sites need no guard.
func (t *Trace) Add(s Step) {
	if t == nil {
		return
	}
	s.TNs = time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	t.steps = append(t.steps, s)
	t.mu.Unlock()
}

// Pin takes an additional reference: a queued firing that will append
// steps after the posting returns (deferred/dependent/!dependent
// coupling) pins the trace and calls Done when finished. Pin on nil is a
// no-op.
func (t *Trace) Pin() {
	if t == nil {
		return
	}
	t.refs.Add(1)
}

// Done releases one reference. When the last reference drops — which,
// because the ring holds one, happens only after the trace has been
// evicted — the trace is reset and returned to the pool. Done on nil is
// a no-op.
func (t *Trace) Done() {
	if t == nil {
		return
	}
	if t.refs.Add(-1) == 0 {
		t.mu.Lock()
		t.steps = t.steps[:0]
		t.mu.Unlock()
		t.tracer.pool.Put(t)
	}
}

func (t *Trace) snapshot() TraceRecord {
	t.mu.Lock()
	steps := make([]Step, len(t.steps))
	copy(steps, t.steps)
	t.mu.Unlock()
	return TraceRecord{
		ID:          t.id,
		StartUnixNs: t.startNs,
		EventID:     t.eventID,
		Event:       t.event,
		OID:         t.oid,
		Cause:       t.cause.String(),
		ParentCause: t.parent.String(),
		Steps:       steps,
	}
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 256

// Tracer records sampled firing traces into a fixed-size ring that
// overwrites the oldest entry. The sampling gate is a single atomic
// load: with rate 0 (the default) Sampled is false, Start is never
// called, and the trigger hot path performs no tracing work and no
// allocations.
type Tracer struct {
	rate atomic.Uint64 // 0 = off, n = record one of every n postings
	tick atomic.Uint64 // posting counter for 1-in-n selection
	seq  atomic.Uint64 // trace IDs

	pool sync.Pool

	mu   sync.Mutex
	ring []*Trace // ring[pos] is the next slot to overwrite
	pos  int
	n    int // live entries (< len(ring) until the ring first wraps)
}

// NewTracer returns a tracer with the given ring capacity (entries), or
// DefaultTraceCapacity if capacity is not positive. Tracing starts
// disabled; call SetRate to enable.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{ring: make([]*Trace, capacity)}
	t.pool.New = func() any { return &Trace{tracer: t} }
	return t
}

// SetRate sets the sampling rate: 0 disables tracing, 1 traces every
// posting, n traces one of every n postings.
func (t *Tracer) SetRate(n uint64) { t.rate.Store(n) }

// Rate returns the current sampling rate.
func (t *Tracer) Rate() uint64 { return t.rate.Load() }

// Sampled reports whether the current posting should be traced. It is
// the hot-path gate: one atomic load when tracing is off.
func (t *Tracer) Sampled() bool {
	r := t.rate.Load()
	if r == 0 {
		return false
	}
	return t.tick.Add(1)%r == 0
}

// Start begins a trace for a posting Sampled selected. The caller must
// eventually Publish it exactly once.
func (t *Tracer) Start(eventID uint32, event string, oid uint64) *Trace {
	tr := t.pool.Get().(*Trace)
	tr.id = t.seq.Add(1)
	tr.start = time.Now()
	tr.startNs = tr.start.UnixNano()
	tr.eventID = eventID
	tr.event = event
	tr.oid = oid
	tr.cause = Cause{} // pooled traces must not leak a prior provenance
	tr.parent = Cause{}
	tr.refs.Store(1) // the caller's reference
	return tr
}

// Publish inserts the trace into the ring (evicting — and potentially
// recycling — the oldest entry) and releases the caller's reference.
// Pinned firings may keep appending steps after Publish; snapshots taken
// in between simply see a prefix of the final trace.
func (t *Tracer) Publish(tr *Trace) {
	if tr == nil {
		return
	}
	tr.Pin() // the ring's reference
	t.mu.Lock()
	evicted := t.ring[t.pos]
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	if evicted != nil {
		evicted.Done() // drop the ring's reference to the evicted trace
	}
	tr.Done() // the caller's reference
}

// Snapshot returns the ring's traces, oldest first.
func (t *Tracer) Snapshot() []TraceRecord {
	t.mu.Lock()
	live := make([]*Trace, 0, t.n)
	start := t.pos - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		tr := t.ring[(start+i)%len(t.ring)]
		tr.Pin() // keep the trace from being recycled mid-snapshot
		live = append(live, tr)
	}
	t.mu.Unlock()
	out := make([]TraceRecord, len(live))
	for i, tr := range live {
		out[i] = tr.snapshot()
		tr.Done()
	}
	return out
}

// MarshalJSON renders the ring snapshot as a JSON array (oldest first).
func (t *Tracer) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Snapshot())
}
