package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the always-on counterpart of the sampled
// tracer: a fixed ring of the last few hundred structured incidents
// (commits, WAL heals, detached retries and drops, action panics,
// replica redials, promotions). It costs one atomic load when nothing
// is recorded on a path and one short mutex-guarded slot write when
// something is, so it stays enabled in production; when the process
// hits an action panic or the log reports corruption the ring is
// dumped automatically, giving the post-mortem the minutes *before*
// the failure, not just the failure itself.

// Incident kinds recorded by the flight recorder.
const (
	IncCommit        = "commit"
	IncWALHeal       = "wal_heal"
	IncCorrupt       = "corrupt"
	IncDetachedRetry = "detached_retry"
	IncDetachedDrop  = "detached_drop"
	IncActionPanic   = "action_panic"
	IncReplicaRedial = "replica_redial"
	IncPromotion     = "promotion"
	// IncDivergence: an anti-entropy audit (repl.verify) confirmed the
	// replica's store differs from the primary's for at least one
	// object that was not explained by replication lag.
	IncDivergence = "divergence"
	// IncIngestHop: a shard applied a forwarded remote event
	// (shard.ingest). Cause is the capture-minted cause of the hop,
	// ParentCause the originating posting on the sending shard, Value
	// the outbox sequence number; the cause-chain assembler uses these
	// records to stitch cascades across the outbox→forward→ingest hop.
	IncIngestHop = "ingest_hop"
)

// IncidentKinds lists every kind the recorder emits, for the
// doc-coverage test.
var IncidentKinds = []string{
	IncCommit,
	IncWALHeal,
	IncCorrupt,
	IncDetachedRetry,
	IncDetachedDrop,
	IncActionPanic,
	IncReplicaRedial,
	IncPromotion,
	IncDivergence,
	IncIngestHop,
}

// incident is the in-ring representation: fixed-size, written in place
// so steady-state recording allocates nothing.
type incident struct {
	tUnixNs int64
	kind    string
	cause   Cause
	parent  Cause
	value   uint64
	detail  string
}

// IncidentRecord is the exported snapshot form of one incident, as
// served by the `flight` server op and `/flight` endpoint. Node, when
// set, is the 16-hex provenance label of the node that served the
// snapshot (stamped at serve time — the in-ring form stays node-free
// because the recorder is process-wide).
type IncidentRecord struct {
	TUnixNs     int64  `json:"t_unix_ns"`
	Node        string `json:"node,omitempty"`
	Kind        string `json:"kind"`
	Cause       string `json:"cause,omitempty"`
	ParentCause string `json:"parent_cause,omitempty"`
	Value       uint64 `json:"value,omitempty"`
	Detail      string `json:"detail,omitempty"`
}

// DefaultFlightCapacity is the ring size of the process-wide recorder.
const DefaultFlightCapacity = 512

// FlightRecorder holds the incident ring. The zero value is enabled
// (the recorder is *always on* unless a test turns it off), but has no
// ring; use NewFlightRecorder or the process-wide Flight().
type FlightRecorder struct {
	disabled atomic.Bool // inverted so the zero value records
	total    atomic.Uint64

	mu   sync.Mutex
	ring []incident
	pos  int // next write slot
	n    int // filled slots, ≤ len(ring)

	dumpMu sync.Mutex
	dumpW  io.Writer // nil → os.Stderr
}

// NewFlightRecorder returns a recorder with the given ring capacity
// (DefaultFlightCapacity if ≤ 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]incident, capacity)}
}

var flight = NewFlightRecorder(DefaultFlightCapacity)

// Flight returns the process-wide flight recorder.
func Flight() *FlightRecorder { return flight }

// SetEnabled turns recording on or off (A/B experiments only; the
// recorder ships enabled).
func (f *FlightRecorder) SetEnabled(on bool) { f.disabled.Store(!on) }

// Enabled reports whether the recorder accepts incidents.
func (f *FlightRecorder) Enabled() bool { return !f.disabled.Load() }

// Total returns the number of incidents recorded since start,
// including any already overwritten in the ring.
func (f *FlightRecorder) Total() uint64 { return f.total.Load() }

// Record appends one incident. Safe for concurrent use; the disabled
// path is a single atomic load and allocates nothing, and the enabled
// path writes one preallocated slot under a short mutex.
func (f *FlightRecorder) Record(kind string, cause, parent Cause, value uint64, detail string) {
	if f.disabled.Load() || len(f.ring) == 0 {
		return
	}
	t := time.Now().UnixNano()
	f.total.Add(1)
	f.mu.Lock()
	slot := &f.ring[f.pos]
	slot.tUnixNs = t
	slot.kind = kind
	slot.cause = cause
	slot.parent = parent
	slot.value = value
	slot.detail = detail
	f.pos++
	if f.pos == len(f.ring) {
		f.pos = 0
	}
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

// Snapshot returns the ring's incidents oldest-first.
func (f *FlightRecorder) Snapshot() []IncidentRecord {
	f.mu.Lock()
	out := make([]IncidentRecord, 0, f.n)
	start := f.pos - f.n
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.n; i++ {
		in := &f.ring[(start+i)%len(f.ring)]
		out = append(out, IncidentRecord{
			TUnixNs:     in.tUnixNs,
			Kind:        in.kind,
			Cause:       in.cause.String(),
			ParentCause: in.parent.String(),
			Value:       in.value,
			Detail:      in.detail,
		})
	}
	f.mu.Unlock()
	return out
}

// SetDumpWriter redirects Dump output (tests); nil restores os.Stderr.
func (f *FlightRecorder) SetDumpWriter(w io.Writer) {
	f.dumpMu.Lock()
	f.dumpW = w
	f.dumpMu.Unlock()
}

// Dump writes a terse human-readable rendering of the ring,
// oldest-first, to w.
func (f *FlightRecorder) Dump(w io.Writer, reason string) {
	recs := f.Snapshot()
	fmt.Fprintf(w, "-- flight recorder dump (%s): %d incidents, %d total --\n", reason, len(recs), f.Total())
	for _, r := range recs {
		fmt.Fprintf(w, "%s %-14s", time.Unix(0, r.TUnixNs).UTC().Format("15:04:05.000000"), r.Kind)
		if r.Cause != "" {
			fmt.Fprintf(w, " cause=%s", r.Cause)
		}
		if r.ParentCause != "" {
			fmt.Fprintf(w, " parent=%s", r.ParentCause)
		}
		if r.Value != 0 {
			fmt.Fprintf(w, " value=%d", r.Value)
		}
		if r.Detail != "" {
			fmt.Fprintf(w, " %s", r.Detail)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "-- end flight dump --")
}

// DumpFlight dumps the process-wide recorder to its dump writer
// (os.Stderr by default). Called on action panics and log corruption so
// the incidents leading up to the failure survive in the crash output.
func DumpFlight(reason string) {
	f := flight
	f.dumpMu.Lock()
	w := f.dumpW
	f.dumpMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	f.Dump(w, reason)
}
