package obs

import "sort"

// Cross-shard cause-chain assembly. Every posting carries a cause ID
// (node, seq) and the cause of the posting that produced it, and the
// provenance survives every hop: a trigger action's posting links to
// the detecting posting, an outbox capture mints a hop cause whose
// parent is the capturing posting, and the ingesting shard threads the
// hop cause into the remote posting it applies. The assembler collects
// those links — firing traces, flight incidents, and outbox hops, from
// every node of a fleet — as flat ChainEvents and stitches them into
// one parent-linked tree rooted at a chosen cause. The `trace.chain`
// server op serves the flat events (raw) or the assembled tree; the
// router fans the raw form out to every shard and assembles fleet-wide.

// Chain event kinds.
const (
	// ChainTrace: a sampled firing trace whose posting carries the
	// event's cause.
	ChainTrace = "trace"
	// ChainIncident: a flight-recorder incident attributed to the cause
	// (including the ingest_hop records that bridge shards).
	ChainIncident = "incident"
	// ChainHop: a captured outbox entry still queued or settled on the
	// sending shard — the sending half of a cross-shard hop.
	ChainHop = "hop"
	// ChainCompletion: synthesized from a fire step whose pattern began
	// under a different cause: the completing posting's cause is linked
	// under the pattern-origin cause so a composite trigger that
	// half-matched elsewhere still joins the tree.
	ChainCompletion = "completion"
)

// ChainEvent is one flat, node-tagged observation tied to a cause.
// Cause is the event's own cause ID; ParentCause, when set, links it
// into the tree. Trace and Incident carry the full source record for
// trace/incident kinds.
type ChainEvent struct {
	Node        string          `json:"node,omitempty"`
	Kind        string          `json:"chain_kind"`
	TUnixNs     int64           `json:"t_unix_ns,omitempty"`
	Cause       string          `json:"cause"`
	ParentCause string          `json:"parent_cause,omitempty"`
	Detail      string          `json:"detail,omitempty"`
	Trace       *TraceRecord    `json:"trace,omitempty"`
	Incident    *IncidentRecord `json:"incident,omitempty"`
}

// ChainNode is one cause in the assembled tree: every collected event
// for that cause, and the causes it produced.
type ChainNode struct {
	Cause    string       `json:"cause"`
	Events   []ChainEvent `json:"events,omitempty"`
	Children []*ChainNode `json:"children,omitempty"`
}

// TraceChainEvents converts firing traces to chain events. Each traced
// posting yields one ChainTrace event (parent = the posting that caused
// it), plus one ChainCompletion event per fire step whose pattern
// originated under a different cause.
func TraceChainEvents(label string, recs []TraceRecord) []ChainEvent {
	var out []ChainEvent
	for i := range recs {
		rec := recs[i]
		if rec.Cause == "" {
			continue
		}
		if rec.Node == "" {
			rec.Node = label
		}
		out = append(out, ChainEvent{
			Node:        rec.Node,
			Kind:        ChainTrace,
			TUnixNs:     rec.StartUnixNs,
			Cause:       rec.Cause,
			ParentCause: rec.ParentCause,
			Detail:      "posted " + rec.Event,
			Trace:       &rec,
		})
		for _, s := range rec.Steps {
			if s.Kind == StepFire && s.Cause != "" && s.Cause != rec.Cause {
				out = append(out, ChainEvent{
					Node:        rec.Node,
					Kind:        ChainCompletion,
					TUnixNs:     rec.StartUnixNs + s.TNs,
					Cause:       rec.Cause,
					ParentCause: s.Cause,
					Detail:      "completed pattern of " + s.Trigger,
				})
			}
		}
	}
	return out
}

// IncidentChainEvents converts flight incidents that carry a cause to
// chain events.
func IncidentChainEvents(label string, recs []IncidentRecord) []ChainEvent {
	var out []ChainEvent
	for i := range recs {
		rec := recs[i]
		if rec.Cause == "" {
			continue
		}
		if rec.Node == "" {
			rec.Node = label
		}
		out = append(out, ChainEvent{
			Node:        rec.Node,
			Kind:        ChainIncident,
			TUnixNs:     rec.TUnixNs,
			Cause:       rec.Cause,
			ParentCause: rec.ParentCause,
			Detail:      rec.Kind,
			Incident:    &rec,
		})
	}
	return out
}

// AssembleChain stitches flat events into the parent-linked tree rooted
// at root (a cause ID). Events are grouped by cause; an event whose
// ParentCause names another cause links the two. Children are ordered
// by earliest event time (then cause ID) so assembly is deterministic,
// a visited set guards against cycles in corrupt input, and causes not
// reachable from root are dropped.
func AssembleChain(root string, evs []ChainEvent) *ChainNode {
	byCause := make(map[string][]ChainEvent)
	children := make(map[string]map[string]bool)
	for _, ev := range evs {
		if ev.Cause == "" {
			continue
		}
		byCause[ev.Cause] = append(byCause[ev.Cause], ev)
		if p := ev.ParentCause; p != "" && p != ev.Cause {
			kids := children[p]
			if kids == nil {
				kids = make(map[string]bool)
				children[p] = kids
			}
			kids[ev.Cause] = true
		}
	}
	earliest := func(c string) int64 {
		t := int64(0)
		for i, ev := range byCause[c] {
			if i == 0 || ev.TUnixNs < t {
				t = ev.TUnixNs
			}
		}
		return t
	}
	visited := map[string]bool{root: true}
	var build func(cause string) *ChainNode
	build = func(cause string) *ChainNode {
		evs := byCause[cause]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TUnixNs < evs[j].TUnixNs })
		n := &ChainNode{Cause: cause, Events: evs}
		kids := make([]string, 0, len(children[cause]))
		for kid := range children[cause] {
			if visited[kid] {
				continue
			}
			visited[kid] = true
			kids = append(kids, kid)
		}
		sort.Slice(kids, func(i, j int) bool {
			ti, tj := earliest(kids[i]), earliest(kids[j])
			if ti != tj {
				return ti < tj
			}
			return kids[i] < kids[j]
		})
		for _, kid := range kids {
			n.Children = append(n.Children, build(kid))
		}
		return n
	}
	return build(root)
}
