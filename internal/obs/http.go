package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns an HTTP handler exposing the observability surface:
//
//	/metrics      JSON array of every registered metric (Registry.Snapshot)
//	/traces       JSON array of the tracer's ring, oldest first
//	/flight       JSON array of the flight recorder's ring, oldest first
//	/healthz      liveness: always 200 while the process serves HTTP
//	/readyz       readiness: 200, or 503 + failing checks as JSON
//	/debug/vars   expvar (Go runtime memstats plus the "ode" registry var)
//	/debug/pprof  the standard pprof index, profile, trace, symbol pages
//
// health may be nil (always ready), as may tr (a router has no tracer
// of its own; /traces serves an empty array). Wire it with ode-server's
// or ode-router's -obs-addr flag, or mount it yourself:
//
//	http.ListenAndServe("127.0.0.1:6060", obs.Handler(db.Observability(), db.Tracer(), nil))
func Handler(reg *Registry, tr *Tracer, health *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			writeJSON(w, []TraceRecord{})
			return
		}
		writeJSON(w, tr.Snapshot())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Flight().Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if failing := health.Ready(); len(failing) > 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(failing)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// publishOnce guards the process-global expvar name "ode": expvar.Publish
// panics on duplicate names, and a process may open several databases.
// Only the first served registry appears under /debug/vars; /metrics is
// always per-registry.
var publishOnce sync.Once

// Serve starts the observability endpoint on addr (e.g. "127.0.0.1:6060"
// or ":0") and returns the bound address. The server runs on a
// background goroutine until the process exits; it is intentionally
// fire-and-forget, matching expvar/pprof conventions.
func Serve(addr string, reg *Registry, tr *Tracer, health *Health) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	publishOnce.Do(func() {
		expvar.Publish("ode", expvar.Func(func() any { return reg.Snapshot() }))
	})
	go http.Serve(ln, Handler(reg, tr, health))
	return ln.Addr().String(), nil
}
