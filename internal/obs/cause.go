package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Cause is a compact causal-provenance identifier assigned to every
// posted basic event. It answers the question traces alone cannot:
// *why* did this fire? The paper's coupling modes (§4.2) and globally
// persistent composite events (§5.1.3) let one posting fan out into
// detached system transactions, further firings, and — with
// replication — FSM completions on a promoted replica; a Cause links
// every one of those hops back to the posting that started the chain.
//
// Node identifies the assigning database instance (random per Causes
// source, so two nodes of a replication pair never collide) and Seq is
// a per-node monotonic sequence. The zero Cause means "no provenance"
// (provenance disabled, or a pre-provenance record).
type Cause struct {
	Node uint64 `json:"node"`
	Seq  uint64 `json:"seq"`
}

// IsZero reports the no-provenance Cause.
func (c Cause) IsZero() bool { return c == Cause{} }

// String renders the cause as "<16-hex-node>-<seq>" ("" for the zero
// Cause) — the spelling stored in trigger-state records, trace records,
// and flight incidents.
func (c Cause) String() string {
	if c.IsZero() {
		return ""
	}
	return fmt.Sprintf("%016x-%d", c.Node, c.Seq)
}

// ParseCause parses the String form back into a Cause. The empty string
// parses (ok) to the zero Cause; anything else malformed is !ok.
func ParseCause(s string) (Cause, bool) {
	if s == "" {
		return Cause{}, true
	}
	dash := strings.IndexByte(s, '-')
	if dash != 16 {
		return Cause{}, false
	}
	node, err := strconv.ParseUint(s[:dash], 16, 64)
	if err != nil {
		return Cause{}, false
	}
	seq, err := strconv.ParseUint(s[dash+1:], 10, 64)
	if err != nil {
		return Cause{}, false
	}
	c := Cause{Node: node, Seq: seq}
	if c.IsZero() {
		return Cause{}, false // "0000000000000000-0" is not a valid spelling
	}
	return c, true
}

// Causes issues cause IDs for one database instance: one atomic add per
// posting. The node ID is random so that the primary and a replica of a
// replication pair — even when both run in one process, as the failover
// tests do — assign causes that are attributable to the right side.
type Causes struct {
	node atomic.Uint64
	seq  atomic.Uint64
}

// NewCauses returns a source with a random non-zero node ID.
func NewCauses() *Causes {
	c := &Causes{}
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		c.node.Store(binary.LittleEndian.Uint64(b[:]))
	}
	if c.node.Load() == 0 {
		c.node.Store(1)
	}
	return c
}

// Node returns the source's node ID.
func (c *Causes) Node() uint64 { return c.node.Load() }

// SetNode overrides the node ID (tests that need deterministic
// attribution). Call before the source is shared.
func (c *Causes) SetNode(n uint64) {
	if n == 0 {
		n = 1
	}
	c.node.Store(n)
}

// Next assigns the next cause ID: one atomic add.
func (c *Causes) Next() Cause {
	return Cause{Node: c.node.Load(), Seq: c.seq.Add(1)}
}

// EnsureSeq raises the sequence so the next cause's seq is strictly
// greater than seen. Restart recovery calls this with every persisted
// seq it reloads (sharding outbox records), so a reborn node never
// re-issues a sequence number that may already be in flight.
func (c *Causes) EnsureSeq(seen uint64) {
	for {
		cur := c.seq.Load()
		if cur >= seen || c.seq.CompareAndSwap(cur, seen) {
			return
		}
	}
}

// --- commit-record cause notes ------------------------------------------------
//
// A cause note is the binary annotation carried in the Data field of a
// WAL commit record: (self, parent) of the transaction's originating
// posting. Recovery and replica replay ignore commit-record Data they
// do not understand, so old logs and old peers interoperate; a replica
// that does understand it attributes its ApplyReplicated — and any
// post-failover composite completion — to the primary-side event.

// causeNoteMagic tags a commit-record Data payload as a cause note.
const causeNoteMagic = 0xC1

// causeNoteHasParent flags a note that carries a parent cause. Any
// other flag bit is from a future format and makes the note foreign.
const causeNoteHasParent = 0x01

// MaxCauseNoteLen bounds the encoded size of a cause note. The typical
// note is far smaller — a root posting (no parent, small seq) encodes
// in ~12 bytes — which matters because the note rides *every*
// originating commit record: on small transactions a fixed-width
// encoding measurably inflates the WAL (and E20's overhead number).
const MaxCauseNoteLen = 2 + 8 + binary.MaxVarintLen64 + 8 + binary.MaxVarintLen64

// EncodeCauseNote encodes (self, parent) for a commit record: magic,
// flags, self node (fixed 8 bytes — it is random, so incompressible),
// self seq as a uvarint, and the parent pair only when non-zero.
func EncodeCauseNote(self, parent Cause) []byte {
	b := make([]byte, 0, MaxCauseNoteLen)
	flags := byte(0)
	if !parent.IsZero() {
		flags |= causeNoteHasParent
	}
	b = append(b, causeNoteMagic, flags)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], self.Node)
	b = append(b, n[:]...)
	b = binary.AppendUvarint(b, self.Seq)
	if flags&causeNoteHasParent != 0 {
		binary.LittleEndian.PutUint64(n[:], parent.Node)
		b = append(b, n[:]...)
		b = binary.AppendUvarint(b, parent.Seq)
	}
	return b
}

// DecodeCauseNote decodes a commit record's Data. ok is false for
// empty, foreign, truncated, or trailing-garbage payloads.
func DecodeCauseNote(b []byte) (self, parent Cause, ok bool) {
	if len(b) < 11 || b[0] != causeNoteMagic {
		return Cause{}, Cause{}, false
	}
	flags := b[1]
	if flags&^byte(causeNoteHasParent) != 0 {
		return Cause{}, Cause{}, false // unknown future flags
	}
	p := 2
	self.Node = binary.LittleEndian.Uint64(b[p:])
	p += 8
	seq, n := binary.Uvarint(b[p:])
	if n <= 0 {
		return Cause{}, Cause{}, false
	}
	p += n
	self.Seq = seq
	if flags&causeNoteHasParent != 0 {
		if len(b) < p+9 {
			return Cause{}, Cause{}, false
		}
		parent.Node = binary.LittleEndian.Uint64(b[p:])
		p += 8
		pseq, n := binary.Uvarint(b[p:])
		if n <= 0 {
			return Cause{}, Cause{}, false
		}
		p += n
		parent.Seq = pseq
	}
	if p != len(b) {
		return Cause{}, Cause{}, false
	}
	return self, parent, true
}
