package obs

import (
	"testing"
)

// TestMergeSnapshotsCounters: counters with the same name sum across
// snapshots; names unique to one snapshot pass through.
func TestMergeSnapshotsCounters(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("a.hits", "count", "").Add(3)
	r1.Counter("a.only_one", "count", "").Add(7)
	r2 := NewRegistry()
	r2.Counter("a.hits", "count", "").Add(5)

	merged := MergeSnapshots(r1.Snapshot(), r2.Snapshot())
	got := map[string]uint64{}
	for _, mv := range merged {
		got[mv.Name] = mv.Value
	}
	if got["a.hits"] != 8 {
		t.Fatalf("a.hits = %d, want 8", got["a.hits"])
	}
	if got["a.only_one"] != 7 {
		t.Fatalf("a.only_one = %d, want 7", got["a.only_one"])
	}
}

// TestMergeSnapshotsHistograms: the fixed log₂ layout makes the merge
// exact — merged buckets must equal the buckets of one histogram that
// observed both nodes' values, and the quantiles must be recomputed
// from the merged distribution (not copied from either side).
func TestMergeSnapshotsHistograms(t *testing.T) {
	r1 := NewRegistry()
	h1 := r1.Histogram("a.lat_ns", "ns", "")
	r2 := NewRegistry()
	h2 := r2.Histogram("a.lat_ns", "ns", "")
	whole := &Histogram{}
	for i := 0; i < 100; i++ {
		h1.Observe(10)
		whole.Observe(10)
	}
	for i := 0; i < 100; i++ {
		h2.Observe(100000)
		whole.Observe(100000)
	}
	h2.Observe(0)
	whole.Observe(0)

	merged := MergeSnapshots(r1.Snapshot(), r2.Snapshot())
	if len(merged) != 1 {
		t.Fatalf("got %d metrics, want 1", len(merged))
	}
	m := merged[0]
	if m.Count != whole.Count() || m.Sum != whole.Sum() {
		t.Fatalf("count/sum = %d/%d, want %d/%d", m.Count, m.Sum, whole.Count(), whole.Sum())
	}
	want := whole.snapshotBuckets()
	if len(m.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(m.Buckets), len(want))
	}
	for i, b := range m.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if m.P50 != whole.Quantile(0.50) || m.P99 != whole.Quantile(0.99) {
		t.Fatalf("p50/p99 = %d/%d, want %d/%d", m.P50, m.P99, whole.Quantile(0.50), whole.Quantile(0.99))
	}
	// The p50 must reflect the *merged* distribution: h1 alone has p50
	// ~10, h2 alone ~100000; together the median sits in h2's bucket
	// only if the rank rule was re-run over the merged counts. With 201
	// observations (100 at 10, 100 at 100000, 1 at 0) the median is 10's
	// bucket — cross-check it differs from h2's own p50.
	if m.P50 == h2.Quantile(0.50) {
		t.Fatalf("merged p50 %d equals h2's own p50 — quantiles were not recomputed", m.P50)
	}
}

// TestTagHelpers: tagging stamps empty Node fields and preserves
// upstream tags.
func TestTagHelpers(t *testing.T) {
	ms := TagMetrics("n1", []MetricValue{{Name: "a"}, {Name: "b", Node: "pre"}})
	if ms[0].Node != "n1" || ms[1].Node != "pre" {
		t.Fatalf("TagMetrics = %q/%q, want n1/pre", ms[0].Node, ms[1].Node)
	}
	tr := TagTraces("n1", []TraceRecord{{ID: 1}, {ID: 2, Node: "pre"}})
	if tr[0].Node != "n1" || tr[1].Node != "pre" {
		t.Fatalf("TagTraces = %q/%q, want n1/pre", tr[0].Node, tr[1].Node)
	}
	in := TagIncidents("n1", []IncidentRecord{{Kind: IncCommit}, {Kind: IncCommit, Node: "pre"}})
	if in[0].Node != "n1" || in[1].Node != "pre" {
		t.Fatalf("TagIncidents = %q/%q, want n1/pre", in[0].Node, in[1].Node)
	}
	if got := NodeLabel(0xA0); got != "00000000000000a0" {
		t.Fatalf("NodeLabel = %q", got)
	}
}
