package obs

import "sync"

// Health is the process health surface served by Handler as /healthz
// and /readyz. Liveness (/healthz) is unconditional: if the process can
// answer HTTP it is alive. Readiness (/readyz) aggregates named checks
// — a replica registers a lag-threshold check, so a load balancer stops
// routing reads to a node that has fallen behind the primary, and the
// check is removed on promotion.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns an empty health surface (ready by default).
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// SetReadiness installs (or, with fn == nil, removes) a named readiness
// check. fn returns nil when the check passes.
func (h *Health) SetReadiness(name string, fn func() error) {
	h.mu.Lock()
	if fn == nil {
		delete(h.checks, name)
	} else {
		h.checks[name] = fn
	}
	h.mu.Unlock()
}

// Ready runs every readiness check and returns the failures by name
// (empty or nil means ready). A nil *Health is always ready.
func (h *Health) Ready() map[string]string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	fns := make(map[string]func() error, len(h.checks))
	for name, fn := range h.checks {
		fns[name] = fn
	}
	h.mu.Unlock()
	var failing map[string]string
	for name, fn := range fns {
		if err := fn(); err != nil {
			if failing == nil {
				failing = make(map[string]string)
			}
			failing[name] = err.Error()
		}
	}
	return failing
}
