// Package obs is the trigger-path observability layer: a zero-dependency
// (standard library only) metrics registry and firing-trace recorder
// threaded through the hot path of the trigger engine.
//
// The paper's central performance claim is that composite-event detection
// via persistent FSMs and decoupled actions adds little overhead to the
// object path (§5–§6). This package makes that claim *inspectable* at run
// time instead of only benchmarkable: counters and fixed-bucket (log₂)
// latency histograms unify the ad-hoc Stats structs of internal/core,
// internal/storage, internal/txn and internal/lock behind one enumerable
// Registry, and a ring-buffered Tracer (trace.go) captures sampled trigger
// firings step by step — posting event, FSM transitions including the
// §5.1.2 True/False mask pseudo-events, coupling-mode dispatch, action
// execution, and commit/detach waits. http.go exposes both over HTTP
// together with expvar and pprof.
//
// Every metric and trace field exposed here is documented in
// docs/OBSERVABILITY.md; a repo test fails if a registered metric name is
// missing from that document.
package obs

import (
	"fmt"
	"math/bits"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// usable; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter (experiment harnesses only; production
// consumers should read deltas instead).
func (c *Counter) Reset() { c.v.Store(0) }

// HistogramBuckets is the fixed number of log₂ buckets every Histogram
// carries: bucket 0 counts observations equal to 0, and bucket i (i ≥ 1)
// counts observations v with 2^(i-1) ≤ v < 2^i. 64 buckets plus the zero
// bucket cover the full uint64 range, so no observation is ever clipped.
const HistogramBuckets = 65

// Histogram is a fixed-bucket log₂ histogram. Observations are
// non-negative integers (by convention nanoseconds for *_ns metrics).
// Recording is two atomic adds and never allocates.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistogramBuckets]atomic.Uint64
}

// Observe records one observation. Negative values are clamped to 0 so a
// non-monotonic clock cannot corrupt the layout.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket in a snapshot. Lo and Hi are
// the inclusive-exclusive value range [Lo, Hi) the bucket covers.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// snapshotBuckets returns the non-empty buckets in ascending order.
func (h *Histogram) snapshotBuckets() []Bucket {
	var out []Bucket
	for i := 0; i < HistogramBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = 1 << (i - 1)
			if i < 64 {
				b.Hi = 1 << i
			} else {
				b.Hi = ^uint64(0)
			}
		} else {
			b.Hi = 1
		}
		out = append(out, b)
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket layout,
// using the geometric midpoint of the containing bucket. With log₂
// buckets the estimate is within 2× of the true value, which is the
// resolution the layout promises.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < HistogramBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1)
			return lo + lo/2 // geometric midpoint of [2^(i-1), 2^i)
		}
	}
	return 0
}

// Kind classifies a registered metric.
type Kind string

const (
	// KindCounter is a Counter owned by the registry's client.
	KindCounter Kind = "counter"
	// KindFunc is a counter-shaped metric whose value is read from a
	// callback at snapshot time (used to subsume pre-existing Stats
	// structs without moving their storage).
	KindFunc Kind = "counter"
	// KindHistogram is a log₂ Histogram.
	KindHistogram Kind = "histogram"
)

// metric is one registered metric.
type metric struct {
	name, unit, help string
	counter          *Counter
	fn               func() uint64
	hist             *Histogram
}

// MetricValue is the snapshot form of one metric, JSON-serializable.
// Counter metrics carry Value; histogram metrics carry Count, Sum, P50,
// P99 and the non-empty Buckets. Node, when set, names the node the
// entry came from ("router", "fleet", or a 16-hex provenance node
// label) — merged fleet views are concatenations of node-tagged
// snapshots, so per-node attribution survives the merge.
type MetricValue struct {
	Name    string   `json:"name"`
	Node    string   `json:"node,omitempty"`
	Kind    Kind     `json:"kind"`
	Unit    string   `json:"unit"`
	Help    string   `json:"help,omitempty"`
	Value   uint64   `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	P50     uint64   `json:"p50,omitempty"`
	P99     uint64   `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry holds a flat, name-keyed set of metrics. Metric names are
// dot-grouped snake_case ("core.events_posted", "txn.commit_wait_ns");
// the group prefix identifies the owning subsystem. Registration is
// cheap but not hot-path; reads of registered counters/histograms are
// lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) add(name string, m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.metrics[name] = m
}

// Counter registers and returns a new counter. unit is "count" unless
// the metric measures something else ("bytes", "ns").
func (r *Registry) Counter(name, unit, help string) *Counter {
	c := &Counter{}
	r.add(name, &metric{name: name, unit: unit, help: help, counter: c})
	return c
}

// EnsureCounter returns the counter registered under name, registering
// a fresh one first if absent. Use it for metrics owned by components
// that may be constructed more than once over the same database (e.g.
// two Servers sharing one db): plain Counter would panic on the second
// registration. Panics if name is registered as a different kind.
func (r *Registry) EnsureCounter(name, unit, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.counter == nil {
			panic(fmt.Sprintf("obs: metric %q already registered as a non-counter", name))
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, unit: unit, help: help, counter: c}
	return c
}

// EnsureHistogram is EnsureCounter for log₂ histograms.
func (r *Registry) EnsureHistogram(name, unit, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.hist == nil {
			panic(fmt.Sprintf("obs: metric %q already registered as a non-histogram", name))
		}
		return m.hist
	}
	h := &Histogram{}
	r.metrics[name] = &metric{name: name, unit: unit, help: help, hist: h}
	return h
}

// Func registers a counter-shaped metric backed by a callback evaluated
// at snapshot time. Used to expose counters whose storage lives
// elsewhere (the subsumed Stats structs).
func (r *Registry) Func(name, unit, help string, fn func() uint64) {
	r.add(name, &metric{name: name, unit: unit, help: help, fn: fn})
}

// Histogram registers and returns a new log₂ histogram.
func (r *Registry) Histogram(name, unit, help string) *Histogram {
	h := &Histogram{}
	r.add(name, &metric{name: name, unit: unit, help: help, hist: h})
	return h
}

// RegisterHistogram registers a caller-owned histogram, for components
// (hub, replica) whose histograms must outlive any one registry and be
// registerable on several.
func (r *Registry) RegisterHistogram(name, unit, help string, h *Histogram) {
	r.add(name, &metric{name: name, unit: unit, help: help, hist: h})
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the current value of every metric, sorted by name.
func (r *Registry) Snapshot() []MetricValue {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := make([]MetricValue, 0, len(ms))
	for _, m := range ms {
		mv := MetricValue{Name: m.name, Unit: m.unit, Help: m.help}
		switch {
		case m.counter != nil:
			mv.Kind = KindCounter
			mv.Value = m.counter.Value()
		case m.fn != nil:
			mv.Kind = KindFunc
			mv.Value = m.fn()
		case m.hist != nil:
			mv.Kind = KindHistogram
			mv.Count = m.hist.Count()
			mv.Sum = m.hist.Sum()
			mv.P50 = m.hist.Quantile(0.50)
			mv.P99 = m.hist.Quantile(0.99)
			mv.Buckets = m.hist.snapshotBuckets()
		}
		out = append(out, mv)
	}
	return out
}

// RegisterStats registers every uint64 field of the struct returned by
// snapshot as a Func counter named group + "." + snake_case(field). The
// reflection walk is what makes the surface future-proof: a counter
// added to any subsumed Stats struct appears in the registry — and in
// every generic consumer (ode-inspect, /metrics, the docs-coverage
// test) — without a hand-written print line.
//
// Units are inferred from the field name: a trailing "Ns" means
// nanoseconds, a trailing "Bytes" means bytes, anything else is a count.
// help maps field names (Go spelling, e.g. "CommitWaitNs") to help text;
// missing entries get an empty help string.
func RegisterStats(r *Registry, group string, help map[string]string, snapshot func() any) {
	t := reflect.TypeOf(snapshot())
	if t.Kind() != reflect.Struct {
		panic(fmt.Sprintf("obs: RegisterStats(%q): snapshot returns %s, want struct", group, t.Kind()))
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Uint64 {
			continue
		}
		idx := i
		name := group + "." + SnakeCase(f.Name)
		unit := "count"
		switch {
		case strings.HasSuffix(f.Name, "Ns"):
			unit = "ns"
		case strings.HasSuffix(f.Name, "Bytes"):
			unit = "bytes"
		}
		r.Func(name, unit, help[f.Name], func() uint64 {
			return reflect.ValueOf(snapshot()).Field(idx).Uint()
		})
	}
}

// SnakeCase converts a Go exported identifier to snake_case, collapsing
// acronym runs: "CommitWaitNs" → "commit_wait_ns", "WALHeals" →
// "wal_heals", "BatchMin" → "batch_min".
func SnakeCase(s string) string {
	var sb strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			// Start a new word at an upper-case rune that follows a
			// lower-case rune, or that starts a new word after an
			// acronym run (upper followed by lower).
			if i > 0 {
				prevUpper := rs[i-1] >= 'A' && rs[i-1] <= 'Z'
				nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
				if !prevUpper || nextLower {
					sb.WriteByte('_')
				}
			}
			sb.WriteRune(r - 'A' + 'a')
		} else {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
