package obs

import (
	"fmt"
	"sort"
)

// Fleet merging. A router fronting a sharded fleet answers `metrics`,
// `trace`, and `flight` by fanning out to every shard and concatenating
// the node-tagged snapshots; MergeSnapshots additionally folds the
// per-shard registries into one aggregate view. The fold is exact, not
// approximate: every Histogram shares the fixed log₂ layout
// (HistogramBuckets), so merging is a bucket-wise add keyed by the
// bucket's lower bound, and the merged quantiles are recomputed from
// the merged buckets with the same geometric-midpoint rule
// Histogram.Quantile uses.

// NodeLabel renders a provenance node ID in the same fixed-width hex
// form Cause.String uses for its node half, so a record's `node` tag
// matches the prefix of the cause IDs minted on that node.
func NodeLabel(node uint64) string { return fmt.Sprintf("%016x", node) }

// TagMetrics stamps label into every entry whose Node is still empty
// and returns snap. Entries tagged upstream (an already-merged view
// passing through a second router) keep their original attribution.
func TagMetrics(label string, snap []MetricValue) []MetricValue {
	for i := range snap {
		if snap[i].Node == "" {
			snap[i].Node = label
		}
	}
	return snap
}

// TagTraces is TagMetrics for firing-trace records.
func TagTraces(label string, recs []TraceRecord) []TraceRecord {
	for i := range recs {
		if recs[i].Node == "" {
			recs[i].Node = label
		}
	}
	return recs
}

// TagIncidents is TagMetrics for flight-recorder incidents.
func TagIncidents(label string, recs []IncidentRecord) []IncidentRecord {
	for i := range recs {
		if recs[i].Node == "" {
			recs[i].Node = label
		}
	}
	return recs
}

// MergeSnapshots folds any number of registry snapshots into one
// aggregate snapshot, summing counters and bucket-wise adding
// histograms that share a name. Kind/unit/help are taken from the first
// snapshot that carries the name; the result is sorted by name and left
// untagged (callers label it, e.g. "fleet").
func MergeSnapshots(snaps ...[]MetricValue) []MetricValue {
	merged := make(map[string]*MetricValue)
	for _, snap := range snaps {
		for i := range snap {
			mv := snap[i]
			acc, ok := merged[mv.Name]
			if !ok {
				cp := mv
				cp.Node = ""
				cp.Buckets = append([]Bucket(nil), mv.Buckets...)
				merged[mv.Name] = &cp
				continue
			}
			acc.Value += mv.Value
			acc.Count += mv.Count
			acc.Sum += mv.Sum
			acc.Buckets = mergeBuckets(acc.Buckets, mv.Buckets)
		}
	}
	out := make([]MetricValue, 0, len(merged))
	for _, acc := range merged {
		if acc.Kind == KindHistogram {
			acc.P50 = quantileFromBuckets(acc.Count, acc.Buckets, 0.50)
			acc.P99 = quantileFromBuckets(acc.Count, acc.Buckets, 0.99)
		}
		out = append(out, *acc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// mergeBuckets adds b into a bucket-wise. Because every histogram uses
// the same fixed log₂ layout, buckets with equal Lo cover the same
// value range and their counts add exactly; both inputs are ascending
// by Lo, so this is a linear merge.
func mergeBuckets(a, b []Bucket) []Bucket {
	out := make([]Bucket, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Lo == b[j].Lo:
			m := a[i]
			m.Count += b[j].Count
			out = append(out, m)
			i++
			j++
		case a[i].Lo < b[j].Lo:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// quantileFromBuckets is Histogram.Quantile over a merged snapshot:
// same rank rule, same geometric-midpoint estimate.
func quantileFromBuckets(total uint64, buckets []Bucket, q float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for _, b := range buckets {
		seen += b.Count
		if seen > rank {
			if b.Lo == 0 {
				return 0
			}
			return b.Lo + b.Lo/2
		}
	}
	return 0
}
