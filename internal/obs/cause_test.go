package obs

import (
	"sync"
	"testing"
)

func TestCauseStringParseRoundTrip(t *testing.T) {
	cases := []Cause{
		{Node: 1, Seq: 1},
		{Node: 0xDEADBEEFCAFEF00D, Seq: 42},
		{Node: 1, Seq: 0}, // seq 0 with a node is still non-zero
		{Node: 0, Seq: 7}, // node 0 with a seq is still non-zero
		{Node: ^uint64(0), Seq: ^uint64(0)},
	}
	for _, c := range cases {
		s := c.String()
		got, ok := ParseCause(s)
		if !ok {
			t.Fatalf("ParseCause(%q) not ok", s)
		}
		if got != c {
			t.Fatalf("round trip %v -> %q -> %v", c, s, got)
		}
	}
}

func TestCauseZero(t *testing.T) {
	var z Cause
	if !z.IsZero() {
		t.Fatal("zero Cause not IsZero")
	}
	if z.String() != "" {
		t.Fatalf("zero Cause String = %q, want empty", z.String())
	}
	if c, ok := ParseCause(""); !ok || !c.IsZero() {
		t.Fatalf("ParseCause(\"\") = %v, %v; want zero, true", c, ok)
	}
	// The explicit spelling of the zero cause is rejected: the empty
	// string is its only encoding.
	if _, ok := ParseCause("0000000000000000-0"); ok {
		t.Fatal("ParseCause accepted the spelled-out zero cause")
	}
}

func TestParseCauseRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"nonsense",
		"deadbeef-1",                            // node too short
		"00000000000000001-1",                   // node too long
		"000000000000000g-1",                    // bad hex
		"0000000000000001-",                     // missing seq
		"0000000000000001-x",                    // bad seq
		"0000000000000001-18446744073709551616", // seq overflows uint64
		"0000000000000001",                      // no dash
	} {
		if _, ok := ParseCause(s); ok {
			t.Errorf("ParseCause(%q) unexpectedly ok", s)
		}
	}
}

func TestCausesNextMonotonicConcurrent(t *testing.T) {
	src := NewCauses()
	if src.Node() == 0 {
		t.Fatal("NewCauses assigned node 0")
	}
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		seen[g] = make(map[uint64]bool, per)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c := src.Next()
				if c.IsZero() {
					t.Error("Next returned zero Cause")
					return
				}
				seen[g][c.Seq] = true
			}
		}(g)
	}
	wg.Wait()
	all := make(map[uint64]bool, goroutines*per)
	for _, m := range seen {
		for s := range m {
			if all[s] {
				t.Fatalf("duplicate seq %d", s)
			}
			all[s] = true
		}
	}
	if len(all) != goroutines*per {
		t.Fatalf("got %d unique seqs, want %d", len(all), goroutines*per)
	}
}

func TestCausesSetNode(t *testing.T) {
	src := NewCauses()
	src.SetNode(0xABCD)
	if c := src.Next(); c.Node != 0xABCD {
		t.Fatalf("node = %x, want abcd", c.Node)
	}
	src.SetNode(0) // refuses node 0
	if c := src.Next(); c.Node == 0 {
		t.Fatal("SetNode(0) left node 0")
	}
}

func TestCauseNoteRoundTrip(t *testing.T) {
	cases := []struct{ self, parent Cause }{
		{Cause{Node: 0x1111, Seq: 7}, Cause{Node: 0x2222, Seq: 3}},
		{Cause{Node: 0x1111, Seq: 7}, Cause{}}, // root posting: zero parent
		{Cause{Node: ^uint64(0), Seq: ^uint64(0)}, Cause{Node: ^uint64(0), Seq: ^uint64(0)}},
		{Cause{Node: 0xDEAD, Seq: 1 << 40}, Cause{Node: 0xBEEF, Seq: 1}},
	}
	for _, c := range cases {
		b := EncodeCauseNote(c.self, c.parent)
		if len(b) > MaxCauseNoteLen {
			t.Fatalf("encoded length %d exceeds MaxCauseNoteLen %d", len(b), MaxCauseNoteLen)
		}
		gs, gp, ok := DecodeCauseNote(b)
		if !ok || gs != c.self || gp != c.parent {
			t.Fatalf("decode = %v, %v, %v; want %v, %v, true", gs, gp, ok, c.self, c.parent)
		}
	}
	// The note is carried on every originating commit record, so a root
	// posting (the common case) must encode compactly.
	root := EncodeCauseNote(Cause{Node: 0xDEADBEEFCAFEF00D, Seq: 42}, Cause{})
	parented := EncodeCauseNote(Cause{Node: 0xDEADBEEFCAFEF00D, Seq: 42}, Cause{Node: 1, Seq: 1})
	if len(root) >= len(parented) {
		t.Fatalf("root note (%dB) not smaller than parented note (%dB)", len(root), len(parented))
	}
	if len(root) > 12 {
		t.Fatalf("root note is %d bytes, want ≤12", len(root))
	}
}

func TestDecodeCauseNoteRejectsForeign(t *testing.T) {
	good := EncodeCauseNote(Cause{Node: 1, Seq: 1}, Cause{Node: 2, Seq: 2})
	unknownFlags := append([]byte{}, good...)
	unknownFlags[1] |= 0x80
	for _, b := range [][]byte{
		nil,
		{},
		good[:len(good)-1],                   // truncated
		append(append([]byte{}, good...), 0), // trailing garbage
		append([]byte{0x00}, good[1:]...),    // wrong magic
		unknownFlags,                         // future format flags
		[]byte("this is application commit data, not a note!"),
	} {
		if _, _, ok := DecodeCauseNote(b); ok {
			t.Errorf("DecodeCauseNote accepted %d-byte foreign payload", len(b))
		}
	}
}
