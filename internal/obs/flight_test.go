package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRingOrderAndOverwrite(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 1; i <= 6; i++ {
		f.Record(IncCommit, Cause{Node: 1, Seq: uint64(i)}, Cause{}, uint64(i), "")
	}
	recs := f.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot length %d, want ring capacity 4", len(recs))
	}
	// Oldest-first: incidents 3..6 survive, 1 and 2 were overwritten.
	for i, r := range recs {
		if want := uint64(i + 3); r.Value != want {
			t.Fatalf("slot %d value %d, want %d", i, r.Value, want)
		}
	}
	if f.Total() != 6 {
		t.Fatalf("Total = %d, want 6", f.Total())
	}
}

func TestFlightDisabled(t *testing.T) {
	f := NewFlightRecorder(4)
	f.SetEnabled(false)
	if f.Enabled() {
		t.Fatal("Enabled after SetEnabled(false)")
	}
	f.Record(IncCommit, Cause{Node: 1, Seq: 1}, Cause{}, 1, "")
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled recorder captured %d incidents", len(got))
	}
	f.SetEnabled(true)
	f.Record(IncCommit, Cause{Node: 1, Seq: 2}, Cause{}, 2, "")
	if got := f.Snapshot(); len(got) != 1 {
		t.Fatalf("re-enabled recorder captured %d incidents, want 1", len(got))
	}
}

func TestFlightZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(64)
	cause := Cause{Node: 7, Seq: 1}
	// Enabled path: slot write only, no allocations.
	if n := testing.AllocsPerRun(200, func() {
		f.Record(IncDetachedRetry, cause, Cause{}, 3, "T1")
	}); n != 0 {
		t.Errorf("enabled Record allocates %v per call, want 0", n)
	}
	f.SetEnabled(false)
	if n := testing.AllocsPerRun(200, func() {
		f.Record(IncDetachedRetry, cause, Cause{}, 3, "T1")
	}); n != 0 {
		t.Errorf("disabled Record allocates %v per call, want 0", n)
	}
}

func TestFlightConcurrentWriters(t *testing.T) {
	f := NewFlightRecorder(128)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := Cause{Node: uint64(g + 1)}
			for i := 0; i < per; i++ {
				c.Seq = uint64(i + 1)
				f.Record(IncCommit, c, Cause{}, uint64(i), "concurrent")
				if i%100 == 0 {
					f.Snapshot() // readers race writers under -race
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Total() != goroutines*per {
		t.Fatalf("Total = %d, want %d", f.Total(), goroutines*per)
	}
	recs := f.Snapshot()
	if len(recs) != 128 {
		t.Fatalf("snapshot length %d, want full ring 128", len(recs))
	}
	for i, r := range recs {
		if r.Kind != IncCommit || r.Cause == "" {
			t.Fatalf("slot %d torn: kind %q cause %q", i, r.Kind, r.Cause)
		}
	}
}

func TestFlightDump(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(IncActionPanic, Cause{Node: 0xAB, Seq: 9}, Cause{Node: 0xAB, Seq: 4}, 0, "DenyCredit")
	f.Record(IncPromotion, Cause{}, Cause{}, 17, "was replica of 127.0.0.1:7047")
	var sb strings.Builder
	f.Dump(&sb, "test reason")
	out := sb.String()
	for _, want := range []string{
		"test reason",
		"2 incidents",
		IncActionPanic,
		"cause=00000000000000ab-9",
		"parent=00000000000000ab-4",
		"DenyCredit",
		IncPromotion,
		"value=17",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFlightKindsListed(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range IncidentKinds {
		if k == "" {
			t.Fatal("empty incident kind")
		}
		if seen[k] {
			t.Fatalf("duplicate incident kind %q", k)
		}
		seen[k] = true
	}
	if len(IncidentKinds) != 10 {
		t.Fatalf("IncidentKinds has %d entries, want 10", len(IncidentKinds))
	}
}
