package obs

import (
	"testing"
)

func TestHistogramBucketLayout(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	// -5 clamps to 0, so sum excludes it.
	if got := h.Sum(); got != 0+1+2+3+4+7+8+1023+1024 {
		t.Fatalf("Sum = %d", got)
	}
	type rng struct{ lo, hi, n uint64 }
	wantBuckets := []rng{
		{0, 1, 2},       // 0 and the clamped -5
		{1, 2, 1},       // 1
		{2, 4, 2},       // 2, 3
		{4, 8, 2},       // 4, 7
		{8, 16, 1},      // 8
		{512, 1024, 1},  // 1023
		{1024, 2048, 1}, // 1024
	}
	got := h.snapshotBuckets()
	if len(got) != len(wantBuckets) {
		t.Fatalf("buckets = %+v, want %d non-empty", got, len(wantBuckets))
	}
	for i, w := range wantBuckets {
		b := got[i]
		if b.Lo != w.lo || b.Hi != w.hi || b.Count != w.n {
			t.Errorf("bucket %d = [%d,%d)x%d, want [%d,%d)x%d", i, b.Lo, b.Hi, b.Count, w.lo, w.hi, w.n)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket [64,128)
	}
	h.Observe(100000) // bucket [65536,131072)
	if q := h.Quantile(0.5); q != 64+32 {
		t.Fatalf("P50 = %d, want geometric midpoint 96", q)
	}
	if q := h.Quantile(1.0); q != 65536+32768 {
		t.Fatalf("P100 = %d, want midpoint of top bucket", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b", "count", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("a.b", "count", "")
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("z.last", "count", "")
	c.Add(7)
	h := r.Histogram("a.first_ns", "ns", "")
	h.Observe(5)
	r.Func("m.middle", "count", "", func() uint64 { return 42 })
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics", len(snap))
	}
	if snap[0].Name != "a.first_ns" || snap[1].Name != "m.middle" || snap[2].Name != "z.last" {
		t.Fatalf("snapshot order: %s, %s, %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[0].Kind != KindHistogram || snap[0].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", snap[0])
	}
	if snap[1].Value != 42 || snap[2].Value != 7 {
		t.Fatalf("values = %d, %d", snap[1].Value, snap[2].Value)
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"EventsPosted": "events_posted",
		"CommitWaitNs": "commit_wait_ns",
		"WALHeals":     "wal_heals",
		"BatchMin":     "batch_min",
		"LogBytes":     "log_bytes",
		"Fsyncs":       "fsyncs",
	} {
		if got := SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisterStatsReflection(t *testing.T) {
	type fakeStats struct {
		Reads        uint64
		CommitWaitNs uint64
		LogBytes     uint64
		NotACounter  string
		hidden       uint64
	}
	s := fakeStats{Reads: 3, CommitWaitNs: 9, LogBytes: 12, hidden: 1}
	r := NewRegistry()
	RegisterStats(r, "fake", map[string]string{"Reads": "reads help"}, func() any { return s })
	byName := map[string]MetricValue{}
	for _, m := range r.Snapshot() {
		byName[m.Name] = m
	}
	if len(byName) != 3 {
		t.Fatalf("registered %d metrics, want 3: %v", len(byName), r.Names())
	}
	if m := byName["fake.reads"]; m.Value != 3 || m.Unit != "count" || m.Help != "reads help" {
		t.Fatalf("fake.reads = %+v", m)
	}
	if m := byName["fake.commit_wait_ns"]; m.Value != 9 || m.Unit != "ns" {
		t.Fatalf("fake.commit_wait_ns = %+v", m)
	}
	if m := byName["fake.log_bytes"]; m.Value != 12 || m.Unit != "bytes" {
		t.Fatalf("fake.log_bytes = %+v", m)
	}
	// Func metrics read the live snapshot each time.
	s.Reads = 5
	// s is captured by value above, so the value must still be 3: the
	// closure snapshots at registration call sites pass a func returning
	// fresh state in production. Re-register with a pointer-backed func to
	// verify liveness.
	r2 := NewRegistry()
	live := &fakeStats{}
	RegisterStats(r2, "live", nil, func() any { return *live })
	live.Reads = 8
	for _, m := range r2.Snapshot() {
		if m.Name == "live.reads" && m.Value != 8 {
			t.Fatalf("live.reads = %d, want 8", m.Value)
		}
	}
}
