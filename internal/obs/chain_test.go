package obs

import "testing"

// TestAssembleChainCrossNode reconstructs the canonical cross-shard
// cascade from its flat parts:
//
//	c0 (trace, node A: root posting)
//	└── c1 (hop, node A: outbox capture) + (ingest_hop incident, node B)
//	    └── c2 (trace, node B: the ingested posting)
//	        └── c3 (trace, node B: completing posting whose fire step
//	                carries c2 — linked via the completion edge)
func TestAssembleChainCrossNode(t *testing.T) {
	c0, c1, c2, c3 := "00000000000000a0-1", "00000000000000a0-2", "00000000000000b0-1", "00000000000000b0-2"
	traces := TraceChainEvents("nodeA", []TraceRecord{
		{ID: 1, StartUnixNs: 100, Cause: c0, Event: "Kick"},
	})
	traces = append(traces, TraceChainEvents("nodeB", []TraceRecord{
		{ID: 1, StartUnixNs: 300, Cause: c2, ParentCause: c1, Event: "First"},
		{ID: 2, StartUnixNs: 400, Cause: c3, Event: "Second",
			Steps: []Step{{Kind: StepFire, Trigger: "Pair", Cause: c2}}},
	})...)
	incidents := IncidentChainEvents("nodeB", []IncidentRecord{
		{TUnixNs: 250, Kind: IncIngestHop, Cause: c1, ParentCause: c0},
		{TUnixNs: 50, Kind: IncCommit}, // no cause: never enters the chain
	})
	hop := ChainEvent{Node: "nodeA", Kind: ChainHop, TUnixNs: 200, Cause: c1, ParentCause: c0, Detail: "outbox First"}

	evs := append(append(traces, incidents...), hop)
	root := AssembleChain(c0, evs)

	if root.Cause != c0 || len(root.Events) != 1 || root.Events[0].Kind != ChainTrace {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Cause != c1 {
		t.Fatalf("c0 children = %+v", root.Children)
	}
	n1 := root.Children[0]
	kinds := map[string]bool{}
	for _, ev := range n1.Events {
		kinds[ev.Kind] = true
	}
	if !kinds[ChainHop] || !kinds[ChainIncident] {
		t.Fatalf("c1 events missing hop/incident: %+v", n1.Events)
	}
	if len(n1.Children) != 1 || n1.Children[0].Cause != c2 {
		t.Fatalf("c1 children = %+v", n1.Children)
	}
	n2 := n1.Children[0]
	if n2.Events[0].Node != "nodeB" {
		t.Fatalf("c2 node = %q, want nodeB", n2.Events[0].Node)
	}
	if len(n2.Children) != 1 || n2.Children[0].Cause != c3 {
		t.Fatalf("c2 children = %+v (completion edge missing?)", n2.Children)
	}
	var completion *ChainEvent
	for i := range n2.Children[0].Events {
		if n2.Children[0].Events[i].Kind == ChainCompletion {
			completion = &n2.Children[0].Events[i]
		}
	}
	if completion == nil || completion.ParentCause != c2 {
		t.Fatalf("c3 completion edge = %+v", completion)
	}
}

// TestAssembleChainCycleGuard: corrupt input with a parent cycle must
// terminate and keep each cause at most once.
func TestAssembleChainCycleGuard(t *testing.T) {
	a, b := "0000000000000001-1", "0000000000000001-2"
	root := AssembleChain(a, []ChainEvent{
		{Kind: ChainHop, Cause: b, ParentCause: a},
		{Kind: ChainHop, Cause: a, ParentCause: b},
	})
	if len(root.Children) != 1 || root.Children[0].Cause != b {
		t.Fatalf("children = %+v", root.Children)
	}
	if len(root.Children[0].Children) != 0 {
		t.Fatalf("cycle not guarded: %+v", root.Children[0].Children)
	}
}

// TestAssembleChainDeterministicOrder: children sort by earliest event
// time, then cause ID.
func TestAssembleChainDeterministicOrder(t *testing.T) {
	root, late, early := "0000000000000002-1", "0000000000000002-2", "0000000000000002-3"
	n := AssembleChain(root, []ChainEvent{
		{Kind: ChainHop, Cause: root},
		{Kind: ChainHop, TUnixNs: 900, Cause: late, ParentCause: root},
		{Kind: ChainHop, TUnixNs: 100, Cause: early, ParentCause: root},
	})
	if len(n.Children) != 2 || n.Children[0].Cause != early || n.Children[1].Cause != late {
		t.Fatalf("children order = %+v", n.Children)
	}
}
