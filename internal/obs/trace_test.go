package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	tr.SetRate(1)
	for i := 1; i <= 6; i++ {
		tc := tr.Start(uint32(i), fmt.Sprintf("ev%d", i), uint64(i))
		tc.Add(Step{Kind: StepFire, Trigger: "t"})
		tr.Publish(tc)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(snap))
	}
	for i, rec := range snap {
		wantEv := fmt.Sprintf("ev%d", i+3) // oldest first: ev3..ev6
		if rec.Event != wantEv {
			t.Errorf("snapshot[%d].Event = %q, want %q", i, rec.Event, wantEv)
		}
		if len(rec.Steps) != 1 || rec.Steps[0].Kind != StepFire {
			t.Errorf("snapshot[%d].Steps = %+v", i, rec.Steps)
		}
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer(8)
	if tr.Sampled() {
		t.Fatal("rate 0 sampled a posting")
	}
	tr.SetRate(3)
	n := 0
	for i := 0; i < 300; i++ {
		if tr.Sampled() {
			n++
		}
	}
	if n != 100 {
		t.Fatalf("rate 3 sampled %d of 300 postings, want 100", n)
	}
}

// TestTracerDisabledZeroAlloc proves the hot-path gate is allocation-free
// when tracing is off — the acceptance criterion for leaving the tracer
// compiled into the posting path.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	tr := NewTracer(8)
	var nilTrace *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Sampled() {
			t.Fatal("sampled with rate 0")
		}
		nilTrace.Add(Step{Kind: StepFire}) // unsampled sites call Add on nil
		nilTrace.Pin()
		nilTrace.Done()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per posting, want 0", allocs)
	}
}

// TestTracerConcurrent exercises concurrent Start/Add/Publish from many
// posting goroutines, pinned firings appending after Publish, and
// snapshots racing with eviction. Run under -race this is the memory-
// safety proof for the pool/refcount scheme; the assertions check that
// every snapshotted trace is internally well-ordered.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	tr.SetRate(1)
	const posters = 8
	const perPoster = 200
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				if !tr.Sampled() {
					continue
				}
				tc := tr.Start(uint32(p), fmt.Sprintf("p%d", p), uint64(i))
				tc.Add(Step{Kind: StepTransition, From: 0, To: 1})
				tc.Add(Step{Kind: StepFire, Trigger: "t", Coupling: "immediate"})
				tc.Pin() // a queued firing
				tr.Publish(tc)
				// The detached firing appends after Publish, then drops
				// its pin (possibly recycling the trace if evicted).
				tc.Add(Step{Kind: StepActionEnd, Trigger: "t"})
				tc.Done()
			}
		}(p)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 100; i++ {
			for _, rec := range tr.Snapshot() {
				last := int64(-1)
				for _, s := range rec.Steps {
					if s.TNs < last {
						t.Errorf("trace %d steps out of order: %d after %d", rec.ID, s.TNs, last)
						return
					}
					last = s.TNs
				}
			}
		}
	}()
	wg.Wait()
	snapWG.Wait()

	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("ring holds %d traces, want 16", len(snap))
	}
	for _, rec := range snap {
		if len(rec.Steps) != 3 {
			t.Fatalf("settled trace %d has %d steps, want 3: %+v", rec.ID, len(rec.Steps), rec.Steps)
		}
	}
}
