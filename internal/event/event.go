// Package event implements Ode's run-time representation of basic events.
//
// The paper (§5.2) represents every basic event — member-function events,
// user-defined events, and transaction events — as an instance of type
// eventRep carrying a globally unique small integer. Because of separate
// compilation, Ode cannot assign those integers at compile time; instead the
// eventRep constructor consults a run-time table keyed by the pair
// (local event number, class descriptor) and either reuses a previously
// assigned integer or allocates the next one. This package reproduces that
// scheme: a Registry maps (class, local event) pairs to dense unique IDs,
// and the same pair always yields the same ID for the life of the registry.
//
// §6 of the paper explains why global unique integers matter: with
// per-class numbering, multiple inheritance can give two distinct inherited
// events the same number, forcing remapping; with globally unique IDs the
// sparse transition representation needs no remapping at all.
package event

import (
	"fmt"
	"sync"
)

// ID is the globally unique integer assigned to a basic event at run time.
// The zero value is reserved as "no event".
type ID uint32

// None is the reserved invalid event ID.
const None ID = 0

// Kind classifies a basic event. The paper's basic events are member
// function events (before/after), user-defined events, and the two
// transaction events before tcomplete and before tabort (§5.1, §5.5). The
// pseudo-events True and False are produced internally by mask states
// (§5.1.2) and never posted by applications.
type Kind uint8

const (
	// KindBefore is a "before member-function" event.
	KindBefore Kind = iota
	// KindAfter is an "after member-function" event.
	KindAfter
	// KindUser is a user-defined event, posted explicitly by the
	// application (like BigBuy in the paper's §4 example).
	KindUser
	// KindTxn is a transaction event (before tcomplete, before tabort).
	KindTxn
	// KindPseudo is a mask pseudo-event (True or False). Pseudo events
	// are internal to the FSM machinery.
	KindPseudo
)

// String returns the O++-style spelling of the kind prefix.
func (k Kind) String() string {
	switch k {
	case KindBefore:
		return "before"
	case KindAfter:
		return "after"
	case KindUser:
		return "user"
	case KindTxn:
		return "txn"
	case KindPseudo:
		return "pseudo"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Decl is a declared event: the (kind, name) pair appearing in an O++
// event declaration such as
//
//	event after Buy, after PayBill, BigBuy;
//
// Member-function events name the member function; user events name
// themselves; transaction events use the fixed names "tcomplete" and
// "tabort".
type Decl struct {
	Kind Kind
	Name string
}

// String renders the declaration the way the paper writes events,
// e.g. "after Buy" or "BigBuy".
func (d Decl) String() string {
	switch d.Kind {
	case KindUser:
		return d.Name
	default:
		return d.Kind.String() + " " + d.Name
	}
}

// Before, After, User and Txn are convenience constructors for Decls.
func Before(name string) Decl { return Decl{KindBefore, name} }

// After builds an "after name" member-function event declaration.
func After(name string) Decl { return Decl{KindAfter, name} }

// User builds a user-defined event declaration.
func User(name string) Decl { return Decl{KindUser, name} }

// Txn builds a transaction event declaration ("tcomplete" or "tabort").
func Txn(name string) Decl { return Decl{KindTxn, name} }

// Transaction event declarations. The paper supports exactly these two;
// after tabort and after tcommit were deliberately dropped (§6).
var (
	BeforeTComplete = Decl{KindTxn, "tcomplete"}
	BeforeTAbort    = Decl{KindTxn, "tabort"}
)

// key identifies an underlying event for unique-integer assignment: the
// paper's eventRep constructor takes (local event number, type descriptor).
// We key on (class name, kind, event name), which is the same identity the
// pair encodes — a class's local numbering is just an enumeration of its
// declared (kind, name) events.
type key struct {
	class string
	kind  Kind
	name  string
}

// Registry assigns globally unique IDs to underlying events at run time,
// exactly once per distinct event, mirroring the eventRep constructor's
// table (§5.2). It is safe for concurrent use: separate "applications"
// (sessions) share one registry per process.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[key]ID
	byID    []Info // index = ID; entry 0 is a placeholder for None
	pseudoT ID
	pseudoF ID
}

// Info describes a registered event.
type Info struct {
	ID    ID
	Class string // declaring class; empty for transaction and pseudo events
	Decl  Decl
}

// String renders the event with its declaring class, e.g. "CredCard::after Buy".
func (i Info) String() string {
	if i.Class == "" {
		return i.Decl.String()
	}
	return i.Class + "::" + i.Decl.String()
}

// NewRegistry returns a registry with the two transaction events and the
// two mask pseudo-events pre-registered (they exist independently of any
// class declaration).
func NewRegistry() *Registry {
	r := &Registry{
		byKey: make(map[key]ID),
		byID:  make([]Info, 1, 16), // slot 0 = None
	}
	// Transaction events are class-independent.
	r.Register("", BeforeTComplete)
	r.Register("", BeforeTAbort)
	// Pseudo events are produced by mask states.
	r.pseudoT = r.Register("", Decl{KindPseudo, "True"})
	r.pseudoF = r.Register("", Decl{KindPseudo, "False"})
	return r
}

// Register assigns (or retrieves) the unique ID for the event declared by
// class. Calling Register twice with the same (class, decl) pair returns
// the same ID — the paper's "the current constructor uses the unique
// integer assigned by the previous constructor" behaviour.
func (r *Registry) Register(class string, d Decl) ID {
	k := key{class, d.Kind, d.Name}
	r.mu.RLock()
	id, ok := r.byKey[k]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok = r.byKey[k]; ok {
		return id
	}
	id = ID(len(r.byID))
	r.byKey[k] = id
	r.byID = append(r.byID, Info{ID: id, Class: class, Decl: d})
	return id
}

// Lookup returns the ID previously assigned to (class, decl), or None if
// the event was never registered.
func (r *Registry) Lookup(class string, d Decl) ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byKey[key{class, d.Kind, d.Name}]
}

// Info returns the description of a registered event. The ok result is
// false for None and for IDs never assigned.
func (r *Registry) Info(id ID) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id == None || int(id) >= len(r.byID) {
		return Info{}, false
	}
	return r.byID[id], true
}

// True and False return the IDs of the mask pseudo-events.
func (r *Registry) True() ID { return r.pseudoT }

// False returns the ID of the False pseudo-event.
func (r *Registry) False() ID { return r.pseudoF }

// TComplete and TAbort return the IDs of the transaction events.
func (r *Registry) TComplete() ID { return r.Lookup("", BeforeTComplete) }

// TAbort returns the ID of the before-tabort transaction event.
func (r *Registry) TAbort() ID { return r.Lookup("", BeforeTAbort) }

// Len reports how many events have been registered (excluding None).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID) - 1
}
