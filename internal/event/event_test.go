package event

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegistryAssignsDistinctIDs(t *testing.T) {
	r := NewRegistry()
	buy := r.Register("CredCard", After("Buy"))
	pay := r.Register("CredCard", After("PayBill"))
	big := r.Register("CredCard", User("BigBuy"))
	if buy == pay || buy == big || pay == big {
		t.Fatalf("distinct events got colliding IDs: %d %d %d", buy, pay, big)
	}
	for _, id := range []ID{buy, pay, big} {
		if id == None {
			t.Fatalf("valid event assigned None")
		}
	}
}

func TestRegistryIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Register("CredCard", After("Buy"))
	b := r.Register("CredCard", After("Buy"))
	if a != b {
		t.Fatalf("same event registered twice got different IDs: %d vs %d", a, b)
	}
}

func TestSameNameDifferentClassDiffers(t *testing.T) {
	// §6: multiple inheritance means two classes' events must not share
	// integers even when locally numbered the same.
	r := NewRegistry()
	a := r.Register("CredCard", After("Buy"))
	b := r.Register("DebitCard", After("Buy"))
	if a == b {
		t.Fatalf("events from distinct classes collided on ID %d", a)
	}
}

func TestBeforeAfterDiffer(t *testing.T) {
	r := NewRegistry()
	if r.Register("C", Before("Buy")) == r.Register("C", After("Buy")) {
		t.Fatal("before Buy and after Buy got the same ID")
	}
}

func TestPreRegisteredEvents(t *testing.T) {
	r := NewRegistry()
	if r.TComplete() == None || r.TAbort() == None {
		t.Fatal("transaction events not pre-registered")
	}
	if r.True() == None || r.False() == None {
		t.Fatal("pseudo events not pre-registered")
	}
	if r.True() == r.False() {
		t.Fatal("True and False share an ID")
	}
}

func TestLookupUnregistered(t *testing.T) {
	r := NewRegistry()
	if got := r.Lookup("Nope", After("Never")); got != None {
		t.Fatalf("Lookup of unregistered event = %d, want None", got)
	}
}

func TestInfoRoundTrip(t *testing.T) {
	r := NewRegistry()
	id := r.Register("CredCard", After("Buy"))
	info, ok := r.Info(id)
	if !ok {
		t.Fatal("Info() not found for registered event")
	}
	if info.Class != "CredCard" || info.Decl.Name != "Buy" || info.Decl.Kind != KindAfter {
		t.Fatalf("Info round trip mismatch: %+v", info)
	}
	if _, ok := r.Info(None); ok {
		t.Fatal("Info(None) reported ok")
	}
	if _, ok := r.Info(ID(9999)); ok {
		t.Fatal("Info(unassigned) reported ok")
	}
}

func TestDeclString(t *testing.T) {
	cases := []struct {
		d    Decl
		want string
	}{
		{After("Buy"), "after Buy"},
		{Before("Buy"), "before Buy"},
		{User("BigBuy"), "BigBuy"},
		{BeforeTComplete, "txn tcomplete"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Decl%v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestInfoString(t *testing.T) {
	r := NewRegistry()
	id := r.Register("CredCard", After("Buy"))
	info, _ := r.Info(id)
	if got := info.String(); got != "CredCard::after Buy" {
		t.Errorf("Info.String() = %q", got)
	}
	tc, _ := r.Info(r.TComplete())
	if got := tc.String(); got != "txn tcomplete" {
		t.Errorf("txn Info.String() = %q", got)
	}
}

// Property: for any sequence of registrations, IDs are dense, unique, and
// stable under re-registration (the paper's eventRep invariant: each
// underlying event maps to exactly one integer and no two distinct events
// map to the same integer).
func TestRegistryUniquenessProperty(t *testing.T) {
	f := func(classes []uint8, names []uint8) bool {
		r := NewRegistry()
		seen := make(map[ID]string)
		base := r.Len()
		for i := range classes {
			for j := range names {
				class := fmt.Sprintf("C%d", classes[i]%8)
				name := fmt.Sprintf("m%d", names[j]%8)
				id := r.Register(class, After(name))
				keyStr := class + "/" + name
				if prev, ok := seen[id]; ok && prev != keyStr {
					return false // collision
				}
				seen[id] = keyStr
				if r.Register(class, After(name)) != id {
					return false // not idempotent
				}
			}
		}
		return r.Len() == base+len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const events = 100
	ids := make([][]ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]ID, events)
			for e := 0; e < events; e++ {
				ids[w][e] = r.Register("C", After(fmt.Sprintf("m%d", e)))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for e := 0; e < events; e++ {
			if ids[w][e] != ids[0][e] {
				t.Fatalf("worker %d got ID %d for event %d, worker 0 got %d",
					w, ids[w][e], e, ids[0][e])
			}
		}
	}
	if r.Len() != 4+events { // 2 txn + 2 pseudo pre-registered
		t.Fatalf("registry has %d events, want %d", r.Len(), 4+events)
	}
}

func TestKindString(t *testing.T) {
	if KindAfter.String() != "after" || KindBefore.String() != "before" {
		t.Fatal("Kind.String wrong for before/after")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatalf("unknown kind string = %q", Kind(200).String())
	}
}
