// Package workload generates deterministic synthetic workloads for the
// experiments in EXPERIMENTS.md. The paper evaluates Ode qualitatively on
// credit-card monitoring (§4) and motivates composite events with program
// trading (§1, §8); these generators produce both shapes, plus generic
// event streams for the detector benchmarks.
//
// Substitution note (DESIGN.md): the original work had no published
// workload traces, so every experiment runs on these seeded generators;
// all comparisons are therefore self-relative, which is exactly what the
// paper's claims (who wins, in which direction) require.
package workload

import (
	"fmt"
	"math/rand"
)

// CardOpKind enumerates credit-card operations.
type CardOpKind uint8

const (
	// OpBuy invokes Buy(amount).
	OpBuy CardOpKind = iota
	// OpPay invokes PayBill(amount).
	OpPay
	// OpBigBuy posts the user-defined BigBuy event.
	OpBigBuy
	// OpQuery invokes the read-only GoodCredHist.
	OpQuery
)

func (k CardOpKind) String() string {
	switch k {
	case OpBuy:
		return "buy"
	case OpPay:
		return "pay"
	case OpBigBuy:
		return "bigbuy"
	case OpQuery:
		return "query"
	default:
		return fmt.Sprintf("CardOpKind(%d)", uint8(k))
	}
}

// CardOp is one operation against one card.
type CardOp struct {
	Kind   CardOpKind
	Card   int // card index in [0, Cards)
	Amount float64
}

// CardMix sets the percentage of each operation kind; the remainder after
// Buy+Pay+BigBuy becomes queries. Percentages must sum to at most 100.
type CardMix struct {
	BuyPct    int
	PayPct    int
	BigBuyPct int
}

// DefaultCardMix is a write-heavy monitoring mix.
var DefaultCardMix = CardMix{BuyPct: 50, PayPct: 30, BigBuyPct: 5}

// ReadMostlyCardMix is the mix for the lock-amplification experiment: the
// §6 effect appears when reads dominate and triggers turn them into
// writes.
var ReadMostlyCardMix = CardMix{BuyPct: 5, PayPct: 5, BigBuyPct: 0}

// CardStream generates n operations over cards cards. Hotspot is the
// probability (percent) that an operation targets card 0 — raising it
// concentrates conflicts for the lock experiments.
func CardStream(seed int64, n, cards int, mix CardMix, hotspotPct int) []CardOp {
	if cards <= 0 {
		cards = 1
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]CardOp, n)
	for i := range out {
		card := r.Intn(cards)
		if hotspotPct > 0 && r.Intn(100) < hotspotPct {
			card = 0
		}
		p := r.Intn(100)
		var op CardOp
		switch {
		case p < mix.BuyPct:
			op = CardOp{Kind: OpBuy, Card: card, Amount: float64(1 + r.Intn(500))}
		case p < mix.BuyPct+mix.PayPct:
			op = CardOp{Kind: OpPay, Card: card, Amount: float64(1 + r.Intn(400))}
		case p < mix.BuyPct+mix.PayPct+mix.BigBuyPct:
			op = CardOp{Kind: OpBigBuy, Card: card}
		default:
			op = CardOp{Kind: OpQuery, Card: card}
		}
		out[i] = op
	}
	return out
}

// Tick is one market data point for the trading example/benchmarks.
type Tick struct {
	Symbol string
	Price  float64
}

// TickStream produces a random-walk price stream over the given symbols,
// starting at start with per-step volatility vol (fraction, e.g. 0.02).
func TickStream(seed int64, n int, symbols []string, start, vol float64) []Tick {
	r := rand.New(rand.NewSource(seed))
	price := make(map[string]float64, len(symbols))
	for _, s := range symbols {
		price[s] = start
	}
	out := make([]Tick, n)
	for i := range out {
		s := symbols[r.Intn(len(symbols))]
		p := price[s] * (1 + vol*(r.Float64()*2-1))
		if p < 1 {
			p = 1
		}
		price[s] = p
		out[i] = Tick{Symbol: s, Price: p}
	}
	return out
}

// EventStream produces n indexes uniform over an alphabet of size k —
// raw input for the detector benchmarks (E5, E6).
func EventStream(seed int64, n, k int) []int {
	r := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(k)
	}
	return out
}

// Expressions returns event expressions of increasing nesting depth over
// an alphabet {E0..E(k-1)}, used to sweep detector cost with expression
// complexity (E5, E13).
func Expressions(k int) []string {
	name := func(i int) string { return fmt.Sprintf("E%d", i%k) }
	return []string{
		// depth 1: single event
		name(0),
		// depth 2: sequence
		fmt.Sprintf("%s, %s", name(0), name(1)),
		// depth 3: relative with union
		fmt.Sprintf("relative((%s || %s), %s)", name(0), name(1), name(2%k)),
		// depth 4: star + sequence + union
		fmt.Sprintf("*(%s || %s), %s, %s", name(0), name(1), name(2%k), name(3%k)),
	}
}
