package workload

import (
	"testing"

	"ode/internal/eventexpr"
)

func TestCardStreamDeterministic(t *testing.T) {
	a := CardStream(42, 100, 10, DefaultCardMix, 0)
	b := CardStream(42, 100, 10, DefaultCardMix, 0)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := CardStream(43, 100, 10, DefaultCardMix, 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCardStreamMixRoughlyHolds(t *testing.T) {
	ops := CardStream(1, 10000, 10, DefaultCardMix, 0)
	counts := map[CardOpKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
		if op.Card < 0 || op.Card >= 10 {
			t.Fatalf("card %d out of range", op.Card)
		}
		if (op.Kind == OpBuy || op.Kind == OpPay) && op.Amount <= 0 {
			t.Fatalf("non-positive amount: %+v", op)
		}
	}
	// 50% buys ±5 points.
	if pct := counts[OpBuy] * 100 / len(ops); pct < 45 || pct > 55 {
		t.Fatalf("buy pct = %d", pct)
	}
	if pct := counts[OpQuery] * 100 / len(ops); pct < 10 || pct > 20 {
		t.Fatalf("query pct = %d (want ~15)", pct)
	}
}

func TestCardStreamHotspot(t *testing.T) {
	ops := CardStream(7, 10000, 100, DefaultCardMix, 80)
	hot := 0
	for _, op := range ops {
		if op.Card == 0 {
			hot++
		}
	}
	if pct := hot * 100 / len(ops); pct < 70 {
		t.Fatalf("hotspot pct = %d, want >= 70", pct)
	}
}

func TestCardStreamZeroCards(t *testing.T) {
	ops := CardStream(1, 10, 0, DefaultCardMix, 0)
	for _, op := range ops {
		if op.Card != 0 {
			t.Fatalf("card %d with cards=0", op.Card)
		}
	}
}

func TestTickStream(t *testing.T) {
	syms := []string{"T", "GOLD"}
	ticks := TickStream(5, 1000, syms, 60, 0.02)
	if len(ticks) != 1000 {
		t.Fatalf("len = %d", len(ticks))
	}
	seen := map[string]bool{}
	for _, tk := range ticks {
		seen[tk.Symbol] = true
		if tk.Price < 1 {
			t.Fatalf("price %v below floor", tk.Price)
		}
	}
	if !seen["T"] || !seen["GOLD"] {
		t.Fatalf("symbols missing: %v", seen)
	}
	// Random walk: consecutive ticks of one symbol move at most ±2%.
	last := map[string]float64{}
	for _, tk := range ticks {
		if p, ok := last[tk.Symbol]; ok {
			ratio := tk.Price / p
			if ratio < 0.979 || ratio > 1.021 {
				t.Fatalf("step ratio %v outside volatility", ratio)
			}
		}
		last[tk.Symbol] = tk.Price
	}
}

func TestEventStream(t *testing.T) {
	s := EventStream(9, 500, 4)
	counts := make([]int, 4)
	for _, e := range s {
		if e < 0 || e >= 4 {
			t.Fatalf("event %d out of range", e)
		}
		counts[e]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("event %d never generated", i)
		}
	}
}

func TestExpressionsParse(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		for _, src := range Expressions(k) {
			if _, err := eventexpr.Parse(src); err != nil {
				t.Errorf("Expressions(%d) produced unparseable %q: %v", k, src, err)
			}
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpBuy.String() != "buy" || OpQuery.String() != "query" {
		t.Fatal("op kind strings")
	}
	if CardOpKind(9).String() != "CardOpKind(9)" {
		t.Fatal("unknown op kind")
	}
}
