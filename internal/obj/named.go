package obj

// named.go: well-known singleton records, found by name through the
// catalog. The sharding layer stores its per-origin ingest watermarks
// here — small raw-byte records that must be read and written inside
// the same transaction as the work they guard, which is exactly what a
// catalog-addressed object gives us (compare clusters, which use the
// same pattern for member lists).

import (
	"ode/internal/storage"
	"ode/internal/txn"
)

// EnsureNamed returns the OID of the named singleton record, creating
// it with init as its initial image if it does not exist. The catalog
// write happens inside tx.
func (m *Manager) EnsureNamed(tx *txn.Txn, name string, init []byte) (storage.OID, error) {
	if err := tx.LockExclusive(catalogRes()); err != nil {
		return storage.InvalidOID, err
	}
	var cat catalog
	if err := readGob(tx, CatalogOID, &cat); err != nil {
		return storage.InvalidOID, err
	}
	if oid, ok := cat.Named[name]; ok {
		return storage.OID(oid), nil
	}
	oid, err := tx.NewOID()
	if err != nil {
		return storage.InvalidOID, err
	}
	if err := tx.LockExclusive(objRes(oid)); err != nil {
		return storage.InvalidOID, err
	}
	if err := tx.Write(oid, init); err != nil {
		return storage.InvalidOID, err
	}
	if cat.Named == nil {
		cat.Named = map[string]uint64{}
	}
	cat.Named[name] = uint64(oid)
	if err := writeGob(tx, CatalogOID, &cat); err != nil {
		return storage.InvalidOID, err
	}
	return oid, nil
}

// ReadNamed reads the named record under a shared lock. ok is false
// when the name was never created.
func (m *Manager) ReadNamed(tx *txn.Txn, name string) ([]byte, bool, error) {
	if err := tx.LockShared(catalogRes()); err != nil {
		return nil, false, err
	}
	var cat catalog
	if err := readGob(tx, CatalogOID, &cat); err != nil {
		return nil, false, err
	}
	oid, ok := cat.Named[name]
	if !ok {
		return nil, false, nil
	}
	if err := tx.LockShared(objRes(storage.OID(oid))); err != nil {
		return nil, false, err
	}
	img, err := tx.Read(storage.OID(oid))
	if err != nil {
		return nil, false, err
	}
	return img, true, nil
}

// WriteNamed rewrites the named record inside tx, creating it first if
// needed.
func (m *Manager) WriteNamed(tx *txn.Txn, name string, data []byte) error {
	oid, err := m.EnsureNamed(tx, name, nil)
	if err != nil {
		return err
	}
	if err := tx.LockExclusive(objRes(oid)); err != nil {
		return err
	}
	return tx.Write(oid, data)
}
