package obj

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"ode/internal/lock"
	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
	"ode/internal/txn"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	m, err := New(txn.NewManager(dali.New(), lock.NewManager()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEnvelopeRoundTrip(t *testing.T) {
	h := Header{Flags: FlagTxnEvents | FlagHasTriggers, ClassID: 42}
	img := EncodeEnvelope(h, []byte("payload"))
	h2, payload, err := DecodeEnvelope(img)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Flags != h.Flags || h2.ClassID != 42 || string(payload) != "payload" {
		t.Fatalf("decoded %+v %q", h2, payload)
	}
}

func TestEnvelopeErrors(t *testing.T) {
	if _, _, err := DecodeEnvelope([]byte{1, 2}); err == nil {
		t.Fatal("short envelope accepted")
	}
	bad := EncodeEnvelope(Header{}, nil)
	bad[0] = 99
	if _, _, err := DecodeEnvelope(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBootstrapReservesOIDs(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	oid, err := tx.NewOID()
	if err != nil {
		t.Fatal(err)
	}
	if oid < FirstUserOID {
		t.Fatalf("first user OID = %d, want >= %d", oid, FirstUserOID)
	}
}

func TestBootstrapIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "boot.eos")
	store, err := eos.Open(path, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm := txn.NewManager(store, lock.NewManager())
	if _, err := New(tm); err != nil {
		t.Fatal(err)
	}
	// Register a class so there is state to preserve.
	m1, _ := New(tm)
	tx := tm.Begin()
	id1, err := m1.EnsureClass(tx, "CredCard")
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	store.Close()

	store2, err := eos.Open(path, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	tm2 := txn.NewManager(store2, lock.NewManager())
	m2, err := New(tm2)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := tm2.Begin()
	defer tx2.Abort()
	id2, ok, err := m2.LookupClass(tx2, "CredCard")
	if err != nil || !ok {
		t.Fatalf("class lost across reopen: %v %v", ok, err)
	}
	if id2 != id1 {
		t.Fatalf("class ID changed: %d vs %d", id2, id1)
	}
}

func TestEnsureClassStable(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	a, err := m.EnsureClass(tx, "A")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.EnsureClass(tx, "B")
	a2, _ := m.EnsureClass(tx, "A")
	if a == b {
		t.Fatal("distinct classes same ID")
	}
	if a != a2 {
		t.Fatal("EnsureClass not idempotent")
	}
	tx.Commit()

	tx2 := m.Txns().Begin()
	defer tx2.Abort()
	names, err := m.ClassNames(tx2)
	if err != nil {
		t.Fatal(err)
	}
	if names[a] != "A" || names[b] != "B" {
		t.Fatalf("ClassNames = %v", names)
	}
}

func TestCreateLoadUpdateDelete(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	cid, _ := m.EnsureClass(tx, "C")
	oid, err := m.Create(tx, cid, FlagTxnEvents, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	h, payload, err := m.Load(tx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	if h.ClassID != cid || h.Flags != FlagTxnEvents || string(payload) != "v1" {
		t.Fatalf("load: %+v %q", h, payload)
	}
	if err := m.Update(tx, oid, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	h, payload, _ = m.Load(tx, oid, false)
	if string(payload) != "v2" || h.Flags != FlagTxnEvents {
		t.Fatalf("after update: %+v %q (flags must be preserved)", h, payload)
	}
	if err := m.Delete(tx, oid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Load(tx, oid, false); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("load after delete: %v", err)
	}
	tx.Commit()
}

func TestSetFlags(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	cid, _ := m.EnsureClass(tx, "C")
	oid, _ := m.Create(tx, cid, 0, []byte("x"))
	if err := m.SetFlags(tx, oid, FlagHasTriggers, 0); err != nil {
		t.Fatal(err)
	}
	h, _, _ := m.Load(tx, oid, false)
	if h.Flags&FlagHasTriggers == 0 {
		t.Fatal("flag not set")
	}
	if err := m.SetFlags(tx, oid, 0, FlagHasTriggers); err != nil {
		t.Fatal(err)
	}
	h, _, _ = m.Load(tx, oid, false)
	if h.Flags&FlagHasTriggers != 0 {
		t.Fatal("flag not cleared")
	}
}

func TestTriggerIndex(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	cid, _ := m.EnsureClass(tx, "C")
	oid, _ := m.Create(tx, cid, 0, []byte("x"))

	ts1, err := m.CreateTriggerState(tx, []byte("trig1"))
	if err != nil {
		t.Fatal(err)
	}
	ts2, _ := m.CreateTriggerState(tx, []byte("trig2"))
	if err := m.AddTrigger(tx, oid, ts1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTrigger(tx, oid, ts2); err != nil {
		t.Fatal(err)
	}
	// Fast-path bit set.
	h, _, _ := m.Load(tx, oid, false)
	if h.Flags&FlagHasTriggers == 0 {
		t.Fatal("FlagHasTriggers not set by AddTrigger")
	}
	got, err := m.TriggersOn(tx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ts1 || got[1] != ts2 {
		t.Fatalf("TriggersOn = %v", got)
	}
	// Remove one: bit stays; remove both: bit clears.
	if err := m.RemoveTrigger(tx, oid, ts1); err != nil {
		t.Fatal(err)
	}
	h, _, _ = m.Load(tx, oid, false)
	if h.Flags&FlagHasTriggers == 0 {
		t.Fatal("flag cleared while a trigger remains")
	}
	if err := m.RemoveTrigger(tx, oid, ts2); err != nil {
		t.Fatal(err)
	}
	h, _, _ = m.Load(tx, oid, false)
	if h.Flags&FlagHasTriggers != 0 {
		t.Fatal("flag not cleared after last trigger removed")
	}
	got, _ = m.TriggersOn(tx, oid)
	if len(got) != 0 {
		t.Fatalf("TriggersOn after removal = %v", got)
	}
	tx.Commit()
}

func TestDeleteDropsIndexEntry(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	cid, _ := m.EnsureClass(tx, "C")
	oid, _ := m.Create(tx, cid, 0, []byte("x"))
	ts, _ := m.CreateTriggerState(tx, []byte("t"))
	m.AddTrigger(tx, oid, ts)
	if err := m.Delete(tx, oid); err != nil {
		t.Fatal(err)
	}
	got, err := m.TriggersOn(tx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("index entry survived object deletion: %v", got)
	}
	tx.Commit()
}

func TestTriggerStateLifecycle(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	oid, err := m.CreateTriggerState(tx, []byte("state0"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadTriggerState(tx, oid, false)
	if err != nil || !bytes.Equal(got, []byte("state0")) {
		t.Fatalf("load: %q %v", got, err)
	}
	if err := m.UpdateTriggerState(tx, oid, []byte("state1")); err != nil {
		t.Fatal(err)
	}
	got, _ = m.LoadTriggerState(tx, oid, true)
	if !bytes.Equal(got, []byte("state1")) {
		t.Fatalf("after update: %q", got)
	}
	if err := m.DeleteTriggerState(tx, oid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadTriggerState(tx, oid, false); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("load after delete: %v", err)
	}
	tx.Commit()
}

func TestTriggerStateRollback(t *testing.T) {
	// §5.5: trigger state rolls back with the transaction.
	m := newMgr(t)
	tx := m.Txns().Begin()
	oid, _ := m.CreateTriggerState(tx, []byte("initial"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := m.Txns().Begin()
	if err := m.UpdateTriggerState(tx2, oid, []byte("advanced")); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()

	tx3 := m.Txns().Begin()
	defer tx3.Abort()
	got, err := m.LoadTriggerState(tx3, oid, false)
	if err != nil || !bytes.Equal(got, []byte("initial")) {
		t.Fatalf("state after abort = %q, want initial", got)
	}
}

func TestClusters(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	cid, _ := m.EnsureClass(tx, "C")
	var oids []storage.OID
	for i := 0; i < 5; i++ {
		oid, _ := m.Create(tx, cid, 0, []byte{byte(i)})
		oids = append(oids, oid)
		if err := m.ClusterAdd(tx, "cards", oid); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate add is a no-op.
	if err := m.ClusterAdd(tx, "cards", oids[0]); err != nil {
		t.Fatal(err)
	}
	var scanned []storage.OID
	if err := m.ClusterScan(tx, "cards", func(oid storage.OID) error {
		scanned = append(scanned, oid)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 5 {
		t.Fatalf("scanned %v", scanned)
	}
	for i := range oids {
		if scanned[i] != oids[i] {
			t.Fatalf("order broken: %v vs %v", scanned, oids)
		}
	}
	if err := m.ClusterRemove(tx, "cards", oids[2]); err != nil {
		t.Fatal(err)
	}
	n, _ := m.ClusterLen(tx, "cards")
	if n != 4 {
		t.Fatalf("len after remove = %d", n)
	}
	// Unknown cluster scans nothing.
	if err := m.ClusterScan(tx, "nope", func(storage.OID) error {
		t.Fatal("callback on unknown cluster")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestClustersSeparateNames(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	cid, _ := m.EnsureClass(tx, "C")
	a, _ := m.Create(tx, cid, 0, nil)
	b, _ := m.Create(tx, cid, 0, nil)
	m.ClusterAdd(tx, "one", a)
	m.ClusterAdd(tx, "two", b)
	n1, _ := m.ClusterLen(tx, "one")
	n2, _ := m.ClusterLen(tx, "two")
	if n1 != 1 || n2 != 1 {
		t.Fatalf("cluster cross-talk: %d %d", n1, n2)
	}
}

func TestIndexIsolationBetweenObjects(t *testing.T) {
	// Two objects in the same bucket must not see each other's triggers.
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	cid, _ := m.EnsureClass(tx, "C")
	// Create NumBuckets+1 objects to guarantee a bucket collision.
	var oids []storage.OID
	for i := 0; i <= NumBuckets; i++ {
		oid, _ := m.Create(tx, cid, 0, nil)
		oids = append(oids, oid)
	}
	ts, _ := m.CreateTriggerState(tx, []byte("t"))
	m.AddTrigger(tx, oids[0], ts)
	for _, other := range oids[1:] {
		got, _ := m.TriggersOn(tx, other)
		if len(got) != 0 {
			t.Fatalf("object %d sees foreign trigger %v", other, got)
		}
	}
}

func TestLoadForWriteUpgrades(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	cid, _ := m.EnsureClass(tx, "C")
	oid, _ := m.Create(tx, cid, 0, []byte("x"))
	if _, _, err := m.Load(tx, oid, false); err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.Txns().Locks().HeldMode(lock.TxnID(tx.ID()), lock.Resource{Space: lock.SpaceObject, ID: uint64(oid)}); !ok || mode != lock.Exclusive {
		// Create already took X; shared load keeps it.
		t.Fatalf("mode after create+load = %v, %v", mode, ok)
	}
}

func TestUpdateMissingObject(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	if err := m.Update(tx, 99999, []byte("x")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := m.SetFlags(tx, 99999, 1, 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("setflags missing: %v", err)
	}
	if err := m.Delete(tx, 99999); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestRemoveTriggerNotPresent(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	cid, _ := m.EnsureClass(tx, "C")
	oid, _ := m.Create(tx, cid, 0, nil)
	ts, _ := m.CreateTriggerState(tx, []byte("t"))
	m.AddTrigger(tx, oid, ts)
	// Removing an id that is not mapped leaves the real one alone.
	if err := m.RemoveTrigger(tx, oid, ts+12345); err != nil {
		t.Fatal(err)
	}
	got, _ := m.TriggersOn(tx, oid)
	if len(got) != 1 || got[0] != ts {
		t.Fatalf("TriggersOn = %v", got)
	}
}

func TestClusterRemoveUnknownCluster(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	if err := m.ClusterRemove(tx, "ghost", 5); err != nil {
		t.Fatalf("remove from unknown cluster: %v", err)
	}
	if n, err := m.ClusterLen(tx, "ghost"); err != nil || n != 0 {
		t.Fatalf("ghost cluster len = %d, %v", n, err)
	}
}

func TestClusterScanCallbackError(t *testing.T) {
	m := newMgr(t)
	tx := m.Txns().Begin()
	defer tx.Abort()
	cid, _ := m.EnsureClass(tx, "C")
	for i := 0; i < 3; i++ {
		oid, _ := m.Create(tx, cid, 0, nil)
		m.ClusterAdd(tx, "cc", oid)
	}
	stop := errors.New("stop")
	n := 0
	err := m.ClusterScan(tx, "cc", func(storage.OID) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 2 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}
