// Package obj implements the Ode object manager's storage-facing half:
// persistent objects with typed headers, the per-database class catalog
// (the analog of the paper's per-database metatype objects, §5.4.1), the
// hash index mapping an object to its active triggers (§5.1.3), and
// clusters of persistent objects (§2).
//
// Every persistent object image is an envelope:
//
//	u8 version | u8 flags | u32 class ID | payload
//
// The flags byte is the "persistent object's control information" of
// §5.4.5 footnote 3: FlagHasTriggers is the fast-path bit that lets
// PostEvent skip the trigger-index lookup entirely for objects with no
// active triggers, and FlagTxnEvents marks objects whose class expressed
// interest in transaction events (§5.5's transaction-event object list is
// populated when such an object is first accessed in a transaction).
package obj

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"ode/internal/lock"
	"ode/internal/storage"
	"ode/internal/txn"
)

// Envelope flag bits.
const (
	// FlagTxnEvents marks objects interested in transaction events.
	FlagTxnEvents uint8 = 1 << 0
	// FlagHasTriggers marks objects with at least one active trigger.
	FlagHasTriggers uint8 = 1 << 1
)

// Reserved OIDs.
const (
	// CatalogOID is the database catalog root.
	CatalogOID storage.OID = 1
	// NumBuckets is the trigger-index bucket count; buckets occupy OIDs
	// [FirstBucketOID, FirstBucketOID+NumBuckets).
	NumBuckets = 16
	// FirstBucketOID is the first trigger-index bucket.
	FirstBucketOID storage.OID = 2
	// FirstUserOID is the first OID handed to applications.
	FirstUserOID storage.OID = FirstBucketOID + NumBuckets
)

const envelopeHeader = 6

// ErrWrongClass reports a typed load whose stored class differs.
var ErrWrongClass = errors.New("obj: object has a different class")

// Header is the decoded envelope header.
type Header struct {
	Version uint8
	Flags   uint8
	ClassID uint32
}

// EncodeEnvelope prefixes payload with an envelope header.
func EncodeEnvelope(h Header, payload []byte) []byte {
	out := make([]byte, envelopeHeader+len(payload))
	out[0] = 1
	out[1] = h.Flags
	binary.LittleEndian.PutUint32(out[2:6], h.ClassID)
	copy(out[envelopeHeader:], payload)
	return out
}

// DecodeEnvelope splits an image into header and payload (payload aliases
// the input).
func DecodeEnvelope(img []byte) (Header, []byte, error) {
	if len(img) < envelopeHeader {
		return Header{}, nil, fmt.Errorf("obj: image too short (%d bytes)", len(img))
	}
	if img[0] != 1 {
		return Header{}, nil, fmt.Errorf("obj: unsupported envelope version %d", img[0])
	}
	h := Header{
		Version: img[0],
		Flags:   img[1],
		ClassID: binary.LittleEndian.Uint32(img[2:6]),
	}
	return h, img[envelopeHeader:], nil
}

// catalog is the persistent database catalog.
type catalog struct {
	NextClassID uint32
	Classes     map[string]uint32 // class name -> class ID
	Clusters    map[string]uint64 // cluster name -> cluster object OID
	// Named maps well-known singleton records (sharding watermarks,
	// future metadata) to their OIDs. nil in catalogs written before the
	// field existed; every use guards for that.
	Named map[string]uint64
}

// cluster is a persistent set of object OIDs with insertion order.
type cluster struct {
	Name    string
	Members []uint64
}

// bucket is one trigger-index bucket: object OID -> trigger-state OIDs.
type bucket struct {
	Entries map[uint64][]uint64
}

// Manager is the object manager for one database.
type Manager struct {
	tm *txn.Manager
}

// New binds an object manager to tm's store, bootstrapping the catalog
// and trigger-index buckets on first use.
func New(tm *txn.Manager) (*Manager, error) {
	m := &Manager{tm: tm}
	if tm.Store().Exists(CatalogOID) {
		return m, nil
	}
	boot := tm.BeginSystem()
	if err := boot.LockExclusive(catalogRes()); err != nil {
		return nil, err
	}
	if tm.Store().Exists(CatalogOID) { // raced with another bootstrap
		boot.Abort()
		return m, nil
	}
	// Burn reserved OIDs so user objects start at FirstUserOID.
	for {
		oid, err := boot.NewOID()
		if err != nil {
			boot.Abort()
			return nil, err
		}
		if oid >= FirstUserOID-1 {
			break
		}
	}
	cat := catalog{NextClassID: 1, Classes: map[string]uint32{}, Clusters: map[string]uint64{}}
	if err := writeGob(boot, CatalogOID, &cat); err != nil {
		boot.Abort()
		return nil, err
	}
	for i := storage.OID(0); i < NumBuckets; i++ {
		b := bucket{Entries: map[uint64][]uint64{}}
		if err := writeGob(boot, FirstBucketOID+i, &b); err != nil {
			boot.Abort()
			return nil, err
		}
	}
	if err := boot.Commit(); err != nil {
		return nil, fmt.Errorf("obj: bootstrap: %w", err)
	}
	return m, nil
}

// Txns exposes the transaction manager.
func (m *Manager) Txns() *txn.Manager { return m.tm }

func catalogRes() lock.Resource { return lock.Resource{Space: lock.SpaceMeta, ID: uint64(CatalogOID)} }

func objRes(oid storage.OID) lock.Resource {
	return lock.Resource{Space: lock.SpaceObject, ID: uint64(oid)}
}

func trigRes(oid storage.OID) lock.Resource {
	return lock.Resource{Space: lock.SpaceTrigger, ID: uint64(oid)}
}

func bucketOf(oid storage.OID) storage.OID {
	return FirstBucketOID + storage.OID(uint64(oid)%NumBuckets)
}

func bucketRes(b storage.OID) lock.Resource {
	return lock.Resource{Space: lock.SpaceIndex, ID: uint64(b)}
}

func writeGob(tx *txn.Txn, oid storage.OID, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("obj: encode %T: %w", v, err)
	}
	return tx.Write(oid, buf.Bytes())
}

func readGob(tx *txn.Txn, oid storage.OID, v any) error {
	img, err := tx.Read(oid)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(img)).Decode(v); err != nil {
		return fmt.Errorf("obj: decode %T: %w", v, err)
	}
	return nil
}

// --- catalog ---------------------------------------------------------------

// EnsureClass returns the class ID for name, registering it if new. The
// catalog write happens inside tx.
func (m *Manager) EnsureClass(tx *txn.Txn, name string) (uint32, error) {
	if err := tx.LockExclusive(catalogRes()); err != nil {
		return 0, err
	}
	var cat catalog
	if err := readGob(tx, CatalogOID, &cat); err != nil {
		return 0, err
	}
	if id, ok := cat.Classes[name]; ok {
		return id, nil
	}
	id := cat.NextClassID
	cat.NextClassID++
	cat.Classes[name] = id
	if err := writeGob(tx, CatalogOID, &cat); err != nil {
		return 0, err
	}
	return id, nil
}

// LookupClass returns the class ID for name (false if unregistered).
func (m *Manager) LookupClass(tx *txn.Txn, name string) (uint32, bool, error) {
	if err := tx.LockShared(catalogRes()); err != nil {
		return 0, false, err
	}
	var cat catalog
	if err := readGob(tx, CatalogOID, &cat); err != nil {
		return 0, false, err
	}
	id, ok := cat.Classes[name]
	return id, ok, nil
}

// ClassNames returns the registered class names keyed by ID.
func (m *Manager) ClassNames(tx *txn.Txn) (map[uint32]string, error) {
	if err := tx.LockShared(catalogRes()); err != nil {
		return nil, err
	}
	var cat catalog
	if err := readGob(tx, CatalogOID, &cat); err != nil {
		return nil, err
	}
	out := make(map[uint32]string, len(cat.Classes))
	for name, id := range cat.Classes {
		out[id] = name
	}
	return out, nil
}

// --- objects ---------------------------------------------------------------

// Create allocates a new persistent object (the pnew path). The caller
// supplies the encoded payload and initial flags.
func (m *Manager) Create(tx *txn.Txn, classID uint32, flags uint8, payload []byte) (storage.OID, error) {
	oid, err := tx.NewOID()
	if err != nil {
		return storage.InvalidOID, err
	}
	if err := tx.LockExclusive(objRes(oid)); err != nil {
		return storage.InvalidOID, err
	}
	img := EncodeEnvelope(Header{Flags: flags, ClassID: classID}, payload)
	if err := tx.Write(oid, img); err != nil {
		return storage.InvalidOID, err
	}
	return oid, nil
}

// Load reads an object under a shared lock (or exclusive when forWrite).
func (m *Manager) Load(tx *txn.Txn, oid storage.OID, forWrite bool) (Header, []byte, error) {
	var err error
	if forWrite {
		err = tx.LockExclusive(objRes(oid))
	} else {
		err = tx.LockShared(objRes(oid))
	}
	if err != nil {
		return Header{}, nil, err
	}
	img, err := tx.Read(oid)
	if err != nil {
		return Header{}, nil, err
	}
	return decodeOwned(img)
}

func decodeOwned(img []byte) (Header, []byte, error) {
	h, payload, err := DecodeEnvelope(img)
	if err != nil {
		return Header{}, nil, err
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return h, out, nil
}

// Update rewrites an object's payload, preserving header flags.
func (m *Manager) Update(tx *txn.Txn, oid storage.OID, payload []byte) error {
	h, _, err := m.Load(tx, oid, true)
	if err != nil {
		return err
	}
	return tx.Write(oid, EncodeEnvelope(h, payload))
}

// SetFlags rewrites an object's flags byte (or-in set, and-out clear).
func (m *Manager) SetFlags(tx *txn.Txn, oid storage.OID, set, clear uint8) error {
	h, payload, err := m.Load(tx, oid, true)
	if err != nil {
		return err
	}
	h.Flags = (h.Flags | set) &^ clear
	return tx.Write(oid, EncodeEnvelope(h, payload))
}

// Delete removes an object (the pdelete path). The object's trigger-index
// entry, if any, is removed too.
func (m *Manager) Delete(tx *txn.Txn, oid storage.OID) error {
	h, _, err := m.Load(tx, oid, true)
	if err != nil {
		return err
	}
	if h.Flags&FlagHasTriggers != 0 {
		if err := m.dropIndexEntry(tx, oid); err != nil {
			return err
		}
	}
	return tx.Free(oid)
}

// --- trigger index -----------------------------------------------------------

// AddTrigger maps objOID -> trigOID in the trigger index and sets the
// object's fast-path bit.
func (m *Manager) AddTrigger(tx *txn.Txn, objOID, trigOID storage.OID) error {
	b := bucketOf(objOID)
	if err := tx.LockExclusive(bucketRes(b)); err != nil {
		return err
	}
	var bk bucket
	if err := readGob(tx, b, &bk); err != nil {
		return err
	}
	bk.Entries[uint64(objOID)] = append(bk.Entries[uint64(objOID)], uint64(trigOID))
	if err := writeGob(tx, b, &bk); err != nil {
		return err
	}
	return m.SetFlags(tx, objOID, FlagHasTriggers, 0)
}

// RemoveTrigger unmaps objOID -> trigOID, clearing the fast-path bit when
// the last trigger goes.
func (m *Manager) RemoveTrigger(tx *txn.Txn, objOID, trigOID storage.OID) error {
	b := bucketOf(objOID)
	if err := tx.LockExclusive(bucketRes(b)); err != nil {
		return err
	}
	var bk bucket
	if err := readGob(tx, b, &bk); err != nil {
		return err
	}
	list := bk.Entries[uint64(objOID)]
	out := list[:0]
	for _, id := range list {
		if id != uint64(trigOID) {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		delete(bk.Entries, uint64(objOID))
	} else {
		bk.Entries[uint64(objOID)] = out
	}
	if err := writeGob(tx, b, &bk); err != nil {
		return err
	}
	if len(out) == 0 {
		return m.SetFlags(tx, objOID, 0, FlagHasTriggers)
	}
	return nil
}

// dropIndexEntry removes every index entry for objOID (object deletion).
func (m *Manager) dropIndexEntry(tx *txn.Txn, objOID storage.OID) error {
	b := bucketOf(objOID)
	if err := tx.LockExclusive(bucketRes(b)); err != nil {
		return err
	}
	var bk bucket
	if err := readGob(tx, b, &bk); err != nil {
		return err
	}
	if _, ok := bk.Entries[uint64(objOID)]; !ok {
		return nil
	}
	delete(bk.Entries, uint64(objOID))
	return writeGob(tx, b, &bk)
}

// TriggersOn returns the trigger-state OIDs active on objOID, sorted.
// This is PostEvent's index lookup (§5.4.5 step 1).
func (m *Manager) TriggersOn(tx *txn.Txn, objOID storage.OID) ([]storage.OID, error) {
	b := bucketOf(objOID)
	if err := tx.LockShared(bucketRes(b)); err != nil {
		return nil, err
	}
	var bk bucket
	if err := readGob(tx, b, &bk); err != nil {
		return nil, err
	}
	list := bk.Entries[uint64(objOID)]
	out := make([]storage.OID, len(list))
	for i, id := range list {
		out[i] = storage.OID(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- trigger-state objects ---------------------------------------------------

// CreateTriggerState stores a trigger-state object (the persistent
// TriggerState of §5.4.1) and returns its OID.
func (m *Manager) CreateTriggerState(tx *txn.Txn, payload []byte) (storage.OID, error) {
	oid, err := tx.NewOID()
	if err != nil {
		return storage.InvalidOID, err
	}
	if err := tx.LockExclusive(trigRes(oid)); err != nil {
		return storage.InvalidOID, err
	}
	if err := tx.Write(oid, payload); err != nil {
		return storage.InvalidOID, err
	}
	return oid, nil
}

// LoadTriggerState reads a trigger-state object. Advancing an FSM writes
// the descriptor, so forWrite acquires the exclusive lock — this is the
// read-becomes-write amplification of §6.
func (m *Manager) LoadTriggerState(tx *txn.Txn, oid storage.OID, forWrite bool) ([]byte, error) {
	var err error
	if forWrite {
		err = tx.LockExclusive(trigRes(oid))
	} else {
		err = tx.LockShared(trigRes(oid))
	}
	if err != nil {
		return nil, err
	}
	return tx.Read(oid)
}

// UpdateTriggerState rewrites a trigger-state object.
func (m *Manager) UpdateTriggerState(tx *txn.Txn, oid storage.OID, payload []byte) error {
	if err := tx.LockExclusive(trigRes(oid)); err != nil {
		return err
	}
	return tx.Write(oid, payload)
}

// DeleteTriggerState removes a trigger-state object (deactivate).
func (m *Manager) DeleteTriggerState(tx *txn.Txn, oid storage.OID) error {
	if err := tx.LockExclusive(trigRes(oid)); err != nil {
		return err
	}
	return tx.Free(oid)
}

// --- clusters ---------------------------------------------------------------

// EnsureCluster returns the OID of the named cluster, creating it if
// needed.
func (m *Manager) EnsureCluster(tx *txn.Txn, name string) (storage.OID, error) {
	if err := tx.LockExclusive(catalogRes()); err != nil {
		return storage.InvalidOID, err
	}
	var cat catalog
	if err := readGob(tx, CatalogOID, &cat); err != nil {
		return storage.InvalidOID, err
	}
	if oid, ok := cat.Clusters[name]; ok {
		return storage.OID(oid), nil
	}
	oid, err := tx.NewOID()
	if err != nil {
		return storage.InvalidOID, err
	}
	if err := writeGob(tx, oid, &cluster{Name: name}); err != nil {
		return storage.InvalidOID, err
	}
	cat.Clusters[name] = uint64(oid)
	if err := writeGob(tx, CatalogOID, &cat); err != nil {
		return storage.InvalidOID, err
	}
	return oid, nil
}

// ClusterAdd appends oid to the named cluster.
func (m *Manager) ClusterAdd(tx *txn.Txn, name string, oid storage.OID) error {
	coid, err := m.EnsureCluster(tx, name)
	if err != nil {
		return err
	}
	if err := tx.LockExclusive(lock.Resource{Space: lock.SpaceCluster, ID: uint64(coid)}); err != nil {
		return err
	}
	var c cluster
	if err := readGob(tx, coid, &c); err != nil {
		return err
	}
	for _, m := range c.Members {
		if m == uint64(oid) {
			return nil // already present
		}
	}
	c.Members = append(c.Members, uint64(oid))
	return writeGob(tx, coid, &c)
}

// ClusterRemove removes oid from the named cluster (no-op if absent).
func (m *Manager) ClusterRemove(tx *txn.Txn, name string, oid storage.OID) error {
	coid, ok, err := m.lookupCluster(tx, name)
	if err != nil || !ok {
		return err
	}
	if err := tx.LockExclusive(lock.Resource{Space: lock.SpaceCluster, ID: uint64(coid)}); err != nil {
		return err
	}
	var c cluster
	if err := readGob(tx, coid, &c); err != nil {
		return err
	}
	out := c.Members[:0]
	for _, m := range c.Members {
		if m != uint64(oid) {
			out = append(out, m)
		}
	}
	c.Members = out
	return writeGob(tx, coid, &c)
}

func (m *Manager) lookupCluster(tx *txn.Txn, name string) (storage.OID, bool, error) {
	if err := tx.LockShared(catalogRes()); err != nil {
		return storage.InvalidOID, false, err
	}
	var cat catalog
	if err := readGob(tx, CatalogOID, &cat); err != nil {
		return storage.InvalidOID, false, err
	}
	oid, ok := cat.Clusters[name]
	return storage.OID(oid), ok, nil
}

// ClusterScan iterates the named cluster in insertion order (the O++
// "for ... in cluster" loop). Unknown clusters scan zero objects.
func (m *Manager) ClusterScan(tx *txn.Txn, name string, fn func(storage.OID) error) error {
	coid, ok, err := m.lookupCluster(tx, name)
	if err != nil || !ok {
		return err
	}
	if err := tx.LockShared(lock.Resource{Space: lock.SpaceCluster, ID: uint64(coid)}); err != nil {
		return err
	}
	var c cluster
	if err := readGob(tx, coid, &c); err != nil {
		return err
	}
	for _, member := range c.Members {
		if err := fn(storage.OID(member)); err != nil {
			return err
		}
	}
	return nil
}

// ClusterLen reports the member count of the named cluster.
func (m *Manager) ClusterLen(tx *txn.Txn, name string) (int, error) {
	n := 0
	err := m.ClusterScan(tx, name, func(storage.OID) error { n++; return nil })
	return n, err
}
