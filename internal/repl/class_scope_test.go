package repl

import (
	"errors"
	"sort"
	"testing"
	"time"

	"ode/internal/antientropy"
	"ode/internal/core"
	"ode/internal/storage"
)

// Aux is a second registered class so the store holds two class
// partitions worth auditing independently.
type Aux struct{ N int }

func auxClass() *core.Class {
	return core.MustClass("Aux", core.Factory(func() any { return new(Aux) }))
}

// corruptOIDs flips a byte in each given replica object, bypassing the
// stream (simulated rot), exactly like corruptReplica but for a chosen
// OID set.
func corruptOIDs(t *testing.T, rstore interface {
	Read(storage.OID) ([]byte, error)
	ApplyReplicated(uint64, []storage.Op) error
}, oids []uint64) {
	t.Helper()
	for i, oid := range oids {
		data, err := rstore.Read(storage.OID(oid))
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x5a
		if err := rstore.ApplyReplicated(reconTxnBase+200+uint64(i), []storage.Op{
			{Kind: storage.OpWrite, OID: storage.OID(oid), Data: data},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVerifyClassScoped (satellite): divergence seeded in two classes,
// audited one class at a time. The scoped audit reports only the
// requested class's OIDs, a scoped repair fixes only that class (the
// other class's divergence survives it), and the scoped exchange
// inventories only the class subset.
func TestVerifyClassScoped(t *testing.T) {
	dir := t.TempDir()
	p, rep, rstore, _ := setupSyncedPair(t, dir, 10)
	defer rep.Stop()

	if err := p.db.Register(auxClass()); err != nil {
		t.Fatal(err)
	}
	var auxOIDs []uint64
	for i := 0; i < 6; i++ {
		tx := p.db.Begin()
		ref, err := p.db.Create(tx, "Aux", &Aux{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		auxOIDs = append(auxOIDs, uint64(ref.OID()))
	}
	waitFor(t, "aux objects replicated", func() bool {
		return rep.Status().AppliedLSN >= uint64(p.store.Log().End())
	})

	acctBC, ok := p.db.ClassOf("Acct")
	if !ok {
		t.Fatal("Acct not registered")
	}
	auxBC, ok := p.db.ClassOf("Aux")
	if !ok {
		t.Fatal("Aux not registered")
	}

	// The tagged export must agree with the registered catalog IDs.
	_, _, tagged, err := p.store.ExportClassDigests()
	if err != nil {
		t.Fatal(err)
	}
	classOf := map[uint64]uint32{}
	for _, it := range tagged {
		classOf[it.Key] = it.Class
	}
	for _, oid := range auxOIDs {
		if classOf[oid] != auxBC.ID {
			t.Fatalf("oid %d tagged class %d, want Aux id %d", oid, classOf[oid], auxBC.ID)
		}
	}

	// Seed divergence in both classes: one Acct object, two Aux objects.
	var acctOIDs []uint64
	for _, it := range tagged {
		if it.Class == acctBC.ID {
			acctOIDs = append(acctOIDs, it.Key)
		}
	}
	sort.Slice(acctOIDs, func(i, j int) bool { return acctOIDs[i] < acctOIDs[j] })
	if len(acctOIDs) < 1 {
		t.Fatal("no Acct objects tagged")
	}
	badAcct := acctOIDs[0]
	badAux := []uint64{auxOIDs[1], auxOIDs[4]}
	corruptOIDs(t, rstore, append([]uint64{badAcct}, badAux...))

	fast := VerifyOptions{BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond}

	// Audit scoped to Aux: exactly the two Aux OIDs, never the Acct one,
	// and the primary inventory count is the class size, not the store.
	auxOpts := fast
	auxOpts.Class = auxBC.ID
	report, err := rep.Verify(auxOpts)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("scoped Verify = %v, want ErrDiverged (report %+v)", err, report)
	}
	wantAux := append([]uint64(nil), badAux...)
	sort.Slice(wantAux, func(i, j int) bool { return wantAux[i] < wantAux[j] })
	if len(report.Diverged) != len(wantAux) {
		t.Fatalf("scoped diverged = %v, want %v", report.Diverged, wantAux)
	}
	for i, oid := range wantAux {
		if report.Diverged[i] != oid {
			t.Fatalf("scoped diverged = %v, want %v", report.Diverged, wantAux)
		}
	}
	if report.Class != auxBC.ID {
		t.Fatalf("report class = %d, want %d", report.Class, auxBC.ID)
	}
	if report.PrimaryObjects != uint64(len(auxOIDs)) {
		t.Fatalf("scoped inventory = %d objects, want %d (the Aux class only)",
			report.PrimaryObjects, len(auxOIDs))
	}

	// Scoped repair fixes Aux and only Aux.
	fix := auxOpts
	fix.Repair = true
	report, err = rep.Verify(fix)
	if err != nil || !report.InSync {
		t.Fatalf("scoped repair = %+v, %v; want clean", report, err)
	}
	if len(report.Repaired) != len(wantAux) {
		t.Fatalf("scoped repaired = %v, want %v", report.Repaired, wantAux)
	}

	// The Acct divergence must have survived the Aux-scoped repair...
	acctOpts := fast
	acctOpts.Class = acctBC.ID
	report, err = rep.Verify(acctOpts)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("Acct scope after Aux repair = %v, want ErrDiverged (%+v)", err, report)
	}
	if len(report.Diverged) != 1 || report.Diverged[0] != badAcct {
		t.Fatalf("Acct scope diverged = %v, want [%d]", report.Diverged, badAcct)
	}

	// ...and an unscoped repair converges the whole store.
	full := fast
	full.Repair = true
	report, err = rep.Verify(full)
	if err != nil || !report.InSync {
		t.Fatalf("full repair = %+v, %v; want clean", report, err)
	}
	sameStoreBytes(t, "after scoped+full repair", p.store, rstore)
}

// TestVerifyClassScopedInSync: a scoped audit of an untouched class is
// clean even while another class is diverged — scoping is isolation,
// not a smaller false-positive budget.
func TestVerifyClassScopedInSync(t *testing.T) {
	dir := t.TempDir()
	p, rep, rstore, _ := setupSyncedPair(t, dir, 8)
	defer rep.Stop()

	if err := p.db.Register(auxClass()); err != nil {
		t.Fatal(err)
	}
	tx := p.db.Begin()
	if _, err := p.db.Create(tx, "Aux", &Aux{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "aux replicated", func() bool {
		return rep.Status().AppliedLSN >= uint64(p.store.Log().End())
	})

	// Diverge one Acct object only.
	acctBC, _ := p.db.ClassOf("Acct")
	auxBC, _ := p.db.ClassOf("Aux")
	_, _, tagged, err := p.store.ExportClassDigests()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range tagged {
		if it.Class == acctBC.ID {
			corruptOIDs(t, rstore, []uint64{it.Key})
			break
		}
	}

	opts := VerifyOptions{Class: auxBC.ID, BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond}
	report, err := rep.Verify(opts)
	if err != nil || !report.InSync {
		t.Fatalf("Aux scope with Acct diverged = %+v, %v; want in-sync", report, err)
	}
	if report.Symbols != 0 {
		t.Fatalf("in-sync scoped audit streamed %d symbols, want 0 (roots match)", report.Symbols)
	}
}

// TestExportClassDigestsConsistent: the tagged inventory is the plain
// inventory plus tags — same items, same digests — and system objects
// without an obj envelope fold into class 0 on both stores.
func TestExportClassDigestsConsistent(t *testing.T) {
	dir := t.TempDir()
	p, rep, rstore, _ := setupSyncedPair(t, dir, 5)
	defer rep.Stop()

	_, _, plain, err := p.store.ExportDigests()
	if err != nil {
		t.Fatal(err)
	}
	_, _, tagged, err := p.store.ExportClassDigests()
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(tagged) {
		t.Fatalf("tagged export has %d items, plain %d", len(tagged), len(plain))
	}
	untagged := make([]antientropy.Item, len(tagged))
	for i, it := range tagged {
		untagged[i] = it.Item
	}
	if !antientropy.DigestSet(plain).Equal(antientropy.DigestSet(untagged)) {
		t.Fatal("tagged export digests differ from plain export")
	}

	// Per-class partitions agree across the synced pair.
	_, _, rtagged, err := rstore.ExportClassDigests()
	if err != nil {
		t.Fatal(err)
	}
	if got := antientropy.DiffClasses(antientropy.DigestClasses(tagged), antientropy.DigestClasses(rtagged)); len(got) != 0 {
		t.Fatalf("synced pair's class partitions differ: %v", got)
	}
}
