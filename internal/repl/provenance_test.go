package repl

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/obs"
)

// TestFailoverProvenanceLinksToPrimary is the cross-node tentpole
// acceptance test: a composite event "after Buy, after PayBill" is
// half-matched on the primary, the replica is promoted, and PayBill
// completes the pattern there. The promoted replica's firing trace must
// carry a cause chain that links back to the *primary-side* originating
// event — the Buy posting's cause ID, stamped into the persistent
// trigger state and shipped by replication.
func TestFailoverProvenanceLinksToPrimary(t *testing.T) {
	dir := t.TempDir()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)

	const primaryNode uint64 = 0xCA05A1 // deterministic, non-zero
	p.db.Causes().SetNode(primaryNode)
	p.db.Tracer().SetRate(1)

	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.db.Activate(tx, ref, "Seq"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// First half of the sequence on the primary.
	commitOp(t, p.db, ref, "Buy", 100)

	// The Buy posting's cause is the originating event of the pattern.
	var buyCause string
	for _, r := range p.db.Tracer().Snapshot() {
		if r.Event == "Acct::after Buy" {
			buyCause = r.Cause
		}
	}
	bc, ok := obs.ParseCause(buyCause)
	if !ok || bc.IsZero() {
		t.Fatalf("primary Buy trace has no cause: %q", buyCause)
	}
	if bc.Node != primaryNode {
		t.Fatalf("Buy cause node %016x, want primary node %016x", bc.Node, uint64(primaryNode))
	}

	// Replica: sync, attach, and verify the shipped commit was attributed
	// to the primary-side cause via the WAL cause note.
	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "zero lag", func() bool { return rep.Status().LagBytes == 0 })
	if got := rep.Status().LastCause; got != buyCause {
		t.Fatalf("replica Status().LastCause = %q, want primary Buy cause %q", got, buyCause)
	}

	rdb, err := core.NewDatabase(rstore)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.Register(cls); err != nil {
		t.Fatal(err)
	}
	rep.AttachDatabase(rdb)
	rdb.Tracer().SetRate(1)
	replicaNode := rdb.Causes().Node()
	if replicaNode == primaryNode {
		t.Fatal("replica reused the primary's node ID")
	}

	// Fail the primary; promote the replica.
	p.shutdown()
	rep.Promote()

	// Second half of the sequence on the promoted replica.
	commitOp(t, rdb, ref, "PayBill", 40)
	if n := fired.Load(); n != 1 {
		t.Fatalf("trigger fired %d times after failover, want exactly 1", n)
	}

	// The promoted replica's trace: its own posting has a replica-node
	// cause, but the fire step links to the primary-side origin.
	var payTrace *obs.TraceRecord
	for _, r := range rdb.Tracer().Snapshot() {
		if r.Event == "Acct::after PayBill" {
			r := r
			payTrace = &r
		}
	}
	if payTrace == nil {
		t.Fatal("no trace for the completing PayBill posting")
	}
	pc, ok := obs.ParseCause(payTrace.Cause)
	if !ok || pc.IsZero() {
		t.Fatalf("PayBill trace has no cause: %q", payTrace.Cause)
	}
	if pc.Node != replicaNode {
		t.Fatalf("PayBill cause node %016x, want replica node %016x", pc.Node, replicaNode)
	}

	var fireCause string
	for _, s := range payTrace.Steps {
		if s.Kind == obs.StepFire && s.Trigger == "Seq" {
			fireCause = s.Cause
		}
	}
	if fireCause != buyCause {
		t.Fatalf("promoted-replica fire step cause = %q, want the primary-side originating event %q",
			fireCause, buyCause)
	}
	fc, _ := obs.ParseCause(fireCause)
	if fc.Node != primaryNode {
		t.Fatalf("fire cause node %016x, not attributed to the primary %016x", fc.Node, uint64(primaryNode))
	}

	// The promotion itself landed in the flight recorder.
	var sawPromotion bool
	for _, inc := range obs.Flight().Snapshot() {
		if inc.Kind == obs.IncPromotion {
			sawPromotion = true
		}
	}
	if !sawPromotion {
		t.Fatal("promotion incident missing from the flight recorder")
	}
}

// TestReplicaLagMetric: repl.lag_bytes is served from the apply loop's
// atomic and reaches zero once the replica has caught up.
func TestReplicaLagMetric(t *testing.T) {
	dir := t.TempDir()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)
	defer p.shutdown()

	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	commitOp(t, p.db, ref, "Buy", 1)

	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	defer rep.Stop()
	defer rstore.Close()
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep.RegisterMetrics(reg)
	waitFor(t, "lag metric zero", func() bool {
		for _, m := range reg.Snapshot() {
			if m.Name == "repl.lag_bytes" {
				return m.Value == 0
			}
		}
		t.Fatal("repl.lag_bytes not registered")
		return false
	})
	// apply_ns observed at least one replicated transaction.
	for _, m := range reg.Snapshot() {
		if m.Name == "repl.apply_ns" && m.Count == 0 {
			t.Fatal("repl.apply_ns recorded no applies")
		}
	}
}
