package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ode/internal/obs"
	"ode/internal/server"
	"ode/internal/storage/eos"
	"ode/internal/wal"
)

// HubOptions tunes the primary side of replication.
type HubOptions struct {
	// PingInterval is how often an idle (caught-up) subscriber gets a
	// heartbeat frame carrying the durable end. Default 500ms.
	PingInterval time.Duration
	// MaxBatchBytes caps one recs frame's worth of log (at least one
	// record is always sent). Default 256 KiB.
	MaxBatchBytes int
}

// Hub is the primary side: it serves repl.subscribe streams off the
// store's WAL and pins checkpoint truncation at the slowest
// subscriber's position so no subscriber's next record is reclaimed
// out from under it.
type Hub struct {
	store *eos.Manager
	opts  HubOptions

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed chan struct{}
	once   sync.Once

	recordsShipped   obs.Counter
	bytesShipped     obs.Counter
	snapshotsShipped obs.Counter
	pingRTT          obs.Histogram

	reconSessions obs.Counter // anti-entropy exchanges served
	reconRejoins  obs.Counter // out-of-range rejoins resolved by recon instead of snapshot
	symbolsSent   obs.Counter // coded symbols shipped
	reconObjects  obs.Counter // divergent objects shipped (incl. gone markers)
}

// subscriber is one live stream's shipping position.
type subscriber struct {
	pos  wal.LSN       // next LSN to ship; guarded by Hub.mu
	wake chan struct{} // buffered(1): durable-commit wakeup
}

// NewHub wires a hub to the store: the hub becomes the store's WAL pin
// (checkpoints keep log from the slowest subscriber onward) and its
// durable observer (commits wake caught-up subscribers immediately
// instead of waiting out the ping interval). Close undoes both.
func NewHub(store *eos.Manager, opts HubOptions) *Hub {
	if opts.PingInterval <= 0 {
		opts.PingInterval = 500 * time.Millisecond
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 256 << 10
	}
	h := &Hub{
		store:  store,
		opts:   opts,
		subs:   make(map[*subscriber]struct{}),
		closed: make(chan struct{}),
	}
	store.SetWALPin(h.pin)
	store.Log().SetDurableObserver(h.wakeAll)
	return h
}

// Close detaches the hub from the store and unblocks idle subscribers;
// their streams end on their next write or wakeup.
func (h *Hub) Close() {
	h.once.Do(func() {
		close(h.closed)
		h.store.SetWALPin(nil)
		h.store.Log().SetDurableObserver(nil)
	})
}

// pin reports the lowest position any subscriber still needs (the
// checkpoint truncation bound). Called by the store with its pool lock
// held — constant work, no locks beyond h.mu.
func (h *Hub) pin() (wal.LSN, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var min wal.LSN
	ok := false
	for s := range h.subs {
		if !ok || s.pos < min {
			min, ok = s.pos, true
		}
	}
	return min, ok
}

// wakeAll nudges every subscriber after a group commit becomes durable.
func (h *Hub) wakeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		select {
		case s.wake <- struct{}{}:
		default: // already pending
		}
	}
}

// Subscribers reports the number of live streams.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// RegisterMetrics exposes the hub's counters on a registry (the
// primary's Observability surface). Names are documented in
// docs/OBSERVABILITY.md.
func (h *Hub) RegisterMetrics(reg *obs.Registry) {
	reg.Func("repl.subscribers", "streams", "live replica subscriptions",
		func() uint64 { return uint64(h.Subscribers()) })
	reg.Func("repl.records_shipped", "records", "WAL records sent to replicas",
		h.recordsShipped.Value)
	reg.Func("repl.bytes_shipped", "bytes", "WAL bytes sent to replicas",
		h.bytesShipped.Value)
	reg.Func("repl.snapshots_shipped", "snapshots", "full-store bootstraps sent to out-of-range subscribers",
		h.snapshotsShipped.Value)
	reg.RegisterHistogram("repl.ping_rtt_ns", "ns", "ping→pong round trip to subscribers, hub clock",
		&h.pingRTT)
	reg.Func("antientropy.sessions", "exchanges", "anti-entropy digest/symbol exchanges served",
		h.reconSessions.Value)
	reg.Func("antientropy.rejoins", "rejoins", "out-of-range rejoins served by reconciliation instead of snapshot",
		h.reconRejoins.Value)
	reg.Func("antientropy.symbols_sent", "symbols", "coded symbols shipped to reconciling peers",
		h.symbolsSent.Value)
	reg.Func("antientropy.objects_shipped", "objects", "divergent object images shipped during reconciliation",
		h.reconObjects.Value)
}

func (h *Hub) addSub(pos wal.LSN) *subscriber {
	s := &subscriber{pos: pos, wake: make(chan struct{}, 1)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

func (h *Hub) removeSub(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

func (h *Hub) setPos(s *subscriber, pos wal.LSN) {
	h.mu.Lock()
	s.pos = pos
	h.mu.Unlock()
}

// HandleSubscribe is the server.StreamHandler for OpSubscribe: it owns
// the connection and ships frames until the subscriber disconnects or
// the hub closes. Register as
//
//	Options.StreamOps[repl.OpSubscribe] = hub.HandleSubscribe
func (h *Hub) HandleSubscribe(conn net.Conn, req *server.Request) error {
	log := h.store.Log()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	from := wal.LSN(req.LSN)

	s := h.addSub(from)
	defer h.removeSub(s)

	// Out-of-range positions get a rejoin first: below base the records
	// were checkpoint-truncated away; beyond end the replica outlived
	// log the primary no longer has (e.g. the primary was restored from
	// an older state). A reconciling subscriber ships only its drift; a
	// plain one (or an aborted exchange) gets the full snapshot.
	// Registering the subscriber before checking pins the base where we
	// read it.
	if from < log.Base() || from > log.End() {
		wantSnap := true
		if req.Recon {
			lsn, aborted, err := h.serveRecon(conn, enc, dec, true, 0)
			if err != nil {
				return nil // link failed mid-exchange; replica redials
			}
			if !aborted {
				h.reconRejoins.Inc()
				from = lsn
				h.setPos(s, from)
				wantSnap = false
			}
		}
		if wantSnap {
			lsn, nextOID, objs, err := h.store.Export()
			if err != nil {
				enc.Encode((&Frame{T: FrameErr, Err: err.Error()}).seal())
				return nil
			}
			if err := enc.Encode((&Frame{T: FrameSnap, LSN: uint64(lsn), NextOID: uint64(nextOID)}).seal()); err != nil {
				return nil
			}
			for _, o := range objs {
				if err := enc.Encode((&Frame{T: FrameObj, OID: uint64(o.OID), Data: o.Data}).seal()); err != nil {
					return nil
				}
			}
			if err := enc.Encode((&Frame{T: FrameSnapEnd}).seal()); err != nil {
				return nil
			}
			h.snapshotsShipped.Inc()
			from = lsn
			h.setPos(s, from)
		}
	}

	// Pongs are the only upstream frames from here on; a side reader
	// drains them and observes RTT on this clock. It exits when the
	// connection closes (the server closes conn when this handler
	// returns). It starts only after any recon exchange: the exchange
	// owns the shared decoder until it completes, and a replica sends
	// nothing between its last recon frame and the first pong.
	go func() {
		for {
			var f Frame
			if err := dec.Decode(&f); err != nil {
				return
			}
			if f.T == FramePong && f.TS > 0 {
				if d := time.Now().UnixNano() - f.TS; d >= 0 {
					h.pingRTT.Observe(d)
				}
			}
		}
	}()

	ping := time.NewTimer(h.opts.PingInterval)
	defer ping.Stop()
	for {
		recs, next, end, err := log.ReadDurable(from, h.opts.MaxBatchBytes)
		if err != nil {
			if errors.Is(err, wal.ErrTruncatedLSN) {
				// Should be impossible while we hold the pin; surface it
				// rather than ship a gap.
				enc.Encode((&Frame{T: FrameErr, Err: err.Error()}).seal())
				return nil
			}
			enc.Encode((&Frame{T: FrameErr, Err: err.Error()}).seal())
			return fmt.Errorf("repl: read durable at %d: %w", from, err)
		}
		if len(recs) > 0 {
			frame := &Frame{T: FrameRecs, LSN: uint64(from), Next: uint64(next), End: uint64(end)}
			off := from
			frame.Recs = make([]WireRec, len(recs))
			for i := range recs {
				off += wal.LSN(wal.EncodedSize(&recs[i]))
				frame.Recs[i] = WireRec{
					Type: uint8(recs[i].Type),
					Txn:  recs[i].Txn,
					OID:  recs[i].OID,
					Data: recs[i].Data,
					Next: uint64(off),
				}
			}
			if off != next {
				enc.Encode((&Frame{T: FrameErr, Err: "repl: internal: record sizes disagree with batch bounds"}).seal())
				return fmt.Errorf("repl: sized records to %d, batch next is %d", off, next)
			}
			if err := enc.Encode(frame.seal()); err != nil {
				return nil // subscriber gone
			}
			h.recordsShipped.Add(uint64(len(recs)))
			h.bytesShipped.Add(uint64(next - from))
			from = next
			h.setPos(s, from)
			continue
		}
		// Caught up: wait for a commit, the ping tick, or shutdown.
		if !ping.Stop() {
			select {
			case <-ping.C:
			default:
			}
		}
		ping.Reset(h.opts.PingInterval)
		select {
		case <-s.wake:
		case <-ping.C:
			if err := enc.Encode((&Frame{T: FramePing, End: uint64(end), TS: time.Now().UnixNano()}).seal()); err != nil {
				return nil
			}
		case <-h.closed:
			enc.Encode((&Frame{T: FrameErr, Err: "repl: hub closed"}).seal())
			return nil
		}
	}
}
