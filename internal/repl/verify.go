package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"ode/internal/obs"
	"ode/internal/server"
	"ode/internal/storage"
)

// Typed verify outcomes. ErrDiverged is returned by a detect-only audit
// that confirmed divergence; ErrRepairFailed when repair retries ran
// out without converging; ErrLagged when the replica could not catch up
// to the primary's capture point, so lag and divergence cannot be told
// apart.
var (
	ErrDiverged     = errors.New("repl: replica diverged from primary")
	ErrRepairFailed = errors.New("repl: divergence repair did not converge")
	ErrLagged       = errors.New("repl: replica lagging; divergence audit inconclusive")
)

// VerifyOptions tunes the online divergence audit.
type VerifyOptions struct {
	// Repair authorizes in-place repair of confirmed divergence.
	Repair bool
	// Class, when non-zero, scopes the audit (and any repair) to one
	// catalog class: both sides digest only that class's objects, so
	// the exchange costs O(class) instead of O(store) and the report
	// never names an OID outside the class. The repl.verify op maps a
	// class name to this ID; class IDs are identical on primary and
	// replica because the catalog itself replicates.
	Class uint32
	// Rounds caps the audit rounds used to separate real divergence
	// from replication churn (default 4, minimum 2).
	Rounds int
	// RepairAttempts caps repair→confirm cycles (default 3).
	RepairAttempts int
	// CatchUp bounds the per-round wait for the replica's applied
	// position to reach the primary's capture LSN (default 10s; must
	// stay under the exchange's read timeout).
	CatchUp time.Duration
	// BackoffBase/BackoffMax shape the capped exponential backoff
	// between rounds and repair attempts (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// VerifyReport is the audit's outcome, served by the repl.verify op.
type VerifyReport struct {
	InSync bool `json:"in_sync"`
	// Diverged lists OIDs whose (local, remote) digest pair persisted
	// across consecutive rounds with the replica caught up — real
	// divergence, not stream lag.
	Diverged []uint64 `json:"diverged,omitempty"`
	// Repaired lists OIDs rewritten or freed by an authorized repair.
	Repaired []uint64 `json:"repaired,omitempty"`
	// Unstable counts diff entries that kept changing between rounds
	// (objects being rewritten by the live stream); they self-heal.
	Unstable       int    `json:"unstable,omitempty"`
	Rounds         int    `json:"rounds"`
	Symbols        uint64 `json:"symbols"`
	CaptureLSN     uint64 `json:"capture_lsn"`
	PrimaryObjects uint64 `json:"primary_objects"`
	// Class echoes the scoping catalog class ID (0 = whole store);
	// PrimaryObjects counts only that class when set.
	Class uint32 `json:"class,omitempty"`
}

// digestPair is one OID's claim on both sides of an exchange; equal
// pairs across two caught-up rounds confirm divergence (a live-stream
// rewrite would have changed at least one side between captures).
type digestPair struct {
	local, remote       uint64
	hasLocal, hasRemote bool
}

func pairsOf(res *reconResult) map[uint64]digestPair {
	m := make(map[uint64]digestPair, len(res.remoteOnly)+len(res.localOnly))
	for _, it := range res.remoteOnly {
		p := m[it.Key]
		p.remote, p.hasRemote = it.Digest, true
		m[it.Key] = p
	}
	for _, it := range res.localOnly {
		p := m[it.Key]
		p.local, p.hasLocal = it.Digest, true
		m[it.Key] = p
	}
	return m
}

func sortedOIDs(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for oid := range set {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Verify audits this replica's store against the primary over the
// repl.recon op and reports whether they agree. It is safe on a
// running replica (the audit distinguishes divergence from stream lag
// by requiring the replica to catch up to each capture point and the
// divergent digest pair to persist across consecutive rounds) and on a
// stopped one (position equality substitutes for catch-up). On
// confirmed divergence it bumps repl.diverged, records a "divergence"
// flight incident, and — only when opts.Repair is set — rewrites the
// divergent objects in place with typed, capped-backoff retries.
func (r *Replica) Verify(opts VerifyOptions) (*VerifyReport, error) {
	r.verifyMu.Lock()
	defer r.verifyMu.Unlock()
	if opts.Rounds < 2 {
		opts.Rounds = 4
	}
	if opts.RepairAttempts <= 0 {
		opts.RepairAttempts = 3
	}
	if opts.CatchUp <= 0 {
		opts.CatchUp = 10 * time.Second
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Second
	}
	r.verifyRuns.Inc()

	rep := &VerifyReport{Class: opts.Class}
	bo := server.Backoff{Base: opts.BackoffBase, Max: opts.BackoffMax}
	var prev map[uint64]digestPair
	var lastErr error
	for round := 0; round < opts.Rounds; round++ {
		if round > 0 {
			time.Sleep(bo.Next())
		}
		res, err := r.verifyRound(nil, opts.CatchUp, opts.Class)
		if err != nil {
			if errors.Is(err, ErrLagged) {
				return rep, err
			}
			lastErr = err // transient link failure: burn a round, retry
			continue
		}
		rep.Rounds++
		rep.Symbols += res.symbols
		rep.CaptureLSN = res.captureLSN
		rep.PrimaryObjects = res.remoteN
		if res.inSync || len(res.remoteOnly)+len(res.localOnly) == 0 {
			rep.InSync = true
			return rep, nil
		}
		pairs := pairsOf(res)
		if prev == nil {
			prev = pairs
			continue
		}
		stable := map[uint64]bool{}
		for oid, p := range pairs {
			if q, ok := prev[oid]; ok && q == p {
				stable[oid] = true
			}
		}
		rep.Unstable = len(pairs) - len(stable)
		if len(stable) == 0 {
			// Pure churn: every diff entry moved between captures, which
			// is the signature of the live stream rewriting hot objects.
			prev = pairs
			continue
		}
		rep.Diverged = sortedOIDs(stable)
		r.diverged.Add(uint64(len(stable)))
		obs.Flight().Record(obs.IncDivergence, obs.Cause{}, obs.Cause{}, uint64(len(stable)),
			fmt.Sprintf("%d objects differ from primary %s", len(stable), r.primary))
		if !opts.Repair {
			return rep, ErrDiverged
		}
		return r.repairDiverged(rep, stable, opts, &bo)
	}
	if lastErr != nil && rep.Rounds == 0 {
		return rep, fmt.Errorf("repl: verify could not complete a round: %w", lastErr)
	}
	// Rounds exhausted without two consecutive matching diffs: nothing
	// confirmable under live churn.
	rep.InSync = rep.Unstable == 0 && len(prev) == 0
	return rep, nil
}

// verifyRound runs one exchange against the primary. fetch, when
// non-nil, requests the primary images for those OIDs (repair);
// nil stops at the decoded difference (audit). class, when non-zero,
// scopes both sides' inventories to that catalog class. Each round
// waits for the replica to catch up to the primary's capture LSN so
// the decoded difference cannot be explained by un-applied history.
func (r *Replica) verifyRound(fetch map[uint64]bool, catchUp time.Duration, class uint32) (*reconResult, error) {
	conn, err := r.dial()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(&server.Request{Op: OpRecon, ID: uint64(class)}); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(reconReadTimeout))
	var f Frame
	if err := dec.Decode(&f); err != nil {
		return nil, err
	}
	if err := checkSum(&f); err != nil {
		return nil, err
	}
	if f.T == FrameErr {
		return nil, fmt.Errorf("repl: primary: %s", f.Err)
	}
	if f.T != FrameRecon {
		return nil, fmt.Errorf("repl: expected recon frame, got %q", f.T)
	}
	deadline := time.Now().Add(catchUp)
	for r.applied.Load() < f.LSN {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: applied %d behind capture %d", ErrLagged, r.applied.Load(), f.LSN)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return r.runRecon(&f, conn, enc, dec, fetch != nil, fetch, class)
}

// repairDiverged rewrites the confirmed-divergent objects from the
// primary's images and re-audits, retrying with capped backoff until
// the divergence is gone or attempts run out.
func (r *Replica) repairDiverged(rep *VerifyReport, stable map[uint64]bool, opts VerifyOptions, bo *server.Backoff) (*VerifyReport, error) {
	var lastErr error
	for attempt := 0; attempt < opts.RepairAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Next())
		}
		res, err := r.verifyRound(stable, opts.CatchUp, opts.Class)
		if err != nil {
			lastErr = err
			continue
		}
		rep.Symbols += res.symbols
		ops := res.reconOps(stable)
		if len(ops) > 0 {
			if err := r.store.ApplyReplicated(reconTxnBase+res.captureLSN, ops); err != nil {
				lastErr = err
				continue
			}
			r.objectsRepaired.Add(uint64(len(ops)))
			r.store.EnsureNextOID(storage.OID(res.nextOID))
			repaired := map[uint64]bool{}
			for _, op := range ops {
				repaired[uint64(op.OID)] = true
			}
			rep.Repaired = sortedOIDs(repaired)
		}
		// Confirm: a fresh audit round must no longer see any of the
		// repaired OIDs in the diff.
		chk, err := r.verifyRound(nil, opts.CatchUp, opts.Class)
		if err != nil {
			lastErr = err
			continue
		}
		rep.Symbols += chk.symbols
		still := 0
		for _, oid := range chk.diffOIDs() {
			if stable[oid] {
				still++
			}
		}
		if still == 0 {
			rep.InSync = chk.inSync || len(chk.remoteOnly)+len(chk.localOnly) == 0
			return rep, nil
		}
		lastErr = fmt.Errorf("%d objects still divergent after repair", still)
	}
	return rep, fmt.Errorf("%w: %v", ErrRepairFailed, lastErr)
}
