package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"ode/internal/antientropy"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/eos"
	"ode/internal/wal"
)

// Tuning constants for the anti-entropy exchange. The symbol stream is
// rateless, so these only shape batching and the give-up point, never
// correctness.
const (
	// reconBuckets is the digest-walk width offered in the recon frame.
	reconBuckets = 64
	// reconMaxBatch caps one sym frame's worth of coded symbols.
	reconMaxBatch = 4096
	// reconReadTimeout bounds each wait for the peer's next frame
	// during an exchange (both sides; an exchange is request/response,
	// unlike the one-way subscribe stream).
	reconReadTimeout = 30 * time.Second
)

// errReconAbort reports that the exchange was abandoned in favor of a
// full snapshot (the decoder's symbol budget ran out, meaning the
// difference is comparable to the store itself).
var errReconAbort = errors.New("repl: reconciliation aborted, falling back to snapshot")

// serveRecon runs the primary half of one anti-entropy exchange on an
// established stream connection: offer the fenced digest inventory,
// answer "more" requests with coded-symbol batches, and ship the
// divergent objects the peer asks for. Returns the inventory's capture
// LSN — the position a subscribe stream must resume from so the
// repaired store plus the following records equals a log replay.
// aborted means the peer gave up (or never needed anything beyond the
// digests); the caller falls back to a snapshot or just moves on.
// class, when non-zero, scopes the offered inventory to that catalog
// class (the peer must scope its own side identically).
func (h *Hub) serveRecon(conn net.Conn, enc *json.Encoder, dec *json.Decoder, clearDeadline bool, class uint32) (capture wal.LSN, aborted bool, err error) {
	if clearDeadline {
		// The subscribe stream runs without read deadlines; restore that
		// once the request/response exchange is over.
		defer conn.SetReadDeadline(time.Time{})
	}
	capture, nextOID, items, err := exportScoped(h.store, class)
	if err != nil {
		enc.Encode((&Frame{T: FrameErr, Err: err.Error()}).seal())
		return 0, false, err
	}
	h.reconSessions.Inc()
	root := antientropy.DigestSet(items)
	offer := &Frame{
		T:       FrameRecon,
		LSN:     uint64(capture),
		NextOID: uint64(nextOID),
		N:       uint64(len(items)),
		Root:    &root,
		Buckets: antientropy.DigestBuckets(items, reconBuckets),
	}
	if err := enc.Encode(offer.seal()); err != nil {
		return 0, false, err
	}
	var symEnc *antientropy.Encoder
	for {
		conn.SetReadDeadline(time.Now().Add(reconReadTimeout))
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return 0, false, err
		}
		if err := checkSum(&f); err != nil {
			return 0, false, err
		}
		switch f.T {
		case FrameMore:
			if f.N == 0 {
				return 0, true, nil // peer wants the full snapshot
			}
			n := f.N
			if n > reconMaxBatch {
				n = reconMaxBatch
			}
			if symEnc == nil {
				symEnc = antientropy.NewEncoder(items)
			}
			batch := &Frame{T: FrameSym, Syms: make([]antientropy.CodedSymbol, n)}
			for i := range batch.Syms {
				batch.Syms[i] = symEnc.Next()
			}
			if err := enc.Encode(batch.seal()); err != nil {
				return 0, false, err
			}
			h.symbolsSent.Add(n)
		case FrameNeed:
			for _, oid := range f.OIDs {
				data, err := h.store.Read(storage.OID(oid))
				obj := &Frame{T: FrameObj, OID: oid, Data: data}
				if errors.Is(err, storage.ErrNotFound) {
					// Freed on the primary after the digest capture; the
					// peer frees it locally and the record stream replays
					// the free idempotently anyway.
					obj = &Frame{T: FrameObj, OID: oid, Gone: true}
				} else if err != nil {
					enc.Encode((&Frame{T: FrameErr, Err: err.Error()}).seal())
					return 0, false, err
				}
				if err := enc.Encode(obj.seal()); err != nil {
					return 0, false, err
				}
				h.reconObjects.Inc()
			}
			if err := enc.Encode((&Frame{T: FrameReconEnd, End: uint64(h.store.Log().End())}).seal()); err != nil {
				return 0, false, err
			}
			return capture, false, nil
		case FrameReconEnd:
			// Peer is satisfied with the digests alone (in sync, or a
			// verify pass that doesn't want images).
			return capture, false, nil
		default:
			return 0, false, fmt.Errorf("repl: unexpected frame %q during reconciliation", f.T)
		}
	}
}

// HandleRecon is the server.StreamHandler for OpRecon: one anti-entropy
// exchange and the connection is done. Request.ID, when non-zero, is
// the catalog class ID scoping the exchange to one class. Register as
//
//	Options.StreamOps[repl.OpRecon] = hub.HandleRecon
func (h *Hub) HandleRecon(conn net.Conn, req *server.Request) error {
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	h.serveRecon(conn, enc, dec, false, uint32(req.ID))
	return nil
}

// exportScoped captures a digest inventory, whole-store (class 0) or
// restricted to one catalog class. Scoping still fences the full store
// state — the capture LSN is the same either way.
func exportScoped(store *eos.Manager, class uint32) (wal.LSN, storage.OID, []antientropy.Item, error) {
	if class == 0 {
		return store.ExportDigests()
	}
	lsn, nextOID, tagged, err := store.ExportClassDigests()
	if err != nil {
		return 0, 0, nil, err
	}
	return lsn, nextOID, antientropy.FilterClass(tagged, class), nil
}

// --- replica side ------------------------------------------------------------

// reconResult is one completed exchange seen from the replica: the
// primary's capture point, the decoded symmetric difference, and (when
// images were fetched) the divergent objects themselves.
type reconResult struct {
	captureLSN uint64
	nextOID    uint64
	remoteN    uint64 // primary's object count at capture
	symbols    uint64 // coded symbols consumed
	inSync     bool   // roots matched; no symbols flowed

	remoteOnly []antientropy.Item // present on primary, absent/different here
	localOnly  []antientropy.Item // present here, absent/different on primary

	// objs maps each fetched OID to its primary image; a nil entry
	// means the primary freed it (ship a local free). Only populated
	// when the exchange was run with fetch=true.
	objs map[uint64][]byte
	end  uint64 // primary durable end as of reconend (0 if not fetched)
}

// diffOIDs returns the divergent OIDs (union of both sides), sorted.
func (res *reconResult) diffOIDs() []uint64 {
	seen := map[uint64]bool{}
	for _, it := range res.remoteOnly {
		seen[it.Key] = true
	}
	for _, it := range res.localOnly {
		seen[it.Key] = true
	}
	out := make([]uint64, 0, len(seen))
	for oid := range seen {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runRecon drives the replica half of an exchange whose opening recon
// frame has already been decoded into f. With fetch=true it asks for
// the divergent images (rejoin/repair); with fetch=false it stops at
// the decoded difference (verify). only, when non-nil, restricts the
// fetched set to those OIDs. class, when non-zero, scopes the local
// inventory to that catalog class and must match what the primary was
// asked to offer. Returns errReconAbort when the symbol budget runs
// out before the difference decodes.
func (r *Replica) runRecon(f *Frame, conn net.Conn, enc *json.Encoder, dec *json.Decoder, fetch bool, only map[uint64]bool, class uint32) (*reconResult, error) {
	_, _, items, err := exportScoped(r.store, class)
	if err != nil {
		return nil, err
	}
	res := &reconResult{captureLSN: f.LSN, nextOID: f.NextOID, remoteN: f.N}
	if f.Root != nil && antientropy.DigestSet(items).Equal(*f.Root) {
		if err := enc.Encode((&Frame{T: FrameReconEnd}).seal()); err != nil {
			return nil, err
		}
		res.inSync = true
		return res, nil
	}

	// Size the first ask from the digest walk: each differing bucket
	// holds at least one divergent item, and decoding d items takes a
	// small multiple of d symbols.
	ask := uint64(8)
	if f.Buckets != nil {
		ask += 4 * uint64(antientropy.DiffBuckets(antientropy.DigestBuckets(items, len(f.Buckets)), f.Buckets))
	}
	sdec := antientropy.NewDecoder(items)
	budget := uint64(6*(len(items)+int(f.N)) + 64)
	for !sdec.Decoded() {
		if res.symbols >= budget {
			// The difference is on the order of the store itself; a full
			// snapshot is cheaper than continuing to stream symbols.
			enc.Encode((&Frame{T: FrameMore, N: 0}).seal())
			return nil, errReconAbort
		}
		if ask > reconMaxBatch {
			ask = reconMaxBatch
		}
		if err := enc.Encode((&Frame{T: FrameMore, N: ask}).seal()); err != nil {
			return nil, err
		}
		conn.SetReadDeadline(time.Now().Add(reconReadTimeout))
		var sf Frame
		if err := dec.Decode(&sf); err != nil {
			return nil, err
		}
		if err := checkSum(&sf); err != nil {
			return nil, err
		}
		if sf.T == FrameErr {
			return nil, fmt.Errorf("repl: primary: %s", sf.Err)
		}
		if sf.T != FrameSym {
			return nil, fmt.Errorf("repl: expected sym frame, got %q", sf.T)
		}
		for i := range sf.Syms {
			sdec.AddSymbol(sf.Syms[i])
			res.symbols++
			r.symbolsReceived.Inc()
			if sdec.Decoded() {
				break
			}
		}
		ask *= 2
	}
	res.remoteOnly, res.localOnly = sdec.Diff()
	r.diffsDecoded.Add(uint64(len(res.remoteOnly) + len(res.localOnly)))

	if !fetch {
		if err := enc.Encode((&Frame{T: FrameReconEnd}).seal()); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Fetch the images for everything the primary has that we lack (a
	// modified object is remote-only + local-only under one OID; the
	// image covers it). Local-only OIDs with no remote counterpart are
	// frees and need no bytes.
	need := make([]uint64, 0, len(res.remoteOnly))
	for _, it := range res.remoteOnly {
		if only != nil && !only[it.Key] {
			continue
		}
		need = append(need, it.Key)
	}
	sort.Slice(need, func(i, j int) bool { return need[i] < need[j] })
	if err := enc.Encode((&Frame{T: FrameNeed, OIDs: need}).seal()); err != nil {
		return nil, err
	}
	res.objs = make(map[uint64][]byte, len(need))
	for {
		conn.SetReadDeadline(time.Now().Add(reconReadTimeout))
		var of Frame
		if err := dec.Decode(&of); err != nil {
			return nil, err
		}
		if err := checkSum(&of); err != nil {
			return nil, err
		}
		switch of.T {
		case FrameObj:
			if of.Gone {
				res.objs[of.OID] = nil
			} else {
				data := make([]byte, len(of.Data))
				copy(data, of.Data)
				res.objs[of.OID] = data
			}
		case FrameReconEnd:
			res.end = of.End
			return res, nil
		case FrameErr:
			return nil, fmt.Errorf("repl: primary: %s", of.Err)
		default:
			return nil, fmt.Errorf("repl: unexpected frame %q while fetching objects", of.T)
		}
	}
}

// reconOps turns a fetched exchange into one replicated batch: writes
// for every image the primary shipped, frees for objects the primary
// lacks (including ones it freed mid-exchange). only, when non-nil,
// restricts the repair to those OIDs.
func (res *reconResult) reconOps(only map[uint64]bool) []storage.Op {
	remote := map[uint64]bool{}
	for _, it := range res.remoteOnly {
		remote[it.Key] = true
	}
	ops := make([]storage.Op, 0, len(res.objs)+len(res.localOnly))
	for _, oid := range res.diffOIDs() {
		if only != nil && !only[oid] {
			continue
		}
		if data, ok := res.objs[oid]; ok {
			if data == nil {
				ops = append(ops, storage.Op{Kind: storage.OpFree, OID: storage.OID(oid)})
			} else {
				ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: storage.OID(oid), Data: data})
			}
			continue
		}
		if !remote[oid] {
			// Only we have it; the primary never did (or freed it).
			ops = append(ops, storage.Op{Kind: storage.OpFree, OID: storage.OID(oid)})
		}
	}
	return ops
}
