package repl

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/server"
	"ode/internal/storage/eos"
)

// Acct is the test fixture: a two-step composite event "after Buy,
// after PayBill" whose first half happens on the primary and second
// half on the promoted replica.
type Acct struct {
	Bal float64
}

func seqClass(fired *atomic.Uint64) *core.Class {
	return core.MustClass("Acct",
		core.Factory(func() any { return new(Acct) }),
		core.Method("Buy", func(ctx *core.Ctx, self any, args []any) (any, error) {
			a := self.(*Acct)
			a.Bal += args[0].(float64)
			return a.Bal, nil
		}),
		core.Method("PayBill", func(ctx *core.Ctx, self any, args []any) (any, error) {
			a := self.(*Acct)
			a.Bal -= args[0].(float64)
			return a.Bal, nil
		}),
		core.Events("after Buy", "after PayBill"),
		core.Trigger("Seq", "after Buy, after PayBill",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				fired.Add(1)
				return nil
			}),
	)
}

// primary bundles one primary's moving parts.
type primary struct {
	db    *core.Database
	store *eos.Manager
	hub   *Hub
	srv   *server.Server
	addr  string
}

func startPrimary(t *testing.T, path string, cls *core.Class) *primary {
	t.Helper()
	store, err := eos.Open(path, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(cls); err != nil {
		t.Fatal(err)
	}
	hub := NewHub(store, HubOptions{PingInterval: 50 * time.Millisecond})
	hub.RegisterMetrics(db.Observability())
	srv := server.NewWithOptions(db, server.Options{
		StreamOps: map[string]server.StreamHandler{
			OpSubscribe: hub.HandleSubscribe,
			OpRecon:     hub.HandleRecon,
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return &primary{db: db, store: store, hub: hub, srv: srv, addr: addr}
}

func (p *primary) shutdown() {
	p.srv.Close()
	p.hub.Close()
	p.db.Close()
}

func startReplica(t *testing.T, dir, name, addr string) (*Replica, *eos.Manager) {
	t.Helper()
	path := filepath.Join(dir, name)
	store, err := eos.Open(path, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(addr, store, ReplicaOptions{
		PosPath:    path + ".replpos",
		RedialBase: 5 * time.Millisecond,
		RedialMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	return rep, store
}

// commitBuy runs one Buy in its own transaction.
func commitOp(t *testing.T, db *core.Database, ref core.Ref, method string, amt float64) {
	t.Helper()
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, method, amt); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFailoverResumesCompositeEvent is the tentpole acceptance test: a
// composite event "after Buy, after PayBill" half-matched on the
// primary completes — exactly once — on the promoted replica, because
// the trigger's persistent FSM state rides the shipped log.
func TestFailoverResumesCompositeEvent(t *testing.T) {
	dir := t.TempDir()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)

	// Primary: create the account, arm the trigger, and run the first
	// half of the sequence.
	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.db.Activate(tx, ref, "Seq"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	commitOp(t, p.db, ref, "Buy", 100)
	if n := fired.Load(); n != 0 {
		t.Fatalf("trigger fired %d times on primary after half the sequence", n)
	}

	// Replica: bootstrap, then build the database layer over the synced
	// store — read-only, so construction and Register write nothing.
	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rdb, err := core.NewDatabase(rstore)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.Register(cls); err != nil {
		t.Fatal(err)
	}
	rep.AttachDatabase(rdb)

	// The replica serves reads and rejects writes.
	rt := rdb.Begin()
	v, err := rdb.Get(rt, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*Acct).Bal; got != 100 {
		t.Fatalf("replica Bal = %v, want 100", got)
	}
	if _, err := rdb.Invoke(rt, ref, "Buy", 1.0); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica write = %v, want ErrReadOnly", err)
	}
	rt.Abort()

	// Drain any in-flight lag, fail the primary, promote the replica.
	waitFor(t, "zero lag", func() bool { return rep.Status().LagBytes == 0 })
	p.shutdown()
	rep.Promote()
	if !rep.Status().Promoted {
		t.Fatal("Status().Promoted false after Promote")
	}

	// Second half of the sequence on the promoted replica: the FSM
	// resumes mid-expression and fires exactly once.
	commitOp(t, rdb, ref, "PayBill", 40)
	if n := fired.Load(); n != 1 {
		t.Fatalf("trigger fired %d times after failover, want exactly 1", n)
	}
	// The sequence is consumed (not perpetual): running it again from
	// scratch must NOT fire — no duplicated trigger state.
	commitOp(t, rdb, ref, "PayBill", 1)
	if n := fired.Load(); n != 1 {
		t.Fatalf("trigger fired %d times total, want exactly 1", n)
	}
}

// TestSnapshotBootstrap: a replica whose position was truncated away by
// a primary checkpoint bootstraps from a full-store snapshot and then
// follows the live stream.
func TestSnapshotBootstrap(t *testing.T) {
	dir := t.TempDir()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)
	defer p.shutdown()

	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		commitOp(t, p.db, ref, "Buy", 1)
	}
	// Checkpoint with no subscribers truncates the whole log: base > 0,
	// so a from-zero subscriber is out of range and gets a snapshot.
	if err := p.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if p.store.Log().Base() == 0 {
		t.Fatal("checkpoint did not advance the log base")
	}

	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	defer rep.Stop()
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := rep.snapshotsLoaded.Value(); got != 1 {
		t.Fatalf("snapshots loaded = %d, want 1", got)
	}

	rdb, err := core.NewDatabase(rstore)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.Register(cls); err != nil {
		t.Fatal(err)
	}
	rep.AttachDatabase(rdb)

	check := func(want float64) {
		rt := rdb.Begin()
		defer rt.Abort()
		v, err := rdb.Get(rt, ref)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.(*Acct).Bal; got != want {
			t.Fatalf("replica Bal = %v, want %v", got, want)
		}
	}
	check(10)

	// Live tail after the snapshot.
	commitOp(t, p.db, ref, "Buy", 5)
	waitFor(t, "live tail applied", func() bool {
		rt := rdb.Begin()
		defer rt.Abort()
		v, err := rdb.Get(rt, ref)
		return err == nil && v.(*Acct).Bal == 15
	})
}

// TestReplicaReconnect: the primary's listener flaps; the replica
// reconnects with backoff, resumes from its durable position, and
// catches up on writes that happened while it was cut off.
func TestReplicaReconnect(t *testing.T) {
	dir := t.TempDir()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)
	defer func() { p.db.Close() }()

	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	defer rep.Stop()
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Cut the link: stop the listener (the hub and store live on).
	if err := p.srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "disconnect noticed", func() bool { return !rep.Status().Connected })

	// Writes land while the replica is dark.
	commitOp(t, p.db, ref, "Buy", 7)

	// Listener returns on the same address.
	srv2 := server.NewWithOptions(p.db, server.Options{
		StreamOps: map[string]server.StreamHandler{OpSubscribe: p.hub.HandleSubscribe},
	})
	defer srv2.Close()
	waitFor(t, "rebind", func() bool {
		_, err := srv2.Listen(p.addr)
		return err == nil
	})

	pEnd := uint64(p.store.Log().End())
	waitFor(t, "catch-up after reconnect", func() bool {
		return rep.Status().AppliedLSN >= pEnd
	})
	if rep.Status().Reconnects == 0 {
		t.Fatal("no reconnect attempts recorded")
	}
	// Verify the dark-period write arrived.
	rdb, err := core.NewDatabase(rstore)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.Register(cls); err != nil {
		t.Fatal(err)
	}
	rt := rdb.Begin()
	defer rt.Abort()
	v, err := rdb.Get(rt, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*Acct).Bal; got != 7 {
		t.Fatalf("replica Bal = %v, want 7", got)
	}
}

// TestReplicaRestartResumes: a stopped replica restarted with its
// sidecar position resumes the stream without a snapshot and without
// re-applying divergent state.
func TestReplicaRestartResumes(t *testing.T) {
	dir := t.TempDir()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)
	defer p.shutdown()

	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	commitOp(t, p.db, ref, "Buy", 3)

	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	pos := rep.Status().AppliedLSN
	rep.Stop()
	if err := rstore.Close(); err != nil {
		t.Fatal(err)
	}

	// More writes while the replica is down.
	commitOp(t, p.db, ref, "Buy", 4)

	rep2, rstore2 := startReplica(t, dir, "replica.db", p.addr)
	defer rep2.Stop()
	if got := rep2.Status().AppliedLSN; got != pos {
		t.Fatalf("restart resume position = %d, want sidecar position %d", got, pos)
	}
	if err := rep2.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := rep2.snapshotsLoaded.Value(); got != 0 {
		t.Fatalf("restart loaded %d snapshots, want 0 (resume from sidecar)", got)
	}

	rdb, err := core.NewDatabase(rstore2)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.Register(cls); err != nil {
		t.Fatal(err)
	}
	rt := rdb.Begin()
	defer rt.Abort()
	v, err := rdb.Get(rt, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*Acct).Bal; got != 7 {
		t.Fatalf("replica Bal after restart = %v, want 7", got)
	}
}
