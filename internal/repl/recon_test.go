package repl

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"ode/internal/antientropy"
	"ode/internal/core"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/eos"
)

// sameStoreBytes asserts two stores hold byte-identical object sets.
func sameStoreBytes(t *testing.T, what string, a, b *eos.Manager) {
	t.Helper()
	_, _, ia, err := a.ExportDigests()
	if err != nil {
		t.Fatal(err)
	}
	_, _, ib, err := b.ExportDigests()
	if err != nil {
		t.Fatal(err)
	}
	da, db := antientropy.DigestSet(ia), antientropy.DigestSet(ib)
	if !da.Equal(db) {
		t.Fatalf("%s: stores differ: %d vs %d objects (digests %+v vs %+v)", what, len(ia), len(ib), da, db)
	}
}

// setupSyncedPair builds a primary with objCount committed objects and
// a replica fully caught up with it, then returns both plus the ref.
func setupSyncedPair(t *testing.T, dir string, objCount int) (*primary, *Replica, *eos.Manager, core.Ref) {
	t.Helper()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)
	t.Cleanup(p.shutdown)

	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < objCount; i++ {
		tx := p.db.Begin()
		if _, err := p.db.Create(tx, "Acct", &Acct{Bal: float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return p, rep, rstore, ref
}

// TestReconRejoin is the O(drift) rejoin proof at unit scale: a replica
// whose resume position was checkpoint-truncated away reconciles the
// drift instead of loading a snapshot, ships only the divergent
// objects, and converges byte-exact.
func TestReconRejoin(t *testing.T) {
	dir := t.TempDir()
	const objCount = 60
	p, rep, rstore, ref := setupSyncedPair(t, dir, objCount)

	// Cut the replica off, then drift the primary: a handful of writes
	// followed by a checkpoint that truncates them out of the log.
	rep.Stop()
	rstorePath := filepath.Join(dir, "replica.db")
	if err := rstore.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		commitOp(t, p.db, ref, "Buy", 1)
	}
	if err := p.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oldApplied := rep.Status().AppliedLSN
	if base := uint64(p.store.Log().Base()); oldApplied >= base {
		t.Fatalf("replica position %d still in range (base %d); drift setup broken", oldApplied, base)
	}

	// Restart the replica over the same store + sidecar.
	store2, err := eos.Open(rstorePath, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := NewReplica(p.addr, store2, ReplicaOptions{
		PosPath:    rstorePath + ".replpos",
		RedialBase: 5 * time.Millisecond,
		RedialMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2.Start()
	defer rep2.Stop()
	if err := rep2.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rejoin catch-up", func() bool {
		return rep2.Status().AppliedLSN >= uint64(p.store.Log().End())
	})

	if got := p.hub.reconRejoins.Value(); got != 1 {
		t.Fatalf("recon rejoins = %d, want 1", got)
	}
	if got := p.hub.snapshotsShipped.Value(); got != 0 {
		t.Fatalf("snapshots shipped = %d, want 0 (rejoin must not bootstrap)", got)
	}
	if got := rep2.snapshotsLoaded.Value(); got != 0 {
		t.Fatalf("snapshots loaded = %d, want 0", got)
	}
	// Drift was a few object rewrites (plus trigger/catalog state the
	// writes touched); the shipped set must be a small fraction of the
	// store, or "O(drift)" is a lie.
	shipped := p.hub.reconObjects.Value()
	if shipped == 0 || shipped > objCount/2 {
		t.Fatalf("recon shipped %d objects for a %d-object store with ~5 divergent", shipped, objCount)
	}
	sameStoreBytes(t, "after rejoin", p.store, rep2.Store())
}

// corruptReplica flips object bytes directly in the replica's store,
// simulating disk rot beneath the stream. Returns the OIDs flipped.
func corruptReplica(t *testing.T, rstore *eos.Manager, n int) []uint64 {
	t.Helper()
	_, _, items, err := rstore.ExportDigests()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	if len(items) < n {
		t.Fatalf("store has only %d objects, need %d", len(items), n)
	}
	oids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		it := items[i*len(items)/n] // spread across the OID space
		data, err := rstore.Read(storage.OID(it.Key))
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x5a
		if err := rstore.ApplyReplicated(reconTxnBase+uint64(i), []storage.Op{
			{Kind: storage.OpWrite, OID: storage.OID(it.Key), Data: data},
		}); err != nil {
			t.Fatal(err)
		}
		oids = append(oids, it.Key)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids
}

// TestVerifyDetectsAndRepairs is the divergence chaos proof at unit
// scale: seeded byte flips (plus a local free and a phantom object) on
// the replica are all detected by Verify, detect-only returns the typed
// ErrDiverged with the exact OID set, and an authorized repair
// converges the store byte-exact.
func TestVerifyDetectsAndRepairs(t *testing.T) {
	dir := t.TempDir()
	p, rep, rstore, _ := setupSyncedPair(t, dir, 30)
	defer rep.Stop()

	flipped := corruptReplica(t, rstore, 5)

	// A phantom object only the replica has, and a legitimate object
	// freed only on the replica: repair must free the former and
	// restore the latter.
	phantomOID := uint64(100000)
	if err := rstore.ApplyReplicated(reconTxnBase+100, []storage.Op{
		{Kind: storage.OpWrite, OID: storage.OID(phantomOID), Data: []byte("phantom")},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, items, err := p.store.ExportDigests()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	freedOID := items[len(items)-1].Key
	if err := rstore.ApplyReplicated(reconTxnBase+101, []storage.Op{
		{Kind: storage.OpFree, OID: storage.OID(freedOID)},
	}); err != nil {
		t.Fatal(err)
	}

	want := append(append([]uint64{}, flipped...), phantomOID, freedOID)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	fast := VerifyOptions{BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond}

	// Detect-only: typed error, exact OID set, counter, incident.
	report, err := rep.Verify(fast)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("Verify = %v, want ErrDiverged (report %+v)", err, report)
	}
	if len(report.Diverged) != len(want) {
		t.Fatalf("diverged = %v, want %v", report.Diverged, want)
	}
	for i, oid := range want {
		if report.Diverged[i] != oid {
			t.Fatalf("diverged = %v, want %v", report.Diverged, want)
		}
	}
	if got := rep.diverged.Value(); got != uint64(len(want)) {
		t.Fatalf("repl.diverged = %d, want %d", got, len(want))
	}

	// Repair: converges byte-exact, reports what it rewrote.
	fixRep := fast
	fixRep.Repair = true
	report, err = rep.Verify(fixRep)
	if err != nil {
		t.Fatalf("repair Verify: %v (report %+v)", err, report)
	}
	if !report.InSync {
		t.Fatalf("repair did not converge: %+v", report)
	}
	if len(report.Repaired) != len(want) {
		t.Fatalf("repaired = %v, want %v", report.Repaired, want)
	}
	sameStoreBytes(t, "after repair", p.store, rstore)

	// And a clean audit now reports in-sync with no error.
	report, err = rep.Verify(fast)
	if err != nil || !report.InSync {
		t.Fatalf("post-repair Verify = %+v, %v; want clean", report, err)
	}
}

// TestVerifyLiveChurnNoFalsePositive: a replica that merely lags a hot
// primary must not be declared diverged — churn shows up as unstable
// pairs, never as a confirmed divergence.
func TestVerifyLiveChurnNoFalsePositive(t *testing.T) {
	dir := t.TempDir()
	p, rep, _, ref := setupSyncedPair(t, dir, 10)
	defer rep.Stop()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				commitOp(t, p.db, ref, "Buy", 1)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	report, err := rep.Verify(VerifyOptions{BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	close(stop)
	<-done
	if errors.Is(err, ErrDiverged) {
		t.Fatalf("live churn misreported as divergence: %+v", report)
	}
	if err != nil && !errors.Is(err, ErrLagged) {
		t.Fatalf("Verify under churn: %v", err)
	}
}

// TestSidecarTornWrite (satellite): a torn/partial sidecar must read as
// "resume from zero", and the replica then rejoins and converges.
func TestSidecarTornWrite(t *testing.T) {
	dir := t.TempDir()
	p, rep, rstore, _ := setupSyncedPair(t, dir, 12)

	rep.Stop()
	path := filepath.Join(dir, "replica.db")
	if err := rstore.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the sidecar: 3 of 8 bytes.
	if err := os.WriteFile(path+".replpos", []byte{0xde, 0xad, 0xbe}, 0o644); err != nil {
		t.Fatal(err)
	}
	if pos, err := loadPos(path + ".replpos"); err != nil || pos != 0 {
		t.Fatalf("torn sidecar loaded as (%d, %v), want (0, nil)", pos, err)
	}

	store2, err := eos.Open(path, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := NewReplica(p.addr, store2, ReplicaOptions{
		PosPath:    path + ".replpos",
		RedialBase: 5 * time.Millisecond,
		RedialMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2.Start()
	defer rep2.Stop()
	if err := rep2.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "converged after torn sidecar", func() bool {
		return rep2.Status().AppliedLSN >= uint64(p.store.Log().End())
	})
	sameStoreBytes(t, "after torn-sidecar recovery", p.store, rep2.Store())
}

// TestSidecarStaleButValid (satellite): a stale-but-valid 8-byte
// sidecar — an older commit boundary — must be safe because the
// redo-only stream re-applies the gap idempotently.
func TestSidecarStaleButValid(t *testing.T) {
	dir := t.TempDir()
	p, rep, rstore, ref := setupSyncedPair(t, dir, 8)

	staleLSN := rep.Status().AppliedLSN // a real commit boundary, about to go stale
	for i := 0; i < 5; i++ {
		commitOp(t, p.db, ref, "Buy", 2)
	}
	waitFor(t, "tail applied", func() bool {
		return rep.Status().AppliedLSN >= uint64(p.store.Log().End())
	})
	rep.Stop()
	path := filepath.Join(dir, "replica.db")
	if err := rstore.Close(); err != nil {
		t.Fatal(err)
	}
	// Regress the sidecar to the stale boundary (valid 8 bytes).
	savePos(path+".replpos", staleLSN)
	if pos, _ := loadPos(path + ".replpos"); pos != staleLSN {
		t.Fatalf("sidecar roundtrip = %d, want %d", pos, staleLSN)
	}

	store2, err := eos.Open(path, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := NewReplica(p.addr, store2, ReplicaOptions{
		PosPath:    path + ".replpos",
		RedialBase: 5 * time.Millisecond,
		RedialMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2.Start()
	defer rep2.Stop()
	waitFor(t, "idempotent re-apply converged", func() bool {
		return rep2.Status().AppliedLSN >= uint64(p.store.Log().End())
	})
	// No snapshot, no recon rejoin: the stale position was in range.
	if got := rep2.snapshotsLoaded.Value(); got != 0 {
		t.Fatalf("stale-but-valid sidecar triggered %d snapshot loads", got)
	}
	sameStoreBytes(t, "after stale-sidecar replay", p.store, rep2.Store())
}

// TestRedialBackoffReset pins the backoff contract documented on
// streamOnce: progress before a drop returns nil (run() resets the
// backoff); a connection that fails before any frame returns an error
// (backoff keeps growing).
func TestRedialBackoffReset(t *testing.T) {
	dir := t.TempDir()
	store, err := eos.Open(filepath.Join(dir, "replica.db"), eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// fakePrimary accepts one connection, reads the subscribe request,
	// runs serve over it, and closes.
	fakePrimary := func(serve func(conn net.Conn)) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			var req server.Request
			if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&req); err != nil {
				return
			}
			serve(conn)
		}()
		return ln.Addr().String()
	}

	newRep := func(addr string) *Replica {
		r, err := NewReplica(addr, store, ReplicaOptions{
			PosPath:     filepath.Join(dir, "replica.db.replpos"),
			ReadTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Progress then drop: one valid (empty) recs frame, then close.
	addr := fakePrimary(func(conn net.Conn) {
		json.NewEncoder(conn).Encode((&Frame{T: FrameRecs, End: 1}).seal())
	})
	if err := newRep(addr).streamOnce(); err != nil {
		t.Fatalf("progress-then-drop returned %v, want nil (backoff must reset)", err)
	}

	// Failure during subscribe: close before any frame.
	addr = fakePrimary(func(conn net.Conn) {})
	if err := newRep(addr).streamOnce(); err == nil {
		t.Fatal("no-progress drop returned nil, want error (backoff must keep growing)")
	}

	// Refused dial: error too.
	if err := newRep("127.0.0.1:1").streamOnce(); err == nil {
		t.Fatal("refused dial returned nil, want error")
	}
}

// TestFrameChecksum: the semantic checksum catches a payload mutation
// that still parses as valid JSON, and passes untouched frames.
func TestFrameChecksum(t *testing.T) {
	f := &Frame{T: FrameObj, OID: 7, Data: []byte("payload")}
	f.seal()
	if err := checkSum(f); err != nil {
		t.Fatalf("sealed frame failed its own checksum: %v", err)
	}
	g := *f
	g.Data = []byte("paYload") // same length: survives JSON/base64 framing
	if err := checkSum(&g); err == nil {
		t.Fatal("mutated payload passed the checksum")
	}
	h := *f
	h.OID = 8
	if err := checkSum(&h); err == nil {
		t.Fatal("mutated OID passed the checksum")
	}
	// Compatibility: no checksum, no check.
	i := &Frame{T: FramePing, End: 9}
	if err := checkSum(i); err != nil {
		t.Fatalf("CRC-less frame rejected: %v", err)
	}
	// Recon fields are covered too.
	root := antientropy.SetDigest{Count: 1, Sum: 2, Xor: 3}
	rf := (&Frame{T: FrameRecon, N: 5, Root: &root}).seal()
	rf.Root = &antientropy.SetDigest{Count: 1, Sum: 2, Xor: 4}
	if err := checkSum(rf); err == nil {
		t.Fatal("mutated recon root passed the checksum")
	}
}
