package repl

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/core"
	"ode/internal/obs"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/eos"
	"ode/internal/wal"
)

// ReplicaOptions tunes the replica side.
type ReplicaOptions struct {
	// PosPath is the stream-position sidecar file (the applied primary
	// LSN, written after the applied records are locally durable).
	// Default: the store path + ".replpos".
	PosPath string
	// DialTimeout bounds each (re)connect attempt. Default 2s.
	DialTimeout time.Duration
	// ReadTimeout bounds the wait for the next frame; the primary pings
	// every HubOptions.PingInterval, so this must comfortably exceed
	// that. On expiry the link is considered cut and redialed. Default 5s.
	ReadTimeout time.Duration
	// RedialBase/RedialMax shape the capped exponential backoff between
	// reconnect attempts (defaults 10ms / 1s; see server.Backoff).
	RedialBase time.Duration
	RedialMax  time.Duration
	// Dial overrides how the replica reaches the primary. Tests and the
	// fault layer inject instrumented or flaky links here; nil means
	// net.DialTimeout over TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// NoRecon disables anti-entropy rejoin: an out-of-range resume
	// always takes the full snapshot, as before reconciliation existed.
	NoRecon bool
}

// Status is a snapshot of a replica's stream state, served by the
// repl.status wire op.
type Status struct {
	Primary    string `json:"primary"`
	Connected  bool   `json:"connected"`
	AppliedLSN uint64 `json:"applied_lsn"` // resume position in the primary's LSN space
	EndLSN     uint64 `json:"end_lsn"`     // primary durable end, as last heard
	LagBytes   uint64 `json:"lag_bytes"`   // EndLSN - AppliedLSN
	Reconnects uint64 `json:"reconnects"`
	Promoted   bool   `json:"promoted"`
	// LastCause is the primary-side cause ID carried on the most
	// recently applied commit record ("" before the first annotated
	// commit): which primary event this replica last acted on.
	LastCause string `json:"last_cause,omitempty"`
	// SnapshotLSN is the local store's durable commit LSN — the
	// as-of point a snapshot transaction begun on this replica now
	// would pin. It advances as replicated batches apply, so clients
	// can correlate replica snapshot reads with the primary's history.
	SnapshotLSN uint64 `json:"snapshot_lsn"`
}

// Replica follows a primary: it subscribes from its last durable
// position, applies shipped transaction batches through the store's
// log-ordered replicated-apply path, and reconnects with capped backoff
// when the link drops. Promote stops the stream and opens the store
// (and the attached Database, if any) for writes — trigger FSM state
// replicated from the primary then advances in place, so a composite
// event half-matched on the primary completes on the promoted replica.
type Replica struct {
	primary string
	store   *eos.Manager
	opts    ReplicaOptions

	db atomic.Pointer[core.Database] // optional: promoted along with the store

	applied    atomic.Uint64 // resume position (primary LSN space)
	end        atomic.Uint64 // primary durable end, as last heard
	lag        atomic.Uint64 // end - applied, maintained by the apply loop
	connected  atomic.Bool
	promoted   atomic.Bool
	reconnects obs.Counter
	lastCause  atomic.Value // string: cause note of the last applied commit

	recordsApplied  obs.Counter
	batchesApplied  obs.Counter
	snapshotsLoaded obs.Counter
	applyNs         obs.Histogram // ApplyReplicated latency per batch

	symbolsReceived obs.Counter // anti-entropy coded symbols consumed
	diffsDecoded    obs.Counter // divergent items decoded from symbol streams
	objectsRepaired obs.Counter // objects rewritten/freed by recon rejoin or repair
	verifyRuns      obs.Counter // Verify invocations
	diverged        obs.Counter // objects confirmed divergent by Verify

	verifyMu sync.Mutex // one Verify at a time

	// caughtUp is closed the first time applied reaches the end the
	// primary reported at subscribe time — the bootstrap barrier.
	caughtUp  chan struct{}
	caughtOne sync.Once

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewReplica prepares (but does not start) a replica of the primary at
// addr over the local store. The store is flipped read-only here so no
// local write can interleave with the stream; Promote flips it back.
func NewReplica(primaryAddr string, store *eos.Manager, opts ReplicaOptions) (*Replica, error) {
	if opts.PosPath == "" {
		return nil, fmt.Errorf("repl: ReplicaOptions.PosPath is required")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 5 * time.Second
	}
	r := &Replica{
		primary:  primaryAddr,
		store:    store,
		opts:     opts,
		caughtUp: make(chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	pos, err := loadPos(opts.PosPath)
	if err != nil {
		return nil, err
	}
	r.applied.Store(pos)
	store.SetReadOnly(true)
	return r, nil
}

// AttachDatabase links the core layer so Promote can open it for
// writes too. Call it after the database is constructed over the
// replica's store (i.e. after WaitCaughtUp).
func (r *Replica) AttachDatabase(db *core.Database) {
	db.SetReadOnly(true)
	r.db.Store(db)
}

// Store returns the replica's local store (read-only until Promote).
func (r *Replica) Store() *eos.Manager { return r.store }

// Start launches the streaming loop.
func (r *Replica) Start() { go r.run() }

// Stop halts streaming without promoting (the store stays read-only).
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Promote stops the stream and opens the store and attached database
// for writes: the replica becomes a primary, resuming trigger
// detection from the exact replicated state. Safe to call once; the
// stream is drained before the gate flips, so no replicated apply can
// race a local commit.
func (r *Replica) Promote() {
	r.Stop()
	r.promoted.Store(true)
	r.store.SetReadOnly(false)
	if db := r.db.Load(); db != nil {
		db.SetReadOnly(false)
	}
	obs.Flight().Record(obs.IncPromotion, obs.Cause{}, obs.Cause{}, r.applied.Load(), "was replica of "+r.primary)
}

// WaitCaughtUp blocks until the replica has applied everything the
// primary had when the stream first connected (or the timeout passes).
// This is the bootstrap barrier: after it, the local store holds the
// catalog and trigger index, so a core.Database can be opened read-only
// over it without writing a thing.
func (r *Replica) WaitCaughtUp(timeout time.Duration) error {
	select {
	case <-r.caughtUp:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("repl: not caught up with %s after %v (applied %d, end %d)",
			r.primary, timeout, r.applied.Load(), r.end.Load())
	}
}

// Status snapshots the stream state.
func (r *Replica) Status() Status {
	lastCause, _ := r.lastCause.Load().(string)
	return Status{
		Primary:     r.primary,
		Connected:   r.connected.Load(),
		AppliedLSN:  r.applied.Load(),
		EndLSN:      r.end.Load(),
		LagBytes:    r.lag.Load(),
		Reconnects:  r.reconnects.Value(),
		Promoted:    r.promoted.Load(),
		LastCause:   lastCause,
		SnapshotLSN: r.store.SnapshotLSN(),
	}
}

// RegisterMetrics exposes the replica's counters and gauges on a
// registry. Names are documented in docs/OBSERVABILITY.md.
func (r *Replica) RegisterMetrics(reg *obs.Registry) {
	reg.Func("repl.records_applied", "records", "WAL records applied from the stream",
		r.recordsApplied.Value)
	reg.Func("repl.batches_applied", "txns", "replicated transaction batches applied",
		r.batchesApplied.Value)
	reg.Func("repl.snapshots_loaded", "snapshots", "full-store bootstraps loaded",
		r.snapshotsLoaded.Value)
	reg.Func("repl.reconnects", "dials", "stream reconnect attempts after a cut link",
		r.reconnects.Value)
	reg.Func("repl.applied_lsn", "lsn", "resume position in the primary's LSN space",
		r.applied.Load)
	// Served straight from an atomic the apply loop maintains, so a
	// scrape never does more than one load.
	reg.Func("repl.lag_bytes", "bytes", "primary durable end minus applied position",
		r.lag.Load)
	reg.RegisterHistogram("repl.apply_ns", "ns", "ApplyReplicated latency per replicated transaction",
		&r.applyNs)
	reg.Func("antientropy.symbols_received", "symbols", "coded symbols consumed while reconciling",
		r.symbolsReceived.Value)
	reg.Func("antientropy.diffs_decoded", "items", "divergent items decoded from symbol streams",
		r.diffsDecoded.Value)
	reg.Func("antientropy.objects_repaired", "objects", "objects rewritten or freed by rejoin/repair",
		r.objectsRepaired.Value)
	reg.Func("repl.verify_runs", "runs", "online divergence audits executed",
		r.verifyRuns.Value)
	reg.Func("repl.diverged", "objects", "objects confirmed divergent from the primary",
		r.diverged.Value)
}

// updateLag recomputes the lag gauge from the applied/end atomics.
// Called wherever either side moves, so scrapes are a single load.
func (r *Replica) updateLag() {
	applied, end := r.applied.Load(), r.end.Load()
	var lag uint64
	if end > applied {
		lag = end - applied
	}
	r.lag.Store(lag)
}

// run is the reconnect loop: stream until the link drops, back off,
// redial, resubscribe from the durable position.
func (r *Replica) run() {
	defer close(r.done)
	bo := server.Backoff{Base: r.opts.RedialBase, Max: r.opts.RedialMax}
	first := true
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		if !first {
			r.reconnects.Inc()
			obs.Flight().Record(obs.IncReplicaRedial, obs.Cause{}, obs.Cause{}, r.reconnects.Value(), "primary "+r.primary)
			select {
			case <-time.After(bo.Next()):
			case <-r.stop:
				return
			}
		}
		first = false
		if err := r.streamOnce(); err == nil {
			bo.Reset()
		}
	}
}

// dial opens a connection to the primary through the configured
// transport (the Dial hook, or TCP).
func (r *Replica) dial() (net.Conn, error) {
	if r.opts.Dial != nil {
		return r.opts.Dial(r.primary, r.opts.DialTimeout)
	}
	return net.DialTimeout("tcp", r.primary, r.opts.DialTimeout)
}

// streamOnce runs one connection's worth of streaming. A nil return
// means the link made progress before dropping (reset the backoff);
// an error means the attempt failed outright.
func (r *Replica) streamOnce() error {
	conn, err := r.dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	// Offer reconciliation when the local store has anything to
	// reconcile against; an empty store bootstraps faster by snapshot.
	recon := !r.opts.NoRecon && r.store.ObjectCount() > 0
	if err := enc.Encode(&server.Request{Op: OpSubscribe, LSN: r.applied.Load(), Recon: recon}); err != nil {
		return err
	}
	r.connected.Store(true)
	defer r.connected.Store(false)

	// pending buffers each in-flight transaction's ops until its commit
	// record arrives; a batch can span recs frames but never a
	// reconnect (we resume from the last commit boundary).
	pending := make(map[uint64][]storage.Op)
	var snapObjs []eos.SnapObject
	var snapNextOID, snapLSN uint64
	inSnap := false
	progressed := false
	firstEnd := uint64(0)

	for {
		select {
		case <-r.stop:
			return nil
		default:
		}
		conn.SetReadDeadline(time.Now().Add(r.opts.ReadTimeout))
		var f Frame
		if err := dec.Decode(&f); err != nil {
			if progressed {
				return nil
			}
			return err
		}
		// A frame that parses but fails its semantic checksum is a
		// corrupt link: drop it before acting on anything it carries and
		// resume from the last commit boundary on the next dial.
		if err := checkSum(&f); err != nil {
			if progressed {
				return nil
			}
			return err
		}
		switch f.T {
		case FrameRecon:
			// Out-of-range rejoin via set reconciliation: decode the
			// drift, fetch only the divergent objects, resume streaming
			// from the capture LSN on this same connection.
			res, err := r.runRecon(&f, conn, enc, dec, true, nil, 0)
			if errors.Is(err, errReconAbort) {
				// The hub falls back to a full snapshot on this stream.
				continue
			}
			if err != nil {
				if progressed {
					return nil
				}
				return err
			}
			if err := r.applyReconResult(res); err != nil {
				return err
			}
			progressed = true
			continue
		case FrameSnap:
			inSnap = true
			snapObjs = snapObjs[:0]
			snapLSN, snapNextOID = f.LSN, f.NextOID
		case FrameObj:
			if !inSnap {
				return fmt.Errorf("repl: obj frame outside snapshot")
			}
			snapObjs = append(snapObjs, eos.SnapObject{OID: storage.OID(f.OID), Data: f.Data})
		case FrameSnapEnd:
			if !inSnap {
				return fmt.Errorf("repl: snapend frame outside snapshot")
			}
			inSnap = false
			if err := r.store.ImportSnapshot(storage.OID(snapNextOID), snapObjs); err != nil {
				return fmt.Errorf("repl: import snapshot: %w", err)
			}
			snapObjs = nil
			r.snapshotsLoaded.Inc()
			// The snapshot position may be *behind* the old applied
			// position (the primary was restored from older state), so
			// force it rather than monotonically advance.
			r.forceApplied(snapLSN)
			progressed = true
		case FrameRecs:
			if err := r.applyBatch(&f, pending); err != nil {
				return err
			}
			r.end.Store(f.End)
			r.updateLag()
			if firstEnd == 0 {
				firstEnd = f.End
			}
			r.checkCaughtUp(firstEnd)
			progressed = true
		case FramePing:
			r.end.Store(f.End)
			r.updateLag()
			if f.TS != 0 {
				// Echo the hub's timestamp so it can observe RTT. Old
				// primaries send no TS and get no pong.
				if err := enc.Encode((&Frame{T: FramePong, TS: f.TS}).seal()); err != nil {
					return err
				}
			}
			if firstEnd == 0 {
				firstEnd = f.End
			}
			r.checkCaughtUp(firstEnd)
		case FrameErr:
			return fmt.Errorf("repl: primary: %s", f.Err)
		default:
			return fmt.Errorf("repl: unknown frame %q", f.T)
		}
	}
}

// applyBatch applies one recs frame: ops accumulate per transaction and
// are committed through the store's replicated-apply path when the
// commit record arrives. The resume position advances only at commit
// boundaries (or to the frame end once no transaction is in flight),
// so a cut link never restarts mid-transaction.
func (r *Replica) applyBatch(f *Frame, pending map[uint64][]storage.Op) error {
	for i := range f.Recs {
		rec := &f.Recs[i]
		switch wal.RecType(rec.Type) {
		case wal.RecUpdate, wal.RecAllocate:
			data := make([]byte, len(rec.Data))
			copy(data, rec.Data)
			pending[rec.Txn] = append(pending[rec.Txn],
				storage.Op{Kind: storage.OpWrite, OID: storage.OID(rec.OID), Data: data})
		case wal.RecFree:
			pending[rec.Txn] = append(pending[rec.Txn],
				storage.Op{Kind: storage.OpFree, OID: storage.OID(rec.OID)})
		case wal.RecCommit:
			ops := pending[rec.Txn]
			delete(pending, rec.Txn)
			// A cause note on the primary's commit record attributes this
			// apply to the primary-side event that caused it. Re-attach
			// it before applying so the replica's own WAL commit record
			// (and flight incident) re-carry the attribution.
			if self, parent, ok := obs.DecodeCauseNote(rec.Data); ok {
				r.store.SetCommitCause(rec.Txn, self, parent)
				r.lastCause.Store(self.String())
			}
			// ApplyReplicated returns once the batch is locally durable
			// (it rides the replica's own group commit), so advancing
			// the resume position here is crash-safe: at worst the
			// sidecar is stale and we re-apply idempotent records.
			applyStart := time.Now()
			if err := r.store.ApplyReplicated(rec.Txn, ops); err != nil {
				return fmt.Errorf("repl: apply txn %d: %w", rec.Txn, err)
			}
			r.applyNs.Observe(time.Since(applyStart).Nanoseconds())
			r.batchesApplied.Inc()
			r.setApplied(rec.Next)
		case wal.RecCheckpoint:
			// The primary's checkpoint marker: nothing to apply.
		default:
			return fmt.Errorf("repl: unknown record type %d", rec.Type)
		}
	}
	r.recordsApplied.Add(uint64(len(f.Recs)))
	if len(pending) == 0 {
		r.setApplied(f.Next)
	}
	return nil
}

func (r *Replica) setApplied(lsn uint64) {
	if lsn <= r.applied.Load() {
		return
	}
	r.applied.Store(lsn)
	r.updateLag()
	savePos(r.opts.PosPath, lsn) // best-effort; stale is safe
}

// forceApplied moves the resume position unconditionally — snapshot
// import and recon rejoin can legitimately move it backward when the
// primary was restored from older state.
func (r *Replica) forceApplied(lsn uint64) {
	r.applied.Store(lsn)
	r.updateLag()
	savePos(r.opts.PosPath, lsn)
}

// applyReconResult lands one fetched exchange as a single replicated
// batch: the primary's images overwrite the divergent objects, frees
// drop what the primary lacks, and the allocator catches up, after
// which the store equals a log replay up to the capture LSN (for the
// objects' final images; intermediate history is intentionally not
// reconstructed — the stream that follows is idempotent over it).
func (r *Replica) applyReconResult(res *reconResult) error {
	ops := res.reconOps(nil)
	if len(ops) > 0 {
		// The synthetic txn id namespaces rejoin batches away from
		// replicated primary transactions in the local WAL.
		if err := r.store.ApplyReplicated(reconTxnBase+res.captureLSN, ops); err != nil {
			return fmt.Errorf("repl: apply recon batch: %w", err)
		}
		r.objectsRepaired.Add(uint64(len(ops)))
	}
	r.store.EnsureNextOID(storage.OID(res.nextOID))
	r.forceApplied(res.captureLSN)
	return nil
}

// reconTxnBase namespaces the synthetic transaction ids recon repair
// batches use in the replica's local WAL.
const reconTxnBase = uint64(1) << 62

func (r *Replica) checkCaughtUp(firstEnd uint64) {
	if r.applied.Load() >= firstEnd {
		r.caughtOne.Do(func() { close(r.caughtUp) })
	}
}

// --- position sidecar --------------------------------------------------------

// The sidecar holds the 8-byte little-endian resume LSN. It is written
// after the applied records are durable in the local store, so it can
// only be stale (never ahead); the stream re-applies the gap
// idempotently. Written to a temp file, fsynced, then renamed into
// place: the fsync keeps a crash from renaming an unwritten (torn)
// temp over a good sidecar, and the rename keeps a torn write from
// ever being visible under the real name. Every reachable state is
// safe: a missing or short sidecar resumes from zero (bootstrap), a
// stale-but-valid one resumes from an old commit boundary and the
// redo-only stream re-applies the gap idempotently.

func loadPos(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: read %s: %w", path, err)
	}
	if len(b) != 8 {
		// Unreadable sidecar: resume from zero (snapshot bootstrap).
		return 0, nil
	}
	return binary.LittleEndian.Uint64(b), nil
}

func savePos(path string, lsn uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], lsn)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	_, werr := f.Write(b[:])
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp)
		return
	}
	os.Rename(tmp, path)
}
