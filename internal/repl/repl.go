// Package repl is log-shipping replication for the EOS-backed Ode
// database: a primary streams its durable WAL records, in log order, to
// read replicas that apply them through the same log-ordered commit
// path the primary uses for recovery.
//
// The design leans on two properties the rest of the repository already
// establishes. First, the WAL is redo-only with full after-images, so
// applying a committed batch is idempotent — a replica that re-receives
// a prefix after reconnecting converges to the same bytes. Second,
// *everything* that matters rides the log: object images, the catalog,
// clusters, and — crucially for the paper's §7 global composite events —
// the persistent TriggerState objects. Shipping the log therefore ships
// trigger FSM state, which is what lets a promoted replica resume a
// half-matched composite event exactly where the primary left it.
//
// Wire protocol (over the server package's TCP listener): a replica
// sends the ordinary JSON request
//
//	{"op":"repl.subscribe","lsn":N}
//
// and the connection switches to a one-way stream of JSON frames:
//
//	{"t":"snap","lsn":L,"next_oid":M}   snapshot bootstrap begins
//	{"t":"obj","oid":K,"data":"..."}    one object image (repeated)
//	{"t":"snapend"}                     snapshot complete; stream follows
//	{"t":"recs","lsn":L,"next":N,"end":E,"recs":[...]}  WAL records
//	{"t":"ping","end":E}                heartbeat with durable end
//	{"t":"err","err":"..."}             terminal error
//
// A snapshot is sent only when the requested position is out of range —
// below the primary's log base (checkpoint-truncated away) or beyond
// its end (the replica outlived a primary rollback). Lag is measured in
// log bytes: the primary's durable end minus the replica's applied
// position, both in the primary's LSN space.
package repl

// Frame is one streamed message. T selects which other fields are
// meaningful (see the package comment for the grammar).
type Frame struct {
	T       string    `json:"t"`
	LSN     uint64    `json:"lsn,omitempty"`      // snap: snapshot LSN; recs: first record's LSN
	Next    uint64    `json:"next,omitempty"`     // recs: LSN just past the batch
	End     uint64    `json:"end,omitempty"`      // recs/ping: primary durable end (lag basis)
	NextOID uint64    `json:"next_oid,omitempty"` // snap: primary's OID allocator position
	OID     uint64    `json:"oid,omitempty"`      // obj
	Data    []byte    `json:"data,omitempty"`     // obj (base64 via encoding/json)
	Recs    []WireRec `json:"recs,omitempty"`     // recs
	Err     string    `json:"err,omitempty"`      // err
	TS      int64     `json:"ts,omitempty"`       // ping/pong: sender timestamp (RTT measurement)
}

// Frame type tags.
const (
	FrameSnap    = "snap"
	FrameObj     = "obj"
	FrameSnapEnd = "snapend"
	FrameRecs    = "recs"
	FramePing    = "ping"
	// FramePong is the only frame a replica sends *up* the stream: it
	// echoes a ping's TS so the hub can observe round-trip time on its
	// own clock. Old peers neither send nor expect it (a ping without TS
	// gets no pong), so mixed versions interoperate.
	FramePong = "pong"
	FrameErr  = "err"
)

// WireRec is one WAL record on the wire. Next is the LSN just past the
// record: the replica resumes from the Next of the last commit record
// it applied, which is always a transaction-batch boundary (commit
// batches are appended contiguously), so a resumed stream never starts
// mid-transaction.
type WireRec struct {
	Type uint8  `json:"k"`
	Txn  uint64 `json:"x"`
	OID  uint64 `json:"o,omitempty"`
	Data []byte `json:"d,omitempty"`
	Next uint64 `json:"n"`
}

// OpSubscribe is the wire op a replica opens its stream with; register
// the Hub's handler under this name in server.Options.StreamOps.
const OpSubscribe = "repl.subscribe"
