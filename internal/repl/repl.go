// Package repl is log-shipping replication for the EOS-backed Ode
// database: a primary streams its durable WAL records, in log order, to
// read replicas that apply them through the same log-ordered commit
// path the primary uses for recovery.
//
// The design leans on two properties the rest of the repository already
// establishes. First, the WAL is redo-only with full after-images, so
// applying a committed batch is idempotent — a replica that re-receives
// a prefix after reconnecting converges to the same bytes. Second,
// *everything* that matters rides the log: object images, the catalog,
// clusters, and — crucially for the paper's §7 global composite events —
// the persistent TriggerState objects. Shipping the log therefore ships
// trigger FSM state, which is what lets a promoted replica resume a
// half-matched composite event exactly where the primary left it.
//
// Wire protocol (over the server package's TCP listener): a replica
// sends the ordinary JSON request
//
//	{"op":"repl.subscribe","lsn":N}
//
// and the connection switches to a one-way stream of JSON frames:
//
//	{"t":"snap","lsn":L,"next_oid":M}   snapshot bootstrap begins
//	{"t":"obj","oid":K,"data":"..."}    one object image (repeated)
//	{"t":"snapend"}                     snapshot complete; stream follows
//	{"t":"recs","lsn":L,"next":N,"end":E,"recs":[...]}  WAL records
//	{"t":"ping","end":E}                heartbeat with durable end
//	{"t":"err","err":"..."}             terminal error
//
// A snapshot is sent only when the requested position is out of range —
// below the primary's log base (checkpoint-truncated away) or beyond
// its end (the replica outlived a primary rollback). Lag is measured in
// log bytes: the primary's durable end minus the replica's applied
// position, both in the primary's LSN space.
//
// # Anti-entropy
//
// A resuming replica whose position is out of range may ask for set
// reconciliation instead of a full snapshot ({"op":"repl.subscribe",
// "lsn":N,"recon":true}): the hub fences a per-object digest inventory
// (internal/antientropy) and the two sides exchange rateless coded
// symbols until the symmetric difference decodes, after which only the
// divergent objects travel. The same exchange backs the standalone
// repl.recon stream op, which Replica.Verify uses for the online
// divergence audit and in-place repair. Frame grammar and the rejoin
// decision tree are documented in docs/REPLICATION.md.
//
// Every frame carries a semantic checksum (crc) over its meaningful
// fields, computed independently of the JSON encoding: a flipped byte
// that still parses as valid JSON (e.g. inside a base64 object image)
// is caught by the receiver, which drops the link and resumes from the
// last commit boundary instead of applying corrupt state.
package repl

import (
	"fmt"

	"ode/internal/antientropy"
)

// Frame is one streamed message. T selects which other fields are
// meaningful (see the package comment for the grammar).
type Frame struct {
	T       string    `json:"t"`
	LSN     uint64    `json:"lsn,omitempty"`      // snap/recon: capture LSN; recs: first record's LSN
	Next    uint64    `json:"next,omitempty"`     // recs: LSN just past the batch
	End     uint64    `json:"end,omitempty"`      // recs/ping/reconend: primary durable end (lag basis)
	NextOID uint64    `json:"next_oid,omitempty"` // snap/recon: primary's OID allocator position
	OID     uint64    `json:"oid,omitempty"`      // obj
	Data    []byte    `json:"data,omitempty"`     // obj (base64 via encoding/json)
	Recs    []WireRec `json:"recs,omitempty"`     // recs
	Err     string    `json:"err,omitempty"`      // err
	TS      int64     `json:"ts,omitempty"`       // ping/pong: sender timestamp (RTT measurement)

	// Anti-entropy fields (recon/sym/more/need/obj frames).
	N       uint64                    `json:"n,omitempty"`       // recon: object count; more: symbols wanted (0 = abort to snapshot)
	Root    *antientropy.SetDigest    `json:"root,omitempty"`    // recon: whole-inventory digest
	Buckets []antientropy.SetDigest   `json:"buckets,omitempty"` // recon: digest walk buckets
	Syms    []antientropy.CodedSymbol `json:"syms,omitempty"`    // sym: coded-symbol batch
	OIDs    []uint64                  `json:"oids,omitempty"`    // need: divergent objects to ship
	Gone    bool                      `json:"gone,omitempty"`    // obj: freed on the primary; free it locally

	// CRC is the semantic frame checksum (frameSum over every field
	// above, in fixed order). Zero means "absent" for compatibility
	// with peers that predate it; frameSum never returns zero.
	CRC uint64 `json:"crc,omitempty"`
}

// Frame type tags.
const (
	FrameSnap    = "snap"
	FrameObj     = "obj"
	FrameSnapEnd = "snapend"
	FrameRecs    = "recs"
	FramePing    = "ping"
	// FramePong is the only frame a replica sends *up* the stream: it
	// echoes a ping's TS so the hub can observe round-trip time on its
	// own clock. Old peers neither send nor expect it (a ping without TS
	// gets no pong), so mixed versions interoperate.
	FramePong = "pong"
	FrameErr  = "err"
	// Anti-entropy frames. Down: recon (digest offer), sym (symbol
	// batch), obj (divergent image, Gone for primary-side frees),
	// reconend (exchange complete). Up: more (request N more symbols;
	// N==0 aborts to a full snapshot), need (divergent OIDs to ship),
	// reconend (in sync / done, nothing needed).
	FrameRecon    = "recon"
	FrameSym      = "sym"
	FrameMore     = "more"
	FrameNeed     = "need"
	FrameReconEnd = "reconend"
)

// WireRec is one WAL record on the wire. Next is the LSN just past the
// record: the replica resumes from the Next of the last commit record
// it applied, which is always a transaction-batch boundary (commit
// batches are appended contiguously), so a resumed stream never starts
// mid-transaction.
type WireRec struct {
	Type uint8  `json:"k"`
	Txn  uint64 `json:"x"`
	OID  uint64 `json:"o,omitempty"`
	Data []byte `json:"d,omitempty"`
	Next uint64 `json:"n"`
}

// OpSubscribe is the wire op a replica opens its stream with; register
// the Hub's handler under this name in server.Options.StreamOps.
const OpSubscribe = "repl.subscribe"

// OpRecon is the standalone anti-entropy stream op: one digest/symbol
// exchange (plus optional divergent-object shipping) and the connection
// ends. Replica.Verify drives it; register the Hub's HandleRecon under
// this name in server.Options.StreamOps.
const OpRecon = "repl.recon"

// The replica-side admin ops (ode-server registers them in
// server.Options.ExtraOps; docs/PROTOCOL.md and docs/REPLICATION.md
// document the request/response shapes):
const (
	// OpStatus reports the replica's applied LSN, lag, and primary.
	OpStatus = "repl.status"
	// OpPromote detaches the replica from its primary and makes it
	// writable (the §promotion runbook's switch).
	OpPromote = "repl.promote"
	// OpVerify runs the online divergence audit (optionally repairing)
	// against the primary.
	OpVerify = "repl.verify"
)

// --- semantic frame checksum -------------------------------------------------

// frameSum hashes a frame's meaningful fields, in fixed order, with
// FNV-1a 64 — independent of the JSON encoding, so both sides agree on
// it regardless of field order, base64 framing, or whitespace. The
// result is never zero (zero marks "no checksum" on the wire).
func frameSum(f *Frame) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b byte) { h ^= uint64(b); h *= prime64 }
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			byte1(byte(v >> (8 * i)))
		}
	}
	str := func(s string) {
		u64(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			byte1(s[i])
		}
	}
	bts := func(b []byte) {
		u64(uint64(len(b)))
		for _, c := range b {
			byte1(c)
		}
	}
	str(f.T)
	u64(f.LSN)
	u64(f.Next)
	u64(f.End)
	u64(f.NextOID)
	u64(f.OID)
	bts(f.Data)
	u64(uint64(len(f.Recs)))
	for i := range f.Recs {
		r := &f.Recs[i]
		byte1(r.Type)
		u64(r.Txn)
		u64(r.OID)
		bts(r.Data)
		u64(r.Next)
	}
	str(f.Err)
	u64(uint64(f.TS))
	u64(f.N)
	if f.Root != nil {
		byte1(1)
		u64(f.Root.Count)
		u64(f.Root.Sum)
		u64(f.Root.Xor)
	} else {
		byte1(0)
	}
	u64(uint64(len(f.Buckets)))
	for _, b := range f.Buckets {
		u64(b.Count)
		u64(b.Sum)
		u64(b.Xor)
	}
	u64(uint64(len(f.Syms)))
	for _, s := range f.Syms {
		u64(uint64(s.Count))
		u64(s.Key)
		u64(s.Dig)
		u64(s.Check)
	}
	u64(uint64(len(f.OIDs)))
	for _, o := range f.OIDs {
		u64(o)
	}
	if f.Gone {
		byte1(1)
	} else {
		byte1(0)
	}
	if h == 0 {
		h = 1
	}
	return h
}

// seal stamps the frame's checksum before encoding.
func (f *Frame) seal() *Frame {
	f.CRC = frameSum(f)
	return f
}

// checkSum verifies a received frame's checksum. Frames from old peers
// (CRC 0) pass; anything else must match.
func checkSum(f *Frame) error {
	if f.CRC == 0 {
		return nil
	}
	if got := frameSum(f); got != f.CRC {
		return fmt.Errorf("repl: frame %q checksum mismatch (got %#x, want %#x): corrupt link", f.T, got, f.CRC)
	}
	return nil
}
