package repl

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ode/internal/core"
)

// TestReplicaSnapshotReads: a replica serves lock-free snapshot reads
// consistent as of its applied LSN, Status reports that LSN, and a
// snapshot pinned on the replica keeps its view while later primary
// commits stream in underneath it.
func TestReplicaSnapshotReads(t *testing.T) {
	dir := t.TempDir()
	var fired atomic.Uint64
	cls := seqClass(&fired)
	p := startPrimary(t, filepath.Join(dir, "primary.db"), cls)
	defer p.shutdown()

	tx := p.db.Begin()
	ref, err := p.db.Create(tx, "Acct", &Acct{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	commitOp(t, p.db, ref, "Buy", 100)

	rep, rstore := startReplica(t, dir, "replica.db", p.addr)
	defer rep.Stop()
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "zero lag", func() bool { return rep.Status().LagBytes == 0 })

	st := rep.Status()
	if st.SnapshotLSN == 0 {
		t.Fatal("Status().SnapshotLSN = 0 on a caught-up replica")
	}
	if got := rstore.SnapshotLSN(); got != st.SnapshotLSN {
		t.Fatalf("Status().SnapshotLSN = %d, store says %d", st.SnapshotLSN, got)
	}

	rdb, err := core.NewDatabase(rstore)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.Register(cls); err != nil {
		t.Fatal(err)
	}
	rep.AttachDatabase(rdb)

	// Pin a snapshot, then push more commits through the primary.
	snap, err := rdb.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	commitOp(t, p.db, ref, "Buy", 50)
	waitFor(t, "second commit applied", func() bool {
		return rstore.SnapshotLSN() > st.SnapshotLSN
	})

	v, err := rdb.Get(snap, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*Acct).Bal; got != 100 {
		t.Fatalf("pinned replica snapshot Bal = %v, want 100 (as of pin)", got)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh snapshot observes the streamed commit.
	fresh, err := rdb.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	v, err = rdb.Get(fresh, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*Acct).Bal; got != 150 {
		t.Fatalf("fresh replica snapshot Bal = %v, want 150", got)
	}
	if err := fresh.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := rep.Status().SnapshotLSN; got <= st.SnapshotLSN {
		t.Fatalf("Status().SnapshotLSN = %d did not advance past %d", got, st.SnapshotLSN)
	}
}
