package repl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ode/internal/obs"
	"ode/internal/storage/eos"
)

// TestReplMetricDocCoverage extends the repository's doc-coverage
// contract to the replication metrics: the root observability test only
// sees what an open database registers, and repl.* names appear only on
// nodes with a replication role, so this test registers both sides on a
// fresh registry and requires every name in docs/OBSERVABILITY.md.
func TestReplMetricDocCoverage(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("docs/OBSERVABILITY.md missing: %v", err)
	}
	doc := string(raw)

	path := filepath.Join(t.TempDir(), "doc.eos")
	store, err := eos.Open(path, eos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(store, HubOptions{})
	defer hub.Close()
	rep, err := NewReplica("127.0.0.1:1", store, ReplicaOptions{PosPath: path + ".replpos"})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	reg := obs.NewRegistry()
	hub.RegisterMetrics(reg)
	rep.RegisterMetrics(reg)
	for _, name := range reg.Names() {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %q is not documented in docs/OBSERVABILITY.md", name)
		}
	}
}
