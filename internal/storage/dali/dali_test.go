package dali

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ode/internal/storage"
)

func commitWrite(t *testing.T, m *Manager, txn uint64, oid storage.OID, data []byte) {
	t.Helper()
	if err := m.ApplyCommit(txn, []storage.Op{{Kind: storage.OpWrite, OID: oid, Data: data}}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := New()
	oid, err := m.ReserveOID()
	if err != nil {
		t.Fatal(err)
	}
	commitWrite(t, m, 1, oid, []byte("in memory"))
	got, err := m.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "in memory" {
		t.Fatalf("read %q", got)
	}
}

func TestReadIsACopy(t *testing.T) {
	m := New()
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("immutable"))
	got, _ := m.Read(oid)
	got[0] = 'X'
	again, _ := m.Read(oid)
	if string(again) != "immutable" {
		t.Fatal("Read returned aliased storage")
	}
}

func TestWriteCopiesInput(t *testing.T) {
	m := New()
	oid, _ := m.ReserveOID()
	data := []byte("original")
	commitWrite(t, m, 1, oid, data)
	data[0] = 'X'
	got, _ := m.Read(oid)
	if string(got) != "original" {
		t.Fatal("ApplyCommit aliased caller's buffer")
	}
}

func TestFree(t *testing.T) {
	m := New()
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("x"))
	if err := m.ApplyCommit(2, []storage.Op{{Kind: storage.OpFree, OID: oid}}); err != nil {
		t.Fatal(err)
	}
	if m.Exists(oid) {
		t.Fatal("freed object exists")
	}
	if _, err := m.Read(oid); err == nil {
		t.Fatal("read of freed object succeeded")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestIterate(t *testing.T) {
	m := New()
	want := map[storage.OID]string{}
	for i := 0; i < 10; i++ {
		oid, _ := m.ReserveOID()
		want[oid] = fmt.Sprintf("v%d", i)
		commitWrite(t, m, uint64(i), oid, []byte(want[oid]))
	}
	got := map[storage.OID]string{}
	if err := m.Iterate(func(oid storage.OID, data []byte) error {
		got[oid] = string(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for oid, v := range want {
		if got[oid] != v {
			t.Fatalf("oid %d: %q vs %q", oid, got[oid], v)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dali.snap")
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("checkpointed"))
	big := bytes.Repeat([]byte("large "), 10000)
	oid2, _ := m.ReserveOID()
	commitWrite(t, m, 2, oid2, big)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "checkpointed" {
		t.Fatalf("read %q", got)
	}
	got2, err := m2.Read(oid2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, big) {
		t.Fatal("large object corrupted through snapshot")
	}
	// OID allocation continues past snapshot contents.
	next, _ := m2.ReserveOID()
	if next == oid || next == oid2 {
		t.Fatalf("OID %d reused after snapshot load", next)
	}
}

func TestVolatileCheckpointIsNoop(t *testing.T) {
	m := New()
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("x"))
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("volatile checkpoint: %v", err)
	}
}

func TestUncheckpointedDataLostOnReopen(t *testing.T) {
	// MM-Ode semantics: memory is the store; a snapshot only captures
	// what Checkpoint wrote.
	path := filepath.Join(t.TempDir(), "dali.snap")
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("kept"))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oid2, _ := m.ReserveOID()
	commitWrite(t, m, 2, oid2, []byte("lost"))
	m.Close()

	m2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Exists(oid) {
		t.Fatal("checkpointed object missing")
	}
	if m2.Exists(oid2) {
		t.Fatal("post-checkpoint object survived (should be volatile)")
	}
}

func TestClosedRejectsOps(t *testing.T) {
	m := New()
	m.Close()
	if _, err := m.ReserveOID(); err == nil {
		t.Fatal("ReserveOID after close")
	}
	if err := m.ApplyCommit(1, nil); err == nil {
		t.Fatal("ApplyCommit after close")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "dali" {
		t.Fatal("name")
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.snap")
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("payload"))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// Flip a payload byte: the CRC must catch it at load.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestEmptySnapshotFileLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatalf("empty snapshot rejected: %v", err)
	}
	defer m.Close()
	if oid, _ := m.ReserveOID(); oid != 1 {
		t.Fatalf("first OID = %d", oid)
	}
}

func TestUnknownOpKindRejected(t *testing.T) {
	m := New()
	defer m.Close()
	if err := m.ApplyCommit(1, []storage.Op{{Kind: storage.OpKind(99)}}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
}

func TestIterateStopsOnError(t *testing.T) {
	m := New()
	defer m.Close()
	for i := 0; i < 5; i++ {
		oid, _ := m.ReserveOID()
		commitWrite(t, m, uint64(i), oid, []byte("x"))
	}
	count := 0
	sentinel := fmt.Errorf("stop")
	err := m.Iterate(func(storage.OID, []byte) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || count != 2 {
		t.Fatalf("err=%v count=%d", err, count)
	}
}
