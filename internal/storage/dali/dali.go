// Package dali is the main-memory storage manager: the analog of the Dali
// store under MM-Ode (§2, §5.6). It implements storage.Manager with plain
// in-process memory, no buffer pool and no I/O on the access path, which is
// exactly the property experiment E10 measures against the disk-based eos
// manager.
//
// Substitution note (see DESIGN.md): the original Dali is a shared-memory
// storage manager with its own checkpointing and recovery. This analog
// reproduces the property the paper relies on — the object manager and
// trigger run-time execute unchanged over a memory-resident store — and
// supports Checkpoint as an optional snapshot-to-file so the credit-card
// demo can persist across process runs when asked to.
package dali

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/storage"
	"ode/internal/storage/vstore"
)

// Manager is the main-memory storage manager.
type Manager struct {
	mu      sync.RWMutex
	objects map[storage.OID][]byte
	nextOID storage.OID
	stats   storage.Stats
	// commitLSN numbers ApplyCommit batches (there is no WAL, so the
	// commit ordinal is the store's LSN); versions holds the
	// commit-LSN-stamped chains behind storage.Versioned. Both are
	// guarded by mu: written under the exclusive lock, and vstore
	// lookups (pure reads) run under the shared lock.
	commitLSN uint64
	versions  *vstore.Store
	// reads is kept out of stats (which mu guards) so the read path
	// needs only the shared lock — reads never serialize behind commits,
	// mirroring the eos commit/read decoupling.
	reads atomic.Uint64
	// snapshotPath, when non-empty, is where Checkpoint persists and Open
	// loads a point-in-time image of the store.
	snapshotPath string
	closed       bool
	// oidFilter, when set, restricts which OIDs ReserveOID may mint —
	// the sharding hook: each shard allocates only the OIDs its ring
	// slice owns, skipping the rest (see internal/shard).
	oidFilter func(uint64) bool
	// pace (nanoseconds) is an emulated per-commit service time; paceMu
	// is the serial service line commits queue on when it is set. See
	// SetCommitPace.
	pace   atomic.Int64
	paceMu sync.Mutex
}

// New returns an empty, purely volatile manager.
func New() *Manager {
	return &Manager{objects: make(map[storage.OID][]byte), nextOID: 1, versions: vstore.New()}
}

// Open returns a manager that loads from — and checkpoints to — the
// snapshot file at path, creating it on first use.
func Open(path string) (*Manager, error) {
	m := New()
	m.snapshotPath = path
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dali: open snapshot: %w", err)
	}
	defer f.Close()
	if err := m.loadSnapshot(bufio.NewReader(f)); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements storage.Manager.
func (m *Manager) Name() string { return "dali" }

// SetOIDFilter installs (or clears, with nil) the allocation
// predicate: ReserveOID skips OIDs the filter rejects. A sharded
// deployment installs the ring's filter so every OID minted here is
// owned here; reads and applies are unaffected (a replica may hold
// remote-owned images).
func (m *Manager) SetOIDFilter(allow func(uint64) bool) {
	m.mu.Lock()
	m.oidFilter = allow
	m.mu.Unlock()
}

// SetCommitPace installs (or clears, with 0) an emulated per-commit
// service time: each non-empty ApplyCommit first holds a dedicated pace
// lock for d, so commits serialize behind it while reads proceed
// untouched. The knob models one node whose engine serves transactions
// one at a time — the paper's single-process Ode (§6) — for experiments
// that sweep fleet sizes on a host where in-process shards share cores
// (E24), the same emulation move as E23's fixed-RTT link. Production
// stores never set it.
func (m *Manager) SetCommitPace(d time.Duration) { m.pace.Store(int64(d)) }

// ReserveOID implements storage.Manager.
func (m *Manager) ReserveOID() (storage.OID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return storage.InvalidOID, errClosed
	}
	oid := m.nextOID
	for i := 0; m.oidFilter != nil && !m.oidFilter(uint64(oid)); i++ {
		if i >= oidFilterScanCap {
			return storage.InvalidOID, errOIDFilterStuck
		}
		oid++
	}
	m.nextOID = oid + 1
	return oid, nil
}

// oidFilterScanCap bounds the filter skip scan: a consistent-hash
// slice admits roughly one OID in N, so a scan past a million rejects
// means the filter is broken (owns nothing), not unlucky.
const oidFilterScanCap = 1 << 20

var errOIDFilterStuck = fmt.Errorf("dali: OID filter rejected %d consecutive OIDs", oidFilterScanCap)

var errClosed = fmt.Errorf("dali: manager closed")

// Read implements storage.Manager. Only the shared lock is taken:
// concurrent readers proceed in parallel and never wait behind a
// committer's exclusive section.
func (m *Manager) Read(oid storage.OID) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.objects[oid]
	if !ok {
		m.mu.RUnlock()
		return nil, fmt.Errorf("%w: oid %d", storage.ErrNotFound, oid)
	}
	out := make([]byte, len(data))
	copy(out, data)
	m.mu.RUnlock()
	m.reads.Add(1)
	return out, nil
}

// Exists implements storage.Manager.
func (m *Manager) Exists(oid storage.OID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.objects[oid]
	return ok
}

// ApplyCommit implements storage.Manager. In main memory the batch is
// applied directly; "durability" is the store's residence in memory, as in
// MM-Ode (snapshotting is explicit via Checkpoint).
func (m *Manager) ApplyCommit(txn uint64, ops []storage.Op) error {
	if d := time.Duration(m.pace.Load()); d > 0 && len(ops) > 0 {
		m.paceMu.Lock()
		time.Sleep(d)
		m.paceMu.Unlock()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	// Reject malformed batches before stamping: once a batch is stamped
	// the apply below must not fail, or chains would record images the
	// object map never received.
	for _, op := range ops {
		if op.Kind != storage.OpWrite && op.Kind != storage.OpFree {
			return fmt.Errorf("dali: unknown op kind %v", op.Kind)
		}
	}
	if len(ops) > 0 {
		m.commitLSN++
		m.versions.Stamp(m.commitLSN, ops, func(oid storage.OID) ([]byte, bool) {
			img, ok := m.objects[oid]
			return img, ok
		})
	}
	for _, op := range ops {
		switch op.Kind {
		case storage.OpWrite:
			img := make([]byte, len(op.Data))
			copy(img, op.Data)
			m.objects[op.OID] = img
			if op.OID >= m.nextOID {
				m.nextOID = op.OID + 1
			}
			m.stats.Writes++
		case storage.OpFree:
			delete(m.objects, op.OID)
			m.stats.Frees++
		}
	}
	return nil
}

// Iterate implements storage.Manager.
func (m *Manager) Iterate(fn func(storage.OID, []byte) error) error {
	// Copy the snapshot of entries to avoid holding the lock across fn.
	m.mu.RLock()
	oids := make([]storage.OID, 0, len(m.objects))
	for oid := range m.objects {
		oids = append(oids, oid)
	}
	m.mu.RUnlock()
	for _, oid := range oids {
		m.mu.RLock()
		data, ok := m.objects[oid]
		m.mu.RUnlock()
		if !ok {
			continue // freed since the snapshot
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		if err := fn(oid, cp); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint implements storage.Manager. Without a snapshot path it is a
// no-op (a purely volatile store).
func (m *Manager) Checkpoint() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.snapshotPath == "" {
		return nil
	}
	tmp := m.snapshotPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dali: checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := m.writeSnapshot(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dali: checkpoint flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dali: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, m.snapshotPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dali: checkpoint rename: %w", err)
	}
	return nil
}

// Snapshot format: u64 nextOID, then per object:
// u64 oid | u32 len | data | u32 crc(data).
func (m *Manager) writeSnapshot(w io.Writer) error {
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(m.nextOID))
	if _, err := w.Write(buf[:8]); err != nil {
		return err
	}
	for oid, data := range m.objects {
		binary.LittleEndian.PutUint64(buf[:8], uint64(oid))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(len(data)))
		if _, err := w.Write(buf[:12]); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], crc32.ChecksumIEEE(data))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) loadSnapshot(r io.Reader) error {
	var buf [12]byte
	if _, err := io.ReadFull(r, buf[:8]); err != nil {
		if err == io.EOF {
			return nil // empty snapshot
		}
		return fmt.Errorf("dali: snapshot header: %w", err)
	}
	m.nextOID = storage.OID(binary.LittleEndian.Uint64(buf[:8]))
	if m.nextOID == 0 {
		m.nextOID = 1
	}
	for {
		if _, err := io.ReadFull(r, buf[:12]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("dali: snapshot entry: %w", err)
		}
		oid := storage.OID(binary.LittleEndian.Uint64(buf[:8]))
		n := binary.LittleEndian.Uint32(buf[8:12])
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return fmt.Errorf("dali: snapshot data: %w", err)
		}
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return fmt.Errorf("dali: snapshot crc: %w", err)
		}
		if crc32.ChecksumIEEE(data) != binary.LittleEndian.Uint32(buf[:4]) {
			return fmt.Errorf("dali: snapshot corrupt at oid %d", oid)
		}
		m.objects[oid] = data
	}
}

// --- MVCC surface (storage.Versioned) ---------------------------------------

var _ storage.Versioned = (*Manager)(nil)

// SnapshotLSN implements storage.Versioned.
func (m *Manager) SnapshotLSN() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.versions.Durable()
}

// PinSnapshot implements storage.Versioned.
func (m *Manager) PinSnapshot() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versions.Pin()
}

// UnpinSnapshot implements storage.Versioned.
func (m *Manager) UnpinSnapshot(lsn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.versions.Unpin(lsn)
}

// ReadAt implements storage.Versioned. Like Read it takes only the
// shared lock: version lookups are pure reads, and stamping happens
// inside ApplyCommit's exclusive section.
func (m *Manager) ReadAt(oid storage.OID, lsn uint64) ([]byte, error) {
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return nil, errClosed
	}
	if data, live, resolved := m.versions.Lookup(oid, lsn); resolved {
		m.mu.RUnlock()
		if !live {
			return nil, fmt.Errorf("%w: oid %d as of lsn %d", storage.ErrNotFound, oid, lsn)
		}
		m.reads.Add(1)
		return data, nil
	}
	data, ok := m.objects[oid]
	if !ok {
		m.mu.RUnlock()
		return nil, fmt.Errorf("%w: oid %d", storage.ErrNotFound, oid)
	}
	out := make([]byte, len(data))
	copy(out, data)
	m.mu.RUnlock()
	m.reads.Add(1)
	return out, nil
}

// ExistsAt implements storage.Versioned.
func (m *Manager) ExistsAt(oid storage.OID, lsn uint64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false
	}
	if _, live, resolved := m.versions.Lookup(oid, lsn); resolved {
		return live
	}
	_, ok := m.objects[oid]
	return ok
}

// VersionStats implements storage.Versioned.
func (m *Manager) VersionStats() storage.VersionStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.versions.Stats()
}

// GCVersions implements storage.Versioned.
func (m *Manager) GCVersions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versions.GC()
}

// Stats implements storage.Manager.
func (m *Manager) Stats() storage.Stats {
	m.mu.RLock()
	st := m.stats
	m.mu.RUnlock()
	st.Reads = m.reads.Load()
	return st
}

// Len reports the number of live objects (tests use this).
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// Close implements storage.Manager.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
