// Package eos is the disk-based storage manager: the analog of the EOS
// store beneath regular Ode (§2, §5.6). It provides a slotted-page file
// with a fixed-capacity LRU buffer pool, overflow chains for large
// objects, and crash recovery via the redo-only write-ahead log in
// internal/wal.
//
// Commit protocol: ApplyCommit appends the batch plus a commit record to
// the WAL (log-before-apply), waits for a group-commit fsync to cover it,
// then applies the ops to the buffer pool; dirty pages reach the file
// lazily on eviction or at Checkpoint. Recovery replays committed WAL
// batches over the page file — records from concurrently committed
// transactions may interleave in the log, so replay buffers each
// transaction's ops and applies them only when its commit record is
// reached, in commit-record order. Replay is idempotent (records carry
// full after-images), so any prefix of page flushes before the crash is
// harmless.
//
// Locking: the manager splits its state under two locks so readers never
// wait behind an fsync. seqMu (the log-sequencing lock) is held only
// across the buffered WAL append, which fixes the commit order; mu (the
// buffer-pool lock) covers the pool, directory, and counters. A
// committer sequences under seqMu, waits for durability holding no locks
// (coalescing with concurrent committers via the WAL's group commit),
// then drains the apply queue under mu up to its own sequence — so the
// pool state always equals a replay of the log prefix, even for
// overlapping commits, and one committer's drain covers its whole fsync
// batch.
package eos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"ode/internal/antientropy"
	"ode/internal/obs"
	"ode/internal/storage"
	"ode/internal/storage/vstore"
	"ode/internal/wal"
)

const (
	headerMagic = "ODE-EOS1"
	// DefaultCacheSize is the default buffer-pool capacity in pages.
	DefaultCacheSize = 256
	// autoCheckpointBytes triggers a checkpoint when the WAL grows past
	// this size, bounding recovery time.
	autoCheckpointBytes = 8 << 20
)

// loc records where an object lives.
type loc struct {
	pageNo   uint32
	slot     uint16
	overflow bool
}

// applyEntry is one sequenced commit waiting to be applied to the pool.
// All fields are written under mu after enqueue.
type applyEntry struct {
	seq  uint64
	lsn  uint64 // commit LSN (WAL position) stamped onto versions
	ops  []storage.Op
	skip bool  // durability failed: consume the sequence, apply nothing
	err  error // apply error, for the owning committer (set by the drainer)
}

// cached is one buffer-pool frame.
type cached struct {
	no    uint32
	buf   page
	dirty bool
	// prev/next form the intrusive LRU list (front = most recent).
	prev, next *cached
}

// Manager is the disk-based storage manager.
type Manager struct {
	// seqMu is the log-sequencing lock: held only while a commit's
	// records are appended to the WAL buffer and its apply entry is
	// enqueued — never across fsync or pool work. Checkpoint and Close
	// take it first to fence out new commits (lock order: seqMu before
	// mu).
	seqMu   sync.Mutex
	nextSeq uint64 // next apply sequence to hand out (under seqMu)

	// mu is the buffer-pool lock: pool frames, directory, free maps,
	// counters. Read/ReserveOID/Exists take only mu, so they are never
	// blocked by a committer waiting on an fsync.
	mu         sync.Mutex
	appliedSeq uint64        // commits applied (or skipped) so far
	applyQueue []*applyEntry // sequenced commits not yet applied, seq order
	applyCond  *sync.Cond    // waits on appliedSeq advancing (with mu)

	f         *os.File
	log       *wal.Log
	pageCount uint32 // includes header page 0

	cache    map[uint32]*cached
	lruHead  *cached // most recently used
	lruTail  *cached // least recently used
	lruLen   int
	capacity int

	dir       map[storage.OID]loc
	freeSpace map[uint32]int // slotted page -> free bytes
	freePages []uint32
	nextOID   storage.OID
	// oidFilter, when set, restricts which OIDs ReserveOID may mint —
	// the sharding hook (see SetOIDFilter).
	oidFilter func(uint64) bool

	// versions holds the commit-LSN-stamped version chains behind
	// storage.Versioned. Externally synchronized: every access is under
	// mu, with stamping done in drainQueueLocked (log order) so the
	// chains always equal a replay of the applied prefix.
	versions *vstore.Store

	stats storage.Stats
	// closed and readOnly are written with both seqMu and mu held, so
	// either lock suffices to read them.
	closed     bool
	readOnly   bool
	noAutoCkpt bool

	// walBase is the global LSN of the WAL's first physical byte, as
	// persisted in the store header: checkpoints advance it so LSNs stay
	// monotonic across truncations (replication depends on that).
	walBase uint64
	// walPin, when set, bounds checkpoint truncation: the log is only
	// dropped below min(pin, end), so records a replication subscriber
	// still needs survive the checkpoint. Called under mu; must be cheap
	// and must not call back into the manager.
	walPin func() (wal.LSN, bool)

	// commitCauses holds each in-flight transaction's causal-provenance
	// note (set by the core layer before commit, or by the replication
	// applier re-attaching a primary-side note). applyCommit consumes
	// the note into the commit record's Data, which the replication
	// stream ships verbatim — so a replica knows which primary-side
	// event each applied transaction originated from. The table is
	// sharded by transaction ID: every committing transaction touches it
	// (set + take), so a single mutex would put one more global
	// serialization point on the commit path.
	commitCauses [causeShards]causeShard
}

// causeShards is the commitCauses shard count (power of two).
const causeShards = 16

type causeShard struct {
	mu    sync.Mutex
	notes map[uint64]causeNote
}

// causeNote is a pending commit-record annotation.
type causeNote struct {
	self, parent obs.Cause
}

// SetCommitCause attaches (self, parent) to txn's eventual commit
// record. Implements the core layer's commitCauser hook.
func (m *Manager) SetCommitCause(txn uint64, self, parent obs.Cause) {
	sh := &m.commitCauses[txn&(causeShards-1)]
	sh.mu.Lock()
	if sh.notes == nil {
		sh.notes = make(map[uint64]causeNote)
	}
	sh.notes[txn] = causeNote{self: self, parent: parent}
	sh.mu.Unlock()
}

// ClearCommitCause drops txn's pending note (the transaction aborted).
func (m *Manager) ClearCommitCause(txn uint64) {
	sh := &m.commitCauses[txn&(causeShards-1)]
	sh.mu.Lock()
	delete(sh.notes, txn)
	sh.mu.Unlock()
}

// takeCommitCause consumes txn's pending note.
func (m *Manager) takeCommitCause(txn uint64) (causeNote, bool) {
	sh := &m.commitCauses[txn&(causeShards-1)]
	sh.mu.Lock()
	n, ok := sh.notes[txn]
	if ok {
		delete(sh.notes, txn)
	}
	sh.mu.Unlock()
	return n, ok
}

// Options configures Open.
type Options struct {
	// CacheSize is the buffer-pool capacity in pages (default
	// DefaultCacheSize).
	CacheSize int
	// NoAutoCheckpoint disables the WAL-size-triggered checkpoint
	// (benchmarks use this to isolate costs).
	NoAutoCheckpoint bool
	// WALFile, when set, is interposed between the write-ahead log and
	// its file: every WAL write, fsync, read, and truncate flows through
	// it. The fault-injection harness (internal/fault) uses this to
	// exercise commit and recovery paths under injected failures.
	WALFile func(wal.File) wal.File
}

var errClosed = errors.New("eos: manager closed")

// ErrSnapshotsPinned reports an ImportSnapshot attempted while snapshot
// transactions still pin version-store LSNs. Importing would silently
// switch those readers to the new state mid-transaction, so the caller
// (the replication stream) must retry after the snapshots close.
var ErrSnapshotsPinned = errors.New("eos: snapshots pinned; retry import after readers close")

// Open opens (creating if needed) the store at path. The WAL lives at
// path+".wal". Recovery runs before Open returns.
func Open(path string, opts Options) (*Manager, error) {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eos: open: %w", err)
	}
	m := &Manager{
		f:          f,
		cache:      make(map[uint32]*cached),
		capacity:   opts.CacheSize,
		dir:        make(map[storage.OID]loc),
		freeSpace:  make(map[uint32]int),
		nextOID:    1,
		noAutoCkpt: opts.NoAutoCheckpoint,
		versions:   vstore.New(),
	}
	m.applyCond = sync.NewCond(&m.mu)
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("eos: size: %w", err)
	}
	if size == 0 {
		if err := m.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		m.pageCount = 1
	} else {
		if size%PageSize != 0 {
			// A torn page append; trim to whole pages.
			size -= size % PageSize
			if err := f.Truncate(size); err != nil {
				f.Close()
				return nil, fmt.Errorf("eos: trim torn page: %w", err)
			}
		}
		m.pageCount = uint32(size / PageSize)
		if err := m.readHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	repaired, err := m.buildDirectory()
	if err != nil {
		f.Close()
		return nil, err
	}
	var walOpts []wal.Option
	if opts.WALFile != nil {
		walOpts = append(walOpts, wal.WithFileWrapper(opts.WALFile))
	}
	m.log, err = wal.Open(path+".wal", walOpts...)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Restore the global LSN position persisted by the last checkpoint.
	// The header is written (and fsynced) *before* the log is truncated,
	// so after a crash between the two the base can overshoot: the log
	// then still holds pre-checkpoint records, which replay assigns
	// fresh LSNs. That is safe — replay is idempotent and replication
	// apply is too — it only means LSNs name durable history, not that
	// two crashed-over LSNs never carried the same record.
	m.log.SetBase(wal.LSN(m.walBase))
	if err := m.recover(repaired); err != nil {
		m.log.Close()
		f.Close()
		return nil, err
	}
	// Recovery replays straight into the pool without stamping (the
	// replayed state is the oldest state any snapshot can see), so the
	// version store starts empty at the log's current end.
	m.versions.SetDurable(uint64(m.log.End()))
	return m, nil
}

// Name implements storage.Manager.
func (m *Manager) Name() string { return "eos" }

// writeHeader writes page 0: magic + nextOID + the WAL base LSN.
func (m *Manager) writeHeader() error {
	p := make(page, PageSize)
	copy(p, headerMagic)
	putUint64(p[8:16], uint64(m.nextOID))
	putUint64(p[16:24], m.walBase)
	if _, err := m.f.WriteAt(p, 0); err != nil {
		return fmt.Errorf("eos: write header: %w", err)
	}
	return nil
}

func (m *Manager) readHeader() error {
	p := make(page, PageSize)
	if _, err := m.f.ReadAt(p, 0); err != nil {
		return fmt.Errorf("eos: read header: %w", err)
	}
	if string(p[:8]) != headerMagic {
		return fmt.Errorf("eos: bad magic %q (not an Ode EOS store)", p[:8])
	}
	m.nextOID = storage.OID(getUint64(p[8:16]))
	if m.nextOID == 0 {
		m.nextOID = 1
	}
	// Stores from before the replication era have zero here, which is
	// exactly the right base for their logs.
	m.walBase = getUint64(p[16:24])
	return nil
}

// buildDirectory scans every page to rebuild the OID directory, the
// free-space map, and the free-page list.
//
// A crash can interrupt a relocation after only one of its two pages
// reached disk, leaving an OID visible at two locations (the stale slot's
// removal was never flushed). Any such inconsistency postdates the last
// checkpoint — checkpoints flush a consistent image — so the WAL is
// guaranteed to hold the object's authoritative after-image. The rebuild
// therefore drops *every* copy of a duplicated OID and lets WAL replay
// reinstate it; recover() checkpoints afterwards so the repair is
// durable. It returns whether any repair happened.
func (m *Manager) buildDirectory() (repaired bool, err error) {
	locs := make(map[storage.OID][]loc)
	buf := make(page, PageSize)
	for no := uint32(1); no < m.pageCount; no++ {
		if _, err := m.f.ReadAt(buf, int64(no)*PageSize); err != nil {
			return false, fmt.Errorf("eos: scan page %d: %w", no, err)
		}
		switch buf.kind() {
		case kindSlotted:
			for i := 0; i < buf.nslots(); i++ {
				oid, _, _ := buf.slot(i)
				if oid != 0 {
					locs[storage.OID(oid)] = append(locs[storage.OID(oid)], loc{pageNo: no, slot: uint16(i)})
					if storage.OID(oid) >= m.nextOID {
						m.nextOID = storage.OID(oid) + 1
					}
				}
			}
			if buf.liveCount() == 0 {
				m.freePages = append(m.freePages, no)
			} else {
				m.freeSpace[no] = buf.freeSpace()
			}
		case kindOverflowHead:
			oid := storage.OID(buf.ovOID())
			locs[oid] = append(locs[oid], loc{pageNo: no, overflow: true})
			if oid >= m.nextOID {
				m.nextOID = oid + 1
			}
		case kindOverflowCont:
			// Reached via its head; nothing to record.
		case kindFree:
			m.freePages = append(m.freePages, no)
		default:
			return false, fmt.Errorf("eos: page %d has unknown kind %d", no, buf.kind())
		}
	}
	for oid, ls := range locs {
		if len(ls) == 1 {
			m.dir[oid] = ls[0]
			continue
		}
		// Torn relocation: purge every copy; replay re-creates the
		// object from its logged after-image.
		repaired = true
		for _, l := range ls {
			if err := m.purgeLoc(oid, l); err != nil {
				return repaired, fmt.Errorf("eos: purge duplicate oid %d: %w", oid, err)
			}
		}
	}
	return repaired, nil
}

// purgeLoc removes one possibly-stale copy of oid during directory
// repair. Unlike removeLoc it defends against pages that were reused
// since the stale location was written: slots are only cleared if they
// still name oid, overflow walks stop at pages that no longer belong to
// oid's chain, and cycles through stale next-pointers are cut.
func (m *Manager) purgeLoc(oid storage.OID, l loc) error {
	if !l.overflow {
		p, err := m.getPage(l.pageNo)
		if err != nil {
			return err
		}
		if p.buf.kind() != kindSlotted || int(l.slot) >= p.buf.nslots() {
			return nil // page already freed or reshaped
		}
		if s, _, _ := p.buf.slot(int(l.slot)); s != uint64(oid) {
			return nil // slot reused by another object
		}
		p.buf.remove(int(l.slot))
		m.markDirty(p)
		if p.buf.liveCount() == 0 {
			delete(m.freeSpace, l.pageNo)
			p.buf.init(kindFree)
			m.addFreePage(l.pageNo)
		} else {
			m.freeSpace[l.pageNo] = p.buf.freeSpace()
		}
		return nil
	}
	visited := make(map[uint32]bool)
	no := l.pageNo
	for no != 0 && !visited[no] {
		visited[no] = true
		p, err := m.getPage(no)
		if err != nil {
			return err
		}
		k := p.buf.kind()
		if (k != kindOverflowHead && k != kindOverflowCont) || p.buf.ovOID() != uint64(oid) {
			return nil // chain page reused; stop here
		}
		next := uint32(p.buf.next())
		p.buf.init(kindFree)
		m.markDirty(p)
		delete(m.freeSpace, no)
		m.addFreePage(no)
		no = next
	}
	return nil
}

// addFreePage appends a page to the free list exactly once.
func (m *Manager) addFreePage(no uint32) {
	for _, f := range m.freePages {
		if f == no {
			return
		}
	}
	m.freePages = append(m.freePages, no)
}

// recover replays committed WAL batches, then checkpoints to truncate the
// log. Records from concurrently group-committed transactions interleave
// in the log, so ops are buffered per transaction and applied only when
// that transaction's commit record is reached — transactions with no
// commit record (in flight at the crash) are discarded. force checkpoints
// even without replayed batches (directory repair must be made durable).
func (m *Manager) recover(force bool) error {
	pending := make(map[uint64][]storage.Op)
	replayed := force
	err := m.log.Scan(func(_ wal.LSN, rec *wal.Record) error {
		switch rec.Type {
		case wal.RecUpdate, wal.RecAllocate:
			data := append([]byte(nil), rec.Data...)
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpWrite, OID: storage.OID(rec.OID), Data: data})
		case wal.RecFree:
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpFree, OID: storage.OID(rec.OID)})
		case wal.RecCommit:
			for _, op := range pending[rec.Txn] {
				if err := m.applyOp(op); err != nil {
					return err
				}
			}
			delete(pending, rec.Txn)
			replayed = true
		case wal.RecCheckpoint:
			// Informational only under redo-only logging.
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, wal.ErrCorrupt) {
			// Mid-log corruption refuses the open; dump the recorder so
			// the incidents preceding the damage reach the crash output.
			obs.Flight().Record(obs.IncCorrupt, obs.Cause{}, obs.Cause{}, 0, err.Error())
			obs.DumpFlight("wal corruption during recovery")
		}
		return fmt.Errorf("eos: recovery: %w", err)
	}
	if replayed {
		return m.checkpointLocked()
	}
	return nil
}

// SetOIDFilter installs (or clears, with nil) the allocation
// predicate: ReserveOID skips OIDs the filter rejects. A sharded
// deployment installs the ring's filter so every OID minted here is
// owned here; recovery, snapshot import, and replica apply are
// unaffected — they never mint, they replay.
func (m *Manager) SetOIDFilter(allow func(uint64) bool) {
	m.mu.Lock()
	m.oidFilter = allow
	m.mu.Unlock()
}

// ReserveOID implements storage.Manager.
func (m *Manager) ReserveOID() (storage.OID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return storage.InvalidOID, errClosed
	}
	oid := m.nextOID
	for i := 0; m.oidFilter != nil && !m.oidFilter(uint64(oid)); i++ {
		if i >= oidFilterScanCap {
			return storage.InvalidOID, errOIDFilterStuck
		}
		oid++
	}
	m.nextOID = oid + 1
	return oid, nil
}

// oidFilterScanCap bounds the filter skip scan: a consistent-hash
// slice admits roughly one OID in N, so a scan past a million rejects
// means the filter is broken (owns nothing), not unlucky.
const oidFilterScanCap = 1 << 20

var errOIDFilterStuck = fmt.Errorf("eos: OID filter rejected %d consecutive OIDs", oidFilterScanCap)

// Read implements storage.Manager. It takes only the pool lock, so reads
// proceed while committers wait on the WAL fsync.
func (m *Manager) Read(oid storage.OID) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	l, ok := m.dir[oid]
	if !ok {
		return nil, fmt.Errorf("%w: oid %d", storage.ErrNotFound, oid)
	}
	m.stats.Reads++
	return m.readLoc(l)
}

// readLoc reads one object's image given its location. Caller holds mu.
func (m *Manager) readLoc(l loc) ([]byte, error) {
	if !l.overflow {
		p, err := m.getPage(l.pageNo)
		if err != nil {
			return nil, err
		}
		return p.buf.readSlot(int(l.slot)), nil
	}
	return m.readOverflow(l.pageNo)
}

func (m *Manager) readOverflow(head uint32) ([]byte, error) {
	var out []byte
	no := head
	for no != 0 {
		p, err := m.getPage(no)
		if err != nil {
			return nil, err
		}
		out = append(out, p.buf.ovData()...)
		no = uint32(p.buf.next())
	}
	return out, nil
}

// Exists implements storage.Manager.
func (m *Manager) Exists(oid storage.OID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.dir[oid]
	return ok
}

// ApplyCommit implements storage.Manager. The three phases hold
// different locks:
//
//  1. sequence — append batch + commit record to the WAL buffer under
//     seqMu, fixing this commit's position in the log, and enqueue the
//     ops on the apply queue (same order);
//  2. harden — wait for a group-commit fsync to cover the records,
//     holding no locks (concurrent committers coalesce into one fsync);
//  3. apply — under mu, drain the apply queue up to this commit's
//     sequence, in log order.
//
// Phase 3 batches like phase 2 does: durability of this commit proves
// durability of every earlier-sequenced commit (targets grow with
// sequence numbers and the durable boundary is a log prefix), so the
// first committer of a hardened batch to reach the pool applies the
// whole batch and the rest return without queueing up behind the pool
// lock — the committers of one fsync batch re-arrive at the log
// together, keeping the next batch large.
//
// Log-before-apply is preserved: no page can carry an update whose
// commit record is not durable, so a crash at any point leaves the batch
// entirely visible or entirely invisible after recovery.
//
// A batch with no ops — a read-only transaction — returns immediately
// without logging or fsyncing: there is nothing to make durable, and on
// a read replica this is what lets read transactions commit while all
// writes are rejected with storage.ErrReadOnly.
func (m *Manager) ApplyCommit(txn uint64, ops []storage.Op) error {
	if len(ops) == 0 {
		// A read-only transaction may still have posted events (and set a
		// cause note); there is no commit record to carry it.
		m.takeCommitCause(txn)
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.closed {
			return errClosed
		}
		return nil
	}
	return m.applyCommit(txn, ops, false)
}

// ApplyReplicated applies one replicated transaction's effects through
// the identical sequence → harden → apply path as ApplyCommit, bypassing
// only the read-only gate: it is how the replication applier writes a
// replica's store while every other writer is turned away. The replica
// logs the batch in its own WAL (its LSNs are local; the position in the
// primary's log is tracked by the replica's stream state), so a replica
// crash recovers from local state alone.
func (m *Manager) ApplyReplicated(txn uint64, ops []storage.Op) error {
	return m.applyCommit(txn, ops, true)
}

func (m *Manager) applyCommit(txn uint64, ops []storage.Op, replicated bool) error {
	recs := make([]wal.Record, 0, len(ops)+1)
	var logBytes uint64
	for _, op := range ops {
		switch op.Kind {
		case storage.OpWrite:
			recs = append(recs, wal.Record{Type: wal.RecUpdate, Txn: txn, OID: uint64(op.OID), Data: op.Data})
			logBytes += uint64(len(op.Data)) + 29
		case storage.OpFree:
			recs = append(recs, wal.Record{Type: wal.RecFree, Txn: txn, OID: uint64(op.OID)})
			logBytes += 29
		default:
			return fmt.Errorf("eos: unknown op kind %v", op.Kind)
		}
	}
	crec := wal.Record{Type: wal.RecCommit, Txn: txn}
	note, hasNote := m.takeCommitCause(txn)
	if hasNote {
		crec.Data = obs.EncodeCauseNote(note.self, note.parent)
		logBytes += uint64(len(crec.Data))
	}
	recs = append(recs, crec)

	// 1. Sequence.
	m.seqMu.Lock()
	if m.closed {
		m.seqMu.Unlock()
		return errClosed
	}
	if m.readOnly && !replicated {
		m.seqMu.Unlock()
		return storage.ErrReadOnly
	}
	target, err := m.log.AppendCommit(recs)
	if err != nil {
		m.seqMu.Unlock()
		return err
	}
	e := &applyEntry{seq: m.nextSeq, lsn: uint64(target), ops: ops}
	m.nextSeq++
	m.mu.Lock()
	m.applyQueue = append(m.applyQueue, e)
	m.mu.Unlock()
	m.seqMu.Unlock()

	// 2. Harden (group commit; no locks held).
	durErr := m.log.WaitDurable(target)

	// 3. Apply. Even on a durability error the sequence must be
	// consumed, or every later committer would wait forever.
	m.mu.Lock()
	if durErr != nil {
		// This commit never became durable, so neither did any later
		// one (the WAL's sync error is sticky) — no successful drainer
		// will touch this entry. Earlier entries belong to committers
		// that may still succeed: wait for them in order, then consume
		// this sequence without applying.
		for m.appliedSeq != e.seq {
			m.applyCond.Wait()
		}
		e.skip = true
		m.drainQueueLocked(e.seq)
		m.mu.Unlock()
		// Self-healing: try to clear the wedged WAL so later commits can
		// proceed. This commit still failed — the caller's transaction
		// aborts — but the store stays usable.
		m.healWAL()
		return durErr
	}
	// Durable: every queued entry up to e.seq is durable too. Apply any
	// of them not already applied by an earlier-arriving committer.
	m.stats.LogBytes += logBytes
	m.drainQueueLocked(e.seq)
	applyErr := e.err
	wantCkpt := applyErr == nil && !m.noAutoCkpt && m.reclaimableLocked() > autoCheckpointBytes
	m.mu.Unlock()

	if applyErr != nil {
		return applyErr
	}
	obs.Flight().Record(obs.IncCommit, note.self, note.parent, txn, "")
	if wantCkpt {
		return m.Checkpoint()
	}
	return nil
}

// healWAL attempts to clear a sticky WAL sync error so the store
// survives a transient fsync failure instead of failing every commit
// forever. It fences out new commits (seqMu), waits until every
// sequenced commit has consumed its apply slot — with the sync error
// sticky they all fail fast — and only then asks the log to truncate
// its non-durable suffix and re-verify the file. The pool invariant is
// preserved: only durable commits were ever applied, and Heal discards
// exactly the records that never became durable. Failed heals leave the
// log wedged; the next failing committer retries.
func (m *Manager) healWAL() {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.drainAppliesLocked()
	m.mu.Unlock()
	// Best effort; Heal is a no-op when already healthy.
	if err := m.log.Heal(); err != nil {
		if errors.Is(err, wal.ErrCorrupt) {
			obs.Flight().Record(obs.IncCorrupt, obs.Cause{}, obs.Cause{}, 0, err.Error())
			obs.DumpFlight("wal corruption during heal")
		}
		return
	}
	obs.Flight().Record(obs.IncWALHeal, obs.Cause{}, obs.Cause{}, 0, "")
}

// drainQueueLocked applies (in log order) every queued entry with
// sequence ≤ upTo that has not been drained yet, recording per-entry
// apply errors for their owners. Caller holds mu and guarantees all
// those entries are durable (or skip-marked).
func (m *Manager) drainQueueLocked(upTo uint64) {
	for m.appliedSeq <= upTo {
		// The queue holds exactly the sequenced-but-undrained entries in
		// order, so its head is always the next sequence to apply.
		q := m.applyQueue[0]
		m.applyQueue[0] = nil
		m.applyQueue = m.applyQueue[1:]
		if !q.skip {
			// Capture pre-images before mutating the pool (the chain's
			// first stamp needs the image snapshots pinned below q.lsn
			// still resolve to), but stamp only after every op applied:
			// a partially applied batch must not leave chains claiming
			// images at q.lsn that the base pool never reached.
			pre := m.capturePreImagesLocked(q.ops)
			for _, op := range q.ops {
				if q.err = m.applyOp(op); q.err != nil {
					break
				}
			}
			if q.err == nil {
				m.versions.Stamp(q.lsn, q.ops, pre)
			}
		}
		m.appliedSeq++
	}
	m.applyCond.Broadcast()
}

// preImageLocked returns oid's current committed base image for the
// version store's first-stamp pre-image capture. Caller holds mu.
func (m *Manager) preImageLocked(oid storage.OID) ([]byte, bool) {
	l, ok := m.dir[oid]
	if !ok {
		return nil, false
	}
	data, err := m.readLoc(l)
	if err != nil {
		return nil, false
	}
	return data, true
}

// capturePreImagesLocked reads, before the batch mutates the pool, the
// base images of every op target that has no version chain yet (the
// only objects whose first stamp will ask for a pre-image). The
// returned func feeds those captures to Stamp after the apply. Caller
// holds mu.
func (m *Manager) capturePreImagesLocked(ops []storage.Op) func(storage.OID) ([]byte, bool) {
	type image struct {
		data   []byte
		exists bool
	}
	var captured map[storage.OID]image
	for _, op := range ops {
		if m.versions.HasChain(op.OID) {
			continue
		}
		if _, done := captured[op.OID]; done {
			continue
		}
		if captured == nil {
			captured = make(map[storage.OID]image)
		}
		data, exists := m.preImageLocked(op.OID)
		captured[op.OID] = image{data: data, exists: exists}
	}
	return func(oid storage.OID) ([]byte, bool) {
		img := captured[oid]
		return img.data, img.exists
	}
}

func (m *Manager) applyOp(op storage.Op) error {
	switch op.Kind {
	case storage.OpWrite:
		m.stats.Writes++
		if op.OID >= m.nextOID {
			m.nextOID = op.OID + 1
		}
		return m.write(op.OID, op.Data)
	case storage.OpFree:
		m.stats.Frees++
		return m.free(op.OID)
	default:
		return fmt.Errorf("eos: unknown op kind %v", op.Kind)
	}
}

func (m *Manager) write(oid storage.OID, data []byte) error {
	if l, ok := m.dir[oid]; ok {
		if !l.overflow && len(data) <= MaxInline {
			p, err := m.getPage(l.pageNo)
			if err != nil {
				return err
			}
			if p.buf.writeInPlace(int(l.slot), data) {
				m.markDirty(p)
				return nil
			}
		}
		if err := m.removeLoc(oid, l); err != nil {
			return err
		}
	}
	return m.insert(oid, data)
}

func (m *Manager) insert(oid storage.OID, data []byte) error {
	if len(data) > MaxInline {
		return m.insertOverflow(oid, data)
	}
	// First fit over pages with known free space.
	var target uint32
	for no, free := range m.freeSpace {
		if free >= len(data) {
			target = no
			break
		}
	}
	if target == 0 {
		no, err := m.allocPage(kindSlotted)
		if err != nil {
			return err
		}
		target = no
	}
	p, err := m.getPage(target)
	if err != nil {
		return err
	}
	slot, ok := p.buf.insert(uint64(oid), data)
	if !ok {
		return fmt.Errorf("eos: page %d advertised space but insert failed (oid %d, %d bytes)", target, oid, len(data))
	}
	m.markDirty(p)
	m.dir[oid] = loc{pageNo: target, slot: uint16(slot)}
	m.freeSpace[target] = p.buf.freeSpace()
	return nil
}

func (m *Manager) insertOverflow(oid storage.OID, data []byte) error {
	var head, prev uint32
	for off := 0; off < len(data) || off == 0; off += overflowCapacity {
		end := off + overflowCapacity
		if end > len(data) {
			end = len(data)
		}
		kind := byte(kindOverflowCont)
		if off == 0 {
			kind = kindOverflowHead
		}
		no, err := m.allocPage(kind)
		if err != nil {
			return err
		}
		p, err := m.getPage(no)
		if err != nil {
			return err
		}
		p.buf.init(kind)
		p.buf.setOvOID(uint64(oid))
		p.buf.setOvData(data[off:end])
		m.markDirty(p)
		if off == 0 {
			head = no
		} else {
			pp, err := m.getPage(prev)
			if err != nil {
				return err
			}
			pp.buf.setNext(uint64(no))
			m.markDirty(pp)
		}
		prev = no
	}
	m.dir[oid] = loc{pageNo: head, overflow: true}
	return nil
}

func (m *Manager) free(oid storage.OID) error {
	l, ok := m.dir[oid]
	if !ok {
		return nil // idempotent under replay
	}
	return m.removeLoc(oid, l)
}

func (m *Manager) removeLoc(oid storage.OID, l loc) error {
	delete(m.dir, oid)
	if !l.overflow {
		p, err := m.getPage(l.pageNo)
		if err != nil {
			return err
		}
		p.buf.remove(int(l.slot))
		m.markDirty(p)
		if p.buf.liveCount() == 0 {
			delete(m.freeSpace, l.pageNo)
			p.buf.init(kindFree)
			m.freePages = append(m.freePages, l.pageNo)
		} else {
			m.freeSpace[l.pageNo] = p.buf.freeSpace()
		}
		return nil
	}
	no := l.pageNo
	for no != 0 {
		p, err := m.getPage(no)
		if err != nil {
			return err
		}
		next := uint32(p.buf.next())
		p.buf.init(kindFree)
		m.markDirty(p)
		m.freePages = append(m.freePages, no)
		no = next
	}
	return nil
}

// allocPage returns a usable page number, reusing freed pages first.
func (m *Manager) allocPage(kind byte) (uint32, error) {
	if n := len(m.freePages); n > 0 {
		no := m.freePages[n-1]
		m.freePages = m.freePages[:n-1]
		p, err := m.getPage(no)
		if err != nil {
			return 0, err
		}
		p.buf.init(kind)
		m.markDirty(p)
		if kind == kindSlotted {
			m.freeSpace[no] = p.buf.freeSpace()
		}
		return no, nil
	}
	no := m.pageCount
	m.pageCount++
	c := &cached{no: no, buf: make(page, PageSize)}
	c.buf.init(kind)
	c.dirty = true
	m.insertCache(c)
	if kind == kindSlotted {
		m.freeSpace[no] = c.buf.freeSpace()
	}
	if err := m.evictIfNeeded(); err != nil {
		return 0, err
	}
	return no, nil
}

// --- buffer pool ----------------------------------------------------------

func (m *Manager) getPage(no uint32) (*cached, error) {
	if c, ok := m.cache[no]; ok {
		m.stats.CacheHits++
		m.lruMoveFront(c)
		return c, nil
	}
	buf := make(page, PageSize)
	if _, err := m.f.ReadAt(buf, int64(no)*PageSize); err != nil {
		return nil, fmt.Errorf("eos: read page %d: %w", no, err)
	}
	m.stats.PageReads++
	c := &cached{no: no, buf: buf}
	m.insertCache(c)
	if err := m.evictIfNeeded(); err != nil {
		return nil, err
	}
	return c, nil
}

func (m *Manager) markDirty(c *cached) { c.dirty = true }

func (m *Manager) insertCache(c *cached) {
	m.cache[c.no] = c
	c.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = c
	}
	m.lruHead = c
	if m.lruTail == nil {
		m.lruTail = c
	}
	m.lruLen++
}

func (m *Manager) lruMoveFront(c *cached) {
	if m.lruHead == c {
		return
	}
	// Unlink.
	if c.prev != nil {
		c.prev.next = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	}
	if m.lruTail == c {
		m.lruTail = c.prev
	}
	// Relink at front.
	c.prev = nil
	c.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = c
	}
	m.lruHead = c
}

func (m *Manager) evictIfNeeded() error {
	for m.lruLen > m.capacity {
		victim := m.lruTail
		if victim == nil {
			return nil
		}
		if victim.dirty {
			if err := m.flushPage(victim); err != nil {
				return err
			}
		}
		// Unlink tail.
		m.lruTail = victim.prev
		if m.lruTail != nil {
			m.lruTail.next = nil
		} else {
			m.lruHead = nil
		}
		delete(m.cache, victim.no)
		m.lruLen--
	}
	return nil
}

func (m *Manager) flushPage(c *cached) error {
	if _, err := m.f.WriteAt(c.buf, int64(c.no)*PageSize); err != nil {
		return fmt.Errorf("eos: flush page %d: %w", c.no, err)
	}
	m.stats.PageWrites++
	c.dirty = false
	return nil
}

// --- iteration, checkpoint, close ------------------------------------------

// Iterate implements storage.Manager.
func (m *Manager) Iterate(fn func(storage.OID, []byte) error) error {
	m.mu.Lock()
	oids := make([]storage.OID, 0, len(m.dir))
	for oid := range m.dir {
		oids = append(oids, oid)
	}
	m.mu.Unlock()
	for _, oid := range oids {
		data, err := m.Read(oid)
		if errors.Is(err, storage.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(oid, data); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint implements storage.Manager: flush all dirty pages and the
// header, fsync the file, then truncate the WAL. It fences out new
// commits via seqMu and drains in-flight ones (their records must not be
// lost to the truncate) before flushing.
func (m *Manager) Checkpoint() error {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	m.drainAppliesLocked()
	return m.checkpointLocked()
}

// drainAppliesLocked waits (releasing mu while waiting) until every
// sequenced commit has been applied to the pool. Callers hold seqMu, so
// no new commits can sequence meanwhile.
func (m *Manager) drainAppliesLocked() {
	for m.appliedSeq != m.nextSeq {
		m.applyCond.Wait()
	}
}

// keepLSNLocked returns the lowest LSN a checkpoint must retain: the
// end of the log, lowered to the replication pin when one is set (and
// clamped so a lost subscriber can never drag it below the base).
func (m *Manager) keepLSNLocked() wal.LSN {
	keep := m.log.End()
	if m.walPin != nil {
		if p, ok := m.walPin(); ok && p < keep {
			if base := m.log.Base(); p < base {
				p = base
			}
			keep = p
		}
	}
	return keep
}

// reclaimableLocked returns how many log bytes a checkpoint could drop
// right now; the auto-checkpoint trigger uses it instead of the raw log
// size so a stalled replica pinning the log cannot cause a checkpoint
// per commit.
func (m *Manager) reclaimableLocked() int64 {
	return int64(m.keepLSNLocked() - m.log.Base())
}

func (m *Manager) checkpointLocked() error {
	for c := m.lruHead; c != nil; c = c.next {
		if c.dirty {
			if err := m.flushPage(c); err != nil {
				return err
			}
		}
	}
	// Persist the post-truncation base *before* truncating: a crash
	// between the two leaves the header base ahead of the file, which
	// recovery tolerates (replay and replication apply are idempotent);
	// the reverse order would assign already-shipped LSNs to new records.
	end := m.log.End()
	keep := m.keepLSNLocked()
	reclaimed := int64(keep - m.log.Base())
	m.walBase = uint64(keep)
	if err := m.writeHeader(); err != nil {
		return err
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("eos: checkpoint sync: %w", err)
	}
	var err error
	if keep == end {
		err = m.log.Truncate()
	} else {
		err = m.log.TruncateBelow(keep)
	}
	if err != nil {
		return err
	}
	m.stats.Checkpoints++
	if reclaimed > 0 {
		m.stats.WALTruncatedBytes += uint64(reclaimed)
	}
	return nil
}

// Stats implements storage.Manager. Pool counters come from under mu;
// group-commit counters are merged in from the WAL.
func (m *Manager) Stats() storage.Stats {
	m.mu.Lock()
	st := m.stats
	m.mu.Unlock()
	ss := m.log.SyncStats()
	st.Fsyncs = ss.Fsyncs
	st.GroupCommits = ss.Commits
	st.BatchMin = ss.BatchMin
	st.BatchMax = ss.BatchMax
	st.CommitWaitNs = ss.CommitWaitNs
	st.WALHeals = ss.Heals
	return st
}

// Close checkpoints and closes the store.
func (m *Manager) Close() error {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.drainAppliesLocked()
	ckErr := m.checkpointLocked()
	logErr := m.log.Close()
	fErr := m.f.Close()
	m.closed = true
	if ckErr != nil {
		return ckErr
	}
	if logErr != nil {
		return logErr
	}
	return fErr
}

// --- MVCC surface (storage.Versioned) ---------------------------------------

var _ storage.Versioned = (*Manager)(nil)

// SnapshotLSN implements storage.Versioned: the newest commit LSN whose
// effects are fully applied to the pool. On a replica this is the last
// applied replicated commit, so snapshots are consistent-as-of-that-LSN.
func (m *Manager) SnapshotLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versions.Durable()
}

// PinSnapshot implements storage.Versioned.
func (m *Manager) PinSnapshot() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versions.Pin()
}

// UnpinSnapshot implements storage.Versioned.
func (m *Manager) UnpinSnapshot(lsn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.versions.Unpin(lsn)
}

// ReadAt implements storage.Versioned: the committed image of oid as of
// lsn. Like Read it takes only the pool lock — never seqMu — so snapshot
// reads proceed while committers wait on fsyncs; stamping happens in the
// same critical section as pool application, so a reader always sees
// chain and base in agreement.
func (m *Manager) ReadAt(oid storage.OID, lsn uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	if data, live, resolved := m.versions.Lookup(oid, lsn); resolved {
		if !live {
			return nil, fmt.Errorf("%w: oid %d as of lsn %d", storage.ErrNotFound, oid, lsn)
		}
		m.stats.Reads++
		return data, nil
	}
	// No chain: the object has not changed since its chain was trimmed
	// (or ever), so the base image is the image as of lsn.
	l, ok := m.dir[oid]
	if !ok {
		return nil, fmt.Errorf("%w: oid %d", storage.ErrNotFound, oid)
	}
	m.stats.Reads++
	return m.readLoc(l)
}

// ExistsAt implements storage.Versioned.
func (m *Manager) ExistsAt(oid storage.OID, lsn uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if _, live, resolved := m.versions.Lookup(oid, lsn); resolved {
		return live
	}
	_, ok := m.dir[oid]
	return ok
}

// VersionStats implements storage.Versioned.
func (m *Manager) VersionStats() storage.VersionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versions.Stats()
}

// GCVersions implements storage.Versioned.
func (m *Manager) GCVersions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versions.GC()
}

// --- replication surface ----------------------------------------------------

// SnapObject is one object image in a store snapshot.
type SnapObject struct {
	OID  storage.OID
	Data []byte
}

// Export produces a consistent snapshot of the whole store: every
// committed object image plus the OID allocator, together with the
// snapshot LSN — the end of the log at a moment when the pool equals a
// replay of the entire log. New commits are fenced out (seqMu) and
// in-flight ones drained, so the triple (lsn, nextOID, objects) is
// exactly the state a replica that then streams records from lsn will
// extend. Used for replica bootstrap when the subscriber's position has
// been checkpoint-truncated away.
func (m *Manager) Export() (lsn wal.LSN, nextOID storage.OID, objs []SnapObject, err error) {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, 0, nil, errClosed
	}
	m.drainAppliesLocked()
	lsn = m.log.End()
	objs = make([]SnapObject, 0, len(m.dir))
	for oid, l := range m.dir {
		data, err := m.readLoc(l)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("eos: export oid %d: %w", oid, err)
		}
		objs = append(objs, SnapObject{OID: oid, Data: data})
	}
	return lsn, m.nextOID, objs, nil
}

// ExportDigests produces a consistent per-object digest inventory of
// the store under the same commit fence as Export: the returned item
// set (OID, content digest) is exactly the state a replay of the log up
// to the returned LSN produces. This is the anti-entropy capture point:
// reconciling two digest inventories yields the divergent OIDs without
// shipping any object images.
func (m *Manager) ExportDigests() (lsn wal.LSN, nextOID storage.OID, items []antientropy.Item, err error) {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, 0, nil, errClosed
	}
	m.drainAppliesLocked()
	lsn = m.log.End()
	items = make([]antientropy.Item, 0, len(m.dir))
	for oid, l := range m.dir {
		data, err := m.readLoc(l)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("eos: export digest oid %d: %w", oid, err)
		}
		items = append(items, antientropy.Item{Key: uint64(oid), Digest: antientropy.Digest(data)})
	}
	return lsn, m.nextOID, items, nil
}

// classOfImage extracts the catalog class ID from a stored object's
// envelope (the obj package's format: version byte 1, a flags byte,
// then a little-endian uint32 class ID). Images without a decodable
// envelope — system pages, foreign formats — fold into class 0. The
// mapping only has to be consistent on both sides of an exchange, and
// a pure function of the bytes is.
func classOfImage(data []byte) uint32 {
	if len(data) >= 6 && data[0] == 1 {
		return binary.LittleEndian.Uint32(data[2:6])
	}
	return 0
}

// ExportClassDigests is ExportDigests with each item tagged by its
// object's catalog class, under the same commit fence. The tags let
// anti-entropy partition the digest walk per class and scope a
// reconciliation to a single class (antientropy.FilterClass) instead
// of the whole store.
func (m *Manager) ExportClassDigests() (lsn wal.LSN, nextOID storage.OID, items []antientropy.ClassItem, err error) {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, 0, nil, errClosed
	}
	m.drainAppliesLocked()
	lsn = m.log.End()
	items = make([]antientropy.ClassItem, 0, len(m.dir))
	for oid, l := range m.dir {
		data, err := m.readLoc(l)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("eos: export class digest oid %d: %w", oid, err)
		}
		items = append(items, antientropy.ClassItem{
			Item:  antientropy.Item{Key: uint64(oid), Digest: antientropy.Digest(data)},
			Class: classOfImage(data),
		})
	}
	return lsn, m.nextOID, items, nil
}

// ObjectCount returns the number of live objects in the store.
func (m *Manager) ObjectCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dir)
}

// EnsureNextOID raises the OID allocator to at least next. Anti-entropy
// repair uses it to carry the primary's allocator over to a repaired
// replica so a later promotion cannot re-issue OIDs the primary already
// handed out.
func (m *Manager) EnsureNextOID(next storage.OID) {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if next > m.nextOID {
		m.nextOID = next
	}
}

// ImportSnapshot replaces the store's entire contents with a snapshot
// produced by a primary's Export: the pool and file are reset to just
// the header page, every object is inserted, and a checkpoint makes the
// result durable. The snapshot's LSN is the *primary's* position and is
// tracked by the replication stream state, not by this store — the
// replica's own WAL keeps its own (local) LSNs.
func (m *Manager) ImportSnapshot(nextOID storage.OID, objs []SnapObject) error {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if m.versions.Pins() > 0 {
		// Open snapshot transactions would silently observe the imported
		// state mid-transaction; make the stream retry instead. A replica
		// serving long reads converges once those snapshots close.
		return ErrSnapshotsPinned
	}
	m.drainAppliesLocked()
	m.cache = make(map[uint32]*cached)
	m.lruHead, m.lruTail, m.lruLen = nil, nil, 0
	m.dir = make(map[storage.OID]loc)
	m.freeSpace = make(map[uint32]int)
	m.freePages = nil
	if err := m.f.Truncate(PageSize); err != nil {
		return fmt.Errorf("eos: import: reset file: %w", err)
	}
	m.pageCount = 1
	m.nextOID = 1
	for _, o := range objs {
		if err := m.applyOp(storage.Op{Kind: storage.OpWrite, OID: o.OID, Data: o.Data}); err != nil {
			return fmt.Errorf("eos: import oid %d: %w", o.OID, err)
		}
	}
	if nextOID > m.nextOID {
		m.nextOID = nextOID
	}
	// The imported state replaces all history; old version chains go
	// with it. No pins exist (checked above), so no open snapshot can
	// observe the switch.
	m.versions.Reset(uint64(m.log.End()))
	return m.checkpointLocked()
}

// SetReadOnly flips the store's read-only gate. While set, ApplyCommit
// rejects every batch that carries ops with storage.ErrReadOnly;
// empty (read-only transaction) commits and ApplyReplicated still pass.
func (m *Manager) SetReadOnly(ro bool) {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	m.readOnly = ro
	m.mu.Unlock()
}

// ReadOnly reports whether the read-only gate is set.
func (m *Manager) ReadOnly() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.readOnly
}

// SetWALPin installs (or, with nil, removes) the checkpoint truncation
// bound. fn is called with the pool lock held and must be cheap and
// reentrancy-free; returning ok=false means "no pin right now".
func (m *Manager) SetWALPin(fn func() (wal.LSN, bool)) {
	m.seqMu.Lock()
	defer m.seqMu.Unlock()
	m.mu.Lock()
	m.walPin = fn
	m.mu.Unlock()
}

// Log exposes the store's write-ahead log. The replication hub reads
// durable records and registers its wakeup through it; nothing else
// should touch the log directly.
func (m *Manager) Log() *wal.Log { return m.log }

// --- small helpers ----------------------------------------------------------

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
