// Package eos is the disk-based storage manager: the analog of the EOS
// store beneath regular Ode (§2, §5.6). It provides a slotted-page file
// with a fixed-capacity LRU buffer pool, overflow chains for large
// objects, and crash recovery via the redo-only write-ahead log in
// internal/wal.
//
// Commit protocol: ApplyCommit appends the batch plus a commit record to
// the WAL and fsyncs once (log-before-apply), then applies the ops to the
// buffer pool; dirty pages reach the file lazily on eviction or at
// Checkpoint. Recovery replays committed WAL batches over the page file;
// replay is idempotent (records carry full after-images), so any prefix of
// page flushes before the crash is harmless.
package eos

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"ode/internal/storage"
	"ode/internal/wal"
)

const (
	headerMagic = "ODE-EOS1"
	// DefaultCacheSize is the default buffer-pool capacity in pages.
	DefaultCacheSize = 256
	// autoCheckpointBytes triggers a checkpoint when the WAL grows past
	// this size, bounding recovery time.
	autoCheckpointBytes = 8 << 20
)

// loc records where an object lives.
type loc struct {
	pageNo   uint32
	slot     uint16
	overflow bool
}

// cached is one buffer-pool frame.
type cached struct {
	no    uint32
	buf   page
	dirty bool
	// prev/next form the intrusive LRU list (front = most recent).
	prev, next *cached
}

// Manager is the disk-based storage manager.
type Manager struct {
	mu        sync.Mutex
	f         *os.File
	log       *wal.Log
	pageCount uint32 // includes header page 0

	cache    map[uint32]*cached
	lruHead  *cached // most recently used
	lruTail  *cached // least recently used
	lruLen   int
	capacity int

	dir       map[storage.OID]loc
	freeSpace map[uint32]int // slotted page -> free bytes
	freePages []uint32
	nextOID   storage.OID

	stats      storage.Stats
	closed     bool
	noAutoCkpt bool
}

// Options configures Open.
type Options struct {
	// CacheSize is the buffer-pool capacity in pages (default
	// DefaultCacheSize).
	CacheSize int
	// NoAutoCheckpoint disables the WAL-size-triggered checkpoint
	// (benchmarks use this to isolate costs).
	NoAutoCheckpoint bool
}

var errClosed = errors.New("eos: manager closed")

// Open opens (creating if needed) the store at path. The WAL lives at
// path+".wal". Recovery runs before Open returns.
func Open(path string, opts Options) (*Manager, error) {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eos: open: %w", err)
	}
	m := &Manager{
		f:          f,
		cache:      make(map[uint32]*cached),
		capacity:   opts.CacheSize,
		dir:        make(map[storage.OID]loc),
		freeSpace:  make(map[uint32]int),
		nextOID:    1,
		noAutoCkpt: opts.NoAutoCheckpoint,
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("eos: size: %w", err)
	}
	if size == 0 {
		if err := m.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		m.pageCount = 1
	} else {
		if size%PageSize != 0 {
			// A torn page append; trim to whole pages.
			size -= size % PageSize
			if err := f.Truncate(size); err != nil {
				f.Close()
				return nil, fmt.Errorf("eos: trim torn page: %w", err)
			}
		}
		m.pageCount = uint32(size / PageSize)
		if err := m.readHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	repaired, err := m.buildDirectory()
	if err != nil {
		f.Close()
		return nil, err
	}
	m.log, err = wal.Open(path + ".wal")
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := m.recover(repaired); err != nil {
		m.log.Close()
		f.Close()
		return nil, err
	}
	return m, nil
}

// Name implements storage.Manager.
func (m *Manager) Name() string { return "eos" }

// writeHeader writes page 0: magic + nextOID.
func (m *Manager) writeHeader() error {
	p := make(page, PageSize)
	copy(p, headerMagic)
	putUint64(p[8:16], uint64(m.nextOID))
	if _, err := m.f.WriteAt(p, 0); err != nil {
		return fmt.Errorf("eos: write header: %w", err)
	}
	return nil
}

func (m *Manager) readHeader() error {
	p := make(page, PageSize)
	if _, err := m.f.ReadAt(p, 0); err != nil {
		return fmt.Errorf("eos: read header: %w", err)
	}
	if string(p[:8]) != headerMagic {
		return fmt.Errorf("eos: bad magic %q (not an Ode EOS store)", p[:8])
	}
	m.nextOID = storage.OID(getUint64(p[8:16]))
	if m.nextOID == 0 {
		m.nextOID = 1
	}
	return nil
}

// buildDirectory scans every page to rebuild the OID directory, the
// free-space map, and the free-page list.
//
// A crash can interrupt a relocation after only one of its two pages
// reached disk, leaving an OID visible at two locations (the stale slot's
// removal was never flushed). Any such inconsistency postdates the last
// checkpoint — checkpoints flush a consistent image — so the WAL is
// guaranteed to hold the object's authoritative after-image. The rebuild
// therefore drops *every* copy of a duplicated OID and lets WAL replay
// reinstate it; recover() checkpoints afterwards so the repair is
// durable. It returns whether any repair happened.
func (m *Manager) buildDirectory() (repaired bool, err error) {
	locs := make(map[storage.OID][]loc)
	buf := make(page, PageSize)
	for no := uint32(1); no < m.pageCount; no++ {
		if _, err := m.f.ReadAt(buf, int64(no)*PageSize); err != nil {
			return false, fmt.Errorf("eos: scan page %d: %w", no, err)
		}
		switch buf.kind() {
		case kindSlotted:
			for i := 0; i < buf.nslots(); i++ {
				oid, _, _ := buf.slot(i)
				if oid != 0 {
					locs[storage.OID(oid)] = append(locs[storage.OID(oid)], loc{pageNo: no, slot: uint16(i)})
					if storage.OID(oid) >= m.nextOID {
						m.nextOID = storage.OID(oid) + 1
					}
				}
			}
			if buf.liveCount() == 0 {
				m.freePages = append(m.freePages, no)
			} else {
				m.freeSpace[no] = buf.freeSpace()
			}
		case kindOverflowHead:
			oid := storage.OID(buf.ovOID())
			locs[oid] = append(locs[oid], loc{pageNo: no, overflow: true})
			if oid >= m.nextOID {
				m.nextOID = oid + 1
			}
		case kindOverflowCont:
			// Reached via its head; nothing to record.
		case kindFree:
			m.freePages = append(m.freePages, no)
		default:
			return false, fmt.Errorf("eos: page %d has unknown kind %d", no, buf.kind())
		}
	}
	for oid, ls := range locs {
		if len(ls) == 1 {
			m.dir[oid] = ls[0]
			continue
		}
		// Torn relocation: purge every copy; replay re-creates the
		// object from its logged after-image.
		repaired = true
		for _, l := range ls {
			if err := m.purgeLoc(oid, l); err != nil {
				return repaired, fmt.Errorf("eos: purge duplicate oid %d: %w", oid, err)
			}
		}
	}
	return repaired, nil
}

// purgeLoc removes one possibly-stale copy of oid during directory
// repair. Unlike removeLoc it defends against pages that were reused
// since the stale location was written: slots are only cleared if they
// still name oid, overflow walks stop at pages that no longer belong to
// oid's chain, and cycles through stale next-pointers are cut.
func (m *Manager) purgeLoc(oid storage.OID, l loc) error {
	if !l.overflow {
		p, err := m.getPage(l.pageNo)
		if err != nil {
			return err
		}
		if p.buf.kind() != kindSlotted || int(l.slot) >= p.buf.nslots() {
			return nil // page already freed or reshaped
		}
		if s, _, _ := p.buf.slot(int(l.slot)); s != uint64(oid) {
			return nil // slot reused by another object
		}
		p.buf.remove(int(l.slot))
		m.markDirty(p)
		if p.buf.liveCount() == 0 {
			delete(m.freeSpace, l.pageNo)
			p.buf.init(kindFree)
			m.addFreePage(l.pageNo)
		} else {
			m.freeSpace[l.pageNo] = p.buf.freeSpace()
		}
		return nil
	}
	visited := make(map[uint32]bool)
	no := l.pageNo
	for no != 0 && !visited[no] {
		visited[no] = true
		p, err := m.getPage(no)
		if err != nil {
			return err
		}
		k := p.buf.kind()
		if (k != kindOverflowHead && k != kindOverflowCont) || p.buf.ovOID() != uint64(oid) {
			return nil // chain page reused; stop here
		}
		next := uint32(p.buf.next())
		p.buf.init(kindFree)
		m.markDirty(p)
		delete(m.freeSpace, no)
		m.addFreePage(no)
		no = next
	}
	return nil
}

// addFreePage appends a page to the free list exactly once.
func (m *Manager) addFreePage(no uint32) {
	for _, f := range m.freePages {
		if f == no {
			return
		}
	}
	m.freePages = append(m.freePages, no)
}

// recover replays committed WAL batches, then checkpoints to truncate the
// log. force checkpoints even without replayed batches (directory repair
// must be made durable).
func (m *Manager) recover(force bool) error {
	pending := make(map[uint64][]storage.Op)
	replayed := force
	err := m.log.Scan(func(_ wal.LSN, rec *wal.Record) error {
		switch rec.Type {
		case wal.RecUpdate, wal.RecAllocate:
			data := append([]byte(nil), rec.Data...)
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpWrite, OID: storage.OID(rec.OID), Data: data})
		case wal.RecFree:
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpFree, OID: storage.OID(rec.OID)})
		case wal.RecCommit:
			for _, op := range pending[rec.Txn] {
				if err := m.applyOp(op); err != nil {
					return err
				}
			}
			delete(pending, rec.Txn)
			replayed = true
		case wal.RecCheckpoint:
			// Informational only under redo-only logging.
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("eos: recovery: %w", err)
	}
	if replayed {
		return m.checkpointLocked()
	}
	return nil
}

// ReserveOID implements storage.Manager.
func (m *Manager) ReserveOID() (storage.OID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return storage.InvalidOID, errClosed
	}
	oid := m.nextOID
	m.nextOID++
	return oid, nil
}

// Read implements storage.Manager.
func (m *Manager) Read(oid storage.OID) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	l, ok := m.dir[oid]
	if !ok {
		return nil, fmt.Errorf("%w: oid %d", storage.ErrNotFound, oid)
	}
	m.stats.Reads++
	if !l.overflow {
		p, err := m.getPage(l.pageNo)
		if err != nil {
			return nil, err
		}
		return p.buf.readSlot(int(l.slot)), nil
	}
	return m.readOverflow(l.pageNo)
}

func (m *Manager) readOverflow(head uint32) ([]byte, error) {
	var out []byte
	no := head
	for no != 0 {
		p, err := m.getPage(no)
		if err != nil {
			return nil, err
		}
		out = append(out, p.buf.ovData()...)
		no = uint32(p.buf.next())
	}
	return out, nil
}

// Exists implements storage.Manager.
func (m *Manager) Exists(oid storage.OID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.dir[oid]
	return ok
}

// ApplyCommit implements storage.Manager.
func (m *Manager) ApplyCommit(txn uint64, ops []storage.Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	// 1. Log-before-apply: batch + commit record, one fsync.
	recs := make([]wal.Record, 0, len(ops)+1)
	var logBytes uint64
	for _, op := range ops {
		switch op.Kind {
		case storage.OpWrite:
			recs = append(recs, wal.Record{Type: wal.RecUpdate, Txn: txn, OID: uint64(op.OID), Data: op.Data})
			logBytes += uint64(len(op.Data)) + 29
		case storage.OpFree:
			recs = append(recs, wal.Record{Type: wal.RecFree, Txn: txn, OID: uint64(op.OID)})
			logBytes += 29
		default:
			return fmt.Errorf("eos: unknown op kind %v", op.Kind)
		}
	}
	recs = append(recs, wal.Record{Type: wal.RecCommit, Txn: txn})
	if err := m.log.AppendBatch(recs); err != nil {
		return err
	}
	m.stats.LogBytes += logBytes

	// 2. Apply to the buffer pool.
	for _, op := range ops {
		if err := m.applyOp(op); err != nil {
			return err
		}
	}
	if !m.noAutoCkpt && m.log.Size() > autoCheckpointBytes {
		return m.checkpointLocked()
	}
	return nil
}

func (m *Manager) applyOp(op storage.Op) error {
	switch op.Kind {
	case storage.OpWrite:
		m.stats.Writes++
		if op.OID >= m.nextOID {
			m.nextOID = op.OID + 1
		}
		return m.write(op.OID, op.Data)
	case storage.OpFree:
		m.stats.Frees++
		return m.free(op.OID)
	default:
		return fmt.Errorf("eos: unknown op kind %v", op.Kind)
	}
}

func (m *Manager) write(oid storage.OID, data []byte) error {
	if l, ok := m.dir[oid]; ok {
		if !l.overflow && len(data) <= MaxInline {
			p, err := m.getPage(l.pageNo)
			if err != nil {
				return err
			}
			if p.buf.writeInPlace(int(l.slot), data) {
				m.markDirty(p)
				return nil
			}
		}
		if err := m.removeLoc(oid, l); err != nil {
			return err
		}
	}
	return m.insert(oid, data)
}

func (m *Manager) insert(oid storage.OID, data []byte) error {
	if len(data) > MaxInline {
		return m.insertOverflow(oid, data)
	}
	// First fit over pages with known free space.
	var target uint32
	for no, free := range m.freeSpace {
		if free >= len(data) {
			target = no
			break
		}
	}
	if target == 0 {
		no, err := m.allocPage(kindSlotted)
		if err != nil {
			return err
		}
		target = no
	}
	p, err := m.getPage(target)
	if err != nil {
		return err
	}
	slot, ok := p.buf.insert(uint64(oid), data)
	if !ok {
		return fmt.Errorf("eos: page %d advertised space but insert failed (oid %d, %d bytes)", target, oid, len(data))
	}
	m.markDirty(p)
	m.dir[oid] = loc{pageNo: target, slot: uint16(slot)}
	m.freeSpace[target] = p.buf.freeSpace()
	return nil
}

func (m *Manager) insertOverflow(oid storage.OID, data []byte) error {
	var head, prev uint32
	for off := 0; off < len(data) || off == 0; off += overflowCapacity {
		end := off + overflowCapacity
		if end > len(data) {
			end = len(data)
		}
		kind := byte(kindOverflowCont)
		if off == 0 {
			kind = kindOverflowHead
		}
		no, err := m.allocPage(kind)
		if err != nil {
			return err
		}
		p, err := m.getPage(no)
		if err != nil {
			return err
		}
		p.buf.init(kind)
		p.buf.setOvOID(uint64(oid))
		p.buf.setOvData(data[off:end])
		m.markDirty(p)
		if off == 0 {
			head = no
		} else {
			pp, err := m.getPage(prev)
			if err != nil {
				return err
			}
			pp.buf.setNext(uint64(no))
			m.markDirty(pp)
		}
		prev = no
	}
	m.dir[oid] = loc{pageNo: head, overflow: true}
	return nil
}

func (m *Manager) free(oid storage.OID) error {
	l, ok := m.dir[oid]
	if !ok {
		return nil // idempotent under replay
	}
	return m.removeLoc(oid, l)
}

func (m *Manager) removeLoc(oid storage.OID, l loc) error {
	delete(m.dir, oid)
	if !l.overflow {
		p, err := m.getPage(l.pageNo)
		if err != nil {
			return err
		}
		p.buf.remove(int(l.slot))
		m.markDirty(p)
		if p.buf.liveCount() == 0 {
			delete(m.freeSpace, l.pageNo)
			p.buf.init(kindFree)
			m.freePages = append(m.freePages, l.pageNo)
		} else {
			m.freeSpace[l.pageNo] = p.buf.freeSpace()
		}
		return nil
	}
	no := l.pageNo
	for no != 0 {
		p, err := m.getPage(no)
		if err != nil {
			return err
		}
		next := uint32(p.buf.next())
		p.buf.init(kindFree)
		m.markDirty(p)
		m.freePages = append(m.freePages, no)
		no = next
	}
	return nil
}

// allocPage returns a usable page number, reusing freed pages first.
func (m *Manager) allocPage(kind byte) (uint32, error) {
	if n := len(m.freePages); n > 0 {
		no := m.freePages[n-1]
		m.freePages = m.freePages[:n-1]
		p, err := m.getPage(no)
		if err != nil {
			return 0, err
		}
		p.buf.init(kind)
		m.markDirty(p)
		if kind == kindSlotted {
			m.freeSpace[no] = p.buf.freeSpace()
		}
		return no, nil
	}
	no := m.pageCount
	m.pageCount++
	c := &cached{no: no, buf: make(page, PageSize)}
	c.buf.init(kind)
	c.dirty = true
	m.insertCache(c)
	if kind == kindSlotted {
		m.freeSpace[no] = c.buf.freeSpace()
	}
	if err := m.evictIfNeeded(); err != nil {
		return 0, err
	}
	return no, nil
}

// --- buffer pool ----------------------------------------------------------

func (m *Manager) getPage(no uint32) (*cached, error) {
	if c, ok := m.cache[no]; ok {
		m.stats.CacheHits++
		m.lruMoveFront(c)
		return c, nil
	}
	buf := make(page, PageSize)
	if _, err := m.f.ReadAt(buf, int64(no)*PageSize); err != nil {
		return nil, fmt.Errorf("eos: read page %d: %w", no, err)
	}
	m.stats.PageReads++
	c := &cached{no: no, buf: buf}
	m.insertCache(c)
	if err := m.evictIfNeeded(); err != nil {
		return nil, err
	}
	return c, nil
}

func (m *Manager) markDirty(c *cached) { c.dirty = true }

func (m *Manager) insertCache(c *cached) {
	m.cache[c.no] = c
	c.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = c
	}
	m.lruHead = c
	if m.lruTail == nil {
		m.lruTail = c
	}
	m.lruLen++
}

func (m *Manager) lruMoveFront(c *cached) {
	if m.lruHead == c {
		return
	}
	// Unlink.
	if c.prev != nil {
		c.prev.next = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	}
	if m.lruTail == c {
		m.lruTail = c.prev
	}
	// Relink at front.
	c.prev = nil
	c.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = c
	}
	m.lruHead = c
}

func (m *Manager) evictIfNeeded() error {
	for m.lruLen > m.capacity {
		victim := m.lruTail
		if victim == nil {
			return nil
		}
		if victim.dirty {
			if err := m.flushPage(victim); err != nil {
				return err
			}
		}
		// Unlink tail.
		m.lruTail = victim.prev
		if m.lruTail != nil {
			m.lruTail.next = nil
		} else {
			m.lruHead = nil
		}
		delete(m.cache, victim.no)
		m.lruLen--
	}
	return nil
}

func (m *Manager) flushPage(c *cached) error {
	if _, err := m.f.WriteAt(c.buf, int64(c.no)*PageSize); err != nil {
		return fmt.Errorf("eos: flush page %d: %w", c.no, err)
	}
	m.stats.PageWrites++
	c.dirty = false
	return nil
}

// --- iteration, checkpoint, close ------------------------------------------

// Iterate implements storage.Manager.
func (m *Manager) Iterate(fn func(storage.OID, []byte) error) error {
	m.mu.Lock()
	oids := make([]storage.OID, 0, len(m.dir))
	for oid := range m.dir {
		oids = append(oids, oid)
	}
	m.mu.Unlock()
	for _, oid := range oids {
		data, err := m.Read(oid)
		if errors.Is(err, storage.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(oid, data); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint implements storage.Manager: flush all dirty pages and the
// header, fsync the file, then truncate the WAL.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	return m.checkpointLocked()
}

func (m *Manager) checkpointLocked() error {
	for c := m.lruHead; c != nil; c = c.next {
		if c.dirty {
			if err := m.flushPage(c); err != nil {
				return err
			}
		}
	}
	if err := m.writeHeader(); err != nil {
		return err
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("eos: checkpoint sync: %w", err)
	}
	return m.log.Truncate()
}

// Stats implements storage.Manager.
func (m *Manager) Stats() storage.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close checkpoints and closes the store.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	ckErr := m.checkpointLocked()
	logErr := m.log.Close()
	fErr := m.f.Close()
	m.closed = true
	if ckErr != nil {
		return ckErr
	}
	if logErr != nil {
		return logErr
	}
	return fErr
}

// --- small helpers ----------------------------------------------------------

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
