package eos

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertRead(t *testing.T) {
	p := newSlottedPage()
	slot, ok := p.insert(42, []byte("hello"))
	if !ok {
		t.Fatal("insert failed on empty page")
	}
	if got := p.readSlot(slot); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("readSlot = %q", got)
	}
	if p.findSlot(42) != slot {
		t.Fatalf("findSlot(42) = %d, want %d", p.findSlot(42), slot)
	}
	if p.findSlot(99) != -1 {
		t.Fatal("findSlot(99) found a ghost")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := newSlottedPage()
	data := make([]byte, 100)
	count := 0
	for {
		_, ok := p.insert(uint64(count+1), data)
		if !ok {
			break
		}
		count++
	}
	// 4096-16 = 4080 usable; each insert costs 100+12=112 → 36 objects.
	if count != 36 {
		t.Fatalf("page held %d 100-byte objects, want 36", count)
	}
	if p.liveCount() != count {
		t.Fatalf("liveCount = %d, want %d", p.liveCount(), count)
	}
}

func TestPageRemoveCompacts(t *testing.T) {
	p := newSlottedPage()
	s1, _ := p.insert(1, bytes.Repeat([]byte("a"), 500))
	s2, _ := p.insert(2, bytes.Repeat([]byte("b"), 500))
	s3, _ := p.insert(3, bytes.Repeat([]byte("c"), 500))
	before := p.freeSpace()
	p.remove(s2)
	if got := p.freeSpace(); got < before+500 {
		t.Fatalf("free space after remove = %d, want >= %d", got, before+500)
	}
	// Survivors intact after compaction.
	if got := p.readSlot(s1); !bytes.Equal(got, bytes.Repeat([]byte("a"), 500)) {
		t.Fatal("slot 1 corrupted by compaction")
	}
	if got := p.readSlot(s3); !bytes.Equal(got, bytes.Repeat([]byte("c"), 500)) {
		t.Fatal("slot 3 corrupted by compaction")
	}
	if p.findSlot(2) != -1 {
		t.Fatal("removed object still findable")
	}
}

func TestPageSlotReuse(t *testing.T) {
	p := newSlottedPage()
	s1, _ := p.insert(1, []byte("x"))
	p.insert(2, []byte("y"))
	p.remove(s1)
	s3, ok := p.insert(3, []byte("z"))
	if !ok {
		t.Fatal("insert after remove failed")
	}
	if s3 != s1 {
		t.Fatalf("tombstoned slot not reused: got %d, want %d", s3, s1)
	}
}

func TestPageWriteInPlace(t *testing.T) {
	p := newSlottedPage()
	s, _ := p.insert(1, []byte("aaaa"))
	if !p.writeInPlace(s, []byte("bbbb")) {
		t.Fatal("same-length in-place write refused")
	}
	if got := p.readSlot(s); !bytes.Equal(got, []byte("bbbb")) {
		t.Fatalf("after in-place write: %q", got)
	}
	if p.writeInPlace(s, []byte("c")) {
		t.Fatal("different-length in-place write accepted")
	}
}

func TestPageTrailingTombstonesShrinkSlotArray(t *testing.T) {
	p := newSlottedPage()
	p.insert(1, []byte("x"))
	s2, _ := p.insert(2, []byte("y"))
	p.remove(s2)
	if p.nslots() != 1 {
		t.Fatalf("nslots = %d after removing trailing slot, want 1", p.nslots())
	}
}

func TestMaxInlineFits(t *testing.T) {
	p := newSlottedPage()
	if _, ok := p.insert(1, make([]byte, MaxInline)); !ok {
		t.Fatalf("MaxInline (%d) object did not fit in an empty page", MaxInline)
	}
}

// Property: after any random sequence of inserts and removes, every live
// object reads back exactly, and free space is consistent.
func TestPageRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := newSlottedPage()
		live := make(map[uint64][]byte)
		nextOID := uint64(1)
		for i := 0; i < 200; i++ {
			if r.Intn(3) != 0 || len(live) == 0 {
				n := r.Intn(300) + 1
				data := make([]byte, n)
				r.Read(data)
				if _, ok := p.insert(nextOID, data); ok {
					live[nextOID] = data
					nextOID++
				}
			} else {
				// Remove a random live object.
				for oid := range live {
					s := p.findSlot(oid)
					if s < 0 {
						return false
					}
					p.remove(s)
					delete(live, oid)
					break
				}
			}
		}
		for oid, want := range live {
			s := p.findSlot(oid)
			if s < 0 {
				return false
			}
			if !bytes.Equal(p.readSlot(s), want) {
				return false
			}
		}
		return p.liveCount() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
