package eos

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"ode/internal/storage"
)

// TestCrashCyclesProperty drives the store through random committed
// batches interleaved with random crashes (reopen without Close, leaving
// dirty pages unflushed and the WAL as the only source of truth) and
// occasional checkpoints. After every reopen, the visible state must
// equal the model of all committed batches.
func TestCrashCyclesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%d.eos", seed))
		m, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		model := map[storage.OID][]byte{}
		var oids []storage.OID
		txn := uint64(1)

		verify := func() bool {
			for oid, want := range model {
				got, err := m.Read(oid)
				if err != nil || !bytes.Equal(got, want) {
					t.Logf("seed %d: oid %d mismatch after cycle: err=%v", seed, oid, err)
					return false
				}
			}
			count := 0
			m.Iterate(func(storage.OID, []byte) error { count++; return nil })
			if count != len(model) {
				t.Logf("seed %d: %d live objects, model has %d", seed, count, len(model))
				return false
			}
			return true
		}

		for step := 0; step < 30; step++ {
			switch r.Intn(10) {
			case 0: // crash: reopen without Close
				m2, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
				if err != nil {
					t.Logf("seed %d: reopen after crash: %v", seed, err)
					return false
				}
				m = m2
				if !verify() {
					return false
				}
			case 1: // clean close + reopen
				if err := m.Close(); err != nil {
					t.Logf("seed %d: close: %v", seed, err)
					return false
				}
				m2, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
				if err != nil {
					return false
				}
				m = m2
				if !verify() {
					return false
				}
			case 2: // checkpoint
				if err := m.Checkpoint(); err != nil {
					t.Logf("seed %d: checkpoint: %v", seed, err)
					return false
				}
			default: // committed batch
				var ops []storage.Op
				for i := 0; i < r.Intn(4)+1; i++ {
					switch {
					case len(oids) == 0 || r.Intn(3) == 0:
						oid, err := m.ReserveOID()
						if err != nil {
							return false
						}
						data := make([]byte, r.Intn(5000))
						r.Read(data)
						ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oid, Data: data})
						oids = append(oids, oid)
					case r.Intn(4) == 0:
						ops = append(ops, storage.Op{Kind: storage.OpFree, OID: oids[r.Intn(len(oids))]})
					default:
						data := make([]byte, r.Intn(5000))
						r.Read(data)
						ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oids[r.Intn(len(oids))], Data: data})
					}
				}
				if err := m.ApplyCommit(txn, ops); err != nil {
					t.Logf("seed %d: apply: %v", seed, err)
					return false
				}
				txn++
				for _, op := range ops {
					if op.Kind == storage.OpWrite {
						model[op.OID] = append([]byte(nil), op.Data...)
					} else {
						delete(model, op.OID)
					}
				}
			}
		}
		ok := verify()
		m.Close()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
