package eos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"ode/internal/storage"
	"ode/internal/wal"
)

// TestCrashCyclesProperty drives the store through random committed
// batches interleaved with random crashes (reopen without Close, leaving
// dirty pages unflushed and the WAL as the only source of truth) and
// occasional checkpoints. After every reopen, the visible state must
// equal the model of all committed batches.
func TestCrashCyclesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%d.eos", seed))
		m, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		model := map[storage.OID][]byte{}
		var oids []storage.OID
		txn := uint64(1)

		verify := func() bool {
			for oid, want := range model {
				got, err := m.Read(oid)
				if err != nil || !bytes.Equal(got, want) {
					t.Logf("seed %d: oid %d mismatch after cycle: err=%v", seed, oid, err)
					return false
				}
			}
			count := 0
			m.Iterate(func(storage.OID, []byte) error { count++; return nil })
			if count != len(model) {
				t.Logf("seed %d: %d live objects, model has %d", seed, count, len(model))
				return false
			}
			return true
		}

		for step := 0; step < 30; step++ {
			switch r.Intn(10) {
			case 0: // crash: reopen without Close
				m2, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
				if err != nil {
					t.Logf("seed %d: reopen after crash: %v", seed, err)
					return false
				}
				m = m2
				if !verify() {
					return false
				}
			case 1: // clean close + reopen
				if err := m.Close(); err != nil {
					t.Logf("seed %d: close: %v", seed, err)
					return false
				}
				m2, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
				if err != nil {
					return false
				}
				m = m2
				if !verify() {
					return false
				}
			case 2: // checkpoint
				if err := m.Checkpoint(); err != nil {
					t.Logf("seed %d: checkpoint: %v", seed, err)
					return false
				}
			default: // committed batch
				var ops []storage.Op
				for i := 0; i < r.Intn(4)+1; i++ {
					switch {
					case len(oids) == 0 || r.Intn(3) == 0:
						oid, err := m.ReserveOID()
						if err != nil {
							return false
						}
						data := make([]byte, r.Intn(5000))
						r.Read(data)
						ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oid, Data: data})
						oids = append(oids, oid)
					case r.Intn(4) == 0:
						ops = append(ops, storage.Op{Kind: storage.OpFree, OID: oids[r.Intn(len(oids))]})
					default:
						data := make([]byte, r.Intn(5000))
						r.Read(data)
						ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oids[r.Intn(len(oids))], Data: data})
					}
				}
				if err := m.ApplyCommit(txn, ops); err != nil {
					t.Logf("seed %d: apply: %v", seed, err)
					return false
				}
				txn++
				for _, op := range ops {
					if op.Kind == storage.OpWrite {
						model[op.OID] = append([]byte(nil), op.Data...)
					} else {
						delete(model, op.OID)
					}
				}
			}
		}
		ok := verify()
		m.Close()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryInterleavedLog crafts a WAL by hand in the shape group
// commit produces: records from different transactions interleaved, with
// commit records for only some of them. Recovery must replay exactly the
// committed transactions, applying each at its commit record — so for an
// OID written by two committed transactions, commit-record order decides.
func TestRecoveryInterleavedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "interleaved.eos")
	m, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The store is now checkpointed with an empty WAL. Write an
	// interleaved log directly: txn 1 and txn 3 commit, txn 2 does not.
	l, err := wal.Open(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	recs := []wal.Record{
		{Type: wal.RecUpdate, Txn: 1, OID: 1, Data: []byte("one-a")},
		{Type: wal.RecUpdate, Txn: 2, OID: 2, Data: []byte("never-committed")},
		{Type: wal.RecUpdate, Txn: 1, OID: 1, Data: []byte("one-b")},
		{Type: wal.RecUpdate, Txn: 3, OID: 3, Data: []byte("three")},
		{Type: wal.RecCommit, Txn: 1},
		{Type: wal.RecUpdate, Txn: 2, OID: 2, Data: []byte("still-not-committed")},
		// txn 3 also overwrites OID 1; it commits after txn 1, so its
		// image must win even though txn 1's write was logged later than
		// txn 3's first record.
		{Type: wal.RecUpdate, Txn: 3, OID: 1, Data: []byte("three-wins")},
		{Type: wal.RecCommit, Txn: 3},
	}
	for i := range recs {
		if _, err := l.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for oid, want := range map[storage.OID]string{1: "three-wins", 3: "three"} {
		got, err := m2.Read(oid)
		if err != nil {
			t.Fatalf("read %d: %v", oid, err)
		}
		if string(got) != want {
			t.Fatalf("oid %d = %q, want %q", oid, got, want)
		}
	}
	if _, err := m2.Read(2); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("uncommitted txn 2 visible after recovery: err=%v", err)
	}
}

// TestConcurrentCommitsSurviveCrash group-commits from many goroutines,
// then crashes (reopen without Close, dirty pages lost). Every committer's
// last acknowledged write — which interleaved with the others in the log —
// must be visible after recovery.
func TestConcurrentCommitsSurviveCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "concurrent.eos")
	m, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	const committers, per = 8, 20
	oids := make([]storage.OID, committers)
	for i := range oids {
		if oids[i], err = m.ReserveOID(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			for i := 1; i <= per; i++ {
				txn := uint64(w*per + i)
				data := []byte(fmt.Sprintf("w%d-i%d", w, i))
				ops := []storage.Op{{Kind: storage.OpWrite, OID: oids[w], Data: data}}
				if err := m.ApplyCommit(txn, ops); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	close(gate)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Crash: reopen without Close.
	m2, err := Open(path, Options{CacheSize: 4, NoAutoCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for w := 0; w < committers; w++ {
		want := fmt.Sprintf("w%d-i%d", w, per)
		got, err := m2.Read(oids[w])
		if err != nil {
			t.Fatalf("committer %d: read: %v", w, err)
		}
		if string(got) != want {
			t.Fatalf("committer %d: recovered %q, want %q", w, got, want)
		}
	}
}
