package eos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ode/internal/storage"
)

func openTemp(t *testing.T, opts Options) (*Manager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.eos")
	m, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, path
}

// commitWrite is a one-op committed write helper.
func commitWrite(t *testing.T, m *Manager, txn uint64, oid storage.OID, data []byte) {
	t.Helper()
	if err := m.ApplyCommit(txn, []storage.Op{{Kind: storage.OpWrite, OID: oid, Data: data}}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, _ := openTemp(t, Options{})
	oid, err := m.ReserveOID()
	if err != nil {
		t.Fatal(err)
	}
	commitWrite(t, m, 1, oid, []byte("persistent object"))
	got, err := m.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("persistent object")) {
		t.Fatalf("read back %q", got)
	}
	if !m.Exists(oid) {
		t.Fatal("Exists false for live object")
	}
}

func TestReadNotFound(t *testing.T) {
	m, _ := openTemp(t, Options{})
	if _, err := m.Read(999); err == nil {
		t.Fatal("read of unknown OID succeeded")
	}
	if m.Exists(999) {
		t.Fatal("Exists true for unknown OID")
	}
}

func TestUpdateAndFree(t *testing.T) {
	m, _ := openTemp(t, Options{})
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("v1"))
	commitWrite(t, m, 2, oid, []byte("version two, longer"))
	got, err := m.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version two, longer" {
		t.Fatalf("after update: %q", got)
	}
	if err := m.ApplyCommit(3, []storage.Op{{Kind: storage.OpFree, OID: oid}}); err != nil {
		t.Fatal(err)
	}
	if m.Exists(oid) {
		t.Fatal("freed object still exists")
	}
}

func TestPersistsAcrossCleanClose(t *testing.T) {
	m, path := openTemp(t, Options{})
	var oids []storage.OID
	for i := 0; i < 100; i++ {
		oid, _ := m.ReserveOID()
		oids = append(oids, oid)
		commitWrite(t, m, uint64(i), oid, []byte(fmt.Sprintf("object %d", i)))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for i, oid := range oids {
		got, err := m2.Read(oid)
		if err != nil {
			t.Fatalf("oid %d: %v", oid, err)
		}
		if string(got) != fmt.Sprintf("object %d", i) {
			t.Fatalf("oid %d read %q", oid, got)
		}
	}
	// OIDs keep advancing after reopen.
	next, _ := m2.ReserveOID()
	for _, old := range oids {
		if next == old {
			t.Fatalf("OID %d reused after reopen", next)
		}
	}
}

// TestCrashRecovery simulates a crash by reopening without Close: the
// store file may be stale, but the WAL has the committed batches.
func TestCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.eos")
	m, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oid1, _ := m.ReserveOID()
	oid2, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid1, []byte("survives"))
	commitWrite(t, m, 2, oid2, []byte("also survives"))
	if err := m.ApplyCommit(3, []storage.Op{{Kind: storage.OpFree, OID: oid2}}); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon m without Close (dirty pages unflushed, WAL intact).
	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.Read(oid1)
	if err != nil {
		t.Fatalf("oid1 lost in crash: %v", err)
	}
	if string(got) != "survives" {
		t.Fatalf("oid1 = %q", got)
	}
	if m2.Exists(oid2) {
		t.Fatal("freed oid2 resurrected by recovery")
	}
}

func TestCrashAfterCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.eos")
	m, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("before ckpt"))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitWrite(t, m, 2, oid, []byte("after ckpt"))
	// Crash without close.
	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "after ckpt" {
		t.Fatalf("post-checkpoint update lost: %q", got)
	}
}

func TestLargeObjectsOverflow(t *testing.T) {
	m, path := openTemp(t, Options{})
	big := make([]byte, 3*PageSize+123) // spans 4 overflow pages
	for i := range big {
		big[i] = byte(i * 7)
	}
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, big)
	got, err := m.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("large object corrupted: %d bytes vs %d", len(got), len(big))
	}
	// Survives reopen (directory rebuild must find overflow heads).
	m.Close()
	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err = m2.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large object corrupted after reopen")
	}
	// Shrink back to inline: overflow pages must be reclaimed.
	commitWrite(t, m2, 2, oid, []byte("small again"))
	got, err = m2.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "small again" {
		t.Fatalf("after shrink: %q", got)
	}
}

func TestLargeToLargerRewrite(t *testing.T) {
	m, _ := openTemp(t, Options{})
	oid, _ := m.ReserveOID()
	a := bytes.Repeat([]byte{1}, PageSize*2)
	b := bytes.Repeat([]byte{2}, PageSize*5)
	commitWrite(t, m, 1, oid, a)
	commitWrite(t, m, 2, oid, b)
	got, err := m.Read(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("grown overflow object corrupted")
	}
}

func TestFreedPagesReused(t *testing.T) {
	m, _ := openTemp(t, Options{})
	// Fill then free a batch of large objects; page count must not keep
	// growing when new ones are written.
	var oids []storage.OID
	big := make([]byte, PageSize*2)
	for i := 0; i < 5; i++ {
		oid, _ := m.ReserveOID()
		oids = append(oids, oid)
		commitWrite(t, m, uint64(i), oid, big)
	}
	grown := m.pageCount
	for i, oid := range oids {
		if err := m.ApplyCommit(uint64(10+i), []storage.Op{{Kind: storage.OpFree, OID: oid}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		oid, _ := m.ReserveOID()
		commitWrite(t, m, uint64(20+i), oid, big)
	}
	if m.pageCount > grown {
		t.Fatalf("page count grew from %d to %d despite freed pages", grown, m.pageCount)
	}
}

func TestSmallCacheEvictsCorrectly(t *testing.T) {
	// A 2-page cache forces constant eviction; data must survive.
	m, _ := openTemp(t, Options{CacheSize: 2, NoAutoCheckpoint: true})
	const n = 200
	oids := make([]storage.OID, n)
	for i := 0; i < n; i++ {
		oid, _ := m.ReserveOID()
		oids[i] = oid
		commitWrite(t, m, uint64(i), oid, []byte(fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte("x"), 200))))
	}
	for i, oid := range oids {
		got, err := m.Read(oid)
		if err != nil {
			t.Fatalf("oid %d: %v", oid, err)
		}
		want := fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte("x"), 200))
		if string(got) != want {
			t.Fatalf("oid %d corrupted under eviction pressure", oid)
		}
	}
	if st := m.Stats(); st.PageReads == 0 || st.PageWrites == 0 {
		t.Fatalf("tiny cache should hit disk: %+v", st)
	}
}

func TestIterate(t *testing.T) {
	m, _ := openTemp(t, Options{})
	want := map[storage.OID]string{}
	for i := 0; i < 20; i++ {
		oid, _ := m.ReserveOID()
		val := fmt.Sprintf("v%d", i)
		want[oid] = val
		commitWrite(t, m, uint64(i), oid, []byte(val))
	}
	got := map[storage.OID]string{}
	err := m.Iterate(func(oid storage.OID, data []byte) error {
		got[oid] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d objects, want %d", len(got), len(want))
	}
	for oid, val := range want {
		if got[oid] != val {
			t.Fatalf("oid %d: %q vs %q", oid, got[oid], val)
		}
	}
}

func TestMultiOpAtomicBatch(t *testing.T) {
	m, path := openTemp(t, Options{})
	a, _ := m.ReserveOID()
	b, _ := m.ReserveOID()
	err := m.ApplyCommit(1, []storage.Op{
		{Kind: storage.OpWrite, OID: a, Data: []byte("A")},
		{Kind: storage.OpWrite, OID: b, Data: []byte("B")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crash-reopen: both or neither.
	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Exists(a) || !m2.Exists(b) {
		t.Fatal("batch not atomic across crash")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-db")
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("opened a non-EOS file")
	}
}

func writeJunk(path string) error {
	junk := bytes.Repeat([]byte("junk data "), PageSize/10+1)[:PageSize]
	return os.WriteFile(path, junk, 0o644)
}

func TestStatsProgress(t *testing.T) {
	m, _ := openTemp(t, Options{})
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("x"))
	if _, err := m.Read(oid); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.LogBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClosedManagerRejectsOps(t *testing.T) {
	m, _ := openTemp(t, Options{})
	m.Close()
	if _, err := m.ReserveOID(); err == nil {
		t.Fatal("ReserveOID after close succeeded")
	}
	if _, err := m.Read(1); err == nil {
		t.Fatal("Read after close succeeded")
	}
	if err := m.ApplyCommit(1, nil); err == nil {
		t.Fatal("ApplyCommit after close succeeded")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
