package eos

import (
	"bytes"
	"errors"
	"testing"

	"ode/internal/storage"
)

// TestSnapshotReadsOldImage: a pinned snapshot keeps reading the image
// that was durable when it pinned, while the base store moves on.
func TestSnapshotReadsOldImage(t *testing.T) {
	m, _ := openTemp(t, Options{})
	oid, err := m.ReserveOID()
	if err != nil {
		t.Fatal(err)
	}
	commitWrite(t, m, 1, oid, []byte("old"))

	lsn := m.PinSnapshot()
	if lsn == 0 {
		t.Fatal("PinSnapshot() = 0 after a durable commit")
	}
	commitWrite(t, m, 2, oid, []byte("new"))

	got, err := m.ReadAt(oid, lsn)
	if err != nil || !bytes.Equal(got, []byte("old")) {
		t.Fatalf("ReadAt(pinned) = %q, %v; want old image", got, err)
	}
	base, err := m.Read(oid)
	if err != nil || !bytes.Equal(base, []byte("new")) {
		t.Fatalf("Read = %q, %v; want new image", base, err)
	}
	if m.SnapshotLSN() <= lsn {
		t.Fatalf("SnapshotLSN() = %d not past pin %d after a later commit", m.SnapshotLSN(), lsn)
	}
	m.UnpinSnapshot(lsn)
}

// TestSnapshotFreeVisibility: a free committed after the pin stays
// invisible to the snapshot; a fresh snapshot sees the tombstone.
func TestSnapshotFreeVisibility(t *testing.T) {
	m, _ := openTemp(t, Options{})
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("doomed"))

	lsn := m.PinSnapshot()
	defer m.UnpinSnapshot(lsn)
	if err := m.ApplyCommit(2, []storage.Op{{Kind: storage.OpFree, OID: oid}}); err != nil {
		t.Fatal(err)
	}

	if !m.ExistsAt(oid, lsn) {
		t.Fatal("ExistsAt(pinned) = false; the free postdates the pin")
	}
	if got, err := m.ReadAt(oid, lsn); err != nil || !bytes.Equal(got, []byte("doomed")) {
		t.Fatalf("ReadAt(pinned) = %q, %v", got, err)
	}
	now := m.SnapshotLSN()
	if m.ExistsAt(oid, now) {
		t.Fatal("ExistsAt(now) = true after committed free")
	}
	if _, err := m.ReadAt(oid, now); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("ReadAt(now) = %v, want ErrNotFound", err)
	}
}

// TestSnapshotPinAtZeroSurvivesGC: a snapshot pinned on a fresh store
// (durable LSN 0, before any commit) is a real pin — GC must not treat
// LSN 0 as "nothing pinned" and trim the chains the snapshot needs.
func TestSnapshotPinAtZeroSurvivesGC(t *testing.T) {
	m, _ := openTemp(t, Options{})
	lsn := m.PinSnapshot()
	if lsn != 0 {
		t.Fatalf("PinSnapshot() on fresh store = %d, want 0", lsn)
	}
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("post-snapshot"))
	m.GCVersions()

	// The object did not exist when the snapshot pinned; its read must
	// hit the pre-image tombstone, not fall through to the base store.
	if m.ExistsAt(oid, lsn) {
		t.Fatal("ExistsAt(pin at 0) = true; GC dropped the chain the pin needs")
	}
	if _, err := m.ReadAt(oid, lsn); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("ReadAt(pin at 0) = %v, want ErrNotFound (snapshot-isolation violation)", err)
	}
	m.UnpinSnapshot(lsn)
}

// TestImportSnapshotRejectsWhilePinned: replacing the whole store under
// an open snapshot transaction would silently switch its reads to the
// imported state; the import must fail typed instead and succeed once
// the snapshot closes.
func TestImportSnapshotRejectsWhilePinned(t *testing.T) {
	m, _ := openTemp(t, Options{})
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("local"))

	lsn := m.PinSnapshot()
	snap := []SnapObject{{OID: oid, Data: []byte("imported")}}
	if err := m.ImportSnapshot(oid+1, snap); !errors.Is(err, ErrSnapshotsPinned) {
		t.Fatalf("ImportSnapshot with open snapshot = %v, want ErrSnapshotsPinned", err)
	}
	// The pinned reader still sees its state.
	if got, err := m.ReadAt(oid, lsn); err != nil || !bytes.Equal(got, []byte("local")) {
		t.Fatalf("ReadAt after rejected import = %q, %v; want local image", got, err)
	}
	m.UnpinSnapshot(lsn)
	if err := m.ImportSnapshot(oid+1, snap); err != nil {
		t.Fatalf("ImportSnapshot after unpin = %v", err)
	}
	if got, err := m.Read(oid); err != nil || !bytes.Equal(got, []byte("imported")) {
		t.Fatalf("Read after import = %q, %v; want imported image", got, err)
	}
}

// TestSnapshotLSNSurvivesRecovery: after a crash-reopen the version
// chains are gone (the WAL replay rebuilt the base store only), but the
// snapshot LSN reflects the recovered log end and reads fall back to the
// base images.
func TestSnapshotLSNSurvivesRecovery(t *testing.T) {
	m, path := openTemp(t, Options{})
	oid, _ := m.ReserveOID()
	commitWrite(t, m, 1, oid, []byte("before crash"))
	commitWrite(t, m, 2, oid, []byte("at crash"))
	lsnBefore := m.SnapshotLSN()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.SnapshotLSN(); got < lsnBefore {
		t.Fatalf("SnapshotLSN() after recovery = %d, want >= %d", got, lsnBefore)
	}
	lsn := m2.PinSnapshot()
	defer m2.UnpinSnapshot(lsn)
	got, err := m2.ReadAt(oid, lsn)
	if err != nil || !bytes.Equal(got, []byte("at crash")) {
		t.Fatalf("ReadAt after recovery = %q, %v (base-store fallback)", got, err)
	}
}
