package eos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ode/internal/antientropy"
	"ode/internal/storage"
	"ode/internal/wal"
)

// TestLSNsMonotonicAcrossCheckpoint is the replication prerequisite: a
// checkpoint must not reset log positions, and the base must survive a
// reopen via the header.
func TestLSNsMonotonicAcrossCheckpoint(t *testing.T) {
	m, path := openTemp(t, Options{})
	commitWrite(t, m, 1, 10, []byte("before"))
	end := m.Log().End()
	if end == 0 {
		t.Fatal("log end 0 after a commit")
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.Log().Base(); got != end {
		t.Fatalf("base after checkpoint = %d, want %d", got, end)
	}
	commitWrite(t, m, 2, 11, []byte("after"))
	end2 := m.Log().End()
	if end2 <= end {
		t.Fatalf("post-checkpoint commit did not advance the LSN space: %d ≤ %d", end2, end)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// Close checkpoints, so the reopened base must be the pre-close end.
	if got := m2.Log().Base(); got != end2 {
		t.Fatalf("base after reopen = %d, want %d", got, end2)
	}
	if data, err := m2.Read(11); err != nil || string(data) != "after" {
		t.Fatalf("read after reopen: %q, %v", data, err)
	}
}

func TestReadOnlyGate(t *testing.T) {
	m, _ := openTemp(t, Options{})
	commitWrite(t, m, 1, 10, []byte("seed"))
	m.SetReadOnly(true)
	if !m.ReadOnly() {
		t.Fatal("ReadOnly() false after SetReadOnly(true)")
	}
	err := m.ApplyCommit(2, []storage.Op{{Kind: storage.OpWrite, OID: 11, Data: []byte("nope")}})
	if !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write on read-only store = %v, want ErrReadOnly", err)
	}
	// Read-only transactions (empty batches) still commit.
	if err := m.ApplyCommit(3, nil); err != nil {
		t.Fatalf("empty commit on read-only store: %v", err)
	}
	// The replication applier still writes.
	if err := m.ApplyReplicated(4, []storage.Op{{Kind: storage.OpWrite, OID: 12, Data: []byte("replicated")}}); err != nil {
		t.Fatalf("ApplyReplicated on read-only store: %v", err)
	}
	if data, err := m.Read(12); err != nil || string(data) != "replicated" {
		t.Fatalf("replicated object: %q, %v", data, err)
	}
	m.SetReadOnly(false)
	commitWrite(t, m, 5, 11, []byte("writable again"))
}

func TestExportImportRoundTrip(t *testing.T) {
	src, _ := openTemp(t, Options{})
	big := bytes.Repeat([]byte("x"), 3*PageSize) // force an overflow chain
	want := map[storage.OID][]byte{}
	for i := 0; i < 20; i++ {
		oid := storage.OID(100 + i)
		data := []byte(fmt.Sprintf("object-%d", i))
		if i == 7 {
			data = big
		}
		commitWrite(t, src, uint64(i+1), oid, data)
		want[oid] = data
	}
	// A freed object must not appear in the snapshot.
	if err := src.ApplyCommit(99, []storage.Op{{Kind: storage.OpFree, OID: 105}}); err != nil {
		t.Fatal(err)
	}
	delete(want, 105)
	srcNext, err := src.ReserveOID()
	if err != nil {
		t.Fatal(err)
	}

	lsn, nextOID, objs, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != src.Log().End() {
		t.Fatalf("snapshot LSN %d, log end %d", lsn, src.Log().End())
	}
	if len(objs) != len(want) {
		t.Fatalf("exported %d objects, want %d", len(objs), len(want))
	}

	dst, _ := openTemp(t, Options{})
	commitWrite(t, dst, 1, 5000, []byte("pre-existing junk the import must wipe"))
	if err := dst.ImportSnapshot(nextOID, objs); err != nil {
		t.Fatal(err)
	}
	if dst.Exists(5000) {
		t.Fatal("import left pre-existing object behind")
	}
	for oid, data := range want {
		got, err := dst.Read(oid)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("oid %d after import: %d bytes, %v", oid, len(got), err)
		}
	}
	dstNext, err := dst.ReserveOID()
	if err != nil {
		t.Fatal(err)
	}
	if dstNext < srcNext {
		t.Fatalf("imported allocator hands out %d, primary was at %d: replica could reuse OIDs", dstNext, srcNext)
	}
}

// TestExportDigests: the digest inventory matches a digest of every
// live object under the same fence as Export, and EnsureNextOID only
// ever raises the allocator.
func TestExportDigests(t *testing.T) {
	m, _ := openTemp(t, Options{})
	want := map[uint64]uint64{}
	for i := 0; i < 10; i++ {
		oid := storage.OID(200 + i)
		data := []byte(fmt.Sprintf("digestable-%d", i))
		commitWrite(t, m, uint64(i+1), oid, data)
		want[uint64(oid)] = antientropy.Digest(data)
	}
	if err := m.ApplyCommit(50, []storage.Op{{Kind: storage.OpFree, OID: 203}}); err != nil {
		t.Fatal(err)
	}
	delete(want, 203)

	lsn, nextOID, items, err := m.ExportDigests()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != m.Log().End() {
		t.Fatalf("digest LSN %d, log end %d", lsn, m.Log().End())
	}
	if m.ObjectCount() != len(want) || len(items) != len(want) {
		t.Fatalf("inventory has %d items, ObjectCount %d, want %d", len(items), m.ObjectCount(), len(want))
	}
	for _, it := range items {
		if want[it.Key] != it.Digest {
			t.Fatalf("oid %d digest %#x, want %#x", it.Key, it.Digest, want[it.Key])
		}
	}

	m.EnsureNextOID(nextOID - 1) // lowering is a no-op
	m.EnsureNextOID(nextOID + 100)
	got, err := m.ReserveOID()
	if err != nil {
		t.Fatal(err)
	}
	if got < nextOID+100 {
		t.Fatalf("allocator at %d after EnsureNextOID(%d)", got, nextOID+100)
	}
}

// TestWALPinBoundsCheckpoint: with a subscriber pinning the log, a
// checkpoint keeps the suffix the subscriber still needs, and the pinned
// records stay readable.
func TestWALPinBoundsCheckpoint(t *testing.T) {
	m, _ := openTemp(t, Options{})
	commitWrite(t, m, 1, 10, []byte("one"))
	pin := m.Log().End()
	commitWrite(t, m, 2, 11, []byte("two"))
	commitWrite(t, m, 3, 12, []byte("three"))

	pinned := pin
	m.SetWALPin(func() (wal.LSN, bool) { return pinned, true })
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.Log().Base(); got != pin {
		t.Fatalf("base after pinned checkpoint = %d, want pin %d", got, pin)
	}
	recs, next, _, err := m.Log().ReadDurable(pin, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || next != m.Log().End() {
		t.Fatalf("pinned suffix unreadable: %d recs, next %d, end %d", len(recs), next, m.Log().End())
	}
	// Releasing the pin lets the next checkpoint drop everything.
	m.SetWALPin(nil)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got, end := m.Log().Base(), m.Log().End(); got != end {
		t.Fatalf("base after unpinned checkpoint = %d, want end %d", got, end)
	}
	st := m.Stats()
	if st.Checkpoints < 2 || st.WALTruncatedBytes == 0 {
		t.Fatalf("checkpoint stats not recorded: %+v", st)
	}
}
