package eos

import "encoding/binary"

// Page layout (PageSize bytes, little endian).
//
// Slotted page (kindSlotted):
//
//	off 0:  u8  kind
//	off 2:  u16 nslots
//	off 4:  u16 dataEnd        end of the used data region
//	off 16: object data, growing upward from off 16
//	tail:   slot entries, growing downward; entry i occupies the 12 bytes
//	        at PageSize-12*(i+1): u64 oid | u16 off | u16 len.
//	        A slot with oid 0 is a tombstone available for reuse.
//
// Overflow pages (kindOverflowHead / kindOverflowCont) hold one large
// object as a chain:
//
//	off 0:  u8  kind
//	off 2:  u16 used           data bytes used in this page
//	off 8:  u64 next           next chain page number, 0 = end
//	off 16: u64 oid            owning object (head and continuation)
//	off 24: data
const (
	// PageSize is the fixed page size of the store file.
	PageSize = 4096

	pageHeaderSize     = 16
	slotSize           = 12
	overflowHeaderSize = 24

	// MaxInline is the largest object stored in a slotted page; larger
	// objects go to an overflow chain.
	MaxInline = PageSize - pageHeaderSize - slotSize

	// overflowCapacity is the data capacity of one overflow page.
	overflowCapacity = PageSize - overflowHeaderSize
)

const (
	kindFree         = 0
	kindSlotted      = 1
	kindOverflowHead = 2
	kindOverflowCont = 3
)

// page is a byte-slice view of one PageSize page.
type page []byte

func newSlottedPage() page {
	p := make(page, PageSize)
	p.init(kindSlotted)
	return p
}

func (p page) init(kind byte) {
	for i := range p {
		p[i] = 0
	}
	p[0] = kind
	if kind == kindSlotted {
		p.setDataEnd(pageHeaderSize)
	}
}

func (p page) kind() byte { return p[0] }

func (p page) nslots() int         { return int(binary.LittleEndian.Uint16(p[2:4])) }
func (p page) setNSlots(n int)     { binary.LittleEndian.PutUint16(p[2:4], uint16(n)) }
func (p page) dataEnd() int        { return int(binary.LittleEndian.Uint16(p[4:6])) }
func (p page) setDataEnd(n int)    { binary.LittleEndian.PutUint16(p[4:6], uint16(n)) }
func (p page) used() int           { return int(binary.LittleEndian.Uint16(p[2:4])) }
func (p page) setUsed(n int)       { binary.LittleEndian.PutUint16(p[2:4], uint16(n)) }
func (p page) next() uint64        { return binary.LittleEndian.Uint64(p[8:16]) }
func (p page) setNext(n uint64)    { binary.LittleEndian.PutUint64(p[8:16], n) }
func (p page) ovOID() uint64       { return binary.LittleEndian.Uint64(p[16:24]) }
func (p page) setOvOID(oid uint64) { binary.LittleEndian.PutUint64(p[16:24], oid) }

func (p page) ovData() []byte { return p[overflowHeaderSize : overflowHeaderSize+p.used()] }

func (p page) setOvData(data []byte) {
	copy(p[overflowHeaderSize:], data)
	p.setUsed(len(data))
}

// slotBase returns the byte offset of slot i's entry.
func slotBase(i int) int { return PageSize - slotSize*(i+1) }

func (p page) slot(i int) (oid uint64, off, ln int) {
	b := slotBase(i)
	oid = binary.LittleEndian.Uint64(p[b : b+8])
	off = int(binary.LittleEndian.Uint16(p[b+8 : b+10]))
	ln = int(binary.LittleEndian.Uint16(p[b+10 : b+12]))
	return
}

func (p page) setSlot(i int, oid uint64, off, ln int) {
	b := slotBase(i)
	binary.LittleEndian.PutUint64(p[b:b+8], oid)
	binary.LittleEndian.PutUint16(p[b+8:b+10], uint16(off))
	binary.LittleEndian.PutUint16(p[b+10:b+12], uint16(ln))
}

// findSlot returns the slot index holding oid, or -1.
func (p page) findSlot(oid uint64) int {
	for i := 0; i < p.nslots(); i++ {
		o, _, _ := p.slot(i)
		if o == oid {
			return i
		}
	}
	return -1
}

// freeSpace returns the contiguous free bytes available for one more
// insertion, accounting for a possibly-needed new slot entry.
func (p page) freeSpace() int {
	slots := p.nslots()
	// A tombstoned slot can be reused without growing the slot array.
	reusable := false
	for i := 0; i < slots; i++ {
		if oid, _, _ := p.slot(i); oid == 0 {
			reusable = true
			break
		}
	}
	free := PageSize - slotSize*slots - p.dataEnd()
	if !reusable {
		free -= slotSize
	}
	if free < 0 {
		return 0
	}
	return free
}

// insert places data for oid and returns the slot index; ok is false if
// the page lacks space.
func (p page) insert(oid uint64, data []byte) (int, bool) {
	if p.freeSpace() < len(data) {
		return 0, false
	}
	slot := -1
	for i := 0; i < p.nslots(); i++ {
		if o, _, _ := p.slot(i); o == 0 {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = p.nslots()
		p.setNSlots(slot + 1)
	}
	off := p.dataEnd()
	copy(p[off:], data)
	p.setDataEnd(off + len(data))
	p.setSlot(slot, oid, off, len(data))
	return slot, true
}

// readSlot returns a copy of the data in slot i.
func (p page) readSlot(i int) []byte {
	_, off, ln := p.slot(i)
	out := make([]byte, ln)
	copy(out, p[off:off+ln])
	return out
}

// writeInPlace overwrites slot i's data; the length must match.
func (p page) writeInPlace(i int, data []byte) bool {
	_, off, ln := p.slot(i)
	if ln != len(data) {
		return false
	}
	copy(p[off:off+ln], data)
	return true
}

// remove tombstones slot i and compacts the data region so free space
// stays contiguous.
func (p page) remove(i int) {
	p.setSlot(i, 0, 0, 0)
	p.compact()
}

// compact rewrites the data region with live slots packed from the front.
func (p page) compact() {
	type live struct {
		slot, off, ln int
		oid           uint64
	}
	var lives []live
	for i := 0; i < p.nslots(); i++ {
		oid, off, ln := p.slot(i)
		if oid != 0 {
			lives = append(lives, live{i, off, ln, oid})
		}
	}
	// Pack in ascending original offset so moves never overlap forward.
	for i := 1; i < len(lives); i++ {
		for j := i; j > 0 && lives[j].off < lives[j-1].off; j-- {
			lives[j], lives[j-1] = lives[j-1], lives[j]
		}
	}
	dst := pageHeaderSize
	for _, lv := range lives {
		if lv.off != dst {
			copy(p[dst:dst+lv.ln], p[lv.off:lv.off+lv.ln])
		}
		p.setSlot(lv.slot, lv.oid, dst, lv.ln)
		dst += lv.ln
	}
	p.setDataEnd(dst)
	// Shrink the slot array past trailing tombstones.
	n := p.nslots()
	for n > 0 {
		if oid, _, _ := p.slot(n - 1); oid != 0 {
			break
		}
		n--
	}
	p.setNSlots(n)
}

// liveCount returns the number of live slots.
func (p page) liveCount() int {
	n := 0
	for i := 0; i < p.nslots(); i++ {
		if oid, _, _ := p.slot(i); oid != 0 {
			n++
		}
	}
	return n
}
