// Package vstore keeps commit-LSN-stamped version chains for a storage
// manager — the substrate behind storage.Versioned. Each committed write
// of an object appends a (commitLSN, image) version; a snapshot reader
// asks for the newest version ≤ its pinned LSN and never coordinates
// with the lock manager.
//
// The store is externally synchronized: the owning manager guards every
// call with its own mutex (eos under Manager.mu, dali under the RWMutex
// that already serializes ApplyCommit against Read). Keeping vstore
// lock-free makes the stamping cost visible at the call site and avoids
// a second lock order.
//
// Retention: a chain's first stamp captures the object's current base
// image as a pre-image version with LSN 0, so snapshots pinned before
// the first versioned write still resolve. GC trims each chain to the
// newest version ≤ the floor (the oldest pinned snapshot LSN, or the
// durable LSN when nothing is pinned); a chain whose newest version is
// at or below the floor is dropped entirely, because the base store
// already holds that image.
package vstore

import "ode/internal/storage"

// version is one committed image. data == nil is a tombstone: the
// object was freed (or had never been created) as of lsn.
type version struct {
	lsn  uint64
	data []byte
}

// gcEvery bounds how many Stamp calls may pass between automatic GC
// sweeps, so chains stay short without anyone calling GC explicitly.
const gcEvery = 64

// Store holds the version chains for one storage manager.
type Store struct {
	chains  map[storage.OID][]version
	durable uint64         // newest fully applied commit LSN
	pins    map[uint64]int // snapshot LSN → pin count
	pinned  uint64         // total outstanding pins across all LSNs
	minPin  uint64         // cached oldest pinned LSN; valid only when len(pins) > 0
	stamps  uint64         // Stamp calls since the last auto-GC

	appended  uint64
	preimages uint64
	trimmed   uint64
	gcRuns    uint64
}

// New returns an empty store with durable LSN 0.
func New() *Store {
	return &Store{
		chains: make(map[storage.OID][]version),
		pins:   make(map[uint64]int),
	}
}

// SetDurable advances the LSN new snapshots pin. The owner calls it
// after recovery (when the chains are empty but the base store already
// reflects the log) and after every Stamp batch.
func (s *Store) SetDurable(lsn uint64) {
	if lsn > s.durable {
		s.durable = lsn
	}
}

// Durable returns the LSN a snapshot taken now would observe.
func (s *Store) Durable() uint64 { return s.durable }

// Stamp records one committed batch at lsn. pre returns the object's
// current base image (and whether it exists) and is consulted once per
// object, on the chain's first stamp, to capture the pre-image. Stamp
// also advances the durable LSN and periodically runs GC.
func (s *Store) Stamp(lsn uint64, ops []storage.Op, pre func(storage.OID) ([]byte, bool)) {
	for _, op := range ops {
		ch, ok := s.chains[op.OID]
		if !ok {
			if img, exists := pre(op.OID); exists {
				ch = append(ch, version{lsn: 0, data: cloneBytes(img)})
			} else {
				ch = append(ch, version{lsn: 0, data: nil})
			}
			s.preimages++
		}
		var data []byte
		if op.Kind == storage.OpWrite {
			data = cloneBytes(op.Data)
		}
		if last := len(ch) - 1; last >= 0 && ch[last].lsn == lsn {
			// Two writes of the same object in one commit batch:
			// only the final image is visible at lsn.
			ch[last].data = data
		} else {
			ch = append(ch, version{lsn: lsn, data: data})
			s.appended++
		}
		s.chains[op.OID] = ch
	}
	s.SetDurable(lsn)
	if s.stamps++; s.stamps >= gcEvery {
		s.stamps = 0
		s.GC()
	}
}

// Lookup resolves oid as of lsn. resolved reports whether the chain
// answered; when false the caller must fall back to the base store
// (no chain means the object has not changed since its chains were
// trimmed — the base image is the right answer for any pinned lsn).
// When resolved, live reports whether the object existed at lsn.
func (s *Store) Lookup(oid storage.OID, lsn uint64) (data []byte, live, resolved bool) {
	ch, ok := s.chains[oid]
	if !ok {
		return nil, false, false
	}
	// Newest version ≤ lsn. Chains are short (GC keeps them near the
	// pin window), so a reverse scan beats binary search in practice.
	for i := len(ch) - 1; i >= 0; i-- {
		if ch[i].lsn <= lsn {
			if ch[i].data == nil {
				return nil, false, true
			}
			return cloneBytes(ch[i].data), true, true
		}
	}
	// Every version postdates lsn — only reachable for an unpinned
	// LSN below the GC floor. Fall back to the base store.
	return nil, false, false
}

// Pin pins the current durable LSN and returns it. LSN 0 (a store
// before its first commit) is pinnable like any other: pin presence is
// tracked by count, never by a zero-LSN sentinel, so GC respects it.
func (s *Store) Pin() uint64 {
	lsn := s.durable
	s.pins[lsn]++
	s.pinned++
	if len(s.pins) == 1 || lsn < s.minPin {
		s.minPin = lsn
	}
	return lsn
}

// Unpin releases one pin at lsn.
func (s *Store) Unpin(lsn uint64) {
	n, ok := s.pins[lsn]
	if !ok {
		return
	}
	s.pinned--
	if n <= 1 {
		delete(s.pins, lsn)
		if lsn == s.minPin {
			first := true
			for p := range s.pins {
				if first || p < s.minPin {
					s.minPin = p
					first = false
				}
			}
			if first {
				s.minPin = 0 // no pins left
			}
		}
	} else {
		s.pins[lsn] = n - 1
	}
}

// OldestPin returns the oldest pinned snapshot LSN and whether any pin
// exists. A pin at LSN 0 is reported as (0, true), distinct from the
// no-pins (0, false).
func (s *Store) OldestPin() (uint64, bool) {
	return s.minPin, len(s.pins) > 0
}

// Pins returns the number of outstanding snapshot pins (counting
// multiple pins at the same LSN individually).
func (s *Store) Pins() uint64 { return s.pinned }

// HasChain reports whether oid already has a version chain — i.e.
// whether the next Stamp of oid will need a pre-image.
func (s *Store) HasChain(oid storage.OID) bool {
	_, ok := s.chains[oid]
	return ok
}

// GC trims versions below the retention floor and returns how many it
// reclaimed. No version reachable by a pinned snapshot — the newest
// version ≤ any pin — is ever trimmed.
func (s *Store) GC() uint64 {
	floor := s.durable
	if len(s.pins) > 0 && s.minPin < floor {
		floor = s.minPin
	}
	var trimmed uint64
	for oid, ch := range s.chains {
		if ch[len(ch)-1].lsn <= floor {
			// The base store already holds the newest image; nothing
			// older can be needed by any pin ≥ floor.
			trimmed += uint64(len(ch))
			delete(s.chains, oid)
			continue
		}
		// Keep the newest version ≤ floor (a pin at exactly floor
		// reads it) and everything after.
		keep := 0
		for i := len(ch) - 1; i >= 0; i-- {
			if ch[i].lsn <= floor {
				keep = i
				break
			}
		}
		if keep > 0 {
			trimmed += uint64(keep)
			s.chains[oid] = append(ch[:0:0], ch[keep:]...)
		}
	}
	s.trimmed += trimmed
	s.gcRuns++
	return trimmed
}

// Reset drops all chains and pins — the owner just replaced its entire
// state (snapshot import) — and sets the durable LSN.
func (s *Store) Reset(durable uint64) {
	s.chains = make(map[storage.OID][]version)
	s.pins = make(map[uint64]int)
	s.pinned = 0
	s.minPin = 0
	s.stamps = 0
	s.durable = durable
}

// Stats returns a snapshot of chain and GC counters.
func (s *Store) Stats() storage.VersionStats {
	st := storage.VersionStats{
		VersionsChains:       uint64(len(s.chains)),
		VersionsAppended:     s.appended,
		VersionsPreimages:    s.preimages,
		VersionsTrimmed:      s.trimmed,
		VersionsGcRuns:       s.gcRuns,
		VersionsPins:         s.pinned,
		VersionsOldestPinLsn: s.minPin,
	}
	for _, ch := range s.chains {
		st.VersionsLive += uint64(len(ch))
		if n := uint64(len(ch)); n > st.VersionsChainMax {
			st.VersionsChainMax = n
		}
	}
	return st
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
