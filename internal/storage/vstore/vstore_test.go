package vstore

import (
	"fmt"
	"testing"

	"ode/internal/storage"
)

// base is a trivial pre-image source for Stamp: OID → current image.
type base map[storage.OID][]byte

func (b base) pre(oid storage.OID) ([]byte, bool) {
	img, ok := b[oid]
	return img, ok
}

func write(oid storage.OID, data string) []storage.Op {
	return []storage.Op{{Kind: storage.OpWrite, OID: oid, Data: []byte(data)}}
}

func free(oid storage.OID) []storage.Op {
	return []storage.Op{{Kind: storage.OpFree, OID: oid}}
}

// mustLookup asserts a resolved, live version with the given image.
func mustLookup(t *testing.T, s *Store, oid storage.OID, lsn uint64, want string) {
	t.Helper()
	data, live, resolved := s.Lookup(oid, lsn)
	if !resolved || !live {
		t.Fatalf("Lookup(%d, %d) live=%v resolved=%v, want a live version", oid, lsn, live, resolved)
	}
	if string(data) != want {
		t.Fatalf("Lookup(%d, %d) = %q, want %q", oid, lsn, data, want)
	}
}

func TestChainResolution(t *testing.T) {
	s := New()
	b := base{1: []byte("v0")}
	s.Stamp(10, write(1, "v10"), b.pre)
	s.Stamp(20, write(1, "v20"), b.pre)

	// The first stamp captured the base image as a pre-image at LSN 0,
	// so a snapshot pinned before any versioned write still resolves.
	mustLookup(t, s, 1, 0, "v0")
	mustLookup(t, s, 1, 9, "v0")
	mustLookup(t, s, 1, 10, "v10")
	mustLookup(t, s, 1, 15, "v10")
	mustLookup(t, s, 1, 20, "v20")
	mustLookup(t, s, 1, 99, "v20")

	// Unknown OID: unresolved, caller falls back to the base store.
	if _, _, resolved := s.Lookup(2, 99); resolved {
		t.Fatal("Lookup of unstamped OID resolved")
	}
	if got := s.Durable(); got != 20 {
		t.Fatalf("Durable() = %d, want 20 (advanced by Stamp)", got)
	}
}

func TestPreimageTombstoneForNewObject(t *testing.T) {
	s := New()
	b := base{} // OID 7 does not exist before its first commit
	s.Stamp(5, write(7, "born"), b.pre)

	// Before LSN 5 the object had never been created: resolved but dead.
	_, live, resolved := s.Lookup(7, 4)
	if !resolved || live {
		t.Fatalf("pre-creation Lookup live=%v resolved=%v, want resolved tombstone", live, resolved)
	}
	mustLookup(t, s, 7, 5, "born")
}

func TestFreeIsTombstone(t *testing.T) {
	s := New()
	b := base{3: []byte("old")}
	s.Stamp(10, write(3, "new"), b.pre)
	s.Stamp(20, free(3), b.pre)

	mustLookup(t, s, 3, 15, "new")
	_, live, resolved := s.Lookup(3, 25)
	if !resolved || live {
		t.Fatalf("post-free Lookup live=%v resolved=%v, want resolved tombstone", live, resolved)
	}
}

func TestSameLSNCoalesces(t *testing.T) {
	s := New()
	b := base{}
	// Two writes of one object in one commit batch: only the final
	// image is visible at that LSN.
	s.Stamp(10, []storage.Op{
		{Kind: storage.OpWrite, OID: 1, Data: []byte("first")},
		{Kind: storage.OpWrite, OID: 1, Data: []byte("second")},
	}, b.pre)
	mustLookup(t, s, 1, 10, "second")
	if st := s.Stats(); st.VersionsLive != 2 { // pre-image + one coalesced version
		t.Fatalf("VersionsLive = %d, want 2", st.VersionsLive)
	}
}

func TestPinUnpinBookkeeping(t *testing.T) {
	s := New()
	s.SetDurable(10)
	a := s.Pin()
	if a != 10 {
		t.Fatalf("Pin() = %d, want 10", a)
	}
	s.SetDurable(20)
	b1 := s.Pin()
	b2 := s.Pin()
	if b1 != 20 || b2 != 20 {
		t.Fatalf("Pin() = %d, %d, want 20, 20", b1, b2)
	}
	if got, ok := s.OldestPin(); !ok || got != 10 {
		t.Fatalf("OldestPin() = %d, %v, want 10, true", got, ok)
	}
	if got := s.Pins(); got != 3 {
		t.Fatalf("Pins() = %d, want 3", got)
	}
	if st := s.Stats(); st.VersionsPins != 3 {
		t.Fatalf("VersionsPins = %d, want 3 (each snapshot counted, not distinct LSNs)", st.VersionsPins)
	}
	s.Unpin(a)
	if got, ok := s.OldestPin(); !ok || got != 20 {
		t.Fatalf("OldestPin() after releasing 10 = %d, %v, want 20, true", got, ok)
	}
	s.Unpin(b1)
	if got, ok := s.OldestPin(); !ok || got != 20 {
		t.Fatalf("OldestPin() with one pin left at 20 = %d, %v, want 20, true", got, ok)
	}
	s.Unpin(b2)
	if got, ok := s.OldestPin(); ok || got != 0 {
		t.Fatalf("OldestPin() with no pins = %d, %v, want 0, false", got, ok)
	}
	// Unpinning an unpinned LSN is a no-op, not a panic — and must not
	// drive the outstanding-pin count negative.
	s.Unpin(999)
	if got := s.Pins(); got != 0 {
		t.Fatalf("Pins() after no-op Unpin = %d, want 0", got)
	}
}

func TestPinAtLSNZeroBlocksGC(t *testing.T) {
	// Regression: a snapshot pinned at durable LSN 0 (a fresh store
	// before its first commit) must be honored by GC. The old minPin==0
	// "no pins" sentinel made such a pin invisible, so GC collapsed the
	// chain and the snapshot fell through to the base store, observing
	// post-snapshot data.
	s := New()
	pin := s.Pin()
	if pin != 0 {
		t.Fatalf("Pin() on fresh store = %d, want 0", pin)
	}
	if got, ok := s.OldestPin(); !ok || got != 0 {
		t.Fatalf("OldestPin() = %d, %v, want 0, true (pinned at 0)", got, ok)
	}
	b := base{}
	s.Stamp(1, write(1, "v1"), b.pre)
	s.GC()
	// The pin at 0 must still resolve to the pre-creation tombstone, not
	// fall back to the base store (which now holds v1).
	_, live, resolved := s.Lookup(1, pin)
	if !resolved {
		t.Fatal("chain trimmed despite pin at LSN 0; snapshot would read post-snapshot data")
	}
	if live {
		t.Fatal("snapshot at LSN 0 sees an object created after it was pinned")
	}
	s.Unpin(pin)
	s.GC()
	if st := s.Stats(); st.VersionsChains != 0 {
		t.Fatalf("VersionsChains = %d after unpinned GC, want 0", st.VersionsChains)
	}
}

func TestGCNeverTrimsPinnedReachable(t *testing.T) {
	s := New()
	b := base{1: []byte("v0")}
	s.Stamp(10, write(1, "v10"), b.pre)
	pin := s.Pin() // pins LSN 10
	for lsn := uint64(11); lsn <= 200; lsn++ {
		s.Stamp(lsn, write(1, fmt.Sprintf("v%d", lsn)), b.pre)
	}
	// Auto-GC has run several times (gcEvery = 64 < 190 stamps), yet the
	// version the pin reads — newest ≤ 10 — must have survived.
	mustLookup(t, s, 1, pin, "v10")
	if st := s.Stats(); st.VersionsGcRuns == 0 {
		t.Fatal("auto-GC never ran; the pin-safety claim was not exercised")
	}

	s.Unpin(pin)
	s.GC()
	// With no pins the floor is the durable LSN: the whole chain is at
	// or below it, so it collapses entirely (the base store holds the
	// newest image).
	if st := s.Stats(); st.VersionsChains != 0 {
		t.Fatalf("VersionsChains = %d after unpinned GC, want 0", st.VersionsChains)
	}
	if _, _, resolved := s.Lookup(1, 200); resolved {
		t.Fatal("trimmed chain still resolves; caller should fall back to base store")
	}
}

func TestGCKeepsFloorVersion(t *testing.T) {
	s := New()
	b := base{1: []byte("v0")}
	s.Stamp(10, write(1, "v10"), b.pre)
	s.Stamp(20, write(1, "v20"), b.pre)
	s.Stamp(30, write(1, "v30"), b.pre)
	pin := s.Pin() // 30
	s.SetDurable(30)
	s.Stamp(40, write(1, "v40"), b.pre)

	trimmed := s.GC()
	if trimmed == 0 {
		t.Fatal("GC trimmed nothing; versions below the floor should go")
	}
	// A pin at exactly the floor still reads its version...
	mustLookup(t, s, 1, pin, "v30")
	// ...and versions above the floor survive.
	mustLookup(t, s, 1, 40, "v40")
}

func TestLookupReturnsCopy(t *testing.T) {
	s := New()
	b := base{}
	s.Stamp(10, write(1, "abc"), b.pre)
	data, _, _ := s.Lookup(1, 10)
	data[0] = 'X'
	mustLookup(t, s, 1, 10, "abc")
}

func TestResetDropsEverything(t *testing.T) {
	s := New()
	b := base{}
	s.Stamp(10, write(1, "v10"), b.pre)
	pin := s.Pin()
	s.Reset(50)
	if got := s.Durable(); got != 50 {
		t.Fatalf("Durable() after Reset = %d, want 50", got)
	}
	if got, ok := s.OldestPin(); ok || got != 0 {
		t.Fatalf("OldestPin() after Reset = %d, %v, want 0, false (pins dropped)", got, ok)
	}
	if got := s.Pins(); got != 0 {
		t.Fatalf("Pins() after Reset = %d, want 0", got)
	}
	if _, _, resolved := s.Lookup(1, pin); resolved {
		t.Fatal("chain survived Reset")
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	b := base{1: []byte("v0")}
	s.Stamp(10, write(1, "v10"), b.pre)
	s.Stamp(20, write(1, "v20"), b.pre)
	s.Stamp(30, write(2, "w30"), b.pre)
	st := s.Stats()
	if st.VersionsChains != 2 {
		t.Errorf("VersionsChains = %d, want 2", st.VersionsChains)
	}
	if st.VersionsPreimages != 2 {
		t.Errorf("VersionsPreimages = %d, want 2", st.VersionsPreimages)
	}
	if st.VersionsAppended != 3 {
		t.Errorf("VersionsAppended = %d, want 3", st.VersionsAppended)
	}
	if st.VersionsLive != 5 { // 2 pre-images + 3 appended
		t.Errorf("VersionsLive = %d, want 5", st.VersionsLive)
	}
	if st.VersionsChainMax != 3 { // OID 1: pre-image + two versions
		t.Errorf("VersionsChainMax = %d, want 3", st.VersionsChainMax)
	}
}
