package storage_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
)

// TestManagersBehaveIdentically is the storage-seam property behind §5.6:
// the object manager runs unchanged over EOS and Dali. For any random
// operation script, both managers must produce identical visible state.
func TestManagersBehaveIdentically(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := dali.New()
		defer d.Close()
		e, err := eos.Open(filepath.Join(t.TempDir(), "conf.eos"), eos.Options{CacheSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		mgrs := []storage.Manager{d, e}
		model := make(map[storage.OID][]byte)
		var oids []storage.OID

		for txn := uint64(1); txn <= 30; txn++ {
			var ops []storage.Op
			nops := r.Intn(4) + 1
			for i := 0; i < nops; i++ {
				switch {
				case len(oids) == 0 || r.Intn(3) == 0:
					// Allocate: reserve from both; IDs must agree since
					// both allocate densely from 1.
					oidD, _ := d.ReserveOID()
					oidE, _ := e.ReserveOID()
					if oidD != oidE {
						t.Logf("OID divergence: %d vs %d", oidD, oidE)
						return false
					}
					data := make([]byte, r.Intn(6000)) // crosses MaxInline sometimes
					r.Read(data)
					ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oidD, Data: data})
					oids = append(oids, oidD)
				case r.Intn(4) == 0:
					oid := oids[r.Intn(len(oids))]
					ops = append(ops, storage.Op{Kind: storage.OpFree, OID: oid})
				default:
					oid := oids[r.Intn(len(oids))]
					data := make([]byte, r.Intn(6000))
					r.Read(data)
					ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oid, Data: data})
				}
			}
			for _, m := range mgrs {
				if err := m.ApplyCommit(txn, ops); err != nil {
					t.Logf("%s: ApplyCommit: %v", m.Name(), err)
					return false
				}
			}
			// Apply to the model in order (later ops win).
			for _, op := range ops {
				if op.Kind == storage.OpWrite {
					model[op.OID] = append([]byte(nil), op.Data...)
				} else {
					delete(model, op.OID)
				}
			}
		}

		// Verify both managers against the model.
		for _, m := range mgrs {
			for oid, want := range model {
				got, err := m.Read(oid)
				if err != nil {
					t.Logf("%s: read %d: %v", m.Name(), oid, err)
					return false
				}
				if !bytes.Equal(got, want) {
					t.Logf("%s: oid %d mismatch (%d vs %d bytes)", m.Name(), oid, len(got), len(want))
					return false
				}
			}
			count := 0
			if err := m.Iterate(func(oid storage.OID, data []byte) error {
				if want, ok := model[oid]; !ok || !bytes.Equal(data, want) {
					t.Logf("%s: iterate saw unexpected oid %d", m.Name(), oid)
				}
				count++
				return nil
			}); err != nil {
				return false
			}
			if count != len(model) {
				t.Logf("%s: iterated %d objects, model has %d", m.Name(), count, len(model))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOpKindString(t *testing.T) {
	if storage.OpWrite.String() != "write" || storage.OpFree.String() != "free" {
		t.Fatal("OpKind strings")
	}
	if storage.OpKind(77).String() != "OpKind(77)" {
		t.Fatal("unknown OpKind string")
	}
}
