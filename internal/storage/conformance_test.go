package storage_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
)

// TestManagersBehaveIdentically is the storage-seam property behind §5.6:
// the object manager runs unchanged over EOS and Dali. For any random
// operation script, both managers must produce identical visible state.
func TestManagersBehaveIdentically(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := dali.New()
		defer d.Close()
		e, err := eos.Open(filepath.Join(t.TempDir(), "conf.eos"), eos.Options{CacheSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		mgrs := []storage.Manager{d, e}
		model := make(map[storage.OID][]byte)
		var oids []storage.OID

		for txn := uint64(1); txn <= 30; txn++ {
			var ops []storage.Op
			nops := r.Intn(4) + 1
			for i := 0; i < nops; i++ {
				switch {
				case len(oids) == 0 || r.Intn(3) == 0:
					// Allocate: reserve from both; IDs must agree since
					// both allocate densely from 1.
					oidD, _ := d.ReserveOID()
					oidE, _ := e.ReserveOID()
					if oidD != oidE {
						t.Logf("OID divergence: %d vs %d", oidD, oidE)
						return false
					}
					data := make([]byte, r.Intn(6000)) // crosses MaxInline sometimes
					r.Read(data)
					ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oidD, Data: data})
					oids = append(oids, oidD)
				case r.Intn(4) == 0:
					oid := oids[r.Intn(len(oids))]
					ops = append(ops, storage.Op{Kind: storage.OpFree, OID: oid})
				default:
					oid := oids[r.Intn(len(oids))]
					data := make([]byte, r.Intn(6000))
					r.Read(data)
					ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oid, Data: data})
				}
			}
			for _, m := range mgrs {
				if err := m.ApplyCommit(txn, ops); err != nil {
					t.Logf("%s: ApplyCommit: %v", m.Name(), err)
					return false
				}
			}
			// Apply to the model in order (later ops win).
			for _, op := range ops {
				if op.Kind == storage.OpWrite {
					model[op.OID] = append([]byte(nil), op.Data...)
				} else {
					delete(model, op.OID)
				}
			}
		}

		// Verify both managers against the model.
		for _, m := range mgrs {
			for oid, want := range model {
				got, err := m.Read(oid)
				if err != nil {
					t.Logf("%s: read %d: %v", m.Name(), oid, err)
					return false
				}
				if !bytes.Equal(got, want) {
					t.Logf("%s: oid %d mismatch (%d vs %d bytes)", m.Name(), oid, len(got), len(want))
					return false
				}
			}
			count := 0
			if err := m.Iterate(func(oid storage.OID, data []byte) error {
				if want, ok := model[oid]; !ok || !bytes.Equal(data, want) {
					t.Logf("%s: iterate saw unexpected oid %d", m.Name(), oid)
				}
				count++
				return nil
			}); err != nil {
				return false
			}
			if count != len(model) {
				t.Logf("%s: iterated %d objects, model has %d", m.Name(), count, len(model))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCommitsAndReads exercises the commit/read decoupling on
// both managers: committers bump per-object counters while readers spin
// over the same objects. Per object, commits are ordered, so every reader
// must observe a non-decreasing counter — and no reader should ever stall
// behind a committer's durability wait or see a torn value. Run with
// -race, this is the storage seam's concurrency conformance check.
func TestConcurrentCommitsAndReads(t *testing.T) {
	cases := []struct {
		name string
		open func(t *testing.T) storage.Manager
	}{
		{"dali", func(t *testing.T) storage.Manager { return dali.New() }},
		{"eos", func(t *testing.T) storage.Manager {
			m, err := eos.Open(filepath.Join(t.TempDir(), "conc.eos"), eos.Options{CacheSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.open(t)
			defer m.Close()

			const committers, readers, per = 8, 4, 40
			var txnSeq atomic.Uint64
			oids := make([]storage.OID, committers)
			val := func(v uint64) []byte {
				b := make([]byte, 8)
				binary.LittleEndian.PutUint64(b, v)
				return b
			}
			for i := range oids {
				oid, err := m.ReserveOID()
				if err != nil {
					t.Fatal(err)
				}
				oids[i] = oid
				ops := []storage.Op{{Kind: storage.OpWrite, OID: oid, Data: val(0)}}
				if err := m.ApplyCommit(txnSeq.Add(1), ops); err != nil {
					t.Fatal(err)
				}
			}

			done := make(chan struct{})
			var wg, rwg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					last := make([]uint64, committers)
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						w := i % committers
						data, err := m.Read(oids[w])
						if err != nil {
							t.Errorf("read oid %d: %v", oids[w], err)
							return
						}
						if len(data) != 8 {
							t.Errorf("oid %d: torn value, %d bytes", oids[w], len(data))
							return
						}
						v := binary.LittleEndian.Uint64(data)
						if v < last[w] || v > per {
							t.Errorf("oid %d: counter went %d -> %d", oids[w], last[w], v)
							return
						}
						last[w] = v
					}
				}()
			}
			for w := 0; w < committers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := uint64(1); i <= per; i++ {
						ops := []storage.Op{{Kind: storage.OpWrite, OID: oids[w], Data: val(i)}}
						if err := m.ApplyCommit(txnSeq.Add(1), ops); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(done)
			rwg.Wait()
			if t.Failed() {
				return
			}
			for w := 0; w < committers; w++ {
				data, err := m.Read(oids[w])
				if err != nil {
					t.Fatal(err)
				}
				if v := binary.LittleEndian.Uint64(data); v != per {
					t.Fatalf("oid %d final counter = %d, want %d", oids[w], v, per)
				}
			}
		})
	}
}

func TestOpKindString(t *testing.T) {
	if storage.OpWrite.String() != "write" || storage.OpFree.String() != "free" {
		t.Fatal("OpKind strings")
	}
	if storage.OpKind(77).String() != "OpKind(77)" {
		t.Fatal("unknown OpKind string")
	}
}
