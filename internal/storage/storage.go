// Package storage defines the storage-manager interface beneath the Ode
// object manager. The paper's object manager "is built on top of a storage
// manager which provides much of the required database functionality such
// as locking, logging, transactions" (§2) and runs unchanged over either
// the disk-based EOS or the main-memory Dali (§5.6). This package is the
// seam that reproduces that property: the object manager and trigger
// engine are written against Manager and run byte-for-byte identically
// over the eos and dali implementations (experiment E10).
//
// Concurrency control lives above this interface (the lock manager
// serializes conflicting object access per transaction); a Manager only
// sees committed state. During a transaction, uncommitted writes are held
// in the transaction's write set; at commit they arrive here as one
// ApplyCommit batch, which the disk manager makes durable via its
// write-ahead log before applying.
package storage

import (
	"errors"
	"fmt"
)

// OID is a persistent object identifier — the run-time form of the
// paper's "pointer to a persistent object". OIDs are never reused.
type OID uint64

// InvalidOID is the zero, never-allocated OID (the persistent null).
const InvalidOID OID = 0

// ErrNotFound reports a read/write/free of an OID with no committed data.
var ErrNotFound = errors.New("storage: object not found")

// ErrReadOnly reports a write to a store serving as a read replica.
// Only the replication applier may mutate such a store; everyone else
// must be redirected to the primary.
var ErrReadOnly = errors.New("storage: store is read-only (replica)")

// OpKind tags one operation inside a commit batch.
type OpKind uint8

const (
	// OpWrite creates or replaces an object's committed image.
	OpWrite OpKind = iota + 1
	// OpFree deletes an object.
	OpFree
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpFree:
		return "free"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one effect of a committed transaction.
type Op struct {
	Kind OpKind
	OID  OID
	Data []byte // OpWrite only
}

// Stats counts storage activity; experiments E10 and E16 report these
// alongside throughput.
type Stats struct {
	Reads      uint64 // object reads served
	Writes     uint64 // object writes applied
	Frees      uint64 // objects freed
	PageReads  uint64 // pages fetched from disk (eos only)
	PageWrites uint64 // pages written to disk (eos only)
	CacheHits  uint64 // buffer-pool hits (eos only)
	LogBytes   uint64 // WAL bytes appended (eos only)

	// Group-commit observability (eos only; see internal/wal).
	Fsyncs       uint64 // WAL fsyncs issued
	GroupCommits uint64 // commits made durable (GroupCommits/Fsyncs = avg batch)
	BatchMin     uint64 // smallest commits-per-fsync batch seen
	BatchMax     uint64 // largest commits-per-fsync batch seen
	CommitWaitNs uint64 // total time committers waited for durability
	WALHeals     uint64 // sticky WAL sync errors cleared by self-healing (eos only)

	// Checkpoint observability (eos only).
	Checkpoints       uint64 // checkpoints taken (explicit + auto)
	WALTruncatedBytes uint64 // log bytes reclaimed by checkpoint truncation
}

// VersionStats counts multi-version (MVCC) activity in a Versioned
// manager. Field names surface as obj.versions_* metrics via
// obs.RegisterStats.
type VersionStats struct {
	VersionsLive         uint64 // versions currently retained across all chains
	VersionsChains       uint64 // objects with a non-empty version chain
	VersionsChainMax     uint64 // longest current chain
	VersionsAppended     uint64 // versions stamped by committed writes
	VersionsPreimages    uint64 // pre-images captured on first write
	VersionsTrimmed      uint64 // versions reclaimed by GC
	VersionsGcRuns       uint64 // GC passes (auto + explicit)
	VersionsPins         uint64 // snapshots currently pinned
	VersionsOldestPinLsn uint64 // oldest pinned snapshot LSN (0 = none)
}

// Versioned is the optional MVCC extension of Manager. A manager that
// implements it stamps every committed write with its commit LSN and can
// serve reads as of any pinned LSN without coordination with the lock
// manager — the substrate for txn.BeginSnapshot.
type Versioned interface {
	// SnapshotLSN returns the newest commit LSN a snapshot taken now
	// would observe (the durable, fully applied prefix).
	SnapshotLSN() uint64

	// PinSnapshot pins the current SnapshotLSN against version GC and
	// returns it. Every pin must be paired with one UnpinSnapshot.
	PinSnapshot() uint64

	// UnpinSnapshot releases a pin taken by PinSnapshot.
	UnpinSnapshot(lsn uint64)

	// ReadAt returns the committed image of oid as of lsn (the newest
	// version ≤ lsn). It returns ErrNotFound if the object did not
	// exist — or had been freed — at that point.
	ReadAt(oid OID, lsn uint64) ([]byte, error)

	// ExistsAt reports whether oid had a committed image as of lsn.
	ExistsAt(oid OID, lsn uint64) bool

	// VersionStats returns a snapshot of version-chain counters.
	VersionStats() VersionStats

	// GCVersions trims versions unreachable by every pinned snapshot
	// and returns how many were reclaimed.
	GCVersions() uint64
}

// Manager is the storage-manager seam shared by eos and dali.
type Manager interface {
	// Name identifies the implementation ("eos" or "dali").
	Name() string

	// ReserveOID hands out a fresh, never-used OID. The reservation
	// itself is volatile; the OID becomes durable when a commit batch
	// first writes it.
	ReserveOID() (OID, error)

	// Read returns the committed image of oid (a copy the caller may
	// keep). It returns ErrNotFound for unknown or freed OIDs.
	Read(oid OID) ([]byte, error)

	// Exists reports whether oid has a committed image.
	Exists(oid OID) bool

	// ApplyCommit durably applies one transaction's effects. On return
	// the batch is recoverable: either entirely visible after a crash or
	// (if the crash hit mid-call) entirely invisible.
	ApplyCommit(txn uint64, ops []Op) error

	// Iterate calls fn for every live object, in unspecified order,
	// until fn returns an error (which is propagated).
	Iterate(fn func(OID, []byte) error) error

	// Checkpoint bounds recovery work: it makes the current state
	// durable in the primary store and discards the log prefix.
	Checkpoint() error

	// Stats returns a snapshot of activity counters.
	Stats() Stats

	// Close releases resources; the manager is unusable afterwards.
	Close() error
}
