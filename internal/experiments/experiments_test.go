package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsPassQuick runs the whole suite in quick mode: every
// experiment must reproduce the paper's predicted shape. This is the
// repository's end-to-end reproduction gate.
func TestAllExperimentsPassQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("performance bars are not meaningful under the race detector; per-package -race tests cover the same code")
	}
	var buf bytes.Buffer
	r := &Runner{W: &buf, Cfg: Config{Quick: true, Dir: t.TempDir()}}
	results := r.RunAll()
	if len(results) != 24 {
		t.Fatalf("ran %d experiments, want 24", len(results))
	}
	for _, res := range results {
		if !res.Passed {
			t.Errorf("%s (%s) failed: %s", res.ID, res.Title, res.Summary)
		}
	}
	if t.Failed() {
		t.Logf("full output:\n%s", buf.String())
	}
	// The output must contain one table header per experiment.
	for _, id := range []string{"E1", "E5", "E10", "E15", "E16", "E17", "E19", "E20", "E21", "E23", "E24", "E25"} {
		if !strings.Contains(buf.String(), "== "+id+":") {
			t.Errorf("output missing %s section", id)
		}
	}
}
