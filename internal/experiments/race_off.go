//go:build !race

package experiments

// raceEnabled is false in normal builds; see race_on.go.
const raceEnabled = false
