package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ode/internal/server"
)

// E23 measures what the ODE2 binary wire protocol buys over the JSON
// request/response protocol on the same server (docs/PROTOCOL.md).
// The JSON protocol is lockstep — one request, one response, one
// network round trip per posting — so a client's throughput is bounded
// by RTT no matter how fast the engine is. Binary framing carries
// request IDs, which lets a client pipeline: keep a window of requests
// in flight and match responses by ID. The same framing also multiplexes
// sessions (sid) over one shared connection (server.Mux).
//
// The measured load is the E16 server workload moved onto the new
// transport: concurrent clients invoking Buy on private cards over the
// main-memory store, so the wire — not fsync — is the bottleneck.
// Table 1 pipelines postings inside one transaction per client; table 2
// re-runs E16's transaction load (begin/Buy/commit per transaction),
// pipelining the whole triple.
//
// Raw loopback is the *best* case for the JSON protocol — RTT is a few
// microseconds, so lockstep costs only syscalls and scheduler wakeups,
// and the measured gain there is whatever write coalescing saves. The
// claim pipelining exists for is hiding *network* latency, so the
// headline measurement routes both protocols through a latencyRelay
// that adds tc-netem-style propagation delay (1 ms RTT, the low end of
// a same-region network) without limiting bandwidth: lockstep pays the
// RTT on every posting, the pipelined window hides it.

// e23Window is the pipelining depth: how many requests a client keeps
// in flight before waiting on the oldest. Deeper than the server's
// coalescing buffer needs, shallow enough to stay well inside the
// server's per-connection queue depth.
const e23Window = 64

// WireEnv is one running server plus per-client cards, shared by the E23
// measurement functions and BenchmarkE23Wire.
type WireEnv struct {
	srv   *server.Server
	dbcls func()
	Addr  string
	Refs  []uint64
}

// Close shuts the server and database down.
func (e *WireEnv) Close() {
	e.srv.Close()
	e.dbcls()
}

// NewWireEnv starts an in-process ode-server over the main-memory store
// with one committed card per client.
func NewWireEnv(clients int) (*WireEnv, error) {
	db, err := memDB()
	if err != nil {
		return nil, err
	}
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		return nil, err
	}
	env := &WireEnv{srv: srv, dbcls: func() { db.Close() }, Addr: addr}

	setup, err := server.Dial(addr)
	if err != nil {
		env.Close()
		return nil, err
	}
	defer setup.Close()
	if err := setup.Begin(); err != nil {
		env.Close()
		return nil, err
	}
	env.Refs = make([]uint64, clients)
	for i := range env.Refs {
		env.Refs[i], err = setup.Create("CredCard", &CredCard{Holder: "bench", CredLim: 1e12, GoodHist: true})
		if err != nil {
			env.Close()
			return nil, err
		}
	}
	if err := setup.Commit(); err != nil {
		env.Close()
		return nil, err
	}
	return env, nil
}

// latencyRelay is a TCP forwarder that adds one-way propagation delay
// in each direction, emulating network RTT on loopback the way tc
// netem does. Each direction keeps reading while delayed chunks wait
// their delivery time, so it delays *latency only* — pipelined traffic
// flows at full bandwidth, lockstep traffic pays the delay per turn.
type latencyRelay struct {
	ln    net.Listener
	delay time.Duration
	Addr  string
}

func newLatencyRelay(backend string, delay time.Duration) (*latencyRelay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &latencyRelay{ln: ln, delay: delay, Addr: ln.Addr().String()}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				b, err := net.Dial("tcp", backend)
				if err != nil {
					c.Close()
					return
				}
				go r.pump(b, c)
				r.pump(c, b)
			}(c)
		}
	}()
	return r, nil
}

func (r *latencyRelay) Close() { r.ln.Close() }

// pump forwards src to dst, delivering each read chunk r.delay after it
// arrived. The reader goroutine never blocks on the delay, so chunks
// queue behind each other exactly as packets do in flight. Coarse
// runtime timers can stretch the delay (delay is a floor, not an
// exact figure); both protocols ride the same relay, so the comparison
// stays fair either way.
func (r *latencyRelay) pump(src, dst net.Conn) {
	type chunk struct {
		at   time.Time
		data []byte
	}
	ch := make(chan chunk, 4096)
	go func() {
		defer close(ch)
		buf := make([]byte, 64<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				ch <- chunk{at: time.Now().Add(r.delay), data: append([]byte(nil), buf[:n]...)}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range ch {
		if d := time.Until(c.at); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(c.data); err != nil {
			break
		}
	}
	src.Close()
	dst.Close()
}

// WithRTT returns a view of the environment reached through a latency
// relay adding rtt of round-trip delay; stop tears the relay down.
func (e *WireEnv) WithRTT(rtt time.Duration) (*WireEnv, func(), error) {
	relay, err := newLatencyRelay(e.Addr, rtt/2)
	if err != nil {
		return nil, nil, err
	}
	v := *e
	v.Addr = relay.Addr
	return &v, relay.Close, nil
}

// sessions opens one session per client on the requested transport:
// "json" (a JSON-protocol Client), "binary" (a binary-protocol Client,
// one connection each), or "mux" (MuxSessions sharing one connection).
func (e *WireEnv) sessions(clients int, mode string) ([]server.Session, func(), error) {
	out := make([]server.Session, clients)
	var closers []func()
	cleanup := func() {
		for _, fn := range closers {
			fn()
		}
	}
	var mux *server.Mux
	for i := range out {
		switch mode {
		case "json":
			c, err := server.Dial(e.Addr)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			closers = append(closers, func() { c.Close() })
			out[i] = c
		case "binary":
			c, err := server.DialOptions(e.Addr, server.ClientOptions{Binary: true})
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			closers = append(closers, func() { c.Close() })
			out[i] = c
		case "mux":
			if mux == nil {
				m, err := server.DialMux(e.Addr, server.ClientOptions{})
				if err != nil {
					cleanup()
					return nil, nil, err
				}
				mux = m
				closers = append(closers, func() { m.Close() })
			}
			out[i] = mux.Session()
		default:
			cleanup()
			return nil, nil, fmt.Errorf("e23: unknown transport %q", mode)
		}
	}
	return out, cleanup, nil
}

// drive fans work out to one goroutine per session, gates the start,
// and returns ops/s for clients*perOps operations.
func drive(sessions []server.Session, perOps int, work func(s server.Session, w int) error) (float64, error) {
	var wg sync.WaitGroup
	errs := make(chan error, len(sessions))
	gate := make(chan struct{})
	for w := range sessions {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			if err := work(sessions[w], w); err != nil {
				errs <- err
			}
		}(w)
	}
	start := time.Now()
	close(gate)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(len(sessions)*perOps) / elapsed.Seconds(), nil
}

// pipelined issues n requests through build with a sliding window of
// e23Window calls in flight, then drains.
func pipelined(s server.Session, n int, build func(i int) *server.Request) error {
	pending := make([]*server.Call, 0, e23Window)
	for i := 0; i < n; i++ {
		pending = append(pending, s.Go(build(i)))
		if len(pending) == e23Window {
			if _, err := pending[0].Wait(); err != nil {
				return err
			}
			pending = pending[1:]
		}
	}
	for _, c := range pending {
		if _, err := c.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// MeasureWirePosting measures posting throughput: each client opens one
// transaction and invokes Buy perOps times on its own card. mode
// "json" runs lockstep (one RTT per invoke); "binary" and "mux"
// pipeline with a window of e23Window in-flight requests.
// BenchmarkE23Wire records these rates into BENCH_wire.json.
func (e *WireEnv) MeasureWirePosting(perOps int, mode string) (float64, error) {
	sessions, cleanup, err := e.sessions(len(e.Refs), mode)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	return drive(sessions, perOps, func(s server.Session, w int) error {
		if err := s.Begin(); err != nil {
			return err
		}
		if mode == "json" {
			for i := 0; i < perOps; i++ {
				if _, err := s.Invoke(e.Refs[w], "Buy", 1.0); err != nil {
					return err
				}
			}
		} else {
			err := pipelined(s, perOps, func(int) *server.Request {
				return &server.Request{Op: "invoke", Ref: e.Refs[w], Method: "Buy", Args: []any{1.0}}
			})
			if err != nil {
				return err
			}
		}
		return s.Commit()
	})
}

// measureWireTxns re-runs E16's server table on each transport: one
// committed transaction per Buy. The pipelined transports keep whole
// begin/invoke/commit triples in flight — per-session FIFO makes that
// sound, since the server processes a session's frames in order.
func (e *WireEnv) measureWireTxns(perTxns int, mode string) (float64, error) {
	sessions, cleanup, err := e.sessions(len(e.Refs), mode)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	return drive(sessions, perTxns, func(s server.Session, w int) error {
		if mode == "json" {
			for i := 0; i < perTxns; i++ {
				if err := s.Begin(); err != nil {
					return err
				}
				if _, err := s.Invoke(e.Refs[w], "Buy", 1.0); err != nil {
					return err
				}
				if err := s.Commit(); err != nil {
					return err
				}
			}
			return nil
		}
		return pipelined(s, 3*perTxns, func(i int) *server.Request {
			switch i % 3 {
			case 0:
				return &server.Request{Op: "begin"}
			case 1:
				return &server.Request{Op: "invoke", Ref: e.Refs[w], Method: "Buy", Args: []any{1.0}}
			default:
				return &server.Request{Op: "commit"}
			}
		})
	})
}

// E23 measures wire-protocol throughput: pipelined binary framing (and
// its multiplexed variant) against the JSON lockstep baseline, over
// loopback TCP on the main-memory store.
func (r *Runner) E23() Result {
	res := Result{ID: "E23", Title: "wire pipelining: binary protocol vs JSON request/response"}
	r.header("E23", res.Title, "§2 (client/server object manager), §7 (multi-application sharing)",
		"request-ID pipelining lifts server posting throughput >=5x over the JSON protocol's one-RTT-per-posting lockstep at 16 clients on a network-RTT link")

	perOps := r.Cfg.scale(4000)
	modes := []string{"json", "binary", "mux"}

	fmt.Fprintf(r.W, "postings/s, raw loopback, one open transaction per client (window %d):\n", e23Window)
	fmt.Fprintf(r.W, "%-10s %14s %14s %14s\n", "clients", "json", "binary", "mux")
	post := map[string]float64{}
	for _, clients := range []int{1, 4, 16} {
		env, err := NewWireEnv(clients)
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		row := map[string]float64{}
		for _, mode := range modes {
			if row[mode], err = env.MeasureWirePosting(perOps, mode); err != nil {
				env.Close()
				res.Summary = err.Error()
				return res
			}
		}
		env.Close()
		fmt.Fprintf(r.W, "%-10d %14.0f %14.0f %14.0f\n", clients, row["json"], row["binary"], row["mux"])
		if clients == 16 {
			post = row
		}
	}

	fmt.Fprintf(r.W, "txn/s, begin+Buy+commit per transaction, 16 clients:\n")
	env, err := NewWireEnv(16)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	txn := map[string]float64{}
	for _, mode := range modes {
		if txn[mode], err = env.measureWireTxns(perOps/2, mode); err != nil {
			env.Close()
			res.Summary = err.Error()
			return res
		}
	}
	env.Close()
	fmt.Fprintf(r.W, "%-10s %14.0f %14.0f %14.0f\n", "", txn["json"], txn["binary"], txn["mux"])

	// The headline row: the same 16-client posting load through an
	// emulated 1 ms-RTT network, where latency — not the loopback
	// scheduler — is what lockstep pays per posting.
	const rtt = time.Millisecond
	env, err = NewWireEnv(16)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	rttEnv, stop, err := env.WithRTT(rtt)
	if err != nil {
		env.Close()
		res.Summary = err.Error()
		return res
	}
	fmt.Fprintf(r.W, "postings/s, emulated %v-RTT network, 16 clients:\n", rtt)
	rttRow := map[string]float64{}
	for _, mode := range modes {
		if rttRow[mode], err = rttEnv.MeasureWirePosting(perOps, mode); err != nil {
			stop()
			env.Close()
			res.Summary = err.Error()
			return res
		}
	}
	stop()
	env.Close()
	fmt.Fprintf(r.W, "%-10s %14.0f %14.0f %14.0f\n", "", rttRow["json"], rttRow["binary"], rttRow["mux"])

	speedup := rttRow["binary"] / rttRow["json"]
	muxup := rttRow["mux"] / rttRow["json"]
	res.Passed = speedup >= 5
	res.Summary = fmt.Sprintf("binary pipelining %.1fx (mux %.1fx) the JSON protocol's posting throughput at 16 clients over a %v-RTT link; raw loopback %.1fx; txn load %.1fx",
		speedup, muxup, rtt, post["binary"]/post["json"], txn["binary"]/txn["json"])
	return res
}
