package experiments

import (
	"encoding/json"
	"fmt"

	"ode/internal/server"
	"ode/internal/shard"
)

// E25 measures what the fleet observability plane costs when it is on:
// the E24 routed transaction workload (begin/Buy×k/commit per client
// through one router, DenyCredit trigger active, two shards), A/B with
// firing-trace sampling disabled versus 1-in-e25Rate across the whole
// fleet. The rate change itself takes the production path — a single
// trace.rate broadcast through the router, acked per shard — so the
// experiment exercises the plane it is pricing. The claim mirrors E20's
// single-node one at fleet scale: the sampling gate is one atomic load
// per posting and the ring write is off the commit path, so a traced
// fleet should keep ≥98% of its untraced throughput.

// e25Rate is the 1-in-n sampling rate the traced arm runs at: dense
// enough that traces actually land in every shard's ring during the
// run, sparse enough to be a realistic production setting.
const e25Rate = 16

// SetFleetTraceRate broadcasts a sampling-rate change through the
// router's trace.rate op and verifies every shard acknowledged the new
// rate.
func (e *ShardEnv) SetFleetTraceRate(rate int64) error {
	c, err := server.DialOptions(e.Addr, server.ClientOptions{Binary: true})
	if err != nil {
		return err
	}
	defer c.Close()
	resp, err := c.Call(&server.Request{Op: "trace.rate", Rate: rate})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("trace.rate: %s", resp.Error)
	}
	raw, err := json.Marshal(resp.Result)
	if err != nil {
		return err
	}
	var acks shard.RateAcks
	if err := json.Unmarshal(raw, &acks); err != nil {
		return err
	}
	if len(acks.Acks) != len(e.nodes) {
		return fmt.Errorf("trace.rate: %d acks for %d shards", len(acks.Acks), len(e.nodes))
	}
	want := uint64(0)
	if rate > 0 {
		want = uint64(rate)
	}
	for _, ack := range acks.Acks {
		if ack.Rate != want {
			return fmt.Errorf("trace.rate: shard %d (node %s) acked rate %d, want %d", ack.Shard, ack.Node, ack.Rate, want)
		}
	}
	return nil
}

// MeasureFleetObs runs the A/B on one fleet: untraced first, then
// 1-in-e25Rate across every shard, returning aggregate postings/s for
// each arm. Shared by E25 and BenchmarkE25FleetObs.
func MeasureFleetObs(shards, clients, perTxns, opsPerTxn int) (untraced, traced float64, err error) {
	env, err := NewShardEnv(shards, clients)
	if err != nil {
		return 0, 0, err
	}
	defer env.Close()
	if err := env.SetFleetTraceRate(-1); err != nil {
		return 0, 0, err
	}
	untraced, err = env.MeasureShardTxns(perTxns, opsPerTxn)
	if err != nil {
		return 0, 0, err
	}
	if err := env.SetFleetTraceRate(e25Rate); err != nil {
		return 0, 0, err
	}
	traced, err = env.MeasureShardTxns(perTxns, opsPerTxn)
	if err != nil {
		return 0, 0, err
	}
	return untraced, traced, nil
}

// E25 measures fleet-tracing overhead on the routed E24 workload.
func (r *Runner) E25() Result {
	res := Result{ID: "E25", Title: "fleet observability: tracing overhead on the routed workload"}
	r.header("E25", res.Title, "docs/OBSERVABILITY.md §Fleet observability, docs/SHARDING.md",
		"1-in-16 fleet-wide trace sampling (set by one trace.rate broadcast through the router) costs <=2% routed transaction throughput")

	const shards, clients, opsPerTxn = 2, 16, 4
	perTxns := r.Cfg.scale(2000) / opsPerTxn
	untraced, traced, err := MeasureFleetObs(shards, clients, perTxns, opsPerTxn)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	ratio := traced / untraced
	fmt.Fprintf(r.W, "postings/s, %d shards, %d clients, begin+Buy×%d+commit per txn, DenyCredit active (window %d, node service time %v):\n",
		shards, clients, opsPerTxn, e24Window, e24Pace)
	fmt.Fprintf(r.W, "%-24s %14s\n", "tracing", "postings/s")
	fmt.Fprintf(r.W, "%-24s %14.0f\n", "off (rate -1)", untraced)
	fmt.Fprintf(r.W, "%-24s %14.0f   (%.1f%% of untraced)\n", fmt.Sprintf("1-in-%d fleet-wide", e25Rate), traced, ratio*100)

	res.Passed = ratio >= 0.98
	res.Summary = fmt.Sprintf("1-in-%d fleet tracing keeps %.1f%% of untraced routed throughput (%.0f vs %.0f postings/s, %d shards)",
		e25Rate, ratio*100, traced, untraced, shards)
	return res
}
