package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"ode/internal/core"
	"ode/internal/obs"
	"ode/internal/storage/eos"
)

// E20 measures the cost of the always-on provenance surface: cause-ID
// assignment on every posting (one atomic add), the commit-record cause
// note (~12 bytes of WAL per originating transaction — varint-encoded
// precisely because a fixed-width note measurably inflated small
// transactions' log volume here), and the flight recorder's per-commit
// incident (one atomic load plus a slot write).
// Like E18 for the tracer, the claim that justifies shipping the
// machinery *enabled* is that it is nearly free: ≤2% on the contended
// E16-style commit workload, where every transaction posts an event,
// advances a trigger FSM, and pays an fsync-amortized durability wait —
// the wait the machinery's microseconds of CPU overlap with.
func (r *Runner) E20() Result {
	res := Result{ID: "E20", Title: "causal provenance + flight recorder overhead"}
	r.header("E20", res.Title, "§5.4.5, §5.6",
		"cause-ID assignment, commit cause notes, and flight recording cost ≤2% commit throughput on the concurrent eos workload")

	dir := r.Cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ode-e20-*")
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
	}

	// Rounds much under half a second are dominated by fsync stragglers,
	// so quick mode keeps a high floor instead of the usual /20 scaling.
	const committers = 8
	per := 1500
	if r.Cfg.Quick {
		per = 800
	}

	// One disk database with AutoRaiseLimit armed on one card per
	// committer (so each Buy advances a persistent FSM — the trigger
	// path the provenance annotates). Auto-checkpointing is off: a
	// checkpoint stalls every commit in whatever round it lands in,
	// which is scheduling noise, not provenance cost.
	store, err := eos.Open(filepath.Join(dir, "e20.eos"), eos.Options{
		NoAutoCheckpoint: true,
	})
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		store.Close()
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	if err := db.Register(CredCardClass()); err != nil {
		res.Summary = err.Error()
		return res
	}
	refs := make([]core.Ref, committers)
	for i := range refs {
		tx := db.Begin()
		ref, err := db.Create(tx, "CredCard", &CredCard{Holder: "bench", CredLim: 1e12, GoodHist: false})
		if err != nil {
			tx.Abort()
			res.Summary = err.Error()
			return res
		}
		if _, err := db.Activate(tx, ref, "AutoRaiseLimit", 100.0); err != nil {
			tx.Abort()
			res.Summary = err.Error()
			return res
		}
		if err := tx.Commit(); err != nil {
			res.Summary = err.Error()
			return res
		}
		refs[i] = ref
	}

	drive := func(iters int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, committers)
		gate := make(chan struct{})
		for w := 0; w < committers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-gate
				for i := 0; i < iters; i++ {
					tx := db.Begin()
					if _, err := db.Invoke(tx, refs[w], "Buy", 1.0); err != nil {
						tx.Abort()
						errs <- err
						return
					}
					if err := tx.Commit(); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		start := time.Now()
		close(gate)
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return 0, err
		default:
		}
		return elapsed, nil
	}

	defer obs.Flight().SetEnabled(true)
	mgr := db.Store().(*eos.Manager)

	// segment runs one timed configuration. The forced GC keeps
	// collection cycles out of the timed region: when the suite runs in
	// one process, the heap debris of 19 prior experiments makes
	// mid-segment GC pauses the dominant noise term.
	var fsyncsOn, fsyncsOff, logOn, logOff, commitsOn, commitsOff uint64
	segment := func(provenance bool, iters int) (time.Duration, error) {
		db.SetProvenance(provenance)
		obs.Flight().SetEnabled(provenance)
		runtime.GC()
		before := mgr.Stats()
		e, err := drive(iters)
		after := mgr.Stats()
		if provenance {
			fsyncsOn += after.Fsyncs - before.Fsyncs
			logOn += after.LogBytes - before.LogBytes
			commitsOn += uint64(committers * iters)
		} else {
			fsyncsOff += after.Fsyncs - before.Fsyncs
			logOff += after.LogBytes - before.LogBytes
			commitsOff += uint64(committers * iters)
		}
		return e, err
	}
	if _, err := segment(true, per/10); err != nil { // warmup
		res.Summary = err.Error()
		return res
	}
	if _, err := segment(false, per/10); err != nil {
		res.Summary = err.Error()
		return res
	}
	fsyncsOn, fsyncsOff, logOn, logOff, commitsOn, commitsOff = 0, 0, 0, 0, 0, 0

	// Both configurations run on the SAME store — provenance is toggled
	// between segments — so there is no second file or database instance
	// whose one-time disk-allocation or memory-layout luck could bias a
	// whole run. Each round runs the two configurations back to back
	// (order alternating) and contributes one elapsed ratio; machine
	// drift — in the full suite, mostly the kernel writing back what
	// earlier experiments left dirty — moves on a scale of seconds, so
	// the two halves of a round share it and their ratio cancels it. The
	// median over rounds then discards rounds where a straggler hit one
	// half only.
	const rounds = 9
	var bestOn, bestOff time.Duration
	ratios := make([]float64, 0, rounds)
	for k := 0; k < rounds; k++ {
		var eOn, eOff time.Duration
		for _, provenance := range []bool{k%2 == 0, k%2 != 0} {
			e, err := segment(provenance, per)
			if err != nil {
				res.Summary = err.Error()
				return res
			}
			if provenance {
				eOn = e
			} else {
				eOff = e
			}
		}
		ratios = append(ratios, eOn.Seconds()/eOff.Seconds())
		if bestOn == 0 || eOn < bestOn {
			bestOn = eOn
		}
		if bestOff == 0 || eOff < bestOff {
			bestOff = eOff
		}
	}
	on := float64(committers*per) / bestOn.Seconds()
	off := float64(committers*per) / bestOff.Seconds()

	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	overhead := median - 1
	if overhead < 0 {
		overhead = 0 // within noise: provenance segments were faster
	}
	// The run's own noise floor: the median absolute deviation of the
	// round ratios. Identical configurations measured on this host in
	// this process differ by this much round to round, so an overhead
	// below it is not resolvable — the bar is 2% above it. On a quiet
	// host the floor is a fraction of a percent and the bar is ~2%.
	devs := make([]float64, len(ratios))
	for i, q := range ratios {
		devs[i] = q - median
		if devs[i] < 0 {
			devs[i] = -devs[i]
		}
	}
	sort.Float64s(devs)
	noise := devs[len(devs)/2]
	fmt.Fprintf(r.W, "%-34s %14s %10s %16s\n",
		"configuration", "commits/s", "fsyncs", "log bytes/commit")
	fmt.Fprintf(r.W, "%-34s %14.0f %10d %16.1f\n",
		"provenance + flight ON (default)", on, fsyncsOn, float64(logOn)/float64(commitsOn))
	fmt.Fprintf(r.W, "%-34s %14.0f %10d %16.1f\n",
		"provenance + flight OFF", off, fsyncsOff, float64(logOff)/float64(commitsOff))
	fmt.Fprintf(r.W, "overhead: %.2f%% (round-ratio noise floor %.2f%%)\n", overhead*100, noise*100)

	res.Passed = overhead <= 0.02+noise
	res.Summary = fmt.Sprintf("provenance+flight overhead %.2f%% (noise floor %.2f%%) on %d-committer eos commits (%.0f vs %.0f commits/s, +%.1f WAL B/commit)",
		overhead*100, noise*100, committers, on, off, float64(logOn)/float64(commitsOn)-float64(logOff)/float64(commitsOff))
	return res
}
