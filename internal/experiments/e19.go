package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/core"
	"ode/internal/repl"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/eos"
)

// E19 measures the log-shipping replication path end to end over real
// TCP: a primary ships its WAL through repl.Hub to a streaming
// repl.Replica. Two shapes are checked. First, replica lag: committers
// at 1/4/16 drive the primary while the replica streams live; the
// replica must drain to zero lag after the run and its store must be
// byte-identical to the primary's committed state (the paper's §5.4.1
// persistent trigger state rides the same log, so byte equality is what
// makes promotion-time FSM resume sound). Second, read scale-out:
// because replicas serve reads from their own store, lock manager, and
// cache, aggregate read throughput should grow — or at minimum not
// collapse — as the same reader population spreads over 1 → 3 nodes.
func (r *Runner) E19() Result {
	res := Result{ID: "E19", Title: "replication: replica lag vs commit rate, read scale-out"}
	r.header("E19", res.Title, "§5.6 (logging), §7 (multi-application sharing)",
		"replica converges to the primary's committed state at every commit rate; read-only replicas add serving capacity")

	dir := r.Cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ode-e19-*")
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
	}

	// --- part 1: replica lag vs commit rate --------------------------------
	totalOps := r.Cfg.scale(2000)
	fmt.Fprintf(r.W, "%-10s %12s %12s %10s %10s\n",
		"committers", "commits/s", "peak lag B", "drain ms", "converged")
	converged := true
	for i, committers := range []int{1, 4, 16} {
		row, err := e19LagRow(filepath.Join(dir, fmt.Sprintf("e19-lag-%d", i)), committers, totalOps)
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		ok := "yes"
		if !row.converged {
			ok = "NO"
			converged = false
		}
		fmt.Fprintf(r.W, "%-10d %12.0f %12d %10.1f %10s\n",
			committers, row.rate, row.peakLag, float64(row.drain.Microseconds())/1000, ok)
	}

	// --- part 2: read throughput with 0/1/2 replicas -----------------------
	aggs, err := e19ReadScale(filepath.Join(dir, "e19-read"), r)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	// Spreading the same readers over more nodes must not collapse
	// throughput; the margin absorbs scheduler noise in quick mode.
	scaled := aggs[2] >= 0.8*aggs[0]

	res.Passed = converged && scaled
	res.Summary = fmt.Sprintf(
		"replica drained to lag 0 and matched the primary byte-for-byte at 1/4/16 committers (converged=%v); reads 1→3 nodes: %.0f → %.0f/s (×%.2f)",
		converged, aggs[0], aggs[2], aggs[2]/aggs[0])
	return res
}

// e19Primary is one primary node: store, database, hub, stream server.
type e19Primary struct {
	store *eos.Manager
	db    *core.Database
	hub   *repl.Hub
	srv   *server.Server
	addr  string
}

func e19StartPrimary(path string) (*e19Primary, error) {
	store, err := eos.Open(path, eos.Options{NoAutoCheckpoint: true})
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := db.Register(CredCardClass()); err != nil {
		db.Close()
		return nil, err
	}
	hub := repl.NewHub(store, repl.HubOptions{PingInterval: 20 * time.Millisecond})
	srv := server.NewWithOptions(db, server.Options{
		StreamOps: map[string]server.StreamHandler{repl.OpSubscribe: hub.HandleSubscribe},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		hub.Close()
		db.Close()
		return nil, err
	}
	return &e19Primary{store: store, db: db, hub: hub, srv: srv, addr: addr}, nil
}

func (p *e19Primary) close() {
	p.srv.Close()
	p.hub.Close()
	p.db.Close()
}

// e19StartReplica streams from addr until caught up and returns the
// replica with a read-only database attached.
func e19StartReplica(path, addr string) (*repl.Replica, *core.Database, error) {
	store, err := eos.Open(path, eos.Options{NoAutoCheckpoint: true})
	if err != nil {
		return nil, nil, err
	}
	rep, err := repl.NewReplica(addr, store, repl.ReplicaOptions{
		PosPath:    path + ".replpos",
		RedialBase: 2 * time.Millisecond,
		RedialMax:  20 * time.Millisecond,
	})
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	rep.Start()
	if err := rep.WaitCaughtUp(20 * time.Second); err != nil {
		rep.Stop()
		store.Close()
		return nil, nil, err
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		rep.Stop()
		store.Close()
		return nil, nil, err
	}
	if err := db.Register(CredCardClass()); err != nil {
		rep.Stop()
		db.Close()
		return nil, nil, err
	}
	rep.AttachDatabase(db)
	return rep, db, nil
}

type e19Lag struct {
	rate      float64       // primary commits/s during the run
	peakLag   uint64        // max observed replica lag, bytes
	drain     time.Duration // time from last commit to zero lag
	converged bool          // drained AND byte-identical stores
}

func e19LagRow(dir string, committers, totalOps int) (*e19Lag, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p, err := e19StartPrimary(filepath.Join(dir, "p.eos"))
	if err != nil {
		return nil, err
	}
	defer p.close()

	refs := make([]core.Ref, committers)
	for i := range refs {
		if refs[i], err = mustCard(p.db, 1e12); err != nil {
			return nil, err
		}
	}

	rep, rdb, err := e19StartReplica(filepath.Join(dir, "r.eos"), p.addr)
	if err != nil {
		return nil, err
	}
	defer rdb.Close()
	defer rep.Stop()

	// Sample lag while the committers run. Measured against the
	// primary's durable end, not the replica's last-heard end — the
	// replica's own view is stale between frames, which is exactly the
	// window a lag experiment wants to see.
	var peak atomic.Uint64
	stopSample := make(chan struct{})
	var sampleDone sync.WaitGroup
	sampleDone.Add(1)
	go func() {
		defer sampleDone.Done()
		for {
			select {
			case <-stopSample:
				return
			case <-time.After(time.Millisecond):
				end := uint64(p.store.Log().End())
				if applied := rep.Status().AppliedLSN; end > applied && end-applied > peak.Load() {
					peak.Store(end - applied)
				}
			}
		}
	}()

	per := totalOps / committers
	if per < 1 {
		per = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(ref core.Ref) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := p.db.Begin()
				if _, err := p.db.Invoke(tx, ref, "Buy", 1.0); err != nil {
					tx.Abort()
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(refs[w])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return nil, err
	}

	// Drain: the replica must apply through the primary's durable log
	// end (Status().LagBytes alone can read 0 against a stale end
	// between frames), then match byte for byte.
	pEnd := uint64(p.store.Log().End())
	drained := func() bool {
		st := rep.Status()
		return st.AppliedLSN >= pEnd && st.LagBytes == 0
	}
	drainStart := time.Now()
	deadline := drainStart.Add(20 * time.Second)
	out := &e19Lag{rate: float64(per*committers) / elapsed.Seconds()}
	for !drained() {
		if time.Now().After(deadline) {
			close(stopSample)
			sampleDone.Wait()
			out.peakLag = peak.Load()
			return out, nil // converged=false: report, let the caller fail the row
		}
		time.Sleep(time.Millisecond)
	}
	out.drain = time.Since(drainStart)
	close(stopSample)
	sampleDone.Wait()
	out.peakLag = peak.Load()
	same, err := e19SameBytes(p.store, rep)
	if err != nil {
		return nil, err
	}
	out.converged = same
	return out, nil
}

// e19SameBytes byte-compares the committed objects of the primary store
// against the replica's.
func e19SameBytes(pm *eos.Manager, rep *repl.Replica) (bool, error) {
	snap := func(m *eos.Manager) (map[storage.OID][]byte, error) {
		out := make(map[storage.OID][]byte)
		err := m.Iterate(func(oid storage.OID, data []byte) error {
			out[oid] = append([]byte(nil), data...)
			return nil
		})
		return out, err
	}
	want, err := snap(pm)
	if err != nil {
		return false, err
	}
	got, err := snap(rep.Store())
	if err != nil {
		return false, err
	}
	if len(want) != len(got) {
		return false, nil
	}
	for oid, w := range want {
		if !bytes.Equal(got[oid], w) {
			return false, nil
		}
	}
	return true, nil
}

// e19ReadScale measures aggregate read throughput with the same reader
// population spread over 1, 2, and 3 serving nodes (primary + 0/1/2
// replicas). Returns reads/s indexed by replica count.
func e19ReadScale(dir string, r *Runner) ([3]float64, error) {
	var aggs [3]float64
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return aggs, err
	}
	p, err := e19StartPrimary(filepath.Join(dir, "p.eos"))
	if err != nil {
		return aggs, err
	}
	defer p.close()

	const cards = 16
	refs := make([]core.Ref, cards)
	for i := range refs {
		if refs[i], err = mustCard(p.db, 1000); err != nil {
			return aggs, err
		}
	}

	nodes := []*core.Database{p.db}
	for i := 0; i < 2; i++ {
		rep, rdb, err := e19StartReplica(filepath.Join(dir, fmt.Sprintf("r%d.eos", i)), p.addr)
		if err != nil {
			return aggs, err
		}
		defer rdb.Close()
		defer rep.Stop()
		nodes = append(nodes, rdb)
	}

	// Sanity: a replica read observes the primary's committed value.
	rt := nodes[2].Begin()
	v, err := nodes[2].Get(rt, refs[0])
	rt.Abort()
	if err != nil {
		return aggs, err
	}
	if v.(*CredCard).CredLim != 1000 {
		return aggs, fmt.Errorf("e19: replica read CredLim %v, want 1000", v.(*CredCard).CredLim)
	}

	const readers = 8
	perReader := r.Cfg.scale(4000)
	fmt.Fprintf(r.W, "\n%-9s %6s %12s %8s\n", "replicas", "nodes", "reads/s", "speedup")
	for nRepl := 0; nRepl <= 2; nRepl++ {
		serving := nodes[:nRepl+1]
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, readers)
		for j := 0; j < readers; j++ {
			wg.Add(1)
			go func(db *core.Database, j int) {
				defer wg.Done()
				for i := 0; i < perReader; i++ {
					tx := db.Begin()
					if _, err := db.Get(tx, refs[(j+i)%cards]); err != nil {
						tx.Abort()
						errs <- err
						return
					}
					tx.Abort()
				}
			}(serving[j%len(serving)], j)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return aggs, err
		}
		aggs[nRepl] = float64(readers*perReader) / time.Since(start).Seconds()
		fmt.Fprintf(r.W, "%-9d %6d %12.0f %8.2f\n",
			nRepl, nRepl+1, aggs[nRepl], aggs[nRepl]/aggs[0])
	}
	return aggs, nil
}
