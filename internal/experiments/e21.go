package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/core"
	"ode/internal/storage/dali"
	"ode/internal/txn"
)

// snapCardClass is the E21 fixture: the E8 read-amplification workload
// plus a mutator, so lock-mode readers and 2PL writers can contend on
// the same objects while the perpetual QueryPattern trigger turns every
// Query into a descriptor write.
func snapCardClass() *core.Class {
	return core.MustClass("SnapCard",
		core.Factory(func() any { return new(CredCard) }),
		core.ReadOnlyMethod("Query", func(ctx *core.Ctx, self any, args []any) (any, error) {
			return self.(*CredCard).CurrBal, nil
		}),
		core.Method("Buy", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		core.Events("after Query", "after Buy"),
		core.Trigger("QueryPattern", "after Query, after Query",
			func(ctx *core.Ctx, self any, act *core.Activation) error { return nil },
			core.Perpetual()),
	)
}

// e21Mode selects how E21 runs its readers.
type e21Mode int

const (
	e21Baseline e21Mode = iota // no triggers, lock-mode readers: the pre-§6 ceiling
	e21Legacy                  // triggers active, lock-mode readers: the §6 collapse
	e21Snapshot                // triggers active, snapshot readers: the MVCC remedy
)

func (m e21Mode) String() string {
	switch m {
	case e21Baseline:
		return "baseline"
	case e21Legacy:
		return "2pl+trig"
	default:
		return "snapshot"
	}
}

// e21Cell is one measured grid cell.
type e21Cell struct {
	qps          float64 // reader queries/sec
	readerAborts uint64  // reader transactions that rolled back (deadlock victims etc.)
	waits        uint64  // lock-manager waits, all participants
	deadlocks    uint64  // lock-manager deadlock victims, all participants
	snapReads    uint64  // reads served from a pinned snapshot
}

// E21 measures the MVCC snapshot-read remedy for the §6 lock
// amplification E8 demonstrates: with triggers active, lock-mode
// readers collapse (every Query writes the trigger descriptor), while
// snapshot readers — which pin a commit LSN and never touch the lock
// manager — stay within a small factor of the no-trigger baseline and
// can neither wait nor deadlock, even against concurrent 2PL writers.
func (r *Runner) E21() Result {
	res := Result{ID: "E21", Title: "snapshot reads sidestep trigger lock amplification"}
	r.header("E21", res.Title, "§6 (remedy)",
		"read-only transactions over a versioned store keep reader throughput within ~2x of the no-trigger baseline, with zero reader lock waits and deadlocks")

	readerGrid := []int{1, 4, 16, 64}
	writerGrid := []int{0, 1, 8}
	dur := 120 * time.Millisecond
	if r.Cfg.Quick {
		readerGrid = []int{1, 8}
		writerGrid = []int{0, 2}
		dur = 40 * time.Millisecond
	}

	run := func(m e21Mode, readers, writers int) e21Cell {
		db, err := core.NewDatabase(dali.New())
		if err != nil {
			panic(err)
		}
		defer db.Close()
		if err := db.Register(snapCardClass()); err != nil {
			panic(err)
		}
		const cards = 4
		refs := make([]core.Ref, cards)
		tx := db.Begin()
		for i := range refs {
			refs[i], err = db.Create(tx, "SnapCard", &CredCard{CredLim: 1e12})
			if err != nil {
				panic(err)
			}
			if m != e21Baseline {
				if _, err := db.Activate(tx, refs[i], "QueryPattern"); err != nil {
					panic(err)
				}
			}
		}
		if err := tx.Commit(); err != nil {
			panic(err)
		}
		db.Locks().ResetStats()

		var stop atomic.Bool
		var ops, aborts atomic.Uint64
		gate := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(seed))
				<-gate
				for !stop.Load() {
					var rtx *txn.Txn
					var err error
					if m == e21Snapshot {
						if rtx, err = db.BeginSnapshot(); err != nil {
							panic(err)
						}
					} else {
						rtx = db.Begin()
					}
					if _, err = db.Invoke(rtx, refs[rnd.Intn(cards)], "Query"); err != nil {
						rtx.Abort()
						aborts.Add(1)
						continue
					}
					if err := rtx.Commit(); err != nil {
						aborts.Add(1)
						continue
					}
					ops.Add(1)
				}
			}(int64(w))
		}
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(1000 + seed))
				<-gate
				for !stop.Load() {
					wtx := db.Begin()
					if _, err := db.Invoke(wtx, refs[rnd.Intn(cards)], "Buy", 1.0); err != nil {
						wtx.Abort()
						continue
					}
					_ = wtx.Commit() // writer deadlocks just retry
				}
			}(int64(w))
		}
		start := time.Now()
		close(gate)
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(start)
		lst := db.Locks().Stats()
		return e21Cell{
			qps:          float64(ops.Load()) / elapsed.Seconds(),
			readerAborts: aborts.Load(),
			waits:        lst.Waits,
			deadlocks:    lst.Deadlocks,
			snapReads:    db.Txns().Stats().SnapshotReads,
		}
	}

	fmt.Fprintf(r.W, "%-8s %-8s %14s %14s %14s %8s %12s\n",
		"readers", "writers", "baseline q/s", "2pl+trig q/s", "snapshot q/s", "snap/base", "rdr aborts")
	worstRatio := 1e18
	var snapAborts, idleWaits, idleDeadlocks, snapReadsTotal uint64
	for _, readers := range readerGrid {
		for _, writers := range writerGrid {
			base := run(e21Baseline, readers, writers)
			legacy := run(e21Legacy, readers, writers)
			snap := run(e21Snapshot, readers, writers)
			ratio := snap.qps / base.qps
			if ratio < worstRatio {
				worstRatio = ratio
			}
			snapAborts += snap.readerAborts
			snapReadsTotal += snap.snapReads
			if writers == 0 {
				// With no writers, snapshot-mode lock traffic must be
				// exactly zero: readers never touch the lock manager.
				idleWaits += snap.waits
				idleDeadlocks += snap.deadlocks
			}
			fmt.Fprintf(r.W, "%-8d %-8d %14.0f %14.0f %14.0f %8.2f %12d\n",
				readers, writers, base.qps, legacy.qps, snap.qps, ratio, snap.readerAborts)
		}
	}
	res.Passed = worstRatio >= 0.5 && snapAborts == 0 && idleWaits == 0 && idleDeadlocks == 0 && snapReadsTotal > 0
	res.Summary = fmt.Sprintf("worst snapshot/baseline ratio %.2fx, %d reader aborts, %d waits + %d deadlocks in writer-free snapshot cells",
		worstRatio, snapAborts, idleWaits, idleDeadlocks)
	return res
}
