//go:build race

package experiments

// raceEnabled reports that the race detector is instrumenting this
// build. The experiment suite asserts performance bars (scaling
// factors, overhead percentages) that the detector's per-access
// instrumentation invalidates, so the suite skips itself under -race;
// the behaviors the experiments exercise are covered by the per-package
// correctness tests, which do run under -race.
const raceEnabled = true
