package experiments

import (
	"bytes"
	"fmt"
	"math/rand"

	"ode/internal/baseline/rescan"
	"ode/internal/baseline/sentinel"
	"ode/internal/core"
	"ode/internal/event"
	"ode/internal/eventexpr"
	"ode/internal/fsm"
	"ode/internal/obj"
	"ode/internal/workload"
)

// E1 reproduces Figure 1: the AutoRaiseLimit event expression compiles to
// the paper's four-state extended FSM.
func (r *Runner) E1() Result {
	res := Result{ID: "E1", Title: "Figure 1 FSM reproduction"}
	r.header("E1", res.Title, "Figure 1, §5.1.2",
		"relative((after Buy & MoreCred()), after PayBill) compiles to a 4-state machine with one mask state")
	db, err := memDB()
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	bc, _ := db.ClassOf("CredCard")
	bt, _ := bc.TriggerByName("AutoRaiseLimit")
	m := bt.Machine

	describe := func(id event.ID) string {
		if info, ok := db.Registry().Info(id); ok {
			return info.Decl.String()
		}
		return fmt.Sprintf("e%d", id)
	}
	fmt.Fprint(r.W, m.Format(describe))

	buyID, _ := bc.EventID("after Buy")
	payID, _ := bc.EventID("after PayBill")
	bigID, _ := bc.EventID("BigBuy")
	structureOK := m.NumStates() == 4 &&
		m.States[0].Mask == fsm.NoMask && !m.States[0].Accept &&
		m.States[1].Mask != fsm.NoMask &&
		m.Masks[m.States[1].Mask] == "MoreCred" &&
		m.States[1].OnTrue == 2 && m.States[1].OnFalse == 0 &&
		m.States[3].Accept
	// Edge labels of Figure 1.
	moves := func(s int32, ev event.ID) int32 {
		next, _, _ := m.Advance(s, ev, func(string) (bool, error) { return true, nil })
		return next
	}
	edgesOK := moves(0, bigID) == 0 && moves(0, payID) == 0 &&
		moves(2, bigID) == 2 && moves(2, buyID) == 2 && moves(2, payID) == 3

	res.Passed = structureOK && edgesOK
	res.Summary = fmt.Sprintf("%d states, mask state 1 (True->2, False->0), accept state 3", m.NumStates())
	fmt.Fprintf(r.W, "structure matches Figure 1: %v\n", res.Passed)
	return res
}

// E2 measures event posting cost: Ode's unique-integer eventReps versus
// Sentinel's (class, prototype, modifier) string triples (§7).
func (r *Runner) E2() Result {
	res := Result{ID: "E2", Title: "integer eventReps vs Sentinel string triples"}
	r.header("E2", res.Title, "§5.2, §7",
		"mapping basic events to globally unique integers gives significantly lower posting overhead than string triples")
	n := r.Cfg.scale(2_000_000)
	const eventsPerClass = 8
	fmt.Fprintf(r.W, "%-8s %-8s %14s %14s %8s\n", "classes", "events", "triple ns/op", "int ns/op", "ratio")

	ok := true
	var lastRatio float64
	for _, classes := range []int{1, 16, 64} {
		total := classes * eventsPerClass
		triples := make([]sentinel.EventTriple, 0, total)
		treg := sentinel.NewRegistry()
		ireg := sentinel.NewIntRegistry(total + 1)
		ereg := event.NewRegistry()
		ids := make([]event.ID, 0, total)
		hits := 0
		for c := 0; c < classes; c++ {
			for e := 0; e < eventsPerClass; e++ {
				tr := sentinel.EventTriple{
					Class:     fmt.Sprintf("Class%03d", c),
					Prototype: fmt.Sprintf("void member%d(Merchant*, float, const char*)", e),
					Modifier:  "end",
				}
				triples = append(triples, tr)
				treg.Subscribe(tr, func(sentinel.EventTriple) { hits++ })
				id := ereg.Register(tr.Class, event.After(fmt.Sprintf("member%d", e)))
				ids = append(ids, id)
				ireg.Subscribe(id, func(event.ID) { hits++ })
			}
		}
		rnd := rand.New(rand.NewSource(1))
		order := make([]int, n)
		for i := range order {
			order[i] = rnd.Intn(total)
		}
		tripleNs := bestOp(n, func(i int) { treg.Post(triples[order[i]]) })
		intNs := bestOp(n, func(i int) { ireg.Post(ids[order[i]]) })
		ratio := tripleNs / intNs
		lastRatio = ratio
		fmt.Fprintf(r.W, "%-8d %-8d %14.1f %14.1f %7.1fx\n", classes, total, tripleNs, intNs, ratio)
		if intNs >= tripleNs {
			ok = false
		}
	}
	res.Passed = ok
	res.Summary = fmt.Sprintf("integers beat triples (last ratio %.1fx)", lastRatio)
	return res
}

// E3 verifies design goal 3: only objects of classes with triggers pay
// trigger overhead — and objects with no *active* triggers pay only the
// header-bit test.
func (r *Runner) E3() Result {
	res := Result{ID: "E3", Title: "trigger overhead only where triggers exist"}
	r.header("E3", res.Title, "design goal 3, §5.4.5 footnote 3",
		"invocations on trigger-free objects skip the index lookup via the object's control information")

	plain := core.MustClass("Plain",
		core.Factory(func() any { return new(CredCard) }),
		core.Method("Buy", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
	)
	db, err := memDB()
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	if err := db.Register(plain); err != nil {
		res.Summary = err.Error()
		return res
	}

	n := r.Cfg.scale(100_000)
	measure := func(class string, activate bool) float64 {
		tx := db.Begin()
		ref, _ := db.Create(tx, class, &CredCard{CredLim: 1e12, GoodHist: true})
		if activate {
			if _, err := db.Activate(tx, ref, "DenyCredit"); err != nil {
				panic(err)
			}
		}
		tx.Commit()
		btx := db.Begin()
		ns := bestOp(n, func(int) {
			if _, err := db.Invoke(btx, ref, "Buy", 1.0); err != nil {
				panic(err)
			}
		})
		btx.Commit()
		return ns
	}
	noEvents := measure("Plain", false)
	declaredOnly := measure("CredCard", false)
	active := measure("CredCard", true)
	fmt.Fprintf(r.W, "%-28s %12s\n", "variant", "ns/Invoke")
	fmt.Fprintf(r.W, "%-28s %12.0f\n", "no events declared", noEvents)
	fmt.Fprintf(r.W, "%-28s %12.0f\n", "events, no active trigger", declaredOnly)
	fmt.Fprintf(r.W, "%-28s %12.0f\n", "active trigger (mask eval)", active)
	res.Passed = declaredOnly < noEvents*1.5 && active > declaredOnly
	res.Summary = fmt.Sprintf("fast path +%.0f%% vs plain; active trigger +%.0f%%",
		(declaredOnly/noEvents-1)*100, (active/declaredOnly-1)*100)
	return res
}

// E4 verifies design goal 4: volatile objects pay nothing — a direct Go
// method call versus the persistent Invoke path.
func (r *Runner) E4() Result {
	res := Result{ID: "E4", Title: "volatile calls pay no trigger overhead"}
	r.header("E4", res.Title, "design goal 4, §5.3",
		"member functions invoked on volatile objects do not post events (no wrapper, no overhead)")
	db, err := memDB()
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	ref, err := mustCard(db, 1e12)
	if err != nil {
		res.Summary = err.Error()
		return res
	}

	n := r.Cfg.scale(2_000_000)
	volatileCard := &CredCard{CredLim: 1e12}
	buy := func(c *CredCard, amt float64) { c.CurrBal += amt }
	volatileNs := perOp(n, func(int) { buy(volatileCard, 1) })

	nInv := r.Cfg.scale(100_000)
	tx := db.Begin()
	persistentNs := perOp(nInv, func(int) {
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			panic(err)
		}
	})
	tx.Commit()
	posted := db.Stats().EventsPosted

	fmt.Fprintf(r.W, "volatile direct call: %10.2f ns/op (events posted: 0)\n", volatileNs)
	fmt.Fprintf(r.W, "persistent Invoke:    %10.2f ns/op (events posted: %d)\n", persistentNs, posted)
	res.Passed = volatileNs*10 < persistentNs && posted > 0
	res.Summary = fmt.Sprintf("volatile %.0fx cheaper; zero events posted by direct calls", persistentNs/volatileNs)
	return res
}

// E5 verifies design goal 2: FSM detection versus re-scanning the event
// history, across expression depth and stream length.
func (r *Runner) E5() Result {
	res := Result{ID: "E5", Title: "FSM detection vs history re-scan"}
	r.header("E5", res.Title, "design goal 2, §5.1",
		"composite events are detected efficiently: FSM cost is O(1) per event; re-scanning grows with history")

	const k = 4
	reg := event.NewRegistry()
	ids := make(map[string]event.ID, k)
	var alpha []event.ID
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("E%d", i)
		id := reg.Register("Bench", event.User(name))
		ids[name] = id
		alpha = append(alpha, id)
	}
	resolve := func(n *eventexpr.Name) (event.ID, error) {
		id, ok := ids[n.String()]
		if !ok {
			return event.None, fmt.Errorf("unknown event %q", n.String())
		}
		return id, nil
	}

	lengths := []int{100, 1000, 10000}
	rescanCap := 1000
	if r.Cfg.Quick {
		lengths = []int{100, 500}
		rescanCap = 200
	}
	fmt.Fprintf(r.W, "%-6s %-8s %14s %14s %10s\n", "depth", "stream", "fsm ns/ev", "rescan ns/ev", "speedup")
	ok := true
	var worst float64 = 1e18
	for depth, src := range workload.Expressions(k) {
		parsed := eventexpr.MustParse(src)
		m, err := fsm.Compile(parsed, fsm.Options{Resolve: resolve, Alphabet: alpha})
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		for _, length := range lengths {
			stream := workload.EventStream(int64(depth), length, k)
			evs := make([]event.ID, length)
			for i, e := range stream {
				evs[i] = alpha[e]
			}
			// FSM: feed the whole stream repeatedly.
			reps := r.Cfg.scale(2_000_000) / length
			if reps < 1 {
				reps = 1
			}
			state := m.Start
			fsmNs := perOp(reps*length, func(i int) {
				next, _, _ := m.Advance(state, evs[i%length], nil)
				state = next
			})
			// Rescan: one pass over a capped stream (it is quadratic).
			rl := length
			if rl > rescanCap {
				rl = rescanCap
			}
			d, err := rescan.New(parsed, resolve, alpha, nil)
			if err != nil {
				res.Summary = err.Error()
				return res
			}
			rescanNs := perOp(rl, func(i int) {
				if _, err := d.Post(evs[i]); err != nil {
					panic(err)
				}
			})
			speedup := rescanNs / fsmNs
			if speedup < worst {
				worst = speedup
			}
			note := ""
			if rl < length {
				note = fmt.Sprintf(" (rescan capped at %d events)", rl)
			}
			fmt.Fprintf(r.W, "%-6d %-8d %14.1f %14.1f %9.0fx%s\n", depth+1, length, fsmNs, rescanNs, speedup, note)
			if length >= 1000 && fsmNs >= rescanNs {
				ok = false
			}
		}
	}
	res.Passed = ok
	res.Summary = fmt.Sprintf("FSM wins everywhere at scale (min speedup %.0fx)", worst)
	return res
}

// E6 reproduces the §6 experience: the dense 2-D transition matrix is
// very space inefficient for sparse machines, which is why Ode switched
// to sparse transition lists over globally unique event integers.
func (r *Runner) E6() Result {
	res := Result{ID: "E6", Title: "sparse transition lists vs dense matrix"}
	r.header("E6", res.Title, "§6",
		"the planned 2-D array representation is very space inefficient for sparse machines; sparse lists win in space and stay competitive in time")

	// §6's planned representation indexes the matrix directly by the
	// event integer. With globally unique IDs, the matrix width is the
	// application-wide event count even though each class's machine uses
	// only its own handful — that is the sparsity the paper gave up the
	// dense form over. Sweep the number of classes in the application
	// while keeping the measured class fixed at 8 events.
	const perClass = 8
	fmt.Fprintf(r.W, "%-14s %10s %12s %14s %9s %12s %12s\n",
		"app classes", "event IDs", "sparse B", "dense(2-D) B", "ratio", "sparse ns", "dense ns")
	ok := true
	prevRatio := 0.0
	n := r.Cfg.scale(2_000_000)
	for _, classes := range []int{1, 16, 64, 256} {
		reg := event.NewRegistry()
		// Other classes in the application register their events first.
		for c := 1; c < classes; c++ {
			for e := 0; e < perClass; e++ {
				reg.Register(fmt.Sprintf("Other%d", c), event.User(fmt.Sprintf("E%d", e)))
			}
		}
		// The measured class registers last, so its IDs sit at the top of
		// the global space.
		ids := make(map[string]event.ID, perClass)
		var alpha []event.ID
		var maxID event.ID
		for e := 0; e < perClass; e++ {
			name := fmt.Sprintf("E%d", e)
			id := reg.Register("Measured", event.User(name))
			ids[name] = id
			alpha = append(alpha, id)
			if id > maxID {
				maxID = id
			}
		}
		parsed := eventexpr.MustParse("E0, E1")
		m, err := fsm.Compile(parsed, fsm.Options{
			Resolve:  func(nm *eventexpr.Name) (event.ID, error) { return ids[nm.String()], nil },
			Alphabet: alpha,
		})
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		d := fsm.NewDenseIndexed(m, maxID)
		stream := workload.EventStream(int64(classes), 4096, perClass)
		evs := make([]event.ID, len(stream))
		for i, e := range stream {
			evs[i] = alpha[e]
		}
		var st int32 = m.Start
		sparseNs := bestOp(n, func(i int) {
			next, _, _ := m.Advance(st, evs[i%len(evs)], nil)
			st = next
		})
		st = m.Start
		denseNs := bestOp(n, func(i int) {
			next, _, _ := d.Advance(st, evs[i%len(evs)], nil)
			st = next
		})
		ratio := float64(d.MemoryFootprint()) / float64(m.MemoryFootprint())
		fmt.Fprintf(r.W, "%-14d %10d %12d %14d %8.1fx %12.1f %12.1f\n",
			classes, reg.Len(), m.MemoryFootprint(), d.MemoryFootprint(), ratio, sparseNs, denseNs)
		if ratio <= prevRatio {
			ok = false // dense waste must grow with application size
		}
		prevRatio = ratio
		if sparseNs > denseNs*3 {
			ok = false // sparse must stay competitive in time
		}
	}
	res.Passed = ok && prevRatio > 10
	res.Summary = fmt.Sprintf("dense 2-D matrix reaches %.0fx the sparse footprint in a 256-class application", prevRatio)
	return res
}

// E7 verifies design goal 5 / §5.1.3: trigger state lives outside the
// object, so activation never changes the stored object payload; the
// price is the hash-index lookup, measured against active-trigger count.
func (r *Runner) E7() Result {
	res := Result{ID: "E7", Title: "out-of-object trigger state; index lookup cost"}
	r.header("E7", res.Title, "design goal 5, §5.1.3, §6",
		"activating/deactivating triggers must not change object layout (no data conversion); the object→trigger index pays per active trigger")

	db, err := memDB()
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	ref, err := mustCard(db, 1e12)
	if err != nil {
		res.Summary = err.Error()
		return res
	}

	payload := func() []byte {
		img, err := db.Store().Read(ref.OID())
		if err != nil {
			panic(err)
		}
		_, p, err := obj.DecodeEnvelope(img)
		if err != nil {
			panic(err)
		}
		return append([]byte(nil), p...)
	}
	before := payload()
	tx := db.Begin()
	if _, err := db.Activate(tx, ref, "DenyCredit"); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Commit()
	after := payload()
	stable := bytes.Equal(before, after)
	fmt.Fprintf(r.W, "object payload identical after activation: %v (%d bytes)\n", stable, len(after))

	// Lookup cost versus number of active triggers on the object.
	n := r.Cfg.scale(50_000)
	fmt.Fprintf(r.W, "%-16s %12s\n", "active triggers", "ns/Invoke")
	costs := map[int]float64{}
	counts := []int{1, 4, 16, 64}
	current := 1 // DenyCredit from above
	for _, target := range counts {
		tx := db.Begin()
		for current < target {
			if _, err := db.Activate(tx, ref, "DenyCredit"); err != nil {
				res.Summary = err.Error()
				return res
			}
			current++
		}
		tx.Commit()
		btx := db.Begin()
		costs[target] = perOp(n, func(int) {
			if _, err := db.Invoke(btx, ref, "Buy", 1.0); err != nil {
				panic(err)
			}
		})
		btx.Commit()
		fmt.Fprintf(r.W, "%-16d %12.0f\n", target, costs[target])
	}
	res.Passed = stable && costs[64] > costs[1]
	res.Summary = fmt.Sprintf("payload stable; 64 triggers cost %.1fx of 1", costs[64]/costs[1])
	return res
}
