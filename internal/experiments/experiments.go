// Package experiments implements the reproduction experiments E1–E25
// catalogued in DESIGN.md and reported in EXPERIMENTS.md. The paper has
// no quantitative tables — its measurable content is Figure 1, five
// design goals, the §6 implementation experiences, and the §7 comparison
// claims — so each experiment regenerates one of those: a structure
// check, a micro-benchmark pair whose *shape* (who wins, direction,
// rough factor) the paper predicts, or a semantics check.
//
// cmd/ode-bench runs every experiment and prints the tables;
// bench_test.go exposes the same measurements as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"ode/internal/core"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks iteration counts for CI/tests.
	Quick bool
	// Dir is scratch space for disk stores (E10, E14); empty uses a
	// temporary directory per experiment.
	Dir string
}

func (c Config) scale(n int) int {
	if c.Quick {
		n /= 20
		if n < 50 {
			n = 50
		}
	}
	return n
}

// Result is one experiment's outcome.
type Result struct {
	ID      string
	Title   string
	Passed  bool // the paper-predicted shape held
	Summary string
}

// Runner executes experiments and writes their tables.
type Runner struct {
	W   io.Writer
	Cfg Config
}

// RunAll executes every experiment in order and returns the results.
func (r *Runner) RunAll() []Result {
	type exp struct {
		id string
		fn func() Result
	}
	exps := []exp{
		{"E1", r.E1}, {"E2", r.E2}, {"E3", r.E3}, {"E4", r.E4},
		{"E5", r.E5}, {"E6", r.E6}, {"E7", r.E7}, {"E8", r.E8},
		{"E9", r.E9}, {"E10", r.E10}, {"E11", r.E11}, {"E12", r.E12},
		{"E13", r.E13}, {"E14", r.E14}, {"E15", r.E15}, {"E16", r.E16},
		{"E17", r.E17},
		// E18 (observability overhead) is benchmark-shaped and lives in
		// bench_test.go / EXPERIMENTS.md; the runner skips to E19.
		{"E19", r.E19}, {"E20", r.E20}, {"E21", r.E21}, {"E22", r.E22},
		{"E23", r.E23}, {"E24", r.E24}, {"E25", r.E25},
	}
	var out []Result
	for _, e := range exps {
		out = append(out, e.fn())
		fmt.Fprintln(r.W)
	}
	fmt.Fprintf(r.W, "== summary ==\n")
	pass := 0
	for _, res := range out {
		verdict := "FAIL"
		if res.Passed {
			verdict = "ok"
			pass++
		}
		fmt.Fprintf(r.W, "%-4s %-4s %s — %s\n", res.ID, verdict, res.Title, res.Summary)
	}
	fmt.Fprintf(r.W, "%d/%d experiments match the paper's predicted shape\n", pass, len(out))
	return out
}

func (r *Runner) header(id, title, anchor, claim string) {
	fmt.Fprintf(r.W, "== %s: %s ==\n", id, title)
	fmt.Fprintf(r.W, "paper: %s\nclaim: %s\n", anchor, claim)
}

// perOp times fn over n iterations and returns ns/op.
func perOp(n int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// bestOp warms fn up and returns the fastest of three timed runs — used
// where quick-mode iteration counts would otherwise be noisy.
func bestOp(n int, fn func(i int)) float64 {
	warm := n / 10
	if warm < 1 {
		warm = 1
	}
	perOp(warm, fn)
	best := perOp(n, fn)
	for k := 0; k < 2; k++ {
		if v := perOp(n, fn); v < best {
			best = v
		}
	}
	return best
}

// --- shared fixture: the paper's §4 CredCard class ---------------------------

// CredCard is the benchmark object (mirrors the paper's §4 class).
type CredCard struct {
	Holder     string
	CredLim    float64
	CurrBal    float64
	GoodHist   bool
	BlackMarks []string
}

// CredCardClass builds the §4 class definition used across experiments.
func CredCardClass() *core.Class {
	return core.MustClass("CredCard",
		core.Factory(func() any { return new(CredCard) }),
		core.Method("Buy", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		core.Method("PayBill", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal -= args[0].(float64)
			return nil, nil
		}),
		core.Method("RaiseLimit", func(ctx *core.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CredLim += args[0].(float64)
			return nil, nil
		}),
		core.ReadOnlyMethod("GoodCredHist", func(ctx *core.Ctx, self any, args []any) (any, error) {
			return self.(*CredCard).GoodHist, nil
		}),
		core.Events("after Buy", "after PayBill", "BigBuy"),
		core.Mask("OverLimit", func(ctx *core.Ctx, self any, act *core.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > c.CredLim, nil
		}),
		core.Mask("MoreCred", func(ctx *core.Ctx, self any, act *core.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > 0.8*c.CredLim && c.GoodHist, nil
		}),
		core.Trigger("DenyCredit", "after Buy & OverLimit",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				ctx.TAbort()
				return nil
			},
			core.Perpetual()),
		core.Trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "RaiseLimit", act.ArgFloat(0))
				return err
			}),
	)
}

// memDB opens a main-memory database with CredCard registered.
func memDB() (*core.Database, error) {
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		return nil, err
	}
	if err := db.Register(CredCardClass()); err != nil {
		return nil, err
	}
	return db, nil
}

// diskDB opens a disk database at path with CredCard registered.
func diskDB(path string) (*core.Database, error) {
	store, err := eos.Open(path, eos.Options{})
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := db.Register(CredCardClass()); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// mustCard creates one committed card.
func mustCard(db *core.Database, limit float64) (core.Ref, error) {
	tx := db.Begin()
	ref, err := db.Create(tx, "CredCard", &CredCard{Holder: "bench", CredLim: limit, GoodHist: true})
	if err != nil {
		tx.Abort()
		return ref, err
	}
	return ref, tx.Commit()
}
