package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ode/internal/baseline/sentinel"
	"ode/internal/core"
	"ode/internal/storage/dali"
	"ode/internal/workload"
)

// queryClass builds the E8 fixture: a read-only Query method whose
// "after Query" event drives a perpetual two-step trigger, so every
// posting advances (writes) the trigger descriptor — §6's read-to-write
// amplification in its purest form.
func queryClass() *core.Class {
	return core.MustClass("QueryCard",
		core.Factory(func() any { return new(CredCard) }),
		core.ReadOnlyMethod("Query", func(ctx *core.Ctx, self any, args []any) (any, error) {
			return self.(*CredCard).CurrBal, nil
		}),
		core.Events("after Query"),
		core.Trigger("QueryPattern", "after Query, after Query",
			func(ctx *core.Ctx, self any, act *core.Activation) error { return nil },
			core.Perpetual()),
	)
}

// E8 reproduces the §6 observation: triggers turn read access into write
// access, increasing lock waiting and deadlock likelihood.
func (r *Runner) E8() Result {
	res := Result{ID: "E8", Title: "triggers turn reads into writes (lock amplification)"}
	r.header("E8", res.Title, "§6",
		"object accesses that advance an FSM write the trigger descriptor, so read-mostly workloads wait on locks and deadlock more")

	run := func(withTrigger bool) (opsPerSec float64, waits, deadlocks uint64) {
		db, err := core.NewDatabase(dali.New())
		if err != nil {
			panic(err)
		}
		defer db.Close()
		if err := db.Register(queryClass()); err != nil {
			panic(err)
		}
		const cards = 4
		refs := make([]core.Ref, cards)
		tx := db.Begin()
		for i := range refs {
			refs[i], err = db.Create(tx, "QueryCard", &CredCard{})
			if err != nil {
				panic(err)
			}
			if withTrigger {
				if _, err := db.Activate(tx, refs[i], "QueryPattern"); err != nil {
					panic(err)
				}
			}
		}
		tx.Commit()
		db.Locks().ResetStats()

		workers := 8
		perWorker := r.Cfg.scale(20_000) / workers
		if perWorker < 400 {
			perWorker = 400 // enough overlap for contention to show
		}
		var retries uint64
		var mu sync.Mutex
		gate := make(chan struct{})
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-gate // all workers start together
				rnd := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < perWorker; i++ {
					for {
						tx := db.Begin()
						// Touch two cards per transaction in random order
						// so descriptor writes can deadlock.
						a, b := rnd.Intn(cards), rnd.Intn(cards)
						_, err1 := db.Invoke(tx, refs[a], "Query")
						_, err2 := db.Invoke(tx, refs[b], "Query")
						if err1 != nil || err2 != nil {
							tx.Abort()
							mu.Lock()
							retries++
							mu.Unlock()
							continue
						}
						if err := tx.Commit(); err != nil {
							mu.Lock()
							retries++
							mu.Unlock()
							continue
						}
						break
					}
				}
			}(w)
		}
		close(gate)
		wg.Wait()
		elapsed := time.Since(start)
		st := db.Locks().Stats()
		total := float64(workers * perWorker * 2)
		return total / elapsed.Seconds(), st.Waits, st.Deadlocks
	}

	offOps, offWaits, offDead := run(false)
	onOps, onWaits, onDead := run(true)
	fmt.Fprintf(r.W, "%-18s %14s %10s %10s\n", "configuration", "queries/sec", "waits", "deadlocks")
	fmt.Fprintf(r.W, "%-18s %14.0f %10d %10d\n", "no triggers", offOps, offWaits, offDead)
	fmt.Fprintf(r.W, "%-18s %14.0f %10d %10d\n", "active triggers", onOps, onWaits, onDead)
	res.Passed = onWaits > offWaits && onOps < offOps
	res.Summary = fmt.Sprintf("waits %d→%d, deadlocks %d→%d, throughput %.1fx lower",
		offWaits, onWaits, offDead, onDead, offOps/onOps)
	return res
}

// couplingClass builds a class with one trigger per coupling mode, each
// listening to its own method so modes can be driven independently.
func couplingClass() *core.Class {
	noop := func(ctx *core.Ctx, self any, act *core.Activation) error { return nil }
	method := func(ctx *core.Ctx, self any, args []any) (any, error) { return nil, nil }
	return core.MustClass("Coupled",
		core.Factory(func() any { return new(CredCard) }),
		core.Method("None", method),
		core.Method("Imm", method),
		core.Method("End", method),
		core.Method("Dep", method),
		core.Method("Indep", method),
		core.Events("after Imm", "after End", "after Dep", "after Indep"),
		core.Trigger("TImm", "after Imm", noop, core.Perpetual()),
		core.Trigger("TEnd", "after End", noop, core.Perpetual(), core.WithCoupling(core.Deferred)),
		core.Trigger("TDep", "after Dep", noop, core.Perpetual(), core.WithCoupling(core.Dependent)),
		core.Trigger("TIndep", "after Indep", noop, core.Perpetual(), core.WithCoupling(core.Independent)),
	)
}

// E9 measures the per-transaction cost of each coupling mode and checks
// their §4.2 semantics (the semantics checks live in internal/core tests;
// here we re-verify the headline behaviours through counters).
func (r *Runner) E9() Result {
	res := Result{ID: "E9", Title: "coupling-mode costs"}
	r.header("E9", res.Title, "§4.2, §5.5",
		"immediate fires in-txn; end at commit; dependent/!dependent pay a separate system transaction")

	db, err := core.NewDatabase(dali.New())
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	if err := db.Register(couplingClass()); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Coupled", &CredCard{})
	for _, t := range []string{"TImm", "TEnd", "TDep", "TIndep"} {
		if _, err := db.Activate(tx, ref, t); err != nil {
			res.Summary = err.Error()
			return res
		}
	}
	tx.Commit()

	n := r.Cfg.scale(20_000)
	measure := func(method string) float64 {
		return perOp(n, func(int) {
			tx := db.Begin()
			if _, err := db.Invoke(tx, ref, method, 1.0); err != nil {
				panic(err)
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		})
	}
	rows := []struct {
		label, method string
	}{
		{"no trigger (baseline)", "None"},
		{"immediate", "Imm"},
		{"end (deferred)", "End"},
		{"dependent", "Dep"},
		{"!dependent", "Indep"},
	}
	fmt.Fprintf(r.W, "%-24s %14s\n", "coupling", "ns/txn")
	costs := map[string]float64{}
	for _, row := range rows {
		costs[row.label] = measure(row.method)
		fmt.Fprintf(r.W, "%-24s %14.0f\n", row.label, costs[row.label])
	}
	st := db.Stats()
	sys := db.Txns().Stats().System
	fmt.Fprintf(r.W, "fired: imm=%d end=%d dep=%d indep=%d; system txns=%d\n",
		st.FiredImmediate, st.FiredDeferred, st.FiredDependent, st.FiredIndependent, sys)
	// The pass criterion is the §5.5 semantics: every mode fired once per
	// driving transaction, and each detached firing ran its own system
	// transaction. (The cost table is informative; the paper makes no
	// ordering claim beyond the extra transaction for detached modes.)
	res.Passed = st.FiredImmediate >= uint64(n) && st.FiredDeferred >= uint64(n) &&
		st.FiredDependent >= uint64(n) && st.FiredIndependent >= uint64(n) &&
		sys >= st.FiredDependent+st.FiredIndependent
	res.Summary = fmt.Sprintf("all modes fired %dx; %d system txns for %d detached firings",
		n, sys, st.FiredDependent+st.FiredIndependent)
	return res
}

// E10 runs the credit-card workload over both storage managers: MM-Ode's
// Dali analog versus disk Ode's EOS analog, with the trigger run-time
// byte-identical over both (§5.6).
func (r *Runner) E10() Result {
	res := Result{ID: "E10", Title: "MM-Ode (Dali) vs disk Ode (EOS)"}
	r.header("E10", res.Title, "§2, §5.6",
		"the same trigger run-time runs over both storage managers; the main-memory manager wins on throughput")

	dir := r.Cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ode-e10-*")
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
	}

	n := r.Cfg.scale(20_000)
	ops := workload.CardStream(11, n, 16, workload.DefaultCardMix, 0)

	run := func(name string, db *core.Database) (opsPerSec float64) {
		defer db.Close()
		refs := make([]core.Ref, 16)
		tx := db.Begin()
		var err error
		for i := range refs {
			refs[i], err = db.Create(tx, "CredCard", &CredCard{CredLim: 1e12, GoodHist: true})
			if err != nil {
				panic(err)
			}
			if _, err := db.Activate(tx, refs[i], "DenyCredit"); err != nil {
				panic(err)
			}
		}
		tx.Commit()

		start := time.Now()
		for _, op := range ops {
			tx := db.Begin()
			var err error
			switch op.Kind {
			case workload.OpBuy:
				_, err = db.Invoke(tx, refs[op.Card], "Buy", op.Amount)
			case workload.OpPay:
				_, err = db.Invoke(tx, refs[op.Card], "PayBill", op.Amount)
			case workload.OpBigBuy:
				err = db.PostUserEvent(tx, refs[op.Card], "BigBuy")
			default:
				_, err = db.Invoke(tx, refs[op.Card], "GoodCredHist")
			}
			if err != nil {
				panic(err)
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		st := db.Store().Stats()
		fmt.Fprintf(r.W, "%-6s %12.0f txn/s   (page writes %d, WAL %dKB)\n",
			name, float64(n)/elapsed.Seconds(), st.PageWrites, st.LogBytes/1024)
		return float64(n) / elapsed.Seconds()
	}

	memdb, err := memDB()
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	daliOps := run("dali", memdb)
	diskdb, err := diskDB(filepath.Join(dir, "e10.eos"))
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	eosOps := run("eos", diskdb)

	res.Passed = daliOps > eosOps
	res.Summary = fmt.Sprintf("dali %.1fx faster than eos on the credit-card mix", daliOps/eosOps)
	return res
}

// E11 verifies §5.5 rollback semantics and measures abort cost: trigger
// FSM state rolls back with the transaction; only !dependent actions
// survive.
func (r *Runner) E11() Result {
	res := Result{ID: "E11", Title: "trigger-state rollback on abort"}
	r.header("E11", res.Title, "§5.5",
		"aborted transactions roll back trigger state; !dependent actions still execute in a system transaction")

	db, err := memDB()
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	ref, err := mustCard(db, 1000)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	tx := db.Begin()
	if _, err := db.Activate(tx, ref, "AutoRaiseLimit", 500.0); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Commit()

	// Arm inside an aborted transaction; a later PayBill must not fire.
	tx = db.Begin()
	if _, err := db.Invoke(tx, ref, "Buy", 900.0); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Abort()
	tx = db.Begin()
	if _, err := db.Invoke(tx, ref, "PayBill", 10.0); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Commit()
	rtx := db.Begin()
	v, _ := db.Get(rtx, ref)
	limitAfter := v.(*CredCard).CredLim
	rtx.Abort()
	rolledBack := limitAfter == 1000
	fmt.Fprintf(r.W, "armed-then-aborted pattern did not fire: %v (limit %v)\n", rolledBack, limitAfter)

	// Abort vs commit latency for a single-Invoke transaction.
	n := r.Cfg.scale(20_000)
	commitNs := perOp(n, func(int) {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "GoodCredHist"); err != nil {
			panic(err)
		}
		tx.Commit()
	})
	abortNs := perOp(n, func(int) {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "GoodCredHist"); err != nil {
			panic(err)
		}
		tx.Abort()
	})
	fmt.Fprintf(r.W, "commit %0.f ns/txn, abort %0.f ns/txn\n", commitNs, abortNs)

	res.Passed = rolledBack
	res.Summary = fmt.Sprintf("FSM state rolled back; abort costs %.2fx of commit", abortNs/commitNs)
	return res
}

// E12 measures mask-cascade quiescence cost against chain length
// (§5.4.5: "Potentially, multiple mask events must be posted before the
// system quiesces").
func (r *Runner) E12() Result {
	res := Result{ID: "E12", Title: "mask cascade cost"}
	r.header("E12", res.Title, "§5.1.2, §5.4.5",
		"a posting may cascade through several mask states; cost grows linearly with pending masks")

	n := r.Cfg.scale(50_000)
	fmt.Fprintf(r.W, "%-8s %12s %18s\n", "masks", "ns/Invoke", "masks/posting")
	costs := map[int]float64{}
	ok := true
	for _, k := range []int{1, 2, 4, 8, 16} {
		opts := []core.Option{
			core.Factory(func() any { return new(CredCard) }),
			core.Method("Poke", func(ctx *core.Ctx, self any, args []any) (any, error) { return nil, nil }),
			core.Events("after Poke"),
		}
		expr := "after Poke"
		for i := 0; i < k; i++ {
			name := fmt.Sprintf("m%d", i)
			opts = append(opts, core.Mask(name, func(ctx *core.Ctx, self any, act *core.Activation) (bool, error) {
				return true, nil
			}))
			expr += " & " + name
		}
		opts = append(opts, core.Trigger("T", expr,
			func(ctx *core.Ctx, self any, act *core.Activation) error { return nil },
			core.Perpetual()))
		cls := core.MustClass(fmt.Sprintf("Masked%d", k), opts...)

		db, err := core.NewDatabase(dali.New())
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		if err := db.Register(cls); err != nil {
			db.Close()
			res.Summary = err.Error()
			return res
		}
		tx := db.Begin()
		ref, _ := db.Create(tx, cls.Name(), &CredCard{})
		if _, err := db.Activate(tx, ref, "T"); err != nil {
			db.Close()
			res.Summary = err.Error()
			return res
		}
		tx.Commit()
		db.ResetStats()
		btx := db.Begin()
		costs[k] = bestOp(n, func(int) {
			if _, err := db.Invoke(btx, ref, "Poke"); err != nil {
				panic(err)
			}
		})
		btx.Commit()
		evaluated := db.Stats().MasksEvaluated
		perPosting := float64(evaluated) / float64(db.Stats().EventsPosted)
		fmt.Fprintf(r.W, "%-8d %12.0f %14.1f\n", k, costs[k], perPosting)
		// The §5.4.5 claim is semantic: every posting cascades through
		// the whole pending-mask chain before quiescing.
		if perPosting < float64(k) {
			ok = false
		}
		db.Close()
	}
	res.Passed = ok
	res.Summary = fmt.Sprintf("every posting evaluates the full chain; 16 masks cost %.1fx of 1", costs[16]/costs[1])
	return res
}

// E13 measures FSM compilation cost — the §5.1.3 decision to compile
// machines on every program run instead of persisting them (avoiding a
// central trigger database) is viable only if compilation is cheap.
func (r *Runner) E13() Result {
	res := Result{ID: "E13", Title: "compile-FSMs-every-time cost"}
	r.header("E13", res.Title, "§5.1.3",
		"compiling event expressions to FSMs at class-registration time is cheap enough to avoid persisting machines")

	n := r.Cfg.scale(10_000)
	fmt.Fprintf(r.W, "%-40s %14s\n", "expression", "compile µs")
	var worst float64
	exprs := []string{
		"after Buy",
		"after Buy & OverLimit",
		"relative((after Buy & MoreCred()), after PayBill)",
		"*(after Buy || BigBuy), after PayBill & OverLimit, after Buy",
	}
	for _, src := range exprs {
		cls := CredCardClass()
		// Compile via a fresh database registration each time would
		// include catalog work; time the per-trigger compile by building
		// the class's machines through Register on a throwaway database.
		us := perOp(n, func(int) {
			db, err := core.NewDatabase(dali.New())
			if err != nil {
				panic(err)
			}
			if err := db.Register(cls); err != nil {
				panic(err)
			}
			db.Close()
		}) / 1000
		_ = src
		if us > worst {
			worst = us
		}
		fmt.Fprintf(r.W, "%-40s %14.1f (class: 2 triggers + catalog)\n", src[:min(len(src), 40)], us)
		break // the class registers all triggers at once; one row suffices
	}
	// Also: a 32-trigger class.
	opts := []core.Option{
		core.Factory(func() any { return new(CredCard) }),
		core.Method("Poke", func(ctx *core.Ctx, self any, args []any) (any, error) { return nil, nil }),
		core.Events("after Poke", "U0", "U1", "U2"),
	}
	for i := 0; i < 32; i++ {
		opts = append(opts, core.Trigger(fmt.Sprintf("T%d", i),
			"relative((after Poke || U0), U1, *U2, after Poke)",
			func(ctx *core.Ctx, self any, act *core.Activation) error { return nil }))
	}
	wide := core.MustClass("Wide32", opts...)
	us32 := perOp(n/4+1, func(int) {
		db, err := core.NewDatabase(dali.New())
		if err != nil {
			panic(err)
		}
		if err := db.Register(wide); err != nil {
			panic(err)
		}
		db.Close()
	}) / 1000
	fmt.Fprintf(r.W, "%-40s %14.1f\n", "class with 32 composite triggers", us32)
	// "Cheap enough" means a negligible slice of program start-up; the
	// generous bound keeps the check meaningful under instrumented
	// (-race, coverage) test runs too.
	res.Passed = us32 < 50_000 // well under 50ms per program start
	res.Summary = fmt.Sprintf("32-trigger class binds in %.0fµs — compile-every-time is cheap", us32)
	return res
}

// E14 contrasts Ode's persistent (global) trigger state with Sentinel's
// transient (local) detection (§7): the capability check and the price.
func (r *Runner) E14() Result {
	res := Result{ID: "E14", Title: "global (persistent) vs local (transient) composite events"}
	r.header("E14", res.Title, "§7",
		"Ode stores TriggerStates in the database, so composite events span applications; Sentinel's transient detector cannot")

	dir := r.Cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ode-e14-*")
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "e14.eos")

	// Capability: arm in "process 1", fire in "process 2".
	db1, err := diskDB(path)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	ref, err := mustCard(db1, 1000)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	tx := db1.Begin()
	if _, err := db1.Activate(tx, ref, "AutoRaiseLimit", 500.0); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Commit()
	tx = db1.Begin()
	if _, err := db1.Invoke(tx, ref, "Buy", 900.0); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Commit()
	db1.Close()

	db2, err := diskDB(path)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	tx = db2.Begin()
	if _, err := db2.Invoke(tx, ref, "PayBill", 100.0); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Commit()
	rtx := db2.Begin()
	v, _ := db2.Get(rtx, ref)
	odeGlobal := v.(*CredCard).CredLim == 1500
	rtx.Abort()
	db2.Close()
	fmt.Fprintf(r.W, "Ode: pattern armed in process 1 fired in process 2: %v\n", odeGlobal)

	// Sentinel: restarting the detector loses the armed state.
	memdb, err := memDB()
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer memdb.Close()
	bc, _ := memdb.ClassOf("CredCard")
	bt, _ := bc.TriggerByName("AutoRaiseLimit")
	buyID, _ := bc.EventID("after Buy")
	payID, _ := bc.EventID("after PayBill")
	alwaysTrue := func(string) (bool, error) { return true, nil }
	d1 := sentinel.NewDetector(bt.Machine, alwaysTrue)
	if _, err := d1.Post(buyID); err != nil {
		res.Summary = err.Error()
		return res
	}
	d2 := sentinel.NewDetector(bt.Machine, alwaysTrue) // "restart"
	sentinelFired, err := d2.Post(payID)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	fmt.Fprintf(r.W, "Sentinel-style transient detector fired across restart: %v\n", sentinelFired)

	// The price of globality: persistent posting vs transient posting.
	n := r.Cfg.scale(200_000)
	mref, err := mustCard(memdb, 1e12)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	tx = memdb.Begin()
	if _, err := memdb.Activate(tx, mref, "DenyCredit"); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Commit()
	btx := memdb.Begin()
	persistentNs := perOp(n/10, func(int) {
		if _, err := memdb.Invoke(btx, mref, "Buy", 1.0); err != nil {
			panic(err)
		}
	})
	btx.Commit()
	d := sentinel.NewDetector(bt.Machine, alwaysTrue)
	transientNs := perOp(n, func(int) {
		if _, err := d.Post(buyID); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(r.W, "persistent posting %0.f ns/ev vs transient %0.f ns/ev (%.0fx — the price of global events)\n",
		persistentNs, transientNs, persistentNs/transientNs)

	res.Passed = odeGlobal && !sentinelFired
	res.Summary = fmt.Sprintf("Ode global=%v, transient baseline global=%v; globality costs %.0fx per posting",
		odeGlobal, sentinelFired, persistentNs/transientNs)
	return res
}

// E15 checks the transaction-event design decisions: before-tcomplete
// posts exactly once per interested object per transaction; before-tabort
// only on explicit aborts; after-tcommit and after-tabort are rejected
// (§5.5, §6).
func (r *Runner) E15() Result {
	res := Result{ID: "E15", Title: "transaction-event semantics"}
	r.header("E15", res.Title, "§5.5, §6",
		"before-tcomplete/tabort post once per interested object; after-tcommit/tabort were dropped from the design")

	completes, aborts := 0, 0
	cls := core.MustClass("Audited",
		core.Factory(func() any { return new(CredCard) }),
		core.Method("Touch", func(ctx *core.Ctx, self any, args []any) (any, error) { return nil, nil }),
		core.Events("after Touch", "before tcomplete", "before tabort"),
		// Both composites require a Touch first: a system transaction
		// that merely runs a detached action (and thus also posts
		// tcomplete to the object it accessed) must not count.
		core.Trigger("C", "after Touch, *any, before tcomplete",
			func(ctx *core.Ctx, self any, act *core.Activation) error { completes++; return nil },
			core.Perpetual()),
		core.Trigger("A", "after Touch, *any, before tabort",
			func(ctx *core.Ctx, self any, act *core.Activation) error { aborts++; return nil },
			core.Perpetual(), core.WithCoupling(core.Independent)),
	)
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	defer db.Close()
	if err := db.Register(cls); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Audited", &CredCard{})
	db.Activate(tx, ref, "C")
	db.Activate(tx, ref, "A")
	tx.Commit()
	completes, aborts = 0, 0

	// One committing transaction with three accesses: exactly one
	// tcomplete.
	tx = db.Begin()
	for i := 0; i < 3; i++ {
		if _, err := db.Invoke(tx, ref, "Touch"); err != nil {
			res.Summary = err.Error()
			return res
		}
	}
	tx.Commit()
	onceOK := completes == 1 && aborts == 0
	fmt.Fprintf(r.W, "3 accesses, 1 commit -> tcomplete posted %d time(s), tabort %d\n", completes, aborts)

	// One explicit abort: exactly one tabort (surviving via !dependent).
	completes, aborts = 0, 0
	tx = db.Begin()
	if _, err := db.Invoke(tx, ref, "Touch"); err != nil {
		res.Summary = err.Error()
		return res
	}
	tx.Abort()
	abortOK := aborts == 1 && completes == 0
	fmt.Fprintf(r.W, "explicit abort -> tabort posted %d time(s), tcomplete %d\n", aborts, completes)

	// Dropped events rejected.
	_, err1 := core.NewClass("BadA", core.Factory(func() any { return new(CredCard) }), core.Events("after tabort"))
	_, err2 := core.NewClass("BadB", core.Factory(func() any { return new(CredCard) }), core.Events("after tcommit"))
	droppedOK := err1 != nil && err2 != nil
	fmt.Fprintf(r.W, "after tabort / after tcommit rejected at class build: %v\n", droppedOK)

	res.Passed = onceOK && abortOK && droppedOK
	res.Summary = "exactly-once posting and dropped-event rejection hold"
	return res
}
