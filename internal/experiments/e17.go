package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/core"
	"ode/internal/fault"
	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
	"ode/internal/wal"
)

// E17 measures robustness under injected fsync failures. The paper's
// recovery story (§5.6: redo logging, no-steal buffering) is only
// credible if the implementation survives the failures the log exists
// for, so E17 injects them deterministically: fsync fails at 1% and 5%
// rates under the eos WAL while committers run. The store must
// self-heal (truncate back to the durable prefix and continue), acked
// commits must survive a crash, failed commits must vanish, and — the
// trigger-semantics half — detached firings whose system transactions
// hit injected commit failures or forced deadlocks must be retried
// rather than dropped: DetachedDropped stays 0 on the default retry
// budget. dali (no durability wait) is the fault-free ceiling.
func (r *Runner) E17() Result {
	res := Result{ID: "E17", Title: "fault injection: commit throughput and recovery under fsync failures"}
	r.header("E17", res.Title, "§5.6 (durability), §5.5 (detached execution)",
		"eos heals injected fsync failures and loses exactly the unacknowledged suffix; detached trigger firings retry through faults with zero drops")

	dir := r.Cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ode-e17-*")
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
	}

	const committers = 8
	perOps := r.Cfg.scale(3000)

	// dali baseline: no fsync to fail, so one row regardless of rate.
	d := dali.New()
	daliRate, _ := e17Throughput(d, committers, perOps, nil)
	d.Close()

	fmt.Fprintf(r.W, "%-10s %14s %14s %8s %8s %8s %10s\n",
		"fsync fail", "eos commits/s", "dali commits/s", "acked", "failed", "heals", "recovered")
	type row struct {
		rate         float64
		acked, fails int
		heals        uint64
	}
	rows := []row{{rate: 0}, {rate: 0.01}, {rate: 0.05}}
	allRecovered := true
	for i := range rows {
		rw := &rows[i]
		path := filepath.Join(dir, fmt.Sprintf("e17-%02.0f.eos", rw.rate*100))
		s := fault.NewSchedule()
		m, err := eos.Open(path, eos.Options{
			NoAutoCheckpoint: true,
			WALFile:          func(f wal.File) wal.File { return fault.Wrap(f, s) },
		})
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		if rw.rate > 0 {
			s.FailSyncRate(rw.rate, 1717+int64(i))
		}
		var lastAcked [committers]int64
		rate, acked := e17Throughput(m, committers, perOps, &lastAcked)
		st := m.Stats()
		rw.heals = st.WALHeals
		rw.acked = int(acked)
		rw.fails = committers*perOps - rw.acked

		// Crash (abandon m without Close) and reopen, faults gone:
		// exactly the acknowledged prefix must be visible.
		recovered, err := e17VerifyRecovery(path, lastAcked)
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		allRecovered = allRecovered && recovered
		verdict := "ok"
		if !recovered {
			verdict = "FAIL"
		}
		fmt.Fprintf(r.W, "%-10s %14.0f %14.0f %8d %8d %8d %10s\n",
			fmt.Sprintf("%.0f%%", rw.rate*100), rate, daliRate, rw.acked, rw.fails, rw.heals, verdict)
	}

	// Detached self-healing: dependent trigger actions under 5% fsync
	// faults plus deliberately colliding lock orders. Every firing must
	// eventually commit — exactly once, with zero drops.
	rounds := r.Cfg.scale(600)
	det, err := r.e17Detached(filepath.Join(dir, "e17-detached.eos"), rounds)
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	fmt.Fprintf(r.W, "detached under 5%% faults + lock collisions: %d firings, %d retries (retryable aborts), %d permanent errors, %d dropped, %d WAL heals\n",
		det.firings, det.retries, det.permanent, det.dropped, det.heals)

	res.Passed = allRecovered && det.dropped == 0 && det.exactlyOnce && rows[2].acked > 0
	res.Summary = fmt.Sprintf(
		"5%%-fault run: %d/%d acked, %d heals, recovery %v; detached: %d firings, %d retries, %d dropped (exactly-once=%v)",
		rows[2].acked, committers*perOps, rows[2].heals, allRecovered,
		det.firings, det.retries, det.dropped, det.exactlyOnce)
	return res
}

// e17Throughput drives committers over disjoint OIDs and returns acked
// commits/s plus the acked count. When lastAcked is non-nil, slot w
// records the highest iteration committer w saw acknowledged as durable
// (the value recovery must reproduce for committer w's object).
func e17Throughput(m storage.Manager, committers, perOps int, lastAcked *[8]int64) (float64, int64) {
	oids := make([]storage.OID, committers)
	for i := range oids {
		oid, err := m.ReserveOID()
		if err != nil {
			panic(err)
		}
		oids[i] = oid
	}
	var txnSeq atomic.Uint64
	var total atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			for i := 1; i <= perOps; i++ {
				data := []byte(fmt.Sprintf("w%d-i%d", w, i))
				ops := []storage.Op{{Kind: storage.OpWrite, OID: oids[w], Data: data}}
				if err := m.ApplyCommit(txnSeq.Add(1), ops); err != nil {
					continue // injected failure: not acknowledged
				}
				total.Add(1)
				if lastAcked != nil {
					atomic.StoreInt64(&lastAcked[w], int64(i))
				}
			}
		}(w)
	}
	close(gate)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds(), total.Load()
}

// e17VerifyRecovery reopens the crashed store and checks that each
// committer's object holds exactly its last acknowledged write.
func e17VerifyRecovery(path string, lastAcked [8]int64) (bool, error) {
	m, err := eos.Open(path, eos.Options{NoAutoCheckpoint: true})
	if err != nil {
		return false, fmt.Errorf("e17: reopen: %w", err)
	}
	defer m.Close()
	ok := true
	for w, last := range lastAcked {
		oid := storage.OID(w + 1) // ReserveOID hands out 1..committers on a fresh store
		got, err := m.Read(oid)
		if last == 0 {
			if err == nil {
				ok = false
			}
			continue
		}
		want := fmt.Sprintf("w%d-i%d", w, last)
		if err != nil || string(got) != want {
			ok = false
		}
	}
	return ok, nil
}

type e17DetachedResult struct {
	firings     uint64
	retries     uint64
	permanent   uint64
	dropped     uint64
	heals       uint64
	exactlyOnce bool
}

// e17Detached runs rounds of paired transactions whose dependent
// trigger actions increment two shared objects in opposite orders (a
// deadlock factory) over an eos store with 5% fsync failures, and
// reports the engine's retry accounting plus an exactly-once check.
func (r *Runner) e17Detached(path string, rounds int) (*e17DetachedResult, error) {
	var pokeRefs, shared [2]core.Ref
	s := fault.NewSchedule()
	store, err := eos.Open(path, eos.Options{
		NoAutoCheckpoint: true,
		WALFile:          func(f wal.File) wal.File { return fault.Wrap(f, s) },
	})
	if err != nil {
		return nil, err
	}
	cls := core.MustClass("E17Pair",
		core.Factory(func() any { return new(CredCard) }),
		core.Method("Poke", func(ctx *core.Ctx, self any, args []any) (any, error) { return nil, nil }),
		core.Method("Incr", func(ctx *core.Ctx, self any, args []any) (any, error) {
			self.(*CredCard).CurrBal++
			return nil, nil
		}),
		core.Events("after Poke"),
		core.Trigger("Mirror", "after Poke",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				first, second := shared[0], shared[1]
				if ctx.Self() == pokeRefs[1] {
					first, second = shared[1], shared[0]
				}
				if _, err := ctx.Invoke(first, "Incr"); err != nil {
					return err
				}
				// Hold the first exclusive lock long enough for the
				// opposite-order sibling to grab its own: a deadlock
				// whenever the two firings overlap.
				time.Sleep(100 * time.Microsecond)
				_, err := ctx.Invoke(second, "Incr")
				return err
			},
			core.WithCoupling(core.Dependent), core.Perpetual()),
	)
	db, err := core.NewDatabase(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	defer db.Close()
	if err := db.Register(cls); err != nil {
		return nil, err
	}
	tx := db.Begin()
	for i := range pokeRefs {
		if pokeRefs[i], err = db.Create(tx, "E17Pair", &CredCard{}); err != nil {
			return nil, err
		}
		if _, err := db.Activate(tx, pokeRefs[i], "Mirror"); err != nil {
			return nil, err
		}
		if shared[i], err = db.Create(tx, "E17Pair", &CredCard{}); err != nil {
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, fmt.Errorf("e17: detached setup: %w", err)
	}
	s.FailSyncRate(0.05, 4242)

	var committed atomic.Int64
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tx := db.Begin()
				if _, err := db.Invoke(tx, pokeRefs[i], "Poke"); err != nil {
					tx.Abort()
					return
				}
				if tx.Commit() == nil {
					committed.Add(1)
				}
			}(i)
		}
		wg.Wait()
	}

	st := db.Stats()
	out := &e17DetachedResult{
		firings:   st.FiredDependent,
		retries:   st.DetachedRetries,
		permanent: st.ActionErrors,
		dropped:   st.DetachedDropped,
		heals:     db.Txns().Store().Stats().WALHeals,
	}
	// Exactly-once: each committed detecting txn fired one action, each
	// action incremented both shared objects exactly once.
	rtx := db.Begin()
	defer rtx.Abort()
	want := float64(committed.Load())
	out.exactlyOnce = true
	for _, ref := range shared {
		v, err := db.Get(rtx, ref)
		if err != nil {
			return nil, err
		}
		if v.(*CredCard).CurrBal != want {
			out.exactlyOnce = false
		}
	}
	return out, nil
}
