package experiments

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"ode/internal/core"
	"ode/internal/repl"
	"ode/internal/server"
	"ode/internal/storage/eos"
)

// E22 measures the anti-entropy rejoin: a replica whose resume position
// was checkpoint-truncated away reconciles with coded symbols and ships
// only the divergent objects, so its rejoin cost is O(drift) — while a
// snapshot bootstrap pays O(database) no matter how little changed. The
// measured quantity is downstream bytes on the wire, counted by a
// wrapper on the replica's dial, which is machine-independent: the
// ratio snapshot/rejoin is what the BENCH_antientropy.json gate tracks.

// AntiEntropyPoint is one measured drift level.
type AntiEntropyPoint struct {
	Fraction    float64 // fraction of objects mutated since the replica left
	Objects     int     // objects that fraction works out to
	RejoinBytes int64   // downstream bytes to converge via reconciliation
}

// AntiEntropyMeasurement is the E22 data set, shared with the
// benchmark that regenerates BENCH_antientropy.json.
type AntiEntropyMeasurement struct {
	Objects       int
	SnapshotBytes int64 // downstream bytes for a fresh snapshot bootstrap
	Points        []AntiEntropyPoint
}

// countingDial returns a repl dial hook that counts downstream bytes
// into n.
func countingDial(n *atomic.Int64) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &countConn{Conn: conn, n: n}, nil
	}
}

type countConn struct {
	net.Conn
	n *atomic.Int64
}

func (c *countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func e22CopyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // a missing WAL/sidecar is a valid replica state
		}
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// copyReplica clones a replica's on-disk state (pages, log, sidecar).
func copyReplica(src, dst string) error {
	for _, suffix := range []string{"", ".wal", ".replpos"} {
		if err := e22CopyFile(src+suffix, dst+suffix); err != nil {
			return err
		}
	}
	return nil
}

// e22Converge waits until the replica has applied the primary's log.
func e22Converge(rep *repl.Replica, pm *eos.Manager) error {
	deadline := time.Now().Add(30 * time.Second)
	for rep.Status().AppliedLSN < uint64(pm.Log().End()) {
		if time.Now().After(deadline) {
			return fmt.Errorf("replica stuck at %d, primary end %d", rep.Status().AppliedLSN, pm.Log().End())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// e22Session syncs a replica over path against addr through the
// counting dial and returns the downstream bytes it took.
func e22Session(path, addr string, pm *eos.Manager, bytes *atomic.Int64) (int64, error) {
	rm, err := eos.Open(path, eos.Options{})
	if err != nil {
		return 0, err
	}
	rep, err := repl.NewReplica(addr, rm, repl.ReplicaOptions{
		PosPath:     path + ".replpos",
		RedialBase:  5 * time.Millisecond,
		RedialMax:   50 * time.Millisecond,
		ReadTimeout: 5 * time.Second,
		Dial:        countingDial(bytes),
	})
	if err != nil {
		rm.Close()
		return 0, err
	}
	start := bytes.Load()
	rep.Start()
	err = e22Converge(rep, pm)
	rep.Stop()
	total := bytes.Load() - start
	if cerr := rm.Close(); err == nil {
		err = cerr
	}
	return total, err
}

// MeasureAntiEntropy loads a primary with the given number of objects,
// measures the downstream bytes of a fresh snapshot bootstrap, then for
// each drift fraction (ascending) mutates the primary up to that
// cumulative fraction, truncates its log, and measures the bytes an
// out-of-retained-log replica needs to reconcile back.
func MeasureAntiEntropy(dir string, objects int, drifts []float64) (*AntiEntropyMeasurement, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	pm, err := eos.Open(filepath.Join(dir, "p.eos"), eos.Options{NoAutoCheckpoint: true})
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(pm)
	if err != nil {
		pm.Close()
		return nil, err
	}
	defer db.Close()
	if err := db.Register(CredCardClass()); err != nil {
		return nil, err
	}
	hub := repl.NewHub(pm, repl.HubOptions{PingInterval: 50 * time.Millisecond})
	defer hub.Close()
	srv := server.NewWithOptions(db, server.Options{
		StreamOps: map[string]server.StreamHandler{
			repl.OpSubscribe: hub.HandleSubscribe,
			repl.OpRecon:     hub.HandleRecon,
		},
	})
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	refs := make([]core.Ref, objects)
	const batch = 256
	for i := 0; i < objects; i += batch {
		tx := db.Begin()
		for j := i; j < i+batch && j < objects; j++ {
			if refs[j], err = db.Create(tx, "CredCard", &CredCard{Holder: "ae", CredLim: 1e12}); err != nil {
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	// Truncate the log so a from-zero subscriber cannot replay history:
	// the bootstrap must ship the snapshot, the rejoins must reconcile.
	if err := pm.Checkpoint(); err != nil {
		return nil, err
	}

	var wire atomic.Int64
	m := &AntiEntropyMeasurement{Objects: objects}
	bootPath := filepath.Join(dir, "boot.eos")
	if m.SnapshotBytes, err = e22Session(bootPath, addr, pm, &wire); err != nil {
		return nil, fmt.Errorf("snapshot bootstrap: %w", err)
	}

	mutated := 0
	for i, frac := range drifts {
		target := int(float64(objects)*frac + 0.999)
		if target < 1 {
			target = 1
		}
		for ; mutated < target && mutated < objects; mutated++ {
			tx := db.Begin()
			if _, err := db.Invoke(tx, refs[mutated], "Buy", 1.0); err != nil {
				return nil, err
			}
			if err := tx.Commit(); err != nil {
				return nil, err
			}
		}
		if err := pm.Checkpoint(); err != nil {
			return nil, err
		}
		rp := filepath.Join(dir, fmt.Sprintf("rejoin-%d.eos", i))
		if err := copyReplica(bootPath, rp); err != nil {
			return nil, err
		}
		bytes, err := e22Session(rp, addr, pm, &wire)
		if err != nil {
			return nil, fmt.Errorf("rejoin at %.3f drift: %w", frac, err)
		}
		m.Points = append(m.Points, AntiEntropyPoint{Fraction: frac, Objects: mutated, RejoinBytes: bytes})
	}
	return m, nil
}

// E22 reports the rejoin-bytes-proportional-to-drift shape: at small
// drift the reconciliation rejoin must be an order of magnitude cheaper
// than shipping the snapshot, and its cost must grow with drift, not
// with database size.
func (r *Runner) E22() Result {
	res := Result{ID: "E22", Title: "anti-entropy rejoin ships O(drift), not O(database)"}
	r.header("E22", res.Title, "robustness (anti-entropy)",
		"an out-of-retained-log replica reconciles divergent objects via coded symbols; rejoin bytes track drift and undercut a snapshot bootstrap ≥10x at ≤1% drift")

	objects := 4000
	drifts := []float64{0.001, 0.01, 0.1}
	minRatio := 10.0
	if r.Cfg.Quick {
		objects = 400
		drifts = []float64{0.01, 0.1}
		minRatio = 5.0
	}
	dir := r.Cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "ode-e22"); err != nil {
			res.Summary = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
	}
	m, err := MeasureAntiEntropy(filepath.Join(dir, "e22"), objects, drifts)
	if err != nil {
		res.Summary = err.Error()
		return res
	}

	fmt.Fprintf(r.W, "%d objects, snapshot bootstrap %d bytes downstream\n", m.Objects, m.SnapshotBytes)
	fmt.Fprintf(r.W, "%-8s %-10s %14s %14s %10s\n", "drift", "objects", "rejoin bytes", "snapshot", "snap/rejoin")
	monotone := true
	var prev int64
	lowRatio := 0.0
	for i, p := range m.Points {
		ratio := float64(m.SnapshotBytes) / float64(p.RejoinBytes)
		if i == 0 {
			lowRatio = ratio
		}
		if p.RejoinBytes < prev {
			monotone = false
		}
		prev = p.RejoinBytes
		fmt.Fprintf(r.W, "%-8.3f %-10d %14d %14d %10.1f\n",
			p.Fraction, p.Objects, p.RejoinBytes, m.SnapshotBytes, ratio)
	}
	res.Passed = monotone && lowRatio >= minRatio
	res.Summary = fmt.Sprintf("snapshot/rejoin %.1fx at %.1f%% drift (bar %.0fx), rejoin bytes %s with drift",
		lowRatio, m.Points[0].Fraction*100, minRatio,
		map[bool]string{true: "monotone", false: "NOT monotone"}[monotone])
	return res
}
