package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/core"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
)

// E16 measures commit throughput under concurrency: the group-commit
// claim. The paper's storage substrate must carry "many concurrent
// applications" sharing one database (§7's global events only matter
// then); with one fsync per commit, N committers pay N serialized
// fsyncs, so throughput is flat in N. Group commit coalesces the
// committers that arrive during an in-flight fsync into the next one, so
// eos throughput should *scale* with the committer count — dali (no
// durability wait) is the ceiling. A second table drives the same load
// end-to-end through ode-server with concurrent network clients.
func (r *Runner) E16() Result {
	res := Result{ID: "E16", Title: "group commit: concurrent commit throughput"}
	r.header("E16", res.Title, "§2, §5.6, §7",
		"with group commit, eos commit throughput scales with concurrent committers instead of staying flat at one fsync per commit")

	dir := r.Cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ode-e16-*")
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
	}

	counts := []int{1, 4, 16, 64}
	// Group-commit coalescing needs a moment to reach steady state (the
	// committers must overlap in the durability wait), so E16 keeps a
	// higher quick-mode floor than scale() gives and warms each store up
	// with an untimed round before measuring.
	perCommitter := 4000
	if r.Cfg.Quick {
		perCommitter = 2000
	}

	// runStore drives c committers, each ApplyCommit-ing small batches on
	// its own OID (disjoint objects: concurrency control above the
	// storage seam serializes conflicting access).
	runStore := func(m storage.Manager, c int) (commitsPerSec float64) {
		oids := make([]storage.OID, c)
		for i := range oids {
			oid, err := m.ReserveOID()
			if err != nil {
				panic(err)
			}
			oids[i] = oid
		}
		n := perCommitter
		if c == 1 {
			n *= 4 // enough work for a stable single-committer baseline
		}
		var txnSeq atomic.Uint64
		drive := func(iters int) time.Duration {
			var wg sync.WaitGroup
			gate := make(chan struct{})
			for w := 0; w < c; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-gate
					payload := make([]byte, 64)
					for i := 0; i < iters; i++ {
						ops := []storage.Op{{Kind: storage.OpWrite, OID: oids[w], Data: payload}}
						if err := m.ApplyCommit(txnSeq.Add(1), ops); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			start := time.Now()
			close(gate)
			wg.Wait()
			return time.Since(start)
		}
		drive(n / 10) // untimed warmup: reach steady-state coalescing
		elapsed := drive(n)
		return float64(c*n) / elapsed.Seconds()
	}

	fmt.Fprintf(r.W, "%-12s %14s %14s %10s %12s %12s\n",
		"committers", "eos commits/s", "dali commits/s", "fsyncs", "batch avg", "batch max")
	eosRates := map[int]float64{}
	for _, c := range counts {
		e, err := eos.Open(filepath.Join(dir, fmt.Sprintf("e16-%d.eos", c)), eos.Options{NoAutoCheckpoint: true})
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		eosRates[c] = runStore(e, c)
		st := e.Stats()
		e.Close()

		d := dali.New()
		daliRate := runStore(d, c)
		d.Close()

		avg := 0.0
		if st.Fsyncs > 0 {
			avg = float64(st.GroupCommits) / float64(st.Fsyncs)
		}
		fmt.Fprintf(r.W, "%-12d %14.0f %14.0f %10d %12.1f %12d\n",
			c, eosRates[c], daliRate, st.Fsyncs, avg, st.BatchMax)
	}

	// End-to-end: the same concurrency through ode-server's wire protocol
	// (one committing transaction per Buy), eos-backed.
	serverRate, err := r.e16Server(filepath.Join(dir, "e16-server.eos"), 16, r.Cfg.scale(2000))
	if err != nil {
		res.Summary = err.Error()
		return res
	}
	fmt.Fprintf(r.W, "ode-server, 16 concurrent clients over eos: %.0f txn/s\n", serverRate)

	speedup := eosRates[16] / eosRates[1]
	res.Passed = speedup >= 3
	res.Summary = fmt.Sprintf("eos commit throughput %.1fx at 16 committers vs 1 (group commit); server %d-client load %.0f txn/s",
		speedup, 16, serverRate)
	return res
}

// e16Server starts an in-process ode-server over an eos store and drives
// it with clients concurrent network clients, each committing perOps
// one-Buy transactions against its own card.
func (r *Runner) e16Server(path string, clients, perOps int) (txnPerSec float64, err error) {
	store, err := eos.Open(path, eos.Options{})
	if err != nil {
		return 0, err
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		store.Close()
		return 0, err
	}
	defer db.Close()
	if err := db.Register(CredCardClass()); err != nil {
		return 0, err
	}
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	refs := make([]uint64, clients)
	setup, err := server.Dial(addr)
	if err != nil {
		return 0, err
	}
	if err := setup.Begin(); err != nil {
		return 0, err
	}
	for i := range refs {
		refs[i], err = setup.Create("CredCard", &CredCard{Holder: "bench", CredLim: 1e12, GoodHist: true})
		if err != nil {
			return 0, err
		}
	}
	if err := setup.Commit(); err != nil {
		return 0, err
	}
	setup.Close()

	conns := make([]*server.Client, clients)
	for i := range conns {
		if conns[i], err = server.Dial(addr); err != nil {
			return 0, err
		}
		defer conns[i].Close()
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	gate := make(chan struct{})
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			c := conns[w]
			for i := 0; i < perOps; i++ {
				if err := c.Begin(); err != nil {
					errs <- err
					return
				}
				if _, err := c.Invoke(refs[w], "Buy", 1.0); err != nil {
					errs <- err
					return
				}
				if err := c.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	close(gate)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(clients*perOps) / elapsed.Seconds(), nil
}
