package experiments

import (
	"fmt"
	"net"
	"time"

	"ode/internal/core"
	"ode/internal/server"
	"ode/internal/shard"
	"ode/internal/storage/dali"
)

// E24 measures what horizontal sharding buys on the server workload
// (docs/SHARDING.md). One ode-server owns every object and every
// trigger firing; a shard fleet partitions the OID space on the
// consistent-hash ring, so disjoint transactions run on disjoint
// engines, disjoint stores, and disjoint backend links. The measured
// load is the E23 transaction workload with triggers active — each
// client commits begin/Buy×k/commit transactions against its own card,
// with the perpetual DenyCredit trigger evaluating its mask on every
// posting — driven through one ode-router front speaking the pipelined
// binary protocol. The router is held constant while the fleet behind
// it grows 1→2→4, so the curve isolates what partitioning adds; the
// paper's single-process design (§6) is the flat line this subsystem
// exists to bend.
//
// Node model. The paper's Ode is one process with one thread of
// control (§6): a node serves transactions serially. On real hardware
// each shard is such a node on its own machine; in this in-process
// sweep every shard would share the host's cores, which measures the
// host, not the topology. So — the same emulation move as E23's
// fixed-RTT link — each shard's store carries an emulated per-commit
// service time (dali.SetCommitPace, e24Pace): commits on one node
// serialize behind it with the CPU idle, nodes overlap freely. What
// the curve then isolates is exactly the subsystem's claim: the ring
// spreads load evenly, the router adds no serialization of its own,
// and aggregate capacity grows with the fleet. An unbalanced ring or a
// lockstep router would flatten it regardless of the pace.

// e24Window is the per-client pipelining depth through the router.
const e24Window = 32

// e24Pace is the emulated per-node transaction service time (see the
// node model above): high enough that a 4-shard fleet's frame handling
// stays far from saturating the host, so the sweep measures topology,
// not host CPU.
const e24Pace = 3 * time.Millisecond

// e24Node is one in-process shard: database, server, forwarder.
type e24Node struct {
	db  *core.Database
	srv *server.Server
	fwd *shard.Forwarder
}

// ShardEnv is a running shard fleet plus a router in front, shared by
// the E24 measurement and BenchmarkE24Shard.
type ShardEnv struct {
	nodes  []*e24Node
	router *shard.Router
	// Addr is the router's client-facing address.
	Addr string
	// Refs holds one committed card per client, spread across shards by
	// the router's create placement.
	Refs []uint64
}

// Close tears the router and every shard down.
func (e *ShardEnv) Close() {
	if e.router != nil {
		e.router.Close()
	}
	for _, n := range e.nodes {
		if n.fwd != nil {
			n.fwd.Stop()
		}
		n.srv.Close()
		n.db.Close()
	}
}

// NewShardEnv boots shards main-memory shard servers with forwarders, a
// router fronting them, and one committed card per client with the
// DenyCredit trigger active (activated through the router, so placement
// and activation both take the production path).
func NewShardEnv(shards, clients int) (*ShardEnv, error) {
	ring, err := shard.NewRing(shards, 0)
	if err != nil {
		return nil, err
	}
	env := &ShardEnv{}
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		m := dali.New()
		m.SetOIDFilter(ring.OIDFilter(i))
		m.SetCommitPace(e24Pace)
		db, err := core.NewDatabase(m)
		if err != nil {
			env.Close()
			return nil, err
		}
		db.Causes().SetNode(uint64(0xE2400 + i))
		if err := db.Register(CredCardClass()); err != nil {
			db.Close()
			env.Close()
			return nil, err
		}
		if err := db.EnableSharding(ring.OIDFilter(i)); err != nil {
			db.Close()
			env.Close()
			return nil, err
		}
		srv := server.NewWithOptions(db, server.Options{ExtraOps: shard.Ops(db, ring, i, addrs)})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			db.Close()
			env.Close()
			return nil, err
		}
		addrs[i] = addr
		env.nodes = append(env.nodes, &e24Node{db: db, srv: srv})
	}
	for i, n := range env.nodes {
		fwd, err := shard.NewForwarder(n.db, ring, shard.ForwarderOptions{Self: i, Addrs: addrs})
		if err != nil {
			env.Close()
			return nil, err
		}
		n.fwd = fwd
		go fwd.Run()
	}

	rt, err := shard.NewRouter(ring, shard.RouterOptions{Addrs: addrs})
	if err != nil {
		env.Close()
		return nil, err
	}
	env.router = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		env.Close()
		return nil, err
	}
	env.Addr = ln.Addr().String()
	go rt.Serve(ln)

	setup, err := server.DialOptions(env.Addr, server.ClientOptions{Binary: true})
	if err != nil {
		env.Close()
		return nil, err
	}
	defer setup.Close()
	env.Refs = make([]uint64, clients)
	for i := range env.Refs {
		// One transaction per card: create and activate stay on the
		// owning shard, and the router's round-robin placement spreads
		// the cards across the fleet.
		if err := setup.Begin(); err != nil {
			env.Close()
			return nil, err
		}
		env.Refs[i], err = setup.Create("CredCard", &CredCard{Holder: "bench", CredLim: 1e12, GoodHist: true})
		if err != nil {
			env.Close()
			return nil, err
		}
		if _, err := setup.Activate(env.Refs[i], "DenyCredit"); err != nil {
			env.Close()
			return nil, err
		}
		if err := setup.Commit(); err != nil {
			env.Close()
			return nil, err
		}
	}
	return env, nil
}

// MeasureShardTxns drives perTxns committed transactions per client
// through the router — each begin/Buy×opsPerTxn/commit pipelined on the
// client's own binary connection — and returns aggregate postings/s.
func (e *ShardEnv) MeasureShardTxns(perTxns, opsPerTxn int) (float64, error) {
	sessions := make([]server.Session, len(e.Refs))
	for i := range sessions {
		c, err := server.DialOptions(e.Addr, server.ClientOptions{Binary: true})
		if err != nil {
			for _, s := range sessions[:i] {
				s.Close()
			}
			return 0, err
		}
		sessions[i] = c
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	frame := opsPerTxn + 2 // begin + postings + commit
	rate, err := drive(sessions, perTxns*opsPerTxn, func(s server.Session, w int) error {
		return e24Pipelined(s, perTxns*frame, func(i int) *server.Request {
			switch i % frame {
			case 0:
				return &server.Request{Op: "begin"}
			case frame - 1:
				return &server.Request{Op: "commit"}
			default:
				return &server.Request{Op: "invoke", Ref: e.Refs[w], Method: "Buy", Args: []any{1.0}}
			}
		})
	})
	return rate, err
}

// e24Pipelined issues n requests with a sliding window of e24Window
// calls in flight, then drains (the E23 pipeline at E24's depth).
func e24Pipelined(s server.Session, n int, build func(i int) *server.Request) error {
	pending := make([]*server.Call, 0, e24Window)
	for i := 0; i < n; i++ {
		pending = append(pending, s.Go(build(i)))
		if len(pending) == e24Window {
			if _, err := pending[0].Wait(); err != nil {
				return err
			}
			pending = pending[1:]
		}
	}
	for _, c := range pending {
		if _, err := c.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// E24ShardGrid is the fleet-size axis E24 and BenchmarkE24Shard sweep.
var E24ShardGrid = []int{1, 2, 4}

// E24 measures shard-fleet throughput scaling: the E23 transaction
// workload with the DenyCredit trigger active, 16 clients through one
// router, against 1, 2, and 4 main-memory shards.
func (r *Runner) E24() Result {
	res := Result{ID: "E24", Title: "horizontal sharding: fleet throughput through one router"}
	r.header("E24", res.Title, "§6 (single-process implementation), docs/SHARDING.md",
		"partitioning the OID space across 4 shards lifts routed transaction throughput >=1.7x over one shard, triggers active")

	const clients, opsPerTxn = 16, 4
	perTxns := r.Cfg.scale(2000) / opsPerTxn

	fmt.Fprintf(r.W, "postings/s, %d clients, begin+Buy×%d+commit per txn, DenyCredit active (window %d, node service time %v):\n",
		clients, opsPerTxn, e24Window, e24Pace)
	fmt.Fprintf(r.W, "%-10s %14s %10s\n", "shards", "postings/s", "vs 1")
	rates := map[int]float64{}
	for _, shards := range E24ShardGrid {
		env, err := NewShardEnv(shards, clients)
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		rate, err := env.MeasureShardTxns(perTxns, opsPerTxn)
		env.Close()
		if err != nil {
			res.Summary = err.Error()
			return res
		}
		rates[shards] = rate
		fmt.Fprintf(r.W, "%-10d %14.0f %9.2fx\n", shards, rate, rate/rates[1])
	}

	ratio2 := rates[2] / rates[1]
	ratio4 := rates[4] / rates[1]
	res.Passed = ratio4 >= 1.7
	res.Summary = fmt.Sprintf("4 shards carry %.2fx one shard's routed throughput (2 shards %.2fx), triggers active, router constant",
		ratio4, ratio2)
	return res
}
