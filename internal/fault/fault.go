// Package fault is a deterministic fault-injection layer for the file
// beneath the write-ahead log. A *File wraps any file-like value (in
// practice *os.File) and consults a programmable Schedule before every
// operation, so tests and experiments can make failure a first-class
// input: fail the Nth fsync, tear a write at byte K, wedge-then-heal,
// or panic at a crash point to simulate a process death mid-I/O.
//
// Everything is deterministic: schedules fire on operation counts or
// byte offsets, and the probabilistic helpers draw from a caller-seeded
// generator. The same schedule over the same workload injects the same
// faults, which is what makes recovery assertions repeatable.
//
// The package has no dependencies on the rest of the repository; *File
// structurally satisfies wal.File, and wal.Open interposes it via
// wal.WithFileWrapper (eos.Options.WALFile plumbs it beneath a store).
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// Op classifies the file operations a schedule can target.
type Op uint8

const (
	// OpWrite covers Write calls (the buffered WAL appends reach the
	// file through these when the log flushes).
	OpWrite Op = iota
	// OpSync covers Sync (fsync) calls — the durability point.
	OpSync
	// OpRead covers Read calls (recovery scans).
	OpRead
	// OpTruncate covers Truncate calls (torn-tail repair, checkpoints).
	OpTruncate
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRead:
		return "read"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ErrInjected is the base error wrapped by every injected failure, so
// callers can distinguish injected faults from real I/O errors with
// errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Crash is the value panicked at a crash point. Harnesses recover it,
// abandon the wounded store, and reopen from the on-disk state — the
// in-process analog of kill -9 between two instructions.
type Crash struct {
	Op Op
	N  uint64 // the operation count at which the crash fired
}

func (c Crash) String() string { return fmt.Sprintf("fault: crash at %s #%d", c.Op, c.N) }

// Counters reports how much I/O flowed through the wrapper and how many
// faults fired.
type Counters struct {
	Writes       uint64
	Syncs        uint64
	Reads        uint64
	Truncates    uint64
	BytesWritten uint64
	Injected     uint64 // faults fired (errors and crashes)
}

// rule is one armed fault.
type rule struct {
	op    Op
	at    uint64  // fire on the at-th operation of op (1-based); 0 = off
	prob  float64 // or: fire with this probability per operation
	crash bool    // panic(Crash{...}) instead of returning an error
	once  bool    // disarm after firing (error-once-then-heal)
	err   error
}

// Schedule is a programmable fault plan shared by the arming test and
// the wrapped file. All methods are safe for concurrent use; arming
// methods return the schedule for chaining.
type Schedule struct {
	mu       sync.Mutex
	rules    []rule
	counters Counters
	rng      *rand.Rand
	tornAt   int64 // cumulative write offset at which to tear, -1 = off
}

// NewSchedule returns an empty schedule (no faults armed).
func NewSchedule() *Schedule { return &Schedule{tornAt: -1} }

// FailSyncAt arms an error on the n-th Sync call (1-based), then heals:
// subsequent syncs succeed. Chain several calls for repeated failures.
func (s *Schedule) FailSyncAt(n uint64) *Schedule {
	return s.arm(rule{op: OpSync, at: n, once: true, err: fmt.Errorf("%w: sync #%d", ErrInjected, n)})
}

// FailOpAt arms an error on the n-th call of op (1-based), healing after
// it fires.
func (s *Schedule) FailOpAt(op Op, n uint64) *Schedule {
	return s.arm(rule{op: op, at: n, once: true, err: fmt.Errorf("%w: %s #%d", ErrInjected, op, n)})
}

// FailSyncRate arms a seeded coin flip on every Sync: each call fails
// independently with probability p. Deterministic for a fixed seed and
// call sequence.
func (s *Schedule) FailSyncRate(p float64, seed int64) *Schedule {
	s.mu.Lock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(seed))
	}
	s.mu.Unlock()
	return s.arm(rule{op: OpSync, prob: p, err: fmt.Errorf("%w: sync (rate %.2f)", ErrInjected, p)})
}

// TornWriteAtByte arms a short write: the write that would carry the
// cumulative output past byte k writes only up to k and returns an
// error, leaving a torn record on disk. Fires once.
func (s *Schedule) TornWriteAtByte(k int64) *Schedule {
	s.mu.Lock()
	s.tornAt = k
	s.mu.Unlock()
	return s
}

// CrashAt arms a panic(Crash{...}) on the n-th call of op (1-based) —
// the operation does not execute. Use with recover in a harness.
func (s *Schedule) CrashAt(op Op, n uint64) *Schedule {
	return s.arm(rule{op: op, at: n, once: true, crash: true})
}

func (s *Schedule) arm(r rule) *Schedule {
	s.mu.Lock()
	s.rules = append(s.rules, r)
	s.mu.Unlock()
	return s
}

// Counters returns a snapshot of the operation and fault counters.
func (s *Schedule) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// check bumps the op counter and returns the injected error, if any.
// Crash rules panic. Caller must not hold s.mu.
func (s *Schedule) check(op Op, n uint64) error {
	s.mu.Lock()
	for i := range s.rules {
		r := &s.rules[i]
		if r.op != op {
			continue
		}
		fire := (r.at != 0 && r.at == n) || (r.prob > 0 && s.rng != nil && s.rng.Float64() < r.prob)
		if !fire {
			continue
		}
		s.counters.Injected++
		if r.once {
			r.at = 0
			r.prob = 0
		}
		if r.crash {
			s.mu.Unlock()
			panic(Crash{Op: op, N: n})
		}
		err := r.err
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	return nil
}

// Under is the file access the wrapper needs; *os.File satisfies it.
type Under interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// File wraps an Under and injects the faults its Schedule arms. It
// structurally satisfies wal.File.
type File struct {
	f Under
	s *Schedule
}

// Wrap interposes schedule s on f.
func Wrap(f Under, s *Schedule) *File { return &File{f: f, s: s} }

// Write counts the call, applies any armed torn-write or write fault,
// and forwards to the underlying file.
func (w *File) Write(p []byte) (int, error) {
	w.s.mu.Lock()
	w.s.counters.Writes++
	n := w.s.counters.Writes
	// Torn write: the write crossing the armed byte offset is cut short.
	if w.s.tornAt >= 0 && int64(w.s.counters.BytesWritten)+int64(len(p)) > w.s.tornAt {
		keep := w.s.tornAt - int64(w.s.counters.BytesWritten)
		if keep < 0 {
			keep = 0
		}
		w.s.tornAt = -1
		w.s.counters.Injected++
		w.s.counters.BytesWritten += uint64(keep)
		w.s.mu.Unlock()
		wrote, _ := w.f.Write(p[:keep])
		return wrote, fmt.Errorf("%w: torn write (%d of %d bytes)", ErrInjected, wrote, len(p))
	}
	w.s.mu.Unlock()
	if err := w.s.check(OpWrite, n); err != nil {
		return 0, err
	}
	wrote, err := w.f.Write(p)
	w.s.mu.Lock()
	w.s.counters.BytesWritten += uint64(wrote)
	w.s.mu.Unlock()
	return wrote, err
}

// Sync counts the call and applies any armed sync fault before
// forwarding.
func (w *File) Sync() error {
	w.s.mu.Lock()
	w.s.counters.Syncs++
	n := w.s.counters.Syncs
	w.s.mu.Unlock()
	if err := w.s.check(OpSync, n); err != nil {
		return err
	}
	return w.f.Sync()
}

// Read counts the call and forwards (read faults target recovery scans).
func (w *File) Read(p []byte) (int, error) {
	w.s.mu.Lock()
	w.s.counters.Reads++
	n := w.s.counters.Reads
	w.s.mu.Unlock()
	if err := w.s.check(OpRead, n); err != nil {
		return 0, err
	}
	return w.f.Read(p)
}

// Seek forwards untouched (no schedule targets seeks).
func (w *File) Seek(offset int64, whence int) (int64, error) { return w.f.Seek(offset, whence) }

// Truncate counts the call and applies any armed truncate fault.
func (w *File) Truncate(size int64) error {
	w.s.mu.Lock()
	w.s.counters.Truncates++
	n := w.s.counters.Truncates
	w.s.mu.Unlock()
	if err := w.s.check(OpTruncate, n); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

// Close forwards untouched: a harness must always be able to release
// the descriptor.
func (w *File) Close() error { return w.f.Close() }
