package torture

import "testing"

func TestLinkSweep(t *testing.T) {
	cfg := Config{Objects: 3, Txns: 10}
	res, err := LinkSweep(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cuts == 0 || res.Corruptions == 0 {
		t.Fatalf("sweep injected nothing: %+v", res)
	}
	// Both the bootstrap stream and the rejoin must have been attacked
	// at more than one boundary each, or the sweep is vacuous.
	if res.Iterations < 8 {
		t.Fatalf("sweep covered only %d fault positions: %+v", res.Iterations, res)
	}
	t.Logf("link sweep: %+v", res)
}
