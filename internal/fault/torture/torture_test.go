package torture

import "testing"

// TestTruncationSweep is the core torture run: recovery must be correct
// at every record boundary and inside every record of the workload log.
func TestTruncationSweep(t *testing.T) {
	res, err := Sweep(t.TempDir(), Config{Objects: 3, Txns: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 24 {
		t.Fatalf("commits = %d, want 24", res.Commits)
	}
	// Sanity on coverage: the log must contain at least one record per
	// transaction plus its commit record, and the sweep must have hit
	// both boundary and intra-record offsets.
	if res.Records < 48 {
		t.Fatalf("only %d records in the workload log", res.Records)
	}
	if res.Boundaries < res.Records || res.MidRecord < res.Records {
		t.Fatalf("coverage too thin: %d boundary + %d mid-record points over %d records",
			res.Boundaries, res.MidRecord, res.Records)
	}
	t.Logf("verified %d boundary + %d mid-record truncation points over %d records",
		res.Boundaries, res.MidRecord, res.Records)
}

// TestSyncFaultTorture injects a 20%% fsync failure rate: the store must
// self-heal and keep committing, and after a crash the recovered state
// must be exactly the acknowledged prefix.
func TestSyncFaultTorture(t *testing.T) {
	res, err := SyncFaults(t.TempDir(), Config{Objects: 4, Txns: 80}, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatal("no injected failures at rate 0.2 — the schedule is not biting")
	}
	if res.Acked == 0 {
		t.Fatal("no transaction survived: self-healing is not working")
	}
	t.Logf("acked %d, failed %d under 20%% fsync faults", res.Acked, res.Failed)
}

// TestCrashPointPanics simulates power loss at programmed fsyncs. Every
// left-behind state must recover with trigger effects consistent.
func TestCrashPointPanics(t *testing.T) {
	crashes, err := CrashPoints(t.TempDir(), Config{Objects: 2, Txns: 12}, []uint64{1, 2, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if crashes == 0 {
		t.Fatal("no crash point fired")
	}
	t.Logf("%d crash points exercised", crashes)
}
