package torture

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"ode/internal/storage"
	"ode/internal/storage/eos"
	"ode/internal/wal"
)

// This file extends the torture harness to the replication path: the
// link between primary and replica is "cut" at every record boundary of
// the primary's log, and at each cut the replica must satisfy the
// replication invariants:
//
//  1. The replica's store is byte-identical to a model replay of the
//     primary's durable prefix up to the cut: committed transactions
//     only, applied in commit order. No torn transaction is ever
//     visible, no committed one is lost.
//  2. Trigger FSM state on the replica is never ahead of committed
//     object state (the same Fired == Count invariant recovery must
//     uphold — the replica applies through the identical log-ordered
//     path, so a promoted replica resumes detection from consistent
//     state).
//  3. After the link "heals", resuming from the replica's durable
//     position — the last applied commit boundary, exactly what the
//     stream's sidecar records — converges the replica to the full
//     log's replay, re-applying any overlap idempotently.
//
// The sweep drives the replica's apply semantics directly (per-record
// grouping by transaction, ApplyReplicated at each commit record, the
// resume position advancing only at commit boundaries), which is the
// same algorithm internal/repl's Replica runs on wire frames; the
// TCP/framing layer itself is exercised by that package's live
// link-flap tests.

// ReplSweepResult reports what a replication sweep covered.
type ReplSweepResult struct {
	Commits int // acknowledged workload transactions on the primary
	Records int // records in the shipped log
	Cuts    int // link-cut points verified (every boundary + end)
}

// replicaApplyRange feeds records whose extents lie in [from, to) to
// the store the way the replication stream would: ops buffer per
// transaction and commit through ApplyReplicated. It returns the
// replica's durable resume position — the boundary after the last
// applied commit, or `to` when no transaction was left in flight.
func replicaApplyRange(m *eos.Manager, recs []wal.Record, starts []int64, logEnd, from, to int64) (resume int64, err error) {
	pending := make(map[uint64][]storage.Op)
	resume = from
	for i := range recs {
		s := starts[i]
		e := logEnd
		if i+1 < len(starts) {
			e = starts[i+1]
		}
		if s < from || e > to {
			continue
		}
		rec := &recs[i]
		switch rec.Type {
		case wal.RecUpdate, wal.RecAllocate:
			data := append([]byte(nil), rec.Data...)
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpWrite, OID: storage.OID(rec.OID), Data: data})
		case wal.RecFree:
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpFree, OID: storage.OID(rec.OID)})
		case wal.RecCommit:
			ops := pending[rec.Txn]
			delete(pending, rec.Txn)
			if err := m.ApplyReplicated(rec.Txn, ops); err != nil {
				return 0, fmt.Errorf("apply txn %d: %w", rec.Txn, err)
			}
			resume = e
		case wal.RecCheckpoint:
			// Primary checkpoint marker: nothing to apply.
		}
	}
	if len(pending) == 0 {
		resume = to
	}
	return resume, nil
}

// compareStore checks that the live objects in m are exactly `want`,
// byte for byte.
func compareStore(m *eos.Manager, want map[storage.OID][]byte, cut int64) error {
	got := make(map[storage.OID][]byte)
	if err := m.Iterate(func(oid storage.OID, data []byte) error {
		got[oid] = append([]byte(nil), data...)
		return nil
	}); err != nil {
		return fmt.Errorf("cut=%d: iterate replica: %w", cut, err)
	}
	for oid, w := range want {
		g, ok := got[oid]
		if !ok {
			return fmt.Errorf("cut=%d: oid %d committed on primary but missing on replica", cut, oid)
		}
		if !bytes.Equal(g, w) {
			return fmt.Errorf("cut=%d: oid %d image diverges between replica and durable-prefix replay", cut, oid)
		}
	}
	for oid := range got {
		if _, ok := want[oid]; !ok {
			return fmt.Errorf("cut=%d: oid %d on replica but not committed in the primary's durable prefix", cut, oid)
		}
	}
	return nil
}

// prefixModel replays the first t bytes of the primary's log (always a
// record boundary here) into the expected object map.
func prefixModel(dir string, walBytes []byte, t int64) (map[storage.OID][]byte, error) {
	p := filepath.Join(dir, "prefix.wal")
	if err := os.WriteFile(p, walBytes[:t], 0o644); err != nil {
		return nil, err
	}
	return replayModel(p)
}

// ReplSweep runs the trigger workload on a primary, then replays the
// resulting log into a fresh replica cut at every record boundary,
// verifying the three replication invariants at each cut (see the file
// comment). The replica store is closed and reopened between the cut
// and the resume, so the resumed stream also crosses a replica restart.
func ReplSweep(dir string, cfg Config) (*ReplSweepResult, error) {
	cfg = cfg.withDefaults()
	path := filepath.Join(dir, "work.eos")
	acked, err := workload(path, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	res := &ReplSweepResult{}
	for _, n := range acked {
		res.Commits += n
	}
	if res.Commits != cfg.Txns {
		return nil, fmt.Errorf("torture: fault-free workload acked %d/%d txns", res.Commits, cfg.Txns)
	}
	walBytes, err := os.ReadFile(path + ".wal")
	if err != nil {
		return nil, err
	}

	// Decode the shipped records and their extents from a scratch copy.
	scratch := filepath.Join(dir, "repl-extents.wal")
	if err := os.WriteFile(scratch, walBytes, 0o644); err != nil {
		return nil, err
	}
	l, err := wal.Open(scratch)
	if err != nil {
		return nil, err
	}
	var starts []int64
	var recs []wal.Record
	if err := l.Scan(func(lsn wal.LSN, rec *wal.Record) error {
		starts = append(starts, int64(lsn))
		recs = append(recs, wal.Record{
			Type: rec.Type, Txn: rec.Txn, OID: rec.OID,
			Data: append([]byte(nil), rec.Data...),
		})
		return nil
	}); err != nil {
		l.Close()
		return nil, err
	}
	logEnd := l.Size()
	l.Close()
	if len(starts) == 0 {
		return nil, fmt.Errorf("torture: workload produced an empty log")
	}
	res.Records = len(recs)

	fullWant, err := prefixModel(dir, walBytes, logEnd)
	if err != nil {
		return nil, err
	}

	cuts := append(append([]int64(nil), starts...), logEnd)
	replDir := filepath.Join(dir, "replica")
	for _, t := range cuts {
		if err := verifyCut(replDir, recs, starts, logEnd, t, walBytes, fullWant, dir); err != nil {
			return nil, err
		}
		res.Cuts++
	}
	return res, nil
}

// verifyCut materializes one link-cut state and checks all three
// invariants for it.
func verifyCut(replDir string, recs []wal.Record, starts []int64, logEnd, t int64, walBytes []byte, fullWant map[storage.OID][]byte, dir string) error {
	if err := os.MkdirAll(replDir, 0o755); err != nil {
		return err
	}
	defer os.RemoveAll(replDir)
	rp := filepath.Join(replDir, "r.eos")
	opts := eos.Options{CacheSize: cachePages, NoAutoCheckpoint: true}

	// Stream [0, t), then the link cuts.
	m, err := eos.Open(rp, opts)
	if err != nil {
		return fmt.Errorf("cut=%d: open replica: %w", t, err)
	}
	resume, err := replicaApplyRange(m, recs, starts, logEnd, 0, t)
	if err != nil {
		m.Close()
		return fmt.Errorf("cut=%d: %w", t, err)
	}

	// Invariant 1: replica == durable-prefix replay at the cut.
	want, err := prefixModel(dir, walBytes, t)
	if err != nil {
		m.Close()
		return err
	}
	if err := compareStore(m, want, t); err != nil {
		m.Close()
		return err
	}
	if err := m.Close(); err != nil {
		return fmt.Errorf("cut=%d: close replica: %w", t, err)
	}

	// Invariant 2: trigger FSM state at the cut is consistent with the
	// committed objects (vacuous before the setup commit lands).
	m2, err := eos.Open(rp, opts)
	if err != nil {
		return fmt.Errorf("cut=%d: reopen replica: %w", t, err)
	}
	if err := verifyTriggerConsistency(m2, t); err != nil {
		return fmt.Errorf("cut=%d: %w", t, err)
	}

	// Invariant 3: the link heals — resume from the replica's durable
	// position (a commit boundary ≤ cut; the overlap re-applies
	// idempotently) and converge to the full log's state.
	m3, err := eos.Open(rp, opts)
	if err != nil {
		return fmt.Errorf("cut=%d: reopen for resume: %w", t, err)
	}
	if _, err := replicaApplyRange(m3, recs, starts, logEnd, resume, logEnd); err != nil {
		m3.Close()
		return fmt.Errorf("cut=%d: resume: %w", t, err)
	}
	if err := compareStore(m3, fullWant, t); err != nil {
		m3.Close()
		return fmt.Errorf("after resume: %w", err)
	}
	return verifyTriggerConsistency(m3, t)
}
