package torture

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ode/internal/core"
	"ode/internal/fault"
	"ode/internal/repl"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/eos"
)

// This file runs the link torture LIVE: where repl.go's ReplSweep
// drives the replica's apply semantics directly over decoded records,
// LinkSweep stands up a real primary (store + database + hub + TCP
// server) and a real Replica dialling through a fault.NetPlan, and
// attacks the actual wire session — cutting the link after every
// downstream frame, flipping a byte inside every frame, and delivering
// frames twice — while the trigger workload commits. After the armed
// fault fires and the link heals (the replica's own redial loop), the
// replica must converge byte-exact with the primary and the trigger
// FSM invariant (Fired == Count, activation intact) must hold: the
// fault may cost time, never state.
//
// Each mode is swept twice: once against the bootstrap/live stream and
// once against the anti-entropy rejoin (the replica's resume position
// is checkpoint-truncated away first, so reconnection goes through the
// coded-symbol reconciliation path instead of the log).

// LinkSweepResult reports what a live link sweep covered.
type LinkSweepResult struct {
	Iterations  int    // fault positions exercised across all modes
	Cuts        uint64 // link cuts that fired
	Corruptions uint64 // in-frame byte flips that fired
	Duplicates  uint64 // frames delivered twice
	Frames      uint64 // downstream frames observed in total
}

// maxLinkFrames caps each mode's sweep; every observed session is far
// shorter, so the cap only guards against a runaway stream.
const maxLinkFrames = 64

// LinkSweep sweeps every frame boundary of the live replication
// session with each fault mode and returns what it covered. Any
// violated invariant aborts with the mode and frame position.
func LinkSweep(dir string, cfg Config) (*LinkSweepResult, error) {
	cfg = cfg.withDefaults()
	res := &LinkSweepResult{}
	modes := []struct {
		name   string
		rejoin bool // arm the plan against the rejoin, not the bootstrap
		arm    func(p *fault.NetPlan, n uint64)
	}{
		{"cut", false, func(p *fault.NetPlan, n uint64) { p.CutAfterFrames(n).DuplicateFrames(0.1) }},
		{"corrupt", false, func(p *fault.NetPlan, n uint64) { p.CorruptFrame(n) }},
		{"cut-rejoin", true, func(p *fault.NetPlan, n uint64) { p.CutAfterFrames(n) }},
		{"corrupt-rejoin", true, func(p *fault.NetPlan, n uint64) { p.CorruptFrame(n) }},
	}
	for _, mode := range modes {
		for n := uint64(1); n <= maxLinkFrames; n++ {
			plan := fault.NewNetPlan(int64(n))
			mode.arm(plan, n)
			iterDir := filepath.Join(dir, fmt.Sprintf("%s-%d", mode.name, n))
			if err := os.MkdirAll(iterDir, 0o755); err != nil {
				return res, err
			}
			err := linkIteration(iterDir, cfg, plan, mode.rejoin)
			os.RemoveAll(iterDir)
			if err != nil {
				return res, fmt.Errorf("torture: %s at frame %d: %w", mode.name, n, err)
			}
			res.Iterations++
			c := plan.Counters()
			res.Duplicates += c.Duplicates
			res.Frames += c.Frames
			res.Cuts += c.Cuts
			res.Corruptions += c.Corruptions
			if !plan.Fired() {
				// The attacked stream had fewer than n frames: every
				// boundary of this mode is covered.
				break
			}
		}
	}
	return res, nil
}

// linkIteration runs one primary+replica session with plan interposed
// on the replica's dials. With rejoin=false the plan attacks the
// initial sync and live stream; with rejoin=true the initial sync runs
// clean, the replica is stopped, the primary drifts and checkpoints
// its log away, and the plan attacks the anti-entropy rejoin.
func linkIteration(dir string, cfg Config, plan *fault.NetPlan, rejoin bool) error {
	pm, err := eos.Open(filepath.Join(dir, "p.eos"), eos.Options{NoAutoCheckpoint: true})
	if err != nil {
		return err
	}
	db, err := core.NewDatabase(pm)
	if err != nil {
		pm.Close()
		return err
	}
	defer db.Close()
	if err := db.Register(tortureClass()); err != nil {
		return err
	}
	hub := repl.NewHub(pm, repl.HubOptions{PingInterval: 20 * time.Millisecond})
	defer hub.Close()
	srv := server.NewWithOptions(db, server.Options{
		StreamOps: map[string]server.StreamHandler{
			repl.OpSubscribe: hub.HandleSubscribe,
			repl.OpRecon:     hub.HandleRecon,
		},
	})
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}

	rp := filepath.Join(dir, "r.eos")
	ropts := repl.ReplicaOptions{
		PosPath:     rp + ".replpos",
		RedialBase:  2 * time.Millisecond,
		RedialMax:   20 * time.Millisecond,
		ReadTimeout: time.Second,
	}
	if !rejoin {
		ropts.Dial = plan.Dialer()
	}
	rm, err := eos.Open(rp, eos.Options{})
	if err != nil {
		return err
	}
	rep, err := repl.NewReplica(addr, rm, ropts)
	if err != nil {
		rm.Close()
		return err
	}
	rep.Start()

	// The workload commits while the (possibly faulted) stream runs.
	refs := make([]core.Ref, cfg.Objects)
	tx := db.Begin()
	for i := range refs {
		if refs[i], err = db.Create(tx, "TAcct", &TAcct{}); err != nil {
			return err
		}
		if err := db.ClusterAdd(tx, clusterName, refs[i]); err != nil {
			return err
		}
		if _, err := db.Activate(tx, refs[i], "Mirror"); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	for i := 0; i < cfg.Txns; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, refs[i%cfg.Objects], "Bump"); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	if err := waitConverged(rep, pm); err != nil {
		rep.Stop()
		rm.Close()
		return fmt.Errorf("initial sync: %w", err)
	}
	rep.Stop()

	if rejoin {
		// Drift the primary past the replica and truncate the log, so
		// resume is impossible and reconnection must reconcile — with
		// the plan now attacking those frames.
		for i := 0; i < cfg.Objects; i++ {
			tx := db.Begin()
			if _, err := db.Invoke(tx, refs[i], "Bump"); err != nil {
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		if err := pm.Checkpoint(); err != nil {
			return err
		}
		if pm.Log().Base() == 0 {
			return fmt.Errorf("checkpoint retained the log; rejoin would resume, not reconcile")
		}
		ropts.Dial = plan.Dialer()
		if err := rm.Close(); err != nil {
			return err
		}
		if rm, err = eos.Open(rp, eos.Options{}); err != nil {
			return err
		}
		if rep, err = repl.NewReplica(addr, rm, ropts); err != nil {
			rm.Close()
			return err
		}
		rep.Start()
		if err := waitConverged(rep, pm); err != nil {
			rep.Stop()
			rm.Close()
			return fmt.Errorf("rejoin: %w", err)
		}
		rep.Stop()
	}
	if err := rm.Close(); err != nil {
		return err
	}

	// Byte-exact convergence against the live primary's object state,
	// then the FSM invariant on a fresh reopen of the replica files.
	want := make(map[storage.OID][]byte)
	if err := pm.Iterate(func(oid storage.OID, data []byte) error {
		want[oid] = append([]byte(nil), data...)
		return nil
	}); err != nil {
		return err
	}
	vm, err := eos.Open(rp, eos.Options{})
	if err != nil {
		return fmt.Errorf("reopen replica for verify: %w", err)
	}
	if err := compareStore(vm, want, int64(plan.Counters().Frames)); err != nil {
		vm.Close()
		return err
	}
	return verifyTriggerConsistency(vm, int64(plan.Counters().Frames))
}

// waitConverged waits until the replica has applied the primary's full
// log. The armed faults cost redials, so the deadline is generous.
func waitConverged(rep *repl.Replica, pm *eos.Manager) error {
	deadline := time.Now().Add(20 * time.Second)
	for {
		if rep.Status().AppliedLSN >= uint64(pm.Log().End()) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica stuck at %d, primary log end %d", rep.Status().AppliedLSN, pm.Log().End())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
