package torture

import "testing"

// TestReplSweep cuts the replication link at every record boundary of
// the primary's log: at each cut the replica must equal the replay of
// the durable prefix, its trigger state must be consistent, and a
// resumed stream must converge it to the full log's state.
func TestReplSweep(t *testing.T) {
	res, err := ReplSweep(t.TempDir(), Config{Objects: 3, Txns: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 20 {
		t.Fatalf("commits = %d, want 20", res.Commits)
	}
	// One cut per record boundary plus the log end.
	if res.Cuts != res.Records+1 {
		t.Fatalf("cuts = %d, want %d (every boundary + end)", res.Cuts, res.Records+1)
	}
	t.Logf("verified %d link-cut points over %d records", res.Cuts, res.Records)
}
