// Package torture is the crash-torture harness: it drives a trigger
// workload against an eos-backed database, then attacks the resulting
// write-ahead log — truncating it at every record boundary and at
// offsets inside every record, injecting fsync failures, and panicking
// at programmed crash points — and after each attack reopens the store
// and checks the recovery invariants:
//
//  1. Pool state equals the replay of the durable log prefix: the set
//     of live objects and their images after reopen is byte-identical
//     to applying the committed transactions of the surviving log, in
//     commit-record order.
//  2. Trigger FSM state is never ahead of committed object state: the
//     workload's immediate trigger mirrors each object mutation in the
//     same transaction, so any recovered object must show
//     Fired == Count, and its perpetual activation must still exist.
//
// The workload runs with checkpointing off and a cache large enough
// that no page is ever evicted, so the page file stays header-only and
// every log truncation point is a physically reachable crash state.
package torture

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"ode/internal/core"
	"ode/internal/fault"
	"ode/internal/storage"
	"ode/internal/storage/eos"
	"ode/internal/wal"
)

// Config sizes the trigger workload.
type Config struct {
	Objects int // objects in the torture cluster
	Txns    int // user transactions (one Bump each, round-robin)
}

func (c Config) withDefaults() Config {
	if c.Objects <= 0 {
		c.Objects = 4
	}
	if c.Txns <= 0 {
		c.Txns = 30
	}
	return c
}

const (
	clusterName = "torture"
	// cachePages is large enough that the workload never evicts a page:
	// eviction would flush post-crash-point data into the page file and
	// make log truncation an unreachable crash state.
	cachePages = 4096
)

// TAcct is the workload object. Count moves in the method body, Fired
// in the immediate trigger's action — always in the same transaction,
// so committed state must have them equal at every recovery point.
type TAcct struct {
	Count int
	Fired int
}

func tortureClass() *core.Class {
	return core.MustClass("TAcct",
		core.Factory(func() any { return new(TAcct) }),
		core.Method("Bump", func(ctx *core.Ctx, self any, args []any) (any, error) {
			self.(*TAcct).Count++
			return nil, nil
		}),
		core.Method("MarkFired", func(ctx *core.Ctx, self any, args []any) (any, error) {
			self.(*TAcct).Fired++
			return nil, nil
		}),
		core.Events("after Bump"),
		core.Trigger("Mirror", "after Bump",
			func(ctx *core.Ctx, self any, act *core.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "MarkFired")
				return err
			},
			core.Perpetual()),
	)
}

// workload opens the store at path (wrapping the WAL file with schedule
// when non-nil), registers the class, creates the cluster, and runs the
// Bump transactions. acked[i] counts the durably acknowledged bumps of
// object i. The store is NOT closed: the caller either crashes (copies
// the files) or abandons it.
func workload(path string, cfg Config, schedule *fault.Schedule, arm func()) (acked []int, err error) {
	opts := eos.Options{CacheSize: cachePages, NoAutoCheckpoint: true}
	if schedule != nil {
		opts.WALFile = func(f wal.File) wal.File { return fault.Wrap(f, schedule) }
	}
	m, err := eos.Open(path, opts)
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	if err := db.Register(tortureClass()); err != nil {
		return nil, err
	}
	refs := make([]core.Ref, cfg.Objects)
	tx := db.Begin()
	for i := range refs {
		if refs[i], err = db.Create(tx, "TAcct", &TAcct{}); err != nil {
			return nil, err
		}
		if err := db.ClusterAdd(tx, clusterName, refs[i]); err != nil {
			return nil, err
		}
		if _, err := db.Activate(tx, refs[i], "Mirror"); err != nil {
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, fmt.Errorf("torture: setup commit: %w", err)
	}
	if arm != nil {
		arm() // faults start only after the clean setup commit
	}
	acked = make([]int, cfg.Objects)
	for i := 0; i < cfg.Txns; i++ {
		obj := i % cfg.Objects
		tx := db.Begin()
		if _, err := db.Invoke(tx, refs[obj], "Bump"); err != nil {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err == nil {
			acked[obj]++
		}
	}
	// Crash invariant: nothing may have leaked into the page file, or
	// truncating the log would not be a reachable crash state.
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() > eos.PageSize {
		return nil, fmt.Errorf("torture: page file grew to %d bytes (eviction or checkpoint ran); truncation states would be unreachable", st.Size())
	}
	return acked, nil
}

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// replayModel computes the object state a correct recovery must
// reconstruct from the log at walPath: committed transactions only,
// applied at their commit records, in commit order. Opening the log
// heals a torn tail exactly as recovery would.
func replayModel(walPath string) (map[storage.OID][]byte, error) {
	l, err := wal.Open(walPath)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	model := make(map[storage.OID][]byte)
	pending := make(map[uint64][]storage.Op)
	err = l.Scan(func(_ wal.LSN, rec *wal.Record) error {
		switch rec.Type {
		case wal.RecUpdate, wal.RecAllocate:
			data := append([]byte(nil), rec.Data...)
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpWrite, OID: storage.OID(rec.OID), Data: data})
		case wal.RecFree:
			pending[rec.Txn] = append(pending[rec.Txn], storage.Op{Kind: storage.OpFree, OID: storage.OID(rec.OID)})
		case wal.RecCommit:
			for _, op := range pending[rec.Txn] {
				if op.Kind == storage.OpWrite {
					model[op.OID] = op.Data
				} else {
					delete(model, op.OID)
				}
			}
			delete(pending, rec.Txn)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return model, nil
}

// verifyPoint materializes the crash state "page file + log prefix of T
// bytes" in its own directory, reopens, and checks both invariants.
func verifyPoint(pagePath string, walBytes []byte, t int64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dst := filepath.Join(dir, "s.eos")
	if err := copyFile(pagePath, dst); err != nil {
		return err
	}
	if err := os.WriteFile(dst+".wal", walBytes[:t], 0o644); err != nil {
		return err
	}

	want, err := replayModel(dst + ".wal")
	if err != nil {
		return fmt.Errorf("t=%d: model replay: %w", t, err)
	}
	m, err := eos.Open(dst, eos.Options{CacheSize: cachePages, NoAutoCheckpoint: true})
	if err != nil {
		return fmt.Errorf("t=%d: reopen: %w", t, err)
	}
	got := make(map[storage.OID][]byte)
	if err := m.Iterate(func(oid storage.OID, data []byte) error {
		got[oid] = append([]byte(nil), data...)
		return nil
	}); err != nil {
		m.Close()
		return fmt.Errorf("t=%d: iterate: %w", t, err)
	}
	for oid, w := range want {
		g, ok := got[oid]
		if !ok {
			m.Close()
			return fmt.Errorf("t=%d: oid %d in durable prefix but missing after recovery", t, oid)
		}
		if !bytes.Equal(g, w) {
			m.Close()
			return fmt.Errorf("t=%d: oid %d image diverges from durable-prefix replay", t, oid)
		}
	}
	for oid := range got {
		if _, ok := want[oid]; !ok {
			m.Close()
			return fmt.Errorf("t=%d: oid %d visible after recovery but not in durable prefix", t, oid)
		}
	}
	return verifyTriggerConsistency(m, t)
}

// verifyTriggerConsistency opens a database over the recovered store and
// checks invariant 2 for every cluster member. It closes the store.
func verifyTriggerConsistency(m *eos.Manager, t int64) error {
	db, err := core.NewDatabase(m)
	if err != nil {
		m.Close()
		return fmt.Errorf("t=%d: core reopen: %w", t, err)
	}
	defer db.Close()
	if err := db.Register(tortureClass()); err != nil {
		return fmt.Errorf("t=%d: re-register: %w", t, err)
	}
	tx := db.Begin()
	defer tx.Abort()
	return db.ClusterScan(tx, clusterName, func(ref core.Ref) error {
		v, err := db.Get(tx, ref)
		if err != nil {
			return fmt.Errorf("t=%d: get %v: %w", t, ref, err)
		}
		a := v.(*TAcct)
		if a.Fired != a.Count {
			return fmt.Errorf("t=%d: %v recovered Fired=%d Count=%d; trigger effects diverged from object state", t, ref, a.Fired, a.Count)
		}
		infos, err := db.ActiveTriggers(tx, ref)
		if err != nil {
			return fmt.Errorf("t=%d: triggers on %v: %w", t, ref, err)
		}
		if len(infos) != 1 || infos[0].Trigger != "Mirror" {
			return fmt.Errorf("t=%d: %v has activations %+v, want the one perpetual Mirror", t, ref, infos)
		}
		return nil
	})
}

// SweepResult reports what a truncation sweep covered.
type SweepResult struct {
	Commits    int // acknowledged workload transactions
	Records    int // records in the attacked log
	Boundaries int // record-boundary truncation points verified
	MidRecord  int // intra-record truncation points verified
}

// Sweep runs the workload in dir, then verifies recovery at every
// record boundary of the resulting log and at offsets inside every
// record (first byte of the record body and the record midpoint).
func Sweep(dir string, cfg Config) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	path := filepath.Join(dir, "work.eos")
	acked, err := workload(path, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{}
	for _, n := range acked {
		res.Commits += n
	}
	if res.Commits != cfg.Txns {
		return nil, fmt.Errorf("torture: fault-free workload acked %d/%d txns", res.Commits, cfg.Txns)
	}
	walBytes, err := os.ReadFile(path + ".wal")
	if err != nil {
		return nil, err
	}

	// Record extents, from a scratch copy (Open may truncate in place).
	scratch := filepath.Join(dir, "extents.wal")
	if err := os.WriteFile(scratch, walBytes, 0o644); err != nil {
		return nil, err
	}
	l, err := wal.Open(scratch)
	if err != nil {
		return nil, err
	}
	var starts []int64
	if err := l.Scan(func(lsn wal.LSN, _ *wal.Record) error {
		starts = append(starts, int64(lsn))
		return nil
	}); err != nil {
		l.Close()
		return nil, err
	}
	end := l.Size()
	l.Close()
	if len(starts) == 0 {
		return nil, fmt.Errorf("torture: workload produced an empty log")
	}
	res.Records = len(starts)

	points := make(map[int64]bool) // point -> is mid-record
	for i, s := range starts {
		e := end
		if i+1 < len(starts) {
			e = starts[i+1]
		}
		points[s] = false
		if s+1 < e {
			points[s+1] = true // torn inside the record header
		}
		if mid := s + (e-s)/2; mid > s && mid < e {
			points[mid] = true // torn mid-record
		}
	}
	points[end] = false

	pointDir := filepath.Join(dir, "points")
	for t, mid := range points {
		if err := verifyPoint(path, walBytes, t, pointDir); err != nil {
			return nil, err
		}
		if mid {
			res.MidRecord++
		} else {
			res.Boundaries++
		}
	}
	return res, nil
}

// FaultResult reports a sync-fault torture run.
type FaultResult struct {
	Acked  int    // transactions acknowledged committed
	Failed int    // transactions that observed an injected failure
	Heals  uint64 // WAL heals the store performed to keep going
}

// SyncFaults runs the workload with fsync failing at the given rate
// (deterministically, from seed), relying on the store's self-healing
// to keep committing, then crashes and verifies that recovered state is
// exactly the acknowledged prefix: every acked bump present, every
// failed bump absent, trigger effects in lockstep.
func SyncFaults(dir string, cfg Config, rate float64, seed int64) (*FaultResult, error) {
	cfg = cfg.withDefaults()
	path := filepath.Join(dir, "faulty.eos")
	s := fault.NewSchedule()
	acked, err := workload(path, cfg, s, func() { s.FailSyncRate(rate, seed) })
	if err != nil {
		return nil, err
	}
	res := &FaultResult{}
	for _, n := range acked {
		res.Acked += n
	}
	res.Failed = cfg.Txns - res.Acked

	// Crash: reopen from the files alone, with no fault wrapper (the
	// injected failures died with the "process").
	walBytes, err := os.ReadFile(path + ".wal")
	if err != nil {
		return nil, err
	}
	crashDir := filepath.Join(dir, "crash")
	if err := os.MkdirAll(crashDir, 0o755); err != nil {
		return nil, err
	}
	dst := filepath.Join(crashDir, "s.eos")
	if err := copyFile(path, dst); err != nil {
		return nil, err
	}
	if err := os.WriteFile(dst+".wal", walBytes, 0o644); err != nil {
		return nil, err
	}
	m, err := eos.Open(dst, eos.Options{CacheSize: cachePages, NoAutoCheckpoint: true})
	if err != nil {
		return nil, fmt.Errorf("torture: reopen after sync faults: %w", err)
	}
	res.Heals = m.Stats().WALHeals // zero here; heals happened pre-crash
	db, err := core.NewDatabase(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	defer db.Close()
	if err := db.Register(tortureClass()); err != nil {
		return nil, err
	}
	tx := db.Begin()
	defer tx.Abort()
	i := 0
	err = db.ClusterScan(tx, clusterName, func(ref core.Ref) error {
		v, err := db.Get(tx, ref)
		if err != nil {
			return err
		}
		a := v.(*TAcct)
		if a.Count != acked[i] {
			return fmt.Errorf("torture: object %d recovered Count=%d, want %d acked bumps (lost or phantom commit)", i, a.Count, acked[i])
		}
		if a.Fired != a.Count {
			return fmt.Errorf("torture: object %d recovered Fired=%d Count=%d", i, a.Fired, a.Count)
		}
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if i != cfg.Objects {
		return nil, fmt.Errorf("torture: recovered %d cluster members, want %d", i, cfg.Objects)
	}
	return res, nil
}

// CrashPoints runs the workload once per entry in syncNs, panicking at
// the n-th fsync via a programmed crash point, and verifies recovery
// from the files left behind. Returns how many crashes were exercised.
func CrashPoints(dir string, cfg Config, syncNs []uint64) (int, error) {
	cfg = cfg.withDefaults()
	crashes := 0
	for _, n := range syncNs {
		sub := filepath.Join(dir, fmt.Sprintf("crash-%d", n))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return crashes, err
		}
		path := filepath.Join(sub, "work.eos")
		crashed, err := runToCrash(path, cfg, n)
		if err != nil {
			return crashes, err
		}
		if !crashed {
			// The workload finished before the n-th fsync; still verify.
			if err := verifyAfterCrash(path); err != nil {
				return crashes, err
			}
			continue
		}
		crashes++
		if err := verifyAfterCrash(path); err != nil {
			return crashes, fmt.Errorf("crash at fsync %d: %w", n, err)
		}
	}
	return crashes, nil
}

// runToCrash executes the workload under a CrashAt schedule, absorbing
// the simulated machine crash. The wedged manager is abandoned, exactly
// as a kill -9 would abandon it.
func runToCrash(path string, cfg Config, n uint64) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fault.Crash); ok {
				crashed = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	_, err = workload(path, cfg, fault.NewSchedule().CrashAt(fault.OpSync, n), nil)
	return false, err
}

// verifyAfterCrash reopens the crash state in place and checks the
// trigger-consistency invariant over whatever committed.
func verifyAfterCrash(path string) error {
	m, err := eos.Open(path, eos.Options{CacheSize: cachePages, NoAutoCheckpoint: true})
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	return verifyTriggerConsistency(m, -1)
}
