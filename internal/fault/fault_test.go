package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFailSyncAtFiresOnceThenHeals(t *testing.T) {
	s := NewSchedule().FailSyncAt(2)
	w := Wrap(tempFile(t), s)
	if err := w.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 = %v, want injected", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync 3 after heal: %v", err)
	}
	c := s.Counters()
	if c.Syncs != 3 || c.Injected != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestTornWriteAtByte(t *testing.T) {
	f := tempFile(t)
	s := NewSchedule().TornWriteAtByte(10)
	w := Wrap(f, s)
	if n, err := w.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	// This write crosses byte 10: only 4 of 8 bytes land.
	n, err := w.Write(make([]byte, 8))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 10 {
		t.Fatalf("file size = %d, want 10 (torn at byte 10)", st.Size())
	}
	// Healed: later writes go through whole.
	if n, err := w.Write(make([]byte, 5)); n != 5 || err != nil {
		t.Fatalf("write after tear: n=%d err=%v", n, err)
	}
}

func TestCrashAtPanics(t *testing.T) {
	s := NewSchedule().CrashAt(OpSync, 1)
	w := Wrap(tempFile(t), s)
	defer func() {
		r := recover()
		c, ok := r.(Crash)
		if !ok || c.Op != OpSync || c.N != 1 {
			t.Fatalf("recovered %v, want Crash{OpSync,1}", r)
		}
	}()
	_ = w.Sync()
	t.Fatal("sync did not panic")
}

func TestFailSyncRateIsDeterministic(t *testing.T) {
	run := func() []bool {
		s := NewSchedule().FailSyncRate(0.3, 42)
		w := Wrap(tempFile(t), s)
		out := make([]bool, 50)
		for i := range out {
			out[i] = w.Sync() != nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at sync %d: same seed must inject the same faults", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("rate 0.3 over %d syncs injected %d failures", len(a), fails)
	}
}
