package fault

// netlink.go extends the fault layer from the file beneath the log to
// the network beneath the replication stream: a *Link wraps any
// net.Conn and consults a NetPlan on the receive path, so chaos tests
// can cut the link after exactly the Nth frame, flip a byte inside a
// chosen frame, stall reads, or deliver a frame twice — all
// deterministically, from a caller-seeded plan. The downstream frames
// of the replication protocol are newline-delimited, so the wrapper is
// frame-aware: it reassembles complete frames from the raw byte stream
// and applies faults at frame granularity, which is what lets a sweep
// visit *every* frame boundary of a live session.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// NetCounters reports what flowed through a plan's links and which
// faults fired.
type NetCounters struct {
	Conns          uint64 // connections wrapped
	Frames         uint64 // complete frames delivered downstream
	BytesDelivered uint64
	Cuts           uint64 // armed cuts that fired
	Corruptions    uint64 // armed byte flips that fired
	Duplicates     uint64 // frames delivered twice
	Delays         uint64 // reads that slept
}

// NetPlan is a programmable fault plan for wrapped connections. Frame
// counts are cumulative across every connection the plan wraps, and
// one-shot faults (cut, corrupt, wedge) disarm after firing, so a
// redialled connection streams clean — the "flaky then healed" shape
// the anti-entropy proofs need. All methods are safe for concurrent
// use; arming methods return the plan for chaining.
type NetPlan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	cutAt    uint64 // cut after delivering this many frames; 0 = off
	corrupt  uint64 // flip a byte inside this frame; 0 = off
	dupProb  float64
	delay    time.Duration // per-read delay while armed
	wedge    time.Duration // one-shot stall before the next read
	counters NetCounters
}

// NewNetPlan returns an empty plan; seed drives the probabilistic
// faults (duplication), so a fixed seed over a fixed stream injects the
// same faults.
func NewNetPlan(seed int64) *NetPlan {
	return &NetPlan{rng: rand.New(rand.NewSource(seed))}
}

// CutAfterFrames arms a link cut: the n-th complete downstream frame
// (1-based, cumulative across connections) is delivered, then the
// connection dies — further reads fail and the underlying conn closes,
// so the peer notices too. Fires once.
func (p *NetPlan) CutAfterFrames(n uint64) *NetPlan {
	p.mu.Lock()
	p.cutAt = n
	p.mu.Unlock()
	return p
}

// CorruptFrame arms a byte flip inside the n-th downstream frame
// (1-based). The flip may land in a payload (still valid JSON — only a
// semantic checksum can catch it) or in framing (a parse error); a
// correct receiver must survive both. Fires once.
func (p *NetPlan) CorruptFrame(n uint64) *NetPlan {
	p.mu.Lock()
	p.corrupt = n
	p.mu.Unlock()
	return p
}

// DuplicateFrames arms per-frame duplication with probability prob:
// the frame is delivered, then delivered again — the redundant-packet
// fault an idempotent apply path must absorb.
func (p *NetPlan) DuplicateFrames(prob float64) *NetPlan {
	p.mu.Lock()
	p.dupProb = prob
	p.mu.Unlock()
	return p
}

// DelayReads arms a fixed sleep before every underlying read until
// disarmed with DelayReads(0) — cheap jitter/slow-link simulation.
func (p *NetPlan) DelayReads(d time.Duration) *NetPlan {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
	return p
}

// WedgeOnce arms a single stall of d before the next underlying read —
// a transient partition that heals without dropping the connection.
func (p *NetPlan) WedgeOnce(d time.Duration) *NetPlan {
	p.mu.Lock()
	p.wedge = d
	p.mu.Unlock()
	return p
}

// Counters returns a snapshot of the plan's counters.
func (p *NetPlan) Counters() NetCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters
}

// Fired reports whether any armed fault has fired yet.
func (p *NetPlan) Fired() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters.Cuts+p.counters.Corruptions > 0
}

// Wrap interposes the plan on conn's receive path.
func (p *NetPlan) Wrap(conn net.Conn) net.Conn {
	p.mu.Lock()
	p.counters.Conns++
	p.mu.Unlock()
	return &Link{Conn: conn, p: p}
}

// Dialer returns a dial function (the shape repl.ReplicaOptions.Dial
// expects) that wraps every new connection with the plan.
func (p *NetPlan) Dialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return p.Wrap(conn), nil
	}
}

// onFrame applies the armed frame faults to one complete frame
// (terminator included) and returns the bytes to deliver plus whether
// the link dies after them. Caller must not hold p.mu.
func (p *NetPlan) onFrame(frame []byte) (out []byte, cut bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counters.Frames++
	n := p.counters.Frames
	if p.corrupt != 0 && p.corrupt == n && len(frame) > 2 {
		frame = append([]byte(nil), frame...)
		frame[len(frame)/2] ^= 0x01 // spare the trailing terminator
		p.counters.Corruptions++
		p.corrupt = 0
	}
	out = frame
	if p.dupProb > 0 && p.rng.Float64() < p.dupProb {
		out = append(append([]byte(nil), frame...), frame...)
		p.counters.Duplicates++
	}
	if p.cutAt != 0 && p.cutAt == n {
		p.counters.Cuts++
		p.cutAt = 0
		cut = true
	}
	return out, cut
}

// preRead applies the armed timing faults. Caller must not hold p.mu.
func (p *NetPlan) preRead() {
	p.mu.Lock()
	d := p.delay
	w := p.wedge
	p.wedge = 0
	if d > 0 || w > 0 {
		p.counters.Delays++
	}
	p.mu.Unlock()
	if w > 0 {
		time.Sleep(w)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// ErrLinkCut is returned (wrapped in ErrInjected) by reads after an
// armed cut fired.
var ErrLinkCut = fmt.Errorf("%w: link cut", ErrInjected)

// Link is one faulted connection. Writes pass through untouched (the
// plans target the downstream frame flow); reads reassemble frames and
// route them through the plan.
type Link struct {
	net.Conn
	p *NetPlan

	mu   sync.Mutex
	raw  []byte // bytes read but not yet assembled into a frame
	out  []byte // faulted bytes ready for the caller
	dead bool
}

// Read serves reassembled, fault-processed bytes. When an armed cut
// fires, the bytes up to and including the cut frame are still
// delivered, then reads fail and the underlying connection closes.
func (l *Link) Read(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if len(l.out) > 0 {
			n := copy(b, l.out)
			l.out = l.out[n:]
			l.p.mu.Lock()
			l.p.counters.BytesDelivered += uint64(n)
			l.p.mu.Unlock()
			return n, nil
		}
		if l.dead {
			return 0, ErrLinkCut
		}
		l.p.preRead()
		tmp := make([]byte, 4096)
		n, err := l.Conn.Read(tmp)
		if n > 0 {
			l.raw = append(l.raw, tmp[:n]...)
			l.assemble()
		}
		if err != nil {
			if len(l.out) > 0 {
				continue // drain what the fault layer released first
			}
			if len(l.raw) > 0 {
				// Stream ended mid-frame: pass the tail through as-is —
				// a real half-delivered frame the receiver must reject.
				l.out = l.raw
				l.raw = nil
				continue
			}
			return 0, err
		}
	}
}

// assemble moves complete newline-terminated frames from raw through
// the plan into out. Caller holds l.mu.
func (l *Link) assemble() {
	for {
		idx := -1
		for i, c := range l.raw {
			if c == '\n' {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		frame := l.raw[:idx+1]
		l.raw = l.raw[idx+1:]
		out, cut := l.p.onFrame(frame)
		l.out = append(l.out, out...)
		if cut {
			l.dead = true
			l.raw = nil
			l.Conn.Close() // the peer's half dies too
			return
		}
	}
}

// Close closes the underlying connection.
func (l *Link) Close() error { return l.Conn.Close() }
