package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeLink returns a faulted read end fed by writes to w.
func pipeLink(t *testing.T, p *NetPlan) (r net.Conn, w net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return p.Wrap(a), b
}

func writeFrames(t *testing.T, w net.Conn, frames ...string) {
	t.Helper()
	go func() {
		for _, f := range frames {
			w.Write([]byte(f))
		}
		w.Close()
	}()
}

func readAll(r net.Conn) ([]byte, error) {
	var buf bytes.Buffer
	_, err := io.Copy(&buf, r)
	return buf.Bytes(), err
}

func TestLinkPassthrough(t *testing.T) {
	p := NewNetPlan(1)
	r, w := pipeLink(t, p)
	writeFrames(t, w, "{\"a\":1}\n", "{\"b\":2}\n")
	got, err := readAll(r)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "{\"a\":1}\n{\"b\":2}\n" {
		t.Fatalf("passthrough mangled stream: %q", got)
	}
	c := p.Counters()
	if c.Frames != 2 || c.Cuts != 0 || c.Corruptions != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLinkCutAfterFrames(t *testing.T) {
	p := NewNetPlan(1).CutAfterFrames(2)
	r, w := pipeLink(t, p)
	writeFrames(t, w, "one\n", "two\n", "three\n")
	got, err := readAll(r)
	if string(got) != "one\ntwo\n" {
		t.Fatalf("cut delivered %q, want the first two frames exactly", got)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read after cut = %v, want ErrInjected", err)
	}
	if c := p.Counters(); c.Cuts != 1 {
		t.Fatalf("cuts = %d, want 1", c.Cuts)
	}
	// The cut disarms: a redialled connection streams clean.
	r2, w2 := pipeLink(t, p)
	writeFrames(t, w2, "four\n")
	got, _ = readAll(r2)
	if string(got) != "four\n" {
		t.Fatalf("post-cut connection delivered %q", got)
	}
	if c := p.Counters(); c.Cuts != 1 || c.Conns != 2 {
		t.Fatalf("counters after heal = %+v", c)
	}
}

func TestLinkCorruptFrame(t *testing.T) {
	p := NewNetPlan(1).CorruptFrame(2)
	r, w := pipeLink(t, p)
	writeFrames(t, w, "aaaa\n", "bbbb\n", "cccc\n")
	got, _ := readAll(r)
	if !bytes.HasPrefix(got, []byte("aaaa\nbb")) || got[7] == 'b' {
		t.Fatalf("corruption missed: %q", got)
	}
	if string(got[8:]) != "b\ncccc\n" {
		t.Fatalf("corruption spilled beyond its frame: %q", got)
	}
	if c := p.Counters(); c.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", c.Corruptions)
	}
}

func TestLinkDuplicateFrames(t *testing.T) {
	p := NewNetPlan(42).DuplicateFrames(1.0)
	r, w := pipeLink(t, p)
	writeFrames(t, w, "x\n", "y\n")
	got, _ := readAll(r)
	if string(got) != "x\nx\ny\ny\n" {
		t.Fatalf("duplication delivered %q", got)
	}
	if c := p.Counters(); c.Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2", c.Duplicates)
	}
}

func TestLinkWedgeOnce(t *testing.T) {
	p := NewNetPlan(1).WedgeOnce(50 * time.Millisecond)
	r, w := pipeLink(t, p)
	writeFrames(t, w, "z\n")
	start := time.Now()
	got, _ := readAll(r)
	if string(got) != "z\n" {
		t.Fatalf("wedge dropped data: %q", got)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("wedge did not stall (%v)", d)
	}
	if c := p.Counters(); c.Delays == 0 {
		t.Fatal("wedge not counted")
	}
}

func TestLinkMidFrameTail(t *testing.T) {
	// A peer that dies mid-frame: the half-frame must still reach the
	// reader (it is a physically real state), followed by the EOF.
	p := NewNetPlan(1)
	r, w := pipeLink(t, p)
	writeFrames(t, w, "whole\n", "torn-without-newline")
	got, err := readAll(r)
	if string(got) != "whole\ntorn-without-newline" {
		t.Fatalf("tail lost: %q", got)
	}
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
}
