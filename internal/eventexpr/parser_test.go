package eventexpr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicEventNames(t *testing.T) {
	cases := []struct {
		src        string
		wantPrefix string
		wantIdent  string
	}{
		{"after Buy", "after", "Buy"},
		{"before PayBill", "before", "PayBill"},
		{"BigBuy", "", "BigBuy"},
		{"before tcomplete", "before", "tcomplete"},
		{"before tabort", "before", "tabort"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		n, ok := p.Expr.(*Name)
		if !ok {
			t.Fatalf("Parse(%q) = %T, want *Name", c.src, p.Expr)
		}
		if n.Prefix != c.wantPrefix || n.Ident != c.wantIdent {
			t.Errorf("Parse(%q) = {%q %q}, want {%q %q}", c.src, n.Prefix, n.Ident, c.wantPrefix, c.wantIdent)
		}
	}
}

func TestParsePaperExpressions(t *testing.T) {
	// The two trigger expressions from the paper's §4 CredCard example.
	deny := MustParse("after Buy & OverLimit")
	m, ok := deny.Expr.(*Mask)
	if !ok {
		t.Fatalf("DenyCredit expr = %T, want *Mask", deny.Expr)
	}
	if m.Name != "OverLimit" {
		t.Errorf("mask name = %q", m.Name)
	}
	if n, ok := m.Sub.(*Name); !ok || n.Ident != "Buy" || n.Prefix != "after" {
		t.Errorf("mask sub = %v", m.Sub)
	}

	raise := MustParse("relative((after Buy & MoreCred()), after PayBill)")
	r, ok := raise.Expr.(*Relative)
	if !ok {
		t.Fatalf("AutoRaiseLimit expr = %T, want *Relative", raise.Expr)
	}
	if len(r.Stages) != 2 {
		t.Fatalf("relative has %d stages, want 2", len(r.Stages))
	}
	if _, ok := r.Stages[0].(*Mask); !ok {
		t.Errorf("stage 0 = %T, want *Mask", r.Stages[0])
	}
	if n, ok := r.Stages[1].(*Name); !ok || n.Ident != "PayBill" {
		t.Errorf("stage 1 = %v", r.Stages[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	// '&' binds tighter than ',' which binds tighter than '||'.
	p := MustParse("A, B & m || C")
	or, ok := p.Expr.(*Or)
	if !ok {
		t.Fatalf("top = %T, want *Or", p.Expr)
	}
	seq, ok := or.Left.(*Seq)
	if !ok {
		t.Fatalf("or.Left = %T, want *Seq", or.Left)
	}
	if _, ok := seq.Right.(*Mask); !ok {
		t.Fatalf("seq.Right = %T, want *Mask", seq.Right)
	}
	if n, ok := or.Right.(*Name); !ok || n.Ident != "C" {
		t.Fatalf("or.Right = %v", or.Right)
	}
}

func TestParseStarPrefix(t *testing.T) {
	p := MustParse("*any, after Buy")
	seq, ok := p.Expr.(*Seq)
	if !ok {
		t.Fatalf("top = %T, want *Seq", p.Expr)
	}
	st, ok := seq.Left.(*Star)
	if !ok {
		t.Fatalf("seq.Left = %T, want *Star", seq.Left)
	}
	if _, ok := st.Sub.(*Any); !ok {
		t.Fatalf("star sub = %T, want *Any", st.Sub)
	}
}

func TestParseNestedStar(t *testing.T) {
	p := MustParse("**A") // star of star, legal if useless
	s1 := p.Expr.(*Star)
	if _, ok := s1.Sub.(*Star); !ok {
		t.Fatalf("inner = %T, want *Star", s1.Sub)
	}
}

func TestParseAnchor(t *testing.T) {
	p := MustParse("^after Buy, after PayBill")
	if !p.Anchored {
		t.Fatal("anchor not detected")
	}
	q := MustParse("after Buy")
	if q.Anchored {
		t.Fatal("spurious anchor")
	}
}

func TestParseSemicolonSequence(t *testing.T) {
	// ';' is the regular-event-language spelling of sequence (§5.1).
	a := MustParse("A; B")
	b := MustParse("A, B")
	if a.Expr.String() != b.Expr.String() {
		t.Fatalf("';' and ',' parse differently: %s vs %s", a.Expr, b.Expr)
	}
}

func TestParseRelativeAsPlainName(t *testing.T) {
	// "relative" not followed by '(' is an ordinary user event name.
	p := MustParse("relative, A")
	seq := p.Expr.(*Seq)
	if n, ok := seq.Left.(*Name); !ok || n.Ident != "relative" {
		t.Fatalf("left = %v, want user event 'relative'", seq.Left)
	}
}

func TestParseRelativeManyStages(t *testing.T) {
	p := MustParse("relative(A, B, C, D)")
	r := p.Expr.(*Relative)
	if len(r.Stages) != 4 {
		t.Fatalf("stages = %d, want 4", len(r.Stages))
	}
}

func TestParseDoubleAmp(t *testing.T) {
	// "&&" tolerated as synonym for "&" (the paper's mask examples are C++
	// boolean expressions, so users may write '&&' reflexively).
	p := MustParse("after Buy && m")
	if _, ok := p.Expr.(*Mask); !ok {
		t.Fatalf("got %T, want *Mask", p.Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"after",          // missing member name
		"A ||",           // dangling union
		"(A",             // unclosed paren
		"A)",             // stray paren
		"A & ",           // missing mask name
		"A & m(",         // unclosed mask parens
		"relative(A)",    // too few stages
		"relative(A, B",  // unclosed relative
		"A | B",          // single pipe
		"A $ B",          // bad character
		"*",              // star of nothing
		"A B",            // juxtaposition is not an operator
		"^",              // anchor of nothing
		"A &",            // trailing amp
		"relative(,A)",   // empty stage
		"relative(A,,B)", // empty middle stage
		"after 9x",       // we do allow digits after start... "9x" starts with digit -> error
		"A, ",            // trailing comma
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("A | B")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T, want *SyntaxError", err)
	}
	if se.Pos != 2 {
		t.Errorf("error pos = %d, want 2", se.Pos)
	}
	if !strings.Contains(se.Error(), "A | B") {
		t.Errorf("error message %q does not include input", se.Error())
	}
}

func TestDesugarRelative(t *testing.T) {
	p := MustParse("relative(A, B)")
	d := Desugar(p.Expr)
	// relative(A,B) => ((A, *any), B)
	want := "((A, *any), B)"
	if d.String() != want {
		t.Fatalf("Desugar = %s, want %s", d, want)
	}
	p3 := MustParse("relative(A, B, C)")
	d3 := Desugar(p3.Expr)
	want3 := "((((A, *any), B), *any), C)"
	if d3.String() != want3 {
		t.Fatalf("Desugar 3-stage = %s, want %s", d3, want3)
	}
}

func TestDesugarLeavesOthersAlone(t *testing.T) {
	p := MustParse("(A || B), *C & m")
	if got := Desugar(p.Expr).String(); got != p.Expr.String() {
		t.Fatalf("Desugar changed non-relative expr: %s vs %s", got, p.Expr)
	}
}

func TestNames(t *testing.T) {
	p := MustParse("relative((after Buy & MoreCred()), after PayBill) || BigBuy, after Buy")
	names := Names(p.Expr)
	var got []string
	for _, n := range names {
		got = append(got, n.String())
	}
	want := []string{"after Buy", "after PayBill", "BigBuy"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestMaskNames(t *testing.T) {
	p := MustParse("(A & m1), (B & m2) & m1")
	got := MaskNames(p.Expr)
	if len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("MaskNames = %v, want [m1 m2]", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Printing a parsed expression and reparsing yields the same tree.
	srcs := []string{
		"after Buy & OverLimit",
		"relative((after Buy & MoreCred()), after PayBill)",
		"*any, after Buy",
		"(A || B), C",
		"A, B, C",
		"*(A || B) & m",
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		p2 := MustParse(p1.Expr.String())
		if p1.Expr.String() != p2.Expr.String() {
			t.Errorf("round trip of %q: %s vs %s", src, p1.Expr, p2.Expr)
		}
	}
}

// genExpr builds a random valid expression for the round-trip property.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &Name{Prefix: "after", Ident: "Buy"}
		case 1:
			return &Name{Ident: "BigBuy"}
		default:
			return &Any{}
		}
	}
	switch r.Intn(5) {
	case 0:
		return &Seq{genExpr(r, depth-1), genExpr(r, depth-1)}
	case 1:
		return &Or{genExpr(r, depth-1), genExpr(r, depth-1)}
	case 2:
		return &Star{genExpr(r, depth-1)}
	case 3:
		return &Mask{genExpr(r, depth-1), "m"}
	default:
		return &Relative{Stages: []Expr{genExpr(r, depth-1), genExpr(r, depth-1)}}
	}
}

// Property: String() output of any generated AST reparses to an AST with
// identical String() — the concrete syntax is unambiguous.
func TestParsePrintRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 3)
		p, err := Parse(e.String())
		if err != nil {
			t.Logf("generated %s failed to parse: %v", e, err)
			return false
		}
		return p.Expr.String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
