package eventexpr

import (
	"testing"
	"unicode/utf8"
)

// FuzzParse checks that the parser never panics, and that anything it
// accepts round-trips through String() to an equivalent tree.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"after Buy",
		"relative((after Buy & MoreCred()), after PayBill)",
		"*any, after Buy",
		"A || B, C & m",
		"^(A; B) & m1 && m2",
		"relative(A, B, C, D)",
		"*(*(A))",
		"((((A))))",
		"A & m()",
		"before tcomplete, before tabort",
		"| |", "&&&", "relative(", "^^", "*,", "any any",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) {
			t.Skip()
		}
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must round-trip.
		printed := p.Expr.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own printout %q: %v", src, printed, err)
		}
		if p2.Expr.String() != printed {
			t.Fatalf("unstable printout: %q -> %q", printed, p2.Expr.String())
		}
		// Desugaring and analysis must not panic either.
		_ = Desugar(p.Expr)
		_ = Names(p.Expr)
		_ = MaskNames(p.Expr)
	})
}
