package eventexpr

import "fmt"

// The grammar, lowest precedence first (matching the paper's usage: "&"
// binds tighter than "," which binds tighter than "||"; "*" is a prefix
// operator on a primary):
//
//	top      := '^'? union EOF
//	union    := seq ('||' seq)*
//	seq      := masked ((','|';') masked)*
//	masked   := factor ('&' maskref)*
//	factor   := '*' factor | primary
//	primary  := '(' union ')'
//	         | 'relative' '(' union (',' union)+ ')'
//	         | 'any'
//	         | ('before'|'after') IDENT
//	         | IDENT            // user-defined event
//	maskref  := IDENT ('(' ')')?

// Parsed is the result of parsing a complete event expression: the AST plus
// whether the expression was anchored with '^' (§5.1.1 — anchoring
// suppresses the implicit (*any) prefix).
type Parsed struct {
	Expr     Expr
	Anchored bool
	Source   string
}

type parser struct {
	lex  lexer
	tok  token
	peek *token
}

// Parse parses an Ode event expression such as
//
//	relative((after Buy & MoreCred()), after PayBill)
//
// and returns the AST with the anchor flag.
func Parse(src string) (*Parsed, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	anchored := false
	if p.tok.kind == tokCaret {
		anchored = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	e, err := p.union()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok.kind)
	}
	return &Parsed{Expr: e, Anchored: anchored, Source: src}, nil
}

// MustParse is Parse for statically known-good expressions (tests,
// examples); it panics on error.
func MustParse(src string) *Parsed {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peekTok looks one token ahead without consuming the current token.
func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Input: p.lex.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) union() (Expr, error) {
	left, err := p.seq()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.seq()
		if err != nil {
			return nil, err
		}
		left = &Or{left, right}
	}
	return left, nil
}

func (p *parser) seq() (Expr, error) {
	left, err := p.masked()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.masked()
		if err != nil {
			return nil, err
		}
		left = &Seq{left, right}
	}
	return left, nil
}

func (p *parser) masked() (Expr, error) {
	e, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAmp {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.maskRef()
		if err != nil {
			return nil, err
		}
		e = &Mask{Sub: e, Name: name}
	}
	return e, nil
}

func (p *parser) maskRef() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected mask name after '&', got %s", p.tok.kind)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	// Optional "()" so paper-style "MoreCred()" parses.
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return "", err
		}
		if p.tok.kind != tokRParen {
			return "", p.errorf("expected ')' in mask reference %q()", name)
		}
		if err := p.advance(); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *parser) factor() (Expr, error) {
	if p.tok.kind == tokStar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sub, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &Star{sub}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.union()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch p.tok.text {
		case "relative":
			return p.relative()
		case "any":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Any{}, nil
		case "before", "after":
			prefix := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokIdent {
				return nil, p.errorf("expected member-function name after %q", prefix)
			}
			n := &Name{Prefix: prefix, Ident: p.tok.text}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return n, nil
		default:
			n := &Name{Ident: p.tok.text}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return n, nil
		}
	default:
		return nil, p.errorf("expected event, '(', or '*', got %s", p.tok.kind)
	}
}

func (p *parser) relative() (Expr, error) {
	// current token is the "relative" ident; require '(' next, otherwise
	// treat "relative" as a plain user-event name.
	next, err := p.peekTok()
	if err != nil {
		return nil, err
	}
	if next.kind != tokLParen {
		n := &Name{Ident: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	}
	if err := p.advance(); err != nil { // consume "relative"
		return nil, err
	}
	if err := p.advance(); err != nil { // consume "("
		return nil, err
	}
	var stages []Expr
	for {
		// Stages are parsed at the "masked || masked" level but NOT the
		// sequence level: inside relative(...), "," separates stages, so a
		// sequence within a stage must be parenthesized — matching the
		// paper's relative((after Buy & MoreCred()), after PayBill).
		s, err := p.relStage()
		if err != nil {
			return nil, err
		}
		stages = append(stages, s)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')' to close relative(...), got %s", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if len(stages) < 2 {
		return nil, p.errorf("relative(...) needs at least two stages, got %d", len(stages))
	}
	return &Relative{Stages: stages}, nil
}

// relStage parses one stage of relative(...): a union of masked factors
// (no top-level sequence, since ',' separates stages).
func (p *parser) relStage() (Expr, error) {
	left, err := p.masked()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.masked()
		if err != nil {
			return nil, err
		}
		left = &Or{left, right}
	}
	return left, nil
}
