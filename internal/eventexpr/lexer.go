package eventexpr

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates the lexical tokens of the event language.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokComma  // "," or ";": sequence
	tokOr     // "||"
	tokAmp    // "&"
	tokStar   // "*"
	tokLParen // "("
	tokRParen // ")"
	tokCaret  // "^"
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokIdent:
		return "identifier"
	case tokComma:
		return "','"
	case tokOr:
		return "'||'"
	case tokAmp:
		return "'&'"
	case tokStar:
		return "'*'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokCaret:
		return "'^'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is a lexed token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits an event-expression string into tokens.
type lexer struct {
	src string
	off int
}

// SyntaxError reports a lexical or parse error in an event expression,
// with the byte offset where it occurred.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("event expression %q: offset %d: %s", e.Input, e.Pos, e.Msg)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.off < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if !unicode.IsSpace(r) {
			break
		}
		l.off += size
	}
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: l.off}, nil
	}
	start := l.off
	c := l.src[l.off]
	switch c {
	case ',', ';':
		l.off++
		return token{tokComma, string(c), start}, nil
	case '&':
		l.off++
		// Tolerate "&&" as a synonym; the paper writes single "&".
		if l.off < len(l.src) && l.src[l.off] == '&' {
			l.off++
		}
		return token{tokAmp, l.src[start:l.off], start}, nil
	case '|':
		if l.off+1 < len(l.src) && l.src[l.off+1] == '|' {
			l.off += 2
			return token{tokOr, "||", start}, nil
		}
		return token{}, l.errorf(start, "single '|' (union is spelled '||')")
	case '*':
		l.off++
		return token{tokStar, "*", start}, nil
	case '(':
		l.off++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.off++
		return token{tokRParen, ")", start}, nil
	case '^':
		l.off++
		return token{tokCaret, "^", start}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	if !isIdentStart(r) {
		return token{}, l.errorf(start, "unexpected character %q", r)
	}
	for l.off < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if !isIdentPart(r) {
			break
		}
		l.off += size
	}
	return token{tokIdent, l.src[start:l.off], start}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
