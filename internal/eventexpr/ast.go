// Package eventexpr implements Ode's composite-event specification
// language (paper §5.1). An event expression is a regular expression over
// the basic events declared by a class, built from:
//
//	E1 , E2          sequence ("," in Ode, ";" in the regular event language;
//	                 both spellings are accepted)
//	E1 || E2         union
//	*E               repetition (zero or more), prefix as the paper writes it
//	E & mask         mask application: when E completes, evaluate the named
//	                 predicate; the composite event occurs only if it is true
//	relative(E1,…,En) once E1 has been satisfied, any future satisfaction of
//	                 E2 continues the match, and so on (§4, Figure 1)
//	any              matches any declared basic event
//	^E               anchor: do not prepend (*any), i.e. match from the
//	                 activation point with nothing ignored (§5.1.1)
//
// Masks in O++ are arbitrary C++ expressions (e.g. "(currBal > credLim)").
// Because this reproduction registers masks as named Go predicates on the
// class, the expression language refers to masks by identifier, with an
// optional trailing "()" so paper-style spellings like "MoreCred()" parse.
package eventexpr

import (
	"fmt"
	"strings"
)

// Expr is a node in the event-expression AST.
type Expr interface {
	// String renders the node in Ode's concrete syntax.
	String() string
	// isExpr restricts implementations to this package.
	isExpr()
}

// Name is a reference to a basic event: a member-function event
// ("after Buy", "before PayBill"), a user-defined event ("BigBuy"), or a
// transaction event ("before tcomplete", "before tabort").
type Name struct {
	// Prefix is "before", "after", or "" for user-defined events.
	Prefix string
	// Ident is the member-function or user-event name.
	Ident string
}

func (n *Name) isExpr() {}

func (n *Name) String() string {
	if n.Prefix == "" {
		return n.Ident
	}
	return n.Prefix + " " + n.Ident
}

// Any matches any single basic event in the class's alphabet (§5.1.1).
type Any struct{}

func (*Any) isExpr()        {}
func (*Any) String() string { return "any" }

// Seq is the sequence operator: Left must occur, then Right.
type Seq struct {
	Left, Right Expr
}

func (*Seq) isExpr() {}

func (s *Seq) String() string { return fmt.Sprintf("(%s, %s)", s.Left, s.Right) }

// Or is the union operator "||".
type Or struct {
	Left, Right Expr
}

func (*Or) isExpr() {}

func (o *Or) String() string { return fmt.Sprintf("(%s || %s)", o.Left, o.Right) }

// Star is the repetition operator "*E": zero or more occurrences of E.
type Star struct {
	Sub Expr
}

func (*Star) isExpr() {}

func (s *Star) String() string { return fmt.Sprintf("*%s", parens(s.Sub)) }

// Mask applies a named predicate to a sub-expression: "E & m". When E
// completes, the FSM enters a mask state that evaluates m and posts the
// pseudo-event True or False (§5.1.2).
type Mask struct {
	Sub  Expr
	Name string // registered mask predicate name
}

func (*Mask) isExpr() {}

func (m *Mask) String() string { return fmt.Sprintf("(%s & %s())", m.Sub, m.Name) }

// Relative is the n-ary relative(E1, …, En) operator. Per §4: "once the
// composite event E1 has been satisfied, any future occurrences of E2 will
// satisfy the trigger's composite event" — i.e. arbitrary events may
// intervene between stages.
type Relative struct {
	Stages []Expr // len >= 2
}

func (*Relative) isExpr() {}

func (r *Relative) String() string {
	parts := make([]string, len(r.Stages))
	for i, s := range r.Stages {
		parts[i] = s.String()
	}
	return "relative(" + strings.Join(parts, ", ") + ")"
}

// parens wraps compound sub-expressions for unambiguous printing.
func parens(e Expr) string {
	switch e.(type) {
	case *Name, *Any:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// Desugar rewrites Relative nodes into their sequence/star form:
// relative(E1, E2, …, En) ≡ E1, (*any), E2, (*any), …, En. The FSM
// compiler works on desugared trees only. The returned tree shares no
// Relative nodes with the input; other nodes may be shared.
func Desugar(e Expr) Expr {
	switch e := e.(type) {
	case *Name, *Any:
		return e
	case *Seq:
		return &Seq{Desugar(e.Left), Desugar(e.Right)}
	case *Or:
		return &Or{Desugar(e.Left), Desugar(e.Right)}
	case *Star:
		return &Star{Desugar(e.Sub)}
	case *Mask:
		return &Mask{Desugar(e.Sub), e.Name}
	case *Relative:
		out := Desugar(e.Stages[0])
		for _, stage := range e.Stages[1:] {
			out = &Seq{&Seq{out, &Star{&Any{}}}, Desugar(stage)}
		}
		return out
	default:
		panic(fmt.Sprintf("eventexpr: unknown node %T", e))
	}
}

// Names returns every distinct basic-event reference in the expression, in
// first-appearance order. The trigger compiler uses this to check that all
// referenced events are declared by the class (§4: "All events of interest
// … must be explicitly specified using an event declaration").
func Names(e Expr) []*Name {
	var out []*Name
	seen := make(map[Name]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Name:
			if !seen[*e] {
				seen[*e] = true
				out = append(out, e)
			}
		case *Any:
		case *Seq:
			walk(e.Left)
			walk(e.Right)
		case *Or:
			walk(e.Left)
			walk(e.Right)
		case *Star:
			walk(e.Sub)
		case *Mask:
			walk(e.Sub)
		case *Relative:
			for _, s := range e.Stages {
				walk(s)
			}
		}
	}
	walk(e)
	return out
}

// MaskNames returns every distinct mask predicate name referenced by the
// expression, in first-appearance order.
func MaskNames(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Mask:
			walk(e.Sub)
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e.Name)
			}
		case *Seq:
			walk(e.Left)
			walk(e.Right)
		case *Or:
			walk(e.Left)
			walk(e.Right)
		case *Star:
			walk(e.Sub)
		case *Relative:
			for _, s := range e.Stages {
				walk(s)
			}
		}
	}
	walk(e)
	return out
}
