package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ode/internal/lock"
	"ode/internal/storage"
	"ode/internal/storage/dali"
)

// unversioned strips the storage.Versioned extension off a manager: the
// embedded interface value carries only storage.Manager's method set, so
// the BeginSnapshot type assertion fails.
type unversioned struct{ storage.Manager }

func TestBeginSnapshotUnversionedStore(t *testing.T) {
	m := NewManager(unversioned{dali.New()}, lock.NewManager())
	if _, err := m.BeginSnapshot(); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("BeginSnapshot over unversioned store = %v, want ErrNoVersions", err)
	}
}

// commit writes data to a fresh OID in its own transaction and returns
// the OID.
func commit(t *testing.T, m *Manager, data string) storage.OID {
	t.Helper()
	tx := m.Begin()
	oid, err := tx.NewOID()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(oid, []byte(data)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return oid
}

// overwrite replaces oid's image in its own transaction.
func overwrite(t *testing.T, m *Manager, oid storage.OID, data string) {
	t.Helper()
	tx := m.Begin()
	if err := tx.LockExclusive(lock.Resource{Space: lock.SpaceObject, ID: uint64(oid)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(oid, []byte(data)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotZeroLockTraffic(t *testing.T) {
	m := newManager()
	oid := commit(t, m, "img")

	before := m.Locks().Stats()
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IsSnapshot() {
		t.Fatal("IsSnapshot() = false on a snapshot transaction")
	}
	if err := snap.LockShared(lock.Resource{Space: lock.SpaceObject, ID: uint64(oid)}); err != nil {
		t.Fatalf("LockShared on snapshot: %v (must be a lock-free no-op)", err)
	}
	if got, err := snap.Read(oid); err != nil || string(got) != "img" {
		t.Fatalf("snapshot Read = %q, %v", got, err)
	}
	if !snap.Exists(oid) {
		t.Fatal("snapshot Exists = false for committed object")
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	after := m.Locks().Stats()
	if after.Acquisitions != before.Acquisitions || after.Waits != before.Waits {
		t.Fatalf("snapshot transaction touched the lock manager: %+v -> %+v", before, after)
	}
	if got := m.Stats(); got.Snapshots != 1 || got.SnapshotReads != 1 {
		t.Fatalf("Stats = %+v, want Snapshots=1 SnapshotReads=1", got)
	}
}

func TestSnapshotWritesRejected(t *testing.T) {
	m := newManager()
	oid := commit(t, m, "img")
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Abort()

	if err := snap.Write(oid, []byte("x")); !errors.Is(err, ErrSnapshotWrite) {
		t.Errorf("Write = %v, want ErrSnapshotWrite", err)
	}
	if err := snap.Free(oid); !errors.Is(err, ErrSnapshotWrite) {
		t.Errorf("Free = %v, want ErrSnapshotWrite", err)
	}
	if _, err := snap.NewOID(); !errors.Is(err, ErrSnapshotWrite) {
		t.Errorf("NewOID = %v, want ErrSnapshotWrite", err)
	}
	if err := snap.LockExclusive(lock.Resource{Space: lock.SpaceObject, ID: uint64(oid)}); !errors.Is(err, ErrSnapshotWrite) {
		t.Errorf("LockExclusive = %v, want ErrSnapshotWrite", err)
	}
	// The rejections did not doom the transaction — it is still readable.
	if _, err := snap.Read(oid); err != nil {
		t.Errorf("Read after rejected writes: %v", err)
	}
}

func TestSnapshotRepeatableReads(t *testing.T) {
	m := newManager()
	oid := commit(t, m, "old")

	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := snap.Read(oid); string(got) != "old" {
		t.Fatalf("first read = %q", got)
	}

	// A writer commits over the object; the pinned snapshot must not
	// notice, while a fresh snapshot sees the new image.
	overwrite(t, m, oid, "new")
	if got, _ := snap.Read(oid); string(got) != "old" {
		t.Fatalf("read after concurrent commit = %q, want %q (repeatable)", got, "old")
	}
	fresh, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fresh.Read(oid); string(got) != "new" {
		t.Fatalf("fresh snapshot read = %q, want %q", got, "new")
	}
	if err := fresh.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSeesNoHalfCommit(t *testing.T) {
	m := newManager()
	a := commit(t, m, "a=0")
	b := commit(t, m, "b=0")

	// One transaction updates both objects. Any snapshot sees either
	// both old images or both new — never a mix. Deterministic check
	// first: a snapshot pinned before the multi-object commit.
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.Write(a, []byte("a=1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(b, []byte("b=1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ga, _ := snap.Read(a)
	gb, _ := snap.Read(b)
	if string(ga) != "a=0" || string(gb) != "b=0" {
		t.Fatalf("pre-commit snapshot read %q/%q, want a=0/b=0", ga, gb)
	}
	snap.Commit()

	// Concurrent hammer: a writer commits matched pairs (c=i, d=i)
	// while snapshot readers assert the pair always matches.
	c := commit(t, m, "=1")
	d := commit(t, m, "=1")
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 2; !stop.Load(); i++ {
			tx := m.Begin()
			tx.Write(c, []byte(fmt.Sprintf("=%d", i)))
			tx.Write(d, []byte(fmt.Sprintf("=%d", i)))
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		s, err := m.BeginSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		gc, _ := s.Read(c)
		gd, _ := s.Read(d)
		if string(gc) != string(gd) {
			t.Fatalf("snapshot saw torn commit: c=%q d=%q", gc, gd)
		}
		s.Commit()
	}
	stop.Store(true)
	wg.Wait()
}

func TestSnapshotGCPinSafety(t *testing.T) {
	m := newManager()
	oid := commit(t, m, "pinned")
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Push far more than gcEvery commits past the pin so auto-GC runs
	// repeatedly while the snapshot is live.
	for i := 0; i < 300; i++ {
		overwrite(t, m, oid, fmt.Sprintf("gen-%d", i))
	}
	v := m.store.(storage.Versioned)
	if st := v.VersionStats(); st.VersionsGcRuns == 0 {
		t.Fatal("auto-GC never ran; pin safety was not exercised")
	}
	if got, err := snap.Read(oid); err != nil || string(got) != "pinned" {
		t.Fatalf("pinned snapshot read = %q, %v; GC trimmed a pinned-reachable version", got, err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	// With the pin gone the floor rises to the durable LSN and GC can
	// reclaim the whole chain.
	v.GCVersions()
	if st := v.VersionStats(); st.VersionsLive != 0 {
		t.Fatalf("VersionsLive = %d after unpinned GC, want 0", st.VersionsLive)
	}
	if got, err := m.Store().Read(oid); err != nil || string(got) != "gen-299" {
		t.Fatalf("base store after GC = %q, %v", got, err)
	}
}

func TestSnapshotAbortUnpins(t *testing.T) {
	m := newManager()
	commit(t, m, "x")
	v := m.store.(storage.Versioned)
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st := v.VersionStats(); st.VersionsPins != 1 {
		t.Fatalf("VersionsPins = %d with one live snapshot, want 1", st.VersionsPins)
	}
	if err := snap.Abort(); err != nil {
		t.Fatal(err)
	}
	if st := v.VersionStats(); st.VersionsPins != 0 {
		t.Fatalf("VersionsPins = %d after abort, want 0", st.VersionsPins)
	}
}
