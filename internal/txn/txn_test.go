package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ode/internal/lock"
	"ode/internal/storage"
	"ode/internal/storage/dali"
)

func newManager() *Manager {
	return NewManager(dali.New(), lock.NewManager())
}

func TestCommitMakesWritesVisible(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	oid, err := tx.NewOID()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(oid, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Not visible to the store before commit (no-steal).
	if m.Store().Exists(oid) {
		t.Fatal("uncommitted write leaked to store")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Store().Read(oid)
	if err != nil || string(got) != "hello" {
		t.Fatalf("after commit: %q, %v", got, err)
	}
	if tx.State() != Committed {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestReadYourWrites(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	oid, _ := tx.NewOID()
	tx.Write(oid, []byte("v1"))
	got, err := tx.Read(oid)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read-your-writes: %q, %v", got, err)
	}
	tx.Write(oid, []byte("v2"))
	got, _ = tx.Read(oid)
	if string(got) != "v2" {
		t.Fatalf("second write invisible: %q", got)
	}
	tx.Free(oid)
	if _, err := tx.Read(oid); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("read of freed-in-txn: %v", err)
	}
	if tx.Exists(oid) {
		t.Fatal("freed-in-txn object Exists")
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := newManager()
	// Seed committed state.
	seed := m.Begin()
	oid, _ := seed.NewOID()
	seed.Write(oid, []byte("committed"))
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	tx.Write(oid, []byte("overwritten"))
	oid2, _ := tx.NewOID()
	tx.Write(oid2, []byte("new"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Store().Read(oid)
	if string(got) != "committed" {
		t.Fatalf("abort leaked: %q", got)
	}
	if m.Store().Exists(oid2) {
		t.Fatal("aborted allocation leaked")
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestFinishedTxnRejectsOps(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Write(1, nil); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Write after commit: %v", err)
	}
	if _, err := tx.Read(1); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Read after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("abort after commit: %v", err)
	}
	if _, err := tx.NewOID(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("NewOID after commit: %v", err)
	}
	if err := tx.Free(1); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Free after commit: %v", err)
	}
}

func TestRequestAbortDoomsCommit(t *testing.T) {
	// The tabort path: a trigger action dooms the transaction; the commit
	// attempt becomes an abort.
	m := newManager()
	tx := m.Begin()
	oid, _ := tx.NewOID()
	tx.Write(oid, []byte("doomed"))
	tx.RequestAbort()
	if !tx.Doomed() {
		t.Fatal("not doomed")
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit of doomed txn: %v", err)
	}
	if m.Store().Exists(oid) {
		t.Fatal("doomed txn leaked writes")
	}
	if m.Stats().Aborted != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestBeforeCommitHooksRun(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	var ran []int
	tx.OnBeforeCommit(func(tx *Txn) error {
		ran = append(ran, 1)
		// Hooks may add writes (end triggers do).
		oid, _ := tx.NewOID()
		return tx.Write(oid, []byte("from hook"))
	})
	tx.OnBeforeCommit(func(*Txn) error { ran = append(ran, 2); return nil })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 || ran[0] != 1 || ran[1] != 2 {
		t.Fatalf("hooks ran %v", ran)
	}
}

func TestBeforeCommitHookAddedByHookRuns(t *testing.T) {
	// An end trigger's action can satisfy another end trigger: hooks
	// appended during hook execution must run too.
	m := newManager()
	tx := m.Begin()
	var ran []string
	tx.OnBeforeCommit(func(tx *Txn) error {
		ran = append(ran, "outer")
		tx.OnBeforeCommit(func(*Txn) error {
			ran = append(ran, "inner")
			return nil
		})
		return nil
	})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 || ran[1] != "inner" {
		t.Fatalf("ran %v", ran)
	}
}

func TestBeforeCommitHookErrorAborts(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	oid, _ := tx.NewOID()
	tx.Write(oid, []byte("x"))
	boom := errors.New("constraint violated")
	tx.OnBeforeCommit(func(*Txn) error { return boom })
	err := tx.Commit()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("commit: %v", err)
	}
	if m.Store().Exists(oid) {
		t.Fatal("hook-aborted txn leaked")
	}
}

func TestBeforeCommitHookCanDoom(t *testing.T) {
	// An end trigger action executing tabort.
	m := newManager()
	tx := m.Begin()
	tx.OnBeforeCommit(func(tx *Txn) error {
		tx.RequestAbort()
		return nil
	})
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit: %v", err)
	}
}

func TestAfterCommitAndAfterAbortHooks(t *testing.T) {
	m := newManager()

	tx := m.Begin()
	var afterC, afterA bool
	tx.OnAfterCommit(func() { afterC = true })
	tx.OnAfterAbort(func() { afterA = true })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !afterC || afterA {
		t.Fatalf("commit path hooks: afterCommit=%v afterAbort=%v", afterC, afterA)
	}

	tx2 := m.Begin()
	afterC, afterA = false, false
	tx2.OnAfterCommit(func() { afterC = true })
	tx2.OnAfterAbort(func() { afterA = true })
	tx2.Abort()
	if afterC || !afterA {
		t.Fatalf("abort path hooks: afterCommit=%v afterAbort=%v", afterC, afterA)
	}
}

func TestAfterAbortRunsOnDoomedCommit(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	var afterA bool
	tx.OnAfterAbort(func() { afterA = true })
	tx.RequestAbort()
	tx.Commit()
	if !afterA {
		t.Fatal("after-abort hooks skipped on doomed commit")
	}
}

func TestAfterCommitCanStartSystemTxn(t *testing.T) {
	// The §5.5 pattern: a !dependent trigger action runs in a system
	// transaction launched after the detecting transaction completes.
	m := newManager()
	tx := m.Begin()
	var sysOID storage.OID
	tx.OnAfterCommit(func() {
		sys := m.BeginSystem()
		oid, _ := sys.NewOID()
		sys.Write(oid, []byte("from system txn"))
		if err := sys.Commit(); err != nil {
			t.Errorf("system txn: %v", err)
		}
		sysOID = oid
	})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !m.Store().Exists(sysOID) {
		t.Fatal("system txn effects missing")
	}
	if m.Stats().System != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestSystemTxnAfterAbortPersists(t *testing.T) {
	// !dependent firing from an aborted transaction: "although the
	// actions themselves are rolled back, they may cause a system
	// transaction to make permanent changes" (§5.5).
	m := newManager()
	tx := m.Begin()
	lost, _ := tx.NewOID()
	tx.Write(lost, []byte("rolled back"))
	var kept storage.OID
	tx.OnAfterAbort(func() {
		sys := m.BeginSystem()
		oid, _ := sys.NewOID()
		sys.Write(oid, []byte("permanent"))
		if err := sys.Commit(); err != nil {
			t.Errorf("system txn: %v", err)
		}
		kept = oid
	})
	tx.Abort()
	if m.Store().Exists(lost) {
		t.Fatal("aborted write leaked")
	}
	if !m.Store().Exists(kept) {
		t.Fatal("!dependent system txn effects missing")
	}
}

func TestLockingAndDeadlockVictimAborts(t *testing.T) {
	m := newManager()
	a := lock.Resource{Space: lock.SpaceObject, ID: 1}
	b := lock.Resource{Space: lock.SpaceObject, ID: 2}

	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.LockExclusive(a); err != nil {
		t.Fatal(err)
	}
	if err := t2.LockExclusive(b); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t1.LockExclusive(b) }()
	time.Sleep(50 * time.Millisecond) // let t1 block on b first
	// t2 -> a completes the cycle; t2 is the victim and must be
	// auto-aborted.
	err := t2.LockExclusive(a)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("victim error = %v", err)
	}
	if t2.State() != Aborted {
		t.Fatalf("victim state = %v", t2.State())
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor lock: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitReleasesLocks(t *testing.T) {
	m := newManager()
	r := lock.Resource{Space: lock.SpaceObject, ID: 5}
	t1 := m.Begin()
	if err := t1.LockExclusive(r); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	if err := t2.LockExclusive(r); err != nil {
		t.Fatalf("lock after commit-release: %v", err)
	}
}

func TestConcurrentTransactions(t *testing.T) {
	m := newManager()
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := m.Begin()
				oid, err := tx.NewOID()
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.LockExclusive(lock.Resource{Space: lock.SpaceObject, ID: uint64(oid)}); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Write(oid, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.Committed != workers*perWorker {
		t.Fatalf("committed %d, want %d", st.Committed, workers*perWorker)
	}
	count := 0
	m.Store().Iterate(func(storage.OID, []byte) error { count++; return nil })
	if count != workers*perWorker {
		t.Fatalf("store has %d objects, want %d", count, workers*perWorker)
	}
}

func TestStateString(t *testing.T) {
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("state strings")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state string")
	}
}

func TestWriteCountAndOrderPreserved(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	a, _ := tx.NewOID()
	b, _ := tx.NewOID()
	tx.Write(a, []byte("1"))
	tx.Write(b, []byte("2"))
	tx.Write(a, []byte("3")) // rewrite does not duplicate
	if tx.WriteCount() != 2 {
		t.Fatalf("WriteCount = %d", tx.WriteCount())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Store().Read(a)
	if string(got) != "3" {
		t.Fatalf("last write lost: %q", got)
	}
}

func TestBeforeAbortHooks(t *testing.T) {
	m := newManager()
	// Explicit abort runs before-abort hooks while the txn is active.
	tx := m.Begin()
	var sawActive bool
	tx.OnBeforeAbort(func(tx *Txn) { sawActive = tx.State() == Active })
	tx.Abort()
	if !sawActive {
		t.Fatal("before-abort hook did not run in the active transaction")
	}

	// Doomed commit (tabort) also counts as an explicit abort request.
	tx2 := m.Begin()
	var ran bool
	tx2.OnBeforeAbort(func(*Txn) { ran = true })
	tx2.RequestAbort()
	tx2.Commit()
	if !ran {
		t.Fatal("before-abort hook skipped on doomed commit")
	}

	// Internal rollback (deadlock victim) must NOT run them.
	a := lock.Resource{Space: lock.SpaceObject, ID: 100}
	b := lock.Resource{Space: lock.SpaceObject, ID: 101}
	t1, t2 := m.Begin(), m.Begin()
	var victimHook bool
	t2.OnBeforeAbort(func(*Txn) { victimHook = true })
	t1.LockExclusive(a)
	t2.LockExclusive(b)
	done := make(chan error, 1)
	go func() { done <- t1.LockExclusive(b) }()
	time.Sleep(50 * time.Millisecond)
	if err := t2.LockExclusive(a); !errors.Is(err, ErrAborted) {
		t.Fatalf("victim error = %v", err)
	}
	<-done
	if victimHook {
		t.Fatal("before-abort hook ran for a deadlock victim")
	}
}

func TestBeforeAbortHookWritesDiscarded(t *testing.T) {
	m := newManager()
	tx := m.Begin()
	var oid storage.OID
	tx.OnBeforeAbort(func(tx *Txn) {
		oid, _ = tx.NewOID()
		tx.Write(oid, []byte("posted during abort"))
	})
	tx.Abort()
	if m.Store().Exists(oid) {
		t.Fatal("before-abort hook write survived rollback")
	}
}
