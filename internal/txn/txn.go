// Package txn implements Ode's transaction manager: strict-2PL
// transactions over a storage.Manager, with the hook points the trigger
// run-time needs for §5.5's transaction-related functionality.
//
// A transaction buffers its writes in a private write set (no-steal), so
// rollback — including the rollback of trigger FSM states demanded by §5.5
// ("a CredCardAutoRaiseLimitStruct's value is rolled back to the value it
// had at the beginning of the transaction") — is simply discarding the
// write set. Commit turns the write set into one atomic ApplyCommit batch.
//
// Hook points:
//
//   - OnBeforeCommit: run inside the transaction just before it attempts
//     to commit. The trigger engine uses this to fire `end` (deferred)
//     triggers and to post the before-tcomplete transaction event. Hooks
//     appended while hooks run are also executed (an end trigger's action
//     can satisfy further end triggers).
//   - OnAfterCommit: run after the commit is durable, outside all locks.
//     The trigger engine launches `dependent` and `!dependent` system
//     transactions here — the dependent list's commit dependency is
//     satisfied by construction, because the hooks only run if the event-
//     detecting transaction actually committed.
//   - OnAfterAbort: run after rollback. Only `!dependent` actions appear
//     here (§5.5: the abort routine checks the !dependent list after
//     finishing normal rollback work).
//
// A trigger action's tabort statement maps to RequestAbort: the
// transaction is marked doomed, and the commit attempt turns into an
// abort returning ErrAborted.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/lock"
	"ode/internal/storage"
)

// ID identifies a transaction.
type ID uint64

// State is a transaction's lifecycle state.
type State uint8

const (
	// Active transactions accept reads and writes.
	Active State = iota
	// Committed transactions applied their effects durably.
	Committed
	// Aborted transactions discarded their effects.
	Aborted
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Errors returned by transaction operations.
var (
	// ErrNotActive reports an operation on a finished transaction.
	ErrNotActive = errors.New("txn: transaction not active")
	// ErrAborted is returned by Commit when the transaction was doomed by
	// RequestAbort (the trigger language's tabort) or aborted internally.
	ErrAborted = errors.New("txn: transaction aborted")
	// ErrSnapshotWrite reports a write (or exclusive lock) attempted in a
	// snapshot transaction. Snapshot transactions are read-only by
	// construction; retry the work in a regular transaction.
	ErrSnapshotWrite = errors.New("txn: snapshot transaction is read-only")
	// ErrNoVersions reports BeginSnapshot over a storage manager that
	// does not implement storage.Versioned.
	ErrNoVersions = errors.New("txn: storage manager keeps no versions (snapshot reads unavailable)")
)

// Stats counts transaction outcomes.
type Stats struct {
	Begun         uint64
	Committed     uint64
	Aborted       uint64
	System        uint64 // system transactions begun (§5.5)
	Snapshots     uint64 // snapshot transactions begun
	SnapshotReads uint64 // reads served from pinned versions, lock-free
}

// Manager creates and tracks transactions over one storage manager and
// one lock manager.
type Manager struct {
	store  storage.Manager
	locks  *lock.Manager
	nextID atomic.Uint64

	// commitObs, when set, receives the wall-clock duration of each
	// successful ApplyCommit call — on the eos manager this is the WAL
	// group-commit wait, the durability price of one transaction. The
	// observability layer feeds it into the txn.commit_wait_ns histogram.
	commitObs atomic.Pointer[func(time.Duration)]

	// snapReads counts lock-free snapshot reads. Kept out of the
	// mu-guarded stats so the snapshot read path touches no mutex at
	// all; Stats() merges it in.
	snapReads atomic.Uint64

	mu    sync.Mutex
	stats Stats
}

// NewManager returns a transaction manager bound to store and locks.
func NewManager(store storage.Manager, locks *lock.Manager) *Manager {
	return &Manager{store: store, locks: locks}
}

// Store exposes the underlying storage manager.
func (m *Manager) Store() storage.Manager { return m.store }

// Locks exposes the lock manager.
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Begin starts a user transaction.
func (m *Manager) Begin() *Txn { return m.begin(false) }

// BeginSystem starts a system transaction: "a transaction not explicitly
// requested by the user, but required for trigger processing" (§5.5).
func (m *Manager) BeginSystem() *Txn { return m.begin(true) }

func (m *Manager) begin(system bool) *Txn {
	id := ID(m.nextID.Add(1))
	m.mu.Lock()
	m.stats.Begun++
	if system {
		m.stats.System++
	}
	m.mu.Unlock()
	return &Txn{
		id:     id,
		system: system,
		m:      m,
		writes: make(map[storage.OID]*writeEntry),
	}
}

// BeginSnapshot starts a snapshot transaction: a read-only transaction
// that pins the storage manager's current snapshot LSN and serves every
// read from the newest version ≤ that LSN — with zero calls into the
// lock manager, so it can never wait and never deadlock. Writers keep
// strict 2PL unchanged and never see the snapshot. Returns
// ErrNoVersions when the store is not versioned.
func (m *Manager) BeginSnapshot() (*Txn, error) {
	v, ok := m.store.(storage.Versioned)
	if !ok {
		return nil, ErrNoVersions
	}
	id := ID(m.nextID.Add(1))
	m.mu.Lock()
	m.stats.Begun++
	m.stats.Snapshots++
	m.mu.Unlock()
	return &Txn{
		id:      id,
		m:       m,
		snap:    v,
		snapLSN: v.PinSnapshot(),
		pinned:  true,
	}, nil
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := m.stats
	m.mu.Unlock()
	st.SnapshotReads = m.snapReads.Load()
	return st
}

// SetCommitObserver installs fn to be called with each committed
// transaction's ApplyCommit duration (nil uninstalls). The previous
// observer, if any, is replaced.
func (m *Manager) SetCommitObserver(fn func(time.Duration)) {
	if fn == nil {
		m.commitObs.Store(nil)
		return
	}
	m.commitObs.Store(&fn)
}

// writeEntry is one buffered effect.
type writeEntry struct {
	data  []byte // nil when freed
	freed bool
}

// Txn is one transaction. A Txn is used by a single goroutine at a time
// (Ode applications are single-threaded per transaction; concurrency
// comes from multiple transactions).
type Txn struct {
	id     ID
	system bool
	state  State
	m      *Manager

	writes map[storage.OID]*writeEntry
	order  []storage.OID // first-touch order for deterministic batches

	// Snapshot mode (BeginSnapshot): snap serves versioned reads as of
	// snapLSN; pinned guards the exactly-once unpin at commit/rollback.
	snap    storage.Versioned
	snapLSN uint64
	pinned  bool

	beforeCommit []func(*Txn) error
	beforeAbort  []func(*Txn)
	afterCommit  []func()
	afterAbort   []func()

	doomed bool
}

// ID returns the transaction identifier.
func (t *Txn) ID() ID { return t.id }

// State returns the lifecycle state.
func (t *Txn) State() State { return t.state }

// IsSystem reports whether this is a system transaction.
func (t *Txn) IsSystem() bool { return t.system }

// IsSnapshot reports whether this is a snapshot (lock-free read-only)
// transaction.
func (t *Txn) IsSnapshot() bool { return t.snap != nil }

// SnapshotLSN returns the pinned snapshot LSN (0 for regular
// transactions).
func (t *Txn) SnapshotLSN() uint64 { return t.snapLSN }

// Doomed reports whether RequestAbort was called.
func (t *Txn) Doomed() bool { return t.doomed }

// Manager returns the owning transaction manager.
func (t *Txn) Manager() *Manager { return t.m }

// LockShared acquires a shared lock for the transaction, translating a
// deadlock victimization into an automatic abort.
func (t *Txn) LockShared(r lock.Resource) error { return t.lock(r, lock.Shared) }

// LockExclusive acquires an exclusive lock (or upgrades a shared one).
func (t *Txn) LockExclusive(r lock.Resource) error { return t.lock(r, lock.Exclusive) }

func (t *Txn) lock(r lock.Resource, mode lock.Mode) error {
	if t.state != Active {
		return ErrNotActive
	}
	if t.snap != nil {
		// Snapshot transactions read pinned versions: shared locks are
		// unnecessary (the version can't change) and exclusive ones are
		// forbidden — zero calls into the lock manager either way.
		if mode == lock.Exclusive {
			return ErrSnapshotWrite
		}
		return nil
	}
	if err := t.m.locks.Lock(lock.TxnID(t.id), r, mode); err != nil {
		if errors.Is(err, lock.ErrDeadlock) {
			// Victim: roll back so the survivor can proceed. The
			// deadlock cause stays in the chain (errors.Is works for
			// both ErrAborted and lock.ErrDeadlock), so the trigger
			// engine can classify the abort as retryable.
			t.rollback()
			return fmt.Errorf("%w: %w", ErrAborted, err)
		}
		return err
	}
	return nil
}

// NewOID reserves a fresh OID. The object exists once Write commits.
func (t *Txn) NewOID() (storage.OID, error) {
	if t.state != Active {
		return storage.InvalidOID, ErrNotActive
	}
	if t.snap != nil {
		return storage.InvalidOID, ErrSnapshotWrite
	}
	return t.m.store.ReserveOID()
}

// Read returns the object image visible to this transaction:
// read-your-writes over the committed store.
func (t *Txn) Read(oid storage.OID) ([]byte, error) {
	if t.state != Active {
		return nil, ErrNotActive
	}
	if t.snap != nil {
		data, err := t.snap.ReadAt(oid, t.snapLSN)
		if err == nil {
			t.m.snapReads.Add(1)
		}
		return data, err
	}
	if w, ok := t.writes[oid]; ok {
		if w.freed {
			return nil, fmt.Errorf("%w: oid %d (freed in this transaction)", storage.ErrNotFound, oid)
		}
		out := make([]byte, len(w.data))
		copy(out, w.data)
		return out, nil
	}
	return t.m.store.Read(oid)
}

// Exists reports object visibility to this transaction.
func (t *Txn) Exists(oid storage.OID) bool {
	if t.state != Active {
		return false
	}
	if t.snap != nil {
		return t.snap.ExistsAt(oid, t.snapLSN)
	}
	if w, ok := t.writes[oid]; ok {
		return !w.freed
	}
	return t.m.store.Exists(oid)
}

// Write buffers a create-or-replace of oid.
func (t *Txn) Write(oid storage.OID, data []byte) error {
	if t.state != Active {
		return ErrNotActive
	}
	if t.snap != nil {
		return ErrSnapshotWrite
	}
	img := make([]byte, len(data))
	copy(img, data)
	if w, ok := t.writes[oid]; ok {
		w.data, w.freed = img, false
		return nil
	}
	t.writes[oid] = &writeEntry{data: img}
	t.order = append(t.order, oid)
	return nil
}

// Free buffers a deletion of oid.
func (t *Txn) Free(oid storage.OID) error {
	if t.state != Active {
		return ErrNotActive
	}
	if t.snap != nil {
		return ErrSnapshotWrite
	}
	if w, ok := t.writes[oid]; ok {
		w.data, w.freed = nil, true
		return nil
	}
	t.writes[oid] = &writeEntry{freed: true}
	t.order = append(t.order, oid)
	return nil
}

// WriteCount reports the number of distinct objects touched (tests).
func (t *Txn) WriteCount() int { return len(t.writes) }

// OnBeforeCommit registers fn to run inside the transaction just before
// commit; see the package comment.
func (t *Txn) OnBeforeCommit(fn func(*Txn) error) { t.beforeCommit = append(t.beforeCommit, fn) }

// OnBeforeAbort registers fn to run inside the transaction just before an
// *explicit* abort rolls back — the window in which Ode posts the
// before-tabort transaction event (§5.5: the event enters the stream
// "just before the system aborts a transaction in response to a
// transaction abort request in Ode code"). The hook's own writes are
// rolled back moments later; only detached (!dependent) side effects it
// schedules survive. Internal rollbacks (deadlock victims, failed
// commits) do not run these hooks.
func (t *Txn) OnBeforeAbort(fn func(*Txn)) { t.beforeAbort = append(t.beforeAbort, fn) }

// OnAfterCommit registers fn to run once the commit is durable.
func (t *Txn) OnAfterCommit(fn func()) { t.afterCommit = append(t.afterCommit, fn) }

// OnAfterAbort registers fn to run after rollback.
func (t *Txn) OnAfterAbort(fn func()) { t.afterAbort = append(t.afterAbort, fn) }

// RequestAbort dooms the transaction: the O++ tabort statement. The
// rollback happens at the end of the enclosing operation (Commit returns
// ErrAborted), matching the paper's semantics where the trigger action
// completes and the transaction then aborts.
func (t *Txn) RequestAbort() { t.doomed = true }

// Commit attempts to commit. Before-commit hooks run first (growing the
// hook list from inside a hook is allowed); a hook error or a doomed
// transaction turns the commit into an abort returning the cause.
func (t *Txn) Commit() error {
	if t.state != Active {
		return ErrNotActive
	}
	if t.doomed {
		// The tabort path is an explicit abort request in Ode code:
		// before-abort hooks (before-tabort event posting) run first.
		t.runBeforeAbort()
		t.rollback()
		return ErrAborted
	}
	for i := 0; i < len(t.beforeCommit); i++ {
		if err := t.beforeCommit[i](t); err != nil {
			t.rollback()
			return fmt.Errorf("%w: before-commit hook: %w", ErrAborted, err)
		}
		if t.doomed {
			t.rollback()
			return ErrAborted
		}
	}
	ops := make([]storage.Op, 0, len(t.order))
	for _, oid := range t.order {
		w := t.writes[oid]
		if w.freed {
			ops = append(ops, storage.Op{Kind: storage.OpFree, OID: oid})
		} else {
			ops = append(ops, storage.Op{Kind: storage.OpWrite, OID: oid, Data: w.data})
		}
	}
	// A snapshot transaction has an empty write set by construction;
	// skipping the store call keeps its commit as lock-free as its reads
	// (no exclusive section, no group-commit queue).
	if t.snap == nil {
		obsFn := t.m.commitObs.Load()
		var applyStart time.Time
		if obsFn != nil {
			applyStart = time.Now()
		}
		if err := t.m.store.ApplyCommit(uint64(t.id), ops); err != nil {
			t.rollback()
			return fmt.Errorf("%w: apply: %w", ErrAborted, err)
		}
		if obsFn != nil {
			(*obsFn)(time.Since(applyStart))
		}
	}
	t.state = Committed
	t.unpin()
	t.m.locks.ReleaseAll(lock.TxnID(t.id))
	t.m.mu.Lock()
	t.m.stats.Committed++
	t.m.mu.Unlock()
	for _, fn := range t.afterCommit {
		fn()
	}
	return nil
}

// unpin releases the snapshot pin exactly once, re-enabling version GC
// below this transaction's LSN.
func (t *Txn) unpin() {
	if t.pinned {
		t.pinned = false
		t.snap.UnpinSnapshot(t.snapLSN)
	}
}

// Abort rolls the transaction back explicitly. Before-abort hooks run
// first, inside the still-active transaction.
func (t *Txn) Abort() error {
	if t.state != Active {
		return ErrNotActive
	}
	t.runBeforeAbort()
	t.rollback()
	return nil
}

func (t *Txn) runBeforeAbort() {
	for i := 0; i < len(t.beforeAbort); i++ {
		t.beforeAbort[i](t)
	}
}

// rollback discards the write set (undoing object and trigger-state
// changes alike), releases locks, and runs the after-abort hooks.
func (t *Txn) rollback() {
	t.state = Aborted
	t.unpin()
	t.writes = nil
	t.order = nil
	t.m.locks.ReleaseAll(lock.TxnID(t.id))
	t.m.mu.Lock()
	t.m.stats.Aborted++
	t.m.mu.Unlock()
	for _, fn := range t.afterAbort {
		fn()
	}
}
