package core

import (
	"testing"
)

// eventArgsFixture: masks and actions inspect the parameters of the
// member-function invocation that posted the event — the §8 extension
// ("attributes of events ... at least in masks").
func eventArgsFixture(t *testing.T) (*Database, Ref, *[]float64) {
	t.Helper()
	var seen []float64
	cls := MustClass("Shop",
		Factory(func() any { return new(CredCard) }),
		Method("Buy", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		Events("after Buy"),
		Mask("BigAmount", func(ctx *Ctx, self any, act *Activation) (bool, error) {
			// The mask sees the Buy amount, not just object state.
			return act.EventArgFloat(0) >= 100, nil
		}),
		Trigger("OnBigBuy", "after Buy & BigAmount",
			func(ctx *Ctx, self any, act *Activation) error {
				seen = append(seen, act.EventArgFloat(0))
				return nil
			},
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, err := db.Create(tx, "Shop", &CredCard{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "OnBigBuy"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, ref, &seen
}

func TestMaskSeesMemberFunctionArgs(t *testing.T) {
	db, ref, seen := eventArgsFixture(t)
	for _, amt := range []float64{5, 250, 30, 100} {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Buy", amt); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if len(*seen) != 2 || (*seen)[0] != 250 || (*seen)[1] != 100 {
		t.Fatalf("big buys seen = %v, want [250 100]", *seen)
	}
}

func TestEventArgsNotPersisted(t *testing.T) {
	// EventArgs are transient: the stored trigger state never carries
	// them (they belong to a posting, not to the activation).
	db, ref, _ := eventArgsFixture(t)
	tx := db.Begin()
	defer tx.Abort()
	active, err := db.ActiveTriggers(tx, ref)
	if err != nil || len(active) != 1 {
		t.Fatalf("active = %v, %v", active, err)
	}
	if len(active[0].Args) != 0 {
		t.Fatalf("activation args contaminated: %v", active[0].Args)
	}
}

func TestEventArgsEmptyForUserEvents(t *testing.T) {
	var gotLen = -1
	cls := MustClass("UE",
		Factory(func() any { return new(CredCard) }),
		Events("Ping"),
		Trigger("T", "Ping",
			func(ctx *Ctx, self any, act *Activation) error {
				gotLen = len(act.EventArgs)
				return nil
			},
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "UE", &CredCard{})
	db.Activate(tx, ref, "T")
	if err := db.PostUserEvent(tx, ref, "Ping"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if gotLen != 0 {
		t.Fatalf("user event delivered EventArgs of len %d", gotLen)
	}
}

func TestEventArgAccessors(t *testing.T) {
	a := &Activation{EventArgs: []any{12.5, "store-7", true}}
	if a.EventArgFloat(0) != 12.5 {
		t.Fatal("EventArgFloat")
	}
	if a.EventArgString(1) != "store-7" {
		t.Fatal("EventArgString")
	}
	if a.EventArgFloat(1) != 0 || a.EventArgString(0) != "" {
		t.Fatal("wrong-type accessors should zero")
	}
	if a.EventArgFloat(9) != 0 || a.EventArgString(9) != "" {
		t.Fatal("out-of-range accessors should zero")
	}
}
