package core

import (
	"errors"
	"testing"
)

// TestReadOnlyGuards: a replica database refuses every mutating entry
// point with ErrReadOnly but still serves reads and read-only method
// invocations, and promotion makes it writable again.
func TestReadOnlyGuards(t *testing.T) {
	db := newTestDB(t, newCredCardClass())
	tx := db.Begin()
	ref, err := db.Create(tx, "CredCard", &CredCard{CredLim: 1000, GoodHist: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, ref, "Buy", 10.0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	db.SetReadOnly(true)
	if !db.ReadOnly() {
		t.Fatal("ReadOnly() false after SetReadOnly(true)")
	}
	rt := db.Begin()
	// Reads pass.
	if _, err := db.Get(rt, ref); err != nil {
		t.Fatalf("Get on replica: %v", err)
	}
	if _, err := db.ActiveTriggers(rt, ref); err != nil {
		t.Fatalf("ActiveTriggers on replica: %v", err)
	}
	// Mutators fail fast.
	if _, err := db.Create(rt, "CredCard", &CredCard{}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Create = %v, want ErrReadOnly", err)
	}
	if _, err := db.Invoke(rt, ref, "Buy", 5.0); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Invoke(mutator) = %v, want ErrReadOnly", err)
	}
	if err := db.Delete(rt, ref); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Delete = %v, want ErrReadOnly", err)
	}
	if err := db.ClusterAdd(rt, "c", ref); !errors.Is(err, ErrReadOnly) {
		t.Errorf("ClusterAdd = %v, want ErrReadOnly", err)
	}
	if _, err := db.Activate(rt, ref, "AutoRaiseLimit", 500.0); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Activate = %v, want ErrReadOnly", err)
	}
	if _, err := db.CreateVersion(rt, ref); !errors.Is(err, ErrReadOnly) {
		t.Errorf("CreateVersion = %v, want ErrReadOnly", err)
	}

	rt.Abort() // release read locks before the write txn below

	// Promotion restores writes — the failover path.
	db.SetReadOnly(false)
	wt := db.Begin()
	if _, err := db.Invoke(wt, ref, "Buy", 5.0); err != nil {
		t.Fatalf("Invoke after promotion: %v", err)
	}
	if err := wt.Commit(); err != nil {
		t.Fatal(err)
	}
}
