package core

import (
	"errors"
	"testing"

	"ode/internal/txn"
)

// couplingFixture builds a class whose single trigger fires on "after
// Poke" with the given coupling; the action appends the trigger name to
// the object's BlackMarks (persisted via Invoke so the effect is
// observable — or not — per coupling semantics).
func couplingFixture(t *testing.T, coupling Coupling, perpetual bool) (*Database, Ref, *int) {
	t.Helper()
	fires := new(int)
	opts := []TriggerOption{WithCoupling(coupling)}
	if perpetual {
		opts = append(opts, Perpetual())
	}
	cls := MustClass("Coupled",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Method("Mark", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.BlackMarks = append(c.BlackMarks, args[0].(string))
			return nil, nil
		}),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				*fires++
				_, err := ctx.Invoke(ctx.Self(), "Mark", "fired")
				return err
			},
			opts...),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, err := db.Create(tx, "Coupled", &CredCard{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "T"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, ref, fires
}

func marks(t *testing.T, db *Database, ref Ref) []string {
	t.Helper()
	return card(t, db, ref).BlackMarks
}

func TestImmediateFiresInsideDetectingTxn(t *testing.T) {
	db, ref, fires := couplingFixture(t, Immediate, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if *fires != 1 {
		t.Fatalf("immediate trigger fired %d times before commit, want 1", *fires)
	}
	// The action's effect is visible inside the same transaction.
	v, _ := db.Get(tx, ref)
	if len(v.(*CredCard).BlackMarks) != 1 {
		t.Fatal("action effect not visible in detecting txn")
	}
	tx.Commit()
	if len(marks(t, db, ref)) != 1 {
		t.Fatal("action effect lost at commit")
	}
}

func TestImmediateRollsBackWithTxn(t *testing.T) {
	db, ref, fires := couplingFixture(t, Immediate, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if *fires != 1 {
		t.Fatalf("fires = %d", *fires)
	}
	if len(marks(t, db, ref)) != 0 {
		t.Fatal("immediate action effect survived abort")
	}
	// The trigger deactivation rolled back too: it is active again.
	tx2 := db.Begin()
	active, _ := db.ActiveTriggers(tx2, ref)
	tx2.Commit()
	if len(active) != 1 {
		t.Fatalf("deactivation not rolled back: %+v", active)
	}
}

func TestDeferredFiresAtCommit(t *testing.T) {
	db, ref, fires := couplingFixture(t, Deferred, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if *fires != 0 {
		t.Fatal("end trigger fired before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if *fires != 1 {
		t.Fatalf("end trigger fired %d times at commit, want 1", *fires)
	}
	if len(marks(t, db, ref)) != 1 {
		t.Fatal("end action effect not committed")
	}
}

func TestDeferredSkippedOnAbort(t *testing.T) {
	db, ref, fires := couplingFixture(t, Deferred, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if *fires != 0 {
		t.Fatal("end trigger fired despite abort")
	}
	if len(marks(t, db, ref)) != 0 {
		t.Fatal("end action effect leaked")
	}
}

func TestDeferredActionCanAbort(t *testing.T) {
	// An end trigger acts as a deferred constraint: its action can
	// tabort, rolling back the whole transaction.
	cls := MustClass("Constraint",
		Factory(func() any { return new(CredCard) }),
		Method("Buy", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		Events("after Buy"),
		Mask("OverLimit", func(ctx *Ctx, self any, act *Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > c.CredLim, nil
		}),
		Trigger("CheckAtEnd", "after Buy & OverLimit",
			func(ctx *Ctx, self any, act *Activation) error {
				ctx.TAbort()
				return nil
			},
			WithCoupling(Deferred), Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Constraint", &CredCard{CredLim: 100})
	db.Activate(tx, ref, "CheckAtEnd")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Buy", 500.0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("commit = %v, want ErrAborted", err)
	}
	if c := card(t, db, ref); c.CurrBal != 0 {
		t.Fatalf("balance = %v after aborted commit", c.CurrBal)
	}
}

func TestDependentFiresOnlyAfterCommit(t *testing.T) {
	db, ref, fires := couplingFixture(t, Dependent, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if *fires != 0 {
		t.Fatal("dependent trigger fired before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if *fires != 1 {
		t.Fatalf("dependent fired %d times, want 1", *fires)
	}
	// The action ran in its own (system) transaction; its effect is
	// durable.
	if len(marks(t, db, ref)) != 1 {
		t.Fatal("dependent action effect missing")
	}
	if db.Stats().FiredDependent != 1 {
		t.Fatalf("stats: %+v", db.Stats())
	}
	if db.Txns().Stats().System == 0 {
		t.Fatal("dependent action did not use a system transaction")
	}
}

func TestDependentSkippedOnAbort(t *testing.T) {
	// The commit dependency: the separate transaction "can commit only if
	// the event detecting transaction does" (§4.2).
	db, ref, fires := couplingFixture(t, Dependent, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if *fires != 0 {
		t.Fatal("dependent trigger fired despite abort")
	}
	if len(marks(t, db, ref)) != 0 {
		t.Fatal("dependent effect leaked")
	}
}

func TestIndependentFiresAfterCommit(t *testing.T) {
	db, ref, fires := couplingFixture(t, Independent, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if *fires != 1 {
		t.Fatalf("!dependent fired %d times, want 1", *fires)
	}
	if len(marks(t, db, ref)) != 1 {
		t.Fatal("!dependent effect missing")
	}
}

func TestIndependentSurvivesAbort(t *testing.T) {
	// §5.5: the abort routine scans the !dependent list and runs the
	// actions in a system transaction — permanent changes from an aborted
	// transaction.
	db, ref, fires := couplingFixture(t, Independent, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if *fires != 1 {
		t.Fatalf("!dependent fired %d times after abort, want 1", *fires)
	}
	if len(marks(t, db, ref)) != 1 {
		t.Fatal("!dependent effect not persisted after abort")
	}
	if db.Stats().FiredIndependent != 1 {
		t.Fatalf("stats: %+v", db.Stats())
	}
}

func TestIndependentSurvivesTabort(t *testing.T) {
	// A doomed commit (tabort in some action) still runs !dependent
	// actions.
	db, ref, fires := couplingFixture(t, Independent, false)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	tx.RequestAbort()
	if err := tx.Commit(); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("commit = %v", err)
	}
	if *fires != 1 || len(marks(t, db, ref)) != 1 {
		t.Fatalf("fires=%d marks=%v", *fires, marks(t, db, ref))
	}
}

func TestDetachedActionErrorCounted(t *testing.T) {
	cls := MustClass("Detach",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				return errors.New("detached failure")
			},
			WithCoupling(Dependent)),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Detach", &CredCard{})
	db.Activate(tx, ref, "T")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("detached failure must not fail the detecting txn: %v", err)
	}
	st := db.Stats()
	if st.ActionErrors != 1 || st.FiredDependent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestImmediateActionErrorPropagates(t *testing.T) {
	boom := errors.New("action broke")
	cls := MustClass("Err",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error { return boom }),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Err", &CredCard{})
	db.Activate(tx, ref, "T")
	tx.Commit()

	tx2 := db.Begin()
	defer tx2.Abort()
	if _, err := db.Invoke(tx2, ref, "Poke"); !errors.Is(err, boom) {
		t.Fatalf("Invoke = %v, want action error", err)
	}
}

func TestCouplingString(t *testing.T) {
	for c, want := range map[Coupling]string{
		Immediate: "immediate", Deferred: "end",
		Dependent: "dependent", Independent: "!dependent",
		Coupling(9): "Coupling(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}
