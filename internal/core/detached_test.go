package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ode/internal/txn"
)

// TestDetachedDeadlockVictimRetries forces two dependent trigger actions
// into a lock-order deadlock and asserts the victim's firing is retried
// and commits exactly once: neither firing is dropped, and each action's
// effects land exactly once despite the extra attempt.
func TestDetachedDeadlockVictimRetries(t *testing.T) {
	var (
		pokeRefs [2]Ref // objects whose Poke detects the event
		shared   [2]Ref // objects the actions increment, in opposite orders
		attempts [2]atomic.Int32
		fires    [2]atomic.Int32
		barrier  sync.WaitGroup // both actions hold their first lock
	)
	barrier.Add(2)
	waitBarrier := func() {
		done := make(chan struct{})
		go func() { barrier.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
	}

	cls := MustClass("Clash",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Method("Incr", func(ctx *Ctx, self any, args []any) (any, error) {
			self.(*CredCard).CurrBal++
			return nil, nil
		}),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				idx := 0
				first, second := shared[0], shared[1]
				if ctx.Self() == pokeRefs[1] {
					idx, first, second = 1, shared[1], shared[0]
				}
				n := attempts[idx].Add(1)
				if _, err := ctx.Invoke(first, "Incr"); err != nil {
					return err
				}
				if n == 1 {
					// First attempt: rendezvous with the other action while
					// holding the first exclusive lock, so both then reach
					// for the other's object and one is victimized. Retries
					// skip the barrier and run to completion.
					barrier.Done()
					waitBarrier()
				}
				if _, err := ctx.Invoke(second, "Incr"); err != nil {
					return err
				}
				fires[idx].Add(1)
				return nil
			},
			WithCoupling(Dependent)),
	)
	db := newTestDB(t, cls)

	tx := db.Begin()
	for i := range pokeRefs {
		ref, err := db.Create(tx, "Clash", &CredCard{})
		if err != nil {
			t.Fatal(err)
		}
		pokeRefs[i] = ref
		if _, err := db.Activate(tx, ref, "T"); err != nil {
			t.Fatal(err)
		}
		shared[i], err = db.Create(tx, "Clash", &CredCard{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			utx := db.Begin()
			if _, err := db.Invoke(utx, pokeRefs[i], "Poke"); err != nil {
				t.Errorf("poke %d: %v", i, err)
				utx.Abort()
				return
			}
			if err := utx.Commit(); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// Exactly-once: each action committed once, so each shared object was
	// incremented by both actions exactly once.
	for i, ref := range shared {
		if bal := card(t, db, ref).CurrBal; bal != 2 {
			t.Errorf("shared[%d].CurrBal = %v, want 2 (exactly-once firing)", i, bal)
		}
	}
	if f0, f1 := fires[0].Load(), fires[1].Load(); f0 != 1 || f1 != 1 {
		t.Errorf("fires = %d,%d, want 1,1", f0, f1)
	}
	st := db.Stats()
	if st.FiredDependent != 2 {
		t.Errorf("FiredDependent = %d, want 2", st.FiredDependent)
	}
	if st.DetachedRetries < 1 {
		t.Errorf("DetachedRetries = %d, want >= 1 (a deadlock victim must have retried)", st.DetachedRetries)
	}
	if st.DetachedDropped != 0 || st.ActionErrors != 0 {
		t.Errorf("dropped=%d actionErrors=%d, want 0,0", st.DetachedDropped, st.ActionErrors)
	}
	if total := attempts[0].Load() + attempts[1].Load(); total != 3 {
		t.Errorf("total attempts = %d, want 3 (one victim, one retry)", total)
	}
}

// TestDetachedRetryBudgetExhausted checks that a firing whose system
// transaction keeps aborting retryably is retried exactly budget times
// and then counted as dropped — bounded, not infinite, self-healing.
func TestDetachedRetryBudgetExhausted(t *testing.T) {
	var attempts atomic.Int32
	cls := MustClass("Hopeless",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				attempts.Add(1)
				// A retryable abort every time: the retry budget, not the
				// classification, must terminate the loop.
				return fmt.Errorf("simulated transient: %w", txn.ErrAborted)
			},
			WithCoupling(Dependent)),
	)
	db := newTestDB(t, cls)
	db.SetDetachedRetryPolicy(2, time.Microsecond)

	tx := db.Begin()
	ref, _ := db.Create(tx, "Hopeless", &CredCard{})
	db.Activate(tx, ref, "T")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("detached drop must not fail the detecting txn: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 initial + 2 retries)", got)
	}
	st := db.Stats()
	if st.DetachedRetries != 2 || st.DetachedDropped != 1 || st.ActionErrors != 1 {
		t.Fatalf("stats = retries=%d dropped=%d errors=%d, want 2,1,1",
			st.DetachedRetries, st.DetachedDropped, st.ActionErrors)
	}
}

// TestDetachedPlainErrorNotRetried: a deterministic action error is
// permanent — no retry, one drop.
func TestDetachedPlainErrorNotRetried(t *testing.T) {
	var attempts atomic.Int32
	cls := MustClass("Perma",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				attempts.Add(1)
				return errors.New("deterministic failure")
			},
			WithCoupling(Dependent)),
	)
	db := newTestDB(t, cls)

	tx := db.Begin()
	ref, _ := db.Create(tx, "Perma", &CredCard{})
	db.Activate(tx, ref, "T")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (permanent errors are not retried)", got)
	}
	st := db.Stats()
	if st.DetachedRetries != 0 || st.DetachedDropped != 1 || st.ActionErrors != 1 {
		t.Fatalf("stats = retries=%d dropped=%d errors=%d, want 0,1,1",
			st.DetachedRetries, st.DetachedDropped, st.ActionErrors)
	}
}

// TestDetachedPanicIsolated: a panicking detached action must not kill
// the process or the detecting transaction; it is recovered, counted,
// and the firing dropped as permanent.
func TestDetachedPanicIsolated(t *testing.T) {
	cls := MustClass("Panicky",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				panic("trigger action bug")
			},
			WithCoupling(Dependent)),
	)
	db := newTestDB(t, cls)

	tx := db.Begin()
	ref, _ := db.Create(tx, "Panicky", &CredCard{})
	db.Activate(tx, ref, "T")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("panicking detached action must not fail the detecting txn: %v", err)
	}
	st := db.Stats()
	if st.ActionPanics != 1 || st.ActionErrors != 1 || st.DetachedDropped != 1 {
		t.Fatalf("stats = panics=%d errors=%d dropped=%d, want 1,1,1",
			st.ActionPanics, st.ActionErrors, st.DetachedDropped)
	}
	if st.DetachedRetries != 0 {
		t.Fatalf("DetachedRetries = %d, want 0 (panics are permanent)", st.DetachedRetries)
	}
}

// TestImmediatePanicIsolated: a panic in an immediate trigger action
// surfaces as an Invoke error inside the detecting transaction — the
// caller can abort cleanly; the process survives.
func TestImmediatePanicIsolated(t *testing.T) {
	cls := MustClass("PanickyNow",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				panic("immediate action bug")
			}),
	)
	db := newTestDB(t, cls)

	tx := db.Begin()
	ref, _ := db.Create(tx, "PanickyNow", &CredCard{})
	db.Activate(tx, ref, "T")
	tx.Commit()

	tx2 := db.Begin()
	defer tx2.Abort()
	_, err := db.Invoke(tx2, ref, "Poke")
	if err == nil {
		t.Fatal("Invoke with panicking immediate action returned nil error")
	}
	if db.Stats().ActionPanics != 1 {
		t.Fatalf("ActionPanics = %d, want 1", db.Stats().ActionPanics)
	}
}
